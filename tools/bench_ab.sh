#!/usr/bin/env bash
# bench_ab — interleaved A/B of the engine benchmarks (v1 vs v2).
#
# Runs bench/micro_core's engine pairs — BM_CrossTrafficSecond[V2],
# BM_SimSecondsPerSec/{0,1}, BM_ProbeFleetSecond/{0,1} (batched probe
# bursts off/on), BM_TcpScenarioSecond/{0,1} (packet vs fluid TCP) and
# BM_CcDuelSecond/{0,1,2} (the reno|cubic|bbr policy duel) —
# with repetitions under random interleaving (so drift in machine load
# lands on both arms alike), takes the per-arm medians from the benchmark
# JSON, computes the A/B speedups, and appends one JSON row to
# BENCH_engine.json.
#
# Usage: bench_ab.sh [micro_core_binary] [repetitions] [out_json]
#   defaults: build/bench/micro_core, 7, BENCH_engine.json (repo root)

set -eu

here=$(cd "$(dirname "$0")/.." && pwd)
binary=${1:-"$here/build/bench/micro_core"}
reps=${2:-7}
out=${3:-"$here/BENCH_engine.json"}

if [ ! -x "$binary" ]; then
  echo "bench_ab: benchmark binary not found: $binary (build first)" >&2
  exit 2
fi
case $reps in
  ''|*[!0-9]*|0) echo "bench_ab: repetitions must be a positive integer" >&2; exit 2 ;;
esac

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

"$binary" \
  "--benchmark_filter=BM_SimSecondsPerSec|BM_CrossTrafficSecond|BM_ProbeFleetSecond|BM_TcpScenarioSecond|BM_CcDuelSecond" \
  "--benchmark_repetitions=$reps" \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true \
  "--benchmark_out=$workdir/ab.json" \
  --benchmark_out_format=json > /dev/null

# Pull each benchmark's _median aggregate real_time (ns) out of the JSON.
# The JSON layout is stable: every benchmark object carries "name" before
# "real_time", so a tiny awk state machine suffices — no jq dependency.
median() {
  awk -v want="\"$1_median\"" '
    $1 == "\"name\":" { keep = ($2 == want ",") }
    keep && $1 == "\"real_time\":" { gsub(/,/, "", $2); print $2; exit }
  ' "$workdir/ab.json"
}

v1_cross=$(median BM_CrossTrafficSecond)
v2_cross=$(median BM_CrossTrafficSecondV2)
v1_simsec=$(median "BM_SimSecondsPerSec/0")
v2_simsec=$(median "BM_SimSecondsPerSec/1")
fleet_unbatched=$(median "BM_ProbeFleetSecond/0")
fleet_batched=$(median "BM_ProbeFleetSecond/1")
tcp_packet=$(median "BM_TcpScenarioSecond/0")
tcp_fluid=$(median "BM_TcpScenarioSecond/1")
cc_reno=$(median "BM_CcDuelSecond/0")
cc_cubic=$(median "BM_CcDuelSecond/1")
cc_bbr=$(median "BM_CcDuelSecond/2")

for val in "$v1_cross" "$v2_cross" "$v1_simsec" "$v2_simsec" \
           "$fleet_unbatched" "$fleet_batched" "$tcp_packet" "$tcp_fluid" \
           "$cc_reno" "$cc_cubic" "$cc_bbr"; do
  if [ -z "$val" ]; then
    echo "bench_ab: missing a median in $workdir/ab.json (benchmark renamed?)" >&2
    exit 1
  fi
done

row=$(awk -v a="$v1_cross" -v b="$v2_cross" -v c="$v1_simsec" -v d="$v2_simsec" \
      -v e="$fleet_unbatched" -v f="$fleet_batched" \
      -v g="$tcp_packet" -v h="$tcp_fluid" \
      -v i="$cc_reno" -v j="$cc_cubic" -v k="$cc_bbr" \
      -v reps="$reps" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" 'BEGIN {
  printf "{\"date\": \"%s\", \"repetitions\": %d, ", date, reps
  printf "\"cross_traffic_v1_ns\": %.1f, \"cross_traffic_v2_ns\": %.1f, ", a, b
  printf "\"cross_traffic_speedup\": %.2f, ", a / b
  printf "\"sim_second_v1_ns\": %.1f, \"sim_second_v2_ns\": %.1f, ", c, d
  printf "\"sim_second_speedup\": %.2f, ", c / d
  printf "\"probe_fleet_unbatched_ns\": %.1f, \"probe_fleet_batched_ns\": %.1f, ", e, f
  printf "\"probe_fleet_speedup\": %.2f, ", e / f
  printf "\"tcp_scenario_packet_ns\": %.1f, \"tcp_scenario_fluid_ns\": %.1f, ", g, h
  printf "\"tcp_scenario_speedup\": %.2f, ", g / h
  printf "\"cc_duel_reno_ns\": %.1f, \"cc_duel_cubic_ns\": %.1f, ", i, j
  printf "\"cc_duel_bbr_ns\": %.1f, \"cc_duel_bbr_ratio\": %.2f}", k, k / i
}')

# BENCH_engine.json is a JSON-lines log: one self-contained row per run.
echo "$row" >> "$out"
echo "bench_ab: $row"
echo "bench_ab: appended to $out"
