#!/usr/bin/env bash
# shard_merge_check — process-level proof that the sharded comparison
# matrix is lossless: run the full matrix in one process with --emit-cells,
# run the same matrix as N independent --shard i/N worker processes, merge
# the worker streams with --merge-cells --emit-cells, and require the two
# byte-identical (cmp). This is the end-to-end counterpart of
# tests/scenario/shard_matrix_test.cpp, exercising the real CLI surface:
# argument parsing, stream emission, file round-trip, and the merge.
#
# Usage: shard_merge_check.sh <scenario_runner_binary> <shards> [extra args...]
#   extra args are passed to every run (e.g. --scenario paper-path --runs 1);
#   they must include the --compare matrix selection.

set -u

runner=${1:?usage: shard_merge_check.sh <scenario_runner_binary> <shards> [extra args...]}
shards=${2:?usage: shard_merge_check.sh <scenario_runner_binary> <shards> [extra args...]}
shift 2

case $shards in
  ''|*[!0-9]*|0) echo "shard_merge_check: shard count must be a positive integer" >&2; exit 2 ;;
esac

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

if ! "$runner" --compare "$@" --emit-cells > "$workdir/full.cells"; then
  echo "shard_merge_check: full --emit-cells run failed" >&2
  exit 1
fi

files=""
for ((i = 0; i < shards; ++i)); do
  if ! "$runner" --compare "$@" --shard "$i/$shards" --emit-cells \
       > "$workdir/shard$i.cells"; then
    echo "shard_merge_check: shard $i/$shards run failed" >&2
    exit 1
  fi
  files="$files${files:+,}$workdir/shard$i.cells"
done

if ! "$runner" --merge-cells "$files" --emit-cells > "$workdir/merged.cells"; then
  echo "shard_merge_check: merge failed" >&2
  exit 1
fi

if ! cmp -s "$workdir/full.cells" "$workdir/merged.cells"; then
  echo "shard_merge_check: merged output differs from the in-process run" >&2
  diff "$workdir/full.cells" "$workdir/merged.cells" | head -20 >&2
  exit 1
fi

cells=$(head -1 "$workdir/full.cells" | sed -n 's/^cells total=\([0-9]*\).*/\1/p')
echo "shard_merge_check: OK ($cells cells, $shards shards, byte-identical merge)"
