#!/usr/bin/env bash
# docs_check — fail if README/docs reference something that doesn't exist.
#
# Checked, over README.md and docs/*.md:
#   1. every backticked repo-relative path (src/..., bench/..., docs/...,
#      examples/..., tests/..., tools/...) exists;
#   2. every relative markdown link target exists;
#   3. every bench_<name> target token has a bench/<name>.cpp source
#      (bench_smoke, a ctest name, is whitelisted);
#   4. `scenario_runner --list` runs, and every preset it reports is
#      documented in docs/SCENARIOS.md;
#   5. every entry in docs/FIGURES.md's "preset" table column is a preset
#      the registry actually has (or the em-dash placeholder);
#   6. `scenario_runner --list-estimators` runs, and every estimator it
#      reports is documented (with its config keys) in docs/ESTIMATORS.md;
#   7. every `flow` spec key the parser accepts is documented in
#      docs/SCENARIOS.md, and every preset's rendered spec (`--show`,
#      including its flow lines) parses back through `--validate` — the
#      round-trip that keeps the docs' flow examples honest;
#   8. (when a scenario_fuzz binary is given) every invariant
#      `scenario_fuzz --list-invariants` reports is documented in
#      docs/FUZZING.md;
#   9. both engine-contract versions (v1 and v2, the values the spec
#      parser accepts for `engine =`) are documented in docs/ENGINE.md
#      and in docs/SCENARIOS.md's key reference.
#
# Usage: docs_check.sh <repo_root> <scenario_runner_binary> [scenario_fuzz_binary]

set -u

root=${1:?usage: docs_check.sh <repo_root> <scenario_runner_binary>}
runner=${2:?usage: docs_check.sh <repo_root> <scenario_runner_binary>}
fuzzer=${3:-}

fail=0
err() {
  echo "docs_check: $*" >&2
  fail=1
}

docs=("$root/README.md")
for f in "$root"/docs/*.md; do
  [ -e "$f" ] && docs+=("$f")
done
[ ${#docs[@]} -ge 4 ] || err "expected README.md plus at least 3 docs/ pages, found ${#docs[@]} files"

# --- 1. backticked repo paths ------------------------------------------------
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || { err "missing doc: $doc"; continue; }
  while IFS= read -r ref; do
    path=${ref%/}              # allow `src/util/` directory references
    [ -e "$root/$path" ] || err "$(basename "$doc"): referenced path '$ref' does not exist"
  done < <(grep -o '`[^`]*`' "$doc" | tr -d '`' |
           grep -E '^(src|bench|docs|examples|tests|tools)/' | sort -u)
done

# --- 2. relative markdown links ----------------------------------------------
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue
  while IFS= read -r target; do
    case $target in
      http://*|https://*|\#*) continue ;;
    esac
    target=${target%%#*}       # drop anchors
    [ -z "$target" ] && continue
    if ! { [ -e "$root/$target" ] || [ -e "$(dirname "$doc")/$target" ]; }; then
      err "$(basename "$doc"): markdown link target '$target' does not exist"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//' | sort -u)
done

# --- 3. bench target tokens --------------------------------------------------
for doc in "${docs[@]}"; do
  [ -f "$doc" ] || continue
  while IFS= read -r target; do
    name=${target#bench_}
    case $name in
      smoke|smoke_*) continue ;;  # ctest names, not bench sources
      ab) continue ;;             # tools/bench_ab.sh, a script not a bench source
    esac
    [ -f "$root/bench/$name.cpp" ] ||
      err "$(basename "$doc"): bench target '$target' has no bench/$name.cpp"
  done < <(grep -ohE '\bbench_[a-z0-9_]+' "$doc" | sort -u)
done

# --- 4. registry is runnable and every preset is documented -------------------
presets=$("$runner" --list --format csv 2>/dev/null | awk -F, 'NR > 1 {print $1}')
if [ -z "$presets" ]; then
  err "'$runner --list --format csv' produced no presets"
else
  for p in $presets; do
    # Word-anchored: 'paper-path' must not be satisfied by a mention of
    # 'paper-path-poisson'.
    grep -qE "(^|[^a-z0-9_-])${p}([^a-z0-9_-]|\$)" "$root/docs/SCENARIOS.md" ||
      err "preset '$p' is not documented in docs/SCENARIOS.md"
  done
fi

# --- 5. FIGURES.md preset column ---------------------------------------------
figures="$root/docs/FIGURES.md"
if [ -f "$figures" ]; then
  while IFS= read -r cell; do
    for p in ${cell//,/ }; do
      [ -z "$p" ] && continue
      echo "$presets" | grep -qx "$p" ||
        err "FIGURES.md: preset column names unknown preset '$p'"
    done
  done < <(awk -F'|' '
    /^\|/ {
      if (col == 0) {                      # header row: locate the column
        for (i = 1; i <= NF; ++i) {
          h = $i; gsub(/[ `]/, "", h)
          if (h == "preset") col = i
        }
        next
      }
      cell = $col; gsub(/[ `]/, "", cell)
      if (cell ~ /^[-—:]*$/) next          # separator row or placeholder
      print cell
    }' "$figures")
else
  err "docs/FIGURES.md is missing"
fi

# --- 6. estimator catalogue is runnable and documented --------------------
estimators=$("$runner" --list-estimators --format csv 2>/dev/null |
             awk -F, 'NR > 1 {print $1}')
if [ -z "$estimators" ]; then
  err "'$runner --list-estimators --format csv' produced no estimators"
elif [ ! -f "$root/docs/ESTIMATORS.md" ]; then
  err "docs/ESTIMATORS.md is missing"
else
  for e in $estimators; do
    # The catalogue row: | `name` | ... in the per-estimator tables.
    grep -qE "(^|[^a-z0-9_-])${e}([^a-z0-9_-]|\$)" "$root/docs/ESTIMATORS.md" ||
      err "estimator '$e' is not documented in docs/ESTIMATORS.md"
    # And its config-key table row must exist (the overrides section).
    grep -qE "^\| .?\`?${e}\`? .?\|" "$root/docs/ESTIMATORS.md" ||
      err "estimator '$e' has no table row in docs/ESTIMATORS.md"
  done
fi

# --- 7. flow spec keys and preset round-trips ---------------------------------
# The authoritative flow-directive key list (mirrors parse_flow_line in
# src/scenario/spec.cpp); each must be documented in docs/SCENARIOS.md.
flow_keys="hops rwnd count start_s stop_s on_s off_s mss reverse_ms mode cc"
for k in $flow_keys; do
  grep -qE "(^|[^a-z0-9_])${k}=" "$root/docs/SCENARIOS.md" ||
    err "flow key '$k' is not documented in docs/SCENARIOS.md (flow table)"
done
# Same for the impair-directive keys (mirrors parse_impair_line).
impair_keys="hop loss dup reorder_ms seed"
for k in $impair_keys; do
  grep -qE "(^|[^a-z0-9_])${k}=" "$root/docs/SCENARIOS.md" ||
    err "impair key '$k' is not documented in docs/SCENARIOS.md (impair section)"
done
# Every preset's rendered spec must parse back, flow lines included.
roundtrip_tmp=$(mktemp)
for p in $presets; do
  if ! "$runner" --show "$p" > "$roundtrip_tmp" 2>/dev/null; then
    err "'$runner --show $p' failed"
    continue
  fi
  "$runner" --validate "$roundtrip_tmp" >/dev/null 2>&1 ||
    err "preset '$p': rendered spec does not re-parse (--show | --validate round-trip)"
done
rm -f "$roundtrip_tmp"

# --- 8. fuzz invariants are documented ----------------------------------------
if [ -n "$fuzzer" ]; then
  fuzzdoc="$root/docs/FUZZING.md"
  invariants=$("$fuzzer" --list-invariants 2>/dev/null | awk '{print $1}' |
               grep -E '^[a-z][a-z-]*$')
  if [ -z "$invariants" ]; then
    err "'$fuzzer --list-invariants' produced no invariant names"
  elif [ ! -f "$fuzzdoc" ]; then
    err "docs/FUZZING.md is missing"
  else
    for inv in $invariants; do
      grep -qE "\`${inv}\`" "$fuzzdoc" ||
        err "fuzz invariant '$inv' is not documented in docs/FUZZING.md"
    done
  fi
fi

# --- 9. engine versions are documented ----------------------------------------
enginedoc="$root/docs/ENGINE.md"
if [ ! -f "$enginedoc" ]; then
  err "docs/ENGINE.md is missing"
else
  # Mirrors the `engine =` values src/scenario/spec.cpp's parser accepts.
  for v in v1 v2; do
    grep -qE "engine ?= ?${v}\b" "$enginedoc" ||
      err "engine value '$v' is not documented in docs/ENGINE.md"
    grep -qE "engine ?= ?${v}\b|engine v1\|v2" "$root/docs/SCENARIOS.md" ||
      err "engine value '$v' is not documented in docs/SCENARIOS.md"
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "docs_check: FAILED" >&2
  exit 1
fi
echo "docs_check: OK (${#docs[@]} docs, $(echo "$presets" | wc -w) presets, $(echo "$estimators" | wc -w) estimators)"
