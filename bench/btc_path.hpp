#pragma once

// Shared scenario for the Section VII/VIII experiments (Figs. 15-18),
// instantiated from the scenario registry's flow-bearing `btc-path` preset:
// a path whose tight link mirrors the paper's Univ-Ioannina ->
// Univ-Delaware experiment — 8.2 Mb/s capacity, ~200 ms quiescent RTT,
// drop-tail buffer of ~180 ms drain time (the paper infers >= 170 kB from
// the RTT climb to 370 ms). Background traffic is a mix of window-limited
// TCP flows (whose throughput responds to RTT inflation and losses, the
// mechanism behind BTC's bandwidth "stealing" — declared as `flow tcp`
// entries and driven by tcp::SegmentTcpFlow) and light UDP. The benches
// only add their measurement-side agents (BTC connection or pathload
// session, plus the RTT prober) on top of the preset.

#include <cstdlib>
#include <memory>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/monitor.hpp"
#include "sim/path.hpp"
#include "sim/rtt_probe.hpp"
#include "sim/simulator.hpp"
#include "tcp/reno.hpp"
#include "tcp/workload.hpp"

namespace pathload::bench {

struct BtcTestbed {
  static constexpr Duration kReverseDelay = Duration::milliseconds(100);

  scenario::ScenarioInstance inst;
  sim::Simulator& sim;
  sim::Path* path;  // non-owning; keeps the pre-port `bed.path->` call sites
  std::unique_ptr<sim::RttProber> pinger;

  explicit BtcTestbed(std::uint64_t seed, Duration ping_period)
      : inst{[&] {
          scenario::ScenarioSpec spec = scenario::Registry::builtin().at("btc-path");
          spec.seed = seed;
          return spec;
        }()},
        sim{inst.simulator()},
        path{&inst.path()} {
    // The prober must exist before the warmup so RTTs are sampled while
    // the background TCP flows settle, as in the paper's timeline.
    pinger = std::make_unique<sim::RttProber>(sim, *path, ping_period, kReverseDelay);
    pinger->start();
    inst.start();  // launches the rwnd-capped flows + UDP, runs the 5 s settle
  }

  /// Aggregate bytes ACKed by the background TCP flows so far.
  DataSize cross_tcp_bytes() const { return inst.flow_bytes_acked(); }

  /// Ping RTT samples whose send time falls in [from, to).
  std::vector<double> rtt_samples_in(TimePoint from, TimePoint to) const {
    std::vector<double> out;
    for (const auto& s : pinger->samples()) {
      if (s.sent >= from && s.sent < to) out.push_back(s.rtt.secs());
    }
    return out;
  }
};

/// Interval length for the 5x5-minute timeline (PATHLOAD_QUICK shortens it).
inline Duration interval_length() {
  if (const char* quick = std::getenv("PATHLOAD_QUICK"); quick && quick[0] == '1') {
    return Duration::seconds(60);
  }
  return Duration::seconds(300);
}

}  // namespace pathload::bench
