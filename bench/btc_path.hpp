#pragma once

// Shared scenario for the Section VII/VIII experiments (Figs. 15-18): a
// path whose tight link mirrors the paper's Univ-Ioannina -> Univ-Delaware
// experiment — 8.2 Mb/s capacity, ~200 ms quiescent RTT, drop-tail buffer
// of ~180 ms drain time (the paper infers >= 170 kB from the RTT climb to
// 370 ms). Background traffic is a mix of window-limited TCP flows (whose
// throughput responds to RTT inflation and losses, the mechanism behind
// BTC's bandwidth "stealing") and light UDP.

#include <memory>
#include <vector>

#include "sim/monitor.hpp"
#include "sim/path.hpp"
#include "sim/rtt_probe.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "tcp/reno.hpp"
#include "util/rng.hpp"

namespace pathload::bench {

struct BtcTestbed {
  static constexpr double kCapacityMbps = 8.2;

  sim::Simulator sim;
  std::unique_ptr<sim::Path> path;
  std::vector<std::unique_ptr<tcp::TcpConnection>> cross_tcp;
  std::unique_ptr<sim::TrafficAggregate> cross_udp;
  std::unique_ptr<sim::RttProber> pinger;

  static constexpr Duration kForwardProp = Duration::milliseconds(100);
  static constexpr Duration kReverseDelay = Duration::milliseconds(100);

  explicit BtcTestbed(std::uint64_t seed, Duration ping_period) {
    const Rate capacity = Rate::mbps(kCapacityMbps);
    path = std::make_unique<sim::Path>(
        sim, std::vector<sim::HopSpec>{
                 {capacity, kForwardProp,
                  capacity.bytes_in(Duration::milliseconds(180))}});

    // Window-limited cross TCP: ~0.7 Mb/s each at the 200 ms base RTT.
    // TCP dominates the background mix, as on the paper's path, so that a
    // BTC connection has bandwidth to steal via RTT inflation and losses.
    tcp::TcpConfig limited;
    limited.advertised_window = 12.0;
    for (int i = 0; i < 5; ++i) {
      cross_tcp.push_back(
          std::make_unique<tcp::TcpConnection>(sim, *path, limited, kReverseDelay));
      cross_tcp.back()->sender().start();
    }
    // Light non-congestion-controlled background (~0.7 Mb/s).
    Rng rng{seed};
    cross_udp = std::make_unique<sim::TrafficAggregate>(
        sim, path->link(0), Rate::mbps(0.7), 5, sim::Interarrival::kPareto,
        sim::PacketSizeMix::paper_mix(), rng.fork());
    cross_udp->start();

    pinger = std::make_unique<sim::RttProber>(sim, *path, ping_period, kReverseDelay);
    pinger->start();

    sim.run_for(Duration::seconds(5));  // settle TCP + queues
  }

  /// Aggregate bytes ACKed by the cross TCP flows so far.
  DataSize cross_tcp_bytes() const {
    DataSize total{};
    for (const auto& c : cross_tcp) total += c->sender().bytes_acked();
    return total;
  }

  /// Ping RTT samples whose send time falls in [from, to).
  std::vector<double> rtt_samples_in(TimePoint from, TimePoint to) const {
    std::vector<double> out;
    for (const auto& s : pinger->samples()) {
      if (s.sent >= from && s.sent < to) out.push_back(s.rtt.secs());
    }
    return out;
  }
};

/// Interval length for the 5x5-minute timeline (PATHLOAD_QUICK shortens it).
inline Duration interval_length() {
  if (const char* quick = std::getenv("PATHLOAD_QUICK"); quick && quick[0] == '1') {
    return Duration::seconds(60);
  }
  return Duration::seconds(300);
}

}  // namespace pathload::bench
