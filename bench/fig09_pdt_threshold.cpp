// Figure 9: effect of the PDT threshold on accuracy, using ONLY the PDT
// metric for trend detection (as the paper does for this figure).
//
// A too-small threshold lets noise mark streams as type I (R "looks" above
// A) -> underestimation. A too-large threshold misses real trends -> the
// tool overestimates. The paper notes the PCT threshold behaves alike.

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 9", "pathload range vs PDT threshold (PDT-only detection)");
  const int repeats = bench::runs(8);
  std::printf("(averaged over %d seeds)\n\n", repeats);

  Table table{{"pdt_thresh", "avail_Mbps", "low_Mbps", "high_Mbps", "center"}};

  // The Fig. 4 topology from the registry at 50% tight load (A = 5 Mb/s);
  // only the trend-detection threshold varies.
  const scenario::ScenarioSpec spec =
      scenario::Registry::builtin().at("paper-path").with_load(0.5);

  for (double thr : {0.05, 0.20, 0.40, 0.60, 0.80, 0.95}) {
    core::PathloadConfig tool;
    tool.trend.mode = core::TrendConfig::Mode::kPdtOnly;
    tool.trend.pdt_threshold = thr;

    const auto rr =
        scenario::run_scenario_repeated(spec, tool, repeats, bench::seed() + (thr * 100));
    table.add_row({Table::num(thr, 2), "5.0",
                   Table::num(rr.mean_low().mbits_per_sec(), 2),
                   Table::num(rr.mean_high().mbits_per_sec(), 2),
                   Table::num((rr.mean_low() + rr.mean_high()).mbits_per_sec() / 2, 2)});
  }
  table.print();
  bench::expectation(
      "pathload underestimates the avail-bw when the PDT threshold is too "
      "small (~0) and overestimates when it is too large (~1); thresholds "
      "around the default 0.4 bracket A.");
  return 0;
}
