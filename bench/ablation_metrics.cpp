// Ablation: the trend-detection design choices of Section IV.
//
//  1. PCT-only vs PDT-only vs either (the tool's default): the paper says
//     "there are cases in which one of the two metrics is better than the
//     other"; either-of-both is the robust choice.
//  2. Median-of-groups preprocessing on vs off: robustness of stream
//     classification to OWD outliers.

#include <cstdio>

#include "bench/common.hpp"
#include "core/trend.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pathload;

namespace {

void run_detector_comparison(int runs) {
  Table table{{"detector", "avail_Mbps", "low_Mbps", "high_Mbps", "covers_A"}};
  const struct {
    const char* name;
    core::TrendConfig::Mode mode;
  } detectors[] = {{"combined(default)", core::TrendConfig::Mode::kCombined},
                   {"either(ToN text)", core::TrendConfig::Mode::kEither},
                   {"pct-only", core::TrendConfig::Mode::kPctOnly},
                   {"pdt-only", core::TrendConfig::Mode::kPdtOnly}};

  // The Fig. 5 path is exactly the registry's paper-path preset — no
  // inline re-dimensioning needed.
  const scenario::ScenarioSpec& spec = scenario::Registry::builtin().at("paper-path");
  for (const auto& d : detectors) {
    core::PathloadConfig tool;
    tool.trend.mode = d.mode;
    const auto rr = scenario::run_scenario_repeated(spec, tool, runs, bench::seed());
    table.add_row({d.name, "4.0", Table::num(rr.mean_low().mbits_per_sec(), 2),
                   Table::num(rr.mean_high().mbits_per_sec(), 2),
                   Table::num(rr.coverage(Rate::mbps(4)) * 100, 0) + "%"});
  }
  table.print();
}

void run_median_filter_ablation() {
  // Classification accuracy on synthetic OWD series: a true increasing
  // trend contaminated with occasional large outliers (cross-traffic
  // bursts / measurement glitches).
  Rng rng{bench::seed()};
  const int trials = 2000;
  Table table{{"series", "median_filter", "classified_I_%"}};

  for (const bool filter_on : {true, false}) {
    for (const bool trending : {true, false}) {
      int classified_increasing = 0;
      Rng local = rng.fork();
      for (int t = 0; t < trials; ++t) {
        std::vector<double> owds(100);
        for (int i = 0; i < 100; ++i) {
          double v = local.uniform(-0.3, 0.3);
          if (trending) v += 0.02 * i;
          if (local.uniform() < 0.05) v += local.uniform(-15.0, 15.0);  // outlier
          owds[static_cast<std::size_t>(i)] = v;
        }
        core::TrendConfig cfg;
        cfg.median_filter = filter_on;
        if (core::classify_owds(owds, cfg) == core::StreamClass::kIncreasing) {
          ++classified_increasing;
        }
      }
      table.add_row({trending ? "trend+outliers" : "noise+outliers",
                     filter_on ? "on" : "off",
                     Table::num(classified_increasing * 100.0 / trials, 1)});
    }
  }
  table.print();
}

}  // namespace

int main() {
  bench::banner("Ablation", "trend metrics (PCT/PDT) and median preprocessing");
  std::printf("-- detector variants on the Fig. 5 path (u = 60%%) --\n");
  run_detector_comparison(bench::runs(10));
  std::printf("\n-- median-of-groups filter vs raw series --\n");
  run_median_filter_ablation();
  bench::expectation(
      "the combined three-way rule (the released tool's logic) brackets A; "
      "binary PCT-based detection is badly biased low under bursty traffic "
      "(PCT's false-increasing rate poisons fleets), which is exactly why "
      "pathload gates each metric with an ambiguity band and discards "
      "conflicting streams. The median filter keeps true trends detectable "
      "under outliers without raising the false-positive rate on noise.");
  return 0;
}
