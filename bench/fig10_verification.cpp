// Figure 10: verification experiment — pathload vs MRTG readings of the
// tight link, on a path whose tight link (155 Mb/s OC-3, heavily used)
// differs from its narrow link (100 Mb/s Fast Ethernet, lightly used).
//
// As in the paper: pathload runs consecutively through a measurement
// window; its per-run ranges are combined with the duration-weighted
// average of Eq. (11) and compared against the window's MRTG avail-bw
// reading, quantized to 6 Mb/s bands like the paper's graphs. 12
// independent runs under slightly different load conditions.
//
// Built on the unified harness: the path is a declarative ScenarioSpec
// (text form, swept with with_load), and pathload runs as a registry
// estimator whose EstimateReport supplies both the estimate and the probe
// footprint the MRTG subtraction needs.
//
// Scaling note: MRTG windows are 45 s here instead of 5 min to keep the
// single-core bench fast; the comparison logic is unchanged.

#include <cstdio>
#include <vector>

#include "baselines/estimators.hpp"
#include "bench/common.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/spec.hpp"
#include "sim/monitor.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 10", "pathload vs MRTG on a tight!=narrow path (12 runs)");

  // Hop 0: the tight link (OC-3-like, 155 Mb/s, heavily used; load varies
  // per run via with_load). Hop 1: the narrow link (Fast-Ethernet-like,
  // 100 Mb/s, ~5 Mb/s of light cross traffic).
  const scenario::ScenarioSpec base = scenario::ScenarioSpec::parse(R"(
    name = fig10-tight-not-narrow
    description = OC-3 tight link upstream of a lightly used Fast-Ethernet narrow link
    warmup_s = 1
    hops = 2
    hop.0.capacity_mbps = 155
    hop.0.delay_ms = 15
    hop.0.buffer_ms = 400
    hop.0.traffic.model = pareto
    hop.0.traffic.utilization = 0.5
    hop.0.traffic.sources = 30
    hop.1.capacity_mbps = 100
    hop.1.delay_ms = 15
    hop.1.buffer_ms = 400
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.05
    hop.1.traffic.sources = 5
  )");

  const Duration window = Duration::seconds(45);
  Table table{{"run", "util_%", "mrtg_band_Mbps", "pathload_Mbps", "in_band",
               "pl_runs"}};

  // The paper's Fig. 10 parameters: omega=1, chi=1.5 Mb/s (defaults),
  // f=0.7, PCT 0.6, PDT 0.5.
  const auto& registry = baselines::builtin_estimators();
  const auto estimator =
      registry.make("pathload", "pct_threshold=0.6, pdt_threshold=0.5");

  int hits = 0;
  const int total_runs = 12;
  Rng seed_stream{bench::seed()};  // one forked seed per run, as pre-harness
  for (int run = 1; run <= total_runs; ++run) {
    // Slightly different operating point each run, like a real path
    // observed at different times of day.
    const double util = 0.44 + 0.02 * run;  // 46%..68% -> A in [50, 87] Mb/s

    scenario::ScenarioSpec spec = base.with_load(util);
    spec.seed = seed_stream.fork().engine()();
    const std::uint64_t seed = spec.seed;
    scenario::ScenarioInstance inst{std::move(spec)};
    inst.start();
    sim::Simulator& sim = inst.simulator();

    // MRTG-style byte counters over the window. Consecutive pathload runs
    // themselves add ~R/10 of probe load to the link; in the paper that
    // footprint is diluted across a 5-minute window, so we subtract the
    // known probe bytes — straight from the EstimateReports — to get the
    // cross-traffic avail-bw the paper's MRTG graphs effectively show.
    const DataSize bytes_at_start = inst.path().link(0).bytes_forwarded();
    const TimePoint window_start = sim.now();

    scenario::SimProbeChannel channel{sim, inst.path()};
    Rng rng{seed};

    // Run pathload consecutively across the window, Eq. (11)-averaging.
    std::vector<WeightedSample> samples;
    const TimePoint window_end = sim.now() + window;
    int pl_runs = 0;
    DataSize probe_bytes{};
    while (sim.now() < window_end) {
      const core::EstimateReport report = estimator->run(channel, rng);
      samples.push_back({report.center().mbits_per_sec(), report.elapsed});
      probe_bytes += report.bytes_sent;
      ++pl_runs;
    }

    const Duration actual_window = sim.now() - window_start;
    const DataSize link_bytes =
        inst.path().link(0).bytes_forwarded() - bytes_at_start;
    const double cross_util =
        (link_bytes - probe_bytes).bits() /
        (Rate::mbps(155).bits_per_sec() * actual_window.secs());
    const double pathload_avg = duration_weighted_average(samples);
    const Rate mrtg_avail = Rate::mbps(155) * (1.0 - cross_util);
    const auto band = sim::UtilizationMonitor::quantize(mrtg_avail, Rate::mbps(6));
    const bool in_band = pathload_avg >= band.low.mbits_per_sec() &&
                         pathload_avg <= band.high.mbits_per_sec();
    if (in_band) ++hits;

    table.add_row({Table::num(run, 0), Table::num(util * 100, 0),
                   "[" + Table::num(band.low.mbits_per_sec(), 0) + "," +
                       Table::num(band.high.mbits_per_sec(), 0) + "]",
                   Table::num(pathload_avg, 1), in_band ? "yes" : "no",
                   Table::num(pl_runs, 0)});
  }
  table.print();
  std::printf("\nwithin MRTG band: %d / %d runs\n", hits, total_runs);
  bench::expectation(
      "the pathload estimate falls within the (6 Mb/s-quantized) MRTG band "
      "in ~10 of 12 runs, with marginal deviations otherwise.");
  return 0;
}
