// Figure 6: does pathload's accuracy depend on the number and load of the
// NON-tight links?
//
// Ct = 10 Mb/s, ut = 60% (A = 4 Mb/s), beta = 2 (non-tight avail-bw fixed
// at 8 Mb/s); the non-tight utilization ux is swept over {20,40,60,80}%
// for path lengths H = 3 and H = 6. Heavier ux means more queueing noise
// at the other links — but the end-to-end avail-bw stays 4 Mb/s.

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 6", "pathload range vs non-tight link load (H = 3, 6)");
  const int runs = bench::runs(15);
  std::printf("(runs per point: %d)\n\n", runs);

  Table table{{"hops", "ux_%", "avail_Mbps", "pl_low_Mbps", "pl_high_Mbps", "center",
               "covers_A"}};

  // The registry's paper-path preset is the single definition of the Fig. 4
  // topology; this bench varies only its hop count and non-tight load.
  const scenario::ScenarioSpec& base = scenario::Registry::builtin().at("paper-path");

  for (int hops : {3, 6}) {
    for (double ux : {0.20, 0.40, 0.60, 0.80}) {
      scenario::PaperPathConfig path = *base.paper;
      path.hops = hops;
      path.nontight_utilization = ux;
      const scenario::ScenarioSpec spec =
          scenario::ScenarioSpec::from_paper(base.name, base.description, path);

      core::PathloadConfig tool;
      const auto rr = scenario::run_scenario_repeated(
          spec, tool, runs, bench::seed() + hops * 10000 + (ux * 100));
      const Rate truth = spec.avail_bw();
      table.add_row({Table::num(hops, 0), Table::num(ux * 100, 0),
                     Table::num(truth.mbits_per_sec(), 1),
                     Table::num(rr.mean_low().mbits_per_sec(), 2),
                     Table::num(rr.mean_high().mbits_per_sec(), 2),
                     Table::num((rr.mean_low() + rr.mean_high()).mbits_per_sec() / 2, 2),
                     Table::num(rr.coverage(truth) * 100, 0) + "%"});
    }
  }
  table.print();
  bench::expectation(
      "the estimated range includes A = 4 Mb/s independent of the number of "
      "non-tight links or their load; range center within ~10% of A. The "
      "non-tight links add OWD noise but do not change the trend formed at "
      "the tight link.");
  return 0;
}
