// Hot-path microbenchmarks (google-benchmark): the simulator's event loop
// and the SLoPS analysis pipeline. These bound how much real time a
// simulated experiment costs and how much CPU the live receiver spends per
// stream.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "baselines/estimators.hpp"
#include "core/stream.hpp"
#include "core/trend.hpp"
#include "fluid/fluid_model.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/fluid_traffic.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/alias_sampler.hpp"
#include "util/rng.hpp"

using namespace pathload;

namespace {

void BM_EventScheduleRun(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(Duration::microseconds(i), [&sink] { ++sink; });
    }
    sim.run_all();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleRun);

void BM_LinkForwarding(benchmark::State& state) {
  sim::Simulator sim;
  sim::Link link{sim, "l", Rate::mbps(1000), Duration::zero(),
                 DataSize::bytes(10'000'000)};
  sim::Packet p;
  p.size_bytes = 500;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) link.handle(p);
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkForwarding);

void BM_TimerRescheduleInPlace(benchmark::State& state) {
  // Cost of one period of a self-re-arming timer: pop + fire + re-arm with
  // no closure construction and no allocation. This is the inner loop of
  // every periodic source (cross traffic, link drain, probers).
  sim::Simulator sim;
  std::uint64_t fires = 0;
  sim::Simulator::TimerHandle timer = sim.make_timer([&] {
    ++fires;
    timer.schedule_in(Duration::microseconds(100));
  });
  timer.schedule_in(Duration::microseconds(100));
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) sim.run_next();
  }
  benchmark::DoNotOptimize(fires);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TimerRescheduleInPlace);

void BM_AliasSamplerPaperMix(benchmark::State& state) {
  // O(1) weighted packet-size draw (one uniform, no allocation); the seed
  // engine built a weights vector per call.
  const auto mix = sim::PacketSizeMix::paper_mix();
  Rng rng{1};
  std::int64_t sink = 0;
  for (auto _ : state) {
    sink += mix.sample(rng);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasSamplerPaperMix);

void BM_SegmentFlowRouting(benchmark::State& state) {
  // Segment attach/detach plus per-packet routing through a 4-hop chain
  // whose middle segment [1, 2] hosts the flow: bounds the junction
  // exit-hop check and the segment demux against the plain end-to-end
  // forwarding path (BM_LinkForwarding is the 1-hop baseline).
  sim::Simulator sim;
  sim::Path path{sim, std::vector<sim::HopSpec>(
                          4, sim::HopSpec{Rate::mbps(1000), Duration::zero(),
                                          DataSize::bytes(10'000'000)})};
  struct Sink final : sim::PacketHandler {
    std::uint64_t count{0};
    void handle(const sim::Packet&) override { ++count; }
  } sink;
  const sim::Segment seg{1, 2};
  for (auto _ : state) {
    const std::uint32_t flow = sim.next_flow_id();
    path.segment_exit(seg).register_flow(flow, &sink);
    sim::Packet p;
    p.flow = flow;
    p.kind = sim::PacketKind::kTcpData;
    p.size_bytes = 500;
    p.transit = true;
    p.exit_hop = path.exit_hop_value(seg);
    for (int i = 0; i < 1000; ++i) path.segment_entry(seg).handle(p);
    sim.run_all();
    path.segment_exit(seg).unregister_flow(flow);
  }
  benchmark::DoNotOptimize(sink.count);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SegmentFlowRouting);

void BM_CrossTrafficSecond(benchmark::State& state) {
  // Cost of one simulated second of 10-source Pareto cross traffic at
  // 6 Mb/s (the Fig. 5 operating point).
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Link link{sim, "l", Rate::mbps(10), Duration::zero(),
                   DataSize::bytes(1'000'000)};
    sim::TrafficAggregate agg{sim,  link, Rate::mbps(6), 10,
                              sim::Interarrival::kPareto,
                              sim::PacketSizeMix::paper_mix(), Rng{1}};
    agg.start();
    sim.run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(link.bytes_forwarded());
  }
}
BENCHMARK(BM_CrossTrafficSecond);

void BM_CrossTrafficSecondV2(benchmark::State& state) {
  // The same operating point under the engine-v2 mapping: renewal cross
  // traffic collapses to a constant fluid rate on a fluid-mode link, so a
  // simulated second costs zero packet events. Paired with
  // BM_CrossTrafficSecond this is the A/B that tools/bench_ab.sh records.
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Link link{sim, "l", Rate::mbps(10), Duration::zero(),
                   DataSize::bytes(1'000'000)};
    link.enable_fluid_mode();
    sim::FluidConstantSource src{sim, link, Rate::mbps(6)};
    src.start();
    sim.run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(link.bytes_forwarded());
  }
}
BENCHMARK(BM_CrossTrafficSecondV2);

void BM_SimSecondsPerSec(benchmark::State& state) {
  // Headline engine metric: simulated seconds per wall-clock second on the
  // full paper-path scenario (3 hops, 10 Pareto sources each, utilization
  // accounting live). Arg 0 = engine v1, Arg 1 = engine v2; each iteration
  // simulates warmup (2 s, run by start()) + 1 s, so items/s x 3 =
  // simulated-seconds/s.
  scenario::ScenarioSpec spec = scenario::Registry::builtin().at("paper-path");
  if (state.range(0) != 0) spec.engine = scenario::EngineVersion::kV2;
  for (auto _ : state) {
    scenario::ScenarioInstance inst{spec};
    inst.start();
    inst.simulator().run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(inst.tight_link().bytes_forwarded());
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_SimSecondsPerSec)->Arg(0)->Arg(1);

void BM_ProbeFleetSecond(benchmark::State& state) {
  // A full v2 pathload session on paper-path (probe fleets over fluid
  // links) with burst batching off (arg 0) vs on (arg 1): the A/B for the
  // closed-form burst pass + Simulator::schedule_batch. Before measuring,
  // pin the contract the speedup rides on: batched and unbatched must be
  // byte-identical on the seed-77 anchor (bench_smoke_engine_v2 runs this
  // in the default CI tier).
  scenario::ScenarioSpec spec = scenario::Registry::builtin().at("paper-path");
  spec.engine = scenario::EngineVersion::kV2;
  core::PathloadConfig tool;
  static const bool identical = [&] {
    scenario::SimProbeChannel::set_burst_batching(false);
    const auto off = scenario::run_scenario_once(spec, tool, 77);
    scenario::SimProbeChannel::set_burst_batching(true);
    const auto on = scenario::run_scenario_once(spec, tool, 77);
    return off.range.low.bits_per_sec() == on.range.low.bits_per_sec() &&
           off.range.high.bits_per_sec() == on.range.high.bits_per_sec() &&
           off.elapsed.nanos() == on.elapsed.nanos() &&
           off.fleets == on.fleets;
  }();
  if (!identical) {
    state.SkipWithError(
        "batched v2 probe path is not byte-identical to unbatched on "
        "paper-path seed 77");
    for (auto _ : state) {
    }
    return;
  }
  scenario::SimProbeChannel::set_burst_batching(state.range(0) != 0);
  for (auto _ : state) {
    const auto res = scenario::run_scenario_once(spec, tool, 77);
    benchmark::DoNotOptimize(res.fleets);
  }
  scenario::SimProbeChannel::set_burst_batching(true);
}
BENCHMARK(BM_ProbeFleetSecond)->Arg(0)->Arg(1);

void BM_TcpScenarioSecond(benchmark::State& state) {
  // One simulated second (plus the 2 s warmup run by start()) of the
  // tcp-bg-greedy scenario under engine v2, with the TCP flow on the
  // packet backend (arg 0, `mode=packet`) vs the native fluid AIMD
  // backend (arg 1). This is the Amdahl wall PR 9 knocks down: with
  // cross traffic already fluid, the greedy flow's per-packet events are
  // the remaining cost.
  scenario::ScenarioSpec spec =
      scenario::Registry::builtin().at("tcp-bg-greedy");
  spec.engine = scenario::EngineVersion::kV2;
  if (state.range(0) == 0) {
    for (auto& f : spec.flows) f.mode = scenario::FlowSpec::Mode::kPacket;
  }
  for (auto _ : state) {
    scenario::ScenarioInstance inst{spec};
    inst.start();
    inst.simulator().run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(inst.flow_bytes_acked());
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_TcpScenarioSecond)->Arg(0)->Arg(1);

void BM_CcDuelSecond(benchmark::State& state) {
  // One simulated second of the tcp-vs-probe-duel scenario under engine
  // v2 with the competing flow on each congestion policy: reno (arg 0),
  // cubic (arg 1), bbr (arg 2). The A/B rows in BENCH_engine.json track
  // what the pluggable-CC seam and the model-based policies cost relative
  // to the frozen reno epoch body.
  static const char* kCc[] = {"reno", "cubic", "bbr"};
  scenario::ScenarioSpec spec =
      scenario::Registry::builtin().at("tcp-vs-probe-duel");
  spec.engine = scenario::EngineVersion::kV2;
  for (auto& f : spec.flows) f.cc = kCc[state.range(0)];
  for (auto _ : state) {
    scenario::ScenarioInstance inst{spec};
    inst.start();
    inst.simulator().run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(inst.flow_bytes_acked());
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_CcDuelSecond)->Arg(0)->Arg(1)->Arg(2);

std::vector<double> synthetic_owds(int k) {
  Rng rng{7};
  std::vector<double> owds(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    owds[static_cast<std::size_t>(i)] = 0.01 * i + rng.uniform(-1.0, 1.0);
  }
  return owds;
}

void BM_MedianGroups(benchmark::State& state) {
  const auto owds = synthetic_owds(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::median_groups(owds));
  }
}
BENCHMARK(BM_MedianGroups)->Arg(100)->Arg(1000);

void BM_TrendAnalysis(benchmark::State& state) {
  const auto owds = synthetic_owds(static_cast<int>(state.range(0)));
  const core::TrendConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_trend(owds, cfg));
  }
}
BENCHMARK(BM_TrendAnalysis)->Arg(100)->Arg(1000);

void BM_MakeStreamSpec(benchmark::State& state) {
  const core::PathloadConfig cfg;
  double r = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_stream_spec(Rate::mbps(r), cfg));
    r = r < 100.0 ? r + 1.3 : 1.0;
  }
}
BENCHMARK(BM_MakeStreamSpec);

void BM_FluidOwdSeries(benchmark::State& state) {
  const fluid::FluidPath path{{
      {Rate::mbps(20), Rate::mbps(12)},
      {Rate::mbps(10), Rate::mbps(6)},
      {Rate::mbps(20), Rate::mbps(12)},
  }};
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.owd_series(Rate::mbps(6), DataSize::bytes(800), 100));
  }
}
BENCHMARK(BM_FluidOwdSeries);

void BM_SweepRunner(benchmark::State& state) {
  // Four repeated pathload measurements sharded over state.range(0)
  // threads; results are byte-identical across thread counts, only the
  // wall clock changes.
  scenario::PaperPathConfig path;
  path.hops = 1;
  path.tight_capacity = Rate::mbps(10);
  path.tight_utilization = 0.5;
  path.warmup = Duration::milliseconds(200);
  const core::PathloadConfig tool;
  scenario::SweepRunner runner{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    const auto rr = scenario::sweep_pathload_repeated(path, tool, 4, /*seed0=*/7, runner);
    benchmark::DoNotOptimize(rr.results.data());
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_EstimatorMatrix(benchmark::State& state) {
  // The comparison harness end-to-end: a tiny 2-estimator x 2-scenario
  // matrix (fast probe-stream tools, short warmups, 1 run per cell). This
  // bounds the fixed cost of "compare anything against anything" — cell
  // planning, per-run instantiation, channel metering, report reduction —
  // and its ctest wrapper (bench_smoke_estimator_matrix) records rows in
  // BENCH_micro.json so a harness slowdown fails loudly.
  const auto& ereg = pathload::baselines::builtin_estimators();
  const std::vector<scenario::MatrixEstimator> estimators = {
      scenario::MatrixEstimator::from_registry(ereg, "cprobe",
                                               "trains=2, train_length=30"),
      scenario::MatrixEstimator::from_registry(ereg, "pktpair", "pairs=10"),
  };
  scenario::ScenarioSpec paper = scenario::Registry::builtin().at("paper-path");
  paper.warmup = Duration::milliseconds(200);
  scenario::ScenarioSpec tight =
      scenario::Registry::builtin().at("tight-not-narrow");
  tight.warmup = Duration::milliseconds(200);
  scenario::SweepRunner runner{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    const auto cells = scenario::run_matrix(estimators, {paper, tight}, {},
                                            /*runs=*/1, /*seed0=*/11, runner);
    benchmark::DoNotOptimize(cells.data());
  }
  state.SetItemsProcessed(state.iterations() * 4);  // cells per matrix
}
BENCHMARK(BM_EstimatorMatrix)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_EstimatorMatrixNewTools(benchmark::State& state) {
  // The PR 5 estimators end-to-end on the harness, one run per cell on a
  // short-warmup paper-path: spruce's Poisson-scheduled pairs, igi's
  // turning-point search, pathchirp's gapped (non-periodic) streams.
  // Bounds the cost of the gap-model and chirp probing loops the same way
  // BM_EstimatorMatrix bounds the classic tools; the ctest wrapper
  // bench_smoke_new_estimators records rows so a regression fails loudly.
  const auto& ereg = pathload::baselines::builtin_estimators();
  const std::vector<scenario::MatrixEstimator> estimators = {
      scenario::MatrixEstimator::from_registry(ereg, "spruce",
                                               "capacity_mbps=10, pairs=25"),
      scenario::MatrixEstimator::from_registry(ereg, "igi", "capacity_mbps=10"),
      scenario::MatrixEstimator::from_registry(ereg, "pathchirp", "chirps=4"),
  };
  scenario::ScenarioSpec paper = scenario::Registry::builtin().at("paper-path");
  paper.warmup = Duration::milliseconds(200);
  scenario::SweepRunner runner{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    const auto cells = scenario::run_matrix(estimators, {paper}, {},
                                            /*runs=*/1, /*seed0=*/13, runner);
    benchmark::DoNotOptimize(cells.data());
  }
  state.SetItemsProcessed(state.iterations() * 3);  // cells per matrix
}
BENCHMARK(BM_EstimatorMatrixNewTools)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

// BENCHMARK_MAIN, plus a default JSON sink: unless the caller passes its
// own --benchmark_out, results also land in BENCH_micro.json so perf runs
// leave a machine-readable record (bench_smoke relies on this).
int main(int argc, char** argv) {
  std::vector<char*> args{argv, argv + argc};
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  bool has_fmt = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_out_format=", 23) == 0) has_fmt = true;
  }
  // Inject the default only when the caller expressed no output preference
  // at all; a caller-chosen format must never end up inside a file named
  // .json, and a caller-chosen file keeps its own format.
  if (!has_out && !has_fmt) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
