// Hot-path microbenchmarks (google-benchmark): the simulator's event loop
// and the SLoPS analysis pipeline. These bound how much real time a
// simulated experiment costs and how much CPU the live receiver spends per
// stream.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/stream.hpp"
#include "core/trend.hpp"
#include "fluid/fluid_model.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

using namespace pathload;

namespace {

void BM_EventScheduleRun(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_in(Duration::microseconds(i), [&sink] { ++sink; });
    }
    sim.run_all();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleRun);

void BM_LinkForwarding(benchmark::State& state) {
  sim::Simulator sim;
  sim::Link link{sim, "l", Rate::mbps(1000), Duration::zero(),
                 DataSize::bytes(10'000'000)};
  sim::Packet p;
  p.size_bytes = 500;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) link.handle(p);
    sim.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkForwarding);

void BM_CrossTrafficSecond(benchmark::State& state) {
  // Cost of one simulated second of 10-source Pareto cross traffic at
  // 6 Mb/s (the Fig. 5 operating point).
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Link link{sim, "l", Rate::mbps(10), Duration::zero(),
                   DataSize::bytes(1'000'000)};
    sim::TrafficAggregate agg{sim,  link, Rate::mbps(6), 10,
                              sim::Interarrival::kPareto,
                              sim::PacketSizeMix::paper_mix(), Rng{1}};
    agg.start();
    sim.run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(link.bytes_forwarded());
  }
}
BENCHMARK(BM_CrossTrafficSecond);

std::vector<double> synthetic_owds(int k) {
  Rng rng{7};
  std::vector<double> owds(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    owds[static_cast<std::size_t>(i)] = 0.01 * i + rng.uniform(-1.0, 1.0);
  }
  return owds;
}

void BM_MedianGroups(benchmark::State& state) {
  const auto owds = synthetic_owds(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::median_groups(owds));
  }
}
BENCHMARK(BM_MedianGroups)->Arg(100)->Arg(1000);

void BM_TrendAnalysis(benchmark::State& state) {
  const auto owds = synthetic_owds(static_cast<int>(state.range(0)));
  const core::TrendConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_trend(owds, cfg));
  }
}
BENCHMARK(BM_TrendAnalysis)->Arg(100)->Arg(1000);

void BM_MakeStreamSpec(benchmark::State& state) {
  const core::PathloadConfig cfg;
  double r = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_stream_spec(Rate::mbps(r), cfg));
    r = r < 100.0 ? r + 1.3 : 1.0;
  }
}
BENCHMARK(BM_MakeStreamSpec);

void BM_FluidOwdSeries(benchmark::State& state) {
  const fluid::FluidPath path{{
      {Rate::mbps(20), Rate::mbps(12)},
      {Rate::mbps(10), Rate::mbps(6)},
      {Rate::mbps(20), Rate::mbps(12)},
  }};
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.owd_series(Rate::mbps(6), DataSize::bytes(800), 100));
  }
}
BENCHMARK(BM_FluidOwdSeries);

}  // namespace

BENCHMARK_MAIN();
