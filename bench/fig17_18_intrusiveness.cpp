// Figures 17-18 (Section VIII): is pathload intrusive?
//
// Same timeline as Figs. 15-16, but during (B) and (D) pathload runs
// back-to-back instead of a BTC connection, and ping samples RTT every
// 100 ms (the paper deliberately looks at sub-second timescales).
//
// Reproduced claims: the per-interval avail-bw shows no measurable
// decrease while pathload runs; RTTs show no measurable increase; no
// probe stream and no ping packet is lost.

#include <cstdio>

#include "bench/btc_path.hpp"
#include "bench/common.hpp"
#include "core/session.hpp"
#include "scenario/sim_channel.hpp"
#include "sim/monitor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 17-18", "pathload intrusiveness: avail-bw and 100 ms RTTs");
  const Duration interval = bench::interval_length();
  std::printf("(interval length: %.0f s)\n\n", interval.secs());

  bench::BtcTestbed bed{bench::seed(), Duration::milliseconds(100)};
  sim::UtilizationMonitor mrtg{bed.sim, bed.path->link(0), interval};
  mrtg.start();

  scenario::SimProbeChannel channel{bed.sim, *bed.path};
  core::PathloadConfig tool;

  Table table{{"interval", "pathload", "availbw_Mbps", "pl_runs", "pl_report_Mbps",
               "rtt_ms_p50", "rtt_ms_p95", "probe_loss", "ping_loss"}};

  std::vector<double> quiet_avail;
  std::vector<double> busy_avail;
  std::vector<double> quiet_rtt95;
  std::vector<double> busy_rtt95;

  for (char label = 'A'; label <= 'E'; ++label) {
    const bool pl_on = (label == 'B' || label == 'D');
    const TimePoint start = bed.sim.now();
    const std::uint64_t pings_before = bed.pinger->sent();
    const auto answered_before = bed.pinger->samples().size();

    int pl_runs = 0;
    std::vector<WeightedSample> reports;
    std::int64_t probe_packets = 0;
    DataSize probe_bytes{};
    double probe_loss = 0.0;
    if (pl_on) {
      const TimePoint end = start + interval;
      while (bed.sim.now() < end) {
        core::PathloadSession session{tool};
        const auto result = session.run(channel);
        reports.push_back({result.range.center().mbits_per_sec(), result.elapsed});
        ++pl_runs;
        probe_packets += result.packets_sent;
        probe_bytes += result.bytes_sent;
      }
      std::uint64_t drops = 0;
      for (std::size_t i = 0; i < bed.path->hop_count(); ++i) {
        drops += bed.path->link(i).drops_for_flow(channel.flow());
      }
      probe_loss = probe_packets > 0
                       ? static_cast<double>(drops) / static_cast<double>(probe_packets)
                       : 0.0;
    } else {
      bed.sim.run_for(interval);
    }

    // Let the last ping answers come home before computing losses.
    const auto rtts = bed.rtt_samples_in(start, bed.sim.now() - Duration::seconds(1));
    const std::uint64_t pings_sent = bed.pinger->sent() - pings_before;
    const auto answered =
        static_cast<std::uint64_t>(bed.pinger->samples().size() - answered_before);
    const auto& reading = mrtg.readings().back();
    const double rtt95 = percentile(rtts, 0.95) * 1000;

    // The raw MRTG reading counts pathload's own probe bytes; report the
    // cross-traffic avail-bw so the "does pathload displace traffic?"
    // question is answered separately from its (bounded) own footprint.
    const double probe_rate =
        rate_of(probe_bytes, bed.sim.now() - start).mbits_per_sec();
    (pl_on ? busy_avail : quiet_avail)
        .push_back(reading.avail_bw.mbits_per_sec() + probe_rate);
    (pl_on ? busy_rtt95 : quiet_rtt95).push_back(rtt95);

    table.add_row(
        {std::string(1, label), pl_on ? "yes" : "no",
         Table::num(reading.avail_bw.mbits_per_sec(), 2),
         pl_on ? Table::num(pl_runs, 0) : "-",
         pl_on ? Table::num(duration_weighted_average(reports), 2) : "-",
         Table::num(percentile(rtts, 0.50) * 1000, 0), Table::num(rtt95, 0),
         pl_on ? Table::num(probe_loss * 100, 2) + "%" : "-",
         Table::num(
             pings_sent > answered
                 ? static_cast<double>(pings_sent - answered) / pings_sent * 100.0
                 : 0.0,
             2) +
             "%"});
  }
  table.print();

  auto mean = [](const std::vector<double>& v) {
    OnlineStats s;
    for (double x : v) s.add(x);
    return s.mean();
  };
  std::printf(
      "\ncross-traffic avail-bw quiet vs pathload intervals: %.2f vs %.2f Mb/s "
      "(%.1f%% diff; probe footprint excluded)\n",
      mean(quiet_avail), mean(busy_avail),
      (mean(quiet_avail) - mean(busy_avail)) / mean(quiet_avail) * 100.0);
  std::printf("95th-pct RTT quiet vs pathload intervals: %.0f vs %.0f ms\n",
              mean(quiet_rtt95), mean(busy_rtt95));
  bench::expectation(
      "no measurable avail-bw decrease and no measurable RTT increase while "
      "pathload runs (contrast with Fig. 15-16's BTC); no stream or ping "
      "losses. Streams are short (K*T), never pipelined, and fleets idle "
      "so the average probing rate stays below R/10.");
  return 0;
}
