// Figure 14: effect of the fleet length N on the measured variability.
//
// A fleet samples the R-vs-A relation N times over a fleet duration that
// grows with N: a longer measurement window tracks wider excursions of the
// avail-bw process, so the grey region — and rho — grow with N; at the
// same time the run-to-run variation of the width shrinks (steeper CDF).

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 14", "CDF of rho vs fleet length N");
  const int runs = bench::runs(30);
  std::printf("(runs per N: %d; paper used 110)\n\n", runs);

  Table table{{"percentile", "rho(N=6)", "rho(N=12)", "rho(N=24)"}};
  std::vector<std::vector<double>> rho_columns;
  std::vector<double> spreads;

  // Same path derivation as bench/fig13: the paper-path preset collapsed
  // to its tight link at 55% load, byte-identical to the pre-port inline
  // PaperPathConfig.
  const scenario::ScenarioSpec& base = scenario::Registry::builtin().at("paper-path");

  for (int n : {6, 12, 24}) {
    Rng rng{bench::seed() + static_cast<std::uint64_t>(n)};
    std::vector<double> rhos;
    for (int i = 0; i < runs; ++i) {
      scenario::PaperPathConfig path = *base.paper;
      path.hops = 1;
      path.tight_utilization = 0.55;
      const scenario::ScenarioSpec spec =
          scenario::ScenarioSpec::from_paper(base.name, base.description, path);

      core::PathloadConfig tool;
      tool.streams_per_fleet = n;
      const auto result = scenario::run_scenario_once(spec, tool, rng.engine()());
      rhos.push_back(result.range.relative_variation());
    }
    spreads.push_back(percentile(rhos, 0.95) - percentile(rhos, 0.05));
    rho_columns.push_back(std::move(rhos));
  }

  for (int p = 5; p <= 95; p += 10) {
    std::vector<std::string> row{Table::num(p, 0)};
    for (const auto& col : rho_columns) {
      row.push_back(Table::num(percentile(col, p / 100.0), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nmedian rho: N=6: %.2f  N=12: %.2f  N=24: %.2f\n",
              percentile(rho_columns[0], 0.5), percentile(rho_columns[1], 0.5),
              percentile(rho_columns[2], 0.5));
  std::printf("CDF spread (p95-p5): N=6: %.2f  N=12: %.2f  N=24: %.2f\n", spreads[0],
              spreads[1], spreads[2]);
  bench::expectation(
      "as the fleet duration grows (larger N), the measured variability "
      "increases while the variation across runs decreases (steeper CDF).");
  return 0;
}
