// Figure 7: accuracy vs the path tightness factor beta = Ax / At.
//
// As beta -> 1 every link's avail-bw approaches the tight link's; with
// beta = 1 and ux = ut ALL links are tight links. The paper's key negative
// result: pathload underestimates the avail-bw when the path has several
// tight links, and the error grows with the hop count (probability
// 1 - (1 - p)^M that some link imprints an increasing trend).

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 7", "pathload range vs path tightness factor beta (H = 3, 6)");
  const int runs = bench::runs(15);
  std::printf("(runs per point: %d)\n\n", runs);

  Table table{{"hops", "beta", "avail_Mbps", "pl_low_Mbps", "pl_high_Mbps", "center",
               "covers_A", "underest_%"}};

  // The registry's paper-path preset is the single definition of the Fig. 4
  // topology; this bench varies only its hop count and tightness factor.
  const scenario::ScenarioSpec& base = scenario::Registry::builtin().at("paper-path");

  for (int hops : {3, 6}) {
    for (double beta : {1.0, 1.2, 1.5, 2.0}) {
      scenario::PaperPathConfig path = *base.paper;
      path.hops = hops;
      path.beta = beta;
      scenario::ScenarioSpec spec =
          scenario::ScenarioSpec::from_paper(base.name, base.description, path);

      core::PathloadConfig tool;
      const auto rr = scenario::run_scenario_repeated(
          spec, tool, runs, bench::seed() + hops * 1000 + (beta * 100));
      const Rate truth = spec.avail_bw();
      const double center =
          (rr.mean_low() + rr.mean_high()).mbits_per_sec() / 2.0;
      const double underestimate =
          (truth.mbits_per_sec() - center) / truth.mbits_per_sec() * 100.0;
      table.add_row({Table::num(hops, 0), Table::num(beta, 1),
                     Table::num(truth.mbits_per_sec(), 1),
                     Table::num(rr.mean_low().mbits_per_sec(), 2),
                     Table::num(rr.mean_high().mbits_per_sec(), 2),
                     Table::num(center, 2),
                     Table::num(rr.coverage(truth) * 100, 0) + "%",
                     Table::num(underestimate, 1)});
    }
  }
  table.print();
  bench::expectation(
      "with a single tight link (beta >= 1.5) the range covers A = 4 Mb/s; "
      "as beta -> 1 (all links tight) pathload underestimates, and the "
      "underestimation is larger for H = 6 than for H = 3.");
  return 0;
}
