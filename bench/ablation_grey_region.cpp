// Ablation: what the grey region buys.
//
// SLoPS extends plain binary search with grey bounds [Gmin, Gmax] and a
// second resolution chi. We compare the full algorithm against a
// "no-grey" variant (grey verdicts treated as R > A, a common naive
// simplification) on a bursty path where the avail-bw genuinely varies at
// stream timescale.

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Ablation", "grey region on vs off (bursty path, u = 75%)");
  const int runs = bench::runs(12);

  Table table{{"variant", "chi_Mbps", "low_Mbps", "high_Mbps", "covers_A",
               "fleets", "latency_s"}};

  // The registry's paper-path preset is the topology baseline; this bench
  // collapses it to a single heavily loaded, weakly multiplexed hop.
  const scenario::ScenarioSpec& base = scenario::Registry::builtin().at("paper-path");
  scenario::PaperPathConfig path = *base.paper;
  path.hops = 1;
  path.tight_utilization = 0.75;  // A = 2.5 Mb/s, heavy + bursty
  path.sources_per_link = 4;      // low multiplexing -> strong variability
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_paper(base.name, base.description, path);

  // Full algorithm at two grey resolutions.
  for (double chi : {1.5, 0.5}) {
    core::PathloadConfig tool;
    tool.chi = Rate::mbps(chi);
    const auto rr = scenario::run_scenario_repeated(spec, tool, runs, bench::seed());
    table.add_row({"grey-region", Table::num(chi, 1),
                   Table::num(rr.mean_low().mbits_per_sec(), 2),
                   Table::num(rr.mean_high().mbits_per_sec(), 2),
                   Table::num(rr.coverage(Rate::mbps(2.5)) * 100, 0) + "%",
                   Table::num(rr.mean_fleets(), 1),
                   Table::num(rr.mean_elapsed().secs(), 1)});
  }

  // Naive variant: force grey fleets to count as "above" by requiring only
  // a minimal agreement (f -> 0.5 makes almost every fleet decisive) —
  // the closest configuration-level approximation of "no grey region".
  {
    core::PathloadConfig tool;
    tool.fleet_fraction = 0.51;
    const auto rr = scenario::run_scenario_repeated(spec, tool, runs, bench::seed());
    table.add_row({"no-grey(f=0.51)", "-",
                   Table::num(rr.mean_low().mbits_per_sec(), 2),
                   Table::num(rr.mean_high().mbits_per_sec(), 2),
                   Table::num(rr.coverage(Rate::mbps(2.5)) * 100, 0) + "%",
                   Table::num(rr.mean_fleets(), 1),
                   Table::num(rr.mean_elapsed().secs(), 1)});
  }
  table.print();
  bench::expectation(
      "without a grey region the tool reports a deceptively narrow range "
      "that misses the true variation band more often; the grey region "
      "widens the report to cover the avail-bw excursions, at bounded "
      "extra width (<= 2*chi, Section VI).");
  return 0;
}
