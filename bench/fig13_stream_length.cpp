// Figure 13: effect of the stream length K on the measured variability.
//
// Longer streams average the avail-bw over a longer timescale tau = K*T,
// and the variability of the avail-bw process decreases with the averaging
// timescale — so rho should shrink as K grows. The paper's stream
// durations: 18 ms (K=100), 36 ms (K=200), 180 ms (K=1000) on a path with
// A ~ 4.5 Mb/s.

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 13", "CDF of rho vs stream length K (averaging timescale)");
  const int runs = bench::runs(30);
  std::printf("(runs per K: %d; paper used 110)\n\n", runs);

  Table table{{"percentile", "rho(K=100)", "rho(K=200)", "rho(K=1000)"}};
  std::vector<std::vector<double>> rho_columns;

  // The path is the registry's paper-path preset collapsed to its tight
  // link (hops = 1) at 55% load (A = 4.5 Mb/s) — a single-queue avail-bw
  // process whose variability the stream length averages over. The
  // derivation preserves the preset's Pareto model and 1 s warmup, so runs
  // are byte-identical to the pre-port inline PaperPathConfig.
  const scenario::ScenarioSpec& base = scenario::Registry::builtin().at("paper-path");

  for (int k : {100, 200, 1000}) {
    Rng rng{bench::seed() + static_cast<std::uint64_t>(k)};
    std::vector<double> rhos;
    for (int i = 0; i < runs; ++i) {
      scenario::PaperPathConfig path = *base.paper;
      path.hops = 1;
      path.tight_utilization = 0.55;  // A = 4.5 Mb/s
      const scenario::ScenarioSpec spec =
          scenario::ScenarioSpec::from_paper(base.name, base.description, path);

      core::PathloadConfig tool;
      tool.packets_per_stream = k;
      const auto result = scenario::run_scenario_once(spec, tool, rng.engine()());
      rhos.push_back(result.range.relative_variation());
    }
    rho_columns.push_back(std::move(rhos));
  }

  for (int p = 5; p <= 95; p += 10) {
    std::vector<std::string> row{Table::num(p, 0)};
    for (const auto& col : rho_columns) {
      row.push_back(Table::num(percentile(col, p / 100.0), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n75th-pct rho: K=100: %.2f  K=200: %.2f  K=1000: %.2f\n",
              percentile(rho_columns[0], 0.75), percentile(rho_columns[1], 0.75),
              percentile(rho_columns[2], 0.75));
  bench::expectation(
      "the variability of the measured avail-bw decreases significantly as "
      "the stream duration (averaging timescale) increases: the 75th-pct "
      "range width shrinks from ~2.0 Mb/s at 18 ms to well below that at "
      "180 ms (paper: rho 0.44 -> ~1.04 going the *short* direction).");
  return 0;
}
