// Figure 11: variability of the avail-bw vs tight-link load.
//
// One path (Ct = 12.4 Mb/s, the paper's Univ-Crete-like access link),
// three utilization ranges: 20-30%, 40-50%, 75-85%. For each we run many
// pathload measurements and plot the {5,15,...,95} percentiles of the
// relative variation rho = (high - low) / center (Eq. 12).

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep_runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 11", "CDF of relative variation rho vs tight-link load");
  const int runs = bench::runs(40);
  std::printf("(runs per load range: %d; paper used 110)\n\n", runs);

  const struct {
    const char* label;
    double lo, hi;
  } loads[] = {{"u=20-30%", 0.20, 0.30}, {"u=40-50%", 0.40, 0.50},
               {"u=75-85%", 0.75, 0.85}};

  Table table{{"percentile", "rho(u=20-30%)", "rho(u=40-50%)", "rho(u=75-85%)"}};
  std::vector<std::vector<double>> rho_columns;
  scenario::SweepRunner runner;

  // The shared path shape (single 12.4 Mb/s hop, Pareto cross traffic,
  // 1 s warmup) lives in the registry; each point overrides only the
  // swept utilization and its seed.
  const scenario::PaperPathConfig base =
      *scenario::Registry::builtin().at("fig11-access").paper;

  for (const auto& load : loads) {
    // Enumerate the points (drawing utilizations and seeds) sequentially so
    // the sweep is identical however many threads execute it.
    Rng rng{bench::seed() + static_cast<std::uint64_t>(load.lo * 1000)};
    std::vector<scenario::SweepPoint> points(static_cast<std::size_t>(runs));
    for (auto& pt : points) {
      pt.path = base;
      pt.path.tight_utilization = rng.uniform(load.lo, load.hi);
      pt.path.seed = rng.engine()();
      pt.seed = pt.path.seed;
      // pt.tool: defaults (omega = 1, chi = 1.5 Mb/s, Section VI)
    }
    const auto results = scenario::sweep_pathload(points, runner);
    std::vector<double> rhos;
    rhos.reserve(results.size());
    for (const auto& r : results) rhos.push_back(r.range.relative_variation());
    rho_columns.push_back(std::move(rhos));
  }

  for (int p = 5; p <= 95; p += 10) {
    std::vector<std::string> row{Table::num(p, 0)};
    for (const auto& col : rho_columns) {
      row.push_back(Table::num(percentile(col, p / 100.0), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n75th-pct ratio heavy/light: %.1fx\n",
              percentile(rho_columns[2], 0.75) /
                  std::max(1e-9, percentile(rho_columns[0], 0.75)));
  bench::expectation(
      "rho grows markedly with tight-link utilization: at u=75-85% the 75th "
      "percentile of rho is several times (paper: ~5x) its value at "
      "u=20-30%. A lightly loaded path gives more predictable throughput.");
  return 0;
}
