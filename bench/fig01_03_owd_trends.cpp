// Figures 1-3: relative one-way delays of single periodic streams with
// rate above (Fig. 1), below (Fig. 2), and near (Fig. 3) the avail-bw.
//
// The paper's streams crossed a 12-hop Univ-Oregon -> Univ-Delaware path
// with a 5-min average avail-bw of ~74 Mb/s (155 Mb/s tight link) and used
// K = 100, T = 100 us. We dimension the simulated path identically and
// probe at the same three rates: 96, 37, and 82 Mb/s.

#include <cstdio>

#include "bench/common.hpp"
#include "core/stream.hpp"
#include "core/trend.hpp"
#include "scenario/registry.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/spec.hpp"
#include "util/table.hpp"

using namespace pathload;

namespace {

void probe_and_print(const char* figure, double rate_mbps, std::uint64_t seed) {
  // The registry's paper-path preset is the topology baseline; this bench
  // re-dimensions only the tight link and tightness factor to the paper's
  // Univ-Oregon -> Univ-Delaware numbers.
  const scenario::ScenarioSpec& base = scenario::Registry::builtin().at("paper-path");
  scenario::PaperPathConfig path = *base.paper;
  path.tight_capacity = Rate::mbps(155);
  path.tight_utilization = 0.52;  // A ~ 74 Mb/s
  path.beta = 1.8;
  path.nontight_utilization = 0.5;
  path.seed = seed;
  const scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_paper(base.name, base.description, path);

  scenario::ScenarioInstance inst{spec};
  inst.start();
  scenario::SimProbeChannel channel{inst.simulator(), inst.path()};

  core::PathloadConfig tool;  // K = 100, T >= 100 us
  auto stream = core::make_stream_spec(Rate::mbps(rate_mbps), tool);
  stream.stream_id = 1;
  const auto outcome = channel.run_stream(stream);
  const auto owds = core::relative_owds(outcome);
  const auto stats = core::compute_trend(owds, tool.trend);
  const auto cls = core::classify_stream(stats, tool.trend);

  std::printf("%s: R = %.0f Mb/s, A ~ 74 Mb/s (K=%d, L=%d B, T=%.0f us)\n", figure,
              stream.rate().mbits_per_sec(), stream.packet_count, stream.packet_size,
              stream.period.micros());
  std::printf("PCT = %.3f  PDT = %.3f  -> type %s\n", stats.pct, stats.pdt,
              cls == core::StreamClass::kIncreasing ? "I (increasing)"
                                                    : "N (non-increasing)");
  std::printf("packet  owd_usec\n");
  for (std::size_t i = 0; i < owds.size(); ++i) {
    std::printf("%3zu  %9.1f\n", i, owds[i] * 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::banner("Fig. 1-3", "OWD variations of periodic streams vs avail-bw");
  probe_and_print("Fig. 1 (R > A)", 96.0, bench::seed());
  probe_and_print("Fig. 2 (R < A)", 37.0, bench::seed() + 1);
  probe_and_print("Fig. 3 (R ~ A)", 82.0, bench::seed() + 2);
  bench::expectation(
      "Fig.1 shows a clear increasing OWD trend (type I); Fig.2 shows none "
      "(type N); Fig.3 is mixed, motivating the grey region.");
  return 0;
}
