// Section II context: what the other measurement families report on the
// same path. cprobe-style train dispersion measures the ADR (not A);
// packet pairs measure the capacity C; TOPP and SLoPS measure A.

#include <cstdio>

#include "bench/common.hpp"
#include "baselines/delphi.hpp"
#include "baselines/dispersion.hpp"
#include "baselines/topp.hpp"
#include "scenario/experiment.hpp"
#include "scenario/sim_channel.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Baselines", "pathload vs cprobe(ADR) vs packet-pair vs TOPP");

  Table table{{"util_%", "A_Mbps", "pathload_Mbps", "cprobe_Mbps", "pktpair_Mbps",
               "topp_A_Mbps", "topp_C_Mbps", "delphi_A_Mbps"}};

  for (double util : {0.3, 0.5, 0.7}) {
    scenario::PaperPathConfig path;
    path.hops = 1;
    path.tight_capacity = Rate::mbps(10);
    path.tight_utilization = util;
    path.model = sim::Interarrival::kExponential;
    path.warmup = Duration::seconds(1);
    path.seed = bench::seed() + static_cast<std::uint64_t>(util * 100);

    // pathload
    core::PathloadConfig tool;
    const auto pl = scenario::run_pathload_once(path, tool, path.seed);

    // cprobe / packet pair / TOPP on fresh testbeds (same seed -> same
    // traffic realization family).
    scenario::Testbed bed{path};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    const Rate adr = baselines::CprobeEstimator{}.measure(ch);
    const Rate cap = baselines::PacketPairEstimator{}.measure(ch);
    baselines::ToppConfig tc;
    tc.min_rate = Rate::mbps(1);
    tc.max_rate = Rate::mbps(16);
    tc.step = Rate::mbps(0.5);
    tc.packets_per_train = 50;
    const auto topp = baselines::ToppEstimator{tc}.measure(ch);
    baselines::DelphiConfig dc;
    dc.capacity = Rate::mbps(10);
    const auto delphi = baselines::DelphiEstimator{dc}.measure(ch);

    table.add_row(
        {Table::num(util * 100, 0), Table::num(10 * (1 - util), 1),
         Table::num(pl.range.center().mbits_per_sec(), 2),
         Table::num(adr.mbits_per_sec(), 2), Table::num(cap.mbits_per_sec(), 2),
         topp.valid ? Table::num(topp.avail_bw.mbits_per_sec(), 2) : "n/a",
         topp.valid ? Table::num(topp.capacity.mbits_per_sec(), 2) : "n/a",
         delphi.valid ? Table::num(delphi.avail_bw.mbits_per_sec(), 2) : "n/a"});
  }
  table.print();
  bench::expectation(
      "pathload and TOPP track A = C(1-u); cprobe's train dispersion sits "
      "between A and C (it measures the ADR — the Section II critique); "
      "packet pairs track C regardless of load. Delphi follows the load "
      "trend but needs C a priori, is biased whenever the queue drains "
      "between its probes (each drained pair anchors lambda to C - L/din), "
      "and breaks outright when the tight and narrow links differ — the "
      "single-queue-model weaknesses Section II points out.");
  return 0;
}
