// Section II context: what the other measurement families report on the
// same path. cprobe-style train dispersion measures the ADR (not A);
// packet pairs measure the capacity C; TOPP and SLoPS measure A.
//
// Built on the generic comparison harness (scenario::run_matrix): every
// registered probe-stream estimator runs over the same single-tight-link
// scenario at three loads, each on fresh seeded testbeds, and the rows
// carry the harness's uniform accuracy/intrusiveness quantities. The same
// table (plus BTC) is one command away:
//   scenario_runner --compare --scenario paper-path --load 0.5

#include <cstdio>

#include "baselines/estimators.hpp"
#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/sweep_runner.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Baselines", "pathload vs cprobe(ADR) vs packet-pair vs TOPP vs Delphi");
  const int runs = bench::runs(3);
  std::printf("(runs per cell: %d)\n\n", runs);

  // The paper's single-queue context path: one 10 Mb/s link, smooth
  // (Poisson) cross traffic — the topology where every family's model
  // assumptions at least nominally hold.
  scenario::PaperPathConfig path;
  path.hops = 1;
  path.tight_capacity = Rate::mbps(10);
  path.model = sim::Interarrival::kExponential;
  path.warmup = Duration::seconds(1);
  const auto spec = scenario::ScenarioSpec::from_paper(
      "single-tight", "one 10 Mb/s queue, Poisson cross traffic", path);

  const core::EstimatorRegistry& reg = baselines::builtin_estimators();
  const std::vector<scenario::MatrixEstimator> estimators = {
      scenario::MatrixEstimator::from_registry(reg, "pathload"),
      scenario::MatrixEstimator::from_registry(reg, "cprobe"),
      scenario::MatrixEstimator::from_registry(reg, "pktpair"),
      scenario::MatrixEstimator::from_registry(
          reg, "topp",
          "min_rate_mbps=1, max_rate_mbps=16, step_mbps=0.5, packets_per_train=50"),
      scenario::MatrixEstimator::from_registry(reg, "delphi", "capacity_mbps=10"),
  };

  scenario::SweepRunner runner;
  const auto cells = scenario::run_matrix(estimators, {spec}, {0.3, 0.5, 0.7},
                                          runs, bench::seed(), runner);

  Table table{{"util_%", "A_Mbps", "estimator", "reports", "value_Mbps", "err_%",
               "probe_MB", "time_s"}};
  // Group rows by load for readability: the matrix is estimator-major.
  for (double util : {0.3, 0.5, 0.7}) {
    for (const scenario::MatrixCell& c : cells) {
      if (c.load != util) continue;
      const auto& entry = reg.at(c.estimator);
      const bool any_valid = c.valid_runs() > 0;
      table.add_row({Table::num(util * 100, 0),
                     Table::num(c.truth.mbits_per_sec(), 1), c.estimator,
                     entry.quantity,
                     any_valid ? Table::num(c.mean_center().mbits_per_sec(), 2)
                               : "n/a",
                     any_valid ? Table::num(c.mean_rel_error() * 100, 1) : "n/a",
                     Table::num(c.mean_bytes().bits() / 8e6, 2),
                     Table::num(c.mean_elapsed().secs(), 1)});
    }
  }
  table.print();
  bench::expectation(
      "pathload and TOPP track A = C(1-u); cprobe's train dispersion sits "
      "between A and C (it measures the ADR — the Section II critique); "
      "packet pairs track C regardless of load. Delphi follows the load "
      "trend but needs C a priori, is biased whenever the queue drains "
      "between its probes (each drained pair anchors lambda to C - L/din), "
      "and breaks outright when the tight and narrow links differ — the "
      "single-queue-model weaknesses Section II points out.");
  return 0;
}
