// Figure 8: effect of the fleet agreement fraction f on the reported range.
//
// Ct = 10 Mb/s, ut = 50% (A = 5 Mb/s), Pareto cross traffic. The reported
// range here is from single pathload runs (as in the paper's figure): a
// higher f makes it harder for a fleet to be decisively I or N, so the
// grey region — and with it the reported range — widens.

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 8", "reported avail-bw range vs fleet fraction f");
  const int repeats = bench::runs(8);  // average a few single-run ranges
  std::printf("(single-run ranges, averaged over %d seeds)\n\n", repeats);

  Table table{{"f", "avail_Mbps", "low_Mbps", "high_Mbps", "width_Mbps"}};

  // The Fig. 4 topology from the registry, at the figure's 50% tight load
  // (A = 5 Mb/s); only the tool's fleet fraction varies.
  const scenario::ScenarioSpec spec =
      scenario::Registry::builtin().at("paper-path").with_load(0.5);

  for (double f : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    core::PathloadConfig tool;
    tool.fleet_fraction = f;

    const auto rr =
        scenario::run_scenario_repeated(spec, tool, repeats, bench::seed() + (f * 100));
    table.add_row({Table::num(f, 2), "5.0",
                   Table::num(rr.mean_low().mbits_per_sec(), 2),
                   Table::num(rr.mean_high().mbits_per_sec(), 2),
                   Table::num((rr.mean_high() - rr.mean_low()).mbits_per_sec(), 2)});
  }
  table.print();
  bench::expectation(
      "as f increases, the width of the grey region — and hence of the "
      "estimated avail-bw range — increases.");
  return 0;
}
