// Section IV, "Measurement Latency": for the default parameters, a path
// with A <= ~100 Mb/s and RTT ~100 ms should produce an estimate in under
// ~15 s; latency grows with the avail-bw magnitude, the grey-region width,
// and finer resolutions (omega, chi).

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Latency", "measurement latency vs avail-bw and resolution");
  const int runs = bench::runs(5);

  Table table{{"capacity_Mbps", "avail_Mbps", "omega_Mbps", "latency_s", "fleets",
               "probe_MB"}};

  const struct {
    double cap, util;
  } points[] = {{10, 0.8}, {10, 0.5}, {40, 0.5}, {100, 0.5}, {100, 0.26}};

  // The registry's paper-path preset is the topology baseline; each point
  // re-dimensions only the tight link.
  const scenario::ScenarioSpec& base = scenario::Registry::builtin().at("paper-path");
  for (const auto& pt : points) {
    for (double omega : {1.0, 0.5}) {
      scenario::PaperPathConfig path = *base.paper;
      path.tight_capacity = Rate::mbps(pt.cap);
      path.tight_utilization = pt.util;
      const scenario::ScenarioSpec spec =
          scenario::ScenarioSpec::from_paper(base.name, base.description, path);

      core::PathloadConfig tool;
      tool.omega = Rate::mbps(omega);
      tool.chi = Rate::mbps(omega * 1.5);

      const auto rr = scenario::run_scenario_repeated(
          spec, tool, runs, bench::seed() + (pt.cap * 100 + omega * 10));
      double mean_bytes = 0.0;
      for (const auto& r : rr.results) {
        mean_bytes += static_cast<double>(r.bytes_sent.byte_count());
      }
      mean_bytes /= static_cast<double>(rr.results.size());
      table.add_row({Table::num(pt.cap, 0),
                     Table::num(pt.cap * (1 - pt.util), 1), Table::num(omega, 1),
                     Table::num(rr.mean_elapsed().secs(), 1),
                     Table::num(rr.mean_fleets(), 1),
                     Table::num(mean_bytes / 1e6, 2)});
    }
  }
  table.print();
  bench::expectation(
      "latency stays in the ~10-30 s range for paths up to ~100 Mb/s of "
      "avail-bw at ~100 ms RTT, growing with |A| and with finer omega.");
  return 0;
}
