// Figure 5: accuracy of pathload under different tight-link loads and
// cross-traffic models.
//
// H = 3 hops, Ct = 10 Mb/s, beta = 2; tight-link utilization swept over
// {20, 50, 75, 90}% (A = 8, 5, 2.5, 1 Mb/s) with Poisson and with
// infinite-variance Pareto (alpha = 1.9) interarrivals. For each point we
// report the mean of the per-run lower and upper bounds over `runs` runs
// (the paper: 50 runs, CV 0.10-0.30).

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep_runner.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 5", "pathload range vs tight-link utilization and traffic model");
  const int runs = bench::runs(20);
  // Points are sharded across threads (PATHLOAD_THREADS); the thread count
  // deliberately stays out of the printout so sweeps diff byte-identical
  // regardless of parallelism.
  scenario::SweepRunner runner;
  std::printf("(runs per point: %d; PATHLOAD_RUNS=50 for paper fidelity)\n\n", runs);

  Table table{{"traffic", "util_%", "avail_Mbps", "pl_low_Mbps", "pl_high_Mbps",
               "center", "covers_A", "cv_low", "cv_high"}};

  // The path definitions live in the scenario registry; this bench only
  // sweeps their tight-link load. `scenario_runner --run <preset> --sweep
  // load=0.2,0.5,0.75,0.9` reproduces these rows byte-for-byte.
  const auto& registry = scenario::Registry::builtin();
  const struct {
    const char* label;
    const char* preset;
  } models[] = {{"poisson", "paper-path-poisson"}, {"pareto1.9", "paper-path"}};

  for (const auto& m : models) {
    for (double util : {0.20, 0.50, 0.75, 0.90}) {
      const scenario::ScenarioSpec spec = registry.at(m.preset).with_load(util);

      core::PathloadConfig tool;  // defaults: K=100, N=12, omega=1, chi=1.5

      const auto rr = scenario::sweep_scenario_repeated(spec, tool, runs,
                                                        bench::seed() + (util * 1000),
                                                        runner);
      const Rate truth = spec.avail_bw();
      table.add_row({m.label, Table::num(util * 100, 0),
                     Table::num(truth.mbits_per_sec(), 1),
                     Table::num(rr.mean_low().mbits_per_sec(), 2),
                     Table::num(rr.mean_high().mbits_per_sec(), 2),
                     Table::num((rr.mean_low() + rr.mean_high()).mbits_per_sec() / 2, 2),
                     Table::num(rr.coverage(truth) * 100, 0) + "%",
                     Table::num(rr.cv_low(), 2), Table::num(rr.cv_high(), 2)});
    }
  }
  table.print();
  bench::expectation(
      "the averaged pathload range [low, high] includes the true average "
      "avail-bw at every load, for both smooth (Poisson) and bursty "
      "(Pareto) cross traffic; the range center stays close to A (paper's "
      "worst case: center 1.5 vs A 1.0 Mb/s at the heaviest load).");
  return 0;
}
