// Figure 12: variability of the avail-bw vs the degree of statistical
// multiplexing.
//
// Three paths at (roughly) the same utilization ~65% but very different
// capacities / flow counts, mirroring the paper's Abilene (155 Mb/s),
// Univ-Crete (12.4 Mb/s), and Univ-Pireaus (6.1 Mb/s) tight links. The
// degree of multiplexing is modelled by the number of independent cross
// traffic sources at a fixed aggregate utilization.

#include <cstdio>

#include "bench/common.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep_runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 12", "CDF of rho vs degree of statistical multiplexing");
  const int runs = bench::runs(30);
  std::printf("(runs per path: %d; paper used 110)\n\n", runs);

  // The three path shapes are registry presets; `capacity_mbps` stays in
  // the table because it keys each sweep's RNG stream (the exact literal
  // matters: re-deriving it from the preset's Rate would round).
  const struct {
    const char* label;
    const char* preset;
    double capacity_mbps;
  } paths[] = {{"A:155Mbps/n=120", "fig12-abilene", 155.0},
               {"B:12.4Mbps/n=24", "fig12-crete", 12.4},
               {"C:6.1Mbps/n=6", "fig12-pireaus", 6.1}};

  Table table{{"percentile", "rho(A)", "rho(B)", "rho(C)"}};
  std::vector<std::vector<double>> rho_columns;
  scenario::SweepRunner runner;

  for (const auto& p : paths) {
    const scenario::PaperPathConfig base =
        *scenario::Registry::builtin().at(p.preset).paper;
    // Points (utilization draws and seeds) are enumerated sequentially; only
    // the independent simulations run on the pool.
    Rng rng{bench::seed() + static_cast<std::uint64_t>(p.capacity_mbps * 10)};
    std::vector<scenario::SweepPoint> points(static_cast<std::size_t>(runs));
    for (auto& pt : points) {
      pt.path = base;
      pt.path.tight_utilization = rng.uniform(0.60, 0.70);
      pt.path.seed = rng.engine()();
      pt.seed = pt.path.seed;
    }
    const auto results = scenario::sweep_pathload(points, runner);
    std::vector<double> rhos;
    rhos.reserve(results.size());
    for (const auto& r : results) rhos.push_back(r.range.relative_variation());
    rho_columns.push_back(std::move(rhos));
  }

  for (int p = 5; p <= 95; p += 10) {
    std::vector<std::string> row{Table::num(p, 0)};
    for (const auto& col : rho_columns) {
      row.push_back(Table::num(percentile(col, p / 100.0), 3));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n75th-pct rho: A=%.2f  B=%.2f  C=%.2f\n",
              percentile(rho_columns[0], 0.75), percentile(rho_columns[1], 0.75),
              percentile(rho_columns[2], 0.75));
  bench::expectation(
      "at the same utilization, the path with the widest pipe / most "
      "multiplexed traffic (A) shows the lowest rho; rho roughly doubles "
      "on B and triples on C (paper: 0.25 -> ~2x -> ~3x at the 75th pct).");
  return 0;
}
