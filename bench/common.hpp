#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pathload::bench {

/// Repetition count for multi-run experiment points.
///
/// The paper uses 50 runs per point (Figs. 5-7) and 110 runs (Figs. 11-14);
/// the default here is scaled down so the whole bench suite finishes in
/// minutes on one core. Set PATHLOAD_RUNS to reproduce at full fidelity,
/// or PATHLOAD_QUICK=1 for a fast smoke pass.
inline int runs(int default_runs) {
  if (const char* env = std::getenv("PATHLOAD_RUNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  if (const char* quick = std::getenv("PATHLOAD_QUICK"); quick && quick[0] == '1') {
    return std::max(2, default_runs / 5);
  }
  return default_runs;
}

/// Base RNG seed for the experiment (PATHLOAD_SEED to vary).
inline std::uint64_t seed() {
  if (const char* env = std::getenv("PATHLOAD_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20020800;  // SIGCOMM 2002 ;-)
}

/// Uniform banner so bench outputs are self-describing in bench_output.txt.
inline void banner(const char* figure, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("=============================================================\n");
}

/// Footnote with the paper's qualitative claim this bench checks.
inline void expectation(const char* text) { std::printf("\npaper: %s\n\n", text); }

}  // namespace pathload::bench
