// Figures 15-16: relation between avail-bw and BTC (greedy TCP) throughput.
//
// A 25-minute timeline in five intervals (A)-(E). During (B) and (D) a
// BTC connection runs; throughout, the tight link's avail-bw is read
// MRTG-style per interval and ping RTTs are measured every second.
//
// Reproduced claims:
//   1. the BTC connection saturates the path (interval avail-bw < 0.5 Mb/s)
//      while its 1-second throughput is highly variable;
//   2. RTT climbs from the ~200 ms quiescent point toward ~370 ms with
//      heavy jitter while BTC runs (queue fill + sawtooth);
//   3. BTC throughput exceeds the avail-bw of the surrounding quiet
//      intervals by ~20-30% — it steals bandwidth from other TCP flows.

#include <cstdio>

#include "bench/btc_path.hpp"
#include "bench/common.hpp"
#include "sim/monitor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  bench::banner("Fig. 15-16", "BTC throughput vs avail-bw; RTT during BTC");
  const Duration interval = bench::interval_length();
  std::printf("(interval length: %.0f s; PATHLOAD_QUICK=1 shortens)\n\n",
              interval.secs());

  bench::BtcTestbed bed{bench::seed(), Duration::seconds(1)};
  sim::UtilizationMonitor mrtg{bed.sim, bed.path->link(0), interval};
  mrtg.start();

  Table table{{"interval", "btc", "availbw_Mbps", "btc_Mbps", "btc1s_min", "btc1s_max",
               "rtt_ms_p5", "rtt_ms_p50", "rtt_ms_p95"}};

  std::vector<double> quiet_avail;
  std::vector<double> btc_throughput;

  for (char label = 'A'; label <= 'E'; ++label) {
    const bool btc_on = (label == 'B' || label == 'D');
    const TimePoint start = bed.sim.now();

    double btc_avg = 0.0;
    double btc_1s_min = 0.0;
    double btc_1s_max = 0.0;
    if (btc_on) {
      tcp::TcpConnection btc{bed.sim, *bed.path, tcp::TcpConfig{},
                             bench::BtcTestbed::kReverseDelay};
      sim::ThroughputMonitor monitor{bed.sim, Duration::seconds(1)};
      monitor.set_downstream(&btc.receiver());
      bed.path->egress().register_flow(btc.flow(), &monitor);
      btc.sender().start();
      bed.sim.run_for(interval);
      btc.sender().stop();
      btc_avg = rate_of(btc.sender().bytes_acked(), interval).mbits_per_sec();
      OnlineStats buckets;
      for (const auto& b : monitor.finish()) {
        if (b.width >= Duration::seconds(1)) buckets.add(b.rate().mbits_per_sec());
      }
      btc_1s_min = buckets.min();
      btc_1s_max = buckets.max();
      btc_throughput.push_back(btc_avg);
      bed.path->egress().register_flow(btc.flow(), &btc.receiver());
    } else {
      bed.sim.run_for(interval);
    }

    const auto& reading = mrtg.readings().size() >= 1
                              ? mrtg.readings().back()
                              : sim::UtilizationReading{};
    const auto rtts = bed.rtt_samples_in(start, bed.sim.now());
    if (!btc_on) quiet_avail.push_back(reading.avail_bw.mbits_per_sec());

    table.add_row({std::string(1, label), btc_on ? "yes" : "no",
                   Table::num(reading.avail_bw.mbits_per_sec(), 2),
                   btc_on ? Table::num(btc_avg, 2) : "-",
                   btc_on ? Table::num(btc_1s_min, 2) : "-",
                   btc_on ? Table::num(btc_1s_max, 2) : "-",
                   Table::num(percentile(rtts, 0.05) * 1000, 0),
                   Table::num(percentile(rtts, 0.50) * 1000, 0),
                   Table::num(percentile(rtts, 0.95) * 1000, 0)});
  }
  table.print();

  OnlineStats quiet;
  for (double a : quiet_avail) quiet.add(a);
  OnlineStats btc;
  for (double t : btc_throughput) btc.add(t);
  std::printf("\nmean avail-bw in quiet intervals (A,C,E): %.2f Mb/s\n", quiet.mean());
  std::printf("mean BTC throughput in (B,D):              %.2f Mb/s\n", btc.mean());
  std::printf("BTC / prior avail-bw:                      %.0f%%\n",
              btc.mean() / quiet.mean() * 100.0);
  bench::expectation(
      "avail-bw during (B),(D) collapses below ~0.5 Mb/s (BTC saturates the "
      "path); 1-s BTC throughput is highly variable; RTT inflates from "
      "~200 ms to a 200-370 ms band with heavy jitter; BTC gets ~20-30% "
      "more than the surrounding intervals' avail-bw.");
  return 0;
}
