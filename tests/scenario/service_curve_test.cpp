// Tests for the min-plus service-curve model (scenario/service_curve.hpp):
// convolution algebra, per-hop leftover curves, and agreement of the
// oracle's long-run rate with ScenarioSpec::avail_bw on stationary specs.

#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/service_curve.hpp"
#include "scenario/spec.hpp"

namespace pathload::scenario {
namespace {

TEST(ServiceCurve, ConvolutionIsMinRateSumLatency) {
  const ServiceCurve a{Rate::mbps(10), Duration::milliseconds(5)};
  const ServiceCurve b{Rate::mbps(4), Duration::milliseconds(2)};
  const ServiceCurve c = a.convolve(b);
  EXPECT_EQ(c.rate.bits_per_sec(), Rate::mbps(4).bits_per_sec());
  EXPECT_EQ(c.latency.nanos(), Duration::milliseconds(7).nanos());
  // Commutative and associative for rate-latency curves.
  const ServiceCurve d = b.convolve(a);
  EXPECT_EQ(c.rate.bits_per_sec(), d.rate.bits_per_sec());
  EXPECT_EQ(c.latency.nanos(), d.latency.nanos());
}

TEST(ServiceCurve, GuaranteedServiceIsZeroInsideTheLatency) {
  const ServiceCurve c{Rate::mbps(8), Duration::milliseconds(10)};
  EXPECT_EQ(c.guaranteed(Duration::milliseconds(10)).byte_count(), 0);
  // After the latency, service accrues at the curve's rate.
  const DataSize d = c.guaranteed(Duration::milliseconds(1010));
  EXPECT_EQ(d.byte_count(), Rate::mbps(8).bytes_in(Duration::seconds(1)).byte_count());
}

TEST(HopLeftoverCurve, RateIsCapacityTimesIdleFraction) {
  HopDecl hop;
  hop.capacity = Rate::mbps(20);
  hop.delay = Duration::milliseconds(5);
  hop.traffic.model = TrafficModel::kPoisson;
  hop.traffic.utilization = 0.4;
  const ServiceCurve c = hop_leftover_curve(hop);
  EXPECT_DOUBLE_EQ(c.rate.mbits_per_sec(), 12.0);
  EXPECT_GT(c.latency, hop.delay);  // plus serialization and burst drain
}

TEST(HopLeftoverCurve, RampHopsUseTheWorsePlateau) {
  HopDecl hop;
  hop.capacity = Rate::mbps(10);
  hop.traffic.model = TrafficModel::kRamp;
  hop.traffic.utilization = 0.2;
  hop.traffic.end_utilization = 0.6;
  hop.traffic.ramp_end_s = 2.0;
  EXPECT_DOUBLE_EQ(hop_leftover_curve(hop).rate.mbits_per_sec(), 4.0);
}

TEST(ServiceCurveOracle, MatchesConfiguredAvailBwOnStationarySpecs) {
  // Every stationary builtin preset: the network-calculus route to the
  // long-run rate must land exactly on the declarative one.
  for (const ScenarioSpec& spec : Registry::builtin().entries()) {
    if (spec.nonstationary()) continue;
    const ServiceCurveOracle oracle = service_curve_oracle(spec);
    EXPECT_NEAR(oracle.avail_bw.bits_per_sec(), spec.avail_bw().bits_per_sec(),
                1e-3 * spec.avail_bw().bits_per_sec() + 1.0)
        << spec.name;
  }
}

TEST(ServiceCurveOracle, BurstAllowanceGrowsWithSourcesAndHeavyTails) {
  ScenarioSpec spec;
  spec.name = "burst";
  HopDecl hop;
  hop.capacity = Rate::mbps(10);
  hop.traffic.model = TrafficModel::kPareto;
  hop.traffic.utilization = 0.3;
  hop.traffic.sources = 1;
  hop.traffic.pareto_alpha = 2.5;
  spec.hops.push_back(hop);
  spec.validate();
  const DataSize light = service_curve_oracle(spec).burst;

  spec.hops[0].traffic.sources = 10;
  spec.hops[0].traffic.pareto_alpha = 1.5;
  const DataSize heavy = service_curve_oracle(spec).burst;
  EXPECT_GT(heavy.byte_count(), light.byte_count());
  // The tolerance spreads the burst over the window: longer window, less
  // slack demanded.
  const ServiceCurveOracle o = service_curve_oracle(spec);
  EXPECT_GT(o.tolerance(Duration::seconds(1)).bits_per_sec(),
            o.tolerance(Duration::seconds(10)).bits_per_sec());
}

}  // namespace
}  // namespace pathload::scenario
