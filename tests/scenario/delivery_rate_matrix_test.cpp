// The passive delivery-rate estimator through the scenario harness: on
// tcp-bg-greedy (the elastic-competition scenario) it must produce a
// valid, finite estimate with zero probe packets, consistent with the
// pre-probe utilization-monitor bracket; on an open-loop scenario the
// estimate must land inside the monitor bracket outright; and its matrix
// cells must be thread-count invariant like every other estimator's.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/estimators.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/monitor.hpp"

namespace pathload::scenario {
namespace {

const core::EstimatorRegistry& reg() { return baselines::builtin_estimators(); }

ScenarioSpec quick(const char* preset) {
  ScenarioSpec spec = Registry::builtin().at(preset);
  spec.warmup = Duration::milliseconds(500);
  return spec;
}

/// Pre-probe ground truth: [min, max] of the tight link's avail-bw as the
/// utilization monitor saw it over `secs` unperturbed seconds.
std::pair<Rate, Rate> monitor_bracket(ScenarioInstance& inst, double secs) {
  sim::UtilizationMonitor monitor{inst.simulator(), inst.tight_link(),
                                  Duration::seconds(1)};
  monitor.start();
  inst.simulator().run_for(Duration::seconds(secs));
  monitor.stop();
  Rate lo = monitor.readings().front().avail_bw;
  Rate hi = lo;
  for (const auto& w : monitor.readings()) {
    lo = std::min(lo, w.avail_bw);
    hi = std::max(hi, w.avail_bw);
  }
  return {lo, hi};
}

TEST(DeliveryRateMatrix, ZeroProbePacketsAndAFairShareOnGreedyBackground) {
  // tcp-bg-greedy: a greedy TCP flow saturates the tight link, so the
  // pre-probe bracket reads near zero — but the measurement connection is
  // itself elastic and earns a fair share (Section VII), so the estimate
  // must sit between the saturated bracket's floor and the narrow
  // capacity, never outside the physical envelope.
  ScenarioSpec spec = quick("tcp-bg-greedy");
  spec.seed = 424;
  ScenarioInstance inst{std::move(spec)};
  inst.start();
  const auto [lo, hi] = monitor_bracket(inst, 10.0);

  SimProbeChannel channel{inst.simulator(), inst.path()};
  const auto est = reg().make("delivery-rate", "duration_s = 15");
  Rng rng{424};
  const auto r = est->run(channel, rng);
  ASSERT_TRUE(r.valid) << r.outcome_note;
  EXPECT_TRUE(r.is_range);

  // Zero probe packets: the transfer is the measurement, counted in bytes.
  EXPECT_EQ(r.packets_sent, 0);
  EXPECT_GT(r.bytes_sent.byte_count(), 0);

  const double center = r.center().mbits_per_sec();
  EXPECT_TRUE(std::isfinite(center));
  const double slack = 1.0;  // pathload's resolution, as in the gap-model test
  EXPECT_GE(center, lo.mbits_per_sec() - slack)
      << "bracket [" << lo.mbits_per_sec() << ", " << hi.mbits_per_sec() << "]";
  // The narrow link on tcp-bg-greedy is 10 Mb/s: a fair share can exceed
  // the saturated bracket but never the wire.
  EXPECT_LE(r.high.mbits_per_sec(), 10.0 + slack);
  EXPECT_LE(r.low.mbits_per_sec(), r.high.mbits_per_sec());
}

TEST(DeliveryRateMatrix, CenterLandsInTheMonitorBracketOnOpenLoopTraffic) {
  // On paper-path at 25% load the background is open-loop (it does not
  // yield), so the greedy measurement connection converges on the leftover
  // capacity — the same quantity the monitor brackets. Same contract as
  // the gap-model satellite test: center inside the pre-probe bracket
  // widened by pathload's 1 Mb/s resolution.
  ScenarioSpec spec = quick("paper-path").with_load(0.25);
  spec.seed = 424;
  ScenarioInstance inst{std::move(spec)};
  inst.start();
  const auto [lo, hi] = monitor_bracket(inst, 10.0);

  SimProbeChannel channel{inst.simulator(), inst.path()};
  const auto est = reg().make("delivery-rate", "duration_s = 15");
  Rng rng{424};
  const auto r = est->run(channel, rng);
  ASSERT_TRUE(r.valid) << r.outcome_note;

  const Rate slack = Rate::mbps(1.0);
  const Rate center = r.center();
  EXPECT_GE(center, lo - slack) << "bracket [" << lo.mbits_per_sec() << ", "
                                << hi.mbits_per_sec() << "]";
  EXPECT_LE(center, hi + slack) << "bracket [" << lo.mbits_per_sec() << ", "
                                << hi.mbits_per_sec() << "]";
}

TEST(DeliveryRateMatrix, CellsAreThreadCountInvariant) {
  const std::vector<ScenarioSpec> scenarios = {quick("paper-path"),
                                               quick("tcp-bg-greedy")};
  const std::vector<MatrixEstimator> est = {MatrixEstimator::from_registry(
      reg(), "delivery-rate", "duration_s = 8")};
  auto run_with = [&](int threads) {
    SweepRunner runner{threads};
    return run_matrix(est, scenarios, {0.3, 0.6}, /*runs=*/1,
                      /*seed0=*/5005, runner);
  };
  const auto a = run_with(1);
  const auto b = run_with(4);
  ASSERT_EQ(a.size(), 4u);  // 1 estimator x 2 scenarios x 2 loads
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].reports.size(), b[c].reports.size()) << c;
    for (std::size_t r = 0; r < a[c].reports.size(); ++r) {
      EXPECT_EQ(a[c].reports[r].low.bits_per_sec(),
                b[c].reports[r].low.bits_per_sec()) << c;
      EXPECT_EQ(a[c].reports[r].high.bits_per_sec(),
                b[c].reports[r].high.bits_per_sec()) << c;
      EXPECT_EQ(a[c].reports[r].bytes_sent.byte_count(),
                b[c].reports[r].bytes_sent.byte_count()) << c;
      // No cell sends probe packets: the estimator is purely passive.
      EXPECT_EQ(a[c].reports[r].packets_sent, 0) << c;
    }
  }
}

}  // namespace
}  // namespace pathload::scenario
