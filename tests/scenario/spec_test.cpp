// Tests for the scenario spec format: parsing, validation diagnostics,
// round-tripping, load transforms, and — the load-bearing one — that a
// paper-form spec instantiates bit-identically to the hand-built Testbed.

#include <gtest/gtest.h>

#include "scenario/experiment.hpp"
#include "scenario/spec.hpp"

namespace pathload::scenario {
namespace {

/// EXPECT_THROW plus a substring check on the diagnostic, so a test failure
/// shows which message regressed.
template <typename Fn>
void expect_spec_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected SpecError containing '" << needle << "'";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

constexpr const char* kCustomSpec = R"(
  # A comment, and blank lines, are ignored.
  name = my-scenario
  description = two heterogeneous hops
  seed = 9
  warmup_s = 1.5
  hops = 2
  hop.0.capacity_mbps = 40
  hop.0.delay_ms = 5
  hop.0.traffic.model = poisson
  hop.0.traffic.utilization = 0.25
  hop.0.traffic.sources = 4
  hop.1.capacity_mbps = 10
  hop.1.delay_ms = 30
  hop.1.buffer_ms = 250
  hop.1.traffic.model = pareto
  hop.1.traffic.utilization = 0.6
  hop.1.traffic.pareto_alpha = 1.7
  hop.1.traffic.mix = fixed:1000
)";

TEST(SpecParse, CustomFormRoundTrips) {
  const ScenarioSpec spec = ScenarioSpec::parse(kCustomSpec);
  EXPECT_EQ(spec.name, "my-scenario");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.warmup, Duration::seconds(1.5));
  ASSERT_EQ(spec.hops.size(), 2u);
  EXPECT_EQ(spec.hops[0].capacity, Rate::mbps(40));
  EXPECT_EQ(spec.hops[0].traffic.model, TrafficModel::kPoisson);
  EXPECT_EQ(spec.hops[0].traffic.sources, 4);
  EXPECT_EQ(spec.hops[1].buffer_drain, Duration::milliseconds(250));
  EXPECT_DOUBLE_EQ(spec.hops[1].traffic.pareto_alpha, 1.7);
  EXPECT_EQ(spec.hops[1].traffic.mix.bins().size(), 1u);
  EXPECT_EQ(spec.tight_hop(), 1u);
  EXPECT_DOUBLE_EQ(spec.avail_bw().mbits_per_sec(), 4.0);

  // to_text() re-parses to an equivalent spec.
  const ScenarioSpec again = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(again.to_text(), spec.to_text());
  EXPECT_EQ(again.hops.size(), spec.hops.size());
  EXPECT_EQ(again.seed, spec.seed);
}

TEST(SpecParse, PaperFormRoundTrips) {
  const ScenarioSpec spec = ScenarioSpec::parse(R"(
    name = paper-variant
    seed = 5
    paper.hops = 6
    paper.tight_capacity_mbps = 20
    paper.tight_utilization = 0.4
    paper.beta = 1.5
    paper.traffic = poisson
  )");
  ASSERT_TRUE(spec.paper.has_value());
  EXPECT_EQ(spec.paper->hops, 6);
  EXPECT_EQ(spec.paper->tight_capacity, Rate::mbps(20));
  EXPECT_EQ(spec.paper->model, sim::Interarrival::kExponential);
  EXPECT_EQ(spec.hops.size(), 6u);
  EXPECT_EQ(spec.tight_hop(), 3u);
  EXPECT_DOUBLE_EQ(spec.avail_bw().mbits_per_sec(), 12.0);
  const ScenarioSpec again = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(again.to_text(), spec.to_text());
  EXPECT_EQ(again.seed, 5u);
}

TEST(SpecParse, DiagnosticsNameLineAndFix) {
  // Malformed line (no '=').
  expect_spec_error([] { ScenarioSpec::parse("name = x\nhops 3\n"); },
                    "line 2: expected 'key = value'");
  // Unknown top-level key.
  expect_spec_error([] { ScenarioSpec::parse("name = x\nhops = 1\nhop.0.traffic.model = none\nbogus = 1\n"); },
                    "unknown key");
  // Unknown hop field.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\nhops = 1\nhop.0.trafic.model = poisson\n"); },
      "unknown hop field 'trafic.model'");
  // Non-numeric value, with the key and the offending text.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\nhops = 1\nhop.0.capacity_mbps = fast\n"); },
      "expected a number, got 'fast'");
  // Hop index out of range names the declared count.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\nhops = 2\nhop.5.capacity_mbps = 1\n"); },
      "hop index 5 out of range (hops = 2)");
  // Duplicate key.
  expect_spec_error([] { ScenarioSpec::parse("name = x\nname = y\nhops = 1\n"); },
                    "duplicate key 'name'");
  // Unknown traffic model lists the valid ones.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\nhops = 1\nhop.0.traffic.model = fractal\n"); },
      "none|poisson|pareto|constant|onoff|ramp");
  // Missing name.
  expect_spec_error([] { ScenarioSpec::parse("hops = 1\nhop.0.traffic.model = none\n"); },
                    "missing 'name");
  // No path at all.
  expect_spec_error([] { ScenarioSpec::parse("name = x\n"); },
                    "declares no path");
  // Mixing paper.* with hop.* is ambiguous.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\nhops = 1\npaper.hops = 3\n"); },
      "mixes paper.* keys");
  // A renewal model without a load is a forgotten key, not silence.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\nhops = 1\nhop.0.traffic.model = pareto\n"); },
      "no load is set");
  // A negative seed must not silently wrap through strtoull.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\nseed = -1\nhops = 1\nhop.0.traffic.model = none\n"); },
      "expected a non-negative integer, got '-1'");
  // A burst that truncates to zero bytes must fail at validation, not as an
  // uncaught invalid_argument from OnOffSource at instantiation.
  expect_spec_error(
      [] {
        ScenarioSpec::parse(
            "name = x\nhops = 1\nhop.0.traffic.model = onoff\n"
            "hop.0.traffic.utilization = 0.5\n"
            "hop.0.traffic.mean_burst_kb = 0.0004\n");
      },
      "at least one byte");
}

TEST(SpecValidate, OutOfRangeValues) {
  // Utilization at or above 1.
  expect_spec_error(
      [] {
        ScenarioSpec::parse(
            "name = x\nhops = 1\nhop.0.traffic.model = poisson\n"
            "hop.0.traffic.utilization = 1.3\n");
      },
      "must be in [0, 1), got 1.3");
  // Negative capacity.
  expect_spec_error(
      [] {
        ScenarioSpec::parse(
            "name = x\nhops = 1\nhop.0.capacity_mbps = -4\n"
            "hop.0.traffic.model = none\n");
      },
      "hop 0: capacity_mbps: must be positive");
  // Pareto alpha at 1 (infinite mean).
  expect_spec_error(
      [] {
        ScenarioSpec::parse(
            "name = x\nhops = 1\nhop.0.traffic.model = pareto\n"
            "hop.0.traffic.utilization = 0.5\nhop.0.traffic.pareto_alpha = 1\n");
      },
      "must be > 1");
  // On/off peak below the mean load.
  expect_spec_error(
      [] {
        ScenarioSpec::parse(
            "name = x\nhops = 1\nhop.0.traffic.model = onoff\n"
            "hop.0.traffic.utilization = 0.6\n"
            "hop.0.traffic.peak_utilization = 0.5\n");
      },
      "traffic.peak_utilization");
  // Ramp window running backwards.
  expect_spec_error(
      [] {
        ScenarioSpec::parse(
            "name = x\nhops = 1\nhop.0.traffic.model = ramp\n"
            "hop.0.traffic.utilization = 0.3\n"
            "hop.0.traffic.end_utilization = 0.7\n"
            "hop.0.traffic.ramp_start_s = 10\nhop.0.traffic.ramp_end_s = 5\n");
      },
      "must not precede ramp_start_s");
  // Paper form is validated too.
  expect_spec_error(
      [] { ScenarioSpec::parse("name = x\npaper.tight_utilization = 1.5\n"); },
      "paper.tight_utilization");
}

TEST(SpecParse, OnOffAndRampDefaultToOneSource) {
  const ScenarioSpec spec = ScenarioSpec::parse(R"(
    name = x
    hops = 2
    hop.0.traffic.model = onoff
    hop.0.traffic.utilization = 0.5
    hop.1.traffic.model = ramp
    hop.1.traffic.utilization = 0.3
    hop.1.traffic.end_utilization = 0.6
  )");
  EXPECT_EQ(spec.hops[0].traffic.sources, 1);
  EXPECT_EQ(spec.hops[1].traffic.sources, 1);
  // ...unless set explicitly.
  const ScenarioSpec multi = ScenarioSpec::parse(R"(
    name = x
    hops = 1
    hop.0.traffic.sources = 3
    hop.0.traffic.model = onoff
    hop.0.traffic.utilization = 0.5
  )");
  EXPECT_EQ(multi.hops[0].traffic.sources, 3);
}

TEST(SpecParse, FlowLinesParseWithDefaults) {
  const ScenarioSpec spec = ScenarioSpec::parse(R"(
    name = flowy
    hops = 3
    hop.0.traffic.model = none
    hop.1.traffic.model = none
    hop.2.traffic.model = none
    flow tcp
    flow tcp hops=1-2 rwnd=32 start_s=0.5 count=3 reverse_ms=100
    flow tcp hops=1 on_s=2 off_s=1 stop_s=30 mss=576
  )");
  ASSERT_EQ(spec.flows.size(), 3u);
  // Defaults: whole path, greedy, one flow, starts at 0.
  EXPECT_EQ(spec.flows[0].first_hop, 0u);
  EXPECT_EQ(spec.flows[0].last_hop, sim::Segment::kPathEnd);
  EXPECT_FALSE(spec.flows[0].rwnd.has_value());
  EXPECT_EQ(spec.flows[0].count, 1);
  EXPECT_EQ(spec.flows[0].start_s, 0.0);
  EXPECT_FALSE(spec.flows[0].cycles());
  // Explicit segment + rwnd cap.
  EXPECT_EQ(spec.flows[1].first_hop, 1u);
  EXPECT_EQ(spec.flows[1].last_hop, 2u);
  EXPECT_DOUBLE_EQ(*spec.flows[1].rwnd, 32.0);
  EXPECT_EQ(spec.flows[1].count, 3);
  EXPECT_DOUBLE_EQ(spec.flows[1].reverse_ms, 100.0);
  // Single-hop shorthand + on/off restart variant.
  EXPECT_EQ(spec.flows[2].first_hop, 1u);
  EXPECT_EQ(spec.flows[2].last_hop, 1u);
  EXPECT_TRUE(spec.flows[2].cycles());
  EXPECT_DOUBLE_EQ(*spec.flows[2].on_s, 2.0);
  EXPECT_DOUBLE_EQ(*spec.flows[2].off_s, 1.0);
  EXPECT_DOUBLE_EQ(*spec.flows[2].stop_s, 30.0);
  EXPECT_EQ(spec.flows[2].mss_bytes, 576);
  EXPECT_TRUE(spec.has_flows());

  // to_text() renders flow lines that re-parse to the same spec.
  const ScenarioSpec again = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(again.to_text(), spec.to_text());
  ASSERT_EQ(again.flows.size(), 3u);
  EXPECT_EQ(again.flows[1].count, 3);
}

TEST(SpecParse, FlowModeKeyParsesAndRoundTrips) {
  const auto parse_mode = [](const std::string& flow_line) {
    return ScenarioSpec::parse(
        "name = x\nhops = 2\nhop.0.traffic.model = none\n"
        "hop.1.traffic.model = none\n" + flow_line + "\n");
  };
  // Default: auto (the engine's native backend); omitted from to_text.
  const ScenarioSpec def = parse_mode("flow tcp");
  EXPECT_EQ(def.flows[0].mode, FlowSpec::Mode::kAuto);
  EXPECT_EQ(def.to_text().find("mode="), std::string::npos);
  const ScenarioSpec autod = parse_mode("flow tcp mode=auto");
  EXPECT_EQ(autod.flows[0].mode, FlowSpec::Mode::kAuto);
  // mode=packet pins the packet backend and survives the round-trip.
  const ScenarioSpec pinned = parse_mode("flow tcp rwnd=8 mode=packet");
  EXPECT_EQ(pinned.flows[0].mode, FlowSpec::Mode::kPacket);
  EXPECT_NE(pinned.to_text().find("mode=packet"), std::string::npos);
  const ScenarioSpec again = ScenarioSpec::parse(pinned.to_text());
  EXPECT_EQ(again.flows[0].mode, FlowSpec::Mode::kPacket);
  EXPECT_EQ(again.to_text(), pinned.to_text());
  // Unknown values fail with the accepted set.
  expect_spec_error([&] { parse_mode("flow tcp mode=fluid"); },
                    "unknown mode 'fluid' (expected auto or packet");
}

TEST(SpecParse, FlowCcKeyParsesAndRoundTrips) {
  const auto parse_cc = [](const std::string& flow_line) {
    return ScenarioSpec::parse(
        "name = x\nhops = 2\nhop.0.traffic.model = none\n"
        "hop.1.traffic.model = none\n" + flow_line + "\n");
  };
  // Default: reno (the bit-frozen legacy policy); omitted from to_text.
  const ScenarioSpec def = parse_cc("flow tcp");
  EXPECT_EQ(def.flows[0].cc, "reno");
  EXPECT_EQ(def.to_text().find("cc="), std::string::npos);
  const ScenarioSpec expl = parse_cc("flow tcp cc=reno");
  EXPECT_EQ(expl.flows[0].cc, "reno");
  EXPECT_EQ(expl.to_text().find("cc="), std::string::npos);
  // Every non-default policy parses and survives the round-trip.
  for (const std::string name : {"reno-rfc", "cubic", "bbr"}) {
    const ScenarioSpec pinned = parse_cc("flow tcp rwnd=8 cc=" + name);
    EXPECT_EQ(pinned.flows[0].cc, name);
    EXPECT_NE(pinned.to_text().find("cc=" + name), std::string::npos) << name;
    const ScenarioSpec again = ScenarioSpec::parse(pinned.to_text());
    EXPECT_EQ(again.flows[0].cc, name);
    EXPECT_EQ(again.to_text(), pinned.to_text());
  }
  // Unknown values fail with the accepted set.
  expect_spec_error([&] { parse_cc("flow tcp cc=vegas"); },
                    "unknown cc 'vegas' (expected reno, reno-rfc, cubic, or bbr");
}

TEST(SpecParse, FlowLinesWorkWithThePaperForm) {
  const ScenarioSpec spec = ScenarioSpec::parse(R"(
    name = paper-with-flow
    paper.hops = 3
    flow tcp rwnd=16
  )");
  ASSERT_TRUE(spec.paper.has_value());
  ASSERT_EQ(spec.flows.size(), 1u);
  EXPECT_DOUBLE_EQ(*spec.flows[0].rwnd, 16.0);
  const ScenarioSpec again = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(again.to_text(), spec.to_text());
}

TEST(SpecParse, FlowLineDiagnostics) {
  const auto with_flow = [](const std::string& flow_line) {
    return "name = x\nhops = 2\nhop.0.traffic.model = none\n"
           "hop.1.traffic.model = none\n" + flow_line + "\n";
  };
  // Missing kind.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow")); },
                    "line 5: flow: expected 'flow <kind>");
  // Unknown kind.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow udp")); },
                    "unknown flow kind 'udp'");
  // Unknown key lists the legal ones.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp window=3")); },
                    "unknown key 'window' (expected hops, rwnd");
  // Malformed token.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp rwnd")); },
                    "expected key=value, got 'rwnd'");
  // Duplicate key within the line.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp rwnd=2 rwnd=3")); },
                    "duplicate key 'rwnd'");
  // Bad hop-range syntax.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp hops=a-b")); },
                    "hops expects <hop> or <first>-<last>");
  // An index that overflows strtoul must not alias kPathEnd (whole path).
  expect_spec_error(
      [&] {
        ScenarioSpec::parse(with_flow("flow tcp hops=0-99999999999999999999"));
      },
      "hop indices in [0, 64]");
  // Range out of the path.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp hops=1-5")); },
                    "flow 0: hops: segment 1-5 does not fit the path (hops 0-1");
  // Backwards range.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp hops=1-0")); },
                    "first must not exceed last");
  // Non-numeric value names the flow key.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp start_s=soon")); },
                    "flow start_s: expected a number, got 'soon'");
  // rwnd below one segment.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp rwnd=0.5")); },
                    "flow 0: rwnd: must be at least 1 segment");
  // stop before start.
  expect_spec_error(
      [&] { ScenarioSpec::parse(with_flow("flow tcp start_s=5 stop_s=2")); },
      "stop_s: must come after start_s (5)");
  // on_s without off_s (and vice versa) is half a restart variant.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp on_s=2")); },
                    "on_s and off_s must be set together");
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp off_s=2")); },
                    "on_s and off_s must be set together");
  // count bounds.
  expect_spec_error([&] { ScenarioSpec::parse(with_flow("flow tcp count=0")); },
                    "flow 0: count: must be in [1, 64]");
}

TEST(SpecParse, OverlappingFlowSegmentsAreLegal) {
  // Overlap is a feature (competing flows sharing links), including two
  // flows that end after the same hop and an end-to-end flow over both.
  const ScenarioSpec spec = ScenarioSpec::parse(R"(
    name = overlappy
    hops = 3
    hop.0.traffic.model = none
    hop.1.traffic.model = none
    hop.2.traffic.model = none
    flow tcp hops=0-1
    flow tcp hops=1-1
    flow tcp hops=0-2
  )");
  ASSERT_EQ(spec.flows.size(), 3u);
  ScenarioInstance inst{spec};
  EXPECT_EQ(inst.flows().size(), 3u);
}

TEST(SpecInstance, FlowBearingSpecRunsDeterministically) {
  auto run_once = [] {
    ScenarioSpec spec = ScenarioSpec::parse(R"(
      name = det
      warmup_s = 3
      hops = 2
      hop.0.capacity_mbps = 20
      hop.0.traffic.model = poisson
      hop.0.traffic.utilization = 0.2
      hop.1.capacity_mbps = 10
      hop.1.traffic.model = pareto
      hop.1.traffic.utilization = 0.3
      flow tcp hops=0-1 rwnd=16
      flow tcp hops=1 on_s=1 off_s=0.5
    )");
    ScenarioInstance inst{std::move(spec)};
    inst.start();
    return std::tuple{inst.simulator().events_processed(),
                      inst.flow_bytes_acked().byte_count(),
                      inst.tight_link().bytes_forwarded().byte_count()};
  };
  const auto a = run_once();
  EXPECT_EQ(a, run_once());
  EXPECT_GT(std::get<1>(a), 0);
}

TEST(SpecTransform, WithLoadPreservesPaperBetaInvariant) {
  PaperPathConfig cfg;  // beta = 2, ux = 0.6
  const ScenarioSpec base = ScenarioSpec::from_paper("p", "", cfg);
  const ScenarioSpec swept = base.with_load(0.2);
  ASSERT_TRUE(swept.paper.has_value());
  EXPECT_DOUBLE_EQ(swept.paper->tight_utilization, 0.2);
  // Non-tight capacity re-derives from the new avail-bw: Cx = A*beta/(1-ux).
  EXPECT_DOUBLE_EQ(swept.hops[0].capacity.mbits_per_sec(), 8.0 * 2.0 / 0.4);
  // Custom specs change only the tight hop's load.
  const ScenarioSpec custom = ScenarioSpec::parse(kCustomSpec);
  const ScenarioSpec custom_swept = custom.with_load(0.3);
  EXPECT_DOUBLE_EQ(custom_swept.hops[1].traffic.utilization, 0.3);
  EXPECT_EQ(custom_swept.hops[0].capacity, custom.hops[0].capacity);
  EXPECT_DOUBLE_EQ(custom_swept.hops[0].traffic.utilization, 0.25);
  expect_spec_error([&] { (void)custom.with_load(1.0); }, "must be in [0, 1)");
}

TEST(SpecInstance, PaperSpecRunsBitIdenticalToTestbed) {
  // The keystone compatibility guarantee: a registry/spec-driven run of the
  // paper path must replay the direct PaperPathConfig run to the last bit
  // (same anchors as tests/integration/engine_determinism_test.cpp).
  PaperPathConfig cfg;
  cfg.seed = 77;
  core::PathloadConfig tool;
  const auto direct = run_pathload_once(cfg, tool, 77);
  const auto via_spec =
      run_scenario_once(ScenarioSpec::from_paper("p", "", cfg), tool, 77);
  EXPECT_EQ(direct.range.low.bits_per_sec(), via_spec.range.low.bits_per_sec());
  EXPECT_EQ(direct.range.high.bits_per_sec(), via_spec.range.high.bits_per_sec());
  EXPECT_EQ(direct.elapsed.nanos(), via_spec.elapsed.nanos());
  EXPECT_EQ(direct.fleets, via_spec.fleets);
}

TEST(SpecInstance, CustomSpecWarmupIsDeterministic) {
  auto warmup_state = [] {
    ScenarioSpec spec = ScenarioSpec::parse(kCustomSpec);
    ScenarioInstance inst{std::move(spec)};
    inst.start();
    return std::pair{inst.simulator().events_processed(),
                     inst.tight_link().bytes_forwarded().byte_count()};
  };
  const auto a = warmup_state();
  EXPECT_EQ(a, warmup_state());
  EXPECT_GT(a.first, 0u);
}

TEST(SpecInstance, NonstationaryAccessors) {
  const ScenarioSpec spec = ScenarioSpec::parse(R"(
    name = stepper
    hops = 1
    hop.0.capacity_mbps = 10
    hop.0.traffic.model = ramp
    hop.0.traffic.utilization = 0.3
    hop.0.traffic.end_utilization = 0.75
    hop.0.traffic.ramp_start_s = 15
    hop.0.traffic.ramp_end_s = 15
  )");
  EXPECT_TRUE(spec.nonstationary());
  EXPECT_DOUBLE_EQ(spec.avail_bw().mbits_per_sec(), 7.0);
  EXPECT_DOUBLE_EQ(spec.final_avail_bw().mbits_per_sec(), 2.5);
  EXPECT_FALSE(ScenarioSpec::parse(kCustomSpec).nonstationary());
}

}  // namespace
}  // namespace pathload::scenario
