// Tests for the sharded comparison matrix (scenario/shard.hpp): the cell
// text form round-trips bit-exactly, shard partition/merge reproduces the
// in-process run_matrix byte-for-byte for shard counts {1, 2, 4}, and the
// merge validates coverage loudly.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "baselines/estimators.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/shard.hpp"
#include "scenario/sweep_runner.hpp"

namespace pathload::scenario {
namespace {

const core::EstimatorRegistry& reg() { return baselines::builtin_estimators(); }

ScenarioSpec quick_paper_path() {
  ScenarioSpec spec = Registry::builtin().at("paper-path");
  spec.warmup = Duration::milliseconds(300);
  return spec;
}

std::vector<MatrixEstimator> small_estimators() {
  std::vector<MatrixEstimator> ests;
  ests.push_back(
      MatrixEstimator::from_registry(reg(), "cprobe", "trains=2, train_length=30"));
  ests.push_back(MatrixEstimator::from_registry(reg(), "pktpair", "pairs=10"));
  ests.push_back(MatrixEstimator::from_registry(
      reg(), "topp", "min_rate_mbps=2, max_rate_mbps=14, packets_per_train=20"));
  return ests;
}

// ---------------------------------------------------------------- partition

TEST(ShardPartition, RoundRobinOwnershipCoversEveryIndexOnce) {
  for (int count : {1, 2, 3, 4, 7}) {
    for (std::size_t index = 0; index < 40; ++index) {
      int owners = 0;
      for (int shard = 0; shard < count; ++shard) {
        owners += shard_owns_cell(index, shard, count) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1) << "index " << index << " shards " << count;
    }
  }
}

TEST(ShardPartition, ValidateRejectsBadRequests) {
  EXPECT_THROW(validate_shard(0, 0), SpecError);
  EXPECT_THROW(validate_shard(-1, 4), SpecError);
  EXPECT_THROW(validate_shard(4, 4), SpecError);
  EXPECT_NO_THROW(validate_shard(0, 1));
  EXPECT_NO_THROW(validate_shard(3, 4));
}

// ------------------------------------------------------------ serialization

TEST(CellText, RoundTripsEveryFieldIncludingAwkwardNotes) {
  MatrixCell cell;
  cell.estimator = "pktpair";
  cell.scenario = "paper-path";
  cell.load = 0.30000000000000004;  // not exactly representable in decimal
  cell.truth = Rate::bps(7000000) * (1.0 / 3.0);
  cell.seed0 = 18446744073709551615ull;  // max u64 survives
  core::EstimateReport r;
  r.estimator = "pktpair";
  r.quantity = core::EstimateReport::Quantity::kCapacity;
  r.outcome = core::EstimateReport::Outcome::kDegraded;
  r.outcome_note = "14% loss, note with \"quotes\", commas,\nnewline and \\slash\r";
  r.packets_lost = 7;
  r.valid = true;
  r.is_range = false;
  r.low = r.high = Rate::mbps(9.600000000000001);
  r.capacity = Rate::mbps(10);
  r.streams_sent = 3;
  r.packets_sent = 60;
  r.bytes_sent = DataSize::bytes(12345);
  r.elapsed = Duration::nanoseconds(987654321);
  r.iterations.push_back({4.25, 9.33, "pair 1, dispersion \"tight\"\n"});
  cell.reports.push_back(r);
  core::EstimateReport invalid;
  invalid.estimator = "pktpair";
  invalid.outcome = core::EstimateReport::Outcome::kFailed;
  invalid.outcome_note = "error: channel died";
  cell.reports.push_back(invalid);

  const std::string text = cell_to_text(cell, 5);
  const ParsedCells parsed = parse_cells("cells total=6 version=1\n" + text);
  ASSERT_EQ(parsed.total, 6u);
  ASSERT_EQ(parsed.cells.size(), 1u);
  EXPECT_EQ(parsed.cells[0].first, 5u);
  const MatrixCell& back = parsed.cells[0].second;
  EXPECT_EQ(back.estimator, cell.estimator);
  EXPECT_EQ(back.scenario, cell.scenario);
  EXPECT_EQ(back.load, cell.load);
  EXPECT_EQ(back.truth.bits_per_sec(), cell.truth.bits_per_sec());
  EXPECT_EQ(back.seed0, cell.seed0);
  ASSERT_EQ(back.reports.size(), 2u);
  EXPECT_EQ(back.reports[0].outcome_note, r.outcome_note);
  EXPECT_EQ(back.reports[0].quantity, r.quantity);
  EXPECT_EQ(back.reports[0].outcome, r.outcome);
  EXPECT_EQ(back.reports[0].low.bits_per_sec(), r.low.bits_per_sec());
  ASSERT_TRUE(back.reports[0].capacity.has_value());
  EXPECT_EQ(back.reports[0].capacity->bits_per_sec(), r.capacity->bits_per_sec());
  EXPECT_EQ(back.reports[0].elapsed.nanos(), r.elapsed.nanos());
  ASSERT_EQ(back.reports[0].iterations.size(), 1u);
  EXPECT_EQ(back.reports[0].iterations[0].note, r.iterations[0].note);
  EXPECT_FALSE(back.reports[1].valid);
  EXPECT_EQ(back.reports[1].outcome_note, invalid.outcome_note);

  // Re-serializing the parsed cell is byte-identical: the text form is a
  // fixed point, which is what makes merged output comparable with cmp.
  EXPECT_EQ(cell_to_text(back, 5), text);
}

TEST(CellText, ParseRejectsMalformedStreams) {
  // Truthful line numbers on: bad header, wrong field, non-numeric value,
  // duplicate index, and an index beyond the declared total.
  EXPECT_THROW(parse_cells("not a header\n"), SpecError);
  EXPECT_THROW(parse_cells("cells total=x version=1\n"), SpecError);
  EXPECT_THROW(parse_cells("cells total=1 version=2\n"), SpecError);

  SweepRunner runner{1};
  const auto cells =
      run_matrix(small_estimators(), {quick_paper_path()}, {0.4}, 1, 11, runner);
  std::string text = cells_to_text(cells);
  {
    std::string broken = text;
    const auto pos = broken.find("load =");
    ASSERT_NE(pos, std::string::npos);
    broken.replace(pos, 6, "lode =");
    EXPECT_THROW(parse_cells(broken), SpecError);
  }
  {
    std::string broken = text;
    const auto pos = broken.find("seed0 = ");
    ASSERT_NE(pos, std::string::npos);
    broken.replace(pos, 8, "seed0 = zz");
    EXPECT_THROW(parse_cells(broken), SpecError);
  }
  {
    // Same stream twice under one header: duplicate indices.
    const std::string first_cell = cell_to_text(cells[0], 0);
    EXPECT_THROW(parse_cells("cells total=3 version=1\n" + first_cell + first_cell),
                 SpecError);
  }
  {
    const std::string out_of_range = cell_to_text(cells[0], 9);
    EXPECT_THROW(parse_cells("cells total=3 version=1\n" + out_of_range), SpecError);
  }
}

// ------------------------------------------------------------------- merge

TEST(ShardMatrix, MergedShardsAreByteIdenticalToInProcessFor124) {
  const std::vector<MatrixEstimator> ests = small_estimators();
  const std::vector<ScenarioSpec> scenarios = {quick_paper_path()};
  const std::vector<double> loads = {0.3, 0.6};
  SweepRunner runner{2};

  const auto direct = run_matrix(ests, scenarios, loads, /*runs=*/2, 77, runner);
  const std::string golden = cells_to_text(direct);
  ASSERT_EQ(direct.size(), 6u);

  for (int shards : {1, 2, 4}) {
    const auto merged = run_matrix_sharded(shards, [&](int index, int count) {
      return run_matrix_shard(ests, scenarios, loads, 2, 77, index, count, runner);
    });
    EXPECT_EQ(cells_to_text(merged), golden) << shards << " shards";
  }
}

TEST(ShardMatrix, ShardStreamsCarryGlobalIndicesAndTotals) {
  const std::vector<MatrixEstimator> ests = small_estimators();
  SweepRunner runner{1};
  const std::string shard1 =
      run_matrix_shard(ests, {quick_paper_path()}, {0.5}, 1, 5, 1, 2, runner);
  const ParsedCells parsed = parse_cells(shard1);
  EXPECT_EQ(parsed.total, 3u);  // 3 estimators x 1 scenario x 1 load
  ASSERT_EQ(parsed.cells.size(), 1u);
  EXPECT_EQ(parsed.cells[0].first, 1u);  // shard 1 of 2 owns the odd index
  EXPECT_EQ(parsed.cells[0].second.estimator, "pktpair");
}

TEST(ShardMatrix, MergeRejectsMissingDuplicateAndDisagreeingStreams) {
  const std::vector<MatrixEstimator> ests = small_estimators();
  SweepRunner runner{1};
  const std::string shard0 =
      run_matrix_shard(ests, {quick_paper_path()}, {0.5}, 1, 5, 0, 2, runner);
  const std::string shard1 =
      run_matrix_shard(ests, {quick_paper_path()}, {0.5}, 1, 5, 1, 2, runner);

  EXPECT_NO_THROW(merge_cell_texts({shard0, shard1}));
  // Missing a shard: indices uncovered.
  EXPECT_THROW(merge_cell_texts({shard0}), SpecError);
  // The same shard twice: duplicated indices.
  EXPECT_THROW(merge_cell_texts({shard0, shard0}), SpecError);
  // Totals disagree (a stream from some other matrix).
  EXPECT_THROW(merge_cell_texts({shard0, "cells total=99 version=1\n"}), SpecError);
  EXPECT_THROW(merge_cell_texts({}), SpecError);
}

}  // namespace
}  // namespace pathload::scenario
