#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "scenario/sweep_runner.hpp"

namespace pathload::scenario {
namespace {

TEST(SweepRunner, MapReturnsResultsInIndexOrder) {
  SweepRunner runner{4};
  const auto out = runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, RunsEveryIndexExactlyOnce) {
  SweepRunner runner{8};
  std::vector<std::atomic<int>> hits(257);
  runner.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, PropagatesWorkerExceptions) {
  SweepRunner runner{4};
  EXPECT_THROW(runner.run_indexed(64,
                                  [](std::size_t i) {
                                    if (i == 13) throw std::runtime_error{"boom"};
                                  }),
               std::runtime_error);
}

TEST(SweepRunner, ThreadsDefaultRespectsEnvironment) {
  setenv("PATHLOAD_THREADS", "3", 1);
  EXPECT_EQ(SweepRunner{}.threads(), 3);
  unsetenv("PATHLOAD_THREADS");
  EXPECT_GE(SweepRunner{}.threads(), 1);
  EXPECT_EQ(SweepRunner{7}.threads(), 7);
}

TEST(SweepRunner, PathloadSweepIsThreadCountInvariant) {
  PaperPathConfig path;
  path.hops = 1;
  path.tight_capacity = Rate::mbps(10);
  path.tight_utilization = 0.5;
  path.warmup = Duration::milliseconds(200);
  core::PathloadConfig tool;

  SweepRunner serial{1};
  SweepRunner pooled{4};
  const auto a = sweep_pathload_repeated(path, tool, 4, /*seed0=*/71, serial);
  const auto b = sweep_pathload_repeated(path, tool, 4, /*seed0=*/71, pooled);
  // And against the sequential reference implementation.
  const auto c = run_pathload_repeated(path, tool, 4, /*seed0=*/71);

  ASSERT_EQ(a.results.size(), b.results.size());
  ASSERT_EQ(a.results.size(), c.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].range.low.bits_per_sec(), b.results[i].range.low.bits_per_sec());
    EXPECT_EQ(a.results[i].range.high.bits_per_sec(),
              b.results[i].range.high.bits_per_sec());
    EXPECT_EQ(a.results[i].range.low.bits_per_sec(), c.results[i].range.low.bits_per_sec());
    EXPECT_EQ(a.results[i].range.high.bits_per_sec(),
              c.results[i].range.high.bits_per_sec());
    EXPECT_EQ(a.results[i].elapsed.nanos(), b.results[i].elapsed.nanos());
    EXPECT_EQ(a.results[i].elapsed.nanos(), c.results[i].elapsed.nanos());
  }
}

}  // namespace
}  // namespace pathload::scenario
