// Tests for the generic comparison harness: cell layout, thread-count
// independence, and agreement with the pathload-specific ancestors.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/estimators.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep_runner.hpp"

namespace pathload::scenario {
namespace {

const core::EstimatorRegistry& reg() { return baselines::builtin_estimators(); }

ScenarioSpec quick_paper_path() {
  ScenarioSpec spec = Registry::builtin().at("paper-path");
  spec.warmup = Duration::milliseconds(300);
  return spec;
}

TEST(RunMatrix, CellGridIsEstimatorMajorWithDerivedSeeds) {
  const std::vector<MatrixEstimator> ests = {
      MatrixEstimator::from_registry(reg(), "cprobe", "trains=2, train_length=30"),
      MatrixEstimator::from_registry(reg(), "pktpair", "pairs=10"),
  };
  SweepRunner runner{1};
  const auto cells = run_matrix(ests, {quick_paper_path()}, {0.3, 0.6},
                                /*runs=*/2, /*seed0=*/500, runner);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].estimator, "cprobe");
  EXPECT_EQ(cells[0].load, 0.3);
  EXPECT_EQ(cells[0].seed0, 800u);  // 500 + 0.3 * 1000, the fig05 derivation
  EXPECT_EQ(cells[1].estimator, "cprobe");
  EXPECT_EQ(cells[1].load, 0.6);
  EXPECT_EQ(cells[1].seed0, 1100u);
  EXPECT_EQ(cells[2].estimator, "pktpair");
  EXPECT_EQ(cells[3].estimator, "pktpair");
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.scenario, "paper-path");
    EXPECT_EQ(cell.reports.size(), 2u);
    EXPECT_EQ(cell.truth, Rate::mbps(10) * (1.0 - cell.load));
  }
}

TEST(RunMatrix, EmptyLoadListRunsEachScenarioAtItsOwnOperatingPoint) {
  const std::vector<MatrixEstimator> ests = {
      MatrixEstimator::from_registry(reg(), "cprobe", "trains=1, train_length=20"),
  };
  ScenarioSpec tight = Registry::builtin().at("tight-not-narrow");
  tight.warmup = Duration::milliseconds(300);
  SweepRunner runner{1};
  const auto cells =
      run_matrix(ests, {quick_paper_path(), tight}, {}, /*runs=*/1, 7, runner);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].load, 0.6);  // paper-path's configured tight load
  EXPECT_EQ(cells[1].load, 0.8);  // tight-not-narrow's middle hop
  EXPECT_EQ(cells[0].seed0, 7u);
  EXPECT_EQ(cells[1].seed0, 7u);
}

TEST(RunMatrix, ResultsAreIndependentOfThreadCount) {
  const std::vector<MatrixEstimator> ests = {
      MatrixEstimator::from_registry(reg(), "cprobe", "trains=2, train_length=30"),
      MatrixEstimator::from_registry(reg(), "pktpair", "pairs=10"),
  };
  SweepRunner one{1};
  SweepRunner four{4};
  const auto a = run_matrix(ests, {quick_paper_path()}, {0.5}, 3, 42, one);
  const auto b = run_matrix(ests, {quick_paper_path()}, {0.5}, 3, 42, four);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].reports.size(), b[i].reports.size());
    for (std::size_t r = 0; r < a[i].reports.size(); ++r) {
      EXPECT_EQ(a[i].reports[r].low.bits_per_sec(),
                b[i].reports[r].low.bits_per_sec());
      EXPECT_EQ(a[i].reports[r].elapsed.nanos(), b[i].reports[r].elapsed.nanos());
      EXPECT_EQ(a[i].reports[r].bytes_sent.byte_count(),
                b[i].reports[r].bytes_sent.byte_count());
    }
  }
}

TEST(RunMatrix, PathloadCellReproducesSweepScenarioRepeated) {
  // The generic harness must not change pathload's numbers: a pathload
  // cell's reports equal the pathload-specific sweep, run for run.
  const ScenarioSpec spec = quick_paper_path();
  const std::vector<MatrixEstimator> ests = {
      MatrixEstimator::from_registry(reg(), "pathload"),
  };
  SweepRunner runner{2};
  const auto cells = run_matrix(ests, {spec}, {0.5}, 2, 1000, runner);
  ASSERT_EQ(cells.size(), 1u);

  const core::PathloadConfig tool;
  const RepeatedRuns rr = sweep_scenario_repeated(spec.with_load(0.5), tool, 2,
                                                  /*seed0=*/1500, runner);
  ASSERT_EQ(cells[0].reports.size(), rr.results.size());
  for (std::size_t i = 0; i < rr.results.size(); ++i) {
    EXPECT_EQ(cells[0].reports[i].low.bits_per_sec(),
              rr.results[i].range.low.bits_per_sec());
    EXPECT_EQ(cells[0].reports[i].high.bits_per_sec(),
              rr.results[i].range.high.bits_per_sec());
    EXPECT_EQ(cells[0].reports[i].elapsed.nanos(), rr.results[i].elapsed.nanos());
    EXPECT_EQ(cells[0].reports[i].bytes_sent.byte_count(),
              rr.results[i].bytes_sent.byte_count());
  }
}

TEST(RunMatrix, AggregatesReduceTheReports) {
  const std::vector<MatrixEstimator> ests = {
      MatrixEstimator::from_registry(reg(), "pktpair", "pairs=12"),
  };
  SweepRunner runner{1};
  const auto cells = run_matrix(ests, {quick_paper_path()}, {0.4}, 2, 9, runner);
  ASSERT_EQ(cells.size(), 1u);
  const MatrixCell& c = cells[0];
  EXPECT_EQ(c.valid_runs(), 2);
  EXPECT_GT(c.mean_center(), Rate::zero());
  EXPECT_GT(c.mean_bytes().byte_count(), 0);
  EXPECT_GT(c.mean_packets(), 0.0);
  EXPECT_GT(c.mean_elapsed(), Duration::zero());
  // pktpair measures C = 10 on a 40%-loaded path: far from A = 6 with a
  // 1 Mb/s slack, so coverage is 0 and the relative error is large.
  EXPECT_EQ(c.coverage(Rate::mbps(1)), 0.0);
  EXPECT_GT(c.mean_rel_error(), 0.2);
}

TEST(RunMatrix, AllInvalidCellScoresNaNErrorNotPerfectZero) {
  // TOPP with a sweep capped below A never produces an estimate; the cell
  // must report NaN error/CV (rendered n/a, JSON null), never a perfect 0.
  const std::vector<MatrixEstimator> ests = {
      MatrixEstimator::from_registry(
          reg(), "topp", "min_rate_mbps=1, max_rate_mbps=2, packets_per_train=10"),
  };
  SweepRunner runner{1};
  const auto cells = run_matrix(ests, {quick_paper_path()}, {0.6}, 2, 3, runner);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].valid_runs(), 0);
  EXPECT_TRUE(std::isnan(cells[0].mean_rel_error()));
  EXPECT_TRUE(std::isnan(cells[0].cv_center()));
  EXPECT_EQ(cells[0].coverage(Rate::mbps(1)), 0.0);
}

TEST(MatrixEstimator, FromRegistrySurfacesOverrideErrorsEagerly) {
  EXPECT_THROW(MatrixEstimator::from_registry(reg(), "cprobe", "bogus=1"),
               core::EstimatorError);
  EXPECT_THROW(MatrixEstimator::from_registry(reg(), "no-such-tool"),
               core::EstimatorError);
}

}  // namespace
}  // namespace pathload::scenario
