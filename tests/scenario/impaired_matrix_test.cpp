// The determinism contract for impaired scenarios: a seeded impairment run
// is exactly repeatable, byte-identical across worker thread counts, and
// its degradation verdicts (outcome + loss accounting) are part of that
// repeatability — not just the estimates.

#include <gtest/gtest.h>

#include <string>

#include "baselines/estimators.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep_runner.hpp"

namespace pathload::scenario {
namespace {

const core::EstimatorRegistry& reg() { return baselines::builtin_estimators(); }

ScenarioSpec quick_preset(const char* name) {
  ScenarioSpec spec = Registry::builtin().at(name);
  spec.warmup = Duration::milliseconds(300);
  return spec;
}

std::vector<MatrixEstimator> cheap_estimators() {
  std::vector<MatrixEstimator> ests;
  ests.push_back(
      MatrixEstimator::from_registry(reg(), "cprobe", "trains=2, train_length=40"));
  ests.push_back(MatrixEstimator::from_registry(reg(), "pktpair", "pairs=15"));
  return ests;
}

/// Everything a cell reports, rendered to one string — if any byte of any
/// report (estimate, footprint, outcome, loss note) depends on scheduling,
/// this string changes.
std::string fingerprint(const std::vector<MatrixCell>& cells) {
  std::string out;
  for (const auto& c : cells) {
    out += c.estimator + "@" + c.scenario + " " + c.outcome_summary() + " ";
    for (const auto& r : c.reports) {
      out += std::to_string(r.low.bits_per_sec()) + "/" +
             std::to_string(r.high.bits_per_sec()) + " " +
             std::to_string(r.packets_sent) + "-" +
             std::to_string(r.packets_lost) + " " +
             std::to_string(r.elapsed.nanos()) + " " +
             std::string{core::EstimateReport::outcome_label(r.outcome)} + " [" +
             r.outcome_note + "]; ";
    }
    out += "\n";
  }
  return out;
}

TEST(ImpairedMatrix, ByteIdenticalAcrossThreadCounts) {
  const auto ests = cheap_estimators();
  const std::vector<ScenarioSpec> scenarios = {quick_preset("flaky-path")};
  SweepRunner one{1};
  SweepRunner four{4};
  const auto a = run_matrix(ests, scenarios, {}, /*runs=*/2, /*seed0=*/11, one);
  const auto b = run_matrix(ests, scenarios, {}, /*runs=*/2, /*seed0=*/11, four);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(ImpairedMatrix, SameSeedRepeatsExactlyDifferentSeedDoesNot) {
  const auto ests = cheap_estimators();
  const std::vector<ScenarioSpec> scenarios = {quick_preset("lossy-tight")};
  SweepRunner runner{2};
  const auto a = run_matrix(ests, scenarios, {}, 2, 21, runner);
  const auto b = run_matrix(ests, scenarios, {}, 2, 21, runner);
  const auto c = run_matrix(ests, scenarios, {}, 2, 22, runner);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

TEST(ImpairedMatrix, LossyPresetActuallyLosesProbesAndDegradesGapTools) {
  // 3% random loss on the tight hop: the probe-loss accounting must see
  // it, and the shared outcome ladder must flag probe-based tools as
  // degraded (loss above the 2% threshold).
  std::vector<MatrixEstimator> ests;
  ests.push_back(
      MatrixEstimator::from_registry(reg(), "cprobe", "trains=3, train_length=60"));
  SweepRunner runner{1};
  const auto cells =
      run_matrix(ests, {quick_preset("lossy-tight")}, {}, /*runs=*/2, 5, runner);
  ASSERT_EQ(cells.size(), 1u);
  const MatrixCell& c = cells[0];
  std::int64_t lost = 0;
  for (const auto& r : c.reports) lost += r.packets_lost;
  EXPECT_GT(lost, 0);
  EXPECT_GT(c.mean_loss_fraction(), 0.0);
  const auto counts = c.outcome_counts();
  EXPECT_GT(counts[static_cast<int>(core::EstimateReport::Outcome::kDegraded)], 0)
      << c.outcome_summary();
}

TEST(ImpairedMatrix, PristineScenarioStaysOk) {
  // The flip side: no impairments, no loss, outcome "ok" across the board
  // — the degradation plumbing must not invent problems.
  std::vector<MatrixEstimator> ests;
  ests.push_back(
      MatrixEstimator::from_registry(reg(), "cprobe", "trains=2, train_length=40"));
  SweepRunner runner{1};
  const auto cells =
      run_matrix(ests, {quick_preset("paper-path")}, {0.5}, 2, 9, runner);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].outcome_summary(), "ok");
  EXPECT_EQ(cells[0].mean_loss_fraction(), 0.0);
  for (const auto& r : cells[0].reports) EXPECT_EQ(r.packets_lost, 0);
}

}  // namespace
}  // namespace pathload::scenario
