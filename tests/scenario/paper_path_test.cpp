#include <gtest/gtest.h>

#include "scenario/experiment.hpp"
#include "scenario/paper_path.hpp"

namespace pathload::scenario {
namespace {

TEST(PaperPathConfig, DerivedQuantities) {
  PaperPathConfig cfg;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;
  cfg.beta = 2.0;
  cfg.nontight_utilization = 0.6;
  EXPECT_EQ(cfg.tight_avail_bw(), Rate::mbps(4));
  // Cx = beta * At / (1 - ux) = 2*4/0.4 = 20.
  EXPECT_EQ(cfg.nontight_capacity(), Rate::mbps(20));
}

TEST(Testbed, TightLinkIsMiddleHop) {
  PaperPathConfig cfg;
  cfg.hops = 5;
  Testbed bed{cfg};
  EXPECT_EQ(bed.tight_index(), 2u);
  EXPECT_EQ(bed.path().hop_count(), 5u);
  EXPECT_EQ(bed.tight_link().capacity(), cfg.tight_capacity);
  for (std::size_t i = 0; i < bed.path().hop_count(); ++i) {
    if (i != bed.tight_index()) {
      EXPECT_EQ(bed.path().link(i).capacity(), cfg.nontight_capacity());
    }
  }
}

TEST(Testbed, RejectsBadConfig) {
  PaperPathConfig no_hops;
  no_hops.hops = 0;
  EXPECT_THROW(Testbed{no_hops}, std::invalid_argument);
  PaperPathConfig overloaded;
  overloaded.tight_utilization = 1.0;
  EXPECT_THROW(Testbed{overloaded}, std::invalid_argument);
}

TEST(Testbed, FluidModelMatchesTopology) {
  PaperPathConfig cfg;
  cfg.hops = 3;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;
  cfg.beta = 2.0;
  Testbed bed{cfg};
  const auto fluid = bed.fluid();
  EXPECT_EQ(fluid.hop_count(), 3u);
  EXPECT_EQ(fluid.avail_bw(), Rate::mbps(4));
  EXPECT_EQ(fluid.tight_link(), bed.tight_index());
}

TEST(Testbed, WarmupProducesConfiguredUtilization) {
  PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;
  cfg.model = sim::Interarrival::kExponential;
  cfg.warmup = Duration::seconds(1);
  Testbed bed{cfg};
  bed.start();
  auto& monitor = bed.monitor_tight_link(Duration::seconds(20));
  bed.simulator().run_for(Duration::seconds(21));
  ASSERT_FALSE(monitor.readings().empty());
  EXPECT_NEAR(monitor.readings().front().utilization, 0.6, 0.04);
}

TEST(Testbed, BetaOneMakesAllLinksEquallyTight) {
  PaperPathConfig cfg;
  cfg.hops = 3;
  cfg.beta = 1.0;
  cfg.tight_utilization = 0.6;
  cfg.nontight_utilization = 0.6;
  Testbed bed{cfg};
  const auto fluid = bed.fluid();
  for (const auto& link : fluid.links()) {
    EXPECT_EQ(link.avail_bw(), fluid.avail_bw());
  }
}

TEST(Testbed, ZeroUtilizationMeansNoTraffic) {
  PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_utilization = 0.0;
  Testbed bed{cfg};
  bed.start();
  bed.simulator().run_for(Duration::seconds(2));
  EXPECT_EQ(bed.tight_link().bytes_forwarded(), DataSize::bytes(0));
}

TEST(Testbed, SeedsGiveReproducibleTraffic) {
  auto run = [](std::uint64_t seed) {
    PaperPathConfig cfg;
    cfg.hops = 1;
    cfg.seed = seed;
    cfg.warmup = Duration::seconds(2);
    Testbed bed{cfg};
    bed.start();
    return bed.tight_link().bytes_forwarded();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(RepeatedRuns, StatisticsAggregateCorrectly) {
  RepeatedRuns rr;
  for (double low : {2.0, 3.0, 4.0}) {
    core::PathloadResult r;
    r.range = {Rate::mbps(low), Rate::mbps(low + 2.0)};
    r.fleets = 5;
    r.elapsed = Duration::seconds(10);
    rr.results.push_back(r);
  }
  EXPECT_EQ(rr.mean_low(), Rate::mbps(3.0));
  EXPECT_EQ(rr.mean_high(), Rate::mbps(5.0));
  EXPECT_DOUBLE_EQ(rr.mean_fleets(), 5.0);
  EXPECT_EQ(rr.mean_elapsed(), Duration::seconds(10));
  // truth = 4.2: contained in [3,5] and [4,6] but not [2,4].
  EXPECT_NEAR(rr.coverage(Rate::mbps(4.2)), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(rr.relative_variations().size(), 3u);
}

TEST(RepeatedRuns, EmptyIsSafe) {
  RepeatedRuns rr;
  EXPECT_EQ(rr.coverage(Rate::mbps(1)), 0.0);
  EXPECT_EQ(rr.mean_fleets(), 0.0);
  EXPECT_EQ(rr.mean_elapsed(), Duration::zero());
}

}  // namespace
}  // namespace pathload::scenario
