// Tests for the scenario registry: the builtin preset catalogue and the
// name-uniqueness / lookup-diagnostic contract.

#include <gtest/gtest.h>

#include "scenario/registry.hpp"

namespace pathload::scenario {
namespace {

TEST(Registry, BuiltinHasTheDocumentedPresets) {
  const Registry& reg = Registry::builtin();
  EXPECT_GE(reg.size(), 9u);
  for (const char* name : {"paper-path", "paper-path-poisson", "tight-not-narrow",
                           "hetero-5hop", "bursty-tight", "load-step",
                           "asym-buffers", "tight-ladder-8hop", "wave-load"}) {
    const ScenarioSpec* spec = reg.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_NO_THROW(spec->validate()) << name;
    EXPECT_FALSE(spec->description.empty()) << name;
  }
}

TEST(Registry, AsymBuffersHasHeterogeneousQueueDepths) {
  const ScenarioSpec& spec = Registry::builtin().at("asym-buffers");
  ASSERT_EQ(spec.hops.size(), 3u);
  EXPECT_EQ(spec.hops[0].buffer_drain, Duration::milliseconds(40));
  EXPECT_EQ(spec.hops[1].buffer_drain, Duration::milliseconds(1000));
  EXPECT_EQ(spec.hops[2].buffer_drain, Duration::milliseconds(40));
  EXPECT_EQ(spec.tight_hop(), 1u);
  // The shallow edge buffers are really that shallow once instantiated.
  ScenarioInstance inst{spec};
  EXPECT_EQ(inst.path().link(0).buffer_limit(),
            Rate::mbps(20).bytes_in(Duration::milliseconds(40)));
  EXPECT_EQ(inst.path().link(1).buffer_limit(),
            Rate::mbps(10).bytes_in(Duration::milliseconds(1000)));
}

TEST(Registry, TightLadderHasManyNearTightHops) {
  const ScenarioSpec& spec = Registry::builtin().at("tight-ladder-8hop");
  ASSERT_EQ(spec.hops.size(), 8u);
  const Rate tight_avail = spec.avail_bw();
  EXPECT_EQ(tight_avail, Rate::mbps(10) * 0.4);
  // Every hop's avail-bw is within 12.5% of the tight link's.
  for (const auto& h : spec.hops) {
    const Rate avail = h.capacity * (1.0 - h.traffic.utilization);
    EXPECT_GE(avail, tight_avail);
    EXPECT_LE(avail.bits_per_sec(), tight_avail.bits_per_sec() * 1.125);
  }
}

TEST(Registry, WaveLoadRampsUpThenBackDown) {
  ScenarioSpec spec = Registry::builtin().at("wave-load");
  ASSERT_TRUE(spec.nonstationary());
  ASSERT_TRUE(spec.hops[1].traffic.has_ramp_back());
  // A wave returns to its starting load, so the long-run avail-bw equals
  // the pre-ramp value at both ends of the run.
  EXPECT_EQ(spec.final_avail_bw(), spec.avail_bw());
  EXPECT_EQ(spec.avail_bw(), Rate::mbps(7));

  spec.warmup = Duration::zero();
  ScenarioInstance inst{std::move(spec)};
  inst.start();
  sim::Link& tight = inst.tight_link();
  auto mbps_over = [&](Duration window) {
    const DataSize mark = tight.bytes_forwarded();
    inst.simulator().run_for(window);
    return (tight.bytes_forwarded() - mark).bits() / window.secs() / 1e6;
  };
  const double before = mbps_over(Duration::seconds(9));   // t in [0, 9): ~3
  inst.simulator().run_for(Duration::seconds(7));          // skip the up-ramp
  const double peak = mbps_over(Duration::seconds(8));     // t in [16, 24): ~8
  inst.simulator().run_for(Duration::seconds(7));          // skip the down-ramp
  const double after = mbps_over(Duration::seconds(10));   // t in [31, 41): ~3
  EXPECT_NEAR(before, 3.0, 0.5);
  EXPECT_NEAR(peak, 8.0, 0.9);
  EXPECT_NEAR(after, 3.0, 0.6);
}

TEST(Registry, WaveLoadSpecRoundTripsThroughText) {
  const ScenarioSpec& spec = Registry::builtin().at("wave-load");
  const ScenarioSpec reparsed = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(reparsed.to_text(), spec.to_text());
  EXPECT_TRUE(reparsed.hops[1].traffic.has_ramp_back());
  EXPECT_EQ(reparsed.hops[1].traffic.ramp_back_start_s, 25.0);
  EXPECT_EQ(reparsed.hops[1].traffic.ramp_back_end_s, 30.0);
}

TEST(Registry, RampBackValidationRejectsWindowBeforeRampEnd) {
  ScenarioSpec spec = Registry::builtin().at("wave-load");
  spec.hops[1].traffic.ramp_back_start_s = 12.0;  // before ramp_end_s = 15
  try {
    spec.validate();
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string{e.what()}.find("ramp_back_start_s"), std::string::npos);
  }
}

TEST(Registry, EveryBuiltinPresetInstantiatesAndWarmsUp) {
  for (const ScenarioSpec& spec : Registry::builtin().entries()) {
    ScenarioSpec quick = spec;
    quick.warmup = Duration::milliseconds(200);
    ScenarioInstance inst{std::move(quick)};
    inst.start();
    EXPECT_GT(inst.simulator().events_processed(), 0u) << spec.name;
    EXPECT_GT(inst.configured_avail_bw().mbits_per_sec(), 0.0) << spec.name;
  }
}

TEST(Registry, TightNotNarrowSeparatesTheTwoLinks) {
  ScenarioSpec spec = Registry::builtin().at("tight-not-narrow");
  const std::size_t tight = spec.tight_hop();
  ScenarioInstance inst{std::move(spec)};
  EXPECT_NE(inst.path().narrow_index(), tight);
  EXPECT_EQ(inst.path().capacity(), Rate::mbps(8));     // narrow: first hop
  EXPECT_EQ(inst.tight_link().capacity(), Rate::mbps(20));  // tight: middle
}

TEST(Registry, LoadStepActuallyStepsTheTightLinkLoad) {
  ScenarioSpec spec = Registry::builtin().at("load-step");
  ASSERT_TRUE(spec.nonstationary());
  spec.warmup = Duration::zero();
  ScenarioInstance inst{std::move(spec)};
  inst.start();
  sim::Link& tight = inst.tight_link();
  // Pre-step window (the step is at t = 15 s): ~30% of 10 Mb/s.
  inst.simulator().run_for(Duration::seconds(14));
  const double before =
      tight.bytes_forwarded().bits() / 14.0 / 1e6;
  // Post-step window: ~75%.
  const DataSize mark = tight.bytes_forwarded();
  inst.simulator().run_for(Duration::seconds(10));
  const double after = (tight.bytes_forwarded() - mark).bits() / 10.0 / 1e6;
  EXPECT_NEAR(before, 3.0, 0.5);
  EXPECT_NEAR(after, 7.5, 0.9);
}

TEST(Registry, AddRejectsDuplicateNames) {
  Registry reg = Registry::builtin();  // a mutable copy
  ScenarioSpec dup = reg.at("paper-path");
  try {
    reg.add(std::move(dup));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string{e.what()}.find("already has a preset named 'paper-path'"),
              std::string::npos);
  }
}

TEST(Registry, AtNamesTheKnownPresetsOnMiss) {
  EXPECT_EQ(Registry::builtin().find("no-such"), nullptr);
  try {
    (void)Registry::builtin().at("no-such");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown preset 'no-such'"), std::string::npos);
    EXPECT_NE(msg.find("paper-path"), std::string::npos);
  }
}

TEST(Registry, AddTextParsesAndRegisters) {
  Registry reg;
  reg.add_text(R"(
    name = tiny
    hops = 1
    hop.0.traffic.model = none
  )");
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.at("tiny").hops.size(), 1u);
}

}  // namespace
}  // namespace pathload::scenario
