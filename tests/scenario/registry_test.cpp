// Tests for the scenario registry: the builtin preset catalogue and the
// name-uniqueness / lookup-diagnostic contract.

#include <gtest/gtest.h>

#include "scenario/registry.hpp"

namespace pathload::scenario {
namespace {

TEST(Registry, BuiltinHasTheDocumentedPresets) {
  const Registry& reg = Registry::builtin();
  EXPECT_GE(reg.size(), 5u);
  for (const char* name : {"paper-path", "paper-path-poisson", "tight-not-narrow",
                           "hetero-5hop", "bursty-tight", "load-step"}) {
    const ScenarioSpec* spec = reg.find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_NO_THROW(spec->validate()) << name;
    EXPECT_FALSE(spec->description.empty()) << name;
  }
}

TEST(Registry, EveryBuiltinPresetInstantiatesAndWarmsUp) {
  for (const ScenarioSpec& spec : Registry::builtin().entries()) {
    ScenarioSpec quick = spec;
    quick.warmup = Duration::milliseconds(200);
    ScenarioInstance inst{std::move(quick)};
    inst.start();
    EXPECT_GT(inst.simulator().events_processed(), 0u) << spec.name;
    EXPECT_GT(inst.configured_avail_bw().mbits_per_sec(), 0.0) << spec.name;
  }
}

TEST(Registry, TightNotNarrowSeparatesTheTwoLinks) {
  ScenarioSpec spec = Registry::builtin().at("tight-not-narrow");
  const std::size_t tight = spec.tight_hop();
  ScenarioInstance inst{std::move(spec)};
  EXPECT_NE(inst.path().narrow_index(), tight);
  EXPECT_EQ(inst.path().capacity(), Rate::mbps(8));     // narrow: first hop
  EXPECT_EQ(inst.tight_link().capacity(), Rate::mbps(20));  // tight: middle
}

TEST(Registry, LoadStepActuallyStepsTheTightLinkLoad) {
  ScenarioSpec spec = Registry::builtin().at("load-step");
  ASSERT_TRUE(spec.nonstationary());
  spec.warmup = Duration::zero();
  ScenarioInstance inst{std::move(spec)};
  inst.start();
  sim::Link& tight = inst.tight_link();
  // Pre-step window (the step is at t = 15 s): ~30% of 10 Mb/s.
  inst.simulator().run_for(Duration::seconds(14));
  const double before =
      tight.bytes_forwarded().bits() / 14.0 / 1e6;
  // Post-step window: ~75%.
  const DataSize mark = tight.bytes_forwarded();
  inst.simulator().run_for(Duration::seconds(10));
  const double after = (tight.bytes_forwarded() - mark).bits() / 10.0 / 1e6;
  EXPECT_NEAR(before, 3.0, 0.5);
  EXPECT_NEAR(after, 7.5, 0.9);
}

TEST(Registry, AddRejectsDuplicateNames) {
  Registry reg = Registry::builtin();  // a mutable copy
  ScenarioSpec dup = reg.at("paper-path");
  try {
    reg.add(std::move(dup));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string{e.what()}.find("already has a preset named 'paper-path'"),
              std::string::npos);
  }
}

TEST(Registry, AtNamesTheKnownPresetsOnMiss) {
  EXPECT_EQ(Registry::builtin().find("no-such"), nullptr);
  try {
    (void)Registry::builtin().at("no-such");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown preset 'no-such'"), std::string::npos);
    EXPECT_NE(msg.find("paper-path"), std::string::npos);
  }
}

TEST(Registry, AddTextParsesAndRegisters) {
  Registry reg;
  reg.add_text(R"(
    name = tiny
    hops = 1
    hop.0.traffic.model = none
  )");
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.at("tiny").hops.size(), 1u);
}

}  // namespace
}  // namespace pathload::scenario
