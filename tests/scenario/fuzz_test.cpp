// Tests for the scenario fuzzer (scenario/fuzz.hpp): the generator always
// produces valid specs that round-trip bit-exactly, case seeds are
// decorrelated, the calm predicate gates the truth-comparing invariants
// correctly, and a small batch at the CI base seed holds every invariant.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "baselines/estimators.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/spec.hpp"

namespace pathload::scenario {
namespace {

const core::EstimatorRegistry& reg() { return baselines::builtin_estimators(); }

ScenarioSpec calm_base() {
  ScenarioSpec spec;
  spec.name = "calm";
  spec.seed = 7;
  HopDecl hop;
  hop.capacity = Rate::mbps(10);
  hop.delay = Duration::milliseconds(5);
  hop.traffic.model = TrafficModel::kPoisson;
  hop.traffic.utilization = 0.3;
  spec.hops.push_back(hop);
  spec.validate();
  return spec;
}

TEST(GenerateScenario, ValidRoundTrippingAndSeedCarrying) {
  const FuzzOptions opt;
  for (int i = 0; i < 150; ++i) {
    const std::uint64_t seed = fuzz_case_seed(42, i);
    const ScenarioSpec spec = generate_scenario(seed, opt);
    EXPECT_EQ(spec.seed, seed);  // the spec file alone reproduces the case
    EXPECT_NO_THROW(spec.validate());
    const std::string text = spec.to_text();
    const ScenarioSpec parsed = ScenarioSpec::parse(text);
    EXPECT_EQ(parsed.to_text(), text) << "seed " << seed;
  }
}

TEST(GenerateScenario, DeterministicPerSeedAndSensitiveToSeed) {
  const FuzzOptions opt;
  EXPECT_EQ(generate_scenario(123, opt).to_text(),
            generate_scenario(123, opt).to_text());
  // Not every pair of seeds differs, but over a handful at least one must.
  std::set<std::string> texts;
  for (std::uint64_t s = 0; s < 8; ++s) {
    texts.insert(generate_scenario(fuzz_case_seed(9, static_cast<int>(s)), opt).to_text());
  }
  EXPECT_GT(texts.size(), 1u);
}

TEST(GenerateScenario, OptionsGateFlowsImpairmentsAndPathLength) {
  FuzzOptions opt;
  opt.allow_flows = false;
  opt.allow_impairments = false;
  opt.max_hops = 1;
  for (int i = 0; i < 80; ++i) {
    const ScenarioSpec spec = generate_scenario(fuzz_case_seed(5, i), opt);
    EXPECT_FALSE(spec.has_flows());
    EXPECT_FALSE(spec.impaired());
    EXPECT_EQ(spec.hops.size(), 1u);
  }
}

TEST(GenerateScenario, EngineV2FlowGrammarDrawsLastAndRoundTrips) {
  FuzzOptions v2on;
  v2on.allow_engine_v2 = true;
  FuzzOptions v2off;
  int v2_flows = 0;
  int packet_modes = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t seed = fuzz_case_seed(31, i);
    const ScenarioSpec spec = generate_scenario(seed, v2on);
    // The v2 extension draws strictly after the historical sequence, so a
    // v1-drawn spec from the flag-on generator is byte-identical to the
    // flag-off generator's output for the same seed.
    if (spec.engine == EngineVersion::kV1) {
      EXPECT_EQ(spec.to_text(), generate_scenario(seed, v2off).to_text())
          << "seed " << seed;
    }
    for (const FlowSpec& f : spec.flows) {
      if (f.mode == FlowSpec::Mode::kPacket) {
        EXPECT_EQ(spec.engine, EngineVersion::kV2) << "seed " << seed;
        ++packet_modes;
      }
    }
    if (spec.engine == EngineVersion::kV2 && spec.has_flows()) ++v2_flows;
    const std::string text = spec.to_text();
    EXPECT_EQ(ScenarioSpec::parse(text).to_text(), text) << "seed " << seed;
  }
  // The extended grammar actually fires over a 200-case corpus.
  EXPECT_GT(v2_flows, 0);
  EXPECT_GT(packet_modes, 0);
}

TEST(FuzzCaseSeed, DecorrelatedAndPure) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(fuzz_case_seed(90210, i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(fuzz_case_seed(1, 3), fuzz_case_seed(1, 3));
  EXPECT_NE(fuzz_case_seed(1, 3), fuzz_case_seed(2, 3));
}

TEST(SpecIsCalm, GatesOnFlowsImpairmentsModelsAndLoad) {
  EXPECT_TRUE(spec_is_calm(calm_base()));
  {
    ScenarioSpec s = calm_base();
    FlowSpec flow;
    flow.first_hop = 0;
    flow.last_hop = 0;
    s.flows.push_back(flow);
    EXPECT_FALSE(spec_is_calm(s));
  }
  {
    ScenarioSpec s = calm_base();
    ImpairSpec imp;
    imp.hop = 0;
    imp.loss = 0.01;
    s.impairments.push_back(imp);
    EXPECT_FALSE(spec_is_calm(s));
  }
  {
    ScenarioSpec s = calm_base();
    s.hops[0].traffic.model = TrafficModel::kRamp;
    s.hops[0].traffic.end_utilization = 0.5;
    s.hops[0].traffic.ramp_end_s = 2.0;
    EXPECT_FALSE(spec_is_calm(s));  // nonstationary
  }
  {
    ScenarioSpec s = calm_base();
    s.hops[0].traffic.model = TrafficModel::kOnOff;
    s.hops[0].traffic.peak_utilization = 0.5;
    EXPECT_FALSE(spec_is_calm(s));  // bursty short-window truth
  }
  {
    ScenarioSpec s = calm_base();
    s.hops[0].traffic.model = TrafficModel::kConstant;
    EXPECT_FALSE(spec_is_calm(s));  // CBR breaks the multiplexing assumption
  }
  {
    ScenarioSpec s = calm_base();
    s.hops[0].traffic.utilization = 0.7;
    EXPECT_FALSE(spec_is_calm(s));  // too loaded for a steady bracket
  }
}

TEST(DefaultFuzzEstimators, PathloadPlusRotatingRegistryTools) {
  std::set<std::string> covered;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const std::vector<std::string> names = default_fuzz_estimators(reg(), seed);
    ASSERT_GE(names.size(), 2u);
    ASSERT_LE(names.size(), 3u);
    EXPECT_EQ(names[0], "pathload");
    for (const std::string& n : names) {
      EXPECT_NE(reg().find(n), nullptr) << n;
      covered.insert(n);
    }
  }
  // The rotation reaches the whole catalogue over a modest seed range.
  EXPECT_EQ(covered.size(), reg().size());
}

TEST(FuzzOne, SmallBatchAtTheCIBaseSeedHoldsEveryInvariant) {
  const FuzzOptions opt;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t seed = fuzz_case_seed(90210, i);
    const FuzzResult r =
        fuzz_one(reg(), seed, opt, default_fuzz_estimators(reg(), seed));
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": "
                        << (r.violations.empty()
                                ? ""
                                : r.violations[0].invariant + ": " +
                                      r.violations[0].detail);
    EXPECT_EQ(r.seed, seed);
    EXPECT_FALSE(r.spec_text.empty());
  }
}

}  // namespace
}  // namespace pathload::scenario
