// The PR 5 estimators through the comparison harness: spruce / igi /
// pathchirp x {paper-path, bursty-tight, tcp-bg-greedy} x 3 loads must be
// deterministic and thread-count invariant, and on a quiet paper-path the
// gap-model point estimates must land inside the ground-truth avail-bw
// bracket the utilization monitor (the MRTG stand-in) measured while the
// tools probed.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/estimators.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/monitor.hpp"

namespace pathload::scenario {
namespace {

const core::EstimatorRegistry& reg() { return baselines::builtin_estimators(); }

ScenarioSpec quick(const char* preset) {
  ScenarioSpec spec = Registry::builtin().at(preset);
  spec.warmup = Duration::milliseconds(500);
  return spec;
}

/// The three PR 5 columns. All three scenarios share a 10 Mb/s narrow
/// link, so one capacity hint serves the whole matrix (what
/// scenario_runner --compare derives per scenario).
std::vector<MatrixEstimator> new_estimators() {
  return {
      MatrixEstimator::from_registry(reg(), "spruce",
                                     "capacity_mbps = 10, pairs = 40"),
      MatrixEstimator::from_registry(reg(), "igi", "capacity_mbps = 10"),
      MatrixEstimator::from_registry(reg(), "pathchirp", "chirps = 4"),
  };
}

TEST(NewEstimatorMatrix, ThreeScenariosThreeLoadsIsThreadCountInvariant) {
  const std::vector<ScenarioSpec> scenarios = {
      quick("paper-path"), quick("bursty-tight"), quick("tcp-bg-greedy")};
  const std::vector<double> loads = {0.3, 0.6, 0.75};
  auto run_with = [&](int threads) {
    SweepRunner runner{threads};
    return run_matrix(new_estimators(), scenarios, loads, /*runs=*/1,
                      /*seed0=*/5005, runner);
  };
  const auto a = run_with(1);
  const auto b = run_with(4);
  ASSERT_EQ(a.size(), 27u);  // 3 estimators x 3 scenarios x 3 loads
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].reports.size(), b[c].reports.size()) << c;
    for (std::size_t r = 0; r < a[c].reports.size(); ++r) {
      EXPECT_EQ(a[c].reports[r].low.bits_per_sec(),
                b[c].reports[r].low.bits_per_sec()) << c;
      EXPECT_EQ(a[c].reports[r].high.bits_per_sec(),
                b[c].reports[r].high.bits_per_sec()) << c;
      EXPECT_EQ(a[c].reports[r].elapsed.nanos(), b[c].reports[r].elapsed.nanos()) << c;
      EXPECT_EQ(a[c].reports[r].bytes_sent.byte_count(),
                b[c].reports[r].bytes_sent.byte_count()) << c;
    }
  }
  // The grid itself: estimator-major, fig05 seed derivation per load.
  EXPECT_EQ(a[0].estimator, "spruce");
  EXPECT_EQ(a[0].scenario, "paper-path");
  EXPECT_EQ(a[0].seed0, 5305u);  // 5005 + 0.3 * 1000
  EXPECT_EQ(a[26].estimator, "pathchirp");
  EXPECT_EQ(a[26].scenario, "tcp-bg-greedy");
  EXPECT_EQ(a[26].seed0, 5755u);
}

TEST(NewEstimatorMatrix, EveryCellProducesAnEstimateOnTheOpenLoopScenarios) {
  // On the open-loop scenarios (no responsive flows) every run of every
  // new estimator must produce a valid, in-range estimate — no quiet
  // degradation into 0-valid cells. (tcp-bg-greedy is excluded: its
  // avail-bw is emergent and estimators may legitimately saturate.)
  const std::vector<ScenarioSpec> scenarios = {quick("paper-path"),
                                               quick("bursty-tight")};
  SweepRunner runner{2};
  const auto cells =
      run_matrix(new_estimators(), scenarios, {0.3, 0.6}, 2, 77, runner);
  for (const MatrixCell& c : cells) {
    EXPECT_EQ(c.valid_runs(), 2) << c.estimator << "@" << c.scenario;
    EXPECT_GT(c.mean_center(), Rate::zero()) << c.estimator;
    EXPECT_LE(c.mean_low(), c.mean_high()) << c.estimator;
    EXPECT_LE(c.mean_high(), Rate::mbps(10.5)) << c.estimator;  // <= narrow C
  }
}

TEST(NewEstimatorMatrix, GapModelCentersLandInTheMonitorBracketWhenQuiet) {
  // The satellite sanity check: on a quiet paper-path (25% load) let the
  // tight link's utilization monitor (the MRTG stand-in) bracket the
  // ground-truth avail-bw over unperturbed windows — sampled *before* the
  // tool probes, so the probes' own load does not pollute the truth they
  // are judged against — then require each gap-model tool's point
  // estimate (range center) inside that bracket widened by pathload's
  // 1 Mb/s resolution (the same slack the covers_A column grants points).
  for (const char* name : {"spruce", "igi"}) {
    ScenarioSpec spec = quick("paper-path").with_load(0.25);
    spec.seed = 424;
    ScenarioInstance inst{std::move(spec)};
    inst.start();
    sim::UtilizationMonitor monitor{inst.simulator(), inst.tight_link(),
                                    Duration::seconds(1)};
    monitor.start();
    inst.simulator().run_for(Duration::seconds(10));
    monitor.stop();
    SimProbeChannel channel{inst.simulator(), inst.path()};
    const auto est = reg().make(name, "capacity_mbps = 10");
    Rng rng{424};
    const auto r = est->run(channel, rng);
    ASSERT_TRUE(r.valid) << name;
    ASSERT_FALSE(monitor.readings().empty()) << name;

    Rate lo = monitor.readings().front().avail_bw;
    Rate hi = lo;
    for (const auto& w : monitor.readings()) {
      lo = std::min(lo, w.avail_bw);
      hi = std::max(hi, w.avail_bw);
    }
    const Rate slack = Rate::mbps(1.0);
    const Rate center = r.center();
    EXPECT_GE(center, lo - slack) << name << ": bracket [" << lo.mbits_per_sec()
                                  << ", " << hi.mbits_per_sec() << "]";
    EXPECT_LE(center, hi + slack) << name << ": bracket [" << lo.mbits_per_sec()
                                  << ", " << hi.mbits_per_sec() << "]";
  }
}

}  // namespace
}  // namespace pathload::scenario
