// Determinism and golden anchors for flow-bearing scenarios: responsive
// TCP cross flows must not break the repo's headline guarantee (fixed seed
// => bit-identical runs, independent of thread count), and the presets'
// physics must hold (a greedy flow collapses the measured avail-bw).

#include <gtest/gtest.h>

#include "baselines/estimators.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep_runner.hpp"

namespace pathload::scenario {
namespace {

/// tcp-bg-greedy with a short warmup so the suite stays fast; the anchor
/// values below were captured from this exact configuration.
ScenarioSpec quick_greedy() {
  ScenarioSpec spec = Registry::builtin().at("tcp-bg-greedy");
  spec.warmup = Duration::milliseconds(500);
  return spec;
}

// Captured from run_scenario_once(quick_greedy(), {}, 4242) at PR 4.
constexpr double kAnchorLowBps = 0.0;
constexpr double kAnchorHighBps = 731700.17853484361;
constexpr int kAnchorFleets = 4;
constexpr std::int64_t kAnchorElapsedNs = 59782480456;

TEST(FlowScenarios, GoldenAnchorPathloadOverGreedyFlow) {
  // Golden determinism anchor (captured at PR 4): any diff here means the
  // event order or RNG stream of flow-bearing runs drifted — a correctness
  // bug unless the break is deliberate and documented.
  const core::PathloadConfig tool;
  const auto res = run_scenario_once(quick_greedy(), tool, 4242);
  EXPECT_EQ(res.range.low.bits_per_sec(), kAnchorLowBps);
  EXPECT_EQ(res.range.high.bits_per_sec(), kAnchorHighBps);
  EXPECT_EQ(res.fleets, kAnchorFleets);
  EXPECT_EQ(res.elapsed.nanos(), kAnchorElapsedNs);
}

TEST(FlowScenarios, MatrixOverResponsiveTrafficIsThreadCountInvariant) {
  // The acceptance-criterion check in-process: the same estimator matrix
  // over tcp-bg-greedy, fanned out on 1 vs 4 worker threads, must agree to
  // the last bit (what `scenario_runner --run tcp-bg-greedy --compare`
  // diffs across PATHLOAD_THREADS).
  const auto& ereg = baselines::builtin_estimators();
  const std::vector<MatrixEstimator> estimators = {
      MatrixEstimator::from_registry(ereg, "pathload"),
      MatrixEstimator::from_registry(ereg, "cprobe"),
  };
  const ScenarioSpec spec = quick_greedy();
  auto run_with = [&](int threads) {
    SweepRunner runner{threads};
    return run_matrix(estimators, {spec}, {}, /*runs=*/2, /*seed0=*/77, runner);
  };
  const auto a = run_with(1);
  const auto b = run_with(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].reports.size(), b[c].reports.size());
    for (std::size_t r = 0; r < a[c].reports.size(); ++r) {
      EXPECT_EQ(a[c].reports[r].low.bits_per_sec(),
                b[c].reports[r].low.bits_per_sec());
      EXPECT_EQ(a[c].reports[r].high.bits_per_sec(),
                b[c].reports[r].high.bits_per_sec());
      EXPECT_EQ(a[c].reports[r].elapsed.nanos(), b[c].reports[r].elapsed.nanos());
      EXPECT_EQ(a[c].reports[r].packets_sent, b[c].reports[r].packets_sent);
    }
  }
}

TEST(FlowScenarios, GreedyFlowCollapsesTheMeasuredAvailBw) {
  // The physics the preset exists for: with an elastic end-to-end flow
  // soaking up the slack, pathload's range must land far below the
  // open-loop configured A = 7 Mb/s.
  const core::PathloadConfig tool;
  const auto res = run_scenario_once(quick_greedy(), tool, 9);
  EXPECT_LT(res.range.high.mbits_per_sec(), 3.0);
}

TEST(FlowScenarios, FlowBearingPresetsValidateAndInstantiate) {
  for (const char* name :
       {"tcp-bg-greedy", "tcp-bg-rwnd-capped", "tcp-vs-probe-duel", "btc-path"}) {
    ScenarioSpec spec = Registry::builtin().at(name);
    ASSERT_TRUE(spec.has_flows()) << name;
    spec.warmup = Duration::milliseconds(200);
    ScenarioInstance inst{std::move(spec)};
    inst.start();
    EXPECT_GT(inst.flows().size(), 0u) << name;
    EXPECT_GT(inst.simulator().events_processed(), 0u) << name;
  }
}

TEST(FlowScenarios, BtcPathCarriesItsWindowLimitedMix) {
  const ScenarioSpec& spec = Registry::builtin().at("btc-path");
  ASSERT_EQ(spec.flows.size(), 1u);
  EXPECT_EQ(spec.flows[0].count, 5);
  ASSERT_TRUE(spec.flows[0].rwnd.has_value());
  EXPECT_DOUBLE_EQ(*spec.flows[0].rwnd, 12.0);
  EXPECT_DOUBLE_EQ(spec.flows[0].reverse_ms, 100.0);
  // The five flows together take ~3.5 Mb/s of the 8.2; with the UDP on
  // top, roughly half the bottleneck stays available.
  ScenarioSpec quick = spec;
  ScenarioInstance inst{std::move(quick)};
  inst.start();  // 5 s settle
  const DataSize mark = inst.flow_bytes_acked();
  inst.simulator().run_for(Duration::seconds(5));
  const double tcp_mbps =
      (inst.flow_bytes_acked() - mark).bits() / 5.0 / 1e6;
  EXPECT_GT(tcp_mbps, 2.0);
  EXPECT_LT(tcp_mbps, 5.0);
}

}  // namespace
}  // namespace pathload::scenario
