// Tests for the `impair` spec directive: parsing, validation, round-trip,
// seed derivation, and that instantiation actually installs the
// impairments on the right link (and only there).

#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

namespace pathload::scenario {
namespace {

template <typename Fn>
void expect_spec_error(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected SpecError containing '" << needle << "'";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

constexpr const char* kImpairedSpec = R"(
  name = lossy
  hops = 2
  hop.0.capacity_mbps = 40
  hop.0.delay_ms = 5
  hop.1.capacity_mbps = 10
  hop.1.delay_ms = 10
  hop.1.traffic.model = poisson
  hop.1.traffic.utilization = 0.5
  impair hop=1 loss=0.02 dup=0.01 reorder_ms=2 seed=7
)";

TEST(ImpairSpec, ParsesAllKeys) {
  const ScenarioSpec spec = ScenarioSpec::parse(kImpairedSpec);
  ASSERT_EQ(spec.impairments.size(), 1u);
  const ImpairSpec& imp = spec.impairments[0];
  EXPECT_EQ(imp.hop, 1u);
  EXPECT_DOUBLE_EQ(imp.loss, 0.02);
  EXPECT_DOUBLE_EQ(imp.dup, 0.01);
  EXPECT_DOUBLE_EQ(imp.reorder_ms, 2.0);
  ASSERT_TRUE(imp.seed.has_value());
  EXPECT_EQ(*imp.seed, 7u);
  EXPECT_TRUE(spec.impaired());
}

TEST(ImpairSpec, RoundTripsThroughText) {
  const ScenarioSpec spec = ScenarioSpec::parse(kImpairedSpec);
  const ScenarioSpec again = ScenarioSpec::parse(spec.to_text());
  ASSERT_EQ(again.impairments.size(), 1u);
  EXPECT_EQ(again.impairments[0].hop, spec.impairments[0].hop);
  EXPECT_DOUBLE_EQ(again.impairments[0].loss, spec.impairments[0].loss);
  EXPECT_DOUBLE_EQ(again.impairments[0].dup, spec.impairments[0].dup);
  EXPECT_DOUBLE_EQ(again.impairments[0].reorder_ms, spec.impairments[0].reorder_ms);
  EXPECT_EQ(again.impairments[0].seed, spec.impairments[0].seed);
}

TEST(ImpairSpec, RejectsBadDirectives) {
  auto with_line = [](const std::string& line) {
    std::string text{kImpairedSpec};
    return text + "\n  " + line + "\n";
  };
  // Two impair lines for the same hop.
  expect_spec_error(
      [&] { ScenarioSpec::parse(with_line("impair hop=1 loss=0.1")); },
      "already has an impair line");
  // Out-of-range knobs.
  expect_spec_error(
      [&] { ScenarioSpec::parse(with_line("impair hop=0 loss=1.5")); },
      "must be in [0, 1)");
  expect_spec_error(
      [&] { ScenarioSpec::parse(with_line("impair hop=0 dup=-0.1")); },
      "must be in [0, 1)");
  expect_spec_error(
      [&] { ScenarioSpec::parse(with_line("impair hop=0 reorder_ms=-2")); },
      "must not be negative");
  // A hop the path does not have.
  expect_spec_error(
      [&] { ScenarioSpec::parse(with_line("impair hop=5 loss=0.1")); },
      "hop");
  // Directive that enables nothing.
  expect_spec_error([&] { ScenarioSpec::parse(with_line("impair hop=0")); },
                    "enables nothing");
  // Unknown key, and hop= missing.
  expect_spec_error(
      [&] { ScenarioSpec::parse(with_line("impair hop=0 jitter=3")); },
      "unknown key");
  expect_spec_error([&] { ScenarioSpec::parse(with_line("impair loss=0.1")); },
                    "hop= is required");
}

TEST(ImpairSpec, DerivedSeedIsStableAndPerHop) {
  const auto s0 = derive_impair_seed(1, 0);
  EXPECT_EQ(derive_impair_seed(1, 0), s0);  // deterministic
  EXPECT_NE(derive_impair_seed(1, 1), s0);  // distinct per hop
  EXPECT_NE(derive_impair_seed(2, 0), s0);  // distinct per scenario seed
}

TEST(ImpairSpec, InstantiationInstallsImpairmentsOnTheNamedHop) {
  ScenarioInstance inst{ScenarioSpec::parse(kImpairedSpec)};
  EXPECT_FALSE(inst.path().link(0).impaired());
  ASSERT_TRUE(inst.path().link(1).impaired());
  const sim::LinkImpairments& li = inst.path().link(1).impairments();
  EXPECT_DOUBLE_EQ(li.loss, 0.02);
  EXPECT_DOUBLE_EQ(li.dup, 0.01);
  EXPECT_EQ(li.reorder, Duration::milliseconds(2));
  EXPECT_EQ(li.seed, 7u);
}

TEST(ImpairSpec, BuiltinImpairedPresetsValidateAndStayOptIn) {
  const Registry& reg = Registry::builtin();
  for (const char* name : {"lossy-tight", "reorder-jitter", "flaky-path"}) {
    const ScenarioSpec spec = reg.at(name);
    EXPECT_TRUE(spec.impaired()) << name;
    spec.validate();
  }
  // And the pristine presets really are pristine.
  EXPECT_FALSE(reg.at("paper-path").impaired());
}

}  // namespace
}  // namespace pathload::scenario
