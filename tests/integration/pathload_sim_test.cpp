#include <gtest/gtest.h>

#include "core/session.hpp"
#include "scenario/experiment.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"

namespace pathload::scenario {
namespace {

PaperPathConfig paper_path(double utilization, sim::Interarrival model) {
  PaperPathConfig cfg;
  cfg.hops = 3;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = utilization;
  cfg.beta = 2.0;
  cfg.nontight_utilization = 0.6;
  cfg.model = model;
  cfg.warmup = Duration::seconds(1);
  return cfg;
}

core::PathloadConfig fast_tool() {
  core::PathloadConfig tool;
  tool.omega = Rate::mbps(1);
  tool.chi = Rate::mbps(1.5);
  return tool;
}

TEST(PathloadOverSim, BracketsAvailBwOnPoissonPath) {
  const auto result =
      run_pathload_once(paper_path(0.6, sim::Interarrival::kExponential),
                        fast_tool(), 7);
  EXPECT_TRUE(result.converged);
  // A = 4 Mb/s; allow the tool's resolution (omega) of slack per side.
  EXPECT_LE(result.range.low, Rate::mbps(5.0));
  EXPECT_GE(result.range.high, Rate::mbps(3.0));
  EXPECT_GT(result.fleets, 0);
  EXPECT_GT(result.streams_sent, 0);
}

TEST(PathloadOverSim, BracketsAvailBwOnParetoPath) {
  const auto result = run_pathload_once(paper_path(0.6, sim::Interarrival::kPareto),
                                        fast_tool(), 11);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.range.low, Rate::mbps(5.5));
  EXPECT_GE(result.range.high, Rate::mbps(2.5));
}

TEST(PathloadOverSim, LightLoadHighAvailBw) {
  const auto result =
      run_pathload_once(paper_path(0.2, sim::Interarrival::kExponential),
                        fast_tool(), 23);
  // A = 8 Mb/s.
  EXPECT_TRUE(result.range.contains(Rate::mbps(8)) ||
              result.range.center().mbits_per_sec() > 6.5);
}

TEST(PathloadOverSim, RepeatedRunsMostlyCoverTruth) {
  const auto runs = run_pathload_repeated(
      paper_path(0.6, sim::Interarrival::kExponential), fast_tool(), 10, 100);
  ASSERT_EQ(runs.results.size(), 10u);
  // The paper's Fig. 5 claim: the (averaged) range includes the average
  // avail-bw. Individual runs can miss due to short-term variability, so
  // require a clear majority plus a correct mean range.
  EXPECT_GE(runs.coverage(Rate::mbps(4)), 0.6);
  EXPECT_LE(runs.mean_low(), Rate::mbps(4.6));
  EXPECT_GE(runs.mean_high(), Rate::mbps(3.4));
}

TEST(PathloadOverSim, TracksUtilizationChanges) {
  // Higher utilization -> lower reported center (monotone response).
  const auto light = run_pathload_repeated(
      paper_path(0.25, sim::Interarrival::kExponential), fast_tool(), 4, 7);
  const auto heavy = run_pathload_repeated(
      paper_path(0.75, sim::Interarrival::kExponential), fast_tool(), 4, 7);
  const double light_center =
      (light.mean_low() + light.mean_high()).mbits_per_sec() / 2.0;
  const double heavy_center =
      (heavy.mean_low() + heavy.mean_high()).mbits_per_sec() / 2.0;
  EXPECT_GT(light_center, heavy_center + 2.0);
}

TEST(PathloadOverSim, SessionIsReentrant) {
  PaperPathConfig cfg = paper_path(0.6, sim::Interarrival::kExponential);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  core::PathloadSession session{fast_tool()};
  const auto r1 = session.run(ch);
  const auto r2 = session.run(ch);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  // Same path, so the two measurements must roughly agree.
  EXPECT_NEAR(r1.range.center().mbits_per_sec(), r2.range.center().mbits_per_sec(),
              2.5);
}

TEST(PathloadOverSim, ExplicitInitialRmaxSkipsDispersionProbe) {
  PaperPathConfig cfg = paper_path(0.6, sim::Interarrival::kExponential);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  auto tool = fast_tool();
  tool.initial_rmax = Rate::mbps(12);
  core::PathloadSession session{tool};
  const auto result = session.run(ch);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.range.high, Rate::mbps(12));
  // First fleet probes at (0 + 12)/2 = 6 Mb/s.
  ASSERT_FALSE(result.trace.empty());
  EXPECT_NEAR(result.trace.front().rate.mbits_per_sec(), 6.0, 0.1);
}

TEST(PathloadOverSim, ResultAccountingConsistent) {
  const auto result = run_pathload_once(
      paper_path(0.6, sim::Interarrival::kExponential), fast_tool(), 3);
  EXPECT_EQ(result.fleets, static_cast<int>(result.trace.size()));
  std::int64_t streams_in_trace = 0;
  for (const auto& f : result.trace) {
    streams_in_trace += static_cast<std::int64_t>(f.streams.size());
  }
  // +1: the initial dispersion probe is charged to the footprint but has
  // no fleet trace entry.
  EXPECT_EQ(result.streams_sent, streams_in_trace + 1);
  EXPECT_GT(result.bytes_sent.byte_count(), 0);
  EXPECT_GT(result.elapsed, Duration::zero());
}

TEST(PathloadOverSim, MeasurementLatencyIsReasonable) {
  // Section IV: "for a path with A <= 100 Mb/s and RTT <= 100 ms the tool
  // needs less than 15 s" (default resolutions). Our virtual path has
  // RTT ~100 ms.
  const auto result = run_pathload_once(
      paper_path(0.6, sim::Interarrival::kExponential), fast_tool(), 31);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.elapsed, Duration::seconds(60));
}

TEST(PathloadOverSim, SendAnomaliesGetRetriedNotCounted) {
  PaperPathConfig cfg = paper_path(0.6, sim::Interarrival::kExponential);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  // Every stream suffers periodic 5 ms stalls -> screened invalid; the
  // session burns its retry budget and judges on what remains.
  ch.set_send_gap_injector([](std::uint32_t seq) {
    return (seq % 10 == 9) ? Duration::milliseconds(5) : Duration::zero();
  });
  auto tool = fast_tool();
  tool.initial_rmax = Rate::mbps(12);
  tool.max_fleets = 3;
  core::PathloadSession session{tool};
  const auto result = session.run(ch);
  for (const auto& fleet : result.trace) {
    for (const auto& s : fleet.streams) EXPECT_FALSE(s.valid);
    EXPECT_EQ(fleet.verdict, core::FleetVerdict::kGrey);
  }
}

}  // namespace
}  // namespace pathload::scenario
