#include <gtest/gtest.h>

#include "core/session.hpp"
#include "scenario/experiment.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"
#include "util/stats.hpp"

namespace pathload::scenario {
namespace {

// --- failure injection: undersized buffers -> probe losses ---------------

TEST(LossHandling, UnderbufferedPathStillYieldsEstimate) {
  PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;
  cfg.buffer_drain = Duration::milliseconds(8);  // ~10 KB buffer
  cfg.model = sim::Interarrival::kPareto;
  cfg.warmup = Duration::seconds(1);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadConfig tool;
  core::PathloadSession session{tool};
  const auto result = session.run(channel);
  // With a tiny buffer, high-rate fleets lose packets and abort, which is
  // informationally equivalent to "R > A": the estimate must stay sane.
  EXPECT_GT(result.fleets, 0);
  EXPECT_LE(result.range.high, Rate::mbps(10));
  EXPECT_LE(result.range.low, result.range.high);
}

TEST(LossHandling, AbortedFleetsAppearInTrace) {
  PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = Rate::mbps(5);
  cfg.tight_utilization = 0.7;
  cfg.buffer_drain = Duration::milliseconds(4);
  cfg.model = sim::Interarrival::kPareto;
  cfg.warmup = Duration::seconds(1);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadConfig tool;
  tool.initial_rmax = Rate::mbps(6);
  core::PathloadSession session{tool};
  const auto result = session.run(channel);
  int aborted = 0;
  for (const auto& fleet : result.trace) {
    if (fleet.verdict == core::FleetVerdict::kAbortedLoss) ++aborted;
  }
  EXPECT_GT(aborted, 0) << "expected loss-aborted fleets on a 4 ms buffer";
}

// --- Section VI dynamics as properties, not just bench output ------------

TEST(Dynamics, RelativeVariationGrowsWithUtilization) {
  auto median_rho = [](double util) {
    std::vector<double> rhos;
    for (int i = 0; i < 8; ++i) {
      PaperPathConfig cfg;
      cfg.hops = 1;
      cfg.tight_capacity = Rate::mbps(12.4);
      cfg.tight_utilization = util;
      cfg.model = sim::Interarrival::kPareto;
      cfg.warmup = Duration::seconds(1);
      const auto result =
          run_pathload_once(cfg, core::PathloadConfig{}, 7000 + i);
      rhos.push_back(result.range.relative_variation());
    }
    return median(rhos);
  };
  EXPECT_LT(median_rho(0.25), median_rho(0.80));
}

TEST(Dynamics, RelativeVariationShrinksWithMultiplexing) {
  auto median_rho = [](int sources) {
    std::vector<double> rhos;
    for (int i = 0; i < 8; ++i) {
      PaperPathConfig cfg;
      cfg.hops = 1;
      cfg.tight_capacity = Rate::mbps(12.4);
      cfg.tight_utilization = 0.65;
      cfg.sources_per_link = sources;
      cfg.model = sim::Interarrival::kPareto;
      cfg.warmup = Duration::seconds(1);
      const auto result =
          run_pathload_once(cfg, core::PathloadConfig{}, 8000 + i);
      rhos.push_back(result.range.relative_variation());
    }
    return median(rhos);
  };
  EXPECT_LT(median_rho(60), median_rho(3));
}

TEST(Dynamics, LongerStreamsReduceMeasuredVariability) {
  auto median_rho = [](int k) {
    std::vector<double> rhos;
    for (int i = 0; i < 8; ++i) {
      PaperPathConfig cfg;
      cfg.hops = 1;
      cfg.tight_capacity = Rate::mbps(10);
      cfg.tight_utilization = 0.55;
      cfg.model = sim::Interarrival::kPareto;
      cfg.warmup = Duration::seconds(1);
      core::PathloadConfig tool;
      tool.packets_per_stream = k;
      const auto result = run_pathload_once(cfg, tool, 9000 + i);
      rhos.push_back(result.range.relative_variation());
    }
    return median(rhos);
  };
  EXPECT_LE(median_rho(800), median_rho(100));
}

// --- clock robustness across the full pipeline ----------------------------

TEST(ClockRobustness, SessionUnaffectedByHostClockOffsets) {
  auto run_with_offsets = [](Duration snd, Duration rcv) {
    PaperPathConfig cfg;
    cfg.hops = 3;
    cfg.tight_capacity = Rate::mbps(10);
    cfg.tight_utilization = 0.6;
    cfg.model = sim::Interarrival::kExponential;
    cfg.warmup = Duration::seconds(1);
    Testbed bed{cfg};
    bed.start();
    SimProbeChannel channel{bed.simulator(), bed.path()};
    channel.set_sender_clock_offset(snd);
    channel.set_receiver_clock_offset(rcv);
    core::PathloadConfig tool;
    tool.initial_rmax = Rate::mbps(12);
    core::PathloadSession session{tool};
    return session.run(channel);
  };
  const auto synced = run_with_offsets(Duration::zero(), Duration::zero());
  const auto skewed =
      run_with_offsets(Duration::seconds(-12345), Duration::seconds(98765));
  // Same seeds and traffic: identical measurements despite wild offsets.
  EXPECT_EQ(synced.range.low, skewed.range.low);
  EXPECT_EQ(synced.range.high, skewed.range.high);
  EXPECT_EQ(synced.fleets, skewed.fleets);
}

}  // namespace
}  // namespace pathload::scenario
