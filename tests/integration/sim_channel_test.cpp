#include <gtest/gtest.h>

#include <stdexcept>

#include "core/trend.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"

namespace pathload::scenario {
namespace {

PaperPathConfig quiet_path() {
  PaperPathConfig cfg;
  cfg.hops = 3;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;
  cfg.model = sim::Interarrival::kConstant;  // deterministic for these tests
  cfg.warmup = Duration::seconds(1);
  return cfg;
}

core::StreamSpec spec_at(Rate rate, int k = 100) {
  core::PathloadConfig tool;
  tool.packets_per_stream = k;
  return [&] {
    auto s = core::make_stream_spec(rate, tool);
    s.stream_id = 1;
    return s;
  }();
}

TEST(SimProbeChannel, DeliversAllPacketsOnQuietPath) {
  PaperPathConfig cfg = quiet_path();
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  const auto spec = spec_at(Rate::mbps(2));
  const auto outcome = ch.run_stream(spec);
  EXPECT_EQ(outcome.sent_count, 100);
  EXPECT_EQ(outcome.records.size(), 100u);
  // Sequence order preserved.
  for (std::uint32_t i = 0; i < outcome.records.size(); ++i) {
    EXPECT_EQ(outcome.records[i].seq, i);
  }
}

TEST(SimProbeChannel, OwdTrendIncreasingWhenRateAboveAvailBw) {
  Testbed bed{quiet_path()};  // A = 4 Mb/s
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  const auto outcome = ch.run_stream(spec_at(Rate::mbps(8)));
  const auto owds = core::relative_owds(outcome);
  EXPECT_EQ(core::classify_owds(owds, core::TrendConfig{}),
            core::StreamClass::kIncreasing);
}

TEST(SimProbeChannel, OwdTrendFlatWhenRateBelowAvailBw) {
  Testbed bed{quiet_path()};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  const auto outcome = ch.run_stream(spec_at(Rate::mbps(2)));
  const auto owds = core::relative_owds(outcome);
  EXPECT_EQ(core::classify_owds(owds, core::TrendConfig{}),
            core::StreamClass::kNonIncreasing);
}

TEST(SimProbeChannel, ClockOffsetsDoNotChangeRelativeOwds) {
  PaperPathConfig cfg = quiet_path();
  Testbed bed1{cfg};
  bed1.start();
  SimProbeChannel ch1{bed1.simulator(), bed1.path()};
  const auto owds_synced = core::relative_owds(ch1.run_stream(spec_at(Rate::mbps(6))));

  Testbed bed2{cfg};  // same seed -> identical cross traffic
  bed2.start();
  SimProbeChannel ch2{bed2.simulator(), bed2.path()};
  ch2.set_sender_clock_offset(Duration::seconds(-3600));
  ch2.set_receiver_clock_offset(Duration::seconds(7200));
  const auto owds_skewed = core::relative_owds(ch2.run_stream(spec_at(Rate::mbps(6))));

  ASSERT_EQ(owds_synced.size(), owds_skewed.size());
  for (std::size_t i = 0; i < owds_synced.size(); ++i) {
    EXPECT_NEAR(owds_synced[i], owds_skewed[i], 1e-12);
  }
}

TEST(SimProbeChannel, SendGapInjectionIsVisibleToScreening) {
  Testbed bed{quiet_path()};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  // Stall 5 ms before every 10th packet: 10 anomalies in 100 packets.
  ch.set_send_gap_injector([](std::uint32_t seq) {
    return (seq % 10 == 9) ? Duration::milliseconds(5) : Duration::zero();
  });
  const auto spec = spec_at(Rate::mbps(6));
  const auto outcome = ch.run_stream(spec);
  const auto screen = core::screen_send_gaps(outcome, spec, core::PathloadConfig{});
  EXPECT_FALSE(screen.valid);
  EXPECT_GE(screen.anomalies, 9);
}

TEST(SimProbeChannel, IdleAdvancesVirtualTime) {
  Testbed bed{quiet_path()};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  const TimePoint before = ch.now();
  ch.idle(Duration::milliseconds(250));
  EXPECT_EQ(ch.now() - before, Duration::milliseconds(250));
}

TEST(SimProbeChannel, RttCoversForwardAndReversePath) {
  Testbed bed{quiet_path()};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  // 50 ms forward propagation + 50 ms reverse, plus serialization.
  EXPECT_GE(ch.rtt(), Duration::milliseconds(100));
  EXPECT_LT(ch.rtt(), Duration::milliseconds(110));
}

TEST(SimProbeChannel, LossyPathReportsPartialStream) {
  PaperPathConfig cfg = quiet_path();
  cfg.tight_utilization = 0.8;
  cfg.buffer_drain = Duration::milliseconds(2);  // tiny buffer -> drops
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  const auto spec = spec_at(Rate::mbps(40));
  const auto outcome = ch.run_stream(spec);
  EXPECT_EQ(outcome.sent_count, 100);
  EXPECT_LT(outcome.records.size(), 100u);
  EXPECT_GT(core::loss_rate(outcome, spec), 0.0);
}

TEST(SimProbeChannel, StalePacketsFromPreviousStreamIgnored) {
  Testbed bed{quiet_path()};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  auto spec1 = spec_at(Rate::mbps(6));
  spec1.stream_id = 1;
  const auto o1 = ch.run_stream(spec1);
  auto spec2 = spec1;
  spec2.stream_id = 2;
  const auto o2 = ch.run_stream(spec2);
  EXPECT_EQ(o1.records.size(), 100u);
  EXPECT_EQ(o2.records.size(), 100u);
}

TEST(SimProbeChannel, RejectsOutOfRangePacketCounts) {
  // The FIFO ticket reservation casts packet_count to uint32; a negative
  // or absurd count must fail loudly instead of wrapping the ticket block.
  Testbed bed{quiet_path()};
  bed.start();
  SimProbeChannel ch{bed.simulator(), bed.path()};
  auto spec = spec_at(Rate::mbps(2));
  spec.packet_count = 0;
  EXPECT_THROW(ch.run_stream(spec), std::invalid_argument);
  spec.packet_count = -7;
  EXPECT_THROW(ch.run_stream(spec), std::invalid_argument);
  spec.packet_count = 1'000'001;
  EXPECT_THROW(ch.run_stream(spec), std::invalid_argument);
  // Boundary values stay usable.
  spec.packet_count = 1;
  EXPECT_NO_THROW(ch.run_stream(spec));
}

}  // namespace
}  // namespace pathload::scenario
