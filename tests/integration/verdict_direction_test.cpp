#include <gtest/gtest.h>

#include "core/session.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"

namespace pathload::scenario {
namespace {

// End-to-end sanity of the verdict *directions*: on a smooth (CBR) path,
// every fleet whose rate is clearly below the avail-bw must come back
// "below", and every fleet clearly above it "above" — no crossed wires
// anywhere in the sender/receiver/analysis pipeline.

TEST(VerdictDirection, FleetVerdictsConsistentWithRates) {
  PaperPathConfig cfg;
  cfg.hops = 3;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;  // A = 4
  cfg.beta = 2.0;
  cfg.model = sim::Interarrival::kConstant;
  cfg.warmup = Duration::seconds(1);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadConfig tool;
  core::PathloadSession session{tool};
  const auto result = session.run(channel);

  ASSERT_GT(result.fleets, 1);
  for (const auto& fleet : result.trace) {
    const double rate = fleet.rate.mbits_per_sec();
    if (rate < 4.0 * 0.7) {
      EXPECT_EQ(fleet.verdict, core::FleetVerdict::kBelow)
          << "fleet at " << rate << " Mb/s";
    }
    if (rate > 4.0 * 1.4) {
      EXPECT_EQ(fleet.verdict, core::FleetVerdict::kAbove)
          << "fleet at " << rate << " Mb/s";
    }
  }
  EXPECT_TRUE(result.range.contains(Rate::mbps(4.0)));
}

TEST(VerdictDirection, StreamVotesLeanWithTheRate) {
  // Individual stream votes must lean decisively in the fleet's direction
  // once the rate is clearly away from A. (Not unanimously: short streams
  // legitimately sample avail-bw excursions, and that residue is exactly
  // what the fleet fraction f and the grey region absorb. Note CBR cross
  // traffic is *worse* here, not better — phase-locked probe/cross periods
  // produce slow OWD beat oscillations — so this uses Poisson.)
  PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.5;  // A = 5
  cfg.model = sim::Interarrival::kExponential;
  cfg.warmup = Duration::seconds(1);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadConfig tool;

  auto run_streams_at = [&](double mbps, int count) {
    auto spec = core::make_stream_spec(Rate::mbps(mbps), tool);
    int type_i = 0;
    int type_n = 0;
    for (int s = 0; s < count; ++s) {
      spec.stream_id = static_cast<std::uint32_t>(1000 * mbps + s);
      const auto outcome = channel.run_stream(spec);
      const auto cls = core::classify_owds(core::relative_owds(outcome), tool.trend);
      if (cls == core::StreamClass::kIncreasing) ++type_i;
      if (cls == core::StreamClass::kNonIncreasing) ++type_n;
      channel.idle(spec.duration() * 9.0);
    }
    return std::make_pair(type_i, type_n);
  };

  const int streams = 24;
  const auto [i_low, n_low] = run_streams_at(2.5, streams);  // R = A/2
  EXPECT_GE(n_low, streams / 2);
  EXPECT_GT(n_low, 2 * i_low);
  const auto [i_high, n_high] = run_streams_at(8.0, streams);  // R = 1.6 A
  EXPECT_GE(i_high, (3 * streams) / 4);
  EXPECT_GT(i_high, 2 * n_high);
}

}  // namespace
}  // namespace pathload::scenario
