// Engine-v2 determinism anchors and the cross-engine equivalence suite.
//
// v2 has its own golden anchors (its RNG and floating-point sequences are
// deliberately different from v1's — that freedom is the point of the
// versioned contract), the same run-to-run / thread-count / shard-merge
// determinism guarantees as v1, and its accuracy must agree with v1 within
// the stated tolerance: per (preset, load) cell the two engines' mean
// estimate centers differ by at most max(25% of the configured avail-bw,
// 1.5 Mb/s) — the error-bar scale of pathload itself at these settings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "baselines/estimators.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/shard.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep_runner.hpp"
#include "sim/monitor.hpp"

namespace pathload::scenario {
namespace {

ScenarioSpec v2_preset(std::string_view name) {
  ScenarioSpec spec = Registry::builtin().at(name);
  spec.engine = EngineVersion::kV2;
  return spec;
}

// ------------------------------------------------------------- v2 anchors

TEST(EngineV2Determinism, GoldenAnchorPaperPathSeed77) {
  // Captured on the toolchain that introduced engine v2. A diff here means
  // the v2 event order, RNG mapping, or fluid arithmetic changed — which
  // requires a new engine version, not a silent re-capture (docs/ENGINE.md).
  core::PathloadConfig tool;
  const auto res = run_scenario_once(v2_preset("paper-path"), tool, 77);
  EXPECT_EQ(res.range.low.bits_per_sec(), 3524446.4416307611);
  EXPECT_EQ(res.range.high.bits_per_sec(), 4111863.2394286562);
  EXPECT_EQ(res.fleets, 4);
  EXPECT_EQ(res.elapsed.nanos(), 24983809069);
}

TEST(EngineV2Determinism, BatchedMatchesUnbatchedByteIdentical) {
  // The closed-form burst pass (SimProbeChannel::run_stream_batched +
  // Simulator::schedule_batch) is a pure reordering of the same
  // floating-point work: on a quiescent fluid path it must reproduce the
  // event-driven v2 results bit for bit, not approximately.
  core::PathloadConfig tool;
  for (const std::uint64_t seed : {77ULL, 123ULL, 9001ULL}) {
    SimProbeChannel::set_burst_batching(false);
    const auto off = run_scenario_once(v2_preset("paper-path"), tool, seed);
    SimProbeChannel::set_burst_batching(true);
    const auto on = run_scenario_once(v2_preset("paper-path"), tool, seed);
    EXPECT_EQ(off.range.low.bits_per_sec(), on.range.low.bits_per_sec())
        << "seed " << seed;
    EXPECT_EQ(off.range.high.bits_per_sec(), on.range.high.bits_per_sec())
        << "seed " << seed;
    EXPECT_EQ(off.elapsed.nanos(), on.elapsed.nanos()) << "seed " << seed;
    EXPECT_EQ(off.fleets, on.fleets) << "seed " << seed;
  }
}

TEST(EngineV2Determinism, FluidTcpRunToRunIdenticalPerSeed) {
  // The fluid TCP backend is RNG-free, but its epoch timers interleave
  // with batched probe bursts; the interleaving must still be a pure
  // function of the seed.
  core::PathloadConfig tool;
  const auto a = run_scenario_once(v2_preset("tcp-vs-probe-duel"), tool, 42);
  const auto b = run_scenario_once(v2_preset("tcp-vs-probe-duel"), tool, 42);
  EXPECT_EQ(a.range.low.bits_per_sec(), b.range.low.bits_per_sec());
  EXPECT_EQ(a.range.high.bits_per_sec(), b.range.high.bits_per_sec());
  EXPECT_EQ(a.elapsed.nanos(), b.elapsed.nanos());
  EXPECT_EQ(a.fleets, b.fleets);
}

TEST(EngineV2Determinism, RunToRunIdenticalPerSeed) {
  core::PathloadConfig tool;
  const auto a = run_scenario_once(v2_preset("paper-path"), tool, 123);
  const auto b = run_scenario_once(v2_preset("paper-path"), tool, 123);
  EXPECT_EQ(a.range.low.bits_per_sec(), b.range.low.bits_per_sec());
  EXPECT_EQ(a.range.high.bits_per_sec(), b.range.high.bits_per_sec());
  EXPECT_EQ(a.elapsed.nanos(), b.elapsed.nanos());
  EXPECT_EQ(a.fleets, b.fleets);
}

TEST(EngineV2Determinism, ThreadCountDoesNotChangeResults) {
  core::PathloadConfig tool;
  const ScenarioSpec spec = v2_preset("paper-path");
  SweepRunner one{1};
  SweepRunner four{4};
  const RepeatedRuns a = sweep_scenario_repeated(spec, tool, 6, 500, one);
  const RepeatedRuns b = sweep_scenario_repeated(spec, tool, 6, 500, four);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].range.low.bits_per_sec(),
              b.results[i].range.low.bits_per_sec());
    EXPECT_EQ(a.results[i].range.high.bits_per_sec(),
              b.results[i].range.high.bits_per_sec());
    EXPECT_EQ(a.results[i].elapsed.nanos(), b.results[i].elapsed.nanos());
  }
}

TEST(EngineV2Determinism, ThreadCountInvariantWithFluidTcpAndBatching) {
  // The batched probe path plus a fluid TCP competitor, swept across
  // thread counts: per-seed results must not depend on how the runs are
  // sharded across workers (burst batching is on by default here).
  core::PathloadConfig tool;
  const ScenarioSpec spec = v2_preset("tcp-vs-probe-duel");
  SweepRunner one{1};
  SweepRunner four{4};
  const RepeatedRuns a = sweep_scenario_repeated(spec, tool, 4, 700, one);
  const RepeatedRuns b = sweep_scenario_repeated(spec, tool, 4, 700, four);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].range.low.bits_per_sec(),
              b.results[i].range.low.bits_per_sec());
    EXPECT_EQ(a.results[i].range.high.bits_per_sec(),
              b.results[i].range.high.bits_per_sec());
    EXPECT_EQ(a.results[i].elapsed.nanos(), b.results[i].elapsed.nanos());
  }
}

TEST(EngineV2Determinism, ShardMergeIsByteIdentical) {
  // The sharded matrix contract must hold under engine v2: shard streams
  // merged back reproduce the in-process matrix byte-for-byte.
  std::vector<MatrixEstimator> ests;
  ests.push_back(MatrixEstimator::from_registry(
      baselines::builtin_estimators(), "pathload", "max_fleets=3"));
  ScenarioSpec spec = v2_preset("paper-path");
  spec.warmup = Duration::milliseconds(300);
  // A flow-bearing spec rides along so the batched probe path and the
  // fluid TCP backend are both under the shard contract.
  ScenarioSpec tcp = v2_preset("tcp-bg-greedy");
  tcp.warmup = Duration::milliseconds(300);
  const std::vector<ScenarioSpec> scenarios{spec, tcp};
  const std::vector<double> loads{0.3, 0.7};
  SweepRunner runner{2};

  const auto direct = run_matrix(ests, scenarios, loads, 2, 900, runner);
  for (const int shards : {1, 2}) {
    std::vector<std::string> texts;
    for (int i = 0; i < shards; ++i) {
      texts.push_back(
          run_matrix_shard(ests, scenarios, loads, 2, 900, i, shards, runner));
    }
    const auto merged = merge_cell_texts(texts);
    EXPECT_EQ(cells_to_text(merged), cells_to_text(direct))
        << "shard count " << shards;
  }
}

TEST(EngineV2Determinism, SpecTextRoundTripCarriesTheEngine) {
  const ScenarioSpec spec = v2_preset("paper-path");
  const ScenarioSpec back = ScenarioSpec::parse(spec.to_text());
  EXPECT_EQ(back.engine, EngineVersion::kV2);
  EXPECT_EQ(back.to_text(), spec.to_text());
  // v1 text stays byte-free of the directive (anchored elsewhere, but the
  // asymmetry is the contract: pre-v2 texts never change).
  EXPECT_EQ(Registry::builtin().at("paper-path").to_text().find("engine"),
            std::string::npos);
}

// ------------------------------------------------- fluid ground truth e2e

TEST(EngineV2Fluid, TightLinkUtilizationMatchesConfiguration) {
  // Under v2 the renewal cross traffic is *exactly* its long-run mean, so
  // the MRTG-style monitor must read the configured utilization almost
  // noiselessly — tighter than any packet engine could.
  ScenarioInstance inst{v2_preset("paper-path")};
  sim::UtilizationMonitor mon{inst.simulator(), inst.tight_link(),
                              Duration::milliseconds(500)};
  inst.start();
  mon.start();
  inst.simulator().run_for(Duration::seconds(5));
  EXPECT_NEAR(mon.average_utilization(), 0.6, 0.01);
}

// --------------------------------------------------- cross-engine accord

struct EquivalenceCase {
  const char* preset;
  double load;
};

class EngineEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EngineEquivalence, V1AndV2AgreeWithinTolerance) {
  const EquivalenceCase& c = GetParam();
  ScenarioSpec v1 = Registry::builtin().at(c.preset).with_load(c.load);
  ScenarioSpec v2 = v1;
  v2.engine = EngineVersion::kV2;

  core::PathloadConfig tool;
  SweepRunner runner;
  const int kRuns = 3;
  const RepeatedRuns r1 = sweep_scenario_repeated(v1, tool, kRuns, 3000, runner);
  const RepeatedRuns r2 = sweep_scenario_repeated(v2, tool, kRuns, 3000, runner);

  const double truth = v1.avail_bw().bits_per_sec();
  const double c1 =
      (r1.mean_low().bits_per_sec() + r1.mean_high().bits_per_sec()) / 2.0;
  const double c2 =
      (r2.mean_low().bits_per_sec() + r2.mean_high().bits_per_sec()) / 2.0;
  const double tolerance = std::max(0.25 * truth, 1.5e6);
  EXPECT_NEAR(c1, c2, tolerance)
      << c.preset << " at load " << c.load << ": v1 center " << c1 * 1e-6
      << " Mb/s, v2 center " << c2 * 1e-6 << " Mb/s, truth " << truth * 1e-6
      << " Mb/s";
}

INSTANTIATE_TEST_SUITE_P(
    PresetsTimesLoads, EngineEquivalence,
    ::testing::Values(EquivalenceCase{"paper-path", 0.3},
                      EquivalenceCase{"paper-path", 0.5},
                      EquivalenceCase{"paper-path", 0.8},
                      EquivalenceCase{"paper-path-poisson", 0.3},
                      EquivalenceCase{"paper-path-poisson", 0.5},
                      EquivalenceCase{"paper-path-poisson", 0.8},
                      EquivalenceCase{"tight-not-narrow", 0.3},
                      EquivalenceCase{"tight-not-narrow", 0.5},
                      EquivalenceCase{"tight-not-narrow", 0.8},
                      // Responsive presets: under v2 these run the fluid
                      // TCP backend against v1's packet Reno, at their
                      // native open-loop load. The "truth" here is the
                      // open-loop avail-bw the flows compete for, so the
                      // tolerance is the bound on how differently the two
                      // TCP models bend the estimate, not an accuracy
                      // claim.
                      EquivalenceCase{"tcp-bg-greedy", 0.3},
                      EquivalenceCase{"tcp-bg-rwnd-capped", 0.3},
                      EquivalenceCase{"tcp-vs-probe-duel", 0.3}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      std::string name = info.param.preset;
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_u" + std::to_string(static_cast<int>(info.param.load * 100));
    });

}  // namespace
}  // namespace pathload::scenario
