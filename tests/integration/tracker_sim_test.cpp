#include <gtest/gtest.h>

#include "core/tracker.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"

namespace pathload::scenario {
namespace {

TEST(TrackerOverSim, TracksSimulatedPath) {
  PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;
  cfg.model = sim::Interarrival::kExponential;
  cfg.warmup = Duration::seconds(1);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};

  core::AvailBwTracker::Config tcfg;
  tcfg.tool.initial_rmax = Rate::mbps(12);
  core::AvailBwTracker tracker{channel, tcfg};
  const int runs = tracker.run_for(Duration::seconds(60));
  EXPECT_GE(runs, 2);
  ASSERT_TRUE(tracker.weighted_center().has_value());
  EXPECT_NEAR(tracker.weighted_center()->mbits_per_sec(), 4.0, 1.3);
  ASSERT_TRUE(tracker.overall_band().has_value());
  EXPECT_TRUE(tracker.overall_band()->contains(Rate::mbps(4.0)));
}

TEST(TrackerOverSim, DetectsLoadIncrease) {
  // Start at 30% load, then raise it mid-tracking by adding traffic:
  // the smoothed center must come down.
  PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.3;
  cfg.model = sim::Interarrival::kExponential;
  cfg.warmup = Duration::seconds(1);
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};

  core::AvailBwTracker::Config tcfg;
  tcfg.tool.initial_rmax = Rate::mbps(12);
  tcfg.ewma_alpha = 0.6;
  core::AvailBwTracker tracker{channel, tcfg};
  for (int i = 0; i < 3; ++i) tracker.measure_once();
  const double before = tracker.smoothed_center()->mbits_per_sec();

  // Extra 4 Mb/s of cross traffic: avail-bw drops from 7 to ~3 Mb/s.
  sim::TrafficAggregate extra{bed.simulator(),  bed.tight_link(), Rate::mbps(4), 10,
                              sim::Interarrival::kExponential,
                              sim::PacketSizeMix::paper_mix(), Rng{77}};
  extra.start();
  bed.simulator().run_for(Duration::seconds(1));
  for (int i = 0; i < 5; ++i) tracker.measure_once();
  const double after = tracker.smoothed_center()->mbits_per_sec();

  EXPECT_GT(before, after + 2.0);
  EXPECT_NEAR(before, 7.0, 1.5);
  EXPECT_NEAR(after, 3.0, 1.5);
}

}  // namespace
}  // namespace pathload::scenario
