// Golden determinism anchors for the event engine.
//
// The expected values below were captured from the original binary-heap
// scheduler (pre-calendar-queue) on the same toolchain. The calendar-queue
// engine must reproduce them exactly: same events processed, same packet-id
// consumption, and the same pathload verdict to the last bit. Any diff here
// means the scheduler changed event order -- a correctness bug, not noise.

#include <gtest/gtest.h>

#include "scenario/experiment.hpp"
#include "scenario/paper_path.hpp"

namespace pathload::scenario {
namespace {

PaperPathConfig golden_config() {
  PaperPathConfig cfg;
  cfg.hops = 3;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = 0.6;
  cfg.seed = 77;
  cfg.warmup = Duration::seconds(2);
  return cfg;
}

TEST(EngineDeterminism, WarmupReplaysHeapSchedulerEventAndPacketCounts) {
  Testbed bed{golden_config()};
  bed.start();
  EXPECT_EQ(bed.simulator().events_processed(), 52560u);
  EXPECT_EQ(bed.simulator().next_packet_id() - 1, 17561u);
}

TEST(EngineDeterminism, PathloadRunReplaysHeapSchedulerVerdictBitExact) {
  core::PathloadConfig tool;
  const auto res = run_pathload_once(golden_config(), tool, 77);
  EXPECT_EQ(res.range.low.bits_per_sec(), 3397806.7157649733);
  EXPECT_EQ(res.range.high.bits_per_sec(), 3964114.850317501);
  EXPECT_EQ(res.fleets, 4);
  EXPECT_EQ(res.elapsed.nanos(), 25971036628);
}

TEST(EngineDeterminism, RepeatedRunsAreRunToRunIdentical) {
  core::PathloadConfig tool;
  const auto a = run_pathload_once(golden_config(), tool, 123);
  const auto b = run_pathload_once(golden_config(), tool, 123);
  EXPECT_EQ(a.range.low.bits_per_sec(), b.range.low.bits_per_sec());
  EXPECT_EQ(a.range.high.bits_per_sec(), b.range.high.bits_per_sec());
  EXPECT_EQ(a.elapsed.nanos(), b.elapsed.nanos());
  EXPECT_EQ(a.fleets, b.fleets);
}

}  // namespace
}  // namespace pathload::scenario
