// Tests for the estimator registry: the builtin catalogue, config
// overrides (line-numbered parse errors, unknown keys), the config_text
// round-trip, and the bulk-TCP capability contract.

#include <gtest/gtest.h>

#include "baselines/estimators.hpp"
#include "core/channel.hpp"

namespace pathload::baselines {
namespace {

using core::EstimatorError;

const core::EstimatorRegistry& reg() { return builtin_estimators(); }

TEST(EstimatorRegistry, BuiltinHasTheDocumentedEstimators) {
  EXPECT_EQ(reg().size(), 10u);
  for (const char* name : {"pathload", "cprobe", "pktpair", "topp", "delphi",
                           "spruce", "igi", "pathchirp", "btc",
                           "delivery-rate"}) {
    const auto* entry = reg().find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_FALSE(entry->summary.empty()) << name;
    const auto est = reg().make(name);
    EXPECT_EQ(est->name(), name);
    EXPECT_EQ(est->needs_bulk_tcp(), entry->needs_bulk_tcp) << name;
    EXPECT_EQ(est->needs_capacity_hint(), entry->needs_capacity_hint) << name;
  }
}

TEST(EstimatorRegistry, OnlyTheBulkTransferToolsNeedBulkTcp) {
  for (const auto& entry : reg().entries()) {
    const bool expects = entry.name == "btc" || entry.name == "delivery-rate";
    EXPECT_EQ(entry.needs_bulk_tcp, expects) << entry.name;
  }
}

TEST(EstimatorRegistry, OnlyTheGapModelToolsNeedACapacityHint) {
  for (const auto& entry : reg().entries()) {
    const bool expects = entry.name == "spruce" || entry.name == "igi";
    EXPECT_EQ(entry.needs_capacity_hint, expects) << entry.name;
  }
}

TEST(EstimatorRegistry, AtNamesTheKnownEstimatorsOnMiss) {
  EXPECT_EQ(reg().find("no-such"), nullptr);
  try {
    (void)reg().at("no-such");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown estimator 'no-such'"), std::string::npos);
    EXPECT_NE(msg.find("pathload"), std::string::npos);
    EXPECT_NE(msg.find("btc"), std::string::npos);
  }
}

TEST(EstimatorRegistry, OverridesConfigureTheInstance) {
  const auto est = reg().make("topp", "max_rate_mbps = 16\nstep_mbps = 0.5");
  const std::string cfg = est->config_text();
  EXPECT_NE(cfg.find("max_rate_mbps = 16"), std::string::npos);
  EXPECT_NE(cfg.find("step_mbps = 0.5"), std::string::npos);
  // Untouched keys keep their defaults.
  EXPECT_NE(cfg.find("min_rate_mbps = 1"), std::string::npos);
}

TEST(EstimatorRegistry, CommaSeparatedCliFormWorks) {
  const auto est = reg().make("cprobe", "trains = 2, train_length = 50");
  const std::string cfg = est->config_text();
  EXPECT_NE(cfg.find("trains = 2"), std::string::npos);
  EXPECT_NE(cfg.find("train_length = 50"), std::string::npos);
}

TEST(EstimatorRegistry, UnknownKeyNamesLineEstimatorAndLegalKeys) {
  try {
    (void)reg().make("cprobe", "trains = 2\ntrainz = 3");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown key 'trainz'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'cprobe'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("train_length"), std::string::npos) << msg;
  }
}

TEST(EstimatorRegistry, MalformedNumberNamesLineAndKey) {
  try {
    (void)reg().make("delphi", "pairs = ten");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pairs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected a number"), std::string::npos) << msg;
  }
}

TEST(EstimatorRegistry, NonIntegerRejectedForIntegerKeys) {
  EXPECT_THROW((void)reg().make("pktpair", "pairs = 1.5"), EstimatorError);
}

TEST(EstimatorRegistry, DuplicateKeyRejected) {
  try {
    (void)reg().make("pktpair", "pairs = 10, pairs = 20");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    EXPECT_NE(std::string{e.what()}.find("duplicate key 'pairs'"),
              std::string::npos);
  }
}

TEST(EstimatorRegistry, MissingEqualsRejected) {
  try {
    (void)reg().make("pktpair", "pairs");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    EXPECT_NE(std::string{e.what()}.find("expected 'key = value'"),
              std::string::npos);
  }
}

TEST(EstimatorRegistry, NewEstimatorUnknownKeysAreLineNumberedAndActionable) {
  // Every PR 5 estimator must reuse the structured override error path:
  // the 1-based line, the offending key, the estimator name, and the full
  // legal key list.
  struct Case {
    const char* name;
    const char* overrides;  // line 2 carries the typo
    const char* bad_key;
    const char* a_legal_key;
  };
  for (const Case& c :
       {Case{"spruce", "pairs = 10\ncapacity_mpbs = 10", "capacity_mpbs",
             "capacity_mbps"},
        Case{"igi", "train_length = 30\ngapfactor = 2", "gapfactor",
             "gap_factor"},
        Case{"pathchirp", "chirps = 4\nspread = 1.3", "spread",
             "spread_factor"}}) {
    try {
      (void)reg().make(c.name, c.overrides);
      FAIL() << c.name << ": expected EstimatorError";
    } catch (const EstimatorError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("line 2"), std::string::npos) << c.name << ": " << msg;
      EXPECT_NE(msg.find(std::string{"unknown key '"} + c.bad_key), std::string::npos)
          << c.name << ": " << msg;
      EXPECT_NE(msg.find(std::string{"'"} + c.name + "'"), std::string::npos)
          << c.name << ": " << msg;
      EXPECT_NE(msg.find(c.a_legal_key), std::string::npos) << c.name << ": " << msg;
    }
  }
}

TEST(EstimatorRegistry, NewEstimatorMalformedValuesNameLineAndKey) {
  for (const char* bad : {"pairs = many", "packet_size = 1.5"}) {
    try {
      (void)reg().make("spruce", bad);
      FAIL() << "expected EstimatorError for '" << bad << "'";
    } catch (const EstimatorError& e) {
      EXPECT_NE(std::string{e.what()}.find("line 1"), std::string::npos) << e.what();
    }
  }
  EXPECT_THROW((void)reg().make("igi", "max_gap_steps = 2.5"), EstimatorError);
  EXPECT_THROW((void)reg().make("pathchirp", "chirps = twelve"), EstimatorError);
}

TEST(EstimatorRegistry, PathChirpRejectsNonsenseRateLadder) {
  EXPECT_THROW((void)reg().make("pathchirp", "min_rate_mbps = 8, max_rate_mbps = 2"),
               EstimatorError);
  EXPECT_THROW((void)reg().make("pathchirp", "spread_factor = 0.9"), EstimatorError);
}

TEST(EstimatorRegistry, ConfigTextRoundTripsThroughOverrides) {
  // Every estimator's introspected config must itself be a legal override
  // text producing an identically-configured instance — the contract that
  // keeps config_text and the factories' key lists in sync.
  for (const auto& entry : reg().entries()) {
    const auto original = reg().make(entry.name);
    const std::string cfg = original->config_text();
    const auto reparsed = reg().make(entry.name, cfg);
    EXPECT_EQ(reparsed->config_text(), cfg) << entry.name;
  }
}

TEST(EstimatorRegistry, AddRejectsDuplicateNames) {
  core::EstimatorRegistry copy;
  copy.add({"x", "an estimator", "avail-bw", false,
            [](const core::KvOverrides&) -> std::unique_ptr<core::Estimator> {
              return nullptr;
            }});
  EXPECT_THROW(copy.add({"x", "again", "avail-bw", false,
                         [](const core::KvOverrides&) -> std::unique_ptr<core::Estimator> {
                           return nullptr;
                         }}),
               EstimatorError);
}

TEST(EstimatorCapability, BtcThrowsStructuredErrorOnBulklessChannel) {
  // A minimal probe-only channel: bulk() stays the base-class nullptr.
  class ProbeOnlyChannel final : public core::ProbeChannel {
   public:
    core::StreamOutcome run_stream(const core::StreamSpec& spec) override {
      core::StreamOutcome o;
      o.sent_count = spec.packet_count;
      return o;
    }
    void idle(Duration d) override { now_ += d; }
    TimePoint now() override { return now_; }
    Duration rtt() const override { return Duration::milliseconds(10); }

   private:
    TimePoint now_{};
  } channel;

  const auto btc = reg().make("btc");
  Rng rng{1};
  try {
    (void)btc->run(channel, rng);
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("btc"), std::string::npos);
    EXPECT_NE(msg.find("bulk-TCP"), std::string::npos);
  }
}

TEST(EstimatorCapability, GapModelToolsThrowActionablyWithoutCapacityHint) {
  // spruce and igi constructed without a capacity_mbps hint must fail at
  // run() with a message that says what to set and where to get it —
  // before any probe leaves (the channel must stay untouched).
  class CountingChannel final : public core::ProbeChannel {
   public:
    core::StreamOutcome run_stream(const core::StreamSpec& spec) override {
      ++streams;
      core::StreamOutcome o;
      o.sent_count = spec.packet_count;
      return o;
    }
    void idle(Duration d) override { now_ += d; }
    TimePoint now() override { return now_; }
    Duration rtt() const override { return Duration::milliseconds(10); }
    int streams{0};

   private:
    TimePoint now_{};
  } channel;

  for (const char* name : {"spruce", "igi"}) {
    const auto est = reg().make(name);
    EXPECT_TRUE(est->needs_capacity_hint()) << name;
    Rng rng{1};
    try {
      (void)est->run(channel, rng);
      FAIL() << name << ": expected EstimatorError";
    } catch (const EstimatorError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(std::string{"'"} + name + "'"), std::string::npos) << msg;
      EXPECT_NE(msg.find("capacity_mbps"), std::string::npos) << msg;
      EXPECT_NE(msg.find("pktpair"), std::string::npos) << msg;  // actionable
    }
  }
  EXPECT_EQ(channel.streams, 0);

  // With the hint, the same instances run (the channel above reports
  // total loss, so the estimate is invalid — but no throw).
  for (const char* name : {"spruce", "igi"}) {
    const auto est = reg().make(name, "capacity_mbps = 10");
    Rng rng{1};
    const auto r = est->run(channel, rng);
    EXPECT_FALSE(r.valid) << name;
  }
  EXPECT_GT(channel.streams, 0);
}

}  // namespace
}  // namespace pathload::baselines
