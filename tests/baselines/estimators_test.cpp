// Tests for the estimator registry: the builtin catalogue, config
// overrides (line-numbered parse errors, unknown keys), the config_text
// round-trip, and the bulk-TCP capability contract.

#include <gtest/gtest.h>

#include "baselines/estimators.hpp"
#include "core/channel.hpp"

namespace pathload::baselines {
namespace {

using core::EstimatorError;

const core::EstimatorRegistry& reg() { return builtin_estimators(); }

TEST(EstimatorRegistry, BuiltinHasTheDocumentedEstimators) {
  EXPECT_EQ(reg().size(), 6u);
  for (const char* name :
       {"pathload", "cprobe", "pktpair", "topp", "delphi", "btc"}) {
    const auto* entry = reg().find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_FALSE(entry->summary.empty()) << name;
    const auto est = reg().make(name);
    EXPECT_EQ(est->name(), name);
    EXPECT_EQ(est->needs_bulk_tcp(), entry->needs_bulk_tcp) << name;
  }
}

TEST(EstimatorRegistry, OnlyBtcNeedsBulkTcp) {
  for (const auto& entry : reg().entries()) {
    EXPECT_EQ(entry.needs_bulk_tcp, entry.name == "btc") << entry.name;
  }
}

TEST(EstimatorRegistry, AtNamesTheKnownEstimatorsOnMiss) {
  EXPECT_EQ(reg().find("no-such"), nullptr);
  try {
    (void)reg().at("no-such");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown estimator 'no-such'"), std::string::npos);
    EXPECT_NE(msg.find("pathload"), std::string::npos);
    EXPECT_NE(msg.find("btc"), std::string::npos);
  }
}

TEST(EstimatorRegistry, OverridesConfigureTheInstance) {
  const auto est = reg().make("topp", "max_rate_mbps = 16\nstep_mbps = 0.5");
  const std::string cfg = est->config_text();
  EXPECT_NE(cfg.find("max_rate_mbps = 16"), std::string::npos);
  EXPECT_NE(cfg.find("step_mbps = 0.5"), std::string::npos);
  // Untouched keys keep their defaults.
  EXPECT_NE(cfg.find("min_rate_mbps = 1"), std::string::npos);
}

TEST(EstimatorRegistry, CommaSeparatedCliFormWorks) {
  const auto est = reg().make("cprobe", "trains = 2, train_length = 50");
  const std::string cfg = est->config_text();
  EXPECT_NE(cfg.find("trains = 2"), std::string::npos);
  EXPECT_NE(cfg.find("train_length = 50"), std::string::npos);
}

TEST(EstimatorRegistry, UnknownKeyNamesLineEstimatorAndLegalKeys) {
  try {
    (void)reg().make("cprobe", "trains = 2\ntrainz = 3");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown key 'trainz'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'cprobe'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("train_length"), std::string::npos) << msg;
  }
}

TEST(EstimatorRegistry, MalformedNumberNamesLineAndKey) {
  try {
    (void)reg().make("delphi", "pairs = ten");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pairs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected a number"), std::string::npos) << msg;
  }
}

TEST(EstimatorRegistry, NonIntegerRejectedForIntegerKeys) {
  EXPECT_THROW((void)reg().make("pktpair", "pairs = 1.5"), EstimatorError);
}

TEST(EstimatorRegistry, DuplicateKeyRejected) {
  try {
    (void)reg().make("pktpair", "pairs = 10, pairs = 20");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    EXPECT_NE(std::string{e.what()}.find("duplicate key 'pairs'"),
              std::string::npos);
  }
}

TEST(EstimatorRegistry, MissingEqualsRejected) {
  try {
    (void)reg().make("pktpair", "pairs");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    EXPECT_NE(std::string{e.what()}.find("expected 'key = value'"),
              std::string::npos);
  }
}

TEST(EstimatorRegistry, ConfigTextRoundTripsThroughOverrides) {
  // Every estimator's introspected config must itself be a legal override
  // text producing an identically-configured instance — the contract that
  // keeps config_text and the factories' key lists in sync.
  for (const auto& entry : reg().entries()) {
    const auto original = reg().make(entry.name);
    const std::string cfg = original->config_text();
    const auto reparsed = reg().make(entry.name, cfg);
    EXPECT_EQ(reparsed->config_text(), cfg) << entry.name;
  }
}

TEST(EstimatorRegistry, AddRejectsDuplicateNames) {
  core::EstimatorRegistry copy;
  copy.add({"x", "an estimator", "avail-bw", false,
            [](const core::KvOverrides&) -> std::unique_ptr<core::Estimator> {
              return nullptr;
            }});
  EXPECT_THROW(copy.add({"x", "again", "avail-bw", false,
                         [](const core::KvOverrides&) -> std::unique_ptr<core::Estimator> {
                           return nullptr;
                         }}),
               EstimatorError);
}

TEST(EstimatorCapability, BtcThrowsStructuredErrorOnBulklessChannel) {
  // A minimal probe-only channel: bulk() stays the base-class nullptr.
  class ProbeOnlyChannel final : public core::ProbeChannel {
   public:
    core::StreamOutcome run_stream(const core::StreamSpec& spec) override {
      core::StreamOutcome o;
      o.sent_count = spec.packet_count;
      return o;
    }
    void idle(Duration d) override { now_ += d; }
    TimePoint now() override { return now_; }
    Duration rtt() const override { return Duration::milliseconds(10); }

   private:
    TimePoint now_{};
  } channel;

  const auto btc = reg().make("btc");
  Rng rng{1};
  try {
    (void)btc->run(channel, rng);
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("btc"), std::string::npos);
    EXPECT_NE(msg.find("bulk-TCP"), std::string::npos);
  }
}

}  // namespace
}  // namespace pathload::baselines
