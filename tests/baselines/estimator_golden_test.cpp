// Golden determinism anchors for the unified-estimator refactor.
//
// The expected values below were captured from the PRE-refactor bespoke
// APIs (CprobeEstimator::measure on a raw channel, BtcMeasurement::run on
// the simulator, PathloadSession{channel, cfg}.run(), ...) on the
// paper-path preset at seed 9001. The Estimator interface — registry
// construction, MeteredChannel accounting, bulk-TCP capability — must
// reproduce every measured bit: a diff here means the refactor changed
// what a tool sends or how its result is computed, not just how it is
// reported. Same pattern as tests/integration/engine_determinism_test.cpp.

#include <gtest/gtest.h>

#include "baselines/btc.hpp"
#include "baselines/estimators.hpp"
#include "scenario/registry.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/spec.hpp"

namespace pathload::baselines {
namespace {

constexpr std::uint64_t kSeed = 9001;

scenario::ScenarioInstance golden_instance() {
  scenario::ScenarioSpec spec = scenario::Registry::builtin().at("paper-path");
  spec.seed = kSeed;
  return scenario::ScenarioInstance{std::move(spec)};
}

core::EstimateReport run_golden(const char* name, const char* overrides = "") {
  auto inst = golden_instance();
  inst.start();
  scenario::SimProbeChannel channel{inst.simulator(), inst.path()};
  const auto est = builtin_estimators().make(name, overrides);
  Rng rng{kSeed};
  return est->run(channel, rng);
}

TEST(EstimatorGolden, PathloadReplaysBespokeSessionBitExact) {
  const auto r = run_golden("pathload");
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.is_range);
  EXPECT_EQ(r.low.bits_per_sec(), 3261498.8217835505);
  EXPECT_EQ(r.high.bits_per_sec(), 5435835.0631745951);
  EXPECT_EQ(r.iterations.size(), 5u);  // fleets
  EXPECT_EQ(r.streams_sent, 61);
  EXPECT_EQ(r.packets_sent, 6020);
  EXPECT_EQ(r.bytes_sent.byte_count(), 1230000);
  EXPECT_EQ(r.elapsed.nanos(), 29056684175);
}

TEST(EstimatorGolden, CprobeReplaysBespokeMeasureBitExact) {
  const auto r = run_golden("cprobe");
  EXPECT_TRUE(r.valid);
  EXPECT_FALSE(r.is_range);
  EXPECT_EQ(r.quantity, core::EstimateReport::Quantity::kAdr);
  EXPECT_EQ(r.low.bits_per_sec(), 7578200.4885507468);
  EXPECT_EQ(r.high.bits_per_sec(), 7578200.4885507468);
  EXPECT_EQ(r.elapsed.nanos(), 1243340708);
  // 4 trains x 100 packets x 1500 B, all transmitted.
  EXPECT_EQ(r.streams_sent, 4);
  EXPECT_EQ(r.packets_sent, 400);
  EXPECT_EQ(r.bytes_sent.byte_count(), 600000);
  EXPECT_EQ(r.iterations.size(), 4u);
}

TEST(EstimatorGolden, PacketPairReplaysBespokeMeasureBitExact) {
  const auto r = run_golden("pktpair");
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.quantity, core::EstimateReport::Quantity::kCapacity);
  EXPECT_EQ(r.low.bits_per_sec(), 7177033.4928229665);
  EXPECT_EQ(r.elapsed.nanos(), 4496665753);
  // 60 pairs x 2 packets x 1500 B.
  EXPECT_EQ(r.streams_sent, 60);
  EXPECT_EQ(r.packets_sent, 120);
  EXPECT_EQ(r.bytes_sent.byte_count(), 180000);
}

TEST(EstimatorGolden, ToppReplaysBespokeMeasureBitExact) {
  const auto r = run_golden("topp");
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.quantity, core::EstimateReport::Quantity::kAvailBw);
  EXPECT_EQ(r.low.bits_per_sec(), 3444583.3232455598);
  ASSERT_TRUE(r.capacity.has_value());
  EXPECT_EQ(r.capacity->bits_per_sec(), 7365181.4192511253);
  EXPECT_EQ(r.iterations.size(), 20u);  // the 1..20 Mb/s sweep
  EXPECT_EQ(r.elapsed.nanos(), 8726672489);
}

TEST(EstimatorGolden, DelphiReplaysBespokeMeasureBitExact) {
  const auto r = run_golden("delphi");  // default capacity = the tight 10 Mb/s
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.low.bits_per_sec(), 1594491.1999999993);
  EXPECT_EQ(r.elapsed.nanos(), 7989796700);
  EXPECT_EQ(r.streams_sent, 100);
  EXPECT_EQ(r.packets_sent, 200);
}

// The PR 5 additions (spruce, igi, pathchirp) have no pre-refactor bespoke
// ancestor; their anchors below were captured from the implementations at
// introduction, on the same paper-path/seed-9001 convention. A diff means
// the tool's probing schedule or analysis drifted, not just its reporting.

TEST(EstimatorGolden, SpruceAnchorOnPaperPathBitExact) {
  const auto r = run_golden("spruce", "capacity_mbps = 10");
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.is_range);
  EXPECT_EQ(r.quantity, core::EstimateReport::Quantity::kAvailBw);
  EXPECT_EQ(r.low.bits_per_sec(), 3659731.2989660795);
  EXPECT_EQ(r.high.bits_per_sec(), 4452955.8677005861);
  // 100 pairs x 2 packets x 1500 B.
  EXPECT_EQ(r.streams_sent, 100);
  EXPECT_EQ(r.packets_sent, 200);
  EXPECT_EQ(r.bytes_sent.byte_count(), 300000);
  EXPECT_EQ(r.elapsed.nanos(), 15718773936);
  EXPECT_EQ(r.iterations.size(), 100u);  // one sample per usable pair
}

TEST(EstimatorGolden, IgiAnchorOnPaperPathBitExact) {
  const auto r = run_golden("igi", "capacity_mbps = 10");
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.is_range);
  EXPECT_EQ(r.quantity, core::EstimateReport::Quantity::kAvailBw);
  // low = PTR at the turning point, high = the IGI gap-model estimate
  // (biased up: probing below the knee misses cross traffic, the bias the
  // comparative-evaluation literature reports).
  EXPECT_EQ(r.low.bits_per_sec(), 3896490.0255103339);
  EXPECT_EQ(r.high.bits_per_sec(), 7893219.9693745784);
  // 13 gap steps x 60-packet trains of 700 B until the turning point.
  EXPECT_EQ(r.streams_sent, 13);
  EXPECT_EQ(r.packets_sent, 780);
  EXPECT_EQ(r.bytes_sent.byte_count(), 546000);
  EXPECT_EQ(r.elapsed.nanos(), 2074709901);
  ASSERT_EQ(r.iterations.size(), 13u);
  EXPECT_EQ(r.iterations.back().note, "turning-point");
}

TEST(EstimatorGolden, PathChirpAnchorOnPaperPathBitExact) {
  const auto r = run_golden("pathchirp");  // needs no capacity hint
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.is_range);
  EXPECT_EQ(r.quantity, core::EstimateReport::Quantity::kAvailBw);
  EXPECT_EQ(r.low.bits_per_sec(), 2547196.1536893314);
  EXPECT_EQ(r.high.bits_per_sec(), 4298748.1200772244);
  // 12 chirps x 19 packets (18 exponential spacings, 1 -> 20 Mb/s) x 1 kB.
  EXPECT_EQ(r.streams_sent, 12);
  EXPECT_EQ(r.packets_sent, 228);
  EXPECT_EQ(r.bytes_sent.byte_count(), 228000);
  EXPECT_EQ(r.elapsed.nanos(), 2463296935);
  EXPECT_EQ(r.iterations.size(), 12u);  // every chirp fully received
}

TEST(EstimatorGolden, BtcOverChannelReplaysBespokeSimulatorRunBitExact) {
  const auto r = run_golden("btc", "duration_s = 8");
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.quantity, core::EstimateReport::Quantity::kTcpThroughput);
  EXPECT_EQ(r.low.bits_per_sec(), 3498160.0);
  EXPECT_EQ(r.iterations.size(), 8u);  // 1-second buckets
  EXPECT_EQ(r.iterations.front().measured_mbps, Rate::bps(1812000).mbits_per_sec());
}

TEST(EstimatorGolden, BtcDirectAndChannelFormsAgreeBitExact) {
  // The two BTC entry points (direct simulator API vs the channel's
  // bulk-TCP capability) must be one code path: identical numbers.
  BtcConfig cfg;
  cfg.duration = Duration::seconds(8);

  auto direct = golden_instance();
  direct.start();
  const auto bespoke = BtcMeasurement{cfg}.run(direct.simulator(), direct.path());

  const auto r = run_golden("btc", "duration_s = 8");
  EXPECT_EQ(r.low.bits_per_sec(), bespoke.average_throughput.bits_per_sec());
  ASSERT_EQ(r.iterations.size(), bespoke.per_bucket.size());
  for (std::size_t i = 0; i < bespoke.per_bucket.size(); ++i) {
    EXPECT_EQ(r.iterations[i].measured_mbps, bespoke.per_bucket[i].mbits_per_sec());
  }
  EXPECT_EQ(bespoke.fast_retransmits, 0u);
  EXPECT_EQ(bespoke.timeouts, 0u);
  EXPECT_EQ(bespoke.rtt_secs.count(), 35);
  EXPECT_EQ(bespoke.rtt_secs.mean(), 0.22166139585714284);
}

}  // namespace
}  // namespace pathload::baselines
