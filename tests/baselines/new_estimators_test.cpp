// Property tests for the PR 5 estimators (Spruce, IGI/PTR, pathChirp):
// the analysis math on synthetic channels and hand-built signatures, where
// the right answer is known in closed form — the complement of the golden
// anchors in estimator_golden_test.cpp, which pin the full runs bit-exactly
// on the paper-path preset.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/chirp.hpp"
#include "baselines/igi.hpp"
#include "baselines/spruce.hpp"
#include "core/channel.hpp"
#include "scenario/registry.hpp"
#include "scenario/sim_channel.hpp"
#include "scenario/spec.hpp"

namespace pathload::baselines {
namespace {

// ---------------------------------------------------------------- Spruce

TEST(SpruceProperty, PairSampleInvertsTheGapModel) {
  // The busy-queue identity: cross traffic lambda widens delta_in = L/C to
  // delta_out = delta_in * (1 + lambda/C), and the sample must recover
  // A = C - lambda exactly, for any utilization.
  const Rate C = Rate::mbps(10);
  const Duration din = C.transmission_time(DataSize::bytes(1500));
  for (double u : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    const Duration dout = din * (1.0 + u);
    const Rate a = SpruceEstimator::pair_sample(C, din, dout);
    EXPECT_NEAR(a.mbits_per_sec(), 10.0 * (1.0 - u), 1e-9) << "u=" << u;
  }
}

TEST(SpruceProperty, PairSampleClampsNegativesOnly) {
  const Rate C = Rate::mbps(10);
  const Duration din = C.transmission_time(DataSize::bytes(1500));
  // A compressed pair samples *above* C (downstream jitter must be allowed
  // to cancel in the mean — only the final mean folds back into [0, C]).
  EXPECT_NEAR(SpruceEstimator::pair_sample(C, din, din * 0.5).mbits_per_sec(),
              15.0, 1e-9);
  // More than doubled gap: no availability, never negative.
  EXPECT_EQ(SpruceEstimator::pair_sample(C, din, din * 3.0), Rate::zero());
}

/// Synthetic single-queue channel with constant fluid cross traffic: a
/// pair spaced delta_in comes out spaced delta_in * (1 + lambda/C); a
/// train at rate R > A disperses to rate A (output gaps L*8/A); a train at
/// rate R <= A keeps its input spacing. Known ground truth for both gap
/// models, no simulator.
class FluidQueueChannel final : public core::ProbeChannel {
 public:
  FluidQueueChannel(Rate capacity, Rate cross) : capacity_{capacity}, cross_{cross} {}

  core::StreamOutcome run_stream(const core::StreamSpec& spec) override {
    const Rate avail = capacity_ - cross_;
    core::StreamOutcome o;
    o.sent_count = spec.packet_count;
    const Duration base = Duration::milliseconds(5);
    TimePoint sent = now_;
    TimePoint received = now_ + base;
    for (int i = 0; i < spec.packet_count; ++i) {
      if (i > 0) {
        const Duration gap = spec.periodic()
                                 ? spec.period
                                 : spec.gaps[static_cast<std::size_t>(i - 1)];
        sent += gap;
        const Rate in_rate =
            Rate::bps(spec.packet_size * 8.0 / gap.secs());
        // Busy queue while overdriven (pairs at C count: their momentary
        // rate C exceeds A whenever cross > 0): the output gap carries the
        // probe bits plus the cross bits that arrived in between.
        const Duration out_gap =
            in_rate > avail
                ? Duration::seconds((spec.packet_size * 8.0 +
                                     cross_.bits_per_sec() * gap.secs()) /
                                    capacity_.bits_per_sec())
                : gap;
        received += out_gap;
      }
      core::ProbeRecord rec;
      rec.seq = static_cast<std::uint32_t>(i);
      rec.sent = sent;
      rec.received = received;
      o.records.push_back(rec);
    }
    now_ = sent;
    return o;
  }
  void idle(Duration d) override { now_ += d; }
  TimePoint now() override { return now_; }
  Duration rtt() const override { return Duration::milliseconds(10); }

 private:
  Rate capacity_;
  Rate cross_;
  TimePoint now_{};
};

TEST(SpruceProperty, RecoversAvailBwOnTheFluidQueue) {
  // On the ideal gap-model path the estimate must be exact (zero sample
  // variance, so the range collapses onto A) for any cross-traffic level.
  for (double cross_mbps : {0.0, 2.0, 5.0, 8.0}) {
    FluidQueueChannel channel{Rate::mbps(10), Rate::mbps(cross_mbps)};
    SpruceConfig cfg;
    cfg.capacity = Rate::mbps(10);
    cfg.pairs = 20;
    SpruceEstimator spruce{cfg};
    Rng rng{7};
    const auto r = spruce.run(channel, rng);
    ASSERT_TRUE(r.valid) << cross_mbps;
    EXPECT_NEAR(r.low.mbits_per_sec(), 10.0 - cross_mbps, 1e-6);
    EXPECT_NEAR(r.high.mbits_per_sec(), 10.0 - cross_mbps, 1e-6);
    EXPECT_EQ(r.streams_sent, 20);
    EXPECT_EQ(r.packets_sent, 40);
  }
}

// --------------------------------------------------------------- IGI/PTR

TEST(IgiProperty, CrossTrafficFormulaCountsOnlyIncreasedGaps) {
  const Rate C = Rate::mbps(10);
  const Duration g_in = Duration::microseconds(1000);
  // All gaps unchanged: no cross traffic visible.
  EXPECT_EQ(IgiEstimator::igi_cross_traffic(C, g_in, {1e-3, 1e-3, 1e-3}),
            Rate::zero());
  // One gap widened by 500 us among 2 ms of output time: the widening is
  // C * 500us worth of cross bits over the observation window.
  const Rate lambda = IgiEstimator::igi_cross_traffic(C, g_in, {1.5e-3, 0.5e-3});
  EXPECT_NEAR(lambda.bits_per_sec(), 10e6 * 0.5e-3 / 2e-3, 1e-6);
  // Empty window: zero, not a division crash.
  EXPECT_EQ(IgiEstimator::igi_cross_traffic(C, g_in, {}), Rate::zero());
}

TEST(IgiProperty, FindsTheTurningPointOnTheFluidQueue) {
  // Fluid queue with A = 4 of 10 Mb/s: trains faster than A disperse to
  // output rate A, trains at or below A keep their spacing. The sweep must
  // stop at the first gap whose train rate has fallen to A (within the
  // tolerance), and the PTR there is the train's own rate — between
  // A/gap_factor and A(1 + tol).
  FluidQueueChannel channel{Rate::mbps(10), Rate::mbps(6)};
  IgiConfig cfg;
  cfg.capacity = Rate::mbps(10);
  IgiEstimator igi{cfg};
  Rng rng{7};
  const auto r = igi.run(channel, rng);
  ASSERT_TRUE(r.valid);
  const double ptr = r.low.mbits_per_sec();  // fluid: IGI side is >= PTR
  EXPECT_LE(ptr, 4.0 * (1.0 + cfg.gap_tolerance) + 1e-9);
  EXPECT_GE(ptr, 4.0 / cfg.gap_factor - 1e-9);
  // Pre-turning rows are overdriven: their dispersion rate lies strictly
  // between A and C (the ADR regime), falling towards A as the input gap
  // widens; offered rates shrink monotonically along the sweep.
  ASSERT_GE(r.iterations.size(), 2u);
  for (std::size_t i = 0; i + 1 < r.iterations.size(); ++i) {
    EXPECT_GT(r.iterations[i].measured_mbps, 4.0) << i;
    EXPECT_LT(r.iterations[i].measured_mbps, 10.0) << i;
    EXPECT_GT(r.iterations[i].offered_mbps, r.iterations[i + 1].offered_mbps);
    if (i > 0) {
      EXPECT_LT(r.iterations[i].measured_mbps, r.iterations[i - 1].measured_mbps);
    }
  }
  EXPECT_EQ(r.iterations.back().note, "turning-point");
}

TEST(IgiProperty, GivesUpInvalidWhenTheSweepCannotReachTheKnee) {
  // Gap schedule capped before the train rate falls to A: no turning
  // point, and the report must say invalid rather than fabricate a point.
  FluidQueueChannel channel{Rate::mbps(10), Rate::mbps(9.5)};  // A = 0.5
  IgiConfig cfg;
  cfg.capacity = Rate::mbps(10);
  cfg.max_gap_steps = 6;  // trains stay way above 0.5 Mb/s
  IgiEstimator igi{cfg};
  Rng rng{7};
  const auto r = igi.run(channel, rng);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.iterations.size(), 6u);
}

// -------------------------------------------------------------- pathChirp

using Chirp = PathChirpEstimator;

TEST(PathChirpProperty, FlatSignatureHasNoExcursions) {
  const std::vector<double> q(20, 0.0);
  EXPECT_TRUE(Chirp::segment_excursions(q, 1.5, 3).empty());
}

TEST(PathChirpProperty, MonotoneRampIsOneNonTerminatingExcursion) {
  std::vector<double> q;
  for (int i = 0; i < 12; ++i) q.push_back(i < 5 ? 0.0 : (i - 5) * 1e-4);
  const auto ex = Chirp::segment_excursions(q, 1.5, 3);
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].start, 5u);
  EXPECT_EQ(ex[0].end, 11u);
  EXPECT_FALSE(ex[0].terminated);
}

TEST(PathChirpProperty, RecoveringBumpTerminatesAndShortBlipsAreFiltered) {
  // A 4-spacing bump that decays back to the baseline, then a 1-packet
  // blip: the bump is a terminated excursion, the blip is jitter.
  const std::vector<double> q = {0, 0, 1e-3, 2e-3, 1.5e-3, 1e-4, 0,
                                 0, 5e-4, 0,    0,    0};
  const auto ex = Chirp::segment_excursions(q, 1.5, 3);
  ASSERT_EQ(ex.size(), 1u);
  EXPECT_EQ(ex[0].start, 1u);
  EXPECT_TRUE(ex[0].terminated);
}

TEST(PathChirpProperty, NoCongestionEstimatesTheTopChirpRate) {
  // No excursion anywhere: the chirp asserts availability up to its own
  // maximum probing rate — the estimate saturates there, by construction.
  const std::vector<double> q(10, 0.0);
  std::vector<double> rates{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> gaps;
  for (double r : rates) gaps.push_back(8e-3 / r);
  EXPECT_NEAR(Chirp::chirp_estimate_mbps(q, rates, gaps, 1.5, 3), 9.0, 1e-9);
}

TEST(PathChirpProperty, PersistentExcursionPinsTheEstimateToItsOnsetRate) {
  // Delays rise from packet 5 and never recover: every spacing asserts
  // the onset rate rates[5], so the weighted average equals it exactly.
  std::vector<double> q;
  for (int i = 0; i < 10; ++i) q.push_back(i < 5 ? 0.0 : (i - 5) * 1e-3);
  std::vector<double> rates{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> gaps;
  for (double r : rates) gaps.push_back(8e-3 / r);
  EXPECT_NEAR(Chirp::chirp_estimate_mbps(q, rates, gaps, 1.5, 3), 6.0, 1e-9);
}

TEST(PathChirpProperty, TransientBurstOnAQuietPathDoesNotCollapseTheEstimate) {
  // One recovered excursion (a cross-traffic burst) on an otherwise flat
  // signature: only the spacings inside the burst assert their own rates;
  // the fallback for everything else is the top chirp rate, NOT the
  // burst's onset rate — a terminated excursion is not persistent
  // self-loading, so a quiet path keeps estimating near max rate.
  //                    0  1  2     3     4       5     6  7  8  9
  const std::vector<double> q{0, 0, 1e-3, 2e-3, 1.5e-3, 1e-4, 0, 0, 0, 0};
  const std::vector<double> rates{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> gaps;
  for (double r : rates) gaps.push_back(8e-3 / r);
  const double d = Chirp::chirp_estimate_mbps(q, rates, gaps, 1.5, 3);
  // Excursion spans packets [1, 5): spacings 1-4 assert rates 2..5, the
  // rest assert 9. The weighted average must sit well above the burst's
  // onset rate (2) and below the top rate.
  EXPECT_GT(d, 5.0);
  EXPECT_LT(d, 9.0);
}

TEST(GappedStreams, SimChannelRejectsMalformedGapCounts) {
  scenario::ScenarioSpec spec = scenario::Registry::builtin().at("paper-path");
  spec.warmup = Duration::milliseconds(100);
  scenario::ScenarioInstance inst{std::move(spec)};
  inst.start();
  scenario::SimProbeChannel channel{inst.simulator(), inst.path()};
  core::StreamSpec stream;
  stream.packet_count = 10;
  stream.gaps = {Duration::milliseconds(1), Duration::milliseconds(1)};
  EXPECT_THROW((void)channel.run_stream(stream), std::invalid_argument);
}

TEST(PathChirpProperty, MismatchedSignatureLengthsYieldZeroNotUb) {
  const std::vector<double> q{0, 0};
  const std::vector<double> rates{1, 2};
  const std::vector<double> one_gap{1};
  EXPECT_EQ(Chirp::chirp_estimate_mbps(q, rates, one_gap, 1.5, 3), 0.0);
  const std::vector<double> empty;
  EXPECT_EQ(Chirp::chirp_estimate_mbps(empty, empty, empty, 1.5, 3), 0.0);
}

TEST(PathChirpProperty, GapScheduleCoversTheConfiguredRateLadder) {
  PathChirpConfig cfg;
  cfg.min_rate = Rate::mbps(1);
  cfg.max_rate = Rate::mbps(20);
  cfg.spread_factor = 1.2;
  cfg.packet_size = 1000;
  PathChirpEstimator chirp{cfg};
  const auto gaps = chirp.chirp_gaps();
  ASSERT_GE(gaps.size(), 2u);
  // First spacing probes min_rate, last probes exactly max_rate, and the
  // schedule shrinks monotonically.
  EXPECT_NEAR(1000 * 8.0 / gaps.front().secs(), 1e6, 1.0);
  EXPECT_NEAR(1000 * 8.0 / gaps.back().secs(), 20e6, 20.0);
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    EXPECT_LT(gaps[i], gaps[i - 1]) << i;
  }
}

TEST(PathChirpProperty, FluidQueueEstimateLandsAtTheAvailBw) {
  // On the fluid queue the persistent excursion starts where the chirp
  // rate crosses A = 4: the per-chirp estimate must land within one
  // spread-factor step of it, every chirp identically.
  FluidQueueChannel channel{Rate::mbps(10), Rate::mbps(6)};
  PathChirpConfig cfg;
  cfg.chirps = 4;
  PathChirpEstimator chirp{cfg};
  Rng rng{7};
  const auto r = chirp.run(channel, rng);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.low.mbits_per_sec(), 4.0, 4.0 * (cfg.spread_factor - 1.0));
  EXPECT_EQ(r.low, r.high);  // deterministic channel: all chirps agree
}

// -------------------------------------------- gapped streams in channels

TEST(GappedStreams, SimChannelHonorsThePerPacketSchedule) {
  // A gapped StreamSpec through the real simulated path: the sender-side
  // timestamps must follow the exponential schedule exactly (send pacing
  // is schedule-driven, independent of cross traffic).
  scenario::ScenarioSpec spec = scenario::Registry::builtin().at("paper-path");
  spec.seed = 31;
  spec.warmup = Duration::milliseconds(200);
  scenario::ScenarioInstance inst{std::move(spec)};
  inst.start();
  scenario::SimProbeChannel channel{inst.simulator(), inst.path()};

  PathChirpConfig cfg;
  PathChirpEstimator chirp{cfg};
  core::StreamSpec stream;
  stream.stream_id = 0xabc;
  stream.packet_size = cfg.packet_size;
  stream.gaps = chirp.chirp_gaps();
  stream.packet_count = static_cast<int>(stream.gaps.size()) + 1;
  const auto outcome = channel.run_stream(stream);
  ASSERT_EQ(outcome.records.size(), static_cast<std::size_t>(stream.packet_count));
  for (std::size_t i = 1; i < outcome.records.size(); ++i) {
    EXPECT_EQ((outcome.records[i].sent - outcome.records[i - 1].sent).nanos(),
              stream.gaps[i - 1].nanos())
        << i;
  }
}

}  // namespace
}  // namespace pathload::baselines
