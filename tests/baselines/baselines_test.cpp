#include <gtest/gtest.h>

#include "baselines/btc.hpp"
#include "baselines/delphi.hpp"
#include "baselines/dispersion.hpp"
#include "baselines/topp.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"

namespace pathload::baselines {
namespace {

scenario::PaperPathConfig single_tight_path(double utilization,
                                            Rate capacity = Rate::mbps(10)) {
  scenario::PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = capacity;
  cfg.tight_utilization = utilization;
  cfg.model = sim::Interarrival::kExponential;
  cfg.warmup = Duration::seconds(1);
  return cfg;
}

TEST(Cprobe, DispersionRateBetweenAvailBwAndCapacity) {
  scenario::Testbed bed{single_tight_path(0.6)};  // A = 4, C = 10
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  const Rate adr = CprobeEstimator{}.measure(ch);
  EXPECT_GT(adr.mbits_per_sec(), 4.0);
  EXPECT_LT(adr.mbits_per_sec(), 10.5);
}

TEST(Cprobe, OverestimatesAvailBwUnderLoad) {
  // The paper's central critique of cprobe (Section II): train dispersion
  // measures the ADR, not the avail-bw; under load ADR sits well above A.
  scenario::Testbed bed{single_tight_path(0.75)};  // A = 2.5
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  const Rate adr = CprobeEstimator{}.measure(ch);
  EXPECT_GT(adr.mbits_per_sec(), 2.5 * 1.3);
}

TEST(Cprobe, MatchesFluidAdrOnCbrTraffic) {
  // With smooth (CBR) cross traffic the packet simulator's dispersion rate
  // should approach the fluid-model prediction R*C/(R+lambda) with R = C
  // (the train saturates the first and only link).
  auto cfg = single_tight_path(0.5);
  cfg.model = sim::Interarrival::kConstant;
  scenario::Testbed bed{cfg};
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  CprobeConfig cp;
  cp.trains = 2;
  const Rate adr = CprobeEstimator{cp}.measure(ch);
  // Train arrives at ~120 Mb/s >> C: exit rate ~ C/(1 + lambda/R_in) ~ C *
  // R/(R + lambda) with R = 120: 10*120/125 = 9.6 Mb/s.
  EXPECT_NEAR(adr.mbits_per_sec(), 9.6, 0.8);
}

TEST(Cprobe, EmptyOutcomeYieldsZero) {
  core::StreamOutcome empty;
  EXPECT_EQ(CprobeEstimator::train_dispersion_rate(empty, 1500), Rate::zero());
}

TEST(PacketPair, EstimatesNarrowLinkCapacity) {
  scenario::Testbed bed{single_tight_path(0.3)};  // C = 10
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  const Rate cap = PacketPairEstimator{}.measure(ch);
  EXPECT_NEAR(cap.mbits_per_sec(), 10.0, 1.5);
}

TEST(PacketPair, CapacityNotAvailBw) {
  // Packet pairs measure C regardless of load — another "what dispersion
  // really measures" data point.
  scenario::Testbed bed{single_tight_path(0.7)};  // A = 3, C = 10
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  const Rate cap = PacketPairEstimator{}.measure(ch);
  EXPECT_GT(cap.mbits_per_sec(), 7.0);
}

TEST(Topp, EstimatesAvailBwAndCapacityOnSmoothTraffic) {
  auto cfg = single_tight_path(0.5);  // A = 5, C = 10
  cfg.model = sim::Interarrival::kConstant;
  scenario::Testbed bed{cfg};
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  ToppConfig tc;
  tc.min_rate = Rate::mbps(2);
  tc.max_rate = Rate::mbps(16);
  tc.step = Rate::mbps(0.5);
  tc.packets_per_train = 50;
  tc.trains_per_rate = 8;  // averages out CBR phase-alignment noise
  const auto est = ToppEstimator{tc}.measure(ch);
  ASSERT_TRUE(est.valid);
  EXPECT_NEAR(est.avail_bw.mbits_per_sec(), 5.0, 1.5);
  // The capacity comes from the regression slope and is the noisier of the
  // two estimates for finite trains.
  EXPECT_NEAR(est.capacity.mbits_per_sec(), 10.0, 3.5);
}

TEST(Topp, SweepShowsKneeAtAvailBw) {
  auto cfg = single_tight_path(0.5);
  cfg.model = sim::Interarrival::kConstant;
  scenario::Testbed bed{cfg};
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  ToppConfig tc;
  tc.min_rate = Rate::mbps(2);
  tc.max_rate = Rate::mbps(14);
  tc.step = Rate::mbps(1);
  tc.packets_per_train = 50;
  const auto est = ToppEstimator{tc}.measure(ch);
  // Below A: Ro/Rm ~ 1 (within the transient expansion a finite train sees
  // as its own load pushes the queue toward a new steady state). Well
  // above A: Ro/Rm clearly > 1, and growing with Ro.
  double below_worst = 0.0;
  double above_best = 0.0;
  for (const auto& [ro, rm] : est.sweep) {
    const double ratio = ro / rm;
    if (ro < Rate::mbps(4)) below_worst = std::max(below_worst, ratio);
    if (ro > Rate::mbps(8)) above_best = std::max(above_best, ratio);
  }
  EXPECT_LT(below_worst, 1.15);
  EXPECT_GT(above_best, 1.2);
  EXPECT_GT(above_best, below_worst + 0.1);
}

TEST(Topp, InvalidWhenSweepNeverExceedsAvailBw) {
  auto cfg = single_tight_path(0.2);  // A = 8
  cfg.model = sim::Interarrival::kConstant;
  scenario::Testbed bed{cfg};
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  ToppConfig tc;
  tc.min_rate = Rate::mbps(1);
  tc.max_rate = Rate::mbps(4);  // all below A
  tc.step = Rate::mbps(1);
  const auto est = ToppEstimator{tc}.measure(ch);
  EXPECT_FALSE(est.valid);
}

TEST(Delphi, TracksCrossTrafficOnSingleQueuePath) {
  // Delphi's assumed world: one queue of known capacity. On that topology
  // the pair identity recovers the cross-traffic rate reasonably well —
  // helped, at this operating point, by the drained-queue anchor
  // (C - L/din = 6 Mb/s) sitting near the true lambda = 5 Mb/s; the
  // baselines_table bench shows the bias once load moves away from it.
  auto cfg = single_tight_path(0.5);  // C = 10, lambda = 5, A = 5
  scenario::Testbed bed{cfg};
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  DelphiConfig dc;
  dc.capacity = Rate::mbps(10);
  const auto est = DelphiEstimator{dc}.measure(ch);
  ASSERT_TRUE(est.valid);
  EXPECT_GT(est.usable_pairs, 30);
  EXPECT_NEAR(est.cross_traffic.mbits_per_sec(), 5.0, 1.7);
  EXPECT_NEAR(est.avail_bw.mbits_per_sec(), 5.0, 1.7);
}

TEST(Delphi, MisattributesQueueingWhenTightAndNarrowDiffer) {
  // The paper's Section II critique: with the tight link (10 Mb/s, 60%
  // used -> A = 4) upstream of an idle narrow link (5 Mb/s), Delphi's
  // single-queue model (capacity = the narrow 5 Mb/s a packet-pair tool
  // would report) misreads the tight link's queueing.
  sim::Simulator sim;
  sim::Path path{sim,
                 {{Rate::mbps(10), Duration::milliseconds(10),
                   DataSize::bytes(1'000'000)},
                  {Rate::mbps(5), Duration::milliseconds(10),
                   DataSize::bytes(1'000'000)}}};
  sim::TrafficAggregate cross{sim,  path.link(0), Rate::mbps(6), 10,
                              sim::Interarrival::kExponential,
                              sim::PacketSizeMix::paper_mix(), Rng{5}};
  cross.start();
  sim.run_for(Duration::seconds(1));
  scenario::SimProbeChannel ch{sim, path};
  DelphiConfig dc;
  dc.capacity = Rate::mbps(5);  // what packet-pair would hand it
  dc.packet_size = 400;         // probe rate L/din = 1.6 Mb/s, far from A
  const auto est = DelphiEstimator{dc}.measure(ch);
  // True path avail-bw is 4 Mb/s; the single-queue estimate lands far
  // away: the tight link's queueing is scaled by the wrong capacity and
  // the pairs that saw no expansion anchor the estimate near L/din.
  ASSERT_GT(est.usable_pairs, 0);
  EXPECT_GT(std::abs(est.avail_bw.mbits_per_sec() - 4.0), 1.0);
}

TEST(Delphi, NoUsablePairsIsInvalid) {
  // A channel that loses every second packet leaves no usable pairs.
  class HalfLossChannel final : public core::ProbeChannel {
   public:
    core::StreamOutcome run_stream(const core::StreamSpec& spec) override {
      core::StreamOutcome o;
      o.sent_count = spec.packet_count;
      core::ProbeRecord r;
      r.seq = 0;
      r.sent = now_;
      r.received = now_ + Duration::milliseconds(1);
      o.records.push_back(r);  // only the first packet survives
      now_ += spec.duration();
      return o;
    }
    void idle(Duration d) override { now_ += d; }
    TimePoint now() override { return now_; }
    Duration rtt() const override { return Duration::milliseconds(10); }

   private:
    TimePoint now_{};
  } channel;
  const auto est = DelphiEstimator{}.measure(channel);
  EXPECT_FALSE(est.valid);
  EXPECT_EQ(est.usable_pairs, 0);
}

TEST(Btc, SaturatesQuietPath) {
  scenario::PaperPathConfig cfg = single_tight_path(0.0);
  cfg.tight_capacity = Rate::mbps(8);
  scenario::Testbed bed{cfg};
  bed.start();
  BtcConfig bc;
  bc.duration = Duration::seconds(30);
  const auto result = BtcMeasurement{bc}.run(bed.simulator(), bed.path());
  EXPECT_GT(result.average_throughput.mbits_per_sec(), 6.5);
  EXPECT_FALSE(result.per_bucket.empty());
}

TEST(Btc, PerSecondThroughputIsVariable) {
  // Fig. 15's observation: 1-s BTC throughput varies widely even when the
  // 5-min average saturates the path.
  scenario::PaperPathConfig cfg = single_tight_path(0.4, Rate::mbps(8));
  cfg.buffer_drain = Duration::milliseconds(150);
  scenario::Testbed bed{cfg};
  bed.start();
  BtcConfig bc;
  bc.duration = Duration::seconds(60);
  const auto result = BtcMeasurement{bc}.run(bed.simulator(), bed.path());
  OnlineStats buckets;
  for (const auto& r : result.per_bucket) buckets.add(r.mbits_per_sec());
  EXPECT_GT(buckets.max() - buckets.min(), 1.0);
}

}  // namespace
}  // namespace pathload::baselines
