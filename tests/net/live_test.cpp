#include <gtest/gtest.h>

#include <thread>

#include "core/session.hpp"
#include "core/trend.hpp"
#include "net/live_channel.hpp"
#include "net/live_receiver.hpp"
#include "net/socket.hpp"

namespace pathload::net {
namespace {

/// True if this environment lets us open loopback sockets at all.
bool sockets_available() {
  try {
    auto s = UdpSocket::bind({"127.0.0.1", 0});
    return s.local_port() != 0;
  } catch (...) {
    return false;
  }
}

#define REQUIRE_SOCKETS()                                   \
  if (!sockets_available()) {                               \
    GTEST_SKIP() << "loopback sockets unavailable in this " \
                    "environment";                          \
  }

TEST(Sockets, UdpLoopbackRoundTrip) {
  REQUIRE_SOCKETS();
  auto rx = UdpSocket::bind({"127.0.0.1", 0});
  auto tx = UdpSocket::bind({"127.0.0.1", 0});
  tx.connect({"127.0.0.1", rx.local_port()});
  const std::vector<std::byte> payload(64, std::byte{0x5A});
  tx.send(payload);
  const auto got = rx.recv(Duration::seconds(2));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(Sockets, UdpRecvTimesOut) {
  REQUIRE_SOCKETS();
  auto rx = UdpSocket::bind({"127.0.0.1", 0});
  EXPECT_FALSE(rx.recv(Duration::milliseconds(30)).has_value());
}

TEST(Sockets, UdpReceiveTimestampsAreOrdered) {
  REQUIRE_SOCKETS();
  auto rx = UdpSocket::bind({"127.0.0.1", 0});
  auto tx = UdpSocket::bind({"127.0.0.1", 0});
  tx.connect({"127.0.0.1", rx.local_port()});
  const std::vector<std::byte> payload(32);
  tx.send(payload);
  tx.send(payload);
  const auto a = rx.recv_with_timestamp(Duration::seconds(2));
  const auto b = rx.recv_with_timestamp(Duration::seconds(2));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(a->stamp, b->stamp);
}

TEST(Sockets, TcpFramingRoundTrip) {
  REQUIRE_SOCKETS();
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  const auto port = listener.local_port();
  std::thread client{[port] {
    auto stream = TcpStream::connect({"127.0.0.1", port}, Duration::seconds(2));
    std::vector<std::byte> msg{std::byte{1}, std::byte{2}, std::byte{3}};
    stream.send_frame(msg);
    const auto echoed = stream.recv_frame(Duration::seconds(2));
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(echoed->size(), 3u);
  }};
  auto server = listener.accept(Duration::seconds(2));
  ASSERT_TRUE(server.has_value());
  const auto frame = server->recv_frame(Duration::seconds(2));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, (std::vector<std::byte>{std::byte{1}, std::byte{2}, std::byte{3}}));
  server->send_frame(*frame);
  client.join();
}

TEST(Sockets, TcpZeroLengthFrame) {
  REQUIRE_SOCKETS();
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  const auto port = listener.local_port();
  std::thread client{[port] {
    auto stream = TcpStream::connect({"127.0.0.1", port}, Duration::seconds(2));
    stream.send_frame({});
  }};
  auto server = listener.accept(Duration::seconds(2));
  ASSERT_TRUE(server.has_value());
  const auto frame = server->recv_frame(Duration::seconds(2));
  client.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
}

TEST(Sockets, SleepUntilReachesDeadline) {
  const TimePoint deadline = monotonic_now() + Duration::milliseconds(5);
  sleep_until(deadline);
  EXPECT_GE(monotonic_now(), deadline);
  // And without gross overshoot (scheduler permitting; generous bound).
  EXPECT_LT(monotonic_now() - deadline, Duration::milliseconds(50));
}

TEST(LiveLoopback, SingleStreamDeliversRecords) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};

  {
    LiveProbeChannel channel{{"127.0.0.1", receiver.control_port()}};
    core::StreamSpec spec;
    spec.stream_id = 1;
    spec.packet_count = 50;
    spec.packet_size = 300;
    spec.period = Duration::microseconds(500);
    const auto outcome = channel.run_stream(spec);
    EXPECT_EQ(outcome.sent_count, 50);
    // Loopback should deliver everything.
    EXPECT_GE(outcome.records.size(), 45u);
    // Seq order and sane OWDs.
    for (std::size_t i = 1; i < outcome.records.size(); ++i) {
      EXPECT_LT(outcome.records[i - 1].seq, outcome.records[i].seq);
    }
  }  // ~LiveProbeChannel sends kBye

  rx.join();
}

TEST(LiveLoopback, GappedChirpStreamDeliversRecordsWithShrinkingSendGaps) {
  // A pathchirp-style gapped StreamSpec over the real UDP channel: the
  // sender must pace the explicit per-packet schedule (not the periodic
  // field), and the receiver's records must carry sender timestamps whose
  // spacing tracks the exponentially shrinking gaps.
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};

  {
    LiveProbeChannel channel{{"127.0.0.1", receiver.control_port()}};
    core::StreamSpec spec;
    spec.stream_id = 2;
    spec.packet_size = 300;
    // 8 gaps from 8 ms down to ~1.7 ms: long enough that scheduler jitter
    // (well under a millisecond) cannot invert the ordering check.
    for (int i = 0; i < 8; ++i) {
      spec.gaps.push_back(Duration::microseconds(8000.0 / (1 + 0.8 * i)));
    }
    spec.packet_count = static_cast<int>(spec.gaps.size()) + 1;
    const auto outcome = channel.run_stream(spec);
    EXPECT_EQ(outcome.sent_count, 9);
    ASSERT_GE(outcome.records.size(), 8u);  // loopback: at most 1 straggler
    for (std::size_t i = 1; i < outcome.records.size(); ++i) {
      if (outcome.records[i].seq != outcome.records[i - 1].seq + 1) continue;
      const Duration sent_gap = outcome.records[i].sent - outcome.records[i - 1].sent;
      const Duration want =
          spec.gaps[static_cast<std::size_t>(outcome.records[i - 1].seq)];
      // Absolute-deadline pacing, checked with the same generous bound as
      // SleepUntilReachesDeadline: under a parallel ctest run the sleeps
      // overshoot by several ms, but a sender that ignored the gap list
      // (the periodic field is zero here) would send ~back-to-back, tens
      // of times below the scheduled gaps.
      EXPECT_LT(sent_gap - want, Duration::milliseconds(50)) << i;
      EXPECT_GT(sent_gap, Duration::zero()) << i;
    }
    // The whole send window must be at least most of the schedule: an
    // overshoot on packet k only shifts later deadlines, it cannot shrink
    // the total below the scheduled sum by more than packet 0's own lag.
    const Duration window =
        outcome.records.back().sent - outcome.records.front().sent;
    EXPECT_GT(window, spec.duration() * 0.5);
  }
  rx.join();
}

TEST(LiveLoopback, RttEstimateIsSmallOnLoopback) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};
  {
    LiveProbeChannel channel{{"127.0.0.1", receiver.control_port()}};
    EXPECT_GT(channel.rtt(), Duration::zero());
    EXPECT_LT(channel.rtt(), Duration::milliseconds(100));
  }
  rx.join();
}

TEST(LiveLoopback, FullPathloadSessionOnLoopback) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(30)); }};
  {
    LiveProbeChannel channel{{"127.0.0.1", receiver.control_port()}};
    core::PathloadConfig cfg;
    // Keep the live smoke test quick: short streams, small fleets, coarse
    // resolution. Loopback has effectively unbounded avail-bw, so the tool
    // should report a range near its own maximum rate.
    cfg.packets_per_stream = 30;
    cfg.streams_per_fleet = 3;
    cfg.fleet_fraction = 0.7;
    cfg.omega = Rate::mbps(20);
    cfg.chi = Rate::mbps(30);
    cfg.max_fleets = 10;
    // Loopback "RTT" is microseconds; idling 9 stream-durations between
    // streams still keeps this test fast.
    core::PathloadSession session{cfg};
    const auto result = session.run(channel);
    EXPECT_GT(result.fleets, 0);
    // The loopback path is far faster than the tool's max measurable rate,
    // so the upper bound should sit high.
    EXPECT_GT(result.range.high, Rate::mbps(50));
  }
  rx.join();
}

}  // namespace
}  // namespace pathload::net
