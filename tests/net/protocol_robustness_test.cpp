#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <optional>
#include <thread>

#include "net/live_receiver.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace pathload::net {
namespace {

bool sockets_available() {
  try {
    auto s = UdpSocket::bind({"127.0.0.1", 0});
    return s.local_port() != 0;
  } catch (...) {
    return false;
  }
}

#define REQUIRE_SOCKETS()                                               \
  if (!sockets_available()) {                                           \
    GTEST_SKIP() << "loopback sockets unavailable in this environment"; \
  }

TEST(ProtocolRobustness, ReceiverIgnoresGarbageControlFrames) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  // Garbage type byte, then a truncated StreamStart, then a real Hello:
  // the receiver must survive all of it and still answer the Hello.
  std::vector<std::byte> garbage{std::byte{0xEE}, std::byte{1}, std::byte{2}};
  ctrl.send_frame(garbage);
  std::vector<std::byte> truncated{std::byte{3}, std::byte{0}};  // StreamStart, 1 byte
  ctrl.send_frame(truncated);
  ctrl.send_frame(make_message(MsgType::kHello));
  const auto reply = ctrl.recv_frame(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  const auto msg = parse_message(*reply);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kHelloReply);
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, ReceiverRejectsNonsenseStreamStart) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  StreamStartMsg bogus;
  bogus.stream_id = 1;
  bogus.packet_count = 0;  // invalid
  bogus.packet_size = 300;
  bogus.period_ns = 100'000;
  ctrl.send_frame(make_message(MsgType::kStreamStart, bogus.encode()));
  // No StreamResult should come; an Echo afterwards must still work.
  ctrl.send_frame(make_message(MsgType::kEcho));
  const auto reply = ctrl.recv_frame(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(parse_message(*reply)->type, MsgType::kEchoReply);
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, StreamResultReportsLossWhenPacketsNeverArrive) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(10)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  // Announce a stream but never send the UDP packets: the receiver must
  // time out (duration + 500 ms slack) and report zero records.
  StreamStartMsg start;
  start.stream_id = 7;
  start.packet_count = 10;
  start.packet_size = 300;
  start.period_ns = 1'000'000;  // 10 ms nominal duration
  ctrl.send_frame(make_message(MsgType::kStreamStart, start.encode()));
  const auto reply = ctrl.recv_frame(Duration::seconds(5));
  ASSERT_TRUE(reply.has_value());
  const auto msg = parse_message(*reply);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->type, MsgType::kStreamResult);
  const auto result = StreamResultMsg::decode(msg->payload);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stream_id, 7u);
  EXPECT_TRUE(result->records.empty());
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, ForeignUdpPacketsAreIgnored) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(10)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  auto udp = UdpSocket::bind({"127.0.0.1", 0});
  udp.connect({"127.0.0.1", receiver.probe_port()});

  StreamStartMsg start;
  start.stream_id = 9;
  start.packet_count = 3;
  start.packet_size = 300;
  start.period_ns = 1'000'000;
  ctrl.send_frame(make_message(MsgType::kStreamStart, start.encode()));

  // Noise: wrong magic, wrong stream id, then the real packets.
  std::vector<std::byte> noise(300, std::byte{0x42});
  udp.send(noise);
  std::vector<std::byte> wrong_stream(300);
  write_probe_header(wrong_stream, ProbeHeader{999, 0, 123});
  udp.send(wrong_stream);
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::vector<std::byte> pkt(300);
    write_probe_header(pkt, ProbeHeader{9, i, static_cast<std::int64_t>(1000 + i)});
    udp.send(pkt);
  }

  const auto reply = ctrl.recv_frame(Duration::seconds(5));
  ASSERT_TRUE(reply.has_value());
  const auto result = StreamResultMsg::decode(parse_message(*reply)->payload);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->records.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result->records[i].seq, i);
  }
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, CorruptStreamStartWithHugePacketCountIsRejected) {
  // The decode-side cap: a packet_count that would reserve gigabytes is
  // malformed input, not a big request.
  StreamStartMsg huge;
  huge.stream_id = 1;
  huge.packet_count = 2'000'000;
  huge.packet_size = 300;
  huge.period_ns = 100'000;
  EXPECT_FALSE(StreamStartMsg::decode(huge.encode()).has_value());

  // And the receiver treats it like any other malformed announcement:
  // skipped, session alive.
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};
  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  ctrl.send_frame(make_message(MsgType::kStreamStart, huge.encode()));
  ctrl.send_frame(make_message(MsgType::kEcho));
  const auto reply = ctrl.recv_frame(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(parse_message(*reply)->type, MsgType::kEchoReply);
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, OversizedFrameHeaderAbortsTheSession) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  int streams = -1;
  std::thread rx{[&receiver, &streams] {
    streams = receiver.serve_one_session(Duration::seconds(5));
  }};
  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  // A raw length prefix far past the control-frame cap, with no body. The
  // receiver must not allocate for it or wait for the body: it aborts with
  // a reason and closes.
  const unsigned char prefix[4] = {0x00, 0x00, 0x10, 0x00};  // LE 1 MiB
  ASSERT_EQ(::send(ctrl.fd(), prefix, sizeof prefix, 0),
            static_cast<ssize_t>(sizeof prefix));

  const auto reply = ctrl.recv_frame(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  const auto msg = parse_message(*reply);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kAbort);
  EXPECT_EQ(abort_reason(msg->payload), "oversized control frame");
  rx.join();
  EXPECT_EQ(streams, 0);
}

TEST(ProtocolRobustness, MidStreamDisconnectEndsTheSessionCleanly) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  int streams = -1;
  std::thread rx{[&receiver, &streams] {
    streams = receiver.serve_one_session(Duration::seconds(5));
  }};
  std::optional<TcpStream> ctrl{TcpStream::connect(
      {"127.0.0.1", receiver.control_port()}, Duration::seconds(2))};
  ctrl->send_frame(make_message(MsgType::kHello));
  ASSERT_TRUE(ctrl->recv_frame(Duration::seconds(2)).has_value());
  // Drop the connection without a kBye: the receiver must notice the close
  // and return instead of spinning on timeouts.
  ctrl.reset();
  rx.join();
  EXPECT_EQ(streams, 0);
}

TEST(ProtocolRobustness, RecvFrameExDistinguishesTimeoutClosedAndTooLarge) {
  REQUIRE_SOCKETS();
  auto listener = TcpListener::bind({"127.0.0.1", 0});
  auto client = TcpStream::connect({"127.0.0.1", listener.local_port()},
                                   Duration::seconds(2));
  auto server = listener.accept(Duration::seconds(2));
  ASSERT_TRUE(server.has_value());

  // Nothing sent yet: timeout.
  EXPECT_EQ(server->recv_frame_ex(Duration::milliseconds(50)).status,
            FrameStatus::kTimeout);

  // A frame larger than the caller's cap: kTooLarge from recv_frame_ex,
  // std::length_error from the legacy wrapper.
  std::vector<std::byte> big(1024, std::byte{7});
  client.send_frame(big);
  EXPECT_EQ(server->recv_frame_ex(Duration::seconds(1), /*max_len=*/256).status,
            FrameStatus::kTooLarge);
  // (A fresh connection: the first stream is mid-frame after the cap hit.)
  auto client2 = TcpStream::connect({"127.0.0.1", listener.local_port()},
                                    Duration::seconds(2));
  auto server2 = listener.accept(Duration::seconds(2));
  ASSERT_TRUE(server2.has_value());
  client2.send_frame(big);
  EXPECT_THROW(server2->recv_frame(Duration::seconds(1), /*max_len=*/256),
               std::length_error);

  // Orderly shutdown: kClosed, not a timeout.
  {
    auto client3 = TcpStream::connect({"127.0.0.1", listener.local_port()},
                                      Duration::seconds(2));
    auto server3 = listener.accept(Duration::seconds(2));
    ASSERT_TRUE(server3.has_value());
    { TcpStream gone = std::move(client3); }  // close
    EXPECT_EQ(server3->recv_frame_ex(Duration::seconds(2)).status,
              FrameStatus::kClosed);
  }
}

TEST(ProtocolRobustness, AbortMessageRoundTripsItsReason) {
  const auto frame = make_abort("idle timeout");
  const auto msg = parse_message(frame);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kAbort);
  EXPECT_EQ(abort_reason(msg->payload), "idle timeout");
  // Reason-less abort is legal.
  const auto bare = parse_message(make_abort(""));
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(abort_reason(bare->payload), "");
}

}  // namespace
}  // namespace pathload::net
