#include <gtest/gtest.h>

#include <thread>

#include "net/live_receiver.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace pathload::net {
namespace {

bool sockets_available() {
  try {
    auto s = UdpSocket::bind({"127.0.0.1", 0});
    return s.local_port() != 0;
  } catch (...) {
    return false;
  }
}

#define REQUIRE_SOCKETS()                                               \
  if (!sockets_available()) {                                           \
    GTEST_SKIP() << "loopback sockets unavailable in this environment"; \
  }

TEST(ProtocolRobustness, ReceiverIgnoresGarbageControlFrames) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  // Garbage type byte, then a truncated StreamStart, then a real Hello:
  // the receiver must survive all of it and still answer the Hello.
  std::vector<std::byte> garbage{std::byte{0xEE}, std::byte{1}, std::byte{2}};
  ctrl.send_frame(garbage);
  std::vector<std::byte> truncated{std::byte{3}, std::byte{0}};  // StreamStart, 1 byte
  ctrl.send_frame(truncated);
  ctrl.send_frame(make_message(MsgType::kHello));
  const auto reply = ctrl.recv_frame(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  const auto msg = parse_message(*reply);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::kHelloReply);
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, ReceiverRejectsNonsenseStreamStart) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(5)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  StreamStartMsg bogus;
  bogus.stream_id = 1;
  bogus.packet_count = 0;  // invalid
  bogus.packet_size = 300;
  bogus.period_ns = 100'000;
  ctrl.send_frame(make_message(MsgType::kStreamStart, bogus.encode()));
  // No StreamResult should come; an Echo afterwards must still work.
  ctrl.send_frame(make_message(MsgType::kEcho));
  const auto reply = ctrl.recv_frame(Duration::seconds(2));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(parse_message(*reply)->type, MsgType::kEchoReply);
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, StreamResultReportsLossWhenPacketsNeverArrive) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(10)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  // Announce a stream but never send the UDP packets: the receiver must
  // time out (duration + 500 ms slack) and report zero records.
  StreamStartMsg start;
  start.stream_id = 7;
  start.packet_count = 10;
  start.packet_size = 300;
  start.period_ns = 1'000'000;  // 10 ms nominal duration
  ctrl.send_frame(make_message(MsgType::kStreamStart, start.encode()));
  const auto reply = ctrl.recv_frame(Duration::seconds(5));
  ASSERT_TRUE(reply.has_value());
  const auto msg = parse_message(*reply);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->type, MsgType::kStreamResult);
  const auto result = StreamResultMsg::decode(msg->payload);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stream_id, 7u);
  EXPECT_TRUE(result->records.empty());
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

TEST(ProtocolRobustness, ForeignUdpPacketsAreIgnored) {
  REQUIRE_SOCKETS();
  LiveReceiver receiver;
  std::thread rx{[&receiver] { receiver.serve_one_session(Duration::seconds(10)); }};

  auto ctrl = TcpStream::connect({"127.0.0.1", receiver.control_port()},
                                 Duration::seconds(2));
  auto udp = UdpSocket::bind({"127.0.0.1", 0});
  udp.connect({"127.0.0.1", receiver.probe_port()});

  StreamStartMsg start;
  start.stream_id = 9;
  start.packet_count = 3;
  start.packet_size = 300;
  start.period_ns = 1'000'000;
  ctrl.send_frame(make_message(MsgType::kStreamStart, start.encode()));

  // Noise: wrong magic, wrong stream id, then the real packets.
  std::vector<std::byte> noise(300, std::byte{0x42});
  udp.send(noise);
  std::vector<std::byte> wrong_stream(300);
  write_probe_header(wrong_stream, ProbeHeader{999, 0, 123});
  udp.send(wrong_stream);
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::vector<std::byte> pkt(300);
    write_probe_header(pkt, ProbeHeader{9, i, static_cast<std::int64_t>(1000 + i)});
    udp.send(pkt);
  }

  const auto reply = ctrl.recv_frame(Duration::seconds(5));
  ASSERT_TRUE(reply.has_value());
  const auto result = StreamResultMsg::decode(parse_message(*reply)->payload);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->records.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result->records[i].seq, i);
  }
  ctrl.send_frame(make_message(MsgType::kBye));
  rx.join();
}

}  // namespace
}  // namespace pathload::net
