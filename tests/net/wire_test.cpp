#include <gtest/gtest.h>

#include "net/wire.hpp"

namespace pathload::net {
namespace {

TEST(Wire, StreamStartRoundTrip) {
  StreamStartMsg m;
  m.stream_id = 42;
  m.packet_count = 100;
  m.packet_size = 300;
  m.period_ns = 180'000;
  const auto decoded = StreamStartMsg::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stream_id, 42u);
  EXPECT_EQ(decoded->packet_count, 100u);
  EXPECT_EQ(decoded->packet_size, 300u);
  EXPECT_EQ(decoded->period_ns, 180'000);
}

TEST(Wire, StreamStartRejectsTruncated) {
  StreamStartMsg m;
  m.packet_count = 100;
  m.packet_size = 300;
  m.period_ns = 1;
  auto bytes = m.encode();
  bytes.pop_back();
  EXPECT_FALSE(StreamStartMsg::decode(bytes).has_value());
}

TEST(Wire, StreamStartRejectsNonsense) {
  StreamStartMsg zero_packets;
  zero_packets.packet_count = 0;
  zero_packets.packet_size = 300;
  zero_packets.period_ns = 1;
  EXPECT_FALSE(StreamStartMsg::decode(zero_packets.encode()).has_value());

  StreamStartMsg tiny_packet;
  tiny_packet.packet_count = 10;
  tiny_packet.packet_size = 4;  // smaller than the probe header
  tiny_packet.period_ns = 1;
  EXPECT_FALSE(StreamStartMsg::decode(tiny_packet.encode()).has_value());
}

TEST(Wire, StreamStartSpecConversionRoundTrip) {
  core::StreamSpec spec;
  spec.stream_id = 7;
  spec.packet_count = 50;
  spec.packet_size = 964;
  spec.period = Duration::microseconds(250);
  const auto spec2 = StreamStartMsg::from_spec(spec).to_spec();
  EXPECT_EQ(spec2.stream_id, spec.stream_id);
  EXPECT_EQ(spec2.packet_count, spec.packet_count);
  EXPECT_EQ(spec2.packet_size, spec.packet_size);
  EXPECT_EQ(spec2.period, spec.period);
}

TEST(Wire, StreamResultRoundTrip) {
  StreamResultMsg m;
  m.stream_id = 9;
  for (std::uint32_t i = 0; i < 5; ++i) {
    core::ProbeRecord r;
    r.seq = i;
    r.sent = TimePoint::from_nanos(1000 + i);
    r.received = TimePoint::from_nanos(2000 + i * 3);
    m.records.push_back(r);
  }
  const auto decoded = StreamResultMsg::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stream_id, 9u);
  ASSERT_EQ(decoded->records.size(), 5u);
  EXPECT_EQ(decoded->records[4].seq, 4u);
  EXPECT_EQ(decoded->records[4].sent.nanos(), 1004);
  EXPECT_EQ(decoded->records[4].received.nanos(), 2012);
}

TEST(Wire, StreamResultRejectsBogusCount) {
  ByteWriter w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2'000'000);  // claims 2M records with no data
  EXPECT_FALSE(StreamResultMsg::decode(w.take()).has_value());
}

TEST(Wire, MessageFraming) {
  const auto msg = make_message(MsgType::kEcho);
  const auto parsed = parse_message(msg);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, MsgType::kEcho);
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(Wire, MessageRejectsUnknownType) {
  std::vector<std::byte> bogus{std::byte{0xEE}};
  EXPECT_FALSE(parse_message(bogus).has_value());
  EXPECT_FALSE(parse_message({}).has_value());
}

TEST(Wire, ProbeHeaderRoundTrip) {
  std::vector<std::byte> packet(200);
  ProbeHeader h;
  h.stream_id = 3;
  h.seq = 77;
  h.sent_ns = 123456789;
  write_probe_header(packet, h);
  const auto parsed = read_probe_header(packet);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stream_id, 3u);
  EXPECT_EQ(parsed->seq, 77u);
  EXPECT_EQ(parsed->sent_ns, 123456789);
}

TEST(Wire, ProbeHeaderRejectsForeignPackets) {
  std::vector<std::byte> junk(200, std::byte{0xAB});
  EXPECT_FALSE(read_probe_header(junk).has_value());
  std::vector<std::byte> tiny(8);
  EXPECT_FALSE(read_probe_header(tiny).has_value());
}

}  // namespace
}  // namespace pathload::net
