#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "net/live_channel.hpp"
#include "util/rng.hpp"

namespace pathload::net {
namespace {

// A stub Rng state whose next uniform() is pinned by seeding: Rng{seed} is
// deterministic, so we probe the jitter envelope with many draws instead.

TEST(HandshakeBackoff, DoublesUntilTheCap) {
  LiveChannelConfig cfg;
  cfg.backoff_base = Duration::milliseconds(100);
  cfg.backoff_cap = Duration::seconds(2);
  // Pre-jitter delays: 100ms, 200ms, 400ms, 800ms, 1.6s, 2s, 2s, ...
  const double expected[] = {0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0, 2.0};
  Rng rng{1};
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double d = expected[attempt];
    const Duration got = handshake_backoff(cfg, attempt, rng);
    EXPECT_GE(got.secs(), d * 0.5 - 1e-9) << "attempt " << attempt;
    EXPECT_LE(got.secs(), d + 1e-9) << "attempt " << attempt;
  }
}

TEST(HandshakeBackoff, JitterCoversHalfToFull) {
  // Over many draws the jittered delay must span (d/2, d), not collapse to
  // a point: min near d/2, max near d.
  LiveChannelConfig cfg;
  cfg.backoff_base = Duration::seconds(1);
  cfg.backoff_cap = Duration::seconds(1);
  Rng rng{7};
  double lo = 1e9;
  double hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double s = handshake_backoff(cfg, 0, rng).secs();
    ASSERT_GE(s, 0.5 - 1e-9);
    ASSERT_LE(s, 1.0 + 1e-9);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_LT(lo, 0.51);
  EXPECT_GT(hi, 0.99);
}

TEST(HandshakeBackoff, HugeAttemptCountsSaturateAtTheCap) {
  // The old pow(2, attempt) overflowed to +inf for large attempts and was
  // UB-adjacent through the double->Duration conversion; the shift form
  // must clamp. Probe the exact boundary and far past it.
  LiveChannelConfig cfg;
  cfg.backoff_base = Duration::milliseconds(100);
  cfg.backoff_cap = Duration::seconds(2);
  Rng rng{3};
  for (const int attempt : {31, 32, 62, 63, 64, 1000, 1 << 30, INT32_MAX}) {
    const Duration got = handshake_backoff(cfg, attempt, rng);
    EXPECT_GE(got.secs(), 1.0 - 1e-9) << "attempt " << attempt;
    EXPECT_LE(got.secs(), 2.0 + 1e-9) << "attempt " << attempt;
  }
}

TEST(HandshakeBackoff, NegativeAttemptClampsToBase) {
  LiveChannelConfig cfg;
  cfg.backoff_base = Duration::milliseconds(100);
  cfg.backoff_cap = Duration::seconds(2);
  Rng rng{5};
  const Duration got = handshake_backoff(cfg, -4, rng);
  EXPECT_GE(got.secs(), 0.05 - 1e-9);
  EXPECT_LE(got.secs(), 0.1 + 1e-9);
}

TEST(HandshakeBackoff, DeterministicForAFixedSeed) {
  LiveChannelConfig cfg;
  Rng a{42};
  Rng b{42};
  for (int attempt = 0; attempt < 6; ++attempt) {
    EXPECT_EQ(handshake_backoff(cfg, attempt, a).nanos(),
              handshake_backoff(cfg, attempt, b).nanos());
  }
}

}  // namespace
}  // namespace pathload::net
