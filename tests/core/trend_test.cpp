#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/trend.hpp"
#include "util/rng.hpp"

namespace pathload::core {
namespace {

/// Binary either-OR detection on the unfiltered series (the ToN text's
/// simplified description; kCombined is the released tool's rule).
TrendConfig raw_cfg() {
  TrendConfig cfg;
  cfg.median_filter = false;
  cfg.mode = TrendConfig::Mode::kEither;
  return cfg;
}

std::vector<double> linear_series(int n, double slope, double start = 0.0) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = start + slope * i;
  return v;
}

TEST(MedianGroups, SqrtKGrouping) {
  // K = 100 -> group size 10 -> 10 medians.
  std::vector<double> owds(100, 1.0);
  EXPECT_EQ(median_groups(owds).size(), 10u);
}

TEST(MedianGroups, ShortSeriesPassThrough) {
  const std::vector<double> owds{1.0, 2.0, 3.0};
  EXPECT_EQ(median_groups(owds), owds);
}

TEST(MedianGroups, MediansOfConsecutiveGroups) {
  // 9 values, group size 3: medians of {1,9,2}, {3,8,4}, {5,7,6}.
  const std::vector<double> owds{1, 9, 2, 3, 8, 4, 5, 7, 6};
  const auto m = median_groups(owds);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
  EXPECT_DOUBLE_EQ(m[2], 6.0);
}

TEST(MedianGroups, SuppressesOutliers) {
  // A strongly increasing series with occasional huge negative outliers:
  // group medians restore monotonicity.
  auto owds = linear_series(100, 1.0);
  for (std::size_t i = 5; i < owds.size(); i += 10) owds[i] = -1000.0;
  const auto m = median_groups(owds);
  for (std::size_t i = 1; i < m.size(); ++i) EXPECT_GT(m[i], m[i - 1]);
}

TEST(ComputeTrend, StrictlyIncreasingSeries) {
  const auto stats = compute_trend(linear_series(100, 0.5), raw_cfg());
  EXPECT_DOUBLE_EQ(stats.pct, 1.0);
  EXPECT_DOUBLE_EQ(stats.pdt, 1.0);
}

TEST(ComputeTrend, StrictlyDecreasingSeries) {
  const auto stats = compute_trend(linear_series(100, -0.5), raw_cfg());
  EXPECT_DOUBLE_EQ(stats.pct, 0.0);
  EXPECT_DOUBLE_EQ(stats.pdt, -1.0);
}

TEST(ComputeTrend, IndependentOwdsNearNeutral) {
  // Paper: for independent OWDs E[PCT] = 0.5 and E[PDT] = 0.
  Rng rng{101};
  double pct_sum = 0.0;
  double pdt_sum = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> owds(100);
    for (auto& x : owds) x = rng.uniform();
    const auto stats = compute_trend(owds, raw_cfg());
    pct_sum += stats.pct;
    pdt_sum += stats.pdt;
  }
  EXPECT_NEAR(pct_sum / trials, 0.5, 0.02);
  EXPECT_NEAR(pdt_sum / trials, 0.0, 0.05);
}

TEST(ComputeTrend, ConstantSeriesIsNonIncreasing) {
  const auto stats = compute_trend(std::vector<double>(100, 3.0), raw_cfg());
  EXPECT_DOUBLE_EQ(stats.pct, 0.0);  // no pair strictly increasing
  EXPECT_DOUBLE_EQ(stats.pdt, 0.0);  // zero absolute variation -> neutral
}

TEST(ComputeTrend, TooShortSeriesIsNeutral) {
  const auto stats = compute_trend(std::vector<double>{1.0}, raw_cfg());
  EXPECT_DOUBLE_EQ(stats.pct, 0.5);
  EXPECT_DOUBLE_EQ(stats.pdt, 0.0);
  EXPECT_EQ(classify_stream(stats, raw_cfg()), StreamClass::kNonIncreasing);
}

TEST(ComputeTrend, NoisyIncreasingTrendDetected) {
  // Increasing trend with noise of comparable scale: PCT/PDT with median
  // preprocessing should still see it (the Fig. 1 situation).
  Rng rng{7};
  std::vector<double> owds(100);
  for (int i = 0; i < 100; ++i) {
    owds[static_cast<std::size_t>(i)] = 0.05 * i + rng.uniform(-1.0, 1.0);
  }
  TrendConfig cfg;  // median filter on
  EXPECT_EQ(classify_owds(owds, cfg), StreamClass::kIncreasing);
}

TEST(ComputeTrend, NoiseOnlySeriesNotIncreasing) {
  Rng rng{9};
  std::vector<double> owds(100);
  for (auto& x : owds) x = rng.uniform(-1.0, 1.0);
  TrendConfig cfg;  // kCombined: noise must never vote "increasing"
  EXPECT_NE(classify_owds(owds, cfg), StreamClass::kIncreasing);
}

TEST(ClassifyStream, CombinedModeVotes) {
  TrendConfig cfg;  // defaults: pct 0.55/band 0.10, pdt 0.40/band 0.10
  TrendStats stats;

  // Both metrics clearly increasing -> type I.
  stats.pct = 0.9;
  stats.pdt = 0.9;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kIncreasing);

  // Both clearly non-increasing -> type N.
  stats.pct = 0.2;
  stats.pdt = -0.2;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kNonIncreasing);

  // One increasing, one abstaining -> type I.
  stats.pct = 0.9;
  stats.pdt = 0.35;  // in (0.30, 0.40]: ambiguous
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kIncreasing);

  // One non-increasing, one abstaining -> type N.
  stats.pct = 0.50;  // in (0.45, 0.55]: ambiguous
  stats.pdt = 0.1;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kNonIncreasing);

  // Conflict -> discard.
  stats.pct = 0.9;
  stats.pdt = -0.5;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kDiscard);

  // Double abstention -> discard.
  stats.pct = 0.50;
  stats.pdt = 0.35;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kDiscard);
}

TEST(ClassifyStream, CombinedModeSuppressesPctOnlyFalsePositives) {
  // The failure mode that motivates the combined rule: a noisy series with
  // PCT slightly above threshold but flat PDT must not count as type I.
  TrendConfig cfg;
  TrendStats stats;
  stats.pct = 0.60;   // above 0.55: PCT alone would say increasing
  stats.pdt = 0.05;   // flat
  EXPECT_NE(classify_stream(stats, cfg), StreamClass::kIncreasing);
  TrendConfig either = cfg;
  either.mode = TrendConfig::Mode::kEither;
  EXPECT_EQ(classify_stream(stats, either), StreamClass::kIncreasing);
}

TEST(ComputeTrend, MedianFilterReducesGroupCount) {
  TrendConfig cfg;
  const auto stats = compute_trend(linear_series(100, 1.0), cfg);
  EXPECT_EQ(stats.groups, 10);
  const auto raw = compute_trend(linear_series(100, 1.0), raw_cfg());
  EXPECT_EQ(raw.groups, 100);
}

TEST(ClassifyStream, PctThresholdBoundary) {
  TrendConfig cfg = raw_cfg();
  cfg.mode = TrendConfig::Mode::kPctOnly;
  TrendStats stats;
  stats.pct = cfg.pct_threshold;  // not strictly above
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kNonIncreasing);
  stats.pct = cfg.pct_threshold + 0.01;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kIncreasing);
}

TEST(ClassifyStream, PdtThresholdBoundary) {
  TrendConfig cfg = raw_cfg();
  cfg.mode = TrendConfig::Mode::kPdtOnly;
  TrendStats stats;
  stats.pdt = cfg.pdt_threshold;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kNonIncreasing);
  stats.pdt = cfg.pdt_threshold + 0.01;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kIncreasing);
}

TEST(ClassifyStream, EitherModeNeedsOnlyOneMetric) {
  TrendConfig cfg = raw_cfg();  // kEither
  TrendStats stats;
  stats.pct = 0.9;
  stats.pdt = -0.5;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kIncreasing);
  stats.pct = 0.1;
  stats.pdt = 0.9;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kIncreasing);
  stats.pct = 0.1;
  stats.pdt = 0.1;
  EXPECT_EQ(classify_stream(stats, cfg), StreamClass::kNonIncreasing);
}

// The complementarity the paper mentions: PCT catches gradual many-step
// trends that PDT misses when variation is high; PDT catches strong
// start-to-end jumps that PCT misses when steps alternate.
TEST(ClassifyStream, PctCatchesWhatPdtMisses) {
  // Alternating up-up-down walk: most pairs increase (PCT high) but the
  // total displacement is small relative to absolute variation (PDT low).
  std::vector<double> owds;
  double x = 0.0;
  for (int i = 0; i < 99; ++i) {
    x += (i % 3 == 2) ? -1.8 : 1.0;
    owds.push_back(x);
  }
  const auto stats = compute_trend(owds, raw_cfg());
  EXPECT_GT(stats.pct, 0.55);
  EXPECT_LT(stats.pdt, 0.4);
}

TEST(ClassifyStream, PdtCatchesWhatPctMisses) {
  // Rare large jumps between flat plateaus: few increasing pairs (PCT low)
  // but the start-to-end displacement dominates (PDT high).
  std::vector<double> owds;
  for (int plateau = 0; plateau < 5; ++plateau) {
    for (int i = 0; i < 20; ++i) {
      owds.push_back(plateau * 10.0 - 0.01 * i);  // slight downward drift
    }
  }
  const auto stats = compute_trend(owds, raw_cfg());
  EXPECT_LT(stats.pct, 0.55);
  EXPECT_GT(stats.pdt, 0.4);
}

// Property sweep: for a clean linear trend of any positive slope, both
// metrics saturate regardless of magnitude (scale invariance).
class TrendScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(TrendScaleInvariance, SlopeMagnitudeIrrelevant) {
  const auto stats = compute_trend(linear_series(100, GetParam()), TrendConfig{});
  EXPECT_DOUBLE_EQ(stats.pct, 1.0);
  EXPECT_DOUBLE_EQ(stats.pdt, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Slopes, TrendScaleInvariance,
                         ::testing::Values(1e-9, 1e-6, 1e-3, 1.0, 1e3));

}  // namespace
}  // namespace pathload::core
