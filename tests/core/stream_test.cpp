#include <gtest/gtest.h>

#include "core/stream.hpp"

namespace pathload::core {
namespace {

PathloadConfig default_cfg() { return PathloadConfig{}; }

TEST(MakeStreamSpec, MidRangeUsesMinPeriod) {
  // R = 40 Mb/s with T = 100 us -> L = 500 B (within [200, 1500]).
  const auto spec = make_stream_spec(Rate::mbps(40), default_cfg());
  EXPECT_EQ(spec.packet_size, 500);
  EXPECT_NEAR(spec.period.micros(), 100.0, 0.5);
  EXPECT_NEAR(spec.rate().mbits_per_sec(), 40.0, 0.1);
}

TEST(MakeStreamSpec, LowRateStretchesPeriod) {
  // R = 1 Mb/s -> L would be 12.5 B; clamp L = 200 B, T = 1.6 ms.
  const auto spec = make_stream_spec(Rate::mbps(1), default_cfg());
  EXPECT_EQ(spec.packet_size, 200);
  EXPECT_NEAR(spec.period.millis(), 1.6, 0.01);
  EXPECT_NEAR(spec.rate().mbits_per_sec(), 1.0, 0.01);
}

TEST(MakeStreamSpec, HighRateUsesMaxPacketSize) {
  // R = 60 Mb/s -> L would be 750 B? No: 60e6 * 100e-6 / 8 = 750 B. Use
  // a higher rate: 150 Mb/s -> L = 1875 B > 1500 -> clamp, T = 80 us < Tmin
  // -> T = Tmin, achieved rate = 120 Mb/s (the tool maximum).
  const auto spec = make_stream_spec(Rate::mbps(150), default_cfg());
  EXPECT_EQ(spec.packet_size, 1500);
  EXPECT_EQ(spec.period, Duration::microseconds(100));
  EXPECT_NEAR(spec.rate().mbits_per_sec(), 120.0, 0.1);
}

TEST(MakeStreamSpec, MaxRateMatchesConfigFormula) {
  const auto cfg = default_cfg();
  EXPECT_NEAR(cfg.max_rate().mbits_per_sec(), 120.0, 1e-9);
  const auto spec = make_stream_spec(cfg.max_rate(), cfg);
  EXPECT_NEAR(spec.rate().mbits_per_sec(), 120.0, 0.1);
}

TEST(MakeStreamSpec, RejectsNonPositiveRate) {
  EXPECT_THROW(make_stream_spec(Rate::zero(), default_cfg()), std::invalid_argument);
}

TEST(MakeStreamSpec, AchievedRateTracksRequested) {
  const auto cfg = default_cfg();
  for (double r = 0.5; r <= 120.0; r *= 1.7) {
    const auto spec = make_stream_spec(Rate::mbps(r), cfg);
    EXPECT_NEAR(spec.rate().mbits_per_sec(), r, r * 0.02) << "R = " << r;
    EXPECT_GE(spec.packet_size, cfg.min_packet_size);
    EXPECT_LE(spec.packet_size, cfg.max_packet_size);
    EXPECT_GE(spec.period, cfg.min_period);
  }
}

TEST(StreamSpec, DurationIsPacketsTimesPeriod) {
  StreamSpec spec;
  spec.packet_count = 100;
  spec.period = Duration::microseconds(180);
  EXPECT_EQ(spec.duration(), Duration::milliseconds(18));
}

TEST(StreamSpec, GappedScheduleOverridesThePeriodicForm) {
  // The chirp form: explicit per-packet gaps. Offsets are the prefix
  // sums, the duration is the send window, and the rate is the average
  // over it; the periodic fields are ignored while gaps are present.
  StreamSpec spec;
  spec.packet_count = 4;
  spec.packet_size = 1000;
  spec.period = Duration::seconds(99);  // must be ignored
  spec.gaps = {Duration::milliseconds(8), Duration::milliseconds(4),
               Duration::milliseconds(2)};
  EXPECT_FALSE(spec.periodic());
  EXPECT_EQ(spec.send_offset(0), Duration::zero());
  EXPECT_EQ(spec.send_offset(1), Duration::milliseconds(8));
  EXPECT_EQ(spec.send_offset(3), Duration::milliseconds(14));
  EXPECT_EQ(spec.duration(), Duration::milliseconds(14));
  // 4 kB over 14 ms.
  EXPECT_NEAR(spec.rate().mbits_per_sec(), 4 * 8000.0 / 14e-3 / 1e6, 1e-9);

  StreamSpec periodic;
  periodic.packet_count = 4;
  periodic.period = Duration::milliseconds(2);
  EXPECT_TRUE(periodic.periodic());
  EXPECT_EQ(periodic.send_offset(3), Duration::milliseconds(6));
}

StreamOutcome outcome_with_owds(const std::vector<double>& owds_ms) {
  StreamOutcome o;
  for (std::size_t i = 0; i < owds_ms.size(); ++i) {
    ProbeRecord r;
    r.seq = static_cast<std::uint32_t>(i);
    r.sent = TimePoint::origin() + Duration::microseconds(100.0 * i);
    r.received = r.sent + Duration::milliseconds(owds_ms[i]);
    o.records.push_back(r);
  }
  o.sent_count = static_cast<int>(owds_ms.size());
  return o;
}

TEST(RelativeOwds, FirstIsZeroRestAreDeltas) {
  const auto o = outcome_with_owds({5.0, 5.5, 6.0});
  const auto owds = relative_owds(o);
  ASSERT_EQ(owds.size(), 3u);
  EXPECT_NEAR(owds[0], 0.0, 1e-12);
  EXPECT_NEAR(owds[1], 0.5e-3, 1e-9);
  EXPECT_NEAR(owds[2], 1.0e-3, 1e-9);
}

TEST(RelativeOwds, ClockOffsetCancels) {
  auto o = outcome_with_owds({5.0, 5.5, 6.0});
  // Shift every receiver timestamp by a large constant offset
  // (unsynchronized clocks).
  for (auto& r : o.records) r.received += Duration::seconds(9999);
  const auto owds = relative_owds(o);
  EXPECT_NEAR(owds[1], 0.5e-3, 1e-9);
  EXPECT_NEAR(owds[2], 1.0e-3, 1e-9);
}

TEST(RelativeOwds, EmptyOutcome) {
  EXPECT_TRUE(relative_owds(StreamOutcome{}).empty());
}

TEST(LossRate, CountsMissingPackets) {
  StreamSpec spec;
  spec.packet_count = 100;
  auto o = outcome_with_owds(std::vector<double>(90, 1.0));
  EXPECT_NEAR(loss_rate(o, spec), 0.10, 1e-12);
  o.records.clear();
  EXPECT_NEAR(loss_rate(o, spec), 1.0, 1e-12);
}

TEST(ScreenSendGaps, PerfectPacingIsValid) {
  StreamSpec spec;
  spec.packet_count = 100;
  spec.period = Duration::microseconds(100);
  const auto o = outcome_with_owds(std::vector<double>(100, 1.0));
  const auto result = screen_send_gaps(o, spec, PathloadConfig{});
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.anomalies, 0);
}

TEST(ScreenSendGaps, ContextSwitchGapsInvalidateStream) {
  StreamSpec spec;
  spec.packet_count = 100;
  spec.period = Duration::microseconds(100);
  auto o = outcome_with_owds(std::vector<double>(100, 1.0));
  // Inject 10 multi-millisecond send stalls (10% > 5% tolerance).
  for (std::size_t i = 10; i < 20; ++i) {
    for (std::size_t j = i; j < o.records.size(); ++j) {
      o.records[j].sent += Duration::milliseconds(5);
      o.records[j].received += Duration::milliseconds(5);
    }
  }
  const auto result = screen_send_gaps(o, spec, PathloadConfig{});
  EXPECT_FALSE(result.valid);
  EXPECT_GE(result.anomalies, 10);
}

TEST(ScreenSendGaps, LossDoesNotCountAsAnomaly) {
  StreamSpec spec;
  spec.packet_count = 100;
  spec.period = Duration::microseconds(100);
  // Every other packet lost: send gaps are 2*T but consistent with the
  // sequence numbers, so no anomaly.
  StreamOutcome o;
  for (std::uint32_t i = 0; i < 100; i += 2) {
    ProbeRecord r;
    r.seq = i;
    r.sent = TimePoint::origin() + Duration::microseconds(100.0 * i);
    r.received = r.sent + Duration::milliseconds(1);
    o.records.push_back(r);
  }
  o.sent_count = 100;
  const auto result = screen_send_gaps(o, spec, PathloadConfig{});
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.anomalies, 0);
}

TEST(ScreenSendGaps, TinyStreamsAlwaysValid) {
  StreamSpec spec;
  spec.packet_count = 1;
  spec.period = Duration::microseconds(100);
  const auto o = outcome_with_owds({1.0});
  EXPECT_TRUE(screen_send_gaps(o, spec, PathloadConfig{}).valid);
}

}  // namespace
}  // namespace pathload::core
