// Tests for the deterministic fault injector (core::FaultChannel) and the
// degradation contract around it: run_guarded's exception policy, the
// shared classify_outcome ladder, and the universal deadline_s override.

#include <gtest/gtest.h>

#include "baselines/estimators.hpp"
#include "core/estimator.hpp"
#include "core/fault_channel.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"

namespace pathload::core {
namespace {

scenario::Testbed make_bed(double utilization = 0.5) {
  scenario::PaperPathConfig cfg;
  cfg.hops = 1;
  cfg.tight_capacity = Rate::mbps(10);
  cfg.tight_utilization = utilization;
  cfg.model = sim::Interarrival::kExponential;
  cfg.warmup = Duration::milliseconds(300);
  return scenario::Testbed{cfg};
}

StreamSpec probe_stream(std::uint32_t id) {
  StreamSpec spec;
  spec.stream_id = id;
  spec.packet_count = 20;
  spec.packet_size = 300;
  spec.period = Duration::microseconds(400);
  return spec;
}

TEST(FaultChannel, BlackoutEveryNthStreamIsExactAndRepeatable) {
  scenario::Testbed bed = make_bed();
  bed.start();
  scenario::SimProbeChannel inner{bed.simulator(), bed.path()};
  FaultChannel ch{inner, FaultPlan{.drop_every = 2}};
  for (std::uint32_t i = 1; i <= 6; ++i) {
    const StreamOutcome out = ch.run_stream(probe_stream(i));
    EXPECT_EQ(out.sent_count, 20);
    if (i % 2 == 0) {
      EXPECT_TRUE(out.records.empty()) << "stream " << i;
    } else {
      EXPECT_FALSE(out.records.empty()) << "stream " << i;
    }
  }
  EXPECT_EQ(ch.streams_seen(), 6);
  EXPECT_EQ(ch.streams_blacked_out(), 3);
}

TEST(FaultChannel, TruncationDiscardsTheTail) {
  scenario::Testbed bed = make_bed();
  bed.start();
  scenario::SimProbeChannel inner{bed.simulator(), bed.path()};
  // Baseline: how many records an untouched stream yields.
  const std::size_t full = inner.run_stream(probe_stream(1)).records.size();
  ASSERT_GT(full, 0u);

  FaultChannel ch{inner, FaultPlan{.truncate_every = 1, .truncate_fraction = 0.5}};
  const StreamOutcome out = ch.run_stream(probe_stream(2));
  EXPECT_EQ(out.records.size(), full / 2);  // keep = floor(size * (1 - fraction))
  EXPECT_EQ(ch.streams_truncated(), 1);
  // The kept records are the head of the stream, in seq order.
  for (std::size_t i = 1; i < out.records.size(); ++i) {
    EXPECT_LT(out.records[i - 1].seq, out.records[i].seq);
  }
}

TEST(FaultChannel, BlackoutWinsOverTruncationOnTheSameStream) {
  scenario::Testbed bed = make_bed();
  bed.start();
  scenario::SimProbeChannel inner{bed.simulator(), bed.path()};
  FaultChannel ch{inner, FaultPlan{.drop_every = 1, .truncate_every = 1}};
  const StreamOutcome out = ch.run_stream(probe_stream(1));
  EXPECT_TRUE(out.records.empty());
  EXPECT_EQ(ch.streams_blacked_out(), 1);
  EXPECT_EQ(ch.streams_truncated(), 0);
}

TEST(FaultChannel, FailAfterStreamsBreaksStreamsAndControlOps) {
  scenario::Testbed bed = make_bed();
  bed.start();
  scenario::SimProbeChannel inner{bed.simulator(), bed.path()};
  FaultChannel ch{inner, FaultPlan{.fail_after_streams = 2}};
  EXPECT_NO_THROW(ch.run_stream(probe_stream(1)));
  EXPECT_NO_THROW(ch.rtt());
  EXPECT_NO_THROW(ch.run_stream(probe_stream(2)));
  EXPECT_THROW(ch.run_stream(probe_stream(3)), ChannelFault);
  EXPECT_THROW(ch.rtt(), ChannelFault);
  EXPECT_EQ(ch.streams_seen(), 2);
}

TEST(FaultChannel, StallConsumesChannelTime) {
  scenario::Testbed bed = make_bed();
  bed.start();
  scenario::SimProbeChannel inner{bed.simulator(), bed.path()};
  FaultChannel ch{inner, FaultPlan{.stall = Duration::milliseconds(50)}};
  const TimePoint before = ch.now();
  ch.run_stream(probe_stream(1));
  EXPECT_GE(ch.now() - before, Duration::milliseconds(50));
}

TEST(RunGuarded, ChannelFaultBecomesAFailedReportNotAnException) {
  scenario::Testbed bed = make_bed();
  bed.start();
  scenario::SimProbeChannel inner{bed.simulator(), bed.path()};
  FaultChannel ch{inner, FaultPlan{.fail_after_streams = 1}};
  const auto est = baselines::builtin_estimators().make("cprobe", "trains=3");
  Rng rng{1};
  const EstimateReport report = run_guarded(*est, ch, rng);
  EXPECT_EQ(report.outcome, EstimateReport::Outcome::kFailed);
  EXPECT_NE(report.outcome_note.find("channel fault"), std::string::npos)
      << report.outcome_note;
  EXPECT_FALSE(report.valid);
}

TEST(RunGuarded, ConfigurationErrorsStayLoud) {
  scenario::Testbed bed = make_bed();
  bed.start();
  scenario::SimProbeChannel inner{bed.simulator(), bed.path()};
  // Spruce without its capacity hint is a configuration bug, not a
  // degraded measurement: run_guarded must rethrow.
  const auto est = baselines::builtin_estimators().make("spruce");
  Rng rng{1};
  EXPECT_THROW(run_guarded(*est, inner, rng), EstimatorError);
}

TEST(ClassifyOutcome, LadderOrder) {
  EstimateReport r;
  r.valid = false;
  classify_outcome(r, /*hit_deadline=*/true);
  EXPECT_EQ(r.outcome, EstimateReport::Outcome::kFailed);  // failed beats timeout

  r = EstimateReport{};
  r.valid = true;
  classify_outcome(r, /*hit_deadline=*/true);
  EXPECT_EQ(r.outcome, EstimateReport::Outcome::kTimeout);

  r = EstimateReport{};
  r.valid = true;
  r.packets_sent = 100;
  r.packets_lost = 10;
  classify_outcome(r, /*hit_deadline=*/false);
  EXPECT_EQ(r.outcome, EstimateReport::Outcome::kDegraded);
  EXPECT_NE(r.outcome_note.find("probe loss"), std::string::npos);

  r = EstimateReport{};
  r.valid = true;
  r.packets_sent = 100;
  r.packets_lost = 1;  // 1% < the 2% default threshold
  classify_outcome(r, /*hit_deadline=*/false);
  EXPECT_EQ(r.outcome, EstimateReport::Outcome::kOk);
}

TEST(Deadline, UniversalOverrideKeyWorksForEveryEstimator) {
  const EstimatorRegistry& reg = baselines::builtin_estimators();
  for (const auto& entry : reg.entries()) {
    const auto est = reg.make(entry.name, "deadline_s = 0.25");
    ASSERT_TRUE(est->run_deadline().has_value()) << entry.name;
    EXPECT_EQ(*est->run_deadline(), Duration::seconds(0.25)) << entry.name;
  }
  // Unknown keys are still rejected.
  EXPECT_THROW(reg.make("cprobe", "deadlines = 1"), EstimatorError);
}

TEST(Deadline, CutsARunShortWithATimeoutReportInsteadOfHanging) {
  scenario::Testbed bed = make_bed(0.6);
  bed.start();
  scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
  // A deadline far below one train's duration: the tool must stop early
  // and report kTimeout, not run its full schedule.
  const auto est =
      baselines::builtin_estimators().make("cprobe", "deadline_s = 0.001");
  Rng rng{1};
  const EstimateReport report = est->run(ch, rng);
  EXPECT_EQ(report.outcome, EstimateReport::Outcome::kTimeout);
  EXPECT_LT(report.elapsed, Duration::seconds(1));
}

}  // namespace
}  // namespace pathload::core
