// Edge-case tests for KvOverrides (core/estimator.hpp): duplicate keys,
// empty values, comment/comma forms, and the universal deadline_s key's
// positivity contract across every registry estimator.

#include <gtest/gtest.h>

#include "baselines/estimators.hpp"
#include "core/estimator.hpp"

namespace pathload::core {
namespace {

const EstimatorRegistry& reg() { return baselines::builtin_estimators(); }

TEST(KvOverrides, DuplicateKeysAreRejectedWithTheLine) {
  try {
    KvOverrides::parse("pairs = 10\npairs = 20\n");
    FAIL() << "expected EstimatorError";
  } catch (const EstimatorError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string{e.what()}.find("duplicate key 'pairs'"), std::string::npos)
        << e.what();
  }
  // Also across the comma form on one line.
  EXPECT_THROW(KvOverrides::parse("pairs=10,pairs=20"), EstimatorError);
  // And mixing the two spellings of the same key is still a duplicate.
  EXPECT_THROW(KvOverrides::parse("pairs=10\npairs = 20"), EstimatorError);
}

TEST(KvOverrides, EmptyValuesParseButFailAnyTypedRead) {
  // `key =` is syntactically a kv line (the value is empty); the error
  // surfaces at the typed getter with the line number, mirroring a
  // non-numeric value.
  const KvOverrides kv = KvOverrides::parse("pairs =\n");
  EXPECT_TRUE(kv.has("pairs"));
  EXPECT_THROW(kv.num("pairs", 1.0), EstimatorError);
  EXPECT_THROW(kv.integer("pairs", 1), EstimatorError);
  EXPECT_THROW(kv.mbps("pairs", Rate::mbps(1)), EstimatorError);
  EXPECT_THROW(kv.seconds("pairs", Duration::seconds(1)), EstimatorError);
  // An empty key is rejected at parse.
  EXPECT_THROW(KvOverrides::parse("= 3\n"), EstimatorError);
}

TEST(KvOverrides, CommentsCommasAndBlanksAreTolerated) {
  const KvOverrides kv =
      KvOverrides::parse("# tuning\npairs = 10, packet_size = 800\n\n");
  EXPECT_EQ(kv.integer("pairs", 0), 10);
  EXPECT_EQ(kv.integer("packet_size", 0), 800);
  EXPECT_FALSE(kv.has("tuning"));
  EXPECT_TRUE(KvOverrides::parse("# only a comment\n").empty());
}

TEST(KvOverrides, NonPositiveDeadlineIsRejectedByEveryEstimator) {
  // deadline_s is the universal key (applied by apply_common_overrides for
  // every factory): zero and negative values must fail identically for the
  // whole catalogue, and a positive one must configure cleanly.
  ASSERT_EQ(reg().size(), 10u);
  for (const auto& entry : reg().entries()) {
    EXPECT_THROW((void)reg().make(entry.name, "deadline_s = 0"), EstimatorError)
        << entry.name;
    EXPECT_THROW((void)reg().make(entry.name, "deadline_s = -3"), EstimatorError)
        << entry.name;
    const auto est = reg().make(entry.name, "deadline_s = 45");
    ASSERT_NE(est, nullptr) << entry.name;
    ASSERT_TRUE(est->run_deadline().has_value()) << entry.name;
    EXPECT_EQ(est->run_deadline()->nanos(), Duration::seconds(45).nanos())
        << entry.name;
  }
}

TEST(KvOverrides, UnknownKeysNameTheEstimatorAndTheLegalKeys) {
  for (const auto& entry : reg().entries()) {
    try {
      (void)reg().make(entry.name, "definitely_not_a_key = 1");
      FAIL() << entry.name << " accepted an unknown key";
    } catch (const EstimatorError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(entry.name), std::string::npos) << msg;
      EXPECT_NE(msg.find("definitely_not_a_key"), std::string::npos) << msg;
    }
  }
}

}  // namespace
}  // namespace pathload::core
