#include <gtest/gtest.h>

#include <vector>

#include "core/fleet.hpp"

namespace pathload::core {
namespace {

StreamReport report(StreamClass cls, double loss = 0.0, bool valid = true) {
  StreamReport r;
  r.cls = cls;
  r.loss = loss;
  r.valid = valid;
  return r;
}

std::vector<StreamReport> fleet_of(int type_i, int type_n) {
  std::vector<StreamReport> v;
  for (int i = 0; i < type_i; ++i) v.push_back(report(StreamClass::kIncreasing));
  for (int i = 0; i < type_n; ++i) v.push_back(report(StreamClass::kNonIncreasing));
  return v;
}

PathloadConfig cfg() {
  PathloadConfig c;
  c.streams_per_fleet = 12;
  c.fleet_fraction = 0.7;  // needs >= 8.4 agreeing streams
  return c;
}

TEST(JudgeFleet, AllIncreasingIsAbove) {
  EXPECT_EQ(judge_fleet(fleet_of(12, 0), cfg()), FleetVerdict::kAbove);
}

TEST(JudgeFleet, AllNonIncreasingIsBelow) {
  EXPECT_EQ(judge_fleet(fleet_of(0, 12), cfg()), FleetVerdict::kBelow);
}

TEST(JudgeFleet, ExactFractionBoundary) {
  // f*N = 8.4: 9 agreeing streams suffice, 8 do not.
  EXPECT_EQ(judge_fleet(fleet_of(9, 3), cfg()), FleetVerdict::kAbove);
  EXPECT_EQ(judge_fleet(fleet_of(8, 4), cfg()), FleetVerdict::kGrey);
  EXPECT_EQ(judge_fleet(fleet_of(3, 9), cfg()), FleetVerdict::kBelow);
  EXPECT_EQ(judge_fleet(fleet_of(4, 8), cfg()), FleetVerdict::kGrey);
}

TEST(JudgeFleet, SplitFleetIsGrey) {
  EXPECT_EQ(judge_fleet(fleet_of(6, 6), cfg()), FleetVerdict::kGrey);
}

TEST(JudgeFleet, ExcessiveLossAborts) {
  auto streams = fleet_of(6, 5);
  streams.push_back(report(StreamClass::kIncreasing, 0.15));  // > 10%
  EXPECT_EQ(judge_fleet(streams, cfg()), FleetVerdict::kAbortedLoss);
}

TEST(JudgeFleet, ManyModeratelyLossyStreamsAbort) {
  auto c = cfg();
  c.max_moderate_lossy_streams = 3;
  auto streams = fleet_of(8, 0);
  for (int i = 0; i < 4; ++i) {
    streams.push_back(report(StreamClass::kIncreasing, 0.05));  // 3% < 5% < 10%
  }
  EXPECT_EQ(judge_fleet(streams, c), FleetVerdict::kAbortedLoss);
}

TEST(JudgeFleet, FewModeratelyLossyStreamsDoNotAbort) {
  auto c = cfg();
  c.max_moderate_lossy_streams = 3;
  auto streams = fleet_of(9, 0);
  for (int i = 0; i < 3; ++i) {
    streams.push_back(report(StreamClass::kIncreasing, 0.05));
  }
  EXPECT_EQ(judge_fleet(streams, c), FleetVerdict::kAbove);
}

TEST(JudgeFleet, InvalidStreamsAbstainButVotersDecide) {
  // 8 valid increasing + 4 screened-out: the 8 voters are unanimous and
  // form more than half the fleet, so the fleet is decisively above.
  auto streams = fleet_of(8, 0);
  for (int i = 0; i < 4; ++i) {
    streams.push_back(report(StreamClass::kIncreasing, 0.0, false));
  }
  EXPECT_EQ(judge_fleet(streams, cfg()), FleetVerdict::kAbove);
}

TEST(JudgeFleet, TooFewVotersIsGrey) {
  // 5 voters out of a 12-stream fleet (< half): grey regardless of
  // unanimity.
  auto streams = fleet_of(5, 0);
  for (int i = 0; i < 7; ++i) {
    streams.push_back(report(StreamClass::kDiscard));
  }
  EXPECT_EQ(judge_fleet(streams, cfg()), FleetVerdict::kGrey);
}

TEST(JudgeFleet, DiscardedStreamsDoNotBlockDecision) {
  // 7 N votes + 2 I votes + 3 discards: 9 voters, need 0.7*9 = 6.3 -> the
  // 7 N votes decide.
  auto streams = fleet_of(2, 7);
  for (int i = 0; i < 3; ++i) {
    streams.push_back(report(StreamClass::kDiscard));
  }
  EXPECT_EQ(judge_fleet(streams, cfg()), FleetVerdict::kBelow);
}

TEST(JudgeFleet, AllInvalidIsGrey) {
  std::vector<StreamReport> streams;
  for (int i = 0; i < 12; ++i) {
    streams.push_back(report(StreamClass::kIncreasing, 0.0, false));
  }
  EXPECT_EQ(judge_fleet(streams, cfg()), FleetVerdict::kGrey);
}

TEST(CountFleet, TalliesClassesValidityAndLoss) {
  auto streams = fleet_of(5, 4);
  streams.push_back(report(StreamClass::kIncreasing, 0.05));        // lossy
  streams.push_back(report(StreamClass::kNonIncreasing, 0.0, false));  // invalid
  streams.push_back(report(StreamClass::kDiscard));
  const auto counts = count_fleet(streams, cfg());
  EXPECT_EQ(counts.type_i, 6);
  EXPECT_EQ(counts.type_n, 4);
  EXPECT_EQ(counts.discarded, 1);
  EXPECT_EQ(counts.votes(), 10);
  EXPECT_EQ(counts.valid, 11);
  EXPECT_EQ(counts.lossy, 1);
}

// Sweep of the fraction parameter f (the Fig. 8 mechanism at fleet level):
// as f rises, a mixed fleet flips from decisive to grey.
class FleetFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FleetFractionSweep, MixedFleetGoesGreyAsFGrows) {
  auto c = cfg();
  c.fleet_fraction = GetParam();
  const auto verdict = judge_fleet(fleet_of(8, 4), c);  // 2/3 increasing
  if (GetParam() <= 8.0 / 12.0) {
    EXPECT_EQ(verdict, FleetVerdict::kAbove);
  } else {
    EXPECT_EQ(verdict, FleetVerdict::kGrey);
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, FleetFractionSweep,
                         ::testing::Values(0.5, 0.6, 8.0 / 12.0, 0.7, 0.8, 0.9));

}  // namespace
}  // namespace pathload::core
