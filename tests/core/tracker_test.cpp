#include <gtest/gtest.h>

#include "core/tracker.hpp"
#include "fluid/fluid_model.hpp"

namespace pathload::core {
namespace {

/// Fluid-model channel whose avail-bw can be changed mid-test, to exercise
/// tracking of a moving target.
class MutableFluidChannel final : public ProbeChannel {
 public:
  explicit MutableFluidChannel(double avail_mbps) { set_avail(avail_mbps); }

  void set_avail(double avail_mbps) {
    path_.emplace(std::vector<fluid::FluidLink>{
        {Rate::mbps(100), Rate::mbps(100 - avail_mbps)}});
  }

  StreamOutcome run_stream(const StreamSpec& spec) override {
    StreamOutcome outcome;
    outcome.sent_count = spec.packet_count;
    const auto owds = path_->owd_series(spec.rate(), DataSize::bytes(spec.packet_size),
                                        spec.packet_count);
    for (int i = 0; i < spec.packet_count; ++i) {
      ProbeRecord rec;
      rec.seq = static_cast<std::uint32_t>(i);
      rec.sent = now_ + spec.period * static_cast<double>(i);
      rec.received = rec.sent + Duration::milliseconds(10) +
                     Duration::seconds(owds[static_cast<std::size_t>(i)]);
      outcome.records.push_back(rec);
    }
    now_ += spec.duration();
    return outcome;
  }
  void idle(Duration d) override { now_ += d; }
  TimePoint now() override { return now_; }
  Duration rtt() const override { return Duration::milliseconds(50); }

 private:
  std::optional<fluid::FluidPath> path_;
  TimePoint now_{TimePoint::origin()};
};

AvailBwTracker::Config quick_config() {
  AvailBwTracker::Config cfg;
  cfg.tool.initial_rmax = Rate::mbps(60);
  cfg.pause_between_runs = Duration::milliseconds(100);
  return cfg;
}

TEST(AvailBwTracker, EmptyStateIsWellDefined) {
  MutableFluidChannel channel{20.0};
  AvailBwTracker tracker{channel, quick_config()};
  EXPECT_TRUE(tracker.history().empty());
  EXPECT_FALSE(tracker.smoothed_center().has_value());
  EXPECT_FALSE(tracker.weighted_center().has_value());
  EXPECT_FALSE(tracker.overall_band().has_value());
}

TEST(AvailBwTracker, SingleMeasurementPopulatesEverything) {
  MutableFluidChannel channel{20.0};
  AvailBwTracker tracker{channel, quick_config()};
  const auto& sample = tracker.measure_once();
  EXPECT_TRUE(sample.converged);
  EXPECT_TRUE(sample.range.contains(Rate::mbps(20)));
  EXPECT_EQ(tracker.history().size(), 1u);
  ASSERT_TRUE(tracker.smoothed_center().has_value());
  EXPECT_NEAR(tracker.smoothed_center()->mbits_per_sec(), 20.0, 1.0);
  ASSERT_TRUE(tracker.weighted_center().has_value());
  EXPECT_NEAR(tracker.weighted_center()->mbits_per_sec(), 20.0, 1.0);
}

TEST(AvailBwTracker, RunForCoversTheWindow) {
  MutableFluidChannel channel{20.0};
  AvailBwTracker tracker{channel, quick_config()};
  const TimePoint start = channel.now();
  const int runs = tracker.run_for(Duration::seconds(30));
  EXPECT_GT(runs, 1);
  EXPECT_EQ(static_cast<int>(tracker.history().size()), runs);
  EXPECT_GE(channel.now() - start, Duration::seconds(30));
}

TEST(AvailBwTracker, EwmaTracksAStepChange) {
  MutableFluidChannel channel{30.0};
  auto cfg = quick_config();
  cfg.ewma_alpha = 0.5;
  AvailBwTracker tracker{channel, cfg};
  for (int i = 0; i < 4; ++i) tracker.measure_once();
  const double before = tracker.smoothed_center()->mbits_per_sec();
  EXPECT_NEAR(before, 30.0, 1.5);
  channel.set_avail(10.0);  // the path's load doubles
  for (int i = 0; i < 6; ++i) tracker.measure_once();
  const double after = tracker.smoothed_center()->mbits_per_sec();
  EXPECT_NEAR(after, 10.0, 2.0);
}

TEST(AvailBwTracker, OverallBandCoversBothRegimes) {
  MutableFluidChannel channel{30.0};
  AvailBwTracker tracker{channel, quick_config()};
  tracker.measure_once();
  channel.set_avail(10.0);
  tracker.measure_once();
  const auto band = tracker.overall_band();
  ASSERT_TRUE(band.has_value());
  EXPECT_LE(band->low, Rate::mbps(10.5));
  EXPECT_GE(band->high, Rate::mbps(29.5));
}

TEST(AvailBwTracker, HistoryLimitEvictsOldest) {
  MutableFluidChannel channel{20.0};
  auto cfg = quick_config();
  cfg.history_limit = 3;
  AvailBwTracker tracker{channel, cfg};
  TimePoint first_kept{};
  for (int i = 0; i < 5; ++i) {
    tracker.measure_once();
    if (i == 2) first_kept = tracker.history().back().started;
  }
  EXPECT_EQ(tracker.history().size(), 3u);
  EXPECT_EQ(tracker.history().front().started, first_kept);
}

TEST(AvailBwTracker, WeightedCenterWindowSelectsRecentRuns) {
  MutableFluidChannel channel{30.0};
  AvailBwTracker tracker{channel, quick_config()};
  tracker.measure_once();
  channel.set_avail(10.0);
  tracker.measure_once();
  // A window covering only the last run must report ~10, the full history
  // something in between.
  const auto recent = tracker.weighted_center(tracker.history().back().elapsed / 2.0);
  ASSERT_TRUE(recent.has_value());
  EXPECT_NEAR(recent->mbits_per_sec(), 10.0, 1.5);
  const auto all = tracker.weighted_center();
  ASSERT_TRUE(all.has_value());
  EXPECT_GT(all->mbits_per_sec(), recent->mbits_per_sec());
}

TEST(AvailBwTracker, ResetClearsState) {
  MutableFluidChannel channel{20.0};
  AvailBwTracker tracker{channel, quick_config()};
  tracker.measure_once();
  tracker.reset();
  EXPECT_TRUE(tracker.history().empty());
  EXPECT_FALSE(tracker.smoothed_center().has_value());
}

}  // namespace
}  // namespace pathload::core
