#include <gtest/gtest.h>

#include "core/rate_adjuster.hpp"

namespace pathload::core {
namespace {

PathloadConfig cfg() {
  PathloadConfig c;
  c.omega = Rate::mbps(1);
  c.chi = Rate::mbps(1.5);
  return c;
}

TEST(AvailBwRange, DerivedQuantities) {
  const AvailBwRange r{Rate::mbps(3), Rate::mbps(5)};
  EXPECT_EQ(r.center(), Rate::mbps(4));
  EXPECT_EQ(r.width(), Rate::mbps(2));
  EXPECT_DOUBLE_EQ(r.relative_variation(), 0.5);
  EXPECT_TRUE(r.contains(Rate::mbps(4)));
  EXPECT_TRUE(r.contains(Rate::mbps(3)));
  EXPECT_FALSE(r.contains(Rate::mbps(5.1)));
}

TEST(AvailBwRange, DegenerateRange) {
  const AvailBwRange r{Rate::zero(), Rate::zero()};
  EXPECT_DOUBLE_EQ(r.relative_variation(), 0.0);
}

TEST(RateAdjuster, FirstProbeIsHalfway) {
  RateAdjuster adj{cfg(), Rate::mbps(100)};
  EXPECT_EQ(adj.next_rate(), Rate::mbps(50));
}

TEST(RateAdjuster, BinarySearchWithoutGrey) {
  RateAdjuster adj{cfg(), Rate::mbps(100)};
  adj.record(Rate::mbps(50), FleetVerdict::kAbove);
  EXPECT_EQ(adj.next_rate(), Rate::mbps(25));
  adj.record(Rate::mbps(25), FleetVerdict::kBelow);
  EXPECT_EQ(adj.next_rate(), Rate::mbps(37.5));
}

TEST(RateAdjuster, ConvergesToHiddenAvailBwWithoutGrey) {
  // Simulate a path with a fixed avail-bw of 37.3 Mb/s and a perfectly
  // consistent oracle; the search must bracket it within omega.
  const Rate truth = Rate::mbps(37.3);
  RateAdjuster adj{cfg(), Rate::mbps(120)};
  int fleets = 0;
  while (!adj.converged()) {
    const Rate r = adj.next_rate();
    adj.record(r, r > truth ? FleetVerdict::kAbove : FleetVerdict::kBelow);
    ASSERT_LT(++fleets, 30);
  }
  const auto range = adj.report();
  EXPECT_TRUE(range.contains(truth));
  EXPECT_LE(range.width(), Rate::mbps(1.0001));
  // log2(120 / 1) ~ 7 fleets.
  EXPECT_LE(fleets, 10);
}

TEST(RateAdjuster, LossAbortTreatedAsAbove) {
  RateAdjuster adj{cfg(), Rate::mbps(100)};
  adj.record(Rate::mbps(50), FleetVerdict::kAbortedLoss);
  EXPECT_EQ(adj.rmax(), Rate::mbps(50));
}

TEST(RateAdjuster, GreyRegionBoundsGrow) {
  RateAdjuster adj{cfg(), Rate::mbps(100)};
  adj.record(Rate::mbps(50), FleetVerdict::kGrey);
  ASSERT_TRUE(adj.gmin().has_value());
  EXPECT_EQ(*adj.gmin(), Rate::mbps(50));
  EXPECT_EQ(*adj.gmax(), Rate::mbps(50));
  adj.record(Rate::mbps(60), FleetVerdict::kGrey);
  EXPECT_EQ(*adj.gmin(), Rate::mbps(50));
  EXPECT_EQ(*adj.gmax(), Rate::mbps(60));
  adj.record(Rate::mbps(45), FleetVerdict::kGrey);
  EXPECT_EQ(*adj.gmin(), Rate::mbps(45));
}

TEST(RateAdjuster, ProbesOutsideGreyRegion) {
  RateAdjuster adj{cfg(), Rate::mbps(100)};
  adj.record(Rate::mbps(50), FleetVerdict::kGrey);
  // Next probe must be in one of the unresolved gaps, not inside the grey
  // region.
  const Rate next = adj.next_rate();
  EXPECT_TRUE(next == Rate::mbps(75) || next == Rate::mbps(25));
  // Wider gap first: high gap 50, low gap 50 -> high side by tie-break.
  EXPECT_EQ(next, Rate::mbps(75));
}

TEST(RateAdjuster, ConvergesWithGreyRegionWithinChi) {
  // Avail-bw varies in [35, 45]: rates inside are grey, outside decisive.
  const Rate lo = Rate::mbps(35);
  const Rate hi = Rate::mbps(45);
  RateAdjuster adj{cfg(), Rate::mbps(120)};
  int fleets = 0;
  while (!adj.converged()) {
    const Rate r = adj.next_rate();
    FleetVerdict v = FleetVerdict::kGrey;
    if (r > hi) v = FleetVerdict::kAbove;
    if (r < lo) v = FleetVerdict::kBelow;
    adj.record(r, v);
    ASSERT_LT(++fleets, 40);
  }
  const auto range = adj.report();
  // The report must cover the true variation range and exceed it by at
  // most chi on each side (Section VI).
  EXPECT_LE(range.low, lo);
  EXPECT_GE(range.high, hi);
  EXPECT_LE(lo - range.low, Rate::mbps(1.5001));
  EXPECT_LE(range.high - hi, Rate::mbps(1.5001));
}

TEST(RateAdjuster, GreyClampedWhenContradicted) {
  RateAdjuster adj{cfg(), Rate::mbps(100)};
  adj.record(Rate::mbps(60), FleetVerdict::kGrey);
  adj.record(Rate::mbps(80), FleetVerdict::kGrey);
  // A later decisive verdict below the grey region invalidates it.
  adj.record(Rate::mbps(50), FleetVerdict::kAbove);
  EXPECT_EQ(adj.rmax(), Rate::mbps(50));
  EXPECT_FALSE(adj.gmin().has_value());
}

TEST(RateAdjuster, CeilingExpandsWhenTruthAboveInitialRmax) {
  // The initial upper bound can be too low (dispersion seed under bursty
  // load); repeated kBelow at the ceiling must push it up.
  const Rate truth = Rate::mbps(80);
  RateAdjuster adj{cfg(), Rate::mbps(40)};
  int fleets = 0;
  while (!adj.converged()) {
    const Rate r = adj.next_rate();
    adj.record(r, r > truth ? FleetVerdict::kAbove : FleetVerdict::kBelow);
    ASSERT_LT(++fleets, 60);
  }
  EXPECT_TRUE(adj.report().contains(truth));
}

TEST(RateAdjuster, NeverProbesBelowMinRate) {
  auto c = cfg();
  c.min_rate = Rate::mbps(2);
  RateAdjuster adj{c, Rate::mbps(100)};
  for (int i = 0; i < 20 && !adj.converged(); ++i) {
    const Rate r = adj.next_rate();
    EXPECT_GE(r, c.min_rate);
    adj.record(r, FleetVerdict::kAbove);
  }
}

TEST(RateAdjuster, InitialRmaxClampedToToolMax) {
  RateAdjuster adj{cfg(), Rate::mbps(500)};
  EXPECT_LE(adj.rmax(), cfg().max_rate());
}

TEST(RateAdjuster, OmegaTerminationReportsNarrowRange) {
  const Rate truth = Rate::mbps(10);
  RateAdjuster adj{cfg(), Rate::mbps(120)};
  while (!adj.converged()) {
    const Rate r = adj.next_rate();
    adj.record(r, r > truth ? FleetVerdict::kAbove : FleetVerdict::kBelow);
  }
  EXPECT_LE(adj.report().width(), cfg().omega + Rate::bps(1));
}

// Property sweep: convergence and bracketing hold for any hidden avail-bw.
class HiddenAvailBwSweep : public ::testing::TestWithParam<double> {};

TEST_P(HiddenAvailBwSweep, AlwaysBracketsTruth) {
  const Rate truth = Rate::mbps(GetParam());
  RateAdjuster adj{cfg(), Rate::mbps(120)};
  int fleets = 0;
  while (!adj.converged() && fleets < 60) {
    const Rate r = adj.next_rate();
    adj.record(r, r > truth ? FleetVerdict::kAbove : FleetVerdict::kBelow);
    ++fleets;
  }
  EXPECT_TRUE(adj.converged());
  EXPECT_TRUE(adj.report().contains(truth))
      << "truth " << truth.str() << " not in [" << adj.report().low.str() << ", "
      << adj.report().high.str() << "]";
}

INSTANTIATE_TEST_SUITE_P(Truths, HiddenAvailBwSweep,
                         ::testing::Values(0.5, 1.0, 2.5, 4.0, 9.9, 17.3, 42.0,
                                           74.0, 99.0, 115.0));

}  // namespace
}  // namespace pathload::core
