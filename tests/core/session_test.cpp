#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/session.hpp"
#include "fluid/fluid_model.hpp"
#include "util/rng.hpp"

namespace pathload::core {
namespace {

/// Deterministic ProbeChannel driven by the fluid model: OWDs follow the
/// Appendix equations for a configurable hidden avail-bw, plus optional
/// white noise and loss. Gives session-level tests full control over the
/// "network".
class FluidChannel final : public ProbeChannel {
 public:
  explicit FluidChannel(fluid::FluidPath path) : path_{std::move(path)} {}

  double noise_secs{0.0};           ///< uniform +-noise on each OWD
  double loss_rate{0.0};            ///< iid probe loss probability
  Duration base_rtt{Duration::milliseconds(100)};
  std::vector<Duration> idles;      ///< recorded idle() calls
  int streams_run{0};

  StreamOutcome run_stream(const StreamSpec& spec) override {
    ++streams_run;
    StreamOutcome outcome;
    outcome.sent_count = spec.packet_count;
    const auto owds = path_.owd_series(spec.rate(), DataSize::bytes(spec.packet_size),
                                       spec.packet_count);
    for (int i = 0; i < spec.packet_count; ++i) {
      if (rng_.uniform() < loss_rate) continue;
      ProbeRecord rec;
      rec.seq = static_cast<std::uint32_t>(i);
      rec.sent = now_ + spec.period * static_cast<double>(i);
      const double noise = noise_secs > 0.0 ? rng_.uniform(-noise_secs, noise_secs) : 0.0;
      rec.received = rec.sent + Duration::milliseconds(20) +
                     Duration::seconds(owds[static_cast<std::size_t>(i)] + noise);
      outcome.records.push_back(rec);
    }
    now_ += spec.duration();
    return outcome;
  }

  void idle(Duration d) override {
    idles.push_back(d);
    now_ += d;
  }
  TimePoint now() override { return now_; }
  Duration rtt() const override { return base_rtt; }

 private:
  fluid::FluidPath path_;
  TimePoint now_{TimePoint::origin()};
  Rng rng_{99};
};

fluid::FluidPath path_with_avail(double avail_mbps, double capacity_mbps = 10.0) {
  return fluid::FluidPath{
      {{Rate::mbps(capacity_mbps), Rate::mbps(capacity_mbps - avail_mbps)}}};
}

PathloadConfig tool() {
  PathloadConfig cfg;
  cfg.initial_rmax = Rate::mbps(12);  // deterministic start
  return cfg;
}

TEST(PathloadSession, ConvergesOnNoiselessFluidPath) {
  FluidChannel channel{path_with_avail(4.0)};
  PathloadSession session{tool()};
  const auto result = session.run(channel);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.range.contains(Rate::mbps(4.0)))
      << "[" << result.range.low.str() << ", " << result.range.high.str() << "]";
  EXPECT_LE(result.range.width(), Rate::mbps(1.01));
}

TEST(PathloadSession, ConvergesUnderOwdNoise) {
  FluidChannel channel{path_with_avail(4.0)};
  channel.noise_secs = 200e-6;  // +-200 us jitter per packet
  PathloadSession session{tool()};
  const auto result = session.run(channel);
  EXPECT_TRUE(result.converged);
  // Noise creates a grey region; the range must still cover the truth.
  EXPECT_LE(result.range.low, Rate::mbps(4.5));
  EXPECT_GE(result.range.high, Rate::mbps(3.5));
}

TEST(PathloadSession, InterStreamIdleKeepsAverageRateLow) {
  FluidChannel channel{path_with_avail(4.0)};
  PathloadSession session{tool()};
  (void)session.run(channel);
  ASSERT_FALSE(channel.idles.empty());
  // Every idle must be at least 9 stream durations or the RTT, whichever
  // is larger (Section IV: average pathload rate <= R/10). Stream duration
  // here is >= K * Tmin = 10 ms, so idles must be >= 90 ms.
  for (const auto idle : channel.idles) {
    EXPECT_GE(idle, Duration::milliseconds(90));
  }
}

TEST(PathloadSession, HeavyLossAbortsFleetsAndDrivesRateDown) {
  FluidChannel channel{path_with_avail(8.0)};
  channel.loss_rate = 0.5;  // catastrophic loss at any rate
  auto cfg = tool();
  cfg.max_fleets = 8;
  PathloadSession session{cfg};
  const auto result = session.run(channel);
  ASSERT_FALSE(result.trace.empty());
  for (const auto& fleet : result.trace) {
    EXPECT_EQ(fleet.verdict, FleetVerdict::kAbortedLoss);
  }
  // Every fleet aborts, so the upper bound keeps halving toward the floor.
  EXPECT_LT(result.range.high, Rate::mbps(1.0));
}

TEST(PathloadSession, ExcessiveLossStopsFleetEarly) {
  FluidChannel channel{path_with_avail(4.0)};
  channel.loss_rate = 0.2;  // > 10% per stream
  auto cfg = tool();
  cfg.max_fleets = 2;
  PathloadSession session{cfg};
  const auto result = session.run(channel);
  // The first lossy stream aborts each fleet: one stream per fleet.
  for (const auto& fleet : result.trace) {
    EXPECT_EQ(fleet.streams.size(), 1u);
  }
}

TEST(PathloadSession, ModerateLossIsToleratedWithinLimits) {
  FluidChannel channel{path_with_avail(4.0)};
  channel.loss_rate = 0.01;  // 1% well under the 3% moderate threshold
  PathloadSession session{tool()};
  const auto result = session.run(channel);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.range.contains(Rate::mbps(4.0)));
}

TEST(PathloadSession, RespectsMaxFleetsCap) {
  FluidChannel channel{path_with_avail(4.0)};
  channel.noise_secs = 5e-3;  // so noisy nothing is ever decisive
  auto cfg = tool();
  cfg.max_fleets = 5;
  PathloadSession session{cfg};
  const auto result = session.run(channel);
  EXPECT_LE(result.fleets, 5);
}

TEST(PathloadSession, InitialProbeSeedsUpperBound) {
  FluidChannel channel{path_with_avail(4.0)};
  PathloadConfig cfg;  // no initial_rmax: uses the dispersion probe
  PathloadSession session{cfg};
  const auto result = session.run(channel);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.range.contains(Rate::mbps(4.0)));
  // The fluid exit rate for a max-rate train on C=10,A=4 is ~ 10*120/126;
  // the first fleet must already probe below ADR * 1.25 ~ 11.9 Mb/s.
  ASSERT_FALSE(result.trace.empty());
  EXPECT_LT(result.trace.front().rate, Rate::mbps(12.5));
}

TEST(PathloadSession, FleetRateNeverExceedsToolMax) {
  FluidChannel channel{path_with_avail(115.0, 1000.0)};
  PathloadConfig cfg;
  PathloadSession session{cfg};
  const auto result = session.run(channel);
  for (const auto& fleet : result.trace) {
    EXPECT_LE(fleet.rate, cfg.max_rate() + Rate::bps(1));
  }
}

TEST(PathloadSession, TraceRecordsPerStreamStatistics) {
  FluidChannel channel{path_with_avail(4.0)};
  PathloadSession session{tool()};
  const auto result = session.run(channel);
  for (const auto& fleet : result.trace) {
    if (fleet.verdict == FleetVerdict::kAbortedLoss) continue;
    EXPECT_EQ(static_cast<int>(fleet.streams.size()), 12);
    for (const auto& s : fleet.streams) {
      EXPECT_GE(s.stats.pct, 0.0);
      EXPECT_LE(s.stats.pct, 1.0);
      EXPECT_GE(s.stats.pdt, -1.0);
      EXPECT_LE(s.stats.pdt, 1.0);
    }
  }
}

TEST(PathloadSession, ElapsedTimeMatchesChannelClock) {
  FluidChannel channel{path_with_avail(4.0)};
  PathloadSession session{tool()};
  const TimePoint before = channel.now();
  const auto result = session.run(channel);
  EXPECT_EQ(result.elapsed, channel.now() - before);
  EXPECT_GT(result.elapsed, Duration::zero());
}

// Property sweep: on noiseless fluid paths, the session must converge to a
// range containing any hidden avail-bw, with few fleets.
class SessionFluidSweep : public ::testing::TestWithParam<double> {};

TEST_P(SessionFluidSweep, BracketsHiddenAvailBw) {
  const double avail = GetParam();
  FluidChannel channel{path_with_avail(avail, 120.0)};
  PathloadConfig cfg;
  PathloadSession session{cfg};
  const auto result = session.run(channel);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.range.contains(Rate::mbps(avail)))
      << avail << " not in [" << result.range.low.str() << ", "
      << result.range.high.str() << "]";
  EXPECT_LE(result.fleets, 15);
}

INSTANTIATE_TEST_SUITE_P(AvailGrid, SessionFluidSweep,
                         ::testing::Values(0.7, 2.0, 4.0, 8.5, 16.0, 31.0, 64.0,
                                           95.0, 110.0));

// Property sweep: convergence independent of K and N choices.
struct KnCase {
  int k;
  int n;
};
class SessionKnSweep : public ::testing::TestWithParam<KnCase> {};

TEST_P(SessionKnSweep, ConvergesForAnyStreamAndFleetLength) {
  FluidChannel channel{path_with_avail(4.0)};
  auto cfg = tool();
  cfg.packets_per_stream = GetParam().k;
  cfg.streams_per_fleet = GetParam().n;
  PathloadSession session{cfg};
  const auto result = session.run(channel);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.range.contains(Rate::mbps(4.0)));
}

INSTANTIATE_TEST_SUITE_P(Grid, SessionKnSweep,
                         ::testing::Values(KnCase{30, 6}, KnCase{100, 12},
                                           KnCase{100, 3}, KnCase{200, 12},
                                           KnCase{400, 24}, KnCase{60, 48}));

}  // namespace
}  // namespace pathload::core
