#include <gtest/gtest.h>

#include "core/rate_adjuster.hpp"
#include "util/rng.hpp"

namespace pathload::core {
namespace {

// Randomized sequences of fleet verdicts must never break the adjuster's
// structural invariants, regardless of how contradictory the "network"
// is. This models pathologically bursty traffic where fleets disagree.

PathloadConfig cfg() {
  PathloadConfig c;
  c.omega = Rate::mbps(1);
  c.chi = Rate::mbps(1.5);
  return c;
}

FleetVerdict random_verdict(Rng& rng) {
  switch (rng.uniform_index(4)) {
    case 0:
      return FleetVerdict::kAbove;
    case 1:
      return FleetVerdict::kBelow;
    case 2:
      return FleetVerdict::kGrey;
    default:
      return FleetVerdict::kAbortedLoss;
  }
}

class AdjusterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdjusterFuzz, InvariantsHoldUnderRandomVerdicts) {
  Rng rng{GetParam()};
  RateAdjuster adj{cfg(), Rate::mbps(rng.uniform(5.0, 120.0))};
  for (int step = 0; step < 200 && !adj.converged(); ++step) {
    const Rate rate = adj.next_rate();

    // The probe rate must be inside the tool's working interval.
    EXPECT_GE(rate, cfg().min_rate);
    EXPECT_LE(rate, cfg().max_rate() + Rate::bps(1));

    adj.record(rate, random_verdict(rng));

    // Structural invariants after every update.
    EXPECT_LE(adj.rmin(), adj.rmax() + Rate::bps(1));
    if (adj.gmin().has_value()) {
      EXPECT_LE(*adj.gmin(), *adj.gmax());
      EXPECT_GE(*adj.gmin(), adj.rmin());
      EXPECT_LE(*adj.gmax(), adj.rmax());
    }
    const auto range = adj.report();
    EXPECT_LE(range.low, range.high);
    EXPECT_GE(range.low, Rate::zero());
  }
  // Random verdicts shrink the interval relentlessly; 200 fleets is far
  // beyond what any of them needs.
  EXPECT_TRUE(adj.converged());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjusterFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u,
                                           89u, 144u, 233u));

TEST(AdjusterFuzz, ConsistentOracleAlwaysConvergesNearTruth) {
  // Sharper property: for a *consistent* oracle with a grey band, the
  // report must cover the band and stay within chi of it on each side.
  Rng rng{4242};
  for (int trial = 0; trial < 50; ++trial) {
    const double center = rng.uniform(2.0, 100.0);
    const double half_width = rng.uniform(0.0, 8.0);
    const Rate lo = Rate::mbps(std::max(0.5, center - half_width));
    const Rate hi = Rate::mbps(center + half_width);
    RateAdjuster adj{cfg(), Rate::mbps(120)};
    int fleets = 0;
    while (!adj.converged() && fleets < 80) {
      const Rate r = adj.next_rate();
      FleetVerdict v = FleetVerdict::kGrey;
      if (r > hi) v = FleetVerdict::kAbove;
      if (r < lo) v = FleetVerdict::kBelow;
      adj.record(r, v);
      ++fleets;
    }
    ASSERT_TRUE(adj.converged()) << "center " << center << " width " << half_width;
    const auto range = adj.report();
    EXPECT_LE(range.low, lo + Rate::bps(1));
    EXPECT_GE(range.high, hi - Rate::bps(1));
    EXPECT_LE(lo - range.low, cfg().chi + Rate::mbps(0.001));
    EXPECT_LE(range.high - hi, cfg().chi + Rate::mbps(0.001));
  }
}

}  // namespace
}  // namespace pathload::core
