#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/stream.hpp"

namespace pathload::core {
namespace {

TEST(PathloadConfig, MaxRateFollowsLmaxOverTmin) {
  PathloadConfig cfg;
  EXPECT_NEAR(cfg.max_rate().mbits_per_sec(), 120.0, 1e-9);  // 1500 B / 100 us
  cfg.min_period = Duration::microseconds(50);
  EXPECT_NEAR(cfg.max_rate().mbits_per_sec(), 240.0, 1e-9);
  cfg.max_packet_size = 9000;  // jumbo frames
  EXPECT_NEAR(cfg.max_rate().mbits_per_sec(), 1440.0, 1e-9);
}

TEST(PathloadConfig, StreamSpecHonorsCustomConstraints) {
  PathloadConfig cfg;
  cfg.min_period = Duration::microseconds(200);
  cfg.min_packet_size = 400;
  cfg.max_packet_size = 9000;
  // Mid-range rate: L = R*T/8 with T = 200 us.
  const auto spec = make_stream_spec(Rate::mbps(40), cfg);
  EXPECT_EQ(spec.packet_size, 1000);
  EXPECT_GE(spec.period, cfg.min_period);
  EXPECT_NEAR(spec.rate().mbits_per_sec(), 40.0, 0.5);
  // Very low rate: L pinned at the custom minimum.
  const auto low = make_stream_spec(Rate::mbps(0.5), cfg);
  EXPECT_EQ(low.packet_size, 400);
  EXPECT_NEAR(low.rate().mbits_per_sec(), 0.5, 0.01);
}

TEST(PathloadConfig, RateClampedIntoToolRange) {
  PathloadConfig cfg;
  // Far above the tool max: clamped to Lmax/Tmin.
  const auto high = make_stream_spec(Rate::mbps(10'000), cfg);
  EXPECT_NEAR(high.rate().mbits_per_sec(), 120.0, 0.5);
  // Far below the floor: clamped to min_rate.
  const auto low = make_stream_spec(Rate::bps(1), cfg);
  EXPECT_NEAR(low.rate().bits_per_sec(), cfg.min_rate.bits_per_sec(),
              cfg.min_rate.bits_per_sec() * 0.02);
}

TEST(TrendConfig, DefaultsMatchThePaper) {
  TrendConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.pct_threshold, 0.55);
  EXPECT_DOUBLE_EQ(cfg.pdt_threshold, 0.40);
  EXPECT_TRUE(cfg.median_filter);
  EXPECT_EQ(cfg.mode, TrendConfig::Mode::kCombined);
}

TEST(PathloadConfig, DefaultsMatchThePaper) {
  PathloadConfig cfg;
  EXPECT_EQ(cfg.packets_per_stream, 100);   // K
  EXPECT_EQ(cfg.streams_per_fleet, 12);     // N
  EXPECT_DOUBLE_EQ(cfg.fleet_fraction, 0.7);
  EXPECT_EQ(cfg.min_period, Duration::microseconds(100));  // Tmin
  EXPECT_EQ(cfg.min_packet_size, 200);      // L >= 200 B
  EXPECT_EQ(cfg.omega, Rate::mbps(1));
  EXPECT_EQ(cfg.chi, Rate::mbps(1.5));
  EXPECT_DOUBLE_EQ(cfg.excessive_loss, 0.10);
  EXPECT_DOUBLE_EQ(cfg.moderate_loss, 0.03);
  EXPECT_DOUBLE_EQ(cfg.average_rate_fraction, 0.10);  // probe rate <= R/10
}

}  // namespace
}  // namespace pathload::core
