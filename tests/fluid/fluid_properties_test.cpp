#include <gtest/gtest.h>

#include "fluid/fluid_model.hpp"

namespace pathload::fluid {
namespace {

FluidPath mixed_path() {
  return FluidPath{{
      {Rate::mbps(40), Rate::mbps(22)},  // avail 18
      {Rate::mbps(12), Rate::mbps(7)},   // avail 5 (tight)
      {Rate::mbps(25), Rate::mbps(10)},  // avail 15
  }};
}

TEST(FluidProperties, EntryRatesAreMonotoneNonIncreasingAlongThePath) {
  const auto path = mixed_path();
  for (double r : {1.0, 4.0, 6.0, 12.0, 30.0, 80.0}) {
    const auto rates = path.entry_rates(Rate::mbps(r));
    ASSERT_EQ(rates.size(), path.hop_count() + 1);
    for (std::size_t i = 1; i < rates.size(); ++i) {
      EXPECT_LE(rates[i], rates[i - 1]) << "R = " << r << ", hop " << i;
    }
  }
}

TEST(FluidProperties, ExitRateIsMonotoneInOfferedRate) {
  // More offered traffic never yields *less* received rate in the fluid
  // model (each link's share C*R/(R+lambda) increases with R).
  const auto path = mixed_path();
  Rate prev = Rate::zero();
  for (double r = 0.5; r <= 100.0; r += 0.5) {
    const Rate out = path.exit_rate(Rate::mbps(r));
    EXPECT_GE(out + Rate::bps(1), prev) << "R = " << r;
    prev = out;
  }
}

TEST(FluidProperties, ExitRateSaturatesBelowTightCapacity) {
  const auto path = mixed_path();
  // As R -> infinity the stream can at most get the share C at each hop.
  const Rate out = path.exit_rate(Rate::mbps(10'000));
  EXPECT_LE(out, Rate::mbps(12));
  EXPECT_GT(out, path.avail_bw());
}

TEST(FluidProperties, OwdDeltaContinuousAtTheAvailBwBoundary) {
  const auto path = mixed_path();  // A = 5
  const DataSize pkt = DataSize::bytes(800);
  // Just below A: exactly zero. Just above: positive but tiny.
  EXPECT_EQ(path.owd_delta_per_packet(Rate::mbps(4.999), pkt), Duration::zero());
  const Duration just_above = path.owd_delta_per_packet(Rate::mbps(5.02), pkt);
  EXPECT_GT(just_above, Duration::zero());
  EXPECT_LT(just_above, Duration::microseconds(10));
}

TEST(FluidProperties, UnloadedPathNeverThrottles) {
  const FluidPath idle{{
      {Rate::mbps(10), Rate::zero()},
      {Rate::mbps(5), Rate::zero()},
  }};
  // Below the narrow capacity the stream is untouched.
  EXPECT_EQ(idle.exit_rate(Rate::mbps(4.9)), Rate::mbps(4.9));
  // Above it, the narrow link clips the rate.
  EXPECT_LT(idle.exit_rate(Rate::mbps(9.0)), Rate::mbps(9.0));
  EXPECT_GE(idle.exit_rate(Rate::mbps(9.0)), Rate::mbps(5.0) - Rate::bps(1));
}

TEST(FluidProperties, AsymptoticDispersionRateMatchesAdrFormula) {
  // For a single link, a maximal-rate train's exit rate is the ADR:
  // C * R/(R + lambda). Sweep burst rates and compare.
  const FluidPath one{{{Rate::mbps(10), Rate::mbps(6)}}};
  for (double r : {20.0, 60.0, 120.0}) {
    const double expected = 10.0 * r / (r + 6.0);
    EXPECT_NEAR(one.exit_rate(Rate::mbps(r)).mbits_per_sec(), expected, 1e-9);
  }
}

}  // namespace
}  // namespace pathload::fluid
