#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fluid/fluid_model.hpp"

namespace pathload::fluid {
namespace {

FluidPath paper_default_path() {
  // 3 hops, tight middle link: Ct = 10, ut = 0.6 (A = 4); others C = 20, u = 0.6.
  return FluidPath{{
      {Rate::mbps(20), Rate::mbps(12)},
      {Rate::mbps(10), Rate::mbps(6)},
      {Rate::mbps(20), Rate::mbps(12)},
  }};
}

TEST(FluidLink, DerivedQuantities) {
  const FluidLink l{Rate::mbps(10), Rate::mbps(6)};
  EXPECT_EQ(l.avail_bw(), Rate::mbps(4));
  EXPECT_DOUBLE_EQ(l.utilization(), 0.6);
}

TEST(FluidPath, RejectsEmptyAndOverloaded) {
  EXPECT_THROW(FluidPath{std::vector<FluidLink>{}}, std::invalid_argument);
  EXPECT_THROW(FluidPath({{Rate::mbps(10), Rate::mbps(11)}}), std::invalid_argument);
}

TEST(FluidPath, AvailBwIsMinOverLinks) {
  const auto path = paper_default_path();
  EXPECT_EQ(path.avail_bw(), Rate::mbps(4));
  EXPECT_EQ(path.tight_link(), 1u);
}

TEST(FluidPath, NarrowAndTightCanDiffer) {
  // Fig. 10's path: tight link 155 Mb/s (heavily used), narrow 100 Mb/s
  // (lightly used).
  const FluidPath path{{
      {Rate::mbps(155), Rate::mbps(81)},  // avail 74
      {Rate::mbps(100), Rate::mbps(5)},   // avail 95
  }};
  EXPECT_EQ(path.narrow_link(), 1u);
  EXPECT_EQ(path.tight_link(), 0u);
  EXPECT_EQ(path.avail_bw(), Rate::mbps(74));
  EXPECT_EQ(path.capacity(), Rate::mbps(100));
}

TEST(FluidPath, StreamBelowAvailBwKeepsItsRate) {
  const auto path = paper_default_path();
  const Rate in = Rate::mbps(3);
  EXPECT_EQ(path.exit_rate(in), in);
  const auto rates = path.entry_rates(in);
  for (const auto& r : rates) EXPECT_EQ(r, in);
}

TEST(FluidPath, StreamAboveAvailBwIsThrottledPerEq16) {
  // Single link: C = 10, lambda = 6, A = 4. Offered R = 8 > A:
  // R_out = R*C/(R+lambda) = 8*10/14 = 5.714...
  const FluidPath path{{{Rate::mbps(10), Rate::mbps(6)}}};
  EXPECT_NEAR(path.exit_rate(Rate::mbps(8)).mbits_per_sec(), 80.0 / 14.0, 1e-9);
}

TEST(FluidPath, ExitRateNeverBelowAvailBw) {
  // Eq. 17: A <= R_out < R_in for an overloaded link.
  const FluidPath path{{{Rate::mbps(10), Rate::mbps(6)}}};
  for (double r = 4.5; r <= 12.0; r += 0.5) {
    const Rate out = path.exit_rate(Rate::mbps(r));
    EXPECT_GE(out.mbits_per_sec(), 4.0 - 1e-9);
    EXPECT_LT(out, Rate::mbps(r));
  }
}

TEST(FluidPath, Proposition2ExitRateDependsOnNonTightLinks) {
  // Two paths with identical tight links but different upstream links
  // produce different receiver rates for the same offered rate — the
  // reason train dispersion (cprobe) does not measure avail-bw.
  const FluidPath lightly_loaded{{
      {Rate::mbps(100), Rate::mbps(10)},
      {Rate::mbps(10), Rate::mbps(6)},
  }};
  const FluidPath heavily_loaded{{
      {Rate::mbps(100), Rate::mbps(85)},
      {Rate::mbps(10), Rate::mbps(6)},
  }};
  const Rate offered = Rate::mbps(40);
  EXPECT_NE(lightly_loaded.exit_rate(offered), heavily_loaded.exit_rate(offered));
}

// --- Proposition 1 property sweep -------------------------------------------

struct Prop1Case {
  double offered_mbps;
  bool expect_increasing;
};

class Proposition1Test : public ::testing::TestWithParam<Prop1Case> {};

TEST_P(Proposition1Test, OwdTrendMatchesRateVsAvailBw) {
  const auto path = paper_default_path();  // A = 4 Mb/s
  const auto [offered, expect_increasing] = GetParam();
  const Duration delta =
      path.owd_delta_per_packet(Rate::mbps(offered), DataSize::bytes(800));
  if (expect_increasing) {
    EXPECT_GT(delta, Duration::zero()) << "R = " << offered;
  } else {
    EXPECT_EQ(delta, Duration::zero()) << "R = " << offered;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RateGrid, Proposition1Test,
    ::testing::Values(Prop1Case{0.5, false}, Prop1Case{1.0, false},
                      Prop1Case{2.0, false}, Prop1Case{3.9, false},
                      Prop1Case{4.0, false},  // R == A: equal OWDs
                      Prop1Case{4.1, true}, Prop1Case{5.0, true},
                      Prop1Case{8.0, true}, Prop1Case{20.0, true},
                      Prop1Case{100.0, true}));

class Prop1MultiHopTest : public ::testing::TestWithParam<int> {};

TEST_P(Prop1MultiHopTest, HoldsForAnyPathLength) {
  const int hops = GetParam();
  std::vector<FluidLink> links;
  for (int i = 0; i < hops; ++i) {
    const bool tight = i == hops / 2;
    links.push_back(tight ? FluidLink{Rate::mbps(10), Rate::mbps(6)}
                          : FluidLink{Rate::mbps(25), Rate::mbps(15)});
  }
  const FluidPath path{links};
  ASSERT_EQ(path.avail_bw(), Rate::mbps(4));
  EXPECT_GT(path.owd_delta_per_packet(Rate::mbps(6), DataSize::bytes(800)),
            Duration::zero());
  EXPECT_EQ(path.owd_delta_per_packet(Rate::mbps(3), DataSize::bytes(800)),
            Duration::zero());
}

INSTANTIATE_TEST_SUITE_P(PathLengths, Prop1MultiHopTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(FluidPath, OwdSeriesIsLinearWithSlopeDelta) {
  const auto path = paper_default_path();
  const Rate offered = Rate::mbps(6);
  const DataSize pkt = DataSize::bytes(800);
  const auto series = path.owd_series(offered, pkt, 10);
  ASSERT_EQ(series.size(), 10u);
  const double slope = path.owd_delta_per_packet(offered, pkt).secs();
  EXPECT_GT(slope, 0.0);
  for (int k = 0; k < 10; ++k) {
    EXPECT_NEAR(series[static_cast<std::size_t>(k)], slope * k, 1e-15);
  }
}

TEST(FluidPath, OwdDeltaGrowsWithOverload) {
  // The further R exceeds A, the steeper the OWD trend.
  const auto path = paper_default_path();
  const DataSize pkt = DataSize::bytes(800);
  Duration prev = Duration::zero();
  for (double r : {4.5, 5.0, 6.0, 8.0, 10.0}) {
    const Duration d = path.owd_delta_per_packet(Rate::mbps(r), pkt);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(FluidPath, MultipleTightLinksCompoundTheTrend) {
  // With several equally tight links the per-packet OWD growth accumulates
  // across all of them (the Fig. 7 effect's fluid analogue).
  const FluidLink tight{Rate::mbps(10), Rate::mbps(6)};
  const FluidPath one{{tight}};
  const FluidPath three{{tight, tight, tight}};
  const DataSize pkt = DataSize::bytes(800);
  EXPECT_GT(three.owd_delta_per_packet(Rate::mbps(6), pkt),
            one.owd_delta_per_packet(Rate::mbps(6), pkt));
}

}  // namespace
}  // namespace pathload::fluid
