// The fluid workload formulation of Link's engine-v2 mode, checked against
// the paper's closed-form fluid FIFO model (fluid::FluidPath) and against
// the v1 packet link where the two must agree exactly.

#include <gtest/gtest.h>

#include <vector>

#include "fluid/fluid_model.hpp"
#include "sim/fluid_traffic.hpp"
#include "sim/link.hpp"
#include "sim/monitor.hpp"
#include "sim/simulator.hpp"
#include "util/counter_rng.hpp"

namespace pathload::sim {
namespace {

class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_{sim} {}
  void handle(const Packet& p) override {
    packets.push_back(p);
    arrivals.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<TimePoint> arrivals;

 private:
  Simulator& sim_;
};

Packet make_packet(Simulator& sim, std::int32_t size, std::uint32_t flow = 1) {
  Packet p;
  p.id = sim.next_packet_id();
  p.flow = flow;
  p.size_bytes = size;
  p.transit = true;
  return p;
}

TEST(FluidLink, UnloadedDeliveryMatchesPacketLink) {
  // With zero fluid rate the workload variable reproduces the packet
  // link's FIFO schedule exactly: a burst of equal packets departs spaced
  // by one serialization time each.
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::milliseconds(5),
            DataSize::bytes(100000)};
  link.enable_fluid_mode();
  Collector out{sim};
  link.set_downstream(&out);
  for (int i = 0; i < 3; ++i) link.handle(make_packet(sim, 1500));
  sim.run_all();
  ASSERT_EQ(out.arrivals.size(), 3u);
  // 1500 B at 10 Mb/s = 1.2 ms serialization; +5 ms propagation.
  EXPECT_EQ(out.arrivals[0] - TimePoint::origin(), Duration::milliseconds(6.2));
  EXPECT_EQ(out.arrivals[1] - out.arrivals[0], Duration::milliseconds(1.2));
  EXPECT_EQ(out.arrivals[2] - out.arrivals[1], Duration::milliseconds(1.2));
}

TEST(FluidLink, OwdSlopeMatchesFluidModel) {
  // A periodic stream offered above the avail-bw through one fluid-loaded
  // link must see one-way delays growing at exactly the Appendix Eq. (22)
  // rate, which FluidPath::owd_delta_per_packet computes in closed form.
  const Rate capacity = Rate::mbps(10);
  const Rate cross = Rate::mbps(6);
  const Rate input = Rate::mbps(5);  // avail-bw is 4 Mb/s, so 5 overloads
  const DataSize size = DataSize::bytes(1000);

  Simulator sim;
  Link link{sim, "l", capacity, Duration::milliseconds(5),
            DataSize::bytes(10'000'000)};
  link.enable_fluid_mode();
  link.add_fluid_rate(cross);
  Collector out{sim};
  link.set_downstream(&out);

  const Duration period = Duration::seconds(size.bits() / input.bits_per_sec());
  const int packets = 50;
  for (int i = 0; i < packets; ++i) {
    sim.schedule_at(TimePoint::origin() + period * static_cast<double>(i),
                    [&sim, &link, size] {
                      link.handle(make_packet(sim, static_cast<std::int32_t>(
                                                       size.byte_count())));
                    });
  }
  sim.run_all();
  ASSERT_EQ(out.arrivals.size(), static_cast<std::size_t>(packets));

  fluid::FluidPath model{{fluid::FluidLink{capacity, cross}}};
  const Duration predicted = model.owd_delta_per_packet(input, size);
  ASSERT_GT(predicted, Duration::zero());
  // Send times are i*period, so consecutive OWD deltas are
  // (arrival[i+1]-arrival[i]) - period. Skip the first few packets (the
  // queue is still filling from empty).
  for (int i = 10; i + 1 < packets; ++i) {
    const Duration delta = (out.arrivals[static_cast<std::size_t>(i + 1)] -
                            out.arrivals[static_cast<std::size_t>(i)]) -
                           period;
    EXPECT_NEAR(delta.secs(), predicted.secs(), 5e-9) << "packet " << i;
  }
}

TEST(FluidLink, BytesForwardedIntegratesTheFluid) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(100000)};
  link.enable_fluid_mode();
  link.add_fluid_rate(Rate::mbps(6));
  sim.run_for(Duration::seconds(2));
  // 6 Mb/s for 2 s = 1.5 MB.
  EXPECT_NEAR(static_cast<double>(link.bytes_forwarded().byte_count()),
              1.5e6, 1.0);
  // A packet adds its own bytes on top.
  link.set_downstream(nullptr);
  link.handle(make_packet(sim, 1000));
  EXPECT_NEAR(static_cast<double>(link.bytes_forwarded().byte_count()),
              1.5e6 + 1000.0, 1.0);
}

TEST(FluidLink, UtilizationMonitorReadsTheFluidLoad) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(100000)};
  link.enable_fluid_mode();
  link.add_fluid_rate(Rate::mbps(6));
  UtilizationMonitor mon{sim, link, Duration::milliseconds(100)};
  mon.start();
  sim.run_for(Duration::seconds(1));
  EXPECT_NEAR(mon.average_utilization(), 0.6, 0.01);
  EXPECT_NEAR(mon.average_avail_bw().mbits_per_sec(), 4.0, 0.1);
}

TEST(FluidLink, OverloadedFluidClampsAtBufferAndDropsPackets) {
  Simulator sim;
  // Tiny buffer: 10000 B at 10 Mb/s drains in 8 ms.
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(10000)};
  link.enable_fluid_mode();
  link.add_fluid_rate(Rate::mbps(20));  // 2x overload: workload grows
  Collector out{sim};
  link.set_downstream(&out);
  sim.run_for(Duration::seconds(1));
  // The workload is pinned at the buffer limit, so a full-size packet no
  // longer fits and is drop-tailed.
  link.handle(make_packet(sim, 1500));
  EXPECT_EQ(link.drops(), 1u);
  EXPECT_EQ(link.drops_for_flow(1), 1u);
  sim.run_all();
  EXPECT_TRUE(out.packets.empty());
  // Forwarded fluid saturates at capacity, not at the offered 20 Mb/s.
  EXPECT_NEAR(static_cast<double>(link.bytes_forwarded().byte_count()),
              10e6 / 8.0, 2000.0);
}

TEST(FluidLink, BacklogDelayTracksTheWorkload) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(),
            DataSize::bytes(1'000'000)};
  link.enable_fluid_mode();
  link.set_downstream(nullptr);
  EXPECT_EQ(link.backlog_delay(), Duration::zero());
  // One 1250 B packet = 1 ms of workload, draining at full rate.
  link.handle(make_packet(sim, 1250));
  EXPECT_NEAR(link.backlog_delay().secs(), 1e-3, 1e-9);
  sim.run_for(Duration::milliseconds(0.5));
  EXPECT_NEAR(link.backlog_delay().secs(), 0.5e-3, 1e-9);
  sim.run_for(Duration::milliseconds(10));
  EXPECT_EQ(link.backlog_delay(), Duration::zero());
}

TEST(FluidTraffic, ConstantSourceAccountsOfferedBytes) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(100000)};
  link.enable_fluid_mode();
  FluidConstantSource src{sim, link, Rate::mbps(4)};
  src.start();
  sim.run_for(Duration::seconds(3));
  EXPECT_NEAR(static_cast<double>(src.bytes_sent().byte_count()), 1.5e6, 1.0);
  src.stop();
  EXPECT_EQ(link.fluid_rate(), Rate::zero());
  sim.run_for(Duration::seconds(1));
  EXPECT_NEAR(static_cast<double>(src.bytes_sent().byte_count()), 1.5e6, 1.0);
}

TEST(FluidTraffic, OnOffSourceHitsItsMeanLoad) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(),
            DataSize::bytes(1'000'000)};
  link.enable_fluid_mode();
  OnOffParams params;
  params.peak_rate = Rate::mbps(9.5);
  params.mean_burst = DataSize::bytes(30'000);
  params.burst_alpha = 1.5;
  FluidOnOffSource src{sim, link, Rate::mbps(4), params, CounterRng{7, 0}};
  src.start();
  sim.run_for(Duration::seconds(200));
  const double offered_rate =
      static_cast<double>(src.bytes_sent().byte_count()) * 8.0 / 200.0;
  // Pareto burst sizes with alpha 1.5 converge slowly; 25% is enough to
  // catch a structural bookkeeping error without being flaky.
  EXPECT_NEAR(offered_rate, 4e6, 1e6);
  EXPECT_GT(src.bursts_started(), 100u);
}

TEST(FluidTraffic, RampSourceFollowsTheProfile) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(),
            DataSize::bytes(1'000'000)};
  link.enable_fluid_mode();
  RampParams params;
  params.start_rate = Rate::mbps(2);
  params.end_rate = Rate::mbps(8);
  params.ramp_start = Duration::seconds(1);
  params.ramp_end = Duration::seconds(3);
  FluidRampSource src{sim, link, params};
  src.start();
  sim.run_for(Duration::milliseconds(500));
  EXPECT_NEAR(link.fluid_rate().mbits_per_sec(), 2.0, 1e-9);
  sim.run_for(Duration::milliseconds(1500));  // t = 2 s: mid-ramp
  EXPECT_NEAR(link.fluid_rate().mbits_per_sec(), 5.0, 0.35);
  sim.run_for(Duration::seconds(2));  // t = 4 s: held at the end rate
  EXPECT_NEAR(link.fluid_rate().mbits_per_sec(), 8.0, 1e-9);
  // Offered bytes integrate the trapezoid: 2*1 + (2+8)/2*2 + 8*1 = 20 Mb.
  EXPECT_NEAR(static_cast<double>(src.bytes_sent().byte_count()) * 8.0, 20e6,
              0.5e6);
}

TEST(FluidTraffic, RampStepAndWaveProfile) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(),
            DataSize::bytes(1'000'000)};
  link.enable_fluid_mode();
  RampParams params;
  params.start_rate = Rate::mbps(3);
  params.end_rate = Rate::mbps(7);
  params.ramp_start = Duration::seconds(1);
  params.ramp_end = Duration::seconds(1);  // instantaneous step
  params.back_rate = Rate::mbps(3);
  params.back_start = Duration::seconds(2);
  params.back_end = Duration::seconds(2);  // instantaneous return
  FluidRampSource src{sim, link, params};
  src.start();
  sim.run_for(Duration::milliseconds(999));
  EXPECT_NEAR(link.fluid_rate().mbits_per_sec(), 3.0, 1e-9);
  sim.run_for(Duration::milliseconds(501));  // t = 1.5 s
  EXPECT_NEAR(link.fluid_rate().mbits_per_sec(), 7.0, 1e-9);
  sim.run_for(Duration::seconds(1));  // t = 2.5 s: back down
  EXPECT_NEAR(link.fluid_rate().mbits_per_sec(), 3.0, 1e-9);
}

}  // namespace
}  // namespace pathload::sim
