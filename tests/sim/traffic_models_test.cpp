// Tests for the on/off bursty and ramp/step traffic models.
//
// Each model gets the same three guarantees as the renewal sources: the
// long-run rate converges to the configured mean, reruns with one seed are
// bit-identical, and a golden anchor pins the exact packet/byte sequence so
// an accidental change to the RNG consumption order fails loudly.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/stats.hpp"

namespace pathload::sim {
namespace {

class Sink final : public PacketHandler {
 public:
  void handle(const Packet& p) override {
    ++count;
    bytes += p.size();
    EXPECT_FALSE(p.transit);
    EXPECT_EQ(p.kind, PacketKind::kCrossTraffic);
  }
  std::uint64_t count{0};
  DataSize bytes{};
};

OnOffParams default_onoff() {
  OnOffParams p;
  p.peak_rate = Rate::mbps(9.5);
  p.mean_burst = DataSize::bytes(30'000);
  p.burst_alpha = 1.5;
  return p;
}

TEST(OnOffSource, LongRunRateMatchesConfigured) {
  Simulator sim;
  Sink sink;
  OnOffSource src{sim, sink, Rate::mbps(6), default_onoff(),
                  PacketSizeMix::paper_mix(), Rng{7}};
  src.start();
  const Duration window = Duration::seconds(60);
  sim.run_for(window);
  const Rate achieved = rate_of(sink.bytes, window);
  // Pareto burst sizes converge slowly; 10% over 60 s matches the renewal
  // models' tolerance.
  EXPECT_NEAR(achieved.mbits_per_sec(), 6.0, 0.6);
}

TEST(OnOffSource, DeterministicAcrossReruns) {
  auto run = [] {
    Simulator sim;
    Sink sink;
    OnOffSource src{sim, sink, Rate::mbps(6), default_onoff(),
                    PacketSizeMix::paper_mix(), Rng{42}};
    src.start();
    sim.run_for(Duration::seconds(10));
    return std::pair{src.packets_sent(), src.bytes_sent().byte_count()};
  };
  EXPECT_EQ(run(), run());
}

TEST(OnOffSource, GoldenAnchor) {
  // Captured from the initial implementation (seed 42, mean 6 Mb/s, peak
  // 9.5 Mb/s, 30 KB Pareto(1.5) bursts, paper mix, 10 s). A diff here means
  // the model's RNG consumption or pacing changed — a documented
  // compatibility break, not noise.
  Simulator sim;
  Sink sink;
  OnOffSource src{sim, sink, Rate::mbps(6), default_onoff(),
                  PacketSizeMix::paper_mix(), Rng{42}};
  src.start();
  sim.run_for(Duration::seconds(10));
  EXPECT_EQ(src.packets_sent(), 16714u);
  EXPECT_EQ(src.bytes_sent().byte_count(), 7'353'710);
  EXPECT_EQ(src.bursts_started(), 273u);
}

TEST(OnOffSource, BurstierThanPoissonAtSameMeanRate) {
  // The model's reason to exist: at one mean rate, on/off arrivals have a
  // more variable per-window byte process than Poisson arrivals.
  auto cv_of = [](auto make_src) {
    Simulator sim;
    Sink sink;
    auto src = make_src(sim, sink);
    src->start();
    OnlineStats per_window;
    DataSize last{};
    for (int w = 0; w < 400; ++w) {
      sim.run_for(Duration::milliseconds(50));
      per_window.add((sink.bytes - last).bits());
      last = sink.bytes;
    }
    return per_window.cv();
  };
  const double onoff_cv = cv_of([&](Simulator& sim, Sink& sink) {
    return std::make_unique<OnOffSource>(sim, sink, Rate::mbps(4), default_onoff(),
                                         PacketSizeMix::fixed(500), Rng{11});
  });
  const double poisson_cv = cv_of([&](Simulator& sim, Sink& sink) {
    return std::make_unique<CrossTrafficSource>(sim, sink, Rate::mbps(4),
                                                Interarrival::kExponential,
                                                PacketSizeMix::fixed(500), Rng{11});
  });
  EXPECT_GT(onoff_cv, 1.5 * poisson_cv);
}

TEST(OnOffSource, StopHaltsEmission) {
  Simulator sim;
  Sink sink;
  OnOffSource src{sim, sink, Rate::mbps(6), default_onoff(),
                  PacketSizeMix::paper_mix(), Rng{3}};
  src.start();
  sim.run_for(Duration::seconds(2));
  const auto at_stop = sink.count;
  EXPECT_GT(at_stop, 0u);
  src.stop();
  sim.run_for(Duration::seconds(2));
  EXPECT_EQ(sink.count, at_stop);
}

TEST(OnOffSource, RejectsDegenerateParameters) {
  Simulator sim;
  Sink sink;
  // Peak must exceed the mean (duty cycle < 1).
  OnOffParams peak_too_low = default_onoff();
  peak_too_low.peak_rate = Rate::mbps(5);
  EXPECT_THROW(OnOffSource(sim, sink, Rate::mbps(6), peak_too_low,
                           PacketSizeMix::paper_mix(), Rng{1}),
               std::invalid_argument);
  // Infinite-mean burst sizes must fail at construction.
  OnOffParams bad_alpha = default_onoff();
  bad_alpha.burst_alpha = 1.0;
  EXPECT_THROW(OnOffSource(sim, sink, Rate::mbps(6), bad_alpha,
                           PacketSizeMix::paper_mix(), Rng{1}),
               std::invalid_argument);
  EXPECT_THROW(OnOffSource(sim, sink, Rate::zero(), default_onoff(),
                           PacketSizeMix::paper_mix(), Rng{1}),
               std::invalid_argument);
}

RampParams step_3_to_7_5() {
  RampParams p;
  p.start_rate = Rate::mbps(3);
  p.end_rate = Rate::mbps(7.5);
  p.ramp_start = Duration::seconds(5);
  p.ramp_end = Duration::seconds(5);
  return p;
}

TEST(RampLoadSource, RateFollowsStepProfile) {
  Simulator sim;
  Sink sink;
  RampLoadSource src{sim, sink, step_3_to_7_5(), PacketSizeMix::paper_mix(), Rng{7}};
  src.start();
  sim.run_for(Duration::seconds(5));
  const DataSize before = sink.bytes;
  sim.run_for(Duration::seconds(5));
  const DataSize after = sink.bytes - before;
  EXPECT_NEAR(rate_of(before, Duration::seconds(5)).mbits_per_sec(), 3.0, 0.45);
  EXPECT_NEAR(rate_of(after, Duration::seconds(5)).mbits_per_sec(), 7.5, 1.1);
}

TEST(RampLoadSource, LinearRampPassesThroughMidpoint) {
  RampParams p;
  p.start_rate = Rate::mbps(2);
  p.end_rate = Rate::mbps(8);
  p.ramp_start = Duration::seconds(10);
  p.ramp_end = Duration::seconds(30);
  Simulator sim;
  Sink sink;
  RampLoadSource src{sim, sink, p, PacketSizeMix::paper_mix(), Rng{9}};
  EXPECT_DOUBLE_EQ(src.rate_at(Duration::seconds(0)).mbits_per_sec(), 2.0);
  EXPECT_DOUBLE_EQ(src.rate_at(Duration::seconds(20)).mbits_per_sec(), 5.0);
  EXPECT_DOUBLE_EQ(src.rate_at(Duration::seconds(31)).mbits_per_sec(), 8.0);
  src.start();
  sim.run_for(Duration::seconds(40));
  // Profile average: 10 s at 2, 20 s ramping (mean 5), 10 s at 8 = 5 Mb/s.
  EXPECT_NEAR(rate_of(sink.bytes, Duration::seconds(40)).mbits_per_sec(), 5.0, 0.5);
}

TEST(RampLoadSource, DeterministicAcrossReruns) {
  auto run = [] {
    Simulator sim;
    Sink sink;
    RampLoadSource src{sim, sink, step_3_to_7_5(), PacketSizeMix::paper_mix(),
                       Rng{42}};
    src.start();
    sim.run_for(Duration::seconds(10));
    return std::pair{src.packets_sent(), src.bytes_sent().byte_count()};
  };
  EXPECT_EQ(run(), run());
}

TEST(RampLoadSource, GoldenAnchor) {
  // Captured from the initial implementation (seed 42, 3 -> 7.5 Mb/s step
  // at t = 5 s, paper mix, 10 s).
  Simulator sim;
  Sink sink;
  RampLoadSource src{sim, sink, step_3_to_7_5(), PacketSizeMix::paper_mix(), Rng{42}};
  src.start();
  sim.run_for(Duration::seconds(10));
  EXPECT_EQ(src.packets_sent(), 15017u);
  EXPECT_EQ(src.bytes_sent().byte_count(), 6'577'120);
}

TEST(RampLoadSource, RejectsDegenerateParameters) {
  Simulator sim;
  Sink sink;
  RampParams zero_rate = step_3_to_7_5();
  zero_rate.start_rate = Rate::zero();
  EXPECT_THROW(
      RampLoadSource(sim, sink, zero_rate, PacketSizeMix::paper_mix(), Rng{1}),
      std::invalid_argument);
  RampParams backwards = step_3_to_7_5();
  backwards.ramp_start = Duration::seconds(6);
  backwards.ramp_end = Duration::seconds(5);
  EXPECT_THROW(
      RampLoadSource(sim, sink, backwards, PacketSizeMix::paper_mix(), Rng{1}),
      std::invalid_argument);
}

TEST(GenGroup, AggregatesMembers) {
  Simulator sim;
  Sink sink;
  std::vector<std::unique_ptr<TrafficGen>> members;
  members.push_back(std::make_unique<OnOffSource>(sim, sink, Rate::mbps(2),
                                                  default_onoff(),
                                                  PacketSizeMix::paper_mix(), Rng{1}));
  members.push_back(std::make_unique<RampLoadSource>(
      sim, sink, step_3_to_7_5(), PacketSizeMix::paper_mix(), Rng{2}));
  GenGroup group{std::move(members)};
  group.start();
  sim.run_for(Duration::seconds(2));
  EXPECT_GT(group.bytes_sent().byte_count(), 0);
  EXPECT_EQ(group.bytes_sent(), sink.bytes);
  group.stop();
  const auto at_stop = sink.bytes;
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(sink.bytes, at_stop);
}

}  // namespace
}  // namespace pathload::sim
