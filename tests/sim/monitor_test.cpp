#include <gtest/gtest.h>

#include "sim/link.hpp"
#include "sim/monitor.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

namespace pathload::sim {
namespace {

TEST(UtilizationMonitor, MeasuresConstantLoad) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(1'000'000)};
  // CBR at 6 Mb/s -> utilization 0.6.
  CrossTrafficSource src{sim,    link, Rate::mbps(6), Interarrival::kConstant,
                         PacketSizeMix::fixed(750), Rng{1}};
  UtilizationMonitor mon{sim, link, Duration::seconds(1)};
  src.start();
  mon.start();
  sim.run_for(Duration::seconds(5.5));
  ASSERT_GE(mon.readings().size(), 5u);
  for (const auto& r : mon.readings()) {
    EXPECT_NEAR(r.utilization, 0.6, 0.01);
    EXPECT_NEAR(r.avail_bw.mbits_per_sec(), 4.0, 0.1);
  }
  EXPECT_NEAR(mon.average_utilization(), 0.6, 0.01);
  EXPECT_NEAR(mon.average_avail_bw().mbits_per_sec(), 4.0, 0.1);
}

TEST(UtilizationMonitor, IdleLinkIsZero) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(1'000'000)};
  UtilizationMonitor mon{sim, link, Duration::milliseconds(100)};
  mon.start();
  sim.run_for(Duration::seconds(1));
  ASSERT_FALSE(mon.readings().empty());
  for (const auto& r : mon.readings()) {
    EXPECT_DOUBLE_EQ(r.utilization, 0.0);
    EXPECT_EQ(r.avail_bw, Rate::mbps(10));
  }
}

TEST(UtilizationMonitor, StopClosesPartialWindow) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(1'000'000)};
  CrossTrafficSource src{sim,    link, Rate::mbps(5), Interarrival::kConstant,
                         PacketSizeMix::fixed(500), Rng{1}};
  UtilizationMonitor mon{sim, link, Duration::seconds(10)};
  src.start();
  mon.start();
  sim.run_for(Duration::seconds(2));
  mon.stop();
  ASSERT_EQ(mon.readings().size(), 1u);
  EXPECT_NEAR(mon.readings()[0].utilization, 0.5, 0.02);
}

TEST(UtilizationMonitor, QuantizeBandsLikeMrtgGraphs) {
  // The Fig. 10 comparison quantizes MRTG readings to 6 Mb/s bands.
  const auto band =
      UtilizationMonitor::quantize(Rate::mbps(74.2), Rate::mbps(6));
  EXPECT_DOUBLE_EQ(band.low.mbits_per_sec(), 72.0);
  EXPECT_DOUBLE_EQ(band.high.mbits_per_sec(), 78.0);
  const auto exact = UtilizationMonitor::quantize(Rate::mbps(12), Rate::mbps(6));
  EXPECT_DOUBLE_EQ(exact.low.mbits_per_sec(), 12.0);
  EXPECT_DOUBLE_EQ(exact.high.mbits_per_sec(), 18.0);
}

TEST(ThroughputMonitor, BucketsBytesByInterval) {
  Simulator sim;
  ThroughputMonitor mon{sim, Duration::seconds(1)};
  Packet p;
  p.size_bytes = 125'000;  // 1 Mbit
  mon.handle(p);           // t = 0, opens bucket
  sim.run_for(Duration::seconds(1.5));
  mon.handle(p);  // t = 1.5 -> second bucket
  sim.run_for(Duration::seconds(1));
  const auto buckets = mon.finish();  // t = 2.5
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].bytes.byte_count(), 125'000);
  EXPECT_NEAR(buckets[0].rate().mbits_per_sec(), 1.0, 1e-9);
  EXPECT_EQ(buckets[1].bytes.byte_count(), 125'000);
  EXPECT_EQ(buckets[2].bytes.byte_count(), 0);
}

TEST(ThroughputMonitor, ForwardsDownstream) {
  Simulator sim;
  ThroughputMonitor mon{sim, Duration::seconds(1)};
  class Sink final : public PacketHandler {
   public:
    void handle(const Packet&) override { ++count; }
    int count{0};
  } sink;
  mon.set_downstream(&sink);
  Packet p;
  p.size_bytes = 100;
  mon.handle(p);
  EXPECT_EQ(sink.count, 1);
  EXPECT_EQ(mon.total_bytes().byte_count(), 100);
}

TEST(ThroughputMonitor, EmptyFinishIsEmpty) {
  Simulator sim;
  ThroughputMonitor mon{sim, Duration::seconds(1)};
  EXPECT_TRUE(mon.finish().empty());
}

}  // namespace
}  // namespace pathload::sim
