#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/stats.hpp"

namespace pathload::sim {
namespace {

/// Swallows packets and counts them.
class Sink final : public PacketHandler {
 public:
  void handle(const Packet& p) override {
    ++count;
    bytes += p.size();
  }
  std::uint64_t count{0};
  DataSize bytes{};
};

TEST(PacketSizeMix, PaperMixMeanMatchesHandComputation) {
  // 0.4*40 + 0.5*550 + 0.1*1500 = 441 B.
  EXPECT_DOUBLE_EQ(PacketSizeMix::paper_mix().mean_bytes(), 441.0);
}

TEST(PacketSizeMix, FixedMixAlwaysSameSize) {
  Rng rng{3};
  const auto mix = PacketSizeMix::fixed(1000);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(mix.sample(rng), 1000);
  EXPECT_DOUBLE_EQ(mix.mean_bytes(), 1000.0);
}

TEST(PacketSizeMix, SamplesFollowWeights) {
  Rng rng{5};
  const auto mix = PacketSizeMix::paper_mix();
  int small = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (mix.sample(rng) == 40) ++small;
  }
  EXPECT_NEAR(small / static_cast<double>(n), 0.4, 0.01);
}

class CrossTrafficRateTest
    : public ::testing::TestWithParam<Interarrival> {};

TEST_P(CrossTrafficRateTest, LongRunRateMatchesConfigured) {
  Simulator sim;
  Sink sink;
  CrossTrafficSource src{sim,
                         sink,
                         Rate::mbps(6),
                         GetParam(),
                         PacketSizeMix::paper_mix(),
                         Rng{42}};
  src.start();
  const Duration window = Duration::seconds(60);
  sim.run_for(window);
  const Rate achieved = rate_of(sink.bytes, window);
  // Pareto converges slowest; 10% tolerance over 60 s covers all models.
  EXPECT_NEAR(achieved.mbits_per_sec(), 6.0, 0.6) << "model " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, CrossTrafficRateTest,
                         ::testing::Values(Interarrival::kExponential,
                                           Interarrival::kPareto,
                                           Interarrival::kConstant));

TEST(CrossTrafficSource, StopHaltsEmission) {
  Simulator sim;
  Sink sink;
  CrossTrafficSource src{sim,    sink, Rate::mbps(6), Interarrival::kConstant,
                         PacketSizeMix::fixed(500), Rng{1}};
  src.start();
  sim.run_for(Duration::seconds(1));
  const auto count_at_stop = sink.count;
  EXPECT_GT(count_at_stop, 0u);
  src.stop();
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(sink.count, count_at_stop);
}

TEST(CrossTrafficSource, ConstantModelIsPeriodic) {
  Simulator sim;
  Sink sink;
  // 500 B at 4 Mb/s -> one packet per ms.
  CrossTrafficSource src{sim,    sink, Rate::mbps(4), Interarrival::kConstant,
                         PacketSizeMix::fixed(500), Rng{1}};
  src.start();
  sim.run_for(Duration::milliseconds(10.5));
  EXPECT_EQ(sink.count, 10u);
}

TEST(CrossTrafficSource, RejectsZeroRate) {
  Simulator sim;
  Sink sink;
  EXPECT_THROW(CrossTrafficSource(sim, sink, Rate::zero(), Interarrival::kConstant,
                                  PacketSizeMix::fixed(500), Rng{1}),
               std::invalid_argument);
}

TEST(CrossTrafficSource, RejectsParetoAlphaAtOrBelowOne) {
  // An infinite-mean Pareto must fail loudly at construction, not livelock
  // on zero interarrivals.
  Simulator sim;
  Sink sink;
  EXPECT_THROW(CrossTrafficSource(sim, sink, Rate::mbps(1), Interarrival::kPareto,
                                  PacketSizeMix::fixed(500), Rng{1},
                                  /*pareto_alpha=*/1.0),
               std::invalid_argument);
  // Alpha is irrelevant to non-Pareto models (matching the old lazy check).
  EXPECT_NO_THROW(CrossTrafficSource(sim, sink, Rate::mbps(1), Interarrival::kConstant,
                                     PacketSizeMix::fixed(500), Rng{1},
                                     /*pareto_alpha=*/1.0));
}

TEST(CrossTrafficSource, PacketsAreHopLocal) {
  Simulator sim;
  Sink sink;
  CrossTrafficSource src{sim,    sink, Rate::mbps(1), Interarrival::kConstant,
                         PacketSizeMix::fixed(500), Rng{1}};
  src.start();
  sim.run_for(Duration::milliseconds(50));
  EXPECT_GT(sink.count, 0u);
  // Verified via the handler: every cross packet must be non-transit.
  // (Sink only sees what the source emitted.)
  class Checker final : public PacketHandler {
   public:
    void handle(const Packet& p) override {
      EXPECT_FALSE(p.transit);
      EXPECT_EQ(p.kind, PacketKind::kCrossTraffic);
      EXPECT_EQ(p.flow, kCrossTrafficFlow);
    }
  } checker;
  CrossTrafficSource src2{sim,    checker, Rate::mbps(1), Interarrival::kConstant,
                          PacketSizeMix::fixed(500), Rng{2}};
  src2.start();
  sim.run_for(Duration::milliseconds(50));
}

TEST(TrafficAggregate, SplitsRateAcrossSources) {
  Simulator sim;
  Sink sink;
  TrafficAggregate agg{sim,  sink, Rate::mbps(8), 10, Interarrival::kExponential,
                       PacketSizeMix::paper_mix(), Rng{7}};
  EXPECT_EQ(agg.source_count(), 10);
  agg.start();
  const Duration window = Duration::seconds(30);
  sim.run_for(window);
  const Rate achieved = rate_of(agg.bytes_sent(), window);
  EXPECT_NEAR(achieved.mbits_per_sec(), 8.0, 0.8);
}

TEST(TrafficAggregate, MoreSourcesSmoothTraffic) {
  // The Fig. 12 mechanism: at equal aggregate rate, more independent Pareto
  // sources produce a smoother per-interval byte process.
  auto burstiness = [](int sources) {
    Simulator sim;
    Sink sink;
    TrafficAggregate agg{sim,  sink, Rate::mbps(8), sources, Interarrival::kPareto,
                         PacketSizeMix::fixed(500), Rng{11}};
    agg.start();
    OnlineStats per_window;
    DataSize last{};
    for (int w = 0; w < 400; ++w) {
      sim.run_for(Duration::milliseconds(50));
      per_window.add((agg.bytes_sent() - last).bits());
      last = agg.bytes_sent();
    }
    return per_window.cv();
  };
  EXPECT_GT(burstiness(2), burstiness(50));
}

TEST(TrafficAggregate, RejectsNonPositiveSourceCount) {
  Simulator sim;
  Sink sink;
  EXPECT_THROW(TrafficAggregate(sim, sink, Rate::mbps(1), 0,
                                Interarrival::kExponential,
                                PacketSizeMix::paper_mix(), Rng{1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pathload::sim
