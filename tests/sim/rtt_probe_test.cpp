#include <gtest/gtest.h>

#include "sim/rtt_probe.hpp"
#include "sim/traffic.hpp"

namespace pathload::sim {
namespace {

std::vector<HopSpec> one_hop(Rate capacity, DataSize buffer) {
  return {{capacity, Duration::milliseconds(40), buffer}};
}

TEST(RttProber, QuietPathRttIsBasePlusReverse) {
  Simulator sim;
  Path path{sim, one_hop(Rate::mbps(10), DataSize::bytes(1'000'000))};
  RttProber prober{sim, path, Duration::milliseconds(100), Duration::milliseconds(40)};
  prober.start();
  sim.run_for(Duration::seconds(2));
  ASSERT_GE(prober.samples().size(), 15u);
  for (const auto& s : prober.samples()) {
    // 40 ms forward prop + ~51 us serialization + 40 ms reverse.
    EXPECT_GE(s.rtt, Duration::milliseconds(80));
    EXPECT_LT(s.rtt, Duration::milliseconds(81));
  }
}

TEST(RttProber, SendsAtConfiguredPeriod) {
  Simulator sim;
  Path path{sim, one_hop(Rate::mbps(10), DataSize::bytes(1'000'000))};
  RttProber prober{sim, path, Duration::milliseconds(250), Duration::zero()};
  prober.start();
  sim.run_for(Duration::seconds(2.1));
  // t = 0, 250ms, ..., 2000ms -> 9 probes.
  EXPECT_EQ(prober.sent(), 9u);
}

TEST(RttProber, SeesQueueingDelayFromCongestion) {
  Simulator sim;
  Path path{sim, one_hop(Rate::mbps(5), DataSize::bytes(1'000'000))};
  RttProber prober{sim, path, Duration::milliseconds(50), Duration::milliseconds(40)};
  CrossTrafficSource cross{sim,
                           path.link(0),
                           Rate::mbps(4.9),  // 98% utilization -> long queue
                           Interarrival::kPareto,
                           PacketSizeMix::fixed(1500),
                           Rng{3}};
  prober.start();
  cross.start();
  sim.run_for(Duration::seconds(20));
  Duration max_rtt = Duration::zero();
  for (const auto& s : prober.samples()) max_rtt = std::max(max_rtt, s.rtt);
  EXPECT_GT(max_rtt, Duration::milliseconds(100));  // well above the 80 ms base
}

TEST(RttProber, LostProbesAreCounted) {
  Simulator sim;
  // Tiny buffer + saturating cross traffic: some pings must drop.
  Path path{sim, one_hop(Rate::mbps(1), DataSize::bytes(3000))};
  RttProber prober{sim, path, Duration::milliseconds(20), Duration::zero()};
  CrossTrafficSource cross{sim,    path.link(0), Rate::mbps(2.0),
                           Interarrival::kConstant, PacketSizeMix::fixed(1500),
                           Rng{5}};
  prober.start();
  cross.start();
  sim.run_for(Duration::seconds(5));
  prober.stop();
  sim.run_for(Duration::seconds(2));  // drain survivors
  EXPECT_GT(prober.lost(), 0u);
  EXPECT_EQ(prober.samples().size() + prober.lost(), prober.sent());
}

TEST(RttProber, StopHaltsProbing) {
  Simulator sim;
  Path path{sim, one_hop(Rate::mbps(10), DataSize::bytes(1'000'000))};
  RttProber prober{sim, path, Duration::milliseconds(100), Duration::zero()};
  prober.start();
  sim.run_for(Duration::seconds(1));
  prober.stop();
  const auto sent_at_stop = prober.sent();
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(prober.sent(), sent_at_stop);
}

TEST(RttProber, SamplesCarrySendTimestamps) {
  Simulator sim;
  Path path{sim, one_hop(Rate::mbps(10), DataSize::bytes(1'000'000))};
  RttProber prober{sim, path, Duration::milliseconds(100), Duration::zero()};
  prober.start();
  sim.run_for(Duration::seconds(1));
  ASSERT_GE(prober.samples().size(), 2u);
  for (std::size_t i = 1; i < prober.samples().size(); ++i) {
    EXPECT_EQ(prober.samples()[i].sent - prober.samples()[i - 1].sent,
              Duration::milliseconds(100));
  }
}

}  // namespace
}  // namespace pathload::sim
