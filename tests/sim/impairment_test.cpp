// Link impairment tests: determinism per seed, strict opt-in (an
// unimpaired link never touches an impairment RNG), and the per-knob
// semantics of loss, duplication, and reorder jitter.

#include <gtest/gtest.h>

#include <vector>

#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace pathload::sim {
namespace {

class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_{sim} {}
  void handle(const Packet& p) override {
    packets.push_back(p);
    arrivals.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<TimePoint> arrivals;

 private:
  Simulator& sim_;
};

Packet make_packet(Simulator& sim, std::uint32_t seq, std::uint32_t flow = 1) {
  Packet p;
  p.id = sim.next_packet_id();
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = 500;
  p.transit = true;
  return p;
}

/// Feed `count` packets through a link configured with `imp`; returns the
/// delivered (seq, arrival) sequence plus the link's impairment counters.
struct RunResult {
  std::vector<std::uint32_t> seqs;
  std::vector<Duration> arrivals;
  std::uint64_t impaired_drops{0};
  std::uint64_t duplicates{0};
};

RunResult run_impaired(const LinkImpairments& imp, int count) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(100), Duration::milliseconds(1),
            DataSize::bytes(1'000'000)};
  link.set_impairments(imp);
  Collector out{sim};
  link.set_downstream(&out);
  for (int i = 0; i < count; ++i) {
    link.handle(make_packet(sim, static_cast<std::uint32_t>(i)));
  }
  sim.run_all();
  RunResult r;
  for (const auto& p : out.packets) r.seqs.push_back(p.seq);
  for (const auto& t : out.arrivals) r.arrivals.push_back(t - TimePoint::origin());
  r.impaired_drops = link.impaired_drops();
  r.duplicates = link.duplicates();
  return r;
}

TEST(LinkImpairments, OffByDefaultAndAllZeroStaysOff) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(100000)};
  EXPECT_FALSE(link.impaired());
  link.set_impairments(LinkImpairments{});  // all-zero: still pristine
  EXPECT_FALSE(link.impaired());
  link.set_impairments(LinkImpairments{.loss = 0.5});
  EXPECT_TRUE(link.impaired());
  link.set_impairments(LinkImpairments{});  // clearing works too
  EXPECT_FALSE(link.impaired());
}

TEST(LinkImpairments, UnimpairedRunIsBitIdenticalToPreImpairmentLink) {
  // The golden-anchor contract: installing an all-zero impairment struct
  // must not change a single delivery time.
  const RunResult pristine = run_impaired(LinkImpairments{}, 50);
  Simulator sim;
  Link link{sim, "l", Rate::mbps(100), Duration::milliseconds(1),
            DataSize::bytes(1'000'000)};
  // No set_impairments call at all.
  Collector out{sim};
  link.set_downstream(&out);
  for (int i = 0; i < 50; ++i) {
    link.handle(make_packet(sim, static_cast<std::uint32_t>(i)));
  }
  sim.run_all();
  ASSERT_EQ(out.packets.size(), pristine.seqs.size());
  for (std::size_t i = 0; i < pristine.seqs.size(); ++i) {
    EXPECT_EQ(out.packets[i].seq, pristine.seqs[i]);
    EXPECT_EQ(out.arrivals[i] - TimePoint::origin(), pristine.arrivals[i]);
  }
  EXPECT_EQ(pristine.impaired_drops, 0u);
  EXPECT_EQ(pristine.duplicates, 0u);
}

TEST(LinkImpairments, SameSeedSameFate) {
  const LinkImpairments imp{.loss = 0.3, .dup = 0.1,
                            .reorder = Duration::milliseconds(2), .seed = 42};
  const RunResult a = run_impaired(imp, 200);
  const RunResult b = run_impaired(imp, 200);
  ASSERT_EQ(a.seqs, b.seqs);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].nanos(), b.arrivals[i].nanos());
  }
  EXPECT_EQ(a.impaired_drops, b.impaired_drops);
  EXPECT_EQ(a.duplicates, b.duplicates);
  // And a different seed picks different victims (overwhelmingly likely
  // with 200 draws at 30% loss).
  LinkImpairments other = imp;
  other.seed = 43;
  EXPECT_NE(run_impaired(other, 200).seqs, a.seqs);
}

TEST(LinkImpairments, CertainLossDropsEverythingAndAccounts) {
  const RunResult r = run_impaired(LinkImpairments{.loss = 0.999999999}, 40);
  EXPECT_TRUE(r.seqs.empty());
  EXPECT_EQ(r.impaired_drops, 40u);
}

TEST(LinkImpairments, CertainDuplicationDeliversEveryPacketTwice) {
  const RunResult r = run_impaired(LinkImpairments{.dup = 0.999999999}, 20);
  EXPECT_EQ(r.seqs.size(), 40u);
  EXPECT_EQ(r.duplicates, 20u);
}

TEST(LinkImpairments, PerFlowAccountingBalances) {
  // records + per-flow drops == sent + per-flow dups, the invariant probe
  // accounting relies on.
  Simulator sim;
  Link link{sim, "l", Rate::mbps(100), Duration::zero(), DataSize::bytes(1'000'000)};
  link.set_impairments(LinkImpairments{.loss = 0.2, .dup = 0.2, .seed = 7});
  Collector out{sim};
  link.set_downstream(&out);
  const int sent = 300;
  for (int i = 0; i < sent; ++i) {
    link.handle(make_packet(sim, static_cast<std::uint32_t>(i), /*flow=*/9));
  }
  sim.run_all();
  EXPECT_EQ(out.packets.size() + link.drops_for_flow(9),
            static_cast<std::size_t>(sent) + link.dups_for_flow(9));
  EXPECT_GT(link.drops_for_flow(9), 0u);
  EXPECT_GT(link.dups_for_flow(9), 0u);
}

TEST(LinkImpairments, ReorderJitterStaysWithinBoundAndCanReorder) {
  // One packet at a time (no queueing): arrival = serialization + prop +
  // jitter, with jitter in [0, reorder).
  Simulator sim;
  Link link{sim, "l", Rate::mbps(100), Duration::milliseconds(1),
            DataSize::bytes(1'000'000)};
  link.set_impairments(
      LinkImpairments{.reorder = Duration::milliseconds(5), .seed = 3});
  Collector out{sim};
  link.set_downstream(&out);
  const Duration tx = Rate::mbps(100).transmission_time(DataSize::bytes(500));
  const int count = 50;
  for (int i = 0; i < count; ++i) {
    sim.schedule_at(TimePoint::origin() + Duration::milliseconds(10.0 * i),
                    [&link, &sim, i] {
                      link.handle(make_packet(sim, static_cast<std::uint32_t>(i)));
                    });
  }
  sim.run_all();
  ASSERT_EQ(out.packets.size(), static_cast<std::size_t>(count));
  bool saw_jitter = false;
  for (std::size_t i = 0; i < out.packets.size(); ++i) {
    const Duration base = Duration::milliseconds(10.0 * out.packets[i].seq) + tx +
                          Duration::milliseconds(1);
    const Duration jitter = (out.arrivals[i] - TimePoint::origin()) - base;
    EXPECT_GE(jitter, Duration::zero());
    EXPECT_LT(jitter, Duration::milliseconds(5));
    if (jitter > Duration::zero()) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);

  // Back-to-back packets under heavy jitter get overtaken eventually.
  Simulator sim2;
  Link link2{sim2, "l", Rate::mbps(100), Duration::microseconds(1),
             DataSize::bytes(1'000'000)};
  link2.set_impairments(
      LinkImpairments{.reorder = Duration::milliseconds(5), .seed = 11});
  Collector out2{sim2};
  link2.set_downstream(&out2);
  for (int i = 0; i < 50; ++i) {
    link2.handle(make_packet(sim2, static_cast<std::uint32_t>(i)));
  }
  sim2.run_all();
  ASSERT_EQ(out2.packets.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < out2.packets.size(); ++i) {
    if (out2.packets[i].seq < out2.packets[i - 1].seq) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

}  // namespace
}  // namespace pathload::sim
