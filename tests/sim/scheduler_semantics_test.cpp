// Semantics of the calendar-queue scheduler that the rest of the system
// leans on: FIFO tie-break, clock advance on an empty queue, timer
// cancel/reschedule-in-place, reserved FIFO tickets, and -- via a replay
// against a reference binary-heap scheduler -- that the calendar queue pops
// the exact event order the old heap engine produced.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace pathload::sim {
namespace {

TEST(SchedulerSemantics, RunUntilOnEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(sim.events_processed(), 0u);
  // Scheduling still works after the clock outran the bucket window.
  int fired = 0;
  sim.schedule_in(Duration::milliseconds(1), [&] { ++fired; });
  sim.schedule_now([&] { fired += 10; });
  sim.run_all();
  EXPECT_EQ(fired, 11);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(5) + Duration::milliseconds(1));
}

TEST(SchedulerSemantics, ScheduleNowRunsAfterEverythingAlreadyDueNow) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = sim.now() + Duration::milliseconds(1);
  sim.schedule_at(t, [&] {
    order.push_back(1);
    // "now" events queue behind the other event already scheduled for t.
    sim.schedule_now([&] { order.push_back(3); });
  });
  sim.schedule_at(t, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), t);  // schedule_now never advanced the clock
}

TEST(SchedulerSemantics, PastSchedulingErrorNamesBothTimestamps) {
  Simulator sim;
  sim.run_until(TimePoint::origin() + Duration::milliseconds(2));
  try {
    sim.schedule_at(TimePoint::origin() + Duration::milliseconds(1), [] {});
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1000000"), std::string::npos) << msg;  // t
    EXPECT_NE(msg.find("2000000"), std::string::npos) << msg;  // now
  }
}

TEST(SchedulerSemantics, TimerCancelDropsPendingOccurrence) {
  Simulator sim;
  int fired = 0;
  auto timer = sim.make_timer([&] { ++fired; });
  timer.schedule_in(Duration::milliseconds(1));
  EXPECT_TRUE(timer.pending());
  EXPECT_EQ(sim.pending_events(), 1u);
  timer.cancel();
  EXPECT_FALSE(timer.pending());
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_all();
  EXPECT_EQ(fired, 0);
  // The callback is retained: the timer can be armed again after a cancel.
  timer.schedule_in(Duration::milliseconds(1));
  sim.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerSemantics, TimerRescheduleInPlaceReplacesOccurrence) {
  Simulator sim;
  std::vector<std::int64_t> fired_at;
  auto timer = sim.make_timer([&] { fired_at.push_back(sim.now().nanos()); });
  timer.schedule_in(Duration::milliseconds(5));
  timer.schedule_in(Duration::milliseconds(1));  // replaces the 5 ms occurrence
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  ASSERT_EQ(fired_at.size(), 1u);
  EXPECT_EQ(fired_at[0], Duration::milliseconds(1).nanos());
}

TEST(SchedulerSemantics, TimerReArmsFromInsideItsOwnCallback) {
  Simulator sim;
  int fires = 0;
  Simulator::TimerHandle timer = sim.make_timer([&] {
    if (++fires < 5) timer.schedule_in(Duration::milliseconds(1));
  });
  timer.schedule_in(Duration::milliseconds(1));
  sim.run_all();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.events_processed(), 5u);
  EXPECT_FALSE(timer.pending());
}

TEST(SchedulerSemantics, TimerDestroyedInsideOwnCallbackIsSafe) {
  // The callback releases its own handle mid-fire, then keeps scheduling --
  // the slot must not be recycled under the running lambda.
  Simulator sim;
  int fired = 0;
  int oneshots = 0;
  auto timer = std::make_unique<Simulator::TimerHandle>();
  *timer = sim.make_timer([&] {
    ++fired;
    timer.reset();  // ~TimerHandle from inside the callback
    // Nested allocations that would reuse a prematurely freed slot.
    for (int i = 0; i < 4; ++i) {
      sim.schedule_now([&] { ++oneshots; });
    }
  });
  timer->schedule_in(Duration::milliseconds(1));
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(oneshots, 4);
}

TEST(SchedulerSemantics, DestroyedTimerNeverFires) {
  Simulator sim;
  int fired = 0;
  {
    auto timer = sim.make_timer([&] { ++fired; });
    timer.schedule_in(Duration::milliseconds(1));
  }  // handle destroyed with an occurrence pending
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(SchedulerSemantics, ReservedTicketsKeepUpfrontTieBreakOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = sim.now() + Duration::milliseconds(10);

  // A periodic sender reserves its tickets first (as if it had scheduled
  // everything upfront)...
  const std::uint64_t base = sim.reserve_fifo_tickets(2);
  // ...then a competitor schedules for the same instant...
  sim.schedule_at(t, [&] { order.push_back(99); });
  // ...and the sender arms with its reserved ticket afterwards. The
  // reserved (earlier) ticket must win the equal-timestamp tie.
  Simulator::TimerHandle timer = sim.make_timer([&] { order.push_back(1); });
  timer.schedule_at(t, base);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 99}));
}

// ---------------------------------------------------------------------------
// Cross-scheduler determinism: replay a stress workload through the real
// engine and through a reference implementation of the old binary-heap
// scheduler; both must report the exact same firing order.

/// The old engine, reduced to its ordering contract: a binary heap over
/// (timestamp, insertion seq), exactly as src/sim/simulator.cpp had before
/// the calendar queue.
class ReferenceHeap {
 public:
  void schedule_at(std::int64_t at, int tag) {
    heap_.push_back(Ev{at, ++seq_, tag});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  bool run_next(std::int64_t& now, int& tag) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Ev ev = heap_.back();
    heap_.pop_back();
    now = ev.at;
    tag = ev.tag;
    return true;
  }

 private:
  struct Ev {
    std::int64_t at;
    std::uint64_t seq;
    int tag;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };
  std::vector<Ev> heap_;
  std::uint64_t seq_{0};
};

/// Deterministic pseudo-random gaps: mixes sub-bucket, cross-bucket,
/// beyond-window (overflow heap), and exactly-equal timestamps.
std::int64_t replay_gap(std::uint64_t& lcg) {
  lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
  const std::uint64_t r = lcg >> 33;
  switch (r % 5) {
    case 0: return static_cast<std::int64_t>(r % 1000);            // same bucket
    case 1: return static_cast<std::int64_t>(r % 500'000);         // near buckets
    case 2: return static_cast<std::int64_t>(r % 40'000'000);      // ring edge
    case 3: return static_cast<std::int64_t>(r % 2'000'000'000);   // overflow
    default: return 0;                                             // exact tie
  }
}

TEST(SchedulerSemantics, ReplayMatchesReferenceHeapOrder) {
  constexpr int kInitial = 64;
  constexpr int kTotal = 20000;

  // Reference run: every fired event schedules a successor with the same
  // deterministic gap stream, keyed by the fired tag.
  std::vector<std::pair<std::int64_t, int>> ref_trace;
  {
    ReferenceHeap ref;
    std::uint64_t lcg = 12345;
    std::uint64_t gap_lcg = 999;
    for (int i = 0; i < kInitial; ++i) ref.schedule_at(replay_gap(lcg), i);
    int next_tag = kInitial;
    std::int64_t now = 0;
    int tag = 0;
    while (static_cast<int>(ref_trace.size()) < kTotal && ref.run_next(now, tag)) {
      ref_trace.emplace_back(now, tag);
      if (next_tag < kTotal) ref.schedule_at(now + replay_gap(gap_lcg), next_tag++);
    }
  }

  // Real engine, same workload as one-shot closures.
  std::vector<std::pair<std::int64_t, int>> trace;
  {
    Simulator sim;
    std::uint64_t lcg = 12345;
    std::uint64_t gap_lcg = 999;
    int next_tag = kInitial;
    std::function<void(int)> fire = [&](int tag) {
      trace.emplace_back(sim.now().nanos(), tag);
      if (next_tag < kTotal) {
        const int t = next_tag++;
        sim.schedule_in(Duration::nanoseconds(replay_gap(gap_lcg)),
                        [&fire, t] { fire(t); });
      }
    };
    for (int i = 0; i < kInitial; ++i) {
      sim.schedule_at(TimePoint::from_nanos(replay_gap(lcg)), [&fire, i] { fire(i); });
    }
    while (static_cast<int>(trace.size()) < kTotal && sim.run_next()) {
    }
  }

  ASSERT_EQ(trace.size(), ref_trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(trace[i], ref_trace[i]) << "divergence at event " << i;
  }
}

}  // namespace
}  // namespace pathload::sim
