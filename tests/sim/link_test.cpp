#include <gtest/gtest.h>

#include <vector>

#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace pathload::sim {
namespace {

/// Collects delivered packets with their arrival times.
class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_{sim} {}
  void handle(const Packet& p) override {
    packets.push_back(p);
    arrivals.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<TimePoint> arrivals;

 private:
  Simulator& sim_;
};

Packet make_packet(Simulator& sim, std::int32_t size, std::uint32_t flow = 1) {
  Packet p;
  p.id = sim.next_packet_id();
  p.flow = flow;
  p.size_bytes = size;
  p.transit = true;
  return p;
}

TEST(Link, SerializationPlusPropagationDelay) {
  Simulator sim;
  // 1500 B at 10 Mb/s = 1.2 ms serialization; +5 ms propagation.
  Link link{sim, "l", Rate::mbps(10), Duration::milliseconds(5), DataSize::bytes(100000)};
  Collector out{sim};
  link.set_downstream(&out);
  link.handle(make_packet(sim, 1500));
  sim.run_all();
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.arrivals[0] - TimePoint::origin(), Duration::milliseconds(6.2));
}

TEST(Link, FcfsOrderPreserved) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(100000)};
  Collector out{sim};
  link.set_downstream(&out);
  for (std::uint32_t i = 0; i < 5; ++i) {
    Packet p = make_packet(sim, 500);
    p.seq = i;
    link.handle(p);
  }
  sim.run_all();
  ASSERT_EQ(out.packets.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(out.packets[i].seq, i);
}

TEST(Link, BackToBackPacketsSpacedBySerialization) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(100000)};
  Collector out{sim};
  link.set_downstream(&out);
  link.handle(make_packet(sim, 1000));  // 0.8 ms each
  link.handle(make_packet(sim, 1000));
  sim.run_all();
  ASSERT_EQ(out.arrivals.size(), 2u);
  EXPECT_EQ(out.arrivals[1] - out.arrivals[0], Duration::microseconds(800));
}

TEST(Link, DropTailWhenBufferFull) {
  Simulator sim;
  // Buffer fits one waiting 1000 B packet; the third arrival must drop.
  Link link{sim, "l", Rate::mbps(1), Duration::zero(), DataSize::bytes(1000)};
  Collector out{sim};
  link.set_downstream(&out);
  link.handle(make_packet(sim, 1000));  // in service
  link.handle(make_packet(sim, 1000));  // queued (fills buffer)
  link.handle(make_packet(sim, 1000));  // dropped
  sim.run_all();
  EXPECT_EQ(out.packets.size(), 2u);
  EXPECT_EQ(link.drops(), 1u);
}

TEST(Link, PerFlowDropAccounting) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(1), Duration::zero(), DataSize::bytes(500)};
  link.handle(make_packet(sim, 500, 7));  // in service
  link.handle(make_packet(sim, 500, 7));  // queued
  link.handle(make_packet(sim, 500, 7));  // dropped (flow 7)
  link.handle(make_packet(sim, 500, 9));  // dropped (flow 9)
  EXPECT_EQ(link.drops_for_flow(7), 1u);
  EXPECT_EQ(link.drops_for_flow(9), 1u);
  EXPECT_EQ(link.drops_for_flow(1), 0u);
  EXPECT_EQ(link.drops(), 2u);
}

TEST(Link, CrossTrafficDropsNotTrackedPerFlow) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(1), Duration::zero(), DataSize::bytes(100)};
  Packet p = make_packet(sim, 500, kCrossTrafficFlow);
  link.handle(p);
  link.handle(p);  // queued? no: buffer 100 < 500 -> dropped
  EXPECT_EQ(link.drops(), 1u);
  EXPECT_EQ(link.drops_for_flow(kCrossTrafficFlow), 0u);
}

TEST(Link, CountsForwardedBytes) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(100000)};
  link.handle(make_packet(sim, 700));
  link.handle(make_packet(sim, 300));
  sim.run_all();
  EXPECT_EQ(link.bytes_forwarded().byte_count(), 1000);
  EXPECT_EQ(link.packets_forwarded(), 2u);
}

TEST(Link, QueueStateObservable) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(1), Duration::zero(), DataSize::bytes(10000)};
  EXPECT_FALSE(link.busy());
  link.handle(make_packet(sim, 1000));
  EXPECT_TRUE(link.busy());
  EXPECT_EQ(link.queue_length(), 0u);
  link.handle(make_packet(sim, 1000));
  EXPECT_EQ(link.queue_length(), 1u);
  EXPECT_EQ(link.queued_bytes().byte_count(), 1000);
  sim.run_all();
  EXPECT_FALSE(link.busy());
  EXPECT_EQ(link.queue_length(), 0u);
}

TEST(Link, BacklogDelayBoundsQueueing) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(8), Duration::zero(), DataSize::bytes(10000)};
  link.handle(make_packet(sim, 1000));
  link.handle(make_packet(sim, 1000));
  // Two 1000 B packets at 8 Mb/s = 2 ms total backlog.
  EXPECT_EQ(link.backlog_delay(), Duration::milliseconds(2));
}

TEST(Link, RejectsNonPositiveCapacity) {
  Simulator sim;
  EXPECT_THROW(Link(sim, "bad", Rate::zero(), Duration::zero(), DataSize::bytes(1)),
               std::invalid_argument);
}

TEST(Link, NoDownstreamIsSafe) {
  Simulator sim;
  Link link{sim, "l", Rate::mbps(10), Duration::zero(), DataSize::bytes(1000)};
  link.handle(make_packet(sim, 500));
  EXPECT_NO_THROW(sim.run_all());
  EXPECT_EQ(link.packets_forwarded(), 1u);
}

}  // namespace
}  // namespace pathload::sim
