#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace pathload::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(Duration::milliseconds(3), [&] { order.push_back(3); });
  sim.schedule_in(Duration::milliseconds(1), [&] { order.push_back(1); });
  sim.schedule_in(Duration::milliseconds(2), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = sim.now() + Duration::milliseconds(1);
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule_in(Duration::milliseconds(7), [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, TimePoint::origin() + Duration::milliseconds(7));
  EXPECT_EQ(sim.now(), seen);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::milliseconds(5), [&] { ++fired; });
  sim.schedule_in(Duration::milliseconds(15), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::milliseconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::milliseconds(10));
  sim.run_all();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunAreProcessed) {
  Simulator sim;
  int depth = 0;
  sim.schedule_in(Duration::milliseconds(1), [&] {
    ++depth;
    sim.schedule_in(Duration::milliseconds(1), [&] { ++depth; });
  });
  sim.run_all();
  EXPECT_EQ(depth, 2);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_in(Duration::milliseconds(5), [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(TimePoint::origin(), [] {}), std::logic_error);
}

TEST(Simulator, RunNextSingleSteps) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(Duration::milliseconds(1), [&] { ++fired; });
  sim.schedule_in(Duration::milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.run_next());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.run_next());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.run_next());
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule_in(Duration::milliseconds(i + 1), [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(Simulator, IdGeneratorsAreUnique) {
  Simulator sim;
  EXPECT_NE(sim.next_packet_id(), sim.next_packet_id());
  EXPECT_NE(sim.next_flow_id(), sim.next_flow_id());
  // Flow 0 is reserved for cross traffic and never handed out.
  Simulator fresh;
  EXPECT_NE(fresh.next_flow_id(), 0u);
}

}  // namespace
}  // namespace pathload::sim
