#include <gtest/gtest.h>

#include <vector>

#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace pathload::sim {
namespace {

class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_{sim} {}
  void handle(const Packet& p) override {
    packets.push_back(p);
    arrivals.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<TimePoint> arrivals;

 private:
  Simulator& sim_;
};

std::vector<HopSpec> three_hops() {
  return {
      {Rate::mbps(100), Duration::milliseconds(10), DataSize::bytes(1'000'000)},
      {Rate::mbps(10), Duration::milliseconds(10), DataSize::bytes(1'000'000)},
      {Rate::mbps(100), Duration::milliseconds(10), DataSize::bytes(1'000'000)},
  };
}

Packet transit_packet(Simulator& sim, std::uint32_t flow, std::int32_t size = 1000) {
  Packet p;
  p.id = sim.next_packet_id();
  p.flow = flow;
  p.kind = PacketKind::kProbe;
  p.size_bytes = size;
  p.transit = true;
  return p;
}

TEST(Path, RejectsEmptyHopList) {
  Simulator sim;
  EXPECT_THROW(Path(sim, {}), std::invalid_argument);
}

TEST(Path, CapacityIsNarrowLink) {
  Simulator sim;
  Path path{sim, three_hops()};
  EXPECT_EQ(path.capacity(), Rate::mbps(10));
}

TEST(Path, BaseDelaySumsPropagation) {
  Simulator sim;
  Path path{sim, three_hops()};
  EXPECT_EQ(path.base_delay(), Duration::milliseconds(30));
}

TEST(Path, UnloadedTransitTimeAddsSerialization) {
  Simulator sim;
  Path path{sim, three_hops()};
  // 1000 B: 80 us at 100 Mb/s, 800 us at 10, 80 us at 100 -> 960 us + 30 ms.
  EXPECT_EQ(path.unloaded_transit_time(DataSize::bytes(1000)),
            Duration::milliseconds(30) + Duration::microseconds(960));
}

TEST(Path, TransitPacketTraversesAllLinksToEgress) {
  Simulator sim;
  Path path{sim, three_hops()};
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.egress().register_flow(flow, &out);
  path.ingress().handle(transit_packet(sim, flow));
  sim.run_all();
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.arrivals[0] - TimePoint::origin(),
            path.unloaded_transit_time(DataSize::bytes(1000)));
  for (std::size_t i = 0; i < path.hop_count(); ++i) {
    EXPECT_EQ(path.link(i).packets_forwarded(), 1u);
  }
}

TEST(Path, CrossTrafficPacketLeavesAfterOneHop) {
  Simulator sim;
  Path path{sim, three_hops()};
  Packet p;
  p.id = sim.next_packet_id();
  p.size_bytes = 500;
  p.transit = false;  // hop-local
  path.link(1).handle(p);
  sim.run_all();
  EXPECT_EQ(path.link(0).packets_forwarded(), 0u);
  EXPECT_EQ(path.link(1).packets_forwarded(), 1u);
  EXPECT_EQ(path.link(2).packets_forwarded(), 0u);
  EXPECT_EQ(path.egress().unclaimed_packets(), 0u);
}

TEST(FlowDemux, RoutesByFlowId) {
  Simulator sim;
  Path path{sim, three_hops()};
  const std::uint32_t f1 = sim.next_flow_id();
  const std::uint32_t f2 = sim.next_flow_id();
  Collector out1{sim};
  Collector out2{sim};
  path.egress().register_flow(f1, &out1);
  path.egress().register_flow(f2, &out2);
  path.ingress().handle(transit_packet(sim, f1));
  path.ingress().handle(transit_packet(sim, f2));
  path.ingress().handle(transit_packet(sim, f1));
  sim.run_all();
  EXPECT_EQ(out1.packets.size(), 2u);
  EXPECT_EQ(out2.packets.size(), 1u);
}

TEST(FlowDemux, CountsUnclaimedPackets) {
  Simulator sim;
  Path path{sim, three_hops()};
  path.ingress().handle(transit_packet(sim, 999));
  sim.run_all();
  EXPECT_EQ(path.egress().unclaimed_packets(), 1u);
}

TEST(FlowDemux, UnregisterStopsDelivery) {
  Simulator sim;
  Path path{sim, three_hops()};
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.egress().register_flow(flow, &out);
  path.egress().unregister_flow(flow);
  path.ingress().handle(transit_packet(sim, flow));
  sim.run_all();
  EXPECT_TRUE(out.packets.empty());
  EXPECT_EQ(path.egress().unclaimed_packets(), 1u);
}

TEST(Segment, NormalizedResolvesPathEndAndRejectsNonsense) {
  Simulator sim;
  Path path{sim, three_hops()};
  const Segment whole = path.normalized(Segment{});
  EXPECT_EQ(whole.first, 0u);
  EXPECT_EQ(whole.last, 2u);
  const Segment mid = path.normalized(Segment{1, 1});
  EXPECT_EQ(mid.first, 1u);
  EXPECT_EQ(mid.last, 1u);
  EXPECT_THROW(path.normalized(Segment{2, 1}), std::out_of_range);
  EXPECT_THROW(path.normalized(Segment{0, 3}), std::out_of_range);
  EXPECT_THROW(path.normalized(Segment{5, Segment::kPathEnd}), std::out_of_range);
}

TEST(Segment, FlowExitsAfterItsLastHop) {
  Simulator sim;
  Path path{sim, three_hops()};
  const Segment seg{0, 1};  // enters at the front, leaves after the middle
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.segment_exit(seg).register_flow(flow, &out);
  Packet p = transit_packet(sim, flow);
  p.exit_hop = path.exit_hop_value(seg);
  path.segment_entry(seg).handle(p);
  sim.run_all();
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(path.link(0).packets_forwarded(), 1u);
  EXPECT_EQ(path.link(1).packets_forwarded(), 1u);
  EXPECT_EQ(path.link(2).packets_forwarded(), 0u);  // exited before hop 2
  EXPECT_EQ(path.egress().unclaimed_packets(), 0u);
}

TEST(Segment, PartialOverlapEntersMidPath) {
  Simulator sim;
  Path path{sim, three_hops()};
  const Segment seg{1, 2};  // skips the first hop
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.segment_exit(seg).register_flow(flow, &out);
  Packet p = transit_packet(sim, flow);
  p.exit_hop = path.exit_hop_value(seg);
  path.segment_entry(seg).handle(p);
  sim.run_all();
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(path.link(0).packets_forwarded(), 0u);
  EXPECT_EQ(path.link(1).packets_forwarded(), 1u);
  EXPECT_EQ(path.link(2).packets_forwarded(), 1u);
}

TEST(Segment, SegmentEndingAtLastHopUsesTheEgressDemux) {
  Simulator sim;
  Path path{sim, three_hops()};
  const Segment seg{1, 2};
  EXPECT_EQ(&path.segment_exit(seg), &path.egress());
  EXPECT_EQ(path.exit_hop_value(seg), kExitAtEgress);
  // A one-hop segment in the middle has its own junction demux.
  const Segment mid{1, 1};
  EXPECT_NE(&path.segment_exit(mid), &path.egress());
  EXPECT_EQ(path.exit_hop_value(mid), 1u);
}

TEST(Segment, OverlappingSegmentsRouteByFlowId) {
  // Two segments ending after the same hop share that hop's exit demux;
  // their flows separate by id, exactly like the egress demux.
  Simulator sim;
  Path path{sim, three_hops()};
  const Segment a{0, 1};
  const Segment b{1, 1};  // overlaps `a` on the middle link
  const std::uint32_t fa = sim.next_flow_id();
  const std::uint32_t fb = sim.next_flow_id();
  Collector out_a{sim};
  Collector out_b{sim};
  path.segment_exit(a).register_flow(fa, &out_a);
  path.segment_exit(b).register_flow(fb, &out_b);
  Packet pa = transit_packet(sim, fa);
  pa.exit_hop = path.exit_hop_value(a);
  Packet pb = transit_packet(sim, fb);
  pb.exit_hop = path.exit_hop_value(b);
  path.segment_entry(a).handle(pa);
  path.segment_entry(b).handle(pb);
  sim.run_all();
  EXPECT_EQ(out_a.packets.size(), 1u);
  EXPECT_EQ(out_b.packets.size(), 1u);
  // Both crossed the shared middle link; only `a` used the first link.
  EXPECT_EQ(path.link(0).packets_forwarded(), 1u);
  EXPECT_EQ(path.link(1).packets_forwarded(), 2u);
}

TEST(Path, PerFlowDropsVisibleAcrossLinks) {
  Simulator sim;
  // Tiny buffer on the middle link forces drops there.
  auto hops = three_hops();
  hops[1].buffer_limit = DataSize::bytes(1000);
  Path path{sim, hops};
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.egress().register_flow(flow, &out);
  // A burst of back-to-back packets: the 10 Mb/s middle link can't drain.
  for (int i = 0; i < 10; ++i) {
    path.ingress().handle(transit_packet(sim, flow, 1000));
  }
  sim.run_all();
  std::uint64_t drops = 0;
  for (std::size_t i = 0; i < path.hop_count(); ++i) {
    drops += path.link(i).drops_for_flow(flow);
  }
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(out.packets.size() + drops, 10u);
}

}  // namespace
}  // namespace pathload::sim
