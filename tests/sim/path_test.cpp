#include <gtest/gtest.h>

#include <vector>

#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace pathload::sim {
namespace {

class Collector final : public PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_{sim} {}
  void handle(const Packet& p) override {
    packets.push_back(p);
    arrivals.push_back(sim_.now());
  }
  std::vector<Packet> packets;
  std::vector<TimePoint> arrivals;

 private:
  Simulator& sim_;
};

std::vector<HopSpec> three_hops() {
  return {
      {Rate::mbps(100), Duration::milliseconds(10), DataSize::bytes(1'000'000)},
      {Rate::mbps(10), Duration::milliseconds(10), DataSize::bytes(1'000'000)},
      {Rate::mbps(100), Duration::milliseconds(10), DataSize::bytes(1'000'000)},
  };
}

Packet transit_packet(Simulator& sim, std::uint32_t flow, std::int32_t size = 1000) {
  Packet p;
  p.id = sim.next_packet_id();
  p.flow = flow;
  p.kind = PacketKind::kProbe;
  p.size_bytes = size;
  p.transit = true;
  return p;
}

TEST(Path, RejectsEmptyHopList) {
  Simulator sim;
  EXPECT_THROW(Path(sim, {}), std::invalid_argument);
}

TEST(Path, CapacityIsNarrowLink) {
  Simulator sim;
  Path path{sim, three_hops()};
  EXPECT_EQ(path.capacity(), Rate::mbps(10));
}

TEST(Path, BaseDelaySumsPropagation) {
  Simulator sim;
  Path path{sim, three_hops()};
  EXPECT_EQ(path.base_delay(), Duration::milliseconds(30));
}

TEST(Path, UnloadedTransitTimeAddsSerialization) {
  Simulator sim;
  Path path{sim, three_hops()};
  // 1000 B: 80 us at 100 Mb/s, 800 us at 10, 80 us at 100 -> 960 us + 30 ms.
  EXPECT_EQ(path.unloaded_transit_time(DataSize::bytes(1000)),
            Duration::milliseconds(30) + Duration::microseconds(960));
}

TEST(Path, TransitPacketTraversesAllLinksToEgress) {
  Simulator sim;
  Path path{sim, three_hops()};
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.egress().register_flow(flow, &out);
  path.ingress().handle(transit_packet(sim, flow));
  sim.run_all();
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.arrivals[0] - TimePoint::origin(),
            path.unloaded_transit_time(DataSize::bytes(1000)));
  for (std::size_t i = 0; i < path.hop_count(); ++i) {
    EXPECT_EQ(path.link(i).packets_forwarded(), 1u);
  }
}

TEST(Path, CrossTrafficPacketLeavesAfterOneHop) {
  Simulator sim;
  Path path{sim, three_hops()};
  Packet p;
  p.id = sim.next_packet_id();
  p.size_bytes = 500;
  p.transit = false;  // hop-local
  path.link(1).handle(p);
  sim.run_all();
  EXPECT_EQ(path.link(0).packets_forwarded(), 0u);
  EXPECT_EQ(path.link(1).packets_forwarded(), 1u);
  EXPECT_EQ(path.link(2).packets_forwarded(), 0u);
  EXPECT_EQ(path.egress().unclaimed_packets(), 0u);
}

TEST(FlowDemux, RoutesByFlowId) {
  Simulator sim;
  Path path{sim, three_hops()};
  const std::uint32_t f1 = sim.next_flow_id();
  const std::uint32_t f2 = sim.next_flow_id();
  Collector out1{sim};
  Collector out2{sim};
  path.egress().register_flow(f1, &out1);
  path.egress().register_flow(f2, &out2);
  path.ingress().handle(transit_packet(sim, f1));
  path.ingress().handle(transit_packet(sim, f2));
  path.ingress().handle(transit_packet(sim, f1));
  sim.run_all();
  EXPECT_EQ(out1.packets.size(), 2u);
  EXPECT_EQ(out2.packets.size(), 1u);
}

TEST(FlowDemux, CountsUnclaimedPackets) {
  Simulator sim;
  Path path{sim, three_hops()};
  path.ingress().handle(transit_packet(sim, 999));
  sim.run_all();
  EXPECT_EQ(path.egress().unclaimed_packets(), 1u);
}

TEST(FlowDemux, UnregisterStopsDelivery) {
  Simulator sim;
  Path path{sim, three_hops()};
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.egress().register_flow(flow, &out);
  path.egress().unregister_flow(flow);
  path.ingress().handle(transit_packet(sim, flow));
  sim.run_all();
  EXPECT_TRUE(out.packets.empty());
  EXPECT_EQ(path.egress().unclaimed_packets(), 1u);
}

TEST(Path, PerFlowDropsVisibleAcrossLinks) {
  Simulator sim;
  // Tiny buffer on the middle link forces drops there.
  auto hops = three_hops();
  hops[1].buffer_limit = DataSize::bytes(1000);
  Path path{sim, hops};
  const std::uint32_t flow = sim.next_flow_id();
  Collector out{sim};
  path.egress().register_flow(flow, &out);
  // A burst of back-to-back packets: the 10 Mb/s middle link can't drain.
  for (int i = 0; i < 10; ++i) {
    path.ingress().handle(transit_packet(sim, flow, 1000));
  }
  sim.run_all();
  std::uint64_t drops = 0;
  for (std::size_t i = 0; i < path.hop_count(); ++i) {
    drops += path.link(i).drops_for_flow(flow);
  }
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(out.packets.size() + drops, 10u);
}

}  // namespace
}  // namespace pathload::sim
