#include <gtest/gtest.h>

#include <memory>

#include "tcp/reno.hpp"

namespace pathload::tcp {
namespace {

/// A path whose single link can be "blackholed" by swapping its downstream
/// to nowhere — for exercising the RTO machinery.
struct BlackholeNet {
  sim::Simulator sim;
  std::unique_ptr<sim::Path> path;

  BlackholeNet() {
    path = std::make_unique<sim::Path>(
        sim, std::vector<sim::HopSpec>{{Rate::mbps(8), Duration::milliseconds(20),
                                        DataSize::bytes(500'000)}});
  }

  void blackhole() { path->link(0).set_downstream(nullptr); }
};

TEST(TcpRto, BlackholeTriggersTimeoutsWithBackoff) {
  BlackholeNet net;
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(20)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(2));  // transfer under way
  EXPECT_EQ(conn.sender().timeouts(), 0u);

  net.blackhole();  // every subsequent packet vanishes
  net.sim.run_for(Duration::seconds(30));
  // Multiple RTOs with exponential backoff, no fast retransmits possible
  // (no ACKs at all), and cwnd collapsed to 1.
  EXPECT_GE(conn.sender().timeouts(), 3u);
  EXPECT_LE(conn.sender().timeouts(), 10u);  // backoff: not one per RTO_min
  EXPECT_DOUBLE_EQ(conn.sender().cwnd_segments(), 1.0);
}

TEST(TcpRto, KeepsRetryingThroughAnOutage) {
  BlackholeNet net;
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(20)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(2));
  const auto sent_before = conn.sender().segments_sent();

  net.blackhole();
  net.sim.run_for(Duration::seconds(5));
  const auto acked_at_outage = conn.sender().segments_acked();
  const auto sent_at_outage = conn.sender().segments_sent();
  EXPECT_GT(sent_at_outage, sent_before);  // go-back-N retransmissions

  // The timer never dies: retransmissions continue as long as data is
  // outstanding, even with zero feedback.
  net.sim.run_for(Duration::seconds(10));
  EXPECT_GT(conn.sender().segments_sent(), sent_at_outage);
  EXPECT_EQ(conn.sender().segments_acked(), acked_at_outage);
}

TEST(TcpRto, RtoBackoffCapsAtMax) {
  BlackholeNet net;
  TcpConfig cfg;
  cfg.initial_rto = Duration::milliseconds(500);
  cfg.max_rto = Duration::seconds(4);
  TcpConnection conn{net.sim, *net.path, cfg, Duration::milliseconds(20)};
  net.blackhole();  // nothing ever arrives
  conn.sender().start();
  net.sim.run_for(Duration::seconds(60));
  // With doubling from 500 ms capped at 4 s: 0.5+1+2+4+4+... -> in 60 s
  // roughly 16 timeouts; without the cap there would be ~7.
  EXPECT_GE(conn.sender().timeouts(), 12u);
}

TEST(TcpRto, NoSpuriousTimeoutWhenIdle) {
  BlackholeNet net;
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(20)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(2));
  conn.sender().stop();
  net.sim.run_for(Duration::seconds(30));  // all data acked, long idle
  EXPECT_EQ(conn.sender().timeouts(), 0u);
}

TEST(TcpRto, SrttConvergesAndRtoTracksIt) {
  BlackholeNet net;
  TcpConfig cfg;
  cfg.advertised_window = 4.0;
  TcpConnection conn{net.sim, *net.path, cfg, Duration::milliseconds(20)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(10));
  // Base RTT = 40 ms prop + small serialization; no congestion.
  EXPECT_NEAR(conn.sender().srtt().millis(), 40.0, 8.0);
  EXPECT_EQ(conn.sender().timeouts(), 0u);
}

}  // namespace
}  // namespace pathload::tcp
