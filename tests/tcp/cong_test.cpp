// Tests for the pluggable congestion-control policies (tcp/cong.hpp):
// the factory contract, the bit-frozen legacy reno expressions, the two
// RFC 5681 conformance fixes in reno-rfc, CUBIC's decrease/growth shape,
// and the BBR-style model's sampler handshake.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "tcp/cong.hpp"
#include "tcp/rate_sampler.hpp"
#include "tcp/reno.hpp"

namespace pathload::tcp {
namespace {

TimePoint at(double secs) { return TimePoint{} + Duration::seconds(secs); }

CongestionOps::Context ctx_with_flight(double flight) {
  CongestionOps::Context ctx;
  ctx.flight_size = flight;
  return ctx;
}

TEST(CongestionOpsFactory, BuildsEveryCataloguedPolicy) {
  const TcpConfig cfg;
  for (const auto name : congestion_ops_names()) {
    const auto ops = make_congestion_ops(name, cfg);
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->name(), name);
    EXPECT_DOUBLE_EQ(ops->cwnd(), cfg.initial_cwnd);
    EXPECT_DOUBLE_EQ(ops->ssthresh(), cfg.initial_ssthresh);
  }
  EXPECT_EQ(congestion_ops_names().size(), 4u);
}

TEST(CongestionOpsFactory, UnknownNameThrowsWithTheAcceptedSet) {
  try {
    (void)make_congestion_ops("vegas", TcpConfig{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'vegas'"), std::string::npos);
    EXPECT_NE(msg.find("reno, reno-rfc, cubic, or bbr"), std::string::npos);
  }
}

// ------------------------------------------------------------------
// Legacy reno: the exact pre-seam expressions (the golden anchors were
// captured from these — pin each one).

TEST(RenoOps, LegacyExpressionsArePinned) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  cfg.initial_ssthresh = 8.0;
  const auto ops = make_congestion_ops("reno", cfg);
  const auto ctx = ctx_with_flight(0.0);

  ops->on_ack(3.0, ctx);  // slow start: cwnd += newly
  EXPECT_DOUBLE_EQ(ops->cwnd(), 5.0);
  ops->on_ack(4.0, ctx);  // stretch ACK overshoots ssthresh (the legacy bug)
  EXPECT_DOUBLE_EQ(ops->cwnd(), 9.0);
  ops->on_ack(2.0, ctx);  // congestion avoidance: cwnd += newly / cwnd
  EXPECT_DOUBLE_EQ(ops->cwnd(), 9.0 + 2.0 / 9.0);
}

TEST(RenoOps, LegacyRecoveryHalvesCwndNotFlight) {
  TcpConfig cfg;
  cfg.initial_cwnd = 20.0;
  const auto ops = make_congestion_ops("reno", cfg);
  // Flight is much smaller than cwnd (rwnd-capped flow): legacy still
  // halves cwnd.
  ops->on_enter_recovery(3, ctx_with_flight(6.0));
  EXPECT_DOUBLE_EQ(ops->ssthresh(), 10.0);
  EXPECT_DOUBLE_EQ(ops->cwnd(), 13.0);  // ssthresh + dupack_threshold
  ops->on_dup_ack_inflate(ctx_with_flight(6.0));
  EXPECT_DOUBLE_EQ(ops->cwnd(), 14.0);
  ops->on_partial_ack(4.0, ctx_with_flight(6.0));
  EXPECT_DOUBLE_EQ(ops->cwnd(), 11.0);  // max(ssthresh, cwnd - newly + 1)
  ops->on_recovery_exit(ctx_with_flight(6.0));
  EXPECT_DOUBLE_EQ(ops->cwnd(), 10.0);
  ops->on_rto(ctx_with_flight(6.0));
  EXPECT_DOUBLE_EQ(ops->ssthresh(), 5.0);  // again cwnd/2, not flight/2
  EXPECT_DOUBLE_EQ(ops->cwnd(), 1.0);
}

// ------------------------------------------------------------------
// reno-rfc: the two RFC 5681 conformance fixes.

TEST(RenoRfcOps, SsthreshHalvesFlightSizeNotCwnd) {
  TcpConfig cfg;
  cfg.initial_cwnd = 20.0;
  const auto ops = make_congestion_ops("reno-rfc", cfg);
  ops->on_enter_recovery(3, ctx_with_flight(6.0));
  EXPECT_DOUBLE_EQ(ops->ssthresh(), 3.0);  // max(FlightSize/2, 2)
  EXPECT_DOUBLE_EQ(ops->cwnd(), 6.0);
  ops->on_rto(ctx_with_flight(3.0));
  EXPECT_DOUBLE_EQ(ops->ssthresh(), 2.0);  // the RFC's floor of 2
  EXPECT_DOUBLE_EQ(ops->cwnd(), 1.0);
}

TEST(RenoRfcOps, SlowStartStretchAckStopsAtTheBoundary) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  cfg.initial_ssthresh = 4.0;
  const auto ops = make_congestion_ops("reno-rfc", cfg);
  // 8 segments in one stretch ACK: 2 close the gap to ssthresh, the
  // remaining 6 grow linearly from the boundary (6/4 = 1.5).
  ops->on_ack(8.0, ctx_with_flight(8.0));
  EXPECT_DOUBLE_EQ(ops->cwnd(), 5.5);
  // Compare: legacy reno jumps straight to 10.
  const auto legacy = make_congestion_ops("reno", cfg);
  legacy->on_ack(8.0, ctx_with_flight(8.0));
  EXPECT_DOUBLE_EQ(legacy->cwnd(), 10.0);
}

TEST(RenoRfcOps, BelowBoundaryAcksStillSlowStart) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  cfg.initial_ssthresh = 64.0;
  const auto ops = make_congestion_ops("reno-rfc", cfg);
  ops->on_ack(2.0, ctx_with_flight(2.0));
  EXPECT_DOUBLE_EQ(ops->cwnd(), 4.0);  // pure exponential while far below
}

// ------------------------------------------------------------------
// cubic: decrease factor and the C*(t-K)^3 + W_max profile.

TEST(CubicOps, DecreaseUsesBetaAndFlightSize) {
  TcpConfig cfg;
  cfg.initial_cwnd = 30.0;
  const auto ops = make_congestion_ops("cubic", cfg);
  ops->on_enter_recovery(3, ctx_with_flight(20.0));
  EXPECT_DOUBLE_EQ(ops->ssthresh(), 14.0);  // 20 * 0.7
  EXPECT_DOUBLE_EQ(ops->cwnd(), 17.0);
  ops->on_recovery_exit(ctx_with_flight(14.0));
  EXPECT_DOUBLE_EQ(ops->cwnd(), 14.0);
}

TEST(CubicOps, GrowthIsConcaveThenProbesPastWMax) {
  TcpConfig cfg;
  cfg.initial_cwnd = 30.0;
  cfg.initial_ssthresh = 4.0;  // start in congestion avoidance
  const auto ops = make_congestion_ops("cubic", cfg);
  ops->on_enter_recovery(3, ctx_with_flight(20.0));  // W_max = 20
  ops->on_recovery_exit(ctx_with_flight(14.0));

  // Feed one ACK per 10 ms of virtual time; the window must grow
  // monotonically and eventually pass the old ceiling.
  CongestionOps::Context ctx;
  ctx.srtt = Duration::milliseconds(40);
  double prev = ops->cwnd();
  double early_growth = 0.0;
  bool passed_wmax = false;
  for (int i = 0; i < 2000; ++i) {
    ctx.now = at(0.01 * i);
    ops->on_ack(1.0, ctx);
    EXPECT_GE(ops->cwnd(), prev);
    if (i == 100) early_growth = ops->cwnd() - 14.0;
    if (ops->cwnd() > 20.0) passed_wmax = true;
    prev = ops->cwnd();
  }
  EXPECT_TRUE(passed_wmax);
  // Concave approach: most of the climb to W_max happens early.
  EXPECT_GT(early_growth, 0.0);
}

// ------------------------------------------------------------------
// bbr: the sampler handshake and the app-limited guard.

RateSample sample(double mbps, bool app_limited) {
  RateSample s;
  s.delivery_rate = Rate::mbps(mbps);
  s.interval = Duration::milliseconds(10);
  s.delivered = DataSize::bytes(14600);
  s.app_limited = app_limited;
  return s;
}

TEST(BbrOps, StartupGrowsLikeSlowStartUntilTheModelExists) {
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  const auto ops = make_congestion_ops("bbr", cfg);
  CongestionOps::Context ctx;  // no sample, no srtt: model incomplete
  ops->on_ack(2.0, ctx);
  EXPECT_DOUBLE_EQ(ops->cwnd(), 4.0);
  ops->on_ack(4.0, ctx);
  EXPECT_DOUBLE_EQ(ops->cwnd(), 8.0);
}

TEST(BbrOps, CwndTracksTwiceTheModeledBdp) {
  TcpConfig cfg;
  cfg.mss_bytes = 1460;
  const auto ops = make_congestion_ops("bbr", cfg);
  CongestionOps::Context ctx;
  ctx.srtt = Duration::milliseconds(100);
  ctx.now = at(1.0);
  const RateSample s = sample(11.68, false);  // 11.68 Mb/s, 100 ms
  ctx.sample = &s;
  ops->on_ack(1.0, ctx);
  // BDP = 11.68e6 * 0.1 / (8 * 1460) = 100 segments; cwnd = 2x.
  EXPECT_NEAR(ops->cwnd(), 200.0, 1e-6);
}

TEST(BbrOps, AppLimitedSamplesNeverRaiseTheModel) {
  TcpConfig cfg;
  cfg.mss_bytes = 1460;
  const auto ops = make_congestion_ops("bbr", cfg);
  CongestionOps::Context ctx;
  ctx.srtt = Duration::milliseconds(100);
  ctx.now = at(1.0);
  const RateSample honest = sample(11.68, false);
  ctx.sample = &honest;
  ops->on_ack(1.0, ctx);
  const double before = ops->cwnd();

  // A 10x app-limited burst must not move the bandwidth model.
  const RateSample burst = sample(116.8, true);
  ctx.now = at(1.1);
  ctx.sample = &burst;
  ops->on_ack(1.0, ctx);
  EXPECT_DOUBLE_EQ(ops->cwnd(), before);
}

TEST(BbrOps, LossDoesNotShrinkTheModelWindow) {
  TcpConfig cfg;
  cfg.mss_bytes = 1460;
  const auto ops = make_congestion_ops("bbr", cfg);
  CongestionOps::Context ctx;
  ctx.srtt = Duration::milliseconds(100);
  ctx.now = at(1.0);
  const RateSample s = sample(11.68, false);
  ctx.sample = &s;
  ops->on_ack(1.0, ctx);
  ASSERT_NEAR(ops->cwnd(), 200.0, 1e-6);

  // Fast recovery: cwnd stays at the model, not at flight/2 + 3.
  ctx.sample = nullptr;
  ctx.flight_size = 200.0;
  ops->on_enter_recovery(3, ctx);
  EXPECT_NEAR(ops->cwnd(), 200.0, 1e-6);
  ctx.now = at(1.2);
  ops->on_recovery_exit(ctx);
  EXPECT_NEAR(ops->cwnd(), 200.0, 1e-6);
}

// ------------------------------------------------------------------
// The sender honors TcpConfig::cc end to end.

TEST(TcpSenderCc, SenderExposesTheSelectedPolicy) {
  sim::Simulator sim;
  sim::Path path{sim,
                 std::vector<sim::HopSpec>{
                     {Rate::mbps(10), Duration::milliseconds(10),
                      Rate::mbps(10).bytes_in(Duration::milliseconds(250))}}};
  for (const auto name : congestion_ops_names()) {
    TcpConfig cfg;
    cfg.cc = std::string{name};
    TcpConnection conn{sim, path, cfg, Duration::milliseconds(10)};
    EXPECT_EQ(conn.sender().congestion_ops().name(), name);
    EXPECT_DOUBLE_EQ(conn.sender().cwnd_segments(), cfg.initial_cwnd);
  }
  TcpConfig bad;
  bad.cc = "newreno-plus";
  EXPECT_THROW((TcpConnection{sim, path, bad, Duration::milliseconds(10)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pathload::tcp
