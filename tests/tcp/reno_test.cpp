#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/monitor.hpp"
#include "sim/rtt_probe.hpp"
#include "sim/traffic.hpp"
#include "tcp/reno.hpp"

namespace pathload::tcp {
namespace {

struct TestNet {
  sim::Simulator sim;
  std::unique_ptr<sim::Path> path;

  explicit TestNet(Rate bottleneck, Duration buffer_drain = Duration::milliseconds(250),
                   Duration prop = Duration::milliseconds(40)) {
    path = std::make_unique<sim::Path>(
        sim, std::vector<sim::HopSpec>{
                 {bottleneck, prop, bottleneck.bytes_in(buffer_drain)}});
  }
};

TEST(TcpReceiver, CumulativeAckAdvancesInOrder) {
  sim::Simulator sim;
  TcpReceiver rx{sim, Duration::zero()};
  sim::Packet p;
  p.size_bytes = 1500;
  for (std::uint64_t s : {0, 1, 2}) {
    p.tcp_seq = s;
    rx.handle(p);
  }
  EXPECT_EQ(rx.cumulative_ack(), 3u);
}

TEST(TcpReceiver, OutOfOrderBufferedThenDrained) {
  sim::Simulator sim;
  TcpReceiver rx{sim, Duration::zero()};
  sim::Packet p;
  p.size_bytes = 1500;
  p.tcp_seq = 1;
  rx.handle(p);  // hole at 0
  EXPECT_EQ(rx.cumulative_ack(), 0u);
  p.tcp_seq = 2;
  rx.handle(p);
  EXPECT_EQ(rx.cumulative_ack(), 0u);
  p.tcp_seq = 0;
  rx.handle(p);  // fills the hole -> drains 1 and 2
  EXPECT_EQ(rx.cumulative_ack(), 3u);
}

TEST(TcpReceiver, DuplicateSegmentsDoNotRegress) {
  sim::Simulator sim;
  TcpReceiver rx{sim, Duration::zero()};
  sim::Packet p;
  p.size_bytes = 1500;
  p.tcp_seq = 0;
  rx.handle(p);
  rx.handle(p);  // duplicate
  EXPECT_EQ(rx.cumulative_ack(), 1u);
}

TEST(TcpSender, SlowStartDoublesPerRtt) {
  TestNet net{Rate::mbps(100)};  // effectively lossless, RTT-bound
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  conn.sender().start();
  // After ~4 RTTs (RTT ~80 ms) of slow start, cwnd should have grown
  // exponentially from 2: 2 -> 4 -> 8 -> 16 -> 32.
  net.sim.run_for(Duration::milliseconds(4 * 80 + 20));
  EXPECT_GE(conn.sender().cwnd_segments(), 16.0);
  EXPECT_EQ(conn.sender().timeouts(), 0u);
}

TEST(TcpSender, AdvertisedWindowCapsInFlight) {
  TestNet net{Rate::mbps(100)};
  TcpConfig cfg;
  cfg.advertised_window = 8.0;
  TcpConnection conn{net.sim, *net.path, cfg, Duration::milliseconds(40)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(3));
  // Throughput ~ awnd * MSS / RTT = 8 * 1460 B / 80 ms ~ 1.17 Mb/s.
  const double tput = conn.sender().average_throughput().mbits_per_sec();
  EXPECT_NEAR(tput, 8 * 1460 * 8.0 / 0.080 * 1e-6, 0.3);
}

TEST(TcpSender, SaturatesBottleneck) {
  TestNet net{Rate::mbps(8)};
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(30));
  // A greedy Reno flow alone on an 8 Mb/s link with adequate buffering
  // should achieve near-capacity goodput.
  EXPECT_GT(conn.sender().average_throughput().mbits_per_sec(), 6.8);
  EXPECT_LT(conn.sender().average_throughput().mbits_per_sec(), 8.2);
}

TEST(TcpSender, LossTriggersFastRetransmitNotOnlyTimeouts) {
  TestNet net{Rate::mbps(4), Duration::milliseconds(60)};  // small buffer
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(30));
  EXPECT_GT(conn.sender().fast_retransmits(), 0u);
  // Fast retransmit should dominate over RTO for isolated drop-tail losses.
  EXPECT_GT(conn.sender().fast_retransmits(), conn.sender().timeouts());
}

TEST(TcpSender, CwndSawtoothUnderCongestion) {
  TestNet net{Rate::mbps(4), Duration::milliseconds(100)};
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  conn.sender().start();
  // Sample cwnd over time; expect both growth and multiplicative drops.
  double max_cwnd = 0.0;
  bool saw_decrease = false;
  double prev = 0.0;
  for (int i = 0; i < 300; ++i) {
    net.sim.run_for(Duration::milliseconds(100));
    const double c = conn.sender().cwnd_segments();
    if (c < prev * 0.7) saw_decrease = true;
    max_cwnd = std::max(max_cwnd, c);
    prev = c;
  }
  EXPECT_TRUE(saw_decrease);
  EXPECT_GT(max_cwnd, 8.0);
}

TEST(TcpSender, RttInflatesWithQueueFill) {
  // The Fig. 16 mechanism: a greedy TCP fills the drop-tail queue, so RTT
  // grows from the base toward base + buffer drain time.
  TestNet net{Rate::mbps(8), Duration::milliseconds(200)};
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(20));
  const auto& samples = conn.sender().rtt_samples_secs();
  ASSERT_GT(samples.size(), 100u);
  double max_rtt = 0.0;
  for (double s : samples) max_rtt = std::max(max_rtt, s);
  // Base RTT = 80 ms; queueing should push peaks well beyond 150 ms.
  EXPECT_GT(max_rtt, 0.15);
}

TEST(TcpSender, StopEndsTransfer) {
  TestNet net{Rate::mbps(8)};
  TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(5));
  conn.sender().stop();
  net.sim.run_for(Duration::seconds(2));  // drain
  const auto acked = conn.sender().segments_acked();
  net.sim.run_for(Duration::seconds(5));
  EXPECT_EQ(conn.sender().segments_acked(), acked);
}

TEST(TcpSender, SrttTracksPathRtt) {
  TestNet net{Rate::mbps(50)};
  TcpConfig cfg;
  cfg.advertised_window = 4.0;  // light load, no queueing
  TcpConnection conn{net.sim, *net.path, cfg, Duration::milliseconds(40)};
  conn.sender().start();
  net.sim.run_for(Duration::seconds(5));
  EXPECT_NEAR(conn.sender().srtt().millis(), 80.0, 10.0);
}

TEST(TcpSender, TwoGreedyFlowsShareFairly) {
  TestNet net{Rate::mbps(8), Duration::milliseconds(250)};
  TcpConnection a{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  TcpConnection b{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  a.sender().start();
  b.sender().start();
  net.sim.run_for(Duration::seconds(60));
  const double ta = a.sender().average_throughput().mbits_per_sec();
  const double tb = b.sender().average_throughput().mbits_per_sec();
  EXPECT_NEAR(ta + tb, 8.0, 1.2);      // jointly saturate
  EXPECT_GT(std::min(ta, tb) / std::max(ta, tb), 0.5);  // rough fairness
}

TEST(TcpConnection, SafeToDestroyWithEventsInFlight) {
  // ACK deliveries and RTO timers may still be scheduled when a connection
  // is torn down (e.g. the Fig. 15 timeline destroys the BTC connection at
  // an interval boundary). Those events must expire, not dereference a
  // dead sender.
  TestNet net{Rate::mbps(8)};
  {
    TcpConnection conn{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
    conn.sender().start();
    net.sim.run_for(Duration::seconds(2));
    // Destroy mid-transfer with ACKs in flight and the RTO armed.
  }
  EXPECT_NO_THROW(net.sim.run_for(Duration::seconds(5)));
}

TEST(TcpSender, GreedyFlowStealsFromWindowLimitedFlows) {
  // Section VII's key effect: a BTC connection inflates RTT, which cuts
  // window-limited flows' throughput (awnd/RTT), letting BTC take more
  // than what was "available" before it started.
  TestNet net{Rate::mbps(8), Duration::milliseconds(250)};
  TcpConfig limited;
  limited.advertised_window = 10.0;  // ~1.5 Mb/s at 80 ms base RTT
  std::vector<std::unique_ptr<TcpConnection>> cross;
  for (int i = 0; i < 3; ++i) {
    cross.push_back(std::make_unique<TcpConnection>(net.sim, *net.path, limited,
                                                    Duration::milliseconds(40)));
    cross.back()->sender().start();
  }
  net.sim.run_for(Duration::seconds(30));
  DataSize before{};
  for (auto& c : cross) before += c->sender().bytes_acked();
  const Rate cross_rate_before = rate_of(before, Duration::seconds(30));

  TcpConnection btc{net.sim, *net.path, TcpConfig{}, Duration::milliseconds(40)};
  btc.sender().start();
  net.sim.run_for(Duration::seconds(30));
  DataSize after{};
  for (auto& c : cross) after += c->sender().bytes_acked();
  const Rate cross_rate_during = rate_of(after - before, Duration::seconds(30));

  EXPECT_LT(cross_rate_during.mbits_per_sec(), cross_rate_before.mbits_per_sec());
  // BTC got more than the pre-existing avail-bw (8 - cross_before).
  EXPECT_GT(btc.sender().average_throughput().mbits_per_sec(),
            8.0 - cross_rate_before.mbits_per_sec());
}

}  // namespace
}  // namespace pathload::tcp
