// Tests for the responsive cross-workload layer: segment-scoped TCP flows
// (greedy, rwnd-capped, on/off restart) driven by tcp::SegmentTcpFlow.

#include <gtest/gtest.h>

#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "tcp/workload.hpp"

namespace pathload::tcp {
namespace {

std::vector<sim::HopSpec> three_hops() {
  return {
      {Rate::mbps(100), Duration::milliseconds(5), DataSize::bytes(1'000'000)},
      {Rate::mbps(10), Duration::milliseconds(5), DataSize::bytes(1'000'000)},
      {Rate::mbps(100), Duration::milliseconds(5), DataSize::bytes(1'000'000)},
  };
}

TEST(SegmentTcpFlow, GreedyFlowFillsItsSegment) {
  sim::Simulator sim;
  sim::Path path{sim, three_hops()};
  SegmentFlowConfig cfg;  // whole path, greedy
  SegmentTcpFlow flow{sim, path, cfg};
  flow.launch();
  sim.run_for(Duration::seconds(10));
  ASSERT_TRUE(flow.active());
  EXPECT_EQ(flow.connections_started(), 1u);
  // Uncontended 10 Mb/s bottleneck: a greedy Reno flow should move most of
  // it once past slow start.
  const double mbps = flow.bytes_acked().bits() / 10.0 / 1e6;
  EXPECT_GT(mbps, 6.0);
  EXPECT_LE(mbps, 10.0);
}

TEST(SegmentTcpFlow, PartialSegmentLeavesOtherLinksUntouched) {
  sim::Simulator sim;
  sim::Path path{sim, three_hops()};
  SegmentFlowConfig cfg;
  cfg.segment = sim::Segment{1, 1};  // hop-local responsive flow
  SegmentTcpFlow flow{sim, path, cfg};
  flow.launch();
  sim.run_for(Duration::seconds(5));
  EXPECT_GT(flow.bytes_acked().byte_count(), 0);
  EXPECT_EQ(path.link(0).packets_forwarded(), 0u);
  EXPECT_GT(path.link(1).packets_forwarded(), 0u);
  EXPECT_EQ(path.link(2).packets_forwarded(), 0u);
  EXPECT_EQ(path.egress().unclaimed_packets(), 0u);
}

TEST(SegmentTcpFlow, RwndCapBoundsThroughput) {
  sim::Simulator sim;
  sim::Path path{sim, three_hops()};
  SegmentFlowConfig cfg;
  cfg.tcp.advertised_window = 8.0;  // 8 segments per ~40 ms RTT
  cfg.reverse_delay = Duration::milliseconds(25);
  SegmentTcpFlow flow{sim, path, cfg};
  flow.launch();
  sim.run_for(Duration::seconds(10));
  // rwnd/RTT with RTT >= 40 ms (15 ms forward prop + serialization + 25 ms
  // reverse) bounds the rate to ~2.9 Mb/s; well below the greedy ~9.
  const double mbps = flow.bytes_acked().bits() / 10.0 / 1e6;
  EXPECT_GT(mbps, 1.0);
  EXPECT_LT(mbps, 4.0);
}

TEST(SegmentTcpFlow, StartAndStopBoundTheTransfer) {
  sim::Simulator sim;
  sim::Path path{sim, three_hops()};
  SegmentFlowConfig cfg;
  cfg.start = Duration::seconds(2);
  cfg.stop = Duration::seconds(4);
  SegmentTcpFlow flow{sim, path, cfg};
  flow.launch();
  sim.run_for(Duration::seconds(1));
  EXPECT_FALSE(flow.active());
  EXPECT_EQ(flow.bytes_acked().byte_count(), 0);
  sim.run_for(Duration::seconds(2));  // t = 3: ON
  EXPECT_TRUE(flow.active());
  sim.run_for(Duration::seconds(2));  // t = 5: stopped
  EXPECT_FALSE(flow.active());
  const DataSize at_stop = flow.bytes_acked();
  EXPECT_GT(at_stop.byte_count(), 0);
  sim.run_for(Duration::seconds(2));  // no restart after stop
  EXPECT_EQ(flow.bytes_acked(), at_stop);
  EXPECT_EQ(flow.connections_started(), 1u);
}

TEST(SegmentTcpFlow, OnOffRestartCyclesFreshConnections) {
  sim::Simulator sim;
  sim::Path path{sim, three_hops()};
  SegmentFlowConfig cfg;
  cfg.on_period = Duration::seconds(2);
  cfg.off_period = Duration::seconds(1);
  SegmentTcpFlow flow{sim, path, cfg};
  flow.launch();
  sim.run_for(Duration::seconds(1));  // t = 1: first ON period
  EXPECT_TRUE(flow.active());
  const std::uint32_t first_flow_id = flow.connection()->flow();
  sim.run_for(Duration::seconds(1.5));  // t = 2.5: OFF gap
  EXPECT_FALSE(flow.active());
  const DataSize after_first_burst = flow.bytes_acked();
  EXPECT_GT(after_first_burst.byte_count(), 0);
  sim.run_for(Duration::seconds(0.55));  // t = 3.05: just into ON period 2
  ASSERT_TRUE(flow.active());
  // A *fresh* connection: new flow id, slow start from the initial window
  // again (one ~40 ms RTT in, cwnd is still single-digit).
  EXPECT_NE(flow.connection()->flow(), first_flow_id);
  EXPECT_EQ(flow.connections_started(), 2u);
  EXPECT_LT(flow.connection()->sender().cwnd_segments(), 10.0);
  sim.run_for(Duration::seconds(1));
  EXPECT_GT(flow.bytes_acked().byte_count(), after_first_burst.byte_count());
}

TEST(SegmentTcpFlow, StopEndsTheCycleForGood) {
  sim::Simulator sim;
  sim::Path path{sim, three_hops()};
  SegmentFlowConfig cfg;
  cfg.on_period = Duration::seconds(1);
  cfg.off_period = Duration::seconds(1);
  cfg.stop = Duration::seconds(2.5);  // cuts the second ON period short
  SegmentTcpFlow flow{sim, path, cfg};
  flow.launch();
  sim.run_for(Duration::seconds(10));
  EXPECT_FALSE(flow.active());
  EXPECT_EQ(flow.connections_started(), 2u);
  const DataSize done = flow.bytes_acked();
  sim.run_for(Duration::seconds(5));
  EXPECT_EQ(flow.bytes_acked(), done);
}

TEST(SegmentTcpFlow, RejectsBadSegmentAtConstruction) {
  sim::Simulator sim;
  sim::Path path{sim, three_hops()};
  SegmentFlowConfig cfg;
  cfg.segment = sim::Segment{2, 1};
  EXPECT_THROW((SegmentTcpFlow{sim, path, cfg}), std::out_of_range);
}

TEST(SegmentTcpFlow, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Simulator sim;
    sim::Path path{sim, three_hops()};
    SegmentFlowConfig cfg;
    cfg.on_period = Duration::seconds(1);
    cfg.off_period = Duration::milliseconds(500);
    SegmentTcpFlow flow{sim, path, cfg};
    flow.launch();
    sim.run_for(Duration::seconds(8));
    return std::pair{flow.bytes_acked().byte_count(), sim.events_processed()};
  };
  const auto a = run_once();
  EXPECT_EQ(a, run_once());
  EXPECT_GT(a.first, 0);
}

}  // namespace
}  // namespace pathload::tcp
