// Property tests for the tcp_rate.c delivery-rate sampler: the
// min(send_rate, ack_rate) ACK-compression guard, app-limited marking,
// physical-bound and whole-transfer-agreement properties over a
// simulated bulk transfer, and the estimator-side reduction's
// app-limited monotonicity contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/delivery_rate.hpp"
#include "core/channel.hpp"
#include "tcp/bulk.hpp"
#include "tcp/rate_sampler.hpp"
#include "tcp/reno.hpp"

namespace pathload::tcp {
namespace {

constexpr std::int32_t kMss = 1500;

TimePoint at(double secs) { return TimePoint{} + Duration::seconds(secs); }

TEST(RateSampler, StraightPipeRateMatchesTheWire) {
  // 10 segments sent 1 ms apart, each ACKed 1 ms after its send: both
  // clocks agree on 1500 B / 1 ms = 12 Mb/s.
  RateSampler s{kMss};
  s.set_recording(true);
  for (int i = 0; i < 10; ++i) s.on_sent(i, at(0.001 * i), false);
  std::optional<RateSample> last;
  for (int i = 0; i < 10; ++i) {
    const auto sample = s.on_ack(i + 1, at(0.001 * i + 0.001));
    if (sample) last = sample;
  }
  ASSERT_TRUE(last.has_value());
  EXPECT_NEAR(last->delivery_rate.mbits_per_sec(), 12.0, 1e-9);
  EXPECT_FALSE(last->app_limited);
  EXPECT_EQ(s.delivered_segments(), 10u);
}

TEST(RateSampler, AckCompressionCannotInflateTheRate) {
  // 10 segments sent 1 ms apart (send rate 12 Mb/s), then the ACKs all
  // arrive within 10 us of each other — the ack clock alone would read
  // hundreds of Mb/s. The max(send, ack) interval must keep every
  // sample at or below the send rate.
  RateSampler s{kMss};
  s.set_recording(true);
  for (int i = 0; i < 10; ++i) s.on_sent(i, at(0.001 * i), false);
  for (int i = 0; i < 10; ++i) {
    (void)s.on_ack(i + 1, at(0.02 + 1e-5 * i));
  }
  ASSERT_FALSE(s.samples().empty());
  for (const auto& sample : s.samples()) {
    EXPECT_LE(sample.delivery_rate.mbits_per_sec(), 12.0 + 1e-9);
  }
}

TEST(RateSampler, AppLimitedTransmissionsMarkTheirSamples) {
  RateSampler s{kMss};
  s.set_recording(true);
  s.on_sent(0, at(0.0), /*app_limited=*/true);
  s.on_sent(1, at(0.001), /*app_limited=*/false);
  const auto a = s.on_ack(1, at(0.010));
  const auto b = s.on_ack(2, at(0.011));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(a->app_limited);
  EXPECT_FALSE(b->app_limited);
}

TEST(RateSampler, NoSampleWithoutNewDelivery) {
  RateSampler s{kMss};
  s.on_sent(0, at(0.0), false);
  const auto first = s.on_ack(1, at(0.010));
  EXPECT_TRUE(first.has_value());
  // A duplicate cumulative ACK covers nothing new.
  EXPECT_FALSE(s.on_ack(1, at(0.011)).has_value());
  // An ACK for never-sent data has no transmit record to anchor on.
  EXPECT_FALSE(s.on_ack(5, at(0.012)).has_value());
}

TEST(RateSampler, RetransmissionSnapshotSupersedesTheOriginal) {
  // Segment 0 is sent at t=0 (app-limited) and retransmitted at t=1.0
  // (network-limited). The ACK anchors on the most recently sent covered
  // record — the retransmit's snapshot, not the original's — and the
  // interval spans the whole stall: a segment that took a second to
  // deliver must not report a fast rate.
  RateSampler s{kMss};
  s.set_recording(true);
  s.on_sent(0, at(0.0), /*app_limited=*/true);
  s.on_sent(0, at(1.0), /*app_limited=*/false);
  const auto sample = s.on_ack(1, at(1.010));
  ASSERT_TRUE(sample.has_value());
  EXPECT_FALSE(sample->app_limited);  // the later snapshot won
  EXPECT_GE(sample->interval.secs(), 1.0);  // the stall is in the sample
}

// ------------------------------------------------------------------
// Properties over a real simulated transfer.

struct BulkRun {
  core::BulkTransferOutcome outcome;
  explicit BulkRun(Rate bottleneck, Duration duration, TcpConfig tcp = TcpConfig{}) {
    sim::Simulator sim;
    sim::Path path{sim,
                   std::vector<sim::HopSpec>{
                       {bottleneck, Duration::milliseconds(40),
                        bottleneck.bytes_in(Duration::milliseconds(250))}}};
    core::BulkTransferSpec spec;
    spec.duration = duration;
    spec.reverse_delay = Duration::milliseconds(40);
    spec.throughput_bucket = Duration::seconds(1);
    outcome = run_bulk_transfer(sim, path, spec, tcp);
  }
};

TEST(RateSamplerSim, NoSampleExceedsTheBottleneckCapacity) {
  // Every delivered byte crossed the 8 Mb/s bottleneck, so no
  // network-limited delivery-rate sample may materially exceed it
  // (small slack for single-packet interval granularity).
  const BulkRun run{Rate::mbps(8), Duration::seconds(20)};
  ASSERT_FALSE(run.outcome.rate_samples.empty());
  int network_limited = 0;
  for (const auto& s : run.outcome.rate_samples) {
    if (s.app_limited) continue;
    ++network_limited;
    EXPECT_LE(s.rate_mbps, 8.0 * 1.10) << "at t=" << s.at_s;
    EXPECT_GT(s.rate_mbps, 0.0);
    EXPECT_GT(s.interval_s, 0.0);
    EXPECT_GT(s.delivered_bytes, 0);
  }
  EXPECT_GT(network_limited, 8);
}

TEST(RateSamplerSim, SteadyStateSamplesConvergeOnTheBottleneck) {
  // On a lossless-but-saturated path the inter-quartile band of usable
  // samples should sit near the capacity, not near zero.
  const BulkRun run{Rate::mbps(8), Duration::seconds(20)};
  const auto band = baselines::reduce_delivery_rate(run.outcome.rate_samples);
  ASSERT_TRUE(band.has_value());
  EXPECT_GE(band->first, 8.0 * 0.5);
  EXPECT_LE(band->second, 8.0 * 1.10);
  EXPECT_LE(band->first, band->second);
}

TEST(RateSamplerSim, SteadyBandAgreesWithTheTransferGoodput) {
  // Whole-transfer consistency: a sample's window covers the anchor
  // segment's whole flight (windows overlap — they do not partition the
  // byte stream), so the agreement contract is distributional: the
  // steady-state band must reach the transfer's average goodput (which
  // the slow-start ramp and recovery dips drag down), and no sample's
  // window can cover more than the transfer delivered.
  const BulkRun run{Rate::mbps(20), Duration::seconds(10)};
  const double goodput = run.outcome.bytes_acked.byte_count() * 8.0 /
                         run.outcome.elapsed.secs() / 1e6;
  ASSERT_GT(goodput, 0.0);
  const auto band = baselines::reduce_delivery_rate(run.outcome.rate_samples);
  ASSERT_TRUE(band.has_value());
  EXPECT_GE(band->second, goodput * 0.9);
  EXPECT_LE(band->first, 20.0 * 1.10);
  for (const auto& s : run.outcome.rate_samples) {
    EXPECT_LE(s.delivered_bytes, run.outcome.bytes_acked.byte_count());
  }
}

// ------------------------------------------------------------------
// The estimator-side reduction contract.

core::DeliveryRateSample mk(double mbps, bool app_limited) {
  core::DeliveryRateSample s;
  s.rate_mbps = mbps;
  s.interval_s = 0.01;
  s.delivered_bytes = 3000;
  s.app_limited = app_limited;
  return s;
}

TEST(DeliveryRateReduce, AppLimitedSamplesNeverRaiseTheEstimate) {
  std::vector<core::DeliveryRateSample> base;
  for (double r : {4.0, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0}) {
    base.push_back(mk(r, false));
  }
  const auto before = baselines::reduce_delivery_rate(base);
  ASSERT_TRUE(before.has_value());

  // Pile on app-limited samples far above every network-limited one:
  // neither quantile may move.
  auto spiked = base;
  for (int i = 0; i < 50; ++i) spiked.push_back(mk(1000.0, true));
  const auto after = baselines::reduce_delivery_rate(spiked);
  ASSERT_TRUE(after.has_value());
  EXPECT_DOUBLE_EQ(after->first, before->first);
  EXPECT_DOUBLE_EQ(after->second, before->second);
}

TEST(DeliveryRateReduce, NeedsAtLeastOneUsableSample) {
  std::vector<core::DeliveryRateSample> only_app;
  for (int i = 0; i < 10; ++i) only_app.push_back(mk(10.0, true));
  EXPECT_FALSE(baselines::reduce_delivery_rate(only_app).has_value());
  EXPECT_FALSE(baselines::reduce_delivery_rate({}).has_value());
}

TEST(DeliveryRateReduce, QuartilesBracketTheMedianOfUsableSamples) {
  std::vector<core::DeliveryRateSample> s;
  for (double r : {2.0, 4.0, 6.0, 8.0, 10.0}) s.push_back(mk(r, false));
  const auto band = baselines::reduce_delivery_rate(s);
  ASSERT_TRUE(band.has_value());
  EXPECT_LE(band->first, 6.0);
  EXPECT_GE(band->second, 6.0);
  EXPECT_GE(band->first, 2.0);
  EXPECT_LE(band->second, 10.0);
}

}  // namespace
}  // namespace pathload::tcp
