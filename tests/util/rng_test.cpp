#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pathload {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform() != b.uniform()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIndexInBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_index(13), 13u);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng{11};
  OnlineStats s;
  for (int i = 0; i < 200'000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  // Exponential: stddev == mean.
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ParetoMeanConverges) {
  Rng rng{13};
  OnlineStats s;
  for (int i = 0; i < 400'000; ++i) s.add(rng.pareto(1.9, 2.0));
  // alpha = 1.9 has a finite mean but infinite variance; the sample mean
  // converges slowly, so the tolerance is loose.
  EXPECT_NEAR(s.mean(), 2.0, 0.25);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng{17};
  const double alpha = 1.9;
  const double mean = 2.0;
  const double x_m = mean * (alpha - 1.0) / alpha;
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.pareto(alpha, mean), x_m);
  }
}

TEST(Rng, ParetoHeavyTailProducesLargeSamples) {
  Rng rng{19};
  double largest = 0.0;
  for (int i = 0; i < 100'000; ++i) largest = std::max(largest, rng.pareto(1.9, 1.0));
  // With alpha = 1.9 and 1e5 samples, bursts an order of magnitude above
  // the mean are essentially certain.
  EXPECT_GT(largest, 20.0);
}

TEST(Rng, ParetoRejectsAlphaWithInfiniteMean) {
  Rng rng{23};
  EXPECT_THROW(rng.pareto(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(0.5, 1.0), std::invalid_argument);
}

TEST(Rng, PickWeightedMatchesWeights) {
  Rng rng{29};
  const std::vector<double> weights{0.4, 0.5, 0.1};
  std::vector<int> counts(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.pick_weighted(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.4, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.01);
}

TEST(Rng, PickWeightedRejectsEmpty) {
  Rng rng{31};
  EXPECT_THROW(rng.pick_weighted({}), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent{37};
  Rng child1 = parent.fork();
  Rng child2 = parent.fork();
  // Children seeded differently from each other.
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.uniform() != child2.uniform()) differ = true;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace pathload
