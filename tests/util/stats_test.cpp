#include <gtest/gtest.h>

#include <vector>

#include "util/stats.hpp"

namespace pathload {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, CoefficientOfVariation) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.cv(), s.stddev() / 2.0, 1e-12);
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Median, EmptyIsZero) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 15.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> xs{50.0, 10.0, 40.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.5), 2.0);
}

TEST(Deciles, ProducesTenRowsCoveringPaperPercentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const auto rows = deciles_5_to_95(xs);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_DOUBLE_EQ(rows.front().pct, 5.0);
  EXPECT_DOUBLE_EQ(rows.back().pct, 95.0);
  // Monotone non-decreasing values.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].value, rows[i].value);
  }
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 3.0 + ((i % 2 == 0) ? 0.1 : -0.1));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 3.0, 0.2);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(linear_fit({}, {}).slope, 0.0);
  // Single point: slope 0, intercept = y.
  const std::vector<double> x{2.0};
  const std::vector<double> y{7.0};
  EXPECT_DOUBLE_EQ(linear_fit(x, y).intercept, 7.0);
  // Zero x-variance: slope 0, intercept = mean(y).
  const std::vector<double> xs{3.0, 3.0, 3.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const auto fit = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(WeightedAverage, MatchesEq11) {
  // Two runs: 10 Mb/s for 10 s and 20 Mb/s for 30 s -> (100+600)/40 = 17.5.
  const std::vector<WeightedSample> samples{
      {10.0, Duration::seconds(10)},
      {20.0, Duration::seconds(30)},
  };
  EXPECT_DOUBLE_EQ(duration_weighted_average(samples), 17.5);
}

TEST(WeightedAverage, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(duration_weighted_average({}), 0.0);
}

TEST(WeightedAverage, SingleSampleIsItsValue) {
  const std::vector<WeightedSample> samples{{42.0, Duration::seconds(3)}};
  EXPECT_DOUBLE_EQ(duration_weighted_average(samples), 42.0);
}

}  // namespace
}  // namespace pathload
