#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/counter_rng.hpp"

namespace pathload {
namespace {

TEST(CounterRng, DeterministicGivenKeyAndStream) {
  CounterRng a{42, 7};
  CounterRng b{42, 7};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(CounterRng, StreamsAreIndependent) {
  CounterRng a{42, 0};
  CounterRng b{42, 1};
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(CounterRng, KeysDiverge) {
  CounterRng a{1, 0};
  CounterRng b{2, 0};
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(CounterRng, SeekReplaysTheStream) {
  CounterRng rng{99, 3};
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 20; ++i) first.push_back(rng.next());
  rng.seek(0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]) << "draw " << i;
  }
  // Seeking to block k lands exactly on draw 2k (two outputs per block).
  rng.seek(5);
  EXPECT_EQ(rng.next(), first[10]);
  EXPECT_EQ(rng.next(), first[11]);
}

TEST(CounterRng, StreamFactoryMatchesConstructor) {
  CounterRng base{42, 0};
  CounterRng direct{42, 17};
  CounterRng derived = base.stream(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(direct.next(), derived.next());
  }
}

TEST(CounterRng, UniformInUnitInterval) {
  CounterRng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CounterRng, UniformIndexInBounds) {
  CounterRng rng{7};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_index(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
}

TEST(CounterRng, ExponentialMeanMatches) {
  CounterRng rng{11};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(CounterRng, ParetoMeanAndLowerBound) {
  CounterRng rng{13};
  const double alpha = 1.9;
  const double mean = 2.0;
  const double x_m = mean * (alpha - 1.0) / alpha;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(alpha, mean);
    ASSERT_GE(x, x_m);
    sum += x;
  }
  // alpha = 1.9 has infinite variance; the sample mean converges slowly,
  // so the tolerance is loose.
  EXPECT_NEAR(sum / n, mean, 0.4);
}

TEST(CounterRng, ParetoFromUniformMatchesPowForm) {
  // The exp2/log2 form must compute the same function as x_m * (1-u)^(-1/a)
  // up to rounding (it need not be bit-identical to std::pow — that break
  // is the point of the v2 contract — but it must agree to ~1 ulp scale).
  const double x_m = 0.5;
  const double inv_alpha = 1.0 / 1.9;
  for (const double u : {0.0, 0.1, 0.5, 0.9, 0.999, 0.9999999}) {
    const double via_exp2 = CounterRng::pareto_from_uniform(u, x_m, inv_alpha);
    const double via_pow = x_m / std::pow(1.0 - u, inv_alpha);
    EXPECT_NEAR(via_exp2, via_pow, via_pow * 1e-12) << "u=" << u;
  }
}

}  // namespace
}  // namespace pathload
