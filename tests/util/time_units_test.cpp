#include <gtest/gtest.h>

#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload {
namespace {

TEST(Duration, FactoryConversionsRoundTrip) {
  EXPECT_EQ(Duration::seconds(1.5).nanos(), 1'500'000'000);
  EXPECT_EQ(Duration::milliseconds(2.0).nanos(), 2'000'000);
  EXPECT_EQ(Duration::microseconds(100).nanos(), 100'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(0.25).secs(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(18).millis(), 18.0);
  EXPECT_DOUBLE_EQ(Duration::microseconds(100).micros(), 100.0);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::milliseconds(10);
  const Duration b = Duration::milliseconds(4);
  EXPECT_EQ((a + b).millis(), 14.0);
  EXPECT_EQ((a - b).millis(), 6.0);
  EXPECT_EQ((a * 2.5).millis(), 25.0);
  EXPECT_EQ((a / 2.0).millis(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((-b).millis(), -4.0);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::microseconds(99), Duration::microseconds(100));
  EXPECT_EQ(Duration::seconds(1), Duration::milliseconds(1000));
  EXPECT_GT(Duration::zero(), Duration::milliseconds(-1));
}

TEST(Duration, CompoundAssignment) {
  Duration d = Duration::milliseconds(1);
  d += Duration::milliseconds(2);
  EXPECT_EQ(d.millis(), 3.0);
  d -= Duration::milliseconds(1);
  EXPECT_EQ(d.millis(), 2.0);
}

TEST(Duration, HumanReadableString) {
  EXPECT_EQ(Duration::seconds(1.5).str(), "1.500s");
  EXPECT_EQ(Duration::milliseconds(18).str(), "18.000ms");
  EXPECT_EQ(Duration::microseconds(100).str(), "100.000us");
  EXPECT_EQ(Duration::nanoseconds(12).str(), "12ns");
}

TEST(TimePoint, DifferenceAndShift) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::milliseconds(5);
  EXPECT_EQ((t1 - t0).millis(), 5.0);
  EXPECT_EQ((t1 - Duration::milliseconds(5)), t0);
  EXPECT_LT(t0, t1);
}

TEST(TimePoint, OffsetsCancelInDifferences) {
  // The property SLoPS relies on: a constant clock offset does not change
  // OWD differences.
  const Duration offset = Duration::seconds(1234.5);
  const TimePoint a = TimePoint::origin() + Duration::milliseconds(10);
  const TimePoint b = TimePoint::origin() + Duration::milliseconds(25);
  EXPECT_EQ((b + offset) - (a + offset), b - a);
}

TEST(DataSize, BytesAndBits) {
  EXPECT_EQ(DataSize::bytes(1500).byte_count(), 1500);
  EXPECT_DOUBLE_EQ(DataSize::bytes(1500).bits(), 12000.0);
  EXPECT_EQ(DataSize::kilobytes(1.5).byte_count(), 1500);
}

TEST(DataSize, Arithmetic) {
  DataSize s = DataSize::bytes(100);
  s += DataSize::bytes(50);
  EXPECT_EQ(s.byte_count(), 150);
  s -= DataSize::bytes(25);
  EXPECT_EQ(s.byte_count(), 125);
  EXPECT_EQ((DataSize::bytes(1) + DataSize::bytes(2)).byte_count(), 3);
}

TEST(Rate, Conversions) {
  EXPECT_DOUBLE_EQ(Rate::mbps(10).bits_per_sec(), 10e6);
  EXPECT_DOUBLE_EQ(Rate::kbps(56).bits_per_sec(), 56e3);
  EXPECT_DOUBLE_EQ(Rate::mbps(10).mbits_per_sec(), 10.0);
}

TEST(Rate, TransmissionTime) {
  // 1500 B at 10 Mb/s = 1.2 ms.
  const Duration tx = Rate::mbps(10).transmission_time(DataSize::bytes(1500));
  EXPECT_DOUBLE_EQ(tx.millis(), 1.2);
}

TEST(Rate, BytesInInterval) {
  EXPECT_EQ(Rate::mbps(8).bytes_in(Duration::seconds(1)).byte_count(), 1'000'000);
}

TEST(Rate, RateOfTransfer) {
  const Rate r = rate_of(DataSize::bytes(1'000'000), Duration::seconds(1));
  EXPECT_DOUBLE_EQ(r.bits_per_sec(), 8e6);
}

TEST(Rate, ArithmeticAndComparison) {
  EXPECT_EQ(Rate::mbps(4) + Rate::mbps(6), Rate::mbps(10));
  EXPECT_EQ(Rate::mbps(10) - Rate::mbps(4), Rate::mbps(6));
  EXPECT_EQ(Rate::mbps(5) * 2.0, Rate::mbps(10));
  EXPECT_EQ(Rate::mbps(10) / 2.0, Rate::mbps(5));
  EXPECT_DOUBLE_EQ(Rate::mbps(10) / Rate::mbps(4), 2.5);
  EXPECT_LT(Rate::mbps(1), Rate::mbps(2));
}

TEST(Rate, HumanReadableString) {
  EXPECT_EQ(Rate::mbps(9.6).str(), "9.60Mb/s");
  EXPECT_EQ(Rate::kbps(56).str(), "56.00Kb/s");
}

}  // namespace
}  // namespace pathload
