#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "util/small_function.hpp"

namespace pathload {
namespace {

TEST(SmallFunction, InvokesLambda) {
  int x = 0;
  SmallFunction<56> f{[&x] { x = 7; }};
  f();
  EXPECT_EQ(x, 7);
}

TEST(SmallFunction, DefaultConstructedIsEmpty) {
  SmallFunction<56> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(SmallFunction, MoveTransfersOwnership) {
  int calls = 0;
  SmallFunction<56> a{[&calls] { ++calls; }};
  SmallFunction<56> b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(SmallFunction, MoveAssignReplacesTarget) {
  int first = 0;
  int second = 0;
  SmallFunction<56> a{[&first] { ++first; }};
  SmallFunction<56> b{[&second] { ++second; }};
  a = std::move(b);
  a();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(SmallFunction, DestroysCapturedState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> observer = token;
  {
    SmallFunction<56> f{[t = std::move(token)] { (void)t; }};
    EXPECT_FALSE(observer.expired());
  }
  EXPECT_TRUE(observer.expired());
}

TEST(SmallFunction, CapturesUpToCapacity) {
  struct Big {
    char data[48];
  };
  Big big{};
  big.data[0] = 'x';
  char out = ' ';
  SmallFunction<56> f{[big, &out] { out = big.data[0]; }};
  f();
  EXPECT_EQ(out, 'x');
}

TEST(SmallFunction, SelfMoveAssignIsSafe) {
  int calls = 0;
  SmallFunction<56> f{[&calls] { ++calls; }};
  auto& ref = f;
  f = std::move(ref);
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pathload
