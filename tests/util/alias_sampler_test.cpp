#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/alias_sampler.hpp"
#include "util/rng.hpp"

namespace pathload {
namespace {

/// The linear scan AliasSampler promises to reproduce (the float-exact
/// behavior of Rng::pick_weighted).
std::size_t scan(const std::vector<double>& w, double u) {
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  double x = u * total;
  for (std::size_t i = 0; i < w.size(); ++i) {
    x -= w[i];
    if (x < 0.0) return i;
  }
  return w.size() - 1;
}

TEST(AliasSampler, MatchesLinearScanExactlyOnPaperMix) {
  const std::vector<double> w{0.4, 0.5, 0.1};
  const AliasSampler sampler{w};
  EXPECT_TRUE(sampler.cdf_exact());
  Rng rng{7};
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform();
    ASSERT_EQ(sampler.pick(u), scan(w, u)) << "u=" << u;
  }
  // Boundary neighborhoods, where float subtlety lives.
  for (double b : {0.4, 0.9}) {
    for (double u = b - 1e-12; u < b + 1e-12; u = std::nextafter(u, 2.0)) {
      ASSERT_EQ(sampler.pick(u), scan(w, u)) << "u=" << u;
    }
  }
}

TEST(AliasSampler, MatchesLinearScanOnRandomMixes) {
  Rng rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_index(8));
    std::vector<double> w(static_cast<std::size_t>(n));
    for (auto& x : w) x = rng.uniform(0.01, 2.0);
    const AliasSampler sampler{w};
    ASSERT_TRUE(sampler.cdf_exact());
    for (int i = 0; i < 5000; ++i) {
      const double u = rng.uniform();
      ASSERT_EQ(sampler.pick(u), scan(w, u)) << "trial=" << trial << " u=" << u;
    }
  }
}

TEST(AliasSampler, SingleWeightAlwaysPicksZeroAndConsumesOneDraw) {
  const AliasSampler sampler{std::array<double, 1>{3.0}};
  Rng a{5};
  Rng b{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(a), 0u);
  // Exactly one uniform consumed per sample: both generators stay in step.
  for (int i = 0; i < 100; ++i) b.uniform();
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(AliasSampler, ZeroWeightBinIsNeverPicked) {
  // The two CDF boundaries coincide at 0.5: the scan jumps straight from
  // bin 0 to bin 2, and the aligned table must reproduce that.
  const std::vector<double> w{0.5, 0.0, 0.5};
  const AliasSampler sampler{w};
  EXPECT_TRUE(sampler.cdf_exact());
  Rng rng{11};
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.uniform();
    const auto idx = sampler.pick(u);
    ASSERT_NE(idx, 1u);
    ASSERT_EQ(idx, scan(w, u));
  }
}

TEST(AliasSampler, DistributionMatchesWeights) {
  const std::vector<double> w{0.4, 0.5, 0.1};
  const AliasSampler sampler{w};
  Rng rng{2024};
  std::array<int, 3> counts{};
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.4, 0.005);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.005);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.005);
}

TEST(AliasSampler, PathologicalMixFallsBackToVoseButStaysCorrect) {
  // Boundaries at 1/3 and 1/3 + 2^-40: off every power-of-two cell grid and
  // closer together than the finest (4096-cell) table can separate, so
  // construction falls back to the classic alias table.
  const double eps = 0x1p-40;
  const std::vector<double> w{1.0 / 3.0, eps, 2.0 / 3.0 - eps};
  const AliasSampler sampler{w};
  EXPECT_FALSE(sampler.cdf_exact());
  Rng rng{31};
  std::array<int, 3> counts{};
  const int n = 300000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 3.0, 0.006);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 2.0 / 3.0, 0.006);

  // Regression: with a non-power-of-two cell count, u within an ulp of 1
  // rounds u * scale up to the cell count; pick must clamp, not read past
  // the table.
  const auto idx = sampler.pick(std::nextafter(1.0, 0.0));
  EXPECT_LT(idx, w.size());
  EXPECT_EQ(idx, scan(w, std::nextafter(1.0, 0.0)));
}

TEST(AliasSampler, RejectsDegenerateInput) {
  EXPECT_THROW((AliasSampler{std::vector<double>{}}), std::invalid_argument);
  EXPECT_THROW((AliasSampler{std::vector<double>{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW((AliasSampler{std::vector<double>{1.0, -0.5}}), std::invalid_argument);
  EXPECT_THROW(AliasSampler{}.pick(0.5), std::logic_error);
}

}  // namespace
}  // namespace pathload
