#include <gtest/gtest.h>

#include <stdexcept>

#include "util/table.hpp"

namespace pathload {
namespace {

TEST(Table, AlignsColumns) {
  Table t{{"a", "longheader"}};
  t.add_row({"xx", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a   longheader"), std::string::npos);
  EXPECT_NE(s.find("xx  1"), std::string::npos);
}

TEST(Table, RejectsWrongWidthRow) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t{{"x", "y"}};
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(Table, CsvFieldQuotesPerRfc4180) {
  // Plain fields pass through; anything with a comma, quote, or line break
  // is quoted, with embedded quotes doubled.
  EXPECT_EQ(Table::csv_field("plain"), "plain");
  EXPECT_EQ(Table::csv_field(""), "");
  EXPECT_EQ(Table::csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(Table::csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(Table::csv_field("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(Table::csv_field("cr\rhere"), "\"cr\rhere\"");
}

TEST(Table, CsvOutputQuotesAwkwardCells) {
  Table t{{"tool", "note"}};
  t.add_row({"cprobe", "degraded:2 (14% loss, \"flood\")"});
  EXPECT_EQ(t.to_csv(),
            "tool,note\ncprobe,\"degraded:2 (14% loss, \"\"flood\"\")\"\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(2.0, 1), "2.0");
}

TEST(Table, SeparatorLinePresent) {
  Table t{{"col"}};
  t.add_row({"v"});
  EXPECT_NE(t.str().find("---"), std::string::npos);
}

}  // namespace
}  // namespace pathload
