// Live measurement demo: the real pathload sender and receiver talking
// over loopback sockets — UDP probe streams, TCP control channel,
// monotonic-clock timestamps, paced transmission.
//
//   $ ./build/examples/live_loopback
//
// Loopback has (far) more available bandwidth than the tool's maximum
// measurable rate (Lmax/Tmin = 120 Mb/s by default), so every fleet is
// "below" and the estimate pegs at the tool's ceiling — which is itself a
// correct statement: avail-bw >= the reported lower bound.

#include <cstdio>
#include <thread>

#include "core/session.hpp"
#include "net/live_channel.hpp"
#include "net/live_receiver.hpp"

using namespace pathload;

int main() {
  net::LiveReceiver receiver;  // binds ephemeral TCP + UDP ports
  std::printf("receiver: control port %u, probe port %u\n", receiver.control_port(),
              receiver.probe_port());

  std::thread receiver_thread{
      [&receiver] { receiver.serve_one_session(Duration::seconds(30)); }};

  {
    net::LiveProbeChannel channel{{"127.0.0.1", receiver.control_port()}};
    std::printf("sender: control RTT ~ %s\n", channel.rtt().str().c_str());

    core::PathloadConfig tool;
    tool.packets_per_stream = 50;          // keep the demo short
    tool.streams_per_fleet = 4;
    tool.omega = Rate::mbps(10);
    tool.chi = Rate::mbps(15);
    tool.max_fleets = 12;

    core::PathloadSession session{tool};
    const auto result = session.run(channel);

    std::printf("loopback avail-bw range: [%s, %s]%s\n", result.range.low.str().c_str(),
                result.range.high.str().c_str(),
                result.range.high >= tool.max_rate() * 0.95
                    ? "  (at tool max: path is faster than Lmax/Tmin)"
                    : "");
    std::printf("fleets: %d, streams: %lld, elapsed: %.1f s\n", result.fleets,
                static_cast<long long>(result.streams_sent), result.elapsed.secs());
  }  // channel destructor sends the goodbye message

  receiver_thread.join();
  return 0;
}
