// Rate adaptation for a streaming application — one of the paper's
// motivating use cases ("rate adaptation in streaming applications",
// Section IX).
//
//   $ ./build/examples/streaming_rate_adaptation
//
// A video server must pick an encoding bitrate for a session. It measures
// the path with pathload, then picks the highest ladder rung that fits
// under the *lower* bound of the reported range (conservative: the range
// is the band the avail-bw varied over, so the lower bound is what the
// path can sustain through its dips). The simulation then verifies the
// choice: a CBR "video" at that rate suffers little queueing, while the
// next rung up would not.

#include <cstdio>
#include <vector>

#include "core/session.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"
#include "sim/rtt_probe.hpp"
#include "sim/traffic.hpp"
#include "util/stats.hpp"

using namespace pathload;

namespace {

/// Play `rate` CBR traffic through the (already loaded) path for a while
/// and report the 95th-percentile one-way queueing jitter the "viewer"
/// would have to buffer for.
double playback_jitter_ms(scenario::Testbed& bed, Rate rate) {
  auto& sim = bed.simulator();
  class Viewer final : public sim::PacketHandler {
   public:
    void handle(const sim::Packet& p) override {
      arrivals.push_back((sim_->now() - p.entered).secs());
    }
    sim::Simulator* sim_{nullptr};
    std::vector<double> arrivals;  // one-way transit times
  } viewer;
  viewer.sim_ = &sim;

  const std::uint32_t flow = sim.next_flow_id();
  bed.path().egress().register_flow(flow, &viewer);

  // 1300 B frames at the target rate.
  const Duration frame_gap = Duration::seconds(1300.0 * 8.0 / rate.bits_per_sec());
  const TimePoint end = sim.now() + Duration::seconds(10);
  while (sim.now() < end) {
    sim::Packet frame;
    frame.id = sim.next_packet_id();
    frame.flow = flow;
    frame.kind = sim::PacketKind::kProbe;
    frame.size_bytes = 1300;
    frame.transit = true;
    frame.entered = sim.now();
    bed.path().ingress().handle(frame);
    sim.run_for(frame_gap);
  }
  sim.run_for(Duration::seconds(1));  // drain
  bed.path().egress().unregister_flow(flow);

  if (viewer.arrivals.empty()) return 1e9;
  const double base = *std::min_element(viewer.arrivals.begin(), viewer.arrivals.end());
  std::vector<double> jitter;
  jitter.reserve(viewer.arrivals.size());
  for (double t : viewer.arrivals) jitter.push_back(t - base);
  return percentile(jitter, 0.95) * 1e3;
}

}  // namespace

int main() {
  scenario::PaperPathConfig network;
  network.hops = 2;
  network.tight_capacity = Rate::mbps(10);
  network.tight_utilization = 0.65;  // A = 3.5 Mb/s
  network.beta = 2.0;
  network.nontight_utilization = 0.5;
  network.model = sim::Interarrival::kPareto;

  scenario::Testbed bed{network};
  bed.start();

  // Measure.
  scenario::SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadSession session{core::PathloadConfig{}};
  const auto result = session.run(channel);
  std::printf("measured avail-bw range: [%.2f, %.2f] Mb/s (true A = %.2f)\n",
              result.range.low.mbits_per_sec(), result.range.high.mbits_per_sec(),
              bed.configured_avail_bw().mbits_per_sec());

  // Pick from the encoding ladder.
  const std::vector<double> ladder_mbps{0.8, 1.5, 2.5, 4.0, 6.0, 8.0};
  double chosen = ladder_mbps.front();
  for (double rung : ladder_mbps) {
    if (Rate::mbps(rung) <= result.range.low) chosen = rung;
  }
  std::printf("encoding ladder: 0.8 / 1.5 / 2.5 / 4.0 / 6.0 / 8.0 Mb/s\n");
  std::printf("chosen bitrate : %.1f Mb/s (highest rung under the range's low end)\n\n",
              chosen);

  // Verify the choice in simulation.
  const double jitter_ok = playback_jitter_ms(bed, Rate::mbps(chosen));
  std::printf("95th-pct playback jitter at %.1f Mb/s: %7.1f ms\n", chosen, jitter_ok);
  const double next_rung = chosen < 8.0 ? chosen * 2 : 8.0;
  const double jitter_bad = playback_jitter_ms(bed, Rate::mbps(next_rung));
  std::printf("95th-pct playback jitter at %.1f Mb/s: %7.1f ms  (next rung up)\n",
              next_rung, jitter_bad);
  std::printf("\nThe measured range makes the safe choice obvious before sending a\n"
              "single video frame — and without saturating the path to find out.\n");
  return 0;
}
