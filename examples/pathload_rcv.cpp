// pathload_rcv — the receiver end of the live measurement tool, mirroring
// the original pathload distribution's pathload_rcv binary.
//
//   $ ./build/examples/pathload_rcv [--host 0.0.0.0] [--sessions N]
//                                   [--idle-timeout SECS]
//
// Prints the control port to connect pathload_snd to, then serves
// measurement sessions (one sender at a time).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/live_receiver.hpp"

using namespace pathload;

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int sessions = 1;
  double idle_timeout_s = 30.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--idle-timeout") == 0 && i + 1 < argc) {
      idle_timeout_s = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host H] [--sessions N] [--idle-timeout SECS]\n",
                   argv[0]);
      return 2;
    }
  }

  try {
    net::LiveReceiver receiver{host};
    std::printf("pathload_rcv: listening on %s, control port %u (probe port %u)\n",
                host.c_str(), receiver.control_port(), receiver.probe_port());
    std::fflush(stdout);
    for (int s = 0; s < sessions || sessions <= 0; ++s) {
      const int streams = receiver.serve_one_session(
          Duration::seconds(3600), Duration::seconds(idle_timeout_s));
      std::printf("pathload_rcv: session ended after %d streams\n", streams);
      std::fflush(stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pathload_rcv: %s\n", e.what());
    return 1;
  }
  return 0;
}
