// Quickstart: measure the available bandwidth of a (simulated) network
// path with pathload.
//
//   $ ./build/examples/quickstart
//
// Builds the paper's 3-hop topology (tight link 10 Mb/s at 60% load, so
// the true avail-bw is 4 Mb/s), runs one pathload measurement through it,
// and prints the estimated range. Swap SimProbeChannel for
// net::LiveProbeChannel (see live_loopback.cpp) to measure a real path.

#include <cstdio>

#include "core/session.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"

using namespace pathload;

int main() {
  // 1. A network to measure: H = 3 hops, tight middle link.
  scenario::PaperPathConfig network;
  network.hops = 3;
  network.tight_capacity = Rate::mbps(10);
  network.tight_utilization = 0.60;  // avail-bw = 10 * (1 - 0.6) = 4 Mb/s
  network.model = sim::Interarrival::kPareto;

  scenario::Testbed testbed{network};
  testbed.start();  // cross traffic + queue warmup

  // 2. A probe channel through that network and a pathload session on it.
  scenario::SimProbeChannel channel{testbed.simulator(), testbed.path()};
  core::PathloadConfig tool;  // paper defaults: K=100, N=12, omega=1 Mb/s
  core::PathloadSession session{tool};

  // 3. Measure.
  const core::PathloadResult result = session.run(channel);

  std::printf("true avail-bw : %s\n", testbed.configured_avail_bw().str().c_str());
  std::printf("pathload range: [%s, %s]\n", result.range.low.str().c_str(),
              result.range.high.str().c_str());
  std::printf("center        : %s\n", result.range.center().str().c_str());
  std::printf("fleets        : %d (%lld streams, %s of probes, %.1f s)\n",
              result.fleets, static_cast<long long>(result.streams_sent),
              result.bytes_sent.str().c_str(), result.elapsed.secs());
  return 0;
}
