// Scenario registry front-end: list, inspect, validate, run, sweep, and
// *compare* — any registered estimator over any named scenario, without
// writing C++.
//
//   $ scenario_runner --list                      # the preset catalogue
//   $ scenario_runner --list-estimators           # the estimator catalogue
//   $ scenario_runner --show paper-path           # spec in the text format
//   $ scenario_runner --run bursty-tight --runs 5
//   $ scenario_runner --run paper-path --sweep load=0.2,0.5,0.75,0.9
//   $ scenario_runner --run paper-path --estimator topp --set max_rate_mbps=16
//   $ scenario_runner --compare --scenario paper-path
//   $ scenario_runner --spec my.scenario --run    # run a spec file
//   $ scenario_runner --validate my.scenario      # parse + validate only
//
// Without --estimator/--compare, --run is a pathload measurement with the
// pre-harness output format; sweeps use the same per-point seed derivation
// as bench/fig05 (base seed + util*1000, runs sharded over SweepRunner),
// so a sweep of a paper preset reproduces the figure's numbers
// byte-for-byte at the same settings. With estimators selected, runs go
// through the scenario::run_matrix comparison harness: one
// accuracy/variation/intrusiveness/latency row per estimator × load.
// `--format csv` / `--format json` emit machine-readable rows; the base
// seed and run count come from PATHLOAD_SEED / PATHLOAD_RUNS / PATHLOAD_QUICK
// like every bench, or from --seed / --runs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/estimators.hpp"
#include "bench/common.hpp"
#include "scenario/experiment.hpp"
#include "scenario/registry.hpp"
#include "scenario/shard.hpp"
#include "scenario/sweep_runner.hpp"
#include "util/table.hpp"

using namespace pathload;

namespace {

enum class Format { kTable, kCsv, kJson };
enum class Channel { kSim, kLive };

struct Options {
  bool list{false};
  bool list_estimators{false};
  std::string show;
  std::string run;        // preset name, or "-" for the loaded spec file
  std::string spec_file;
  std::string validate_file;
  std::vector<std::string> estimators;  // --estimator selections
  bool compare{false};                  // all registered estimators
  std::string set_overrides;            // --set key=value[,...]
  Channel channel{Channel::kSim};
  /// --engine override: forces the determinism-contract version onto the
  /// resolved spec (presets default to v1; see docs/ENGINE.md).
  std::optional<scenario::EngineVersion> engine;
  std::vector<double> sweep_loads;
  int runs{0};            // 0: bench default
  std::optional<std::uint64_t> seed;
  int threads{0};
  Format format{Format::kTable};
  // Sharded matrix runs (scenario/shard.hpp): --shard i/N runs only the
  // owned cells, --emit-cells prints the serialized cell stream instead of
  // the reduced table, --merge-cells re-assembles shard streams.
  int shard_index{0};
  int shard_count{0};     // 0: not sharded
  bool emit_cells{false};
  std::vector<std::string> merge_files;
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr,
               "scenario_runner: %s\n"
               "usage:\n"
               "  scenario_runner --list [--format table|csv]\n"
               "  scenario_runner --list-estimators [--format table|csv]\n"
               "  scenario_runner --show <preset>\n"
               "  scenario_runner --run <preset> [--runs N] [--seed S] [--load u]\n"
               "                  [--sweep load=u1,u2,...] [--threads T]\n"
               "                  [--engine v1|v2]\n"
               "                  [--estimator name[,name...]] [--set k=v[,k=v...]]\n"
               "                  [--channel sim|live] [--format table|csv|json]\n"
               "  scenario_runner --compare --scenario <preset> [same options]\n"
               "                  [--shard i/N] [--emit-cells]\n"
               "  scenario_runner --merge-cells f1[,f2,...] [--emit-cells]\n"
               "  scenario_runner --spec <file> [--run | --show]\n"
               "  scenario_runner --validate <file>\n",
               msg.c_str());
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) usage_error("cannot open spec file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

double parse_util(const std::string& item, const char* flag) {
  char* end = nullptr;
  const double v = std::strtod(item.c_str(), &end);
  if (end == item.c_str() || *end != '\0' || v < 0.0 || v >= 1.0) {
    usage_error(std::string{flag} + " values must be utilizations in [0, 1), got '" +
                item + "'");
  }
  return v;
}

std::vector<double> parse_sweep(const std::string& arg) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || arg.substr(0, eq) != "load") {
    usage_error("--sweep expects load=u1,u2,... (only the load axis is swept; "
                "use --runs/--seed for repetitions)");
  }
  std::vector<double> loads;
  std::stringstream ss{arg.substr(eq + 1)};
  std::string item;
  while (std::getline(ss, item, ',')) {
    loads.push_back(parse_util(item, "--sweep load"));
  }
  if (loads.empty()) usage_error("--sweep load= needs at least one value");
  return loads;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  std::optional<double> single_load;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) usage_error(std::string{what} + " needs a value");
      return argv[++i];
    };
    if (a == "--list") {
      opt.list = true;
    } else if (a == "--list-estimators") {
      opt.list_estimators = true;
    } else if (a == "--estimator") {
      std::stringstream ss{next("--estimator")};
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) opt.estimators.push_back(name);
      }
      if (opt.estimators.empty()) usage_error("--estimator needs at least one name");
    } else if (a == "--compare") {
      opt.compare = true;
    } else if (a == "--set") {
      opt.set_overrides = next("--set");
    } else if (a == "--channel") {
      const std::string c = next("--channel");
      if (c == "sim") opt.channel = Channel::kSim;
      else if (c == "live") opt.channel = Channel::kLive;
      else usage_error("--channel expects sim or live, got '" + c + "'");
    } else if (a == "--engine") {
      const std::string e = next("--engine");
      if (e == "v1") opt.engine = scenario::EngineVersion::kV1;
      else if (e == "v2") opt.engine = scenario::EngineVersion::kV2;
      else usage_error("--engine expects v1 or v2, got '" + e + "'");
    } else if (a == "--scenario") {
      // Synonym of --run <preset>, reading better next to --compare.
      opt.run = next("--scenario");
    } else if (a == "--show") {
      opt.show = (i + 1 < argc && argv[i + 1][0] != '-') ? next("--show") : "-";
    } else if (a == "--run") {
      opt.run = (i + 1 < argc && argv[i + 1][0] != '-') ? next("--run") : "-";
    } else if (a == "--spec") {
      opt.spec_file = next("--spec");
    } else if (a == "--validate") {
      opt.validate_file = next("--validate");
    } else if (a == "--sweep") {
      opt.sweep_loads = parse_sweep(next("--sweep"));
    } else if (a == "--load") {
      single_load = parse_util(next("--load"), "--load");
    } else if (a == "--runs") {
      opt.runs = std::atoi(next("--runs").c_str());
      if (opt.runs <= 0) usage_error("--runs must be a positive integer");
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    } else if (a == "--threads") {
      opt.threads = std::atoi(next("--threads").c_str());
    } else if (a == "--shard") {
      const std::string s = next("--shard");
      const auto slash = s.find('/');
      char* end = nullptr;
      opt.shard_index = static_cast<int>(std::strtol(s.c_str(), &end, 10));
      if (slash == std::string::npos || end != s.c_str() + slash) {
        usage_error("--shard expects i/N (e.g. 0/4), got '" + s + "'");
      }
      opt.shard_count =
          static_cast<int>(std::strtol(s.c_str() + slash + 1, &end, 10));
      if (*end != '\0' || opt.shard_count < 1 || opt.shard_index < 0 ||
          opt.shard_index >= opt.shard_count) {
        usage_error("--shard expects i/N with 0 <= i < N, got '" + s + "'");
      }
    } else if (a == "--emit-cells") {
      opt.emit_cells = true;
    } else if (a == "--merge-cells") {
      std::stringstream ss{next("--merge-cells")};
      std::string f;
      while (std::getline(ss, f, ',')) {
        if (!f.empty()) opt.merge_files.push_back(f);
      }
      if (opt.merge_files.empty()) usage_error("--merge-cells needs at least one file");
    } else if (a == "--format") {
      const std::string f = next("--format");
      if (f == "table") opt.format = Format::kTable;
      else if (f == "csv") opt.format = Format::kCsv;
      else if (f == "json") opt.format = Format::kJson;
      else usage_error("--format expects table, csv, or json");
    } else {
      usage_error("unknown argument '" + a + "'");
    }
  }
  if (single_load) {
    if (!opt.sweep_loads.empty()) usage_error("--load and --sweep are exclusive");
    opt.sweep_loads.push_back(*single_load);
  }
  if (opt.compare && !opt.estimators.empty()) {
    usage_error("--compare already selects every estimator; drop --estimator");
  }
  if (opt.compare && opt.run.empty()) {
    usage_error("--compare needs a scenario (--scenario <preset> or --spec <file> --run)");
  }
  if (!opt.set_overrides.empty() && opt.estimators.size() != 1) {
    usage_error("--set configures exactly one estimator; name it with "
                "--estimator <name> (got " +
                std::to_string(opt.estimators.size()) + " selections)");
  }
  if (opt.shard_count > 0) {
    if (!opt.emit_cells) {
      usage_error("--shard produces a partial matrix; it requires --emit-cells "
                  "(merge the shards with --merge-cells)");
    }
    if (opt.run.empty() || (!opt.compare && opt.estimators.empty())) {
      usage_error("--shard applies to estimator matrices: combine it with "
                  "--compare/--estimator and a scenario");
    }
  }
  if (!opt.merge_files.empty() &&
      (!opt.run.empty() || opt.compare || opt.shard_count > 0)) {
    usage_error("--merge-cells reads finished shard outputs; it cannot be "
                "combined with --run/--compare/--shard");
  }
  if (opt.emit_cells && opt.merge_files.empty() &&
      (opt.run.empty() || (!opt.compare && opt.estimators.empty()))) {
    usage_error("--emit-cells applies to estimator matrices: combine it with "
                "--compare/--estimator and a scenario, or with --merge-cells");
  }
  if (!opt.list && !opt.list_estimators && opt.show.empty() && opt.run.empty() &&
      opt.validate_file.empty() && opt.merge_files.empty()) {
    usage_error("nothing to do (use --list, --list-estimators, --show, --run, "
                "--compare, --merge-cells, or --validate)");
  }
  return opt;
}

/// Minimal JSON string escaping for the emitters: free-text fields
/// (scenario names from spec files, outcome summaries) must not be able to
/// break out of their quoted value.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Channel-capability gate for estimator runs. The simulated channel
/// implements every capability; a live channel cannot be driven from a
/// scenario preset at all (presets instantiate a simulated path) and in
/// addition lacks bulk TCP — so rather than silently falling through to
/// the simulator, mismatches are a structured error that lists which
/// estimators support which channel.
void check_channel_support(const core::EstimatorRegistry& reg, Channel channel) {
  if (channel == Channel::kSim) return;
  throw core::EstimatorError{
      "--channel live: scenario presets instantiate a *simulated* path, so "
      "this runner cannot drive a live channel (use examples/pathload_snd + "
      "pathload_rcv against a real peer); refusing to fall back to sim "
      "silently.\n" +
      core::channel_support_summary(reg)};
}

std::string traffic_summary(const scenario::ScenarioSpec& spec) {
  std::string out;
  std::string last;
  for (const auto& h : spec.hops) {
    const std::string m{scenario::to_string(h.traffic.model)};
    if (m == last || m == "none") continue;
    if (!out.empty()) out += "+";
    out += m;
    last = m;
  }
  if (spec.has_flows()) {
    int n = 0;
    for (const auto& f : spec.flows) n += f.count;
    if (!out.empty()) out += "+";
    out += "tcp(" + std::to_string(n) + ")";
  }
  return out.empty() ? "none" : out;
}

/// Printed after flow-bearing runs: with responsive cross flows the
/// configured avail-bw is what the flows and the estimator compete for,
/// not a truth the estimate should reproduce.
void note_flow_truth(const scenario::ScenarioSpec& spec, Format format) {
  if (format != Format::kTable || !spec.has_flows()) return;
  std::printf("note: %s carries responsive TCP cross flows; A_Mbps/avail_Mbps "
              "is the open-loop value the flows compete for, not a fixed "
              "truth.\n",
              spec.name.c_str());
}

void print_list(const scenario::Registry& reg, Format format) {
  Table table{{"preset", "hops", "avail_Mbps", "traffic", "warmup_s", "description"}};
  for (const auto& spec : reg.entries()) {
    table.add_row({spec.name, Table::num(static_cast<double>(spec.hops.size()), 0),
                   Table::num(spec.avail_bw().mbits_per_sec(), 2),
                   traffic_summary(spec), Table::num(spec.warmup.secs(), 0),
                   spec.description});
  }
  if (format == Format::kCsv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    table.print();
    std::printf("\n%zu presets; `--show <preset>` prints a spec, `--run <preset>` "
                "measures it.\n", reg.size());
  }
}

void print_list_estimators(const core::EstimatorRegistry& reg, Format format) {
  Table table{{"estimator", "reports", "channels", "summary"}};
  for (const auto& e : reg.entries()) {
    table.add_row({e.name, e.quantity, e.needs_bulk_tcp ? "sim" : "sim+live",
                   e.summary});
  }
  if (format == Format::kCsv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    table.print();
    std::printf("\n%zu estimators; `--run <preset> --estimator <name>` measures "
                "with one, `--compare --scenario <preset>` with all. Config "
                "overrides: `--set key=value[,key=value]` (keys in "
                "docs/ESTIMATORS.md).\n",
                reg.size());
  }
}

/// Point-estimator coverage slack for the covers_A column: a point
/// estimate "covers" the truth within pathload's default avail-bw
/// resolution (omega = 1 Mb/s), so range and point tools share one column.
const Rate kPointSlack = Rate::mbps(1.0);

void print_matrix(const std::vector<scenario::MatrixCell>& cells,
                  const core::EstimatorRegistry& reg, Format format) {
  if (format == Format::kJson) {
    // rel_error/cv_center are NaN for an all-invalid cell (never a false
    // perfect score); JSON has no NaN, so those emit null.
    auto num_or_null = [](double v) {
      char buf[40];
      if (std::isnan(v)) return std::string{"null"};
      std::snprintf(buf, sizeof buf, "%.17g", v);
      return std::string{buf};
    };
    std::printf("[\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const scenario::MatrixCell& c = cells[i];
      std::printf(
          "  {\"estimator\": \"%s\", \"scenario\": \"%s\", \"load\": %.17g, "
          "\"seed\": %llu, \"runs\": %zu, \"valid_runs\": %d, "
          "\"avail_mbps\": %.17g, \"low_mbps\": %.17g, \"high_mbps\": %.17g, "
          "\"center_mbps\": %.17g, \"rel_error\": %s, \"coverage\": %.17g, "
          "\"cv_center\": %s, \"probe_mbytes\": %.17g, "
          "\"mean_packets\": %.17g, \"mean_elapsed_s\": %.17g, "
          "\"outcome\": \"%s\", \"loss_fraction\": %.17g}%s\n",
          json_escape(c.estimator).c_str(), json_escape(c.scenario).c_str(),
          c.load, static_cast<unsigned long long>(c.seed0), c.reports.size(),
          c.valid_runs(), c.truth.mbits_per_sec(),
          c.mean_low().mbits_per_sec(), c.mean_high().mbits_per_sec(),
          c.mean_center().mbits_per_sec(),
          num_or_null(c.mean_rel_error()).c_str(), c.coverage(kPointSlack),
          num_or_null(c.cv_center()).c_str(),
          c.mean_bytes().bits() / 8e6, c.mean_packets(),
          c.mean_elapsed().secs(), json_escape(c.outcome_summary()).c_str(),
          c.mean_loss_fraction(), i + 1 < cells.size() ? "," : "");
    }
    std::printf("]\n");
    return;
  }
  Table table{{"estimator", "reports", "util_%", "A_Mbps", "estimate_Mbps",
               "err_%", "covers_A", "cv", "probe_MB", "time_s", "outcome",
               "loss_%", "ok"}};
  for (const scenario::MatrixCell& c : cells) {
    const auto* entry = reg.find(c.estimator);
    std::string estimate = "n/a";
    if (c.valid_runs() > 0) {
      const bool range = !c.reports.empty() && c.reports.front().is_range;
      estimate = range ? "[" + Table::num(c.mean_low().mbits_per_sec(), 2) + ", " +
                             Table::num(c.mean_high().mbits_per_sec(), 2) + "]"
                       : Table::num(c.mean_center().mbits_per_sec(), 2);
    }
    const bool any_valid = c.valid_runs() > 0;
    table.add_row(
        {c.estimator, entry != nullptr ? entry->quantity : "?",
         Table::num(c.load * 100, 0), Table::num(c.truth.mbits_per_sec(), 1),
         estimate,
         any_valid ? Table::num(c.mean_rel_error() * 100, 1) : "n/a",
         Table::num(c.coverage(kPointSlack) * 100, 0) + "%",
         any_valid ? Table::num(c.cv_center(), 2) : "n/a",
         Table::num(c.mean_bytes().bits() / 8e6, 2),
         Table::num(c.mean_elapsed().secs(), 1), c.outcome_summary(),
         Table::num(c.mean_loss_fraction() * 100, 1),
         Table::num(c.valid_runs(), 0) + "/" + Table::num(c.reports.size(), 0)});
  }
  if (format == Format::kCsv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    table.print();
    std::printf("\ncovers_A: range containment, points within %.0f Mb/s; "
                "probe_MB/time_s are per-run means (intrusiveness/latency).\n",
                kPointSlack.mbits_per_sec());
  }
}

int run_estimator_command(const Options& opt, const scenario::ScenarioSpec& base) {
  const core::EstimatorRegistry& reg = baselines::builtin_estimators();
  check_channel_support(reg, opt.channel);

  // Gap-model tools (spruce, igi) need the bottleneck capacity a priori.
  // A preset *declares* its links, so the runner can supply the hint the
  // way a live operator would supply a pathrate result: the narrow-link
  // capacity, unless the user already set capacity_mbps.
  Rate narrow = base.hops.front().capacity;
  for (const auto& h : base.hops) narrow = std::min(narrow, h.capacity);
  const std::string hint_line =
      core::kv_config_line("capacity_mbps", narrow.mbits_per_sec());
  std::string hinted;
  auto with_hint = [&](const core::EstimatorRegistry::Entry& entry,
                       std::string overrides) {
    if (entry.needs_capacity_hint &&
        !core::KvOverrides::parse(overrides).has("capacity_mbps")) {
      if (!overrides.empty()) overrides += "\n";
      overrides += hint_line;
      hinted += (hinted.empty() ? "" : ", ") + entry.name;
    }
    return scenario::MatrixEstimator::from_registry(reg, entry.name, overrides);
  };

  std::vector<scenario::MatrixEstimator> selected;
  if (opt.compare) {
    for (const auto& e : reg.entries()) {
      selected.push_back(with_hint(e, ""));
    }
  } else {
    for (const std::string& name : opt.estimators) {
      selected.push_back(with_hint(reg.at(name), opt.set_overrides));
    }
  }

  const int runs = opt.runs > 0 ? opt.runs : bench::runs(5);
  const std::uint64_t seed = opt.seed.value_or(bench::seed());
  scenario::SweepRunner runner{opt.threads};
  if (opt.shard_count > 0) {
    // One shard of the matrix: run only the owned cells and emit them in
    // the serialized stream form under their global indices. A driver
    // (tools/shard_merge_check.sh, or any job scheduler) reassembles the
    // full matrix with --merge-cells.
    std::fputs(scenario::run_matrix_shard(selected, {base}, opt.sweep_loads,
                                          runs, seed, opt.shard_index,
                                          opt.shard_count, runner)
                   .c_str(),
               stdout);
    return 0;
  }
  const auto cells = scenario::run_matrix(selected, {base}, opt.sweep_loads,
                                          runs, seed, runner);
  if (opt.emit_cells) {
    std::fputs(scenario::cells_to_text(cells).c_str(), stdout);
    return 0;
  }
  print_matrix(cells, reg, opt.format);
  if (opt.format == Format::kTable && !hinted.empty()) {
    std::printf("note: %s took the capacity hint capacity_mbps = %.6g from "
                "%s's narrow link (override with --estimator <name> --set "
                "capacity_mbps=...).\n",
                hinted.c_str(), narrow.mbits_per_sec(), base.name.c_str());
  }
  if (opt.format == Format::kTable && base.nonstationary()) {
    std::printf("note: %s is non-stationary; A_Mbps is the pre-ramp value.\n",
                base.name.c_str());
  }
  note_flow_truth(base, opt.format);
  return 0;
}

/// One sweep point, reduced to the quantities the figures report.
struct PointRow {
  std::string preset;
  double util;
  std::uint64_t seed0;
  int runs;
  Rate truth;
  scenario::RepeatedRuns rr;
};

void print_rows(const std::vector<PointRow>& rows, Format format) {
  if (format == Format::kJson) {
    std::printf("[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PointRow& r = rows[i];
      std::printf(
          "  {\"preset\": \"%s\", \"load\": %.17g, \"seed\": %llu, \"runs\": %d, "
          "\"avail_mbps\": %.17g, \"low_mbps\": %.17g, \"high_mbps\": %.17g, "
          "\"coverage\": %.17g, \"cv_low\": %.17g, \"cv_high\": %.17g, "
          "\"mean_fleets\": %.17g, \"mean_elapsed_s\": %.17g}%s\n",
          json_escape(r.preset).c_str(), r.util,
          static_cast<unsigned long long>(r.seed0), r.runs,
          r.truth.mbits_per_sec(), r.rr.mean_low().mbits_per_sec(),
          r.rr.mean_high().mbits_per_sec(), r.rr.coverage(r.truth), r.rr.cv_low(),
          r.rr.cv_high(), r.rr.mean_fleets(), r.rr.mean_elapsed().secs(),
          i + 1 < rows.size() ? "," : "");
    }
    std::printf("]\n");
    return;
  }
  // The numeric columns use the same Table::num precision as bench/fig05,
  // so a sweep of a paper preset diffs cell-identical against the figure.
  Table table{{"preset", "util_%", "avail_Mbps", "pl_low_Mbps", "pl_high_Mbps",
               "center", "covers_A", "cv_low", "cv_high"}};
  for (const PointRow& r : rows) {
    table.add_row({r.preset, Table::num(r.util * 100, 0),
                   Table::num(r.truth.mbits_per_sec(), 1),
                   Table::num(r.rr.mean_low().mbits_per_sec(), 2),
                   Table::num(r.rr.mean_high().mbits_per_sec(), 2),
                   Table::num((r.rr.mean_low() + r.rr.mean_high()).mbits_per_sec() / 2, 2),
                   Table::num(r.rr.coverage(r.truth) * 100, 0) + "%",
                   Table::num(r.rr.cv_low(), 2), Table::num(r.rr.cv_high(), 2)});
  }
  if (format == Format::kCsv) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    table.print();
  }
}

int run_command(const Options& opt, const scenario::ScenarioSpec& base) {
  // The channel gate applies to every run form — the plain pathload path
  // must not silently fall through to the simulator either.
  check_channel_support(baselines::builtin_estimators(), opt.channel);
  if (opt.compare || !opt.estimators.empty()) {
    return run_estimator_command(opt, base);
  }
  const int runs = opt.runs > 0 ? opt.runs : bench::runs(20);
  const std::uint64_t seed = opt.seed.value_or(bench::seed());
  const core::PathloadConfig tool;
  scenario::SweepRunner runner{opt.threads};

  std::vector<PointRow> rows;
  if (opt.sweep_loads.empty()) {
    const Rate truth = base.avail_bw();
    const auto rr = scenario::sweep_scenario_repeated(base, tool, runs, seed, runner);
    rows.push_back(PointRow{base.name, /*util=*/-1.0, seed, runs, truth,
                            std::move(rr)});
    // No load axis: report the preset's own operating point; util column
    // shows the tight hop's configured load.
    rows.back().util = base.hops[base.tight_hop()].traffic.utilization;
  } else {
    for (const double util : opt.sweep_loads) {
      const scenario::ScenarioSpec spec = base.with_load(util);
      // Same per-point seed derivation as bench/fig05: base + util*1000.
      const auto seed0 = static_cast<std::uint64_t>(
          static_cast<double>(seed) + util * 1000);
      const auto rr = scenario::sweep_scenario_repeated(spec, tool, runs, seed0, runner);
      rows.push_back(PointRow{spec.name, util, seed0, runs, spec.avail_bw(), rr});
    }
  }
  print_rows(rows, opt.format);
  if (opt.format == Format::kTable && base.nonstationary()) {
    std::printf("\nnote: %s is non-stationary (post-ramp avail-bw %.2f Mb/s); "
                "the configured avail_Mbps column is the pre-ramp value.\n",
                base.name.c_str(), base.final_avail_bw().mbits_per_sec());
  }
  note_flow_truth(base, opt.format);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    if (!opt.validate_file.empty()) {
      const auto spec = scenario::ScenarioSpec::parse(read_file(opt.validate_file));
      std::printf("%s: OK (preset '%s', %zu hops, avail-bw %.2f Mb/s)\n",
                  opt.validate_file.c_str(), spec.name.c_str(), spec.hops.size(),
                  spec.avail_bw().mbits_per_sec());
      return 0;
    }

    // Resolve the working registry: builtin presets, plus the spec file if
    // one was given (its name must not clash with a builtin).
    scenario::Registry reg = scenario::Registry::builtin();
    std::string loaded_name;
    if (!opt.spec_file.empty()) {
      auto spec = scenario::ScenarioSpec::parse(read_file(opt.spec_file));
      loaded_name = spec.name;
      reg.add(std::move(spec));
    }
    auto resolve = [&](const std::string& sel) -> scenario::ScenarioSpec {
      const std::string& name = sel != "-" ? sel : loaded_name;
      if (name.empty()) {
        usage_error("no preset named and no --spec file loaded");
      }
      scenario::ScenarioSpec spec = reg.at(name);
      if (opt.engine.has_value()) spec.engine = *opt.engine;
      return spec;
    };

    if (!opt.merge_files.empty()) {
      std::vector<std::string> texts;
      texts.reserve(opt.merge_files.size());
      for (const std::string& f : opt.merge_files) texts.push_back(read_file(f));
      const auto cells = scenario::merge_cell_texts(texts);
      if (opt.emit_cells) {
        std::fputs(scenario::cells_to_text(cells).c_str(), stdout);
      } else {
        print_matrix(cells, baselines::builtin_estimators(), opt.format);
      }
      return 0;
    }

    if (opt.list) print_list(reg, opt.format);
    if (opt.list_estimators) {
      print_list_estimators(baselines::builtin_estimators(), opt.format);
    }
    if (!opt.show.empty()) {
      const scenario::ScenarioSpec spec = resolve(opt.show);
      std::fputs(spec.to_text().c_str(), stdout);
    }
    if (!opt.run.empty()) {
      const scenario::ScenarioSpec spec = resolve(opt.run);
      return run_command(opt, spec);
    }
    return 0;
  } catch (const scenario::SpecError& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  } catch (const core::EstimatorError& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 1;
  }
}
