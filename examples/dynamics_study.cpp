// Avail-bw dynamics study (the Section VI workflow in miniature): how
// does the variability of the available bandwidth change with load?
//
//   $ ./build/examples/dynamics_study [runs-per-point]
//
// For each utilization point, runs several pathload measurements and
// reports the distribution of the relative variation rho = width/center
// (Eq. 12). Demonstrates the RepeatedRuns experiment API.

#include <cstdio>
#include <cstdlib>

#include "scenario/sweep_runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pathload;

int main(int argc, char** argv) {
  const int runs = argc > 1 ? std::atoi(argv[1]) : 10;

  Table table{{"util_%", "avail_Mbps", "mean_low", "mean_high", "rho_p25", "rho_p50",
               "rho_p75"}};

  // Each measurement is an independent seeded testbed, so the repetitions
  // shard across a thread pool (PATHLOAD_THREADS to pin the width) without
  // changing a digit of the output.
  scenario::SweepRunner runner;

  for (double util : {0.2, 0.4, 0.6, 0.8}) {
    scenario::PaperPathConfig path;
    path.hops = 1;
    path.tight_capacity = Rate::mbps(12.4);
    path.tight_utilization = util;
    path.model = sim::Interarrival::kPareto;

    core::PathloadConfig tool;
    const auto rr = scenario::sweep_pathload_repeated(path, tool, runs,
                                                      /*seed0=*/42 + util * 100, runner);
    const auto rhos = rr.relative_variations();
    table.add_row({Table::num(util * 100, 0),
                   Table::num(12.4 * (1 - util), 1),
                   Table::num(rr.mean_low().mbits_per_sec(), 2),
                   Table::num(rr.mean_high().mbits_per_sec(), 2),
                   Table::num(percentile(rhos, 0.25), 2),
                   Table::num(percentile(rhos, 0.50), 2),
                   Table::num(percentile(rhos, 0.75), 2)});
  }
  table.print();
  std::printf(
      "\nTakeaway (paper Section VI): the heavier the tight link's load, the\n"
      "less predictable the path — rho grows as the avail-bw shrinks.\n");
  return 0;
}
