// Side-by-side comparison of the bandwidth-estimation tool families the
// paper discusses, on the same path — the "server selection" use case from
// the introduction: which estimate would you trust to pick a mirror?
//
//   $ ./build/examples/bandwidth_tools
//
// Runs SLoPS/pathload, cprobe-style train dispersion (ADR), packet-pair
// capacity probing, TOPP, and a greedy-TCP (BTC) transfer, and contrasts
// what each one measures.

#include <cstdio>

#include "baselines/btc.hpp"
#include "baselines/dispersion.hpp"
#include "baselines/topp.hpp"
#include "core/session.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"
#include "util/table.hpp"

using namespace pathload;

int main() {
  scenario::PaperPathConfig network;
  network.hops = 1;
  network.tight_capacity = Rate::mbps(10);
  network.tight_utilization = 0.55;  // A = 4.5 Mb/s, C = 10 Mb/s
  network.model = sim::Interarrival::kPareto;

  std::printf("path: C = 10 Mb/s, u = 55%% -> avail-bw A = 4.5 Mb/s\n\n");
  Table table{{"tool", "reports", "value_Mbps", "intrusive?"}};

  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    core::PathloadSession session{core::PathloadConfig{}};
    const auto r = session.run(ch);
    table.add_row({"pathload (SLoPS)", "avail-bw range",
                   "[" + Table::num(r.range.low.mbits_per_sec(), 1) + ", " +
                       Table::num(r.range.high.mbits_per_sec(), 1) + "]",
                   "no (avg rate <= R/10)"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    const Rate adr = baselines::CprobeEstimator{}.measure(ch);
    table.add_row({"cprobe (train dispersion)", "ADR (not avail-bw!)",
                   Table::num(adr.mbits_per_sec(), 1), "mildly (short bursts)"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    const Rate cap = baselines::PacketPairEstimator{}.measure(ch);
    table.add_row({"packet pair", "capacity C", Table::num(cap.mbits_per_sec(), 1),
                   "no"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    baselines::ToppConfig tc;
    tc.max_rate = Rate::mbps(16);
    tc.step = Rate::mbps(0.5);
    const auto est = baselines::ToppEstimator{tc}.measure(ch);
    table.add_row({"TOPP", "avail-bw + capacity",
                   est.valid ? Table::num(est.avail_bw.mbits_per_sec(), 1) + " / " +
                                   Table::num(est.capacity.mbits_per_sec(), 1)
                             : "n/a",
                   "moderately (rate sweep)"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    baselines::BtcConfig bc;
    bc.duration = Duration::seconds(60);
    const auto r = baselines::BtcMeasurement{bc}.run(bed.simulator(), bed.path());
    table.add_row({"greedy TCP (BTC)", "TCP bulk throughput",
                   Table::num(r.average_throughput.mbits_per_sec(), 1),
                   "yes (saturates path)"});
  }
  table.print();
  std::printf(
      "\nNote how train dispersion lands between A and C (the ADR), packet\n"
      "pairs report C, and BTC reports what TCP can *take* (>= A, at the\n"
      "cost of queueing delay for everyone else) — only SLoPS/TOPP answer\n"
      "the avail-bw question, and only SLoPS bounds its own footprint.\n");
  return 0;
}
