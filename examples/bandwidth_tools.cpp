// Side-by-side comparison of the bandwidth-estimation tool families the
// paper discusses, on the same path — the "server selection" use case from
// the introduction: which estimate would you trust to pick a mirror?
//
//   $ ./build/examples/bandwidth_tools
//   $ ./build/examples/bandwidth_tools --live <host>:<port>
//
// The default run uses a simulated single-queue path. With --live, the
// same registry estimators run over a net::LiveProbeChannel connected to a
// running pathload_rcv (its printed control port is the port to use) — the
// Estimator-over-LiveProbeChannel path end to end. BTC is the exception:
// it needs a bulk-TCP-capable channel, which the live channel lacks, so it
// reports the same structured capability-mismatch error scenario_runner
// gives instead of silently falling back to the simulator.
//
// Runs SLoPS/pathload, cprobe-style train dispersion (ADR), packet-pair
// capacity probing, TOPP, and a greedy-TCP (BTC) transfer, and contrasts
// what each one measures.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/btc.hpp"
#include "baselines/dispersion.hpp"
#include "baselines/estimators.hpp"
#include "baselines/topp.hpp"
#include "core/session.hpp"
#include "net/live_channel.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"
#include "util/table.hpp"

using namespace pathload;

namespace {

/// The structured capability-mismatch message for bulk-TCP estimators on
/// the live channel — the same core::channel_support_summary catalogue
/// scenario_runner's --channel error ends with: name who supports what
/// instead of silently substituting a simulator.
core::EstimatorError live_bulk_mismatch(const core::EstimatorRegistry& reg,
                                        const std::string& names) {
  return core::EstimatorError{
      "--live: " + names +
      ": measuring by greedy TCP connection needs a bulk-TCP-capable "
      "channel, and the live channel has no TCP data mover; refusing to "
      "fall back to sim silently.\n" +
      core::channel_support_summary(reg)};
}

int run_live(const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 >= target.size()) {
    std::fprintf(stderr,
                 "bandwidth_tools: --live expects <host>:<port> (the control "
                 "port a running pathload_rcv printed), got '%s'\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bandwidth_tools: bad --live port in '%s'\n",
                 target.c_str());
    return 2;
  }

  const core::EstimatorRegistry& reg = baselines::builtin_estimators();
  try {
    net::LiveProbeChannel channel{{host, static_cast<std::uint16_t>(port)}};
    std::printf("live path to %s (control RTT ~ %s)\n\n", target.c_str(),
                channel.rtt().str().c_str());

    Table table{{"tool", "reports", "value_Mbps", "probe_MB", "time_s"}};
    std::string skipped;
    std::string unhinted;
    for (const auto& entry : reg.entries()) {
      if (entry.needs_bulk_tcp) {
        // Don't throw mid-table: record the row, print the structured
        // error once after the results.
        table.add_row({entry.name, entry.quantity, "n/a (needs bulk TCP)", "-", "-"});
        skipped += (skipped.empty() ? "" : ", ") + entry.name;
        continue;
      }
      if (entry.needs_capacity_hint) {
        // Same structured path as the bulk-TCP mismatch: a live path's
        // capacity is not known a priori, and this example takes no
        // capacity flag — declare the gap instead of running the tool
        // into its EstimatorError mid-table.
        table.add_row({entry.name, entry.quantity,
                       "n/a (needs capacity_mbps hint)", "-", "-"});
        unhinted += (unhinted.empty() ? "" : ", ") + entry.name;
        continue;
      }
      const auto est = entry.make(core::KvOverrides{});
      Rng rng{1};
      const core::EstimateReport r = est->run(channel, rng);
      std::string value = "n/a";
      if (r.valid) {
        value = r.is_range ? "[" + Table::num(r.low.mbits_per_sec(), 1) + ", " +
                                 Table::num(r.high.mbits_per_sec(), 1) + "]"
                           : Table::num(r.center().mbits_per_sec(), 1);
      }
      table.add_row({entry.name, entry.quantity, value,
                     Table::num(r.bytes_sent.bits() / 8e6, 2),
                     Table::num(r.elapsed.secs(), 1)});
    }
    table.print();
    if (!skipped.empty()) {
      std::printf("\n%s\n", live_bulk_mismatch(reg, skipped).what());
    }
    if (!unhinted.empty()) {
      std::printf("\n%s: the gap model needs the bottleneck capacity a "
                  "priori (capacity_mbps); measure it first (pktpair above) "
                  "and run these via scenario_runner --set, which fills the "
                  "hint from a scenario's declared narrow link.\n",
                  unhinted.c_str());
    }
  } catch (const core::EstimatorError& e) {
    std::fprintf(stderr, "bandwidth_tools: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bandwidth_tools: --live %s: %s\n", target.c_str(),
                 e.what());
    return 1;
  }
  return 0;
}

int run_sim() {
  scenario::PaperPathConfig network;
  network.hops = 1;
  network.tight_capacity = Rate::mbps(10);
  network.tight_utilization = 0.55;  // A = 4.5 Mb/s, C = 10 Mb/s
  network.model = sim::Interarrival::kPareto;

  std::printf("path: C = 10 Mb/s, u = 55%% -> avail-bw A = 4.5 Mb/s\n\n");
  Table table{{"tool", "reports", "value_Mbps", "intrusive?"}};

  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    core::PathloadSession session{core::PathloadConfig{}};
    const auto r = session.run(ch);
    table.add_row({"pathload (SLoPS)", "avail-bw range",
                   "[" + Table::num(r.range.low.mbits_per_sec(), 1) + ", " +
                       Table::num(r.range.high.mbits_per_sec(), 1) + "]",
                   "no (avg rate <= R/10)"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    const Rate adr = baselines::CprobeEstimator{}.measure(ch);
    table.add_row({"cprobe (train dispersion)", "ADR (not avail-bw!)",
                   Table::num(adr.mbits_per_sec(), 1), "mildly (short bursts)"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    const Rate cap = baselines::PacketPairEstimator{}.measure(ch);
    table.add_row({"packet pair", "capacity C", Table::num(cap.mbits_per_sec(), 1),
                   "no"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    scenario::SimProbeChannel ch{bed.simulator(), bed.path()};
    baselines::ToppConfig tc;
    tc.max_rate = Rate::mbps(16);
    tc.step = Rate::mbps(0.5);
    const auto est = baselines::ToppEstimator{tc}.measure(ch);
    table.add_row({"TOPP", "avail-bw + capacity",
                   est.valid ? Table::num(est.avail_bw.mbits_per_sec(), 1) + " / " +
                                   Table::num(est.capacity.mbits_per_sec(), 1)
                             : "n/a",
                   "moderately (rate sweep)"});
  }
  {
    scenario::Testbed bed{network};
    bed.start();
    baselines::BtcConfig bc;
    bc.duration = Duration::seconds(60);
    const auto r = baselines::BtcMeasurement{bc}.run(bed.simulator(), bed.path());
    table.add_row({"greedy TCP (BTC)", "TCP bulk throughput",
                   Table::num(r.average_throughput.mbits_per_sec(), 1),
                   "yes (saturates path)"});
  }
  table.print();
  std::printf(
      "\nNote how train dispersion lands between A and C (the ADR), packet\n"
      "pairs report C, and BTC reports what TCP can *take* (>= A, at the\n"
      "cost of queueing delay for everyone else) — only SLoPS/TOPP answer\n"
      "the avail-bw question, and only SLoPS bounds its own footprint.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--live") == 0) {
    if (argc != 3) {
      std::fprintf(stderr, "usage: %s [--live <host>:<port>]\n", argv[0]);
      return 2;
    }
    return run_live(argv[2]);
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--live <host>:<port>]\n", argv[0]);
    return 2;
  }
  return run_sim();
}
