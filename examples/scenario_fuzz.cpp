// Seeded scenario fuzzing driver (scenario/fuzz.hpp): generate valid
// random ScenarioSpecs, run estimators over them, and check the property
// invariants. Every violation is replayable: the failing spec is written
// as text (it carries its own seed) and the replay command is printed.
//
//   $ scenario_fuzz --count 200 --seed 90210 --out build/fuzz_failures
//   $ scenario_fuzz --replay build/fuzz_failures/fuzz-1234.scenario
//   $ scenario_fuzz --list-invariants
//
// Cases fan out over SweepRunner threads (thread-count invariant: every
// case is a pure function of its seed). Exit status 1 when any invariant
// was violated, 0 on a clean batch.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/estimators.hpp"
#include "bench/common.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/sweep_runner.hpp"

using namespace pathload;

namespace {

struct Options {
  int count{25};
  std::optional<std::uint64_t> seed;
  std::vector<std::string> estimators;  // empty: per-case rotation
  std::string out_dir{"."};
  std::string replay_file;
  int threads{0};
  int max_hops{3};
  bool allow_flows{true};
  bool allow_impairments{true};
  bool allow_engine_v2{false};
  bool list_invariants{false};
};

struct Invariant {
  const char* name;
  const char* what;
};

constexpr Invariant kInvariants[] = {
    {"roundtrip", "generated spec re-parses and to_text is byte-identical"},
    {"no-crash", "no EstimatorError / exception-backed failed report on any valid spec"},
    {"finite-estimate", "valid estimates are finite, non-negative, low <= high"},
    {"physical-bound", "no estimate exceeds 1.5x the narrow-link capacity"},
    {"oracle-agreement", "min-plus service-curve rate matches configured avail-bw (calm specs)"},
    {"monitor-bracket", "pathload's range intersects the pre-probe UtilizationMonitor bracket; point gap tools within 0.5-1.5x (calm specs)"},
    {"pristine-outcome", "probe tools lose under 20% of probes on pristine calm paths"},
    {"impair-consistency", "injected loss >= 2% with enough probes actually loses packets"},
};

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr,
               "scenario_fuzz: %s\n"
               "usage:\n"
               "  scenario_fuzz [--count N] [--seed S] [--out DIR] [--threads T]\n"
               "                [--estimators all|name[,name...]] [--max-hops H]\n"
               "                [--no-flows] [--no-impair] [--engine-v2]\n"
               "  scenario_fuzz --replay <spec-file> [--estimators ...]\n"
               "  scenario_fuzz --list-invariants\n",
               msg.c_str());
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) usage_error(std::string{what} + " needs a value");
      return argv[++i];
    };
    if (a == "--count") {
      opt.count = std::atoi(next("--count").c_str());
      if (opt.count <= 0) usage_error("--count must be a positive integer");
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    } else if (a == "--out") {
      opt.out_dir = next("--out");
    } else if (a == "--threads") {
      opt.threads = std::atoi(next("--threads").c_str());
    } else if (a == "--estimators") {
      const std::string sel = next("--estimators");
      if (sel != "all") {
        std::stringstream ss{sel};
        std::string name;
        while (std::getline(ss, name, ',')) {
          if (!name.empty()) opt.estimators.push_back(name);
        }
        if (opt.estimators.empty()) {
          usage_error("--estimators needs 'all' or at least one name");
        }
      } else {
        for (const auto& e : baselines::builtin_estimators().entries()) {
          opt.estimators.push_back(e.name);
        }
      }
    } else if (a == "--max-hops") {
      opt.max_hops = std::atoi(next("--max-hops").c_str());
      if (opt.max_hops <= 0) usage_error("--max-hops must be a positive integer");
    } else if (a == "--no-flows") {
      opt.allow_flows = false;
    } else if (a == "--no-impair") {
      opt.allow_impairments = false;
    } else if (a == "--engine-v2") {
      opt.allow_engine_v2 = true;
    } else if (a == "--replay") {
      opt.replay_file = next("--replay");
    } else if (a == "--list-invariants") {
      opt.list_invariants = true;
    } else {
      usage_error("unknown argument '" + a + "'");
    }
  }
  return opt;
}

scenario::FuzzOptions fuzz_options(const Options& opt) {
  scenario::FuzzOptions fo;
  fo.max_hops = opt.max_hops;
  fo.allow_flows = opt.allow_flows;
  fo.allow_impairments = opt.allow_impairments;
  fo.allow_engine_v2 = opt.allow_engine_v2;
  return fo;
}

std::vector<std::string> case_estimators(const Options& opt, std::uint64_t seed) {
  if (!opt.estimators.empty()) return opt.estimators;
  return scenario::default_fuzz_estimators(baselines::builtin_estimators(), seed);
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) out += (out.empty() ? "" : ",") + n;
  return out;
}

/// Write the failing spec and print the violation block with the replay
/// command — the ctest log IS the repro recipe.
void report_violations(const scenario::FuzzResult& r, const Options& opt,
                       const std::vector<std::string>& estimators) {
  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  const std::string path =
      opt.out_dir + "/fuzz-" + std::to_string(r.seed) + ".scenario";
  {
    std::ofstream out{path};
    out << r.spec_text;
  }
  for (const auto& v : r.violations) {
    std::printf("VIOLATION seed=%llu invariant=%s%s%s\n  %s\n",
                static_cast<unsigned long long>(r.seed), v.invariant.c_str(),
                v.estimator.empty() ? "" : " estimator=",
                v.estimator.c_str(), v.detail.c_str());
  }
  std::printf("  repro spec: %s\n  replay: scenario_fuzz --replay %s --estimators %s\n",
              path.c_str(), path.c_str(), join(estimators).c_str());
}

int run_replay(const Options& opt) {
  std::ifstream in{opt.replay_file};
  if (!in) usage_error("cannot open spec file '" + opt.replay_file + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const scenario::ScenarioSpec spec = scenario::ScenarioSpec::parse(buf.str());
  // A generated spec carries its fuzz seed as its scenario seed, so the
  // file alone reproduces the exact simulation; --seed can override.
  const std::uint64_t seed = opt.seed.value_or(spec.seed);
  const std::vector<std::string> estimators = case_estimators(opt, seed);
  const scenario::FuzzResult r = scenario::fuzz_check(
      baselines::builtin_estimators(), spec, seed, fuzz_options(opt), estimators);
  std::printf("replay %s: seed=%llu calm=%d estimators=%s\n",
              opt.replay_file.c_str(), static_cast<unsigned long long>(seed),
              r.calm ? 1 : 0, join(estimators).c_str());
  if (r.ok()) {
    std::printf("replay: all invariants hold\n");
    return 0;
  }
  for (const auto& v : r.violations) {
    std::printf("VIOLATION invariant=%s%s%s\n  %s\n", v.invariant.c_str(),
                v.estimator.empty() ? "" : " estimator=", v.estimator.c_str(),
                v.detail.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  if (opt.list_invariants) {
    for (const auto& inv : kInvariants) {
      std::printf("%-18s %s\n", inv.name, inv.what);
    }
    return 0;
  }
  try {
    if (!opt.replay_file.empty()) return run_replay(opt);

    const std::uint64_t base = opt.seed.value_or(bench::seed());
    const scenario::FuzzOptions fo = fuzz_options(opt);
    scenario::SweepRunner runner{opt.threads};
    const std::vector<scenario::FuzzResult> results = runner.map(
        static_cast<std::size_t>(opt.count), [&](std::size_t i) {
          const std::uint64_t seed =
              scenario::fuzz_case_seed(base, static_cast<int>(i));
          return scenario::fuzz_one(baselines::builtin_estimators(), seed, fo,
                                    case_estimators(opt, seed));
        });

    int violations = 0;
    int calm = 0;
    for (const auto& r : results) {
      calm += r.calm ? 1 : 0;
      if (r.ok()) continue;
      violations += static_cast<int>(r.violations.size());
      report_violations(r, opt, case_estimators(opt, r.seed));
    }
    std::printf("fuzz: %d cases (base seed %llu), %d calm, %d violation%s\n",
                opt.count, static_cast<unsigned long long>(base), calm,
                violations, violations == 1 ? "" : "s");
    return violations > 0 ? 1 : 0;
  } catch (const scenario::SpecError& e) {
    std::fprintf(stderr, "scenario_fuzz: %s\n", e.what());
    return 1;
  } catch (const core::EstimatorError& e) {
    std::fprintf(stderr, "scenario_fuzz: %s\n", e.what());
    return 1;
  }
}
