// pathload_snd — the sender/driver end of the live measurement tool,
// mirroring the original pathload distribution's pathload_snd binary.
//
//   $ ./build/examples/pathload_snd --port P [--host 127.0.0.1]
//                                   [--omega MBPS] [--chi MBPS]
//                                   [--packets K] [--streams N]
//                                   [--deadline SECS] [--retries N]
//
// Connects to a running pathload_rcv, runs one SLoPS measurement, and
// prints the estimated avail-bw range plus a per-fleet trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/session.hpp"
#include "net/live_channel.hpp"

using namespace pathload;

namespace {

const char* verdict_str(core::FleetVerdict v) {
  switch (v) {
    case core::FleetVerdict::kAbove:
      return "R > A";
    case core::FleetVerdict::kBelow:
      return "R < A";
    case core::FleetVerdict::kGrey:
      return "grey ";
    case core::FleetVerdict::kAbortedLoss:
      return "loss!";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  double deadline_s = 0.0;
  core::PathloadConfig cfg;
  net::LiveChannelConfig channel_cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = next("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(next("--port"));
    } else if (std::strcmp(argv[i], "--omega") == 0) {
      cfg.omega = Rate::mbps(std::atof(next("--omega")));
    } else if (std::strcmp(argv[i], "--chi") == 0) {
      cfg.chi = Rate::mbps(std::atof(next("--chi")));
    } else if (std::strcmp(argv[i], "--packets") == 0) {
      cfg.packets_per_stream = std::atoi(next("--packets"));
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      cfg.streams_per_fleet = std::atoi(next("--streams"));
    } else if (std::strcmp(argv[i], "--deadline") == 0) {
      deadline_s = std::atof(next("--deadline"));
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      channel_cfg.handshake_attempts = std::atoi(next("--retries"));
    } else {
      std::fprintf(stderr,
                   "usage: %s --port P [--host H] [--omega MBPS] [--chi MBPS] "
                   "[--packets K] [--streams N] [--deadline SECS] [--retries N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "a valid --port (from pathload_rcv) is required\n");
    return 2;
  }

  try {
    net::LiveProbeChannel channel{{host, static_cast<std::uint16_t>(port)},
                                  channel_cfg};
    std::printf("pathload_snd: connected to %s:%d (control RTT ~ %s)\n", host.c_str(),
                port, channel.rtt().str().c_str());
    core::PathloadSession session{cfg};
    if (deadline_s > 0.0) session.set_run_deadline(Duration::seconds(deadline_s));
    const auto result = session.run(channel);

    std::printf("\nfleet trace:\n");
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      const auto& fleet = result.trace[i];
      std::printf("  fleet %2zu: R = %9s  -> %s  (I:%d N:%d discard:%d)\n", i + 1,
                  fleet.rate.str().c_str(), verdict_str(fleet.verdict),
                  fleet.counts.type_i, fleet.counts.type_n, fleet.counts.discarded);
    }
    const char* cut_short = "";
    if (!result.converged) {
      cut_short = result.hit_deadline ? "  (deadline reached)"
                                      : "  (fleet cap reached)";
    }
    std::printf("\navail-bw range: [%s, %s]%s\n", result.range.low.str().c_str(),
                result.range.high.str().c_str(), cut_short);
    std::printf("elapsed %.1f s, %lld streams, %s of probe traffic, "
                "%lld probe packets lost\n",
                result.elapsed.secs(), static_cast<long long>(result.streams_sent),
                result.bytes_sent.str().c_str(),
                static_cast<long long>(result.packets_lost));
  } catch (const core::ChannelFault& f) {
    std::fprintf(stderr, "pathload_snd: session aborted: %s\n", f.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pathload_snd: %s\n", e.what());
    return 1;
  }
  return 0;
}
