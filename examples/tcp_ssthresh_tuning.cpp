// Using an avail-bw estimate to seed TCP's ssthresh — the use case Allman
// & Paxson raised (paper Section II) and one of Section IX's motivating
// applications ("tuning TCP's ssthresh parameter").
//
//   $ ./build/examples/tcp_ssthresh_tuning
//
// Slow start doubles cwnd until ssthresh; with the default (essentially
// unbounded) ssthresh the sender overshoots the path's bandwidth-delay
// product, dumps a window of losses into the queue, and pays for it in
// recovery. Seeding ssthresh = A * RTT / MSS from a pathload measurement
// lets the connection glide into congestion avoidance at the right rate.

#include <cstdio>

#include "core/session.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/sim_channel.hpp"
#include "tcp/reno.hpp"
#include "util/table.hpp"

using namespace pathload;

namespace {

struct TransferStats {
  double early_throughput_mbps;  ///< goodput over the first 10 s
  std::uint64_t fast_retransmits;
  std::uint64_t timeouts;
};

TransferStats run_transfer(double ssthresh_segments, std::uint64_t seed) {
  scenario::PaperPathConfig network;
  network.hops = 1;
  network.tight_capacity = Rate::mbps(10);
  network.tight_utilization = 0.4;  // A = 6 Mb/s
  network.buffer_drain = Duration::milliseconds(60);
  network.model = sim::Interarrival::kPareto;
  network.seed = seed;
  scenario::Testbed bed{network};
  bed.start();

  tcp::TcpConfig cfg;
  cfg.initial_ssthresh = ssthresh_segments;
  tcp::TcpConnection conn{bed.simulator(), bed.path(), cfg,
                          Duration::milliseconds(50)};
  conn.sender().start();
  bed.simulator().run_for(Duration::seconds(10));
  conn.sender().stop();

  TransferStats stats;
  stats.early_throughput_mbps =
      rate_of(conn.sender().bytes_acked(), Duration::seconds(10)).mbits_per_sec();
  stats.fast_retransmits = conn.sender().fast_retransmits();
  stats.timeouts = conn.sender().timeouts();
  return stats;
}

}  // namespace

int main() {
  // Step 1: measure the path with pathload (non-intrusively).
  scenario::PaperPathConfig network;
  network.hops = 1;
  network.tight_capacity = Rate::mbps(10);
  network.tight_utilization = 0.4;
  network.model = sim::Interarrival::kPareto;
  scenario::Testbed bed{network};
  bed.start();
  scenario::SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadSession session{core::PathloadConfig{}};
  const auto estimate = session.run(channel);
  std::printf("pathload: avail-bw in [%.2f, %.2f] Mb/s (true A = 6.0)\n",
              estimate.range.low.mbits_per_sec(), estimate.range.high.mbits_per_sec());

  // Step 2: derive ssthresh = A * RTT / MSS from the (conservative) center.
  const double rtt_secs = 0.100;  // base path RTT
  const double mss_bits = 1460 * 8.0;
  const double tuned_ssthresh =
      estimate.range.center().bits_per_sec() * rtt_secs / mss_bits;
  std::printf("tuned ssthresh: %.1f segments (A * RTT / MSS)\n\n", tuned_ssthresh);

  // Step 3: compare transfers (averaged over a few seeds).
  Table table{{"ssthresh", "early_goodput_Mbps", "fast_rtx", "timeouts"}};
  for (const bool tuned : {false, true}) {
    double tput = 0;
    std::uint64_t frtx = 0;
    std::uint64_t tmo = 0;
    const int trials = 5;
    for (int i = 0; i < trials; ++i) {
      // An untuned modern stack slow-starts until the first loss
      const auto stats = run_transfer(tuned ? tuned_ssthresh : 1e9, 100 + i);
      tput += stats.early_throughput_mbps;
      frtx += stats.fast_retransmits;
      tmo += stats.timeouts;
    }
    table.add_row({tuned ? Table::num(tuned_ssthresh, 1) + " (tuned)" : "unbounded (default)",
                   Table::num(tput / trials, 2),
                   Table::num(static_cast<double>(frtx) / trials, 1),
                   Table::num(static_cast<double>(tmo) / trials, 1)});
  }
  table.print();
  std::printf(
      "\nWith an unbounded ssthresh, slow start overshoots the path's BDP and\n"
      "dumps a large part of its window into the drop-tail queue; recovering\n"
      "that burst (one hole per RTT) costs seconds of early goodput. The\n"
      "measurement-seeded connection enters congestion avoidance at the right\n"
      "rate instead — the improvement Allman & Paxson anticipated.\n");
  return 0;
}
