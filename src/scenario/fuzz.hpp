// Seeded scenario fuzzing: generate valid random ScenarioSpecs and check
// property invariants of every estimator run over them.
//
// The generator draws every knob from small discrete menus of exact
// decimals, so a generated spec (a) always passes ScenarioSpec::validate
// and (b) round-trips bit-exactly through to_text/parse — the emitted
// repro file IS the scenario, and `scenario_fuzz --replay <file>`
// reproduces a violation from the file alone (the generated spec carries
// its fuzz seed as its scenario seed). docs/FUZZING.md documents the
// grammar, the invariant list, and the replay workflow.
//
// Invariants checked per (spec × estimator) cell:
//   roundtrip          to_text → parse → to_text is byte-identical
//   no-crash           no EstimatorError and no exception-backed `failed`
//                      report ("error: ..." / "channel fault: ...") on any
//                      valid spec
//   finite-estimate    valid estimates are finite, non-negative, low<=high
//   physical-bound     no estimate exceeds 1.5x the narrow-link capacity
//   oracle-agreement   on calm specs the min-plus service-curve oracle
//                      (scenario/service_curve.hpp) agrees with the
//                      configured avail-bw
//   monitor-bracket    on calm, uncongested specs pathload's [low, high]
//                      range intersects the UtilizationMonitor bracket
//                      (the MRTG stand-in, sampled pre-probe) widened by
//                      the oracle tolerance; gap-model point tools
//                      (spruce, igi, single-bottleneck paths) land within
//                      0.5-1.5x of that band — their own papers document
//                      20-40% load-dependent bias, so the envelope is
//                      multiplicative
//   pristine-outcome   probe tools lose under 20% of their probes on
//                      pristine calm paths (phantom impairments / broken
//                      loss accounting)
//   impair-consistency an injected loss rate >= 2% with enough probes
//                      actually loses packets
//
// A violation carries the invariant name, a diagnostic, the spec text, and
// the seed; scenario_fuzz writes the spec to a file and prints the replay
// command.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "util/time.hpp"

namespace pathload::core {
class EstimatorRegistry;
}

namespace pathload::scenario {

/// Generator knobs. Defaults are what the fuzz corpus tiers run.
struct FuzzOptions {
  int max_hops{3};               ///< path length drawn from [1, max_hops]
  bool allow_flows{true};        ///< permit responsive TCP cross flows
  bool allow_impairments{true};  ///< permit loss/dup/reorder impair lines
  /// Permit the `engine = v2` directive (half the generated specs then run
  /// the hybrid fluid/packet engine; docs/ENGINE.md). Off by default so the
  /// existing corpus seeds keep generating byte-identical specs; the
  /// nightly engine-v2 batch turns it on (`scenario_fuzz --engine-v2`).
  bool allow_engine_v2{false};
  /// Virtual-time deadline handed to every estimator (deadline_s), so a
  /// pathological spec times out structurally instead of hanging the run.
  double deadline_s{120.0};
  /// Monitor sampling for the bracket invariant: window size and pre-probe
  /// sampling span.
  Duration monitor_window{Duration::seconds(1)};
  Duration monitor_span{Duration::seconds(10)};
};

/// Deterministically generate one valid ScenarioSpec from a seed. The
/// spec's own `seed` field is set to `seed`, so a written spec file alone
/// reproduces the exact simulation. Every generated spec validates and
/// round-trips through to_text bit-exactly.
ScenarioSpec generate_scenario(std::uint64_t seed, const FuzzOptions& opt);

/// One violated invariant.
struct FuzzViolation {
  std::string invariant;  ///< name from the list above
  std::string estimator;  ///< offending tool; empty for spec-level checks
  std::string detail;     ///< human diagnostic (values, bracket, note)
};

/// Everything one fuzz case produced.
struct FuzzResult {
  std::uint64_t seed{0};
  ScenarioSpec spec;
  std::string spec_text;  ///< the replayable text form
  bool calm{false};       ///< the oracle/bracket invariants applied
  std::vector<FuzzViolation> violations;

  bool ok() const { return violations.empty(); }
};

/// A spec qualifies for the truth-comparing invariants (oracle-agreement,
/// monitor-bracket, pristine-outcome) when its ground truth is actually
/// well-defined and steady — open-loop only (no flows), pristine links,
/// stationary traffic, tight-hop utilization <= 0.6 — and the estimators'
/// statistical-multiplexing assumption holds (no on/off bursts, no CBR:
/// probe/CBR phase aliasing makes trend and gap models overestimate by
/// design, and the paper's simulations never use CBR cross traffic).
bool spec_is_calm(const ScenarioSpec& spec);

/// Check all invariants of `spec` with every named estimator. `seed` is
/// recorded in the result and seeds nothing beyond what `spec.seed`
/// already pins. Estimators needing a capacity hint get the narrow-link
/// capacity, mirroring scenario_runner's auto-fill.
FuzzResult fuzz_check(const core::EstimatorRegistry& reg, const ScenarioSpec& spec,
                      std::uint64_t seed, const FuzzOptions& opt,
                      const std::vector<std::string>& estimators);

/// Generate + roundtrip-check + fuzz_check: one full fuzz case. The run
/// uses the *parsed-back* spec, so what runs is exactly what a replay from
/// the emitted file would run.
FuzzResult fuzz_one(const core::EstimatorRegistry& reg, std::uint64_t seed,
                    const FuzzOptions& opt,
                    const std::vector<std::string>& estimators);

/// Default estimator rotation for case `seed`: pathload always, plus two
/// other registry tools cycling with the seed, so a batch covers the whole
/// catalogue while keeping each case cheap.
std::vector<std::string> default_fuzz_estimators(const core::EstimatorRegistry& reg,
                                                 std::uint64_t seed);

/// Seed for case `index` of a batch starting at `base` (splitmix64, so
/// nearby batch indices give decorrelated generator draws).
std::uint64_t fuzz_case_seed(std::uint64_t base, int index);

}  // namespace pathload::scenario
