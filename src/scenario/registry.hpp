// Named scenario presets.
//
// The registry is the single source of truth for "a scenario we talk
// about by name": figure benches, the scenario_runner CLI, tests, and docs
// all resolve the same ScenarioSpec from the same entry, so a path/traffic
// definition exists exactly once. Registry::builtin() holds the shipped
// presets (see docs/SCENARIOS.md for the catalogue); user code can build
// additional registries, or extend a copy of the builtin one, with add().
//
// Adding a scenario is a ~10-line ScenarioSpec (text form or C++), not a
// C++ patch to a bench main().

#pragma once

#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace pathload::scenario {

/// An ordered, name-unique collection of scenario specs.
class Registry {
 public:
  Registry() = default;

  /// Validate `spec` and append it. Throws SpecError on an invalid spec or
  /// a duplicate name (the error names the clash).
  void add(ScenarioSpec spec);

  /// Parse the text format and add the result (convenience for spec files).
  void add_text(std::string_view text) { add(ScenarioSpec::parse(text)); }

  /// Lookup by name; nullptr when absent.
  const ScenarioSpec* find(std::string_view name) const;

  /// Lookup by name; throws SpecError listing the known presets when
  /// absent, so a CLI typo gets a usable message.
  const ScenarioSpec& at(std::string_view name) const;

  /// All entries, in registration order.
  const std::vector<ScenarioSpec>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// The shipped presets: the paper path (Pareto and Poisson forms),
  /// tight-link != narrow-link, a 5-hop heterogeneous path, a bursty
  /// on/off tight link, a non-stationary load step, asymmetric per-hop
  /// buffers, an 8-hop near-tight ladder, an up-then-down load wave, and
  /// the responsive-cross-traffic family (tcp-bg-greedy,
  /// tcp-bg-rwnd-capped, tcp-vs-probe-duel, plus btc-path — the
  /// Figs. 15-18 experiment path).
  static const Registry& builtin();

 private:
  std::vector<ScenarioSpec> entries_;
};

}  // namespace pathload::scenario
