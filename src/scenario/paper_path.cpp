#include "scenario/paper_path.hpp"

#include <stdexcept>

namespace pathload::scenario {

Testbed::Testbed(PaperPathConfig cfg) : cfg_{std::move(cfg)} {
  if (cfg_.hops < 1) throw std::invalid_argument{"need at least one hop"};
  if (cfg_.tight_utilization < 0.0 || cfg_.tight_utilization >= 1.0) {
    throw std::invalid_argument{"tight utilization must be in [0, 1)"};
  }
  tight_index_ = static_cast<std::size_t>(cfg_.hops / 2);

  const Duration per_hop_delay = cfg_.total_prop_delay / static_cast<double>(cfg_.hops);
  std::vector<sim::HopSpec> hops;
  hops.reserve(static_cast<std::size_t>(cfg_.hops));
  for (int i = 0; i < cfg_.hops; ++i) {
    const bool tight = static_cast<std::size_t>(i) == tight_index_;
    const Rate capacity = tight ? cfg_.tight_capacity : cfg_.nontight_capacity();
    hops.push_back(sim::HopSpec{capacity, per_hop_delay, capacity.bytes_in(cfg_.buffer_drain)});
  }
  path_ = std::make_unique<sim::Path>(sim_, std::move(hops));

  Rng rng{cfg_.seed};
  for (int i = 0; i < cfg_.hops; ++i) {
    const bool tight = static_cast<std::size_t>(i) == tight_index_;
    const Rate cross = tight ? cfg_.tight_capacity * cfg_.tight_utilization
                             : cfg_.nontight_capacity() * cfg_.nontight_utilization;
    if (cross <= Rate::zero()) {
      traffic_.push_back(nullptr);
      continue;
    }
    traffic_.push_back(std::make_unique<sim::TrafficAggregate>(
        sim_, path_->link(static_cast<std::size_t>(i)), cross, cfg_.sources_per_link,
        cfg_.model, cfg_.size_mix, rng.fork(), cfg_.pareto_alpha));
  }
}

fluid::FluidPath Testbed::fluid() const {
  std::vector<fluid::FluidLink> links;
  links.reserve(static_cast<std::size_t>(cfg_.hops));
  for (int i = 0; i < cfg_.hops; ++i) {
    const bool tight = static_cast<std::size_t>(i) == tight_index_;
    const Rate capacity = tight ? cfg_.tight_capacity : cfg_.nontight_capacity();
    const double u = tight ? cfg_.tight_utilization : cfg_.nontight_utilization;
    links.push_back(fluid::FluidLink{capacity, capacity * u});
  }
  return fluid::FluidPath{std::move(links)};
}

void Testbed::start() {
  for (auto& t : traffic_) {
    if (t) t->start();
  }
  sim_.run_for(cfg_.warmup);
}

sim::UtilizationMonitor& Testbed::monitor_tight_link(Duration window) {
  monitors_.push_back(
      std::make_unique<sim::UtilizationMonitor>(sim_, tight_link(), window));
  monitors_.back()->start();
  return *monitors_.back();
}

}  // namespace pathload::scenario
