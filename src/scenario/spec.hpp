// Declarative scenario specifications.
//
// A ScenarioSpec describes a complete measurement scenario — an N-hop path
// of heterogeneous links, each with its own cross-traffic model, plus the
// warmup and seed that make a run reproducible — without constructing any
// simulation state. Specs come from three places:
//
//  * C++ builders (ScenarioSpec::from_paper, or filling the structs
//    directly), used by the registry's named presets and the benches;
//  * the key=value text format parsed by ScenarioSpec::parse (see
//    docs/SCENARIOS.md for the reference and worked examples);
//  * transforms of an existing spec (with_load for sweeps).
//
// ScenarioInstance turns a validated spec into a live testbed: Simulator +
// Path + per-hop traffic generators, ready for a SimProbeChannel. For specs
// built from the paper parameterization (PaperPathConfig), instantiation is
// bit-identical to scenario::Testbed — the golden determinism anchors and
// the figure benches rely on this.
//
// Units in specs follow the text format: capacities in Mb/s, delays and
// buffer drain times in milliseconds, burst sizes in kilobytes, timestamps
// in seconds; utilizations and Pareto shapes are dimensionless.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/paper_path.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"

#include "sim/flow.hpp"

namespace pathload::scenario {

/// A spec failed to parse or validate. The message always names the
/// offending line (when parsing) or hop/field, what was expected, and what
/// was found.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error{what} {}
};

/// Which generator family loads a hop. kNone disables cross traffic on the
/// hop (the hop still serializes transit packets).
enum class TrafficModel {
  kNone,
  kPoisson,   ///< sim::Interarrival::kExponential renewal arrivals
  kPareto,    ///< sim::Interarrival::kPareto, shape `pareto_alpha`
  kConstant,  ///< CBR (deterministic interarrivals)
  kOnOff,     ///< sim::OnOffSource — exponential ON/OFF, Pareto burst sizes
  kRamp,      ///< sim::RampLoadSource — non-stationary ramp/step load
};

/// Round-trippable name of a traffic model ("poisson", "onoff", ...).
std::string_view to_string(TrafficModel m);

/// Determinism-contract version a spec runs under (the `engine` directive;
/// docs/ENGINE.md).
///
///  * kV1 — the original packet engine: mt19937-64 draws, std::pow inverse
///    CDFs, every cross-traffic packet simulated. Bit-compatible with every
///    golden anchor captured since PR 1.
///  * kV2 — the hybrid fluid/packet engine: cross traffic as fluid rate
///    segments (sim/fluid_traffic.hpp) over Link's fluid mode, CounterRng
///    draws, exp2/log2 inverse CDFs. Probe streams, TCP flows, and the
///    UtilizationMonitor stay packet-accurate. Its RNG and floating-point
///    sequences are free to change relative to v1; v2 has its own anchors.
enum class EngineVersion {
  kV1,
  kV2,
};

/// Round-trippable name of an engine version ("v1", "v2").
std::string_view to_string(EngineVersion v);

/// Cross-traffic declaration for one hop. Only the fields relevant to
/// `model` are consulted; validation flags nonsense combinations.
struct TrafficSpec {
  TrafficModel model{TrafficModel::kNone};

  /// Long-run offered load as a fraction of the hop capacity, in [0, 1).
  /// For kRamp this is the load *before* the ramp.
  double utilization{0.0};

  /// Independent sources sharing the hop's aggregate rate (statistical
  /// multiplexing degree, Section VI-B). Renewal models default to the
  /// paper's 10; on/off and ramp sources default to 1 (a single bursty or
  /// ramping aggregate is the interesting case).
  int sources{10};

  /// Pareto interarrival shape (kPareto only; must be > 1).
  double pareto_alpha{1.9};

  /// kOnOff: burst emission rate as a fraction of hop capacity, in
  /// (utilization, 1]; the ratio utilization/peak_utilization is the duty
  /// cycle.
  double peak_utilization{0.95};
  /// kOnOff: mean Pareto burst size, kilobytes.
  double mean_burst_kb{30.0};
  /// kOnOff: Pareto shape of burst sizes (must be > 1).
  double burst_alpha{1.5};

  /// kRamp: load after the ramp, in [0, 1) (may be below `utilization` for
  /// a downward step). Rates at both ends must be positive.
  double end_utilization{0.0};
  /// kRamp: ramp window, seconds after traffic start. Equal values make an
  /// instantaneous step.
  double ramp_start_s{0.0};
  double ramp_end_s{0.0};
  /// kRamp: optional return window making the profile a *wave*: after
  /// holding end_utilization the load ramps back to `utilization` over
  /// [ramp_back_start_s, ramp_back_end_s]. Both zero (the default)
  /// disables the return segment; when set, the window must not precede
  /// ramp_end_s. Equal values make the return an instantaneous step.
  double ramp_back_start_s{0.0};
  double ramp_back_end_s{0.0};

  /// True when the return segment is configured.
  bool has_ramp_back() const {
    return ramp_back_start_s > 0.0 || ramp_back_end_s > 0.0;
  }

  /// Packet size distribution (all models).
  sim::PacketSizeMix mix{sim::PacketSizeMix::paper_mix()};
};

/// One hop of a scenario path.
struct HopDecl {
  Rate capacity{Rate::mbps(10)};
  Duration delay{Duration::milliseconds(10)};
  /// Buffer expressed as a drain time at capacity: buffer_bytes =
  /// capacity * buffer_drain ("sufficiently buffered", paper Section V-A).
  Duration buffer_drain{Duration::milliseconds(500)};
  TrafficSpec traffic{};
};

/// One responsive TCP cross flow attached to a segment of the path,
/// declared in the text format as a `flow` directive line:
///
///   flow tcp hops=1-2 rwnd=32 start_s=0.5 count=3
///
/// Tokens after the kind are key=value pairs; see docs/SCENARIOS.md for the
/// key table. Unlike the open-loop per-hop traffic models, these flows
/// react to queueing and loss (tcp::SegmentTcpFlow under v1,
/// sim::FluidTcpSource under v2 — see `mode`), so a scenario's
/// effective avail-bw is emergent — `avail_bw()` keeps reporting the
/// open-loop configured value (what the flows compete *for*).
struct FlowSpec {
  /// Hop range [first_hop, last_hop] the flow traverses. kPathEnd in
  /// last_hop means the final hop; the default is the whole path.
  std::size_t first_hop{0};
  std::size_t last_hop{sim::Segment::kPathEnd};

  /// Receiver advertised window in segments; unset = greedy.
  std::optional<double> rwnd{};
  /// Identical parallel flows this entry expands to (each draws its own
  /// flow id and connection state).
  int count{1};

  double start_s{0.0};             ///< first connection, seconds from traffic start
  std::optional<double> stop_s{};  ///< flow end (unset: runs to the end)
  /// Restart variant: both set => a fresh connection every cycle.
  std::optional<double> on_s{};
  std::optional<double> off_s{};

  int mss_bytes{1460};
  double reverse_ms{50.0};  ///< uncongested reverse-path (ACK) delay

  /// Backend selection under engine v2 (ignored — always packet — under
  /// v1). kAuto picks the engine's native backend: the rate-based
  /// sim::FluidTcpSource for v2, tcp::SegmentTcpFlow for v1. kPacket
  /// (`mode=packet`) opts a v2 flow back into the packet-accurate backend,
  /// e.g. when per-segment loss/retransmission behaviour is the point.
  enum class Mode { kAuto, kPacket };
  Mode mode{Mode::kAuto};

  /// Congestion-control policy (`cc=` key): "reno" (default; the
  /// bit-frozen historical policy), "reno-rfc" (RFC 5681-conformant
  /// ssthresh/slow-start), "cubic", or "bbr" (delivery-rate model-based).
  /// Honored by both backends — tcp::TcpConfig::cc for packet flows,
  /// sim::FluidTcpConfig::cc for fluid ones.
  std::string cc{"reno"};

  bool cycles() const { return on_s.has_value() && off_s.has_value(); }
};

/// Stochastic impairments of one hop's link, declared in the text format as
/// an `impair` directive line:
///
///   impair hop=1 loss=0.02 dup=0.01 reorder_ms=2 seed=7
///
/// All knobs are strictly opt-in: a spec without impair lines builds links
/// that never touch an impairment RNG, so pre-impairment scenarios stay
/// bit-identical (the golden-anchor contract). Each impaired link draws
/// from its own stream: `seed` when given, otherwise derived from the
/// scenario seed and the hop index (so per-run seed offsets also reseed the
/// impairments).
struct ImpairSpec {
  std::size_t hop{0};
  /// Random-loss probability, [0, 1).
  double loss{0.0};
  /// Duplication probability, [0, 1).
  double dup{0.0};
  /// Reorder jitter: per-packet extra propagation delay drawn uniformly
  /// from [0, reorder_ms) milliseconds.
  double reorder_ms{0.0};
  /// Explicit impairment-stream seed; unset derives one from the scenario.
  std::optional<std::uint64_t> seed{};

  bool any() const { return loss > 0.0 || dup > 0.0 || reorder_ms > 0.0; }
};

/// A named, self-contained scenario: path shape, per-hop traffic, duration
/// controls, and the default seed. Construct via from_paper/parse or fill
/// the fields and call validate().
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::vector<HopDecl> hops;
  /// Responsive TCP cross flows (segment-scoped), on top of the per-hop
  /// open-loop traffic. Valid with both path forms.
  std::vector<FlowSpec> flows;
  /// Per-hop link impairments (at most one entry per hop). Valid with both
  /// path forms; empty means pristine links.
  std::vector<ImpairSpec> impairments;
  Duration warmup{Duration::seconds(2)};
  std::uint64_t seed{1};
  /// Determinism-contract version (the `engine` directive). Defaults to v1
  /// so every pre-v2 spec, preset, and golden anchor is untouched; to_text
  /// emits the line only for v2, keeping v1 round-trips byte-identical.
  EngineVersion engine{EngineVersion::kV1};

  /// Set when the spec was derived from the paper's Fig. 4 parameterization.
  /// Kept so load sweeps preserve the paper's invariant that the non-tight
  /// capacities track beta * At (with_load re-derives the whole path), and
  /// so instantiation can reuse Testbed bit-for-bit.
  std::optional<PaperPathConfig> paper;

  /// Build a spec from the paper's Fig. 4 parameterization. The resulting
  /// spec instantiates through scenario::Testbed, so runs are bit-identical
  /// to code that used PaperPathConfig directly.
  static ScenarioSpec from_paper(std::string name, std::string description,
                                 const PaperPathConfig& cfg);

  /// Parse the key=value text format (docs/SCENARIOS.md). Throws SpecError
  /// with the line number and an actionable message on any problem; the
  /// returned spec is already validated.
  static ScenarioSpec parse(std::string_view text);

  /// Render the spec in the text format parse() accepts (round-trips).
  std::string to_text() const;

  /// Check every invariant (hop count, ranges, model-specific fields).
  /// Throws SpecError naming the hop and field on the first violation.
  void validate() const;

  /// The spec with the tight hop's long-run utilization set to `util`.
  /// Paper-derived specs re-derive the whole path (beta invariant); custom
  /// specs change only the tight hop's traffic.
  ScenarioSpec with_load(double util) const;

  /// Index of the tight hop: minimum capacity * (1 - utilization), using
  /// pre-ramp utilizations.
  std::size_t tight_hop() const;

  /// Configured long-run end-to-end avail-bw, min over hops of
  /// C * (1 - u). For ramp hops this is the pre-ramp value; see
  /// final_avail_bw() for the post-ramp one.
  Rate avail_bw() const;

  /// Avail-bw with every ramp hop at its end_utilization.
  Rate final_avail_bw() const;

  /// True if any hop uses the kRamp model (the scenario is non-stationary).
  bool nonstationary() const;

  /// True when responsive TCP cross flows are declared. Their throughput is
  /// emergent, so avail_bw() is then the open-loop value the flows and the
  /// estimator compete for, not a truth the estimate must match.
  bool has_flows() const { return !flows.empty(); }

  /// True when any hop carries link impairments (loss/dup/reorder).
  bool impaired() const { return !impairments.empty(); }
};

/// Deterministic per-hop impairment seed when an `impair` line has no
/// explicit seed= (splitmix64 over the scenario seed and hop index, so
/// per-run seed offsets reseed the impairment streams independently of the
/// traffic forks).
std::uint64_t derive_impair_seed(std::uint64_t scenario_seed, std::size_t hop);

/// A live, ready-to-measure instantiation of a spec: simulator + path +
/// per-hop traffic. The analogue of Testbed for arbitrary specs; for
/// paper-derived specs it *is* a Testbed internally, preserving
/// bit-identical runs.
class ScenarioInstance {
 public:
  /// Validates the spec (throws SpecError) and builds the testbed.
  explicit ScenarioInstance(ScenarioSpec spec);
  ~ScenarioInstance();

  sim::Simulator& simulator();
  sim::Path& path();
  const ScenarioSpec& spec() const { return spec_; }

  std::size_t tight_index() const { return tight_index_; }
  sim::Link& tight_link() { return path().link(tight_index_); }
  Rate configured_avail_bw() const { return spec_.avail_bw(); }

  /// The live responsive cross flows, one per expanded `flow` entry
  /// (count=N entries expand to N), in declaration order. Held behind the
  /// sim::ResponsiveFlow seam: packet-accurate tcp::SegmentTcpFlow under
  /// v1 (and `mode=packet`), rate-based sim::FluidTcpSource under v2.
  const std::vector<std::unique_ptr<sim::ResponsiveFlow>>& flows() const {
    return flows_;
  }
  /// Payload acknowledged by every flow so far, restarts included.
  DataSize flow_bytes_acked() const;

  /// Launch the declared flows, start cross traffic, and run the warmup
  /// period (flows whose start_s falls inside the warmup begin during it).
  void start();

 private:
  /// Engine-v2 backend: every link in fluid mode, cross traffic from
  /// sim/fluid_traffic.hpp with CounterRng streams keyed (seed, hop, source).
  void build_v2_traffic();

  ScenarioSpec spec_;
  // Exactly one of the two backends is set: paper-derived v1 specs delegate
  // to Testbed (bit-compatibility); custom and engine-v2 specs build their
  // own state (v2 always, because its links run in fluid mode and from_paper
  // mirrors the Testbed hop derivation into spec.hops anyway). The
  // Simulator must outlive every TimerHandle owner, hence member order —
  // flows_ last so its timers and connections die first.
  std::unique_ptr<Testbed> testbed_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Path> path_;
  std::vector<std::unique_ptr<sim::TrafficGen>> traffic_;
  std::vector<std::unique_ptr<sim::ResponsiveFlow>> flows_;
  std::size_t tight_index_{0};
};

}  // namespace pathload::scenario
