// Sharded matrix runs: partition run_matrix's cells across worker
// processes and merge their outputs back into the exact in-process result.
//
// The contract that makes this safe is determinism: plan_matrix enumerates
// cells (and derives their seeds) before anything runs, every cell's runs
// are self-contained simulations, and cell_to_text round-trips every field
// bit-exactly (%.17g for doubles, raw int64 for counters). A shard worker
// therefore only needs the cell *indices* it owns — shard k of N owns
// cells {i : i % N == k} of the canonical enumeration — and the merged
// output is byte-identical to run_matrix whatever N is. The test
// tests/scenario/shard_matrix_test.cpp pins this for N in {1, 2, 4}, and
// tools/shard_merge_check.sh pins it at the process level through
// `scenario_runner --shard i/N --emit-cells` + `--merge-cells`.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/experiment.hpp"

namespace pathload::scenario {

// ---------------------------------------------------------------------------
// Cell serialization: a stable line-based text form of MatrixCell.

/// Serialize one cell under its global matrix index. Doubles render with
/// %.17g (strtod round-trips them bit-exactly), int64 counters render raw,
/// and free-text notes are backslash-escaped (\\, \n, \r), so
/// parse_cells(cell_to_text(c)) reproduces `c` field-for-field and
/// re-serializing is byte-identical.
std::string cell_to_text(const MatrixCell& cell, std::size_t index);

/// Serialize a full matrix: a `cells total=N version=1` header followed by
/// each cell under its position as the global index. This is what
/// `scenario_runner --emit-cells` prints.
std::string cells_to_text(const std::vector<MatrixCell>& cells);

/// One parsed cell stream: the declared matrix-wide total plus the cells
/// present in this stream (a shard emits only the indices it owns).
struct ParsedCells {
  std::size_t total{0};
  std::vector<std::pair<std::size_t, MatrixCell>> cells;
};

/// Parse a cell stream. Throws SpecError naming the 1-based line on any
/// malformed header, field, or out-of-order/duplicate index.
ParsedCells parse_cells(std::string_view text);

// ---------------------------------------------------------------------------
// Shard partition and merge.

/// Ownership rule: shard `shard_index` of `shard_count` owns cell `index`
/// iff index % shard_count == shard_index. Round-robin (rather than block)
/// assignment keeps shard workloads balanced when consecutive cells share
/// an expensive estimator.
bool shard_owns_cell(std::size_t index, int shard_index, int shard_count);

/// Validate a shard request; throws SpecError on shard_count < 1 or
/// shard_index outside [0, shard_count).
void validate_shard(int shard_index, int shard_count);

/// Run one shard of the matrix: enumerate the canonical plan, keep the
/// owned cells, run them on `runner`, and serialize them under their
/// *global* indices with the matrix-wide total in the header.
std::string run_matrix_shard(const std::vector<MatrixEstimator>& estimators,
                             const std::vector<ScenarioSpec>& scenarios,
                             const std::vector<double>& loads, int runs,
                             std::uint64_t seed0, int shard_index,
                             int shard_count, SweepRunner& runner);

/// Merge shard outputs back into index order. Validates the streams agree
/// on the total and that together they cover every index exactly once;
/// throws SpecError naming any missing or duplicated cell index.
std::vector<MatrixCell> merge_cell_texts(const std::vector<std::string>& shard_texts);

/// A shard worker: given (shard_index, shard_count), produce that shard's
/// serialized cell stream. The in-process worker wraps run_matrix_shard;
/// the process-level equivalent is `scenario_runner --shard i/N
/// --emit-cells` with tools/shard_merge_check.sh doing the merge.
using ShardWorker = std::function<std::string(int shard_index, int shard_count)>;

/// Run `worker` for every shard in order and merge. With a worker that
/// wraps run_matrix_shard on the same inputs, the result is byte-identical
/// (through cells_to_text) to run_matrix for any shard_count >= 1.
std::vector<MatrixCell> run_matrix_sharded(int shard_count, const ShardWorker& worker);

}  // namespace pathload::scenario
