#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "core/session.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/spec.hpp"

namespace pathload::scenario {

/// Aggregate of repeated pathload runs at one operating point, as the paper
/// reports them (e.g. "50-sample average pathload ranges", Fig. 5).
struct RepeatedRuns {
  std::vector<core::PathloadResult> results;

  /// Mean of the per-run lower bounds.
  Rate mean_low() const;
  /// Mean of the per-run upper bounds.
  Rate mean_high() const;
  /// Coefficient of variation of the lower / upper bounds (the paper quotes
  /// 0.10-0.30 for its simulations).
  double cv_low() const;
  double cv_high() const;
  /// Relative variation rho (Eq. 12) of every run.
  std::vector<double> relative_variations() const;
  /// Fraction of runs whose range contains `truth`.
  double coverage(Rate truth) const;
  /// Mean virtual duration of a run.
  Duration mean_elapsed() const;
  /// Mean number of fleets per run.
  double mean_fleets() const;
};

/// Run pathload `runs` times on independent testbeds built from `path_cfg`
/// (seeded `seed0`, `seed0`+1, ...), each on a freshly warmed-up path.
RepeatedRuns run_pathload_repeated(const PaperPathConfig& path_cfg,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0);

/// Single pathload run on a fresh testbed (convenience).
core::PathloadResult run_pathload_once(const PaperPathConfig& path_cfg,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed);

/// Single pathload run on a fresh ScenarioInstance built from `spec` with
/// its seed overridden to `seed`. For paper-derived specs this is
/// bit-identical to run_pathload_once on the equivalent PaperPathConfig.
core::PathloadResult run_scenario_once(const ScenarioSpec& spec,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed);

/// `runs` independent scenario runs seeded seed0, seed0+1, ... — the
/// registry-based analogue of run_pathload_repeated.
RepeatedRuns run_scenario_repeated(const ScenarioSpec& spec,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0);

}  // namespace pathload::scenario
