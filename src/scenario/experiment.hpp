#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/estimator.hpp"
#include "core/session.hpp"
#include "scenario/paper_path.hpp"
#include "scenario/spec.hpp"

namespace pathload::scenario {

class SweepRunner;

/// Aggregate of repeated pathload runs at one operating point, as the paper
/// reports them (e.g. "50-sample average pathload ranges", Fig. 5).
struct RepeatedRuns {
  std::vector<core::PathloadResult> results;

  /// Mean of the per-run lower bounds.
  Rate mean_low() const;
  /// Mean of the per-run upper bounds.
  Rate mean_high() const;
  /// Coefficient of variation of the lower / upper bounds (the paper quotes
  /// 0.10-0.30 for its simulations).
  double cv_low() const;
  double cv_high() const;
  /// Relative variation rho (Eq. 12) of every run.
  std::vector<double> relative_variations() const;
  /// Fraction of runs whose range contains `truth`.
  double coverage(Rate truth) const;
  /// Mean virtual duration of a run.
  Duration mean_elapsed() const;
  /// Mean number of fleets per run.
  double mean_fleets() const;
};

/// Run pathload `runs` times on independent testbeds built from `path_cfg`
/// (seeded `seed0`, `seed0`+1, ...), each on a freshly warmed-up path.
RepeatedRuns run_pathload_repeated(const PaperPathConfig& path_cfg,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0);

/// Single pathload run on a fresh testbed (convenience).
core::PathloadResult run_pathload_once(const PaperPathConfig& path_cfg,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed);

/// Single pathload run on a fresh ScenarioInstance built from `spec` with
/// its seed overridden to `seed`. For paper-derived specs this is
/// bit-identical to run_pathload_once on the equivalent PaperPathConfig.
core::PathloadResult run_scenario_once(const ScenarioSpec& spec,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed);

/// `runs` independent scenario runs seeded seed0, seed0+1, ... — the
/// registry-based analogue of run_pathload_repeated.
RepeatedRuns run_scenario_repeated(const ScenarioSpec& spec,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0);

// ---------------------------------------------------------------------------
// The generic comparison harness: any estimator × any scenario × any load.
// `RepeatedRuns` above is the pathload-specific ancestor; `run_matrix` is
// what the CLI's --compare, bench/baselines_table, and every future
// "new estimator" or "new scenario" PR plug into.

/// One estimator column of a comparison matrix: a registry name plus a
/// factory producing a fresh configured instance per run (estimators may
/// be stateful, and runs fan out across SweepRunner threads).
struct MatrixEstimator {
  std::string name;
  std::function<std::unique_ptr<core::Estimator>()> make;

  /// Column for a registry entry with key=value config overrides. The
  /// overrides are applied once eagerly, so a typo'd key fails here — with
  /// its line-numbered core::EstimatorError — before any simulation runs.
  static MatrixEstimator from_registry(const core::EstimatorRegistry& reg,
                                       std::string_view name,
                                       std::string_view overrides = {});
};

/// One (estimator × scenario × load) cell, aggregated over `runs` seeds.
/// `reports` holds every run's EstimateReport in seed order; the accessors
/// reduce them to the accuracy / variation / intrusiveness / latency
/// quantities the comparison tables print. Invalid runs (an estimator that
/// could not produce an estimate) stay in `reports` but are excluded from
/// the estimate statistics; footprint and latency average over all runs.
struct MatrixCell {
  std::string estimator;
  std::string scenario;
  double load{0.0};      ///< tight-hop utilization the cell ran at
  Rate truth{};          ///< configured avail-bw of the loaded scenario
  std::uint64_t seed0{0};
  std::vector<core::EstimateReport> reports;

  int valid_runs() const;
  Rate mean_low() const;
  Rate mean_high() const;
  Rate mean_center() const;
  /// Mean of |center - truth| / truth over valid runs; NaN when no run
  /// was valid (an estimator that never produced an estimate must not
  /// score a perfect error — render it as n/a).
  double mean_rel_error() const;
  /// Fraction of ALL runs whose estimate covers the truth (range
  /// containment; points widened by `point_slack`). An invalid run never
  /// covers — a tool that fails to estimate should not score on the runs
  /// it skipped.
  double coverage(Rate point_slack) const;
  /// Coefficient of variation of the per-run centers over valid runs;
  /// 0 for a single valid run, NaN when no run was valid.
  double cv_center() const;
  DataSize mean_bytes() const;
  double mean_packets() const;
  Duration mean_elapsed() const;

  /// Per-outcome run counts, indexed by EstimateReport::Outcome in enum
  /// order (ok, degraded, timeout, failed).
  std::array<int, 4> outcome_counts() const;
  /// Single label when every run agrees ("ok"), else "label:n" pairs in
  /// enum order ("ok:3 degraded:2"); "n/a" for an empty cell.
  std::string outcome_summary() const;
  /// Mean per-run probe-loss fraction over all runs (valid or not).
  double mean_loss_fraction() const;
};

/// One planned (estimator × scenario × load) cell of a matrix, enumerated
/// before anything runs. `est` points into the caller's estimator list and
/// must outlive the plan; `spec` is already loaded to the cell's
/// utilization and `seed0` is the cell's base seed.
struct MatrixCellPlan {
  const MatrixEstimator* est;
  ScenarioSpec spec;
  double load;
  std::uint64_t seed0;
};

/// Deterministic cell enumeration shared by run_matrix and the sharded
/// runner (scenario/shard.hpp): estimator-major, then scenario, then load,
/// with the fig05 seed derivation (seed0 + round(u * 1000); an empty
/// `loads` list keeps each scenario at its own configured load with the
/// plain seed0). Shard workers partition exactly this list, so a cell's
/// global index — and therefore its seeds — is identical in-process and
/// across any shard count.
std::vector<MatrixCellPlan> plan_matrix(const std::vector<MatrixEstimator>& estimators,
                                        const std::vector<ScenarioSpec>& scenarios,
                                        const std::vector<double>& loads,
                                        std::uint64_t seed0);

/// Run an explicit list of planned cells, `runs` independent seeds per
/// cell (run i of a cell uses plan.seed0 + i), fanned out on `runner`.
std::vector<MatrixCell> run_planned_cells(const std::vector<MatrixCellPlan>& plans,
                                          int runs, SweepRunner& runner);

/// Run every estimator × every scenario × every load, `runs` independent
/// seeds per cell, fanned out on `runner` (each run is a self-contained
/// simulation, so results are independent of the thread count).
///
/// Seed derivation matches the figure benches (see plan_matrix). A
/// pathload-only matrix therefore reproduces the numbers of
/// sweep_scenario_repeated (and `scenario_runner --sweep`) bit-for-bit.
std::vector<MatrixCell> run_matrix(const std::vector<MatrixEstimator>& estimators,
                                   const std::vector<ScenarioSpec>& scenarios,
                                   const std::vector<double>& loads, int runs,
                                   std::uint64_t seed0, SweepRunner& runner);

/// One estimator run on a fresh ScenarioInstance built from `spec` with
/// its seed overridden to `seed` — the estimator-generic analogue of
/// run_scenario_once (and identical to it for pathload). Runs guarded:
/// a mid-run ChannelFault or stray exception becomes a `failed` report
/// instead of tearing down the matrix.
core::EstimateReport run_estimator_once(const ScenarioSpec& spec,
                                        core::Estimator& est, std::uint64_t seed);

}  // namespace pathload::scenario
