#include "scenario/sim_channel.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <string>

#include "tcp/bulk.hpp"

namespace pathload::scenario {

namespace {
// Process-wide so A/B benches and identity tests can flip every channel at
// once; relaxed because it is only written between streams.
std::atomic<bool> g_burst_batching{true};
}  // namespace

void SimProbeChannel::set_burst_batching(bool on) {
  g_burst_batching.store(on, std::memory_order_relaxed);
}

bool SimProbeChannel::burst_batching() {
  return g_burst_batching.load(std::memory_order_relaxed);
}

SimProbeChannel::SimProbeChannel(sim::Simulator& sim, sim::Path& path)
    : sim_{sim},
      path_{path},
      flow_{sim.next_flow_id()},
      send_timer_{sim.make_timer([this] { send_next(); })} {
  receiver_.channel = this;
  path_.egress().register_flow(flow_, &receiver_);
}

SimProbeChannel::~SimProbeChannel() { path_.egress().unregister_flow(flow_); }

Duration SimProbeChannel::rtt() const {
  // Unloaded forward transit of a small packet plus the reverse path; the
  // session only uses this as a floor for the inter-stream idle.
  return path_.unloaded_transit_time(DataSize::bytes(200)) +
         path_.base_delay();
}

std::uint64_t SimProbeChannel::probe_drops() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < path_.hop_count(); ++i) {
    total += path_.link(i).drops_for_flow(flow_);
  }
  return total;
}

std::uint64_t SimProbeChannel::probe_dups() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < path_.hop_count(); ++i) {
    total += path_.link(i).dups_for_flow(flow_);
  }
  return total;
}

bool SimProbeChannel::path_impaired() const {
  for (std::size_t i = 0; i < path_.hop_count(); ++i) {
    if (path_.link(i).impaired()) return true;
  }
  return false;
}

bool SimProbeChannel::path_all_fluid() const {
  for (std::size_t i = 0; i < path_.hop_count(); ++i) {
    if (!path_.link(i).fluid_mode()) return false;
  }
  return path_.hop_count() > 0;
}

void SimProbeChannel::Receiver::handle(const sim::Packet& p) {
  if (p.stream_id != channel->current_stream_) return;  // stale straggler
  core::ProbeRecord rec;
  rec.seq = p.seq;
  rec.sent = p.sender_ts;
  rec.received = channel->sim_.now() + channel->receiver_offset_;
  channel->records_.push_back(rec);
}

void SimProbeChannel::run_stream_batched(const core::StreamSpec& spec) {
  // The batched probe-burst fast path (docs/ENGINE.md): every link is in
  // fluid mode, so the whole burst's transit is a closed-form pass over the
  // piecewise-constant workload of each hop — Link::fluid_transit performs
  // the same state updates in the same floating-point order as the
  // event-driven chain, so the delivery times (and therefore Eq. 22's OWD
  // slope and packet-on-packet FIFO spacing) come out byte-identical. Only
  // the final accounting points are scheduled: one bulk insert of K events
  // instead of K send timers plus K per-hop delivery closures.
  std::vector<sim::Simulator::BatchEvent> batch;
  batch.reserve(send_times_.size());
  for (std::size_t i = 0; i < send_times_.size(); ++i) {
    sim::Packet p;
    p.id = sim_.next_packet_id();
    p.flow = flow_;
    p.kind = sim::PacketKind::kProbe;
    p.size_bytes = spec.packet_size;
    p.transit = true;
    p.stream_id = spec.stream_id;
    p.seq = static_cast<std::uint32_t>(i);
    p.sender_ts = send_times_[i] + sender_offset_;
    p.entered = send_times_[i];
    TimePoint t = send_times_[i];
    bool dropped = false;
    for (std::size_t h = 0; h < path_.hop_count(); ++h) {
      const std::optional<TimePoint> delivery = path_.link(h).fluid_transit(p, t);
      if (!delivery.has_value()) {
        dropped = true;
        break;
      }
      t = *delivery;
    }
    if (dropped) {
      // The drop is already on the link counters; the placeholder event
      // makes the completion loop end at the same instant as the
      // event-driven path, where the drop is accounted during the arrival
      // event at the dropping hop (`t` still holds that arrival time).
      batch.push_back({t, sim::Simulator::Callback{[this] { --batch_pending_; }}});
    } else {
      core::ProbeRecord rec;
      rec.seq = p.seq;
      rec.sent = p.sender_ts;
      rec.received = t + receiver_offset_;
      batch.push_back({t, sim::Simulator::Callback{[this, rec] {
                         records_.push_back(rec);
                         --batch_pending_;
                       }}});
    }
  }
  // FIFO keeps survivor deliveries in send order, but a drop's accounting
  // point (arrival at the dropping hop) can precede an earlier packet's
  // egress delivery; restore the time order schedule_batch requires. Stable,
  // so equal-timestamp entries keep packet order.
  const auto by_time = [](const sim::Simulator::BatchEvent& a,
                          const sim::Simulator::BatchEvent& b) { return a.at < b.at; };
  if (!std::is_sorted(batch.begin(), batch.end(), by_time)) {
    std::stable_sort(batch.begin(), batch.end(), by_time);
  }
  batch_pending_ = batch.size();
  sim_.schedule_batch(std::move(batch));
  // Run up to (and including) the stream's last accounting point. Foreign
  // events before it are processed exactly as the event-driven completion
  // loop would have processed them.
  while (batch_pending_ > 0) {
    if (!sim_.run_next()) break;  // unreachable: pending events are queued
  }
}

void SimProbeChannel::send_next() {
  const core::StreamSpec& spec = *spec_;
  sim::Packet p;
  p.id = sim_.next_packet_id();
  p.flow = flow_;
  p.kind = sim::PacketKind::kProbe;
  p.size_bytes = spec.packet_size;
  p.transit = true;
  p.stream_id = spec.stream_id;
  p.seq = send_idx_;
  p.sender_ts = sim_.now() + sender_offset_;
  p.entered = sim_.now();
  path_.ingress().handle(p);
  ++send_idx_;
  if (send_idx_ < send_times_.size()) {
    send_timer_.schedule_at(send_times_[send_idx_], ticket_base_ + send_idx_);
  }
}

core::StreamOutcome SimProbeChannel::run_stream(const core::StreamSpec& spec) {
  // Validate before any state is touched: packet_count feeds a vector
  // resize and a uint32 FIFO-ticket reservation, so a negative or absurd
  // count must fail loudly instead of wrapping.
  if (spec.packet_count < 1 || spec.packet_count > 1'000'000) {
    throw std::invalid_argument{
        "StreamSpec.packet_count must be in [1, 1000000], got " +
        std::to_string(spec.packet_count)};
  }
  if (!spec.periodic() &&
      spec.gaps.size() + 1 != static_cast<std::size_t>(spec.packet_count)) {
    throw std::invalid_argument{
        "StreamSpec.gaps must carry packet_count - 1 entries"};
  }
  current_stream_ = spec.stream_id;
  records_.clear();
  records_.reserve(static_cast<std::size_t>(spec.packet_count));

  // Impairment bookkeeping engages only on an impaired path; pristine paths
  // take the exact pre-impairment accounting (bit-identical runs).
  const bool impaired = path_impaired();
  const std::uint64_t drops_before = probe_drops();
  const std::uint64_t dups_before = impaired ? probe_dups() : 0;
  const TimePoint start = sim_.now();

  // Fix the K departure times upfront — periodic multiples of T, or the
  // spec's explicit gap schedule (chirps). A send-gap injection (context
  // switch) delays a packet's actual departure; subsequent packets keep
  // their nominal schedule unless they too are delayed, which matches a
  // sender that falls behind and immediately catches up.
  send_times_.resize(static_cast<std::size_t>(spec.packet_count));
  Duration accumulated_gap = Duration::zero();
  Duration nominal_offset = Duration::zero();
  for (int i = 0; i < spec.packet_count; ++i) {
    if (gap_injector_) accumulated_gap += gap_injector_(static_cast<std::uint32_t>(i));
    if (i > 0) {
      nominal_offset += spec.periodic()
                            ? spec.period
                            : spec.gaps[static_cast<std::size_t>(i - 1)];
    }
    send_times_[static_cast<std::size_t>(i)] = start + nominal_offset + accumulated_gap;
  }
  if (burst_batching() && !impaired && path_all_fluid()) {
    run_stream_batched(spec);
  } else {
    spec_ = &spec;
    send_idx_ = 0;
    ticket_base_ =
        sim_.reserve_fifo_tickets(static_cast<std::uint32_t>(spec.packet_count));
    if (!send_times_.empty()) send_timer_.schedule_at(send_times_[0], ticket_base_);

    // Run until every probe copy is accounted for: received or dropped. On
    // an impaired path the accounting includes link-made duplicates — every
    // copy created (original K plus dups so far) ends as either a record or
    // a per-flow drop, so the loop still terminates exactly. Cross-traffic
    // sources always have future events pending, so the guard against an
    // empty queue is purely defensive.
    const auto target = static_cast<std::uint64_t>(spec.packet_count);
    while (static_cast<std::uint64_t>(records_.size()) +
               (probe_drops() - drops_before) <
           target + (impaired ? probe_dups() - dups_before : 0)) {
      if (!sim_.run_next()) break;
    }
    send_timer_.cancel();  // defensive: only armed if the loop exited early
    spec_ = nullptr;
  }

  core::StreamOutcome outcome;
  outcome.sent_count = spec.packet_count;
  outcome.records = std::move(records_);
  records_ = {};
  if (impaired) {
    // Present what the real receiver logic reports: per-seq first arrival,
    // in seq order (duplicates discarded, reordering resolved). Pristine
    // paths deliver in seq order already, so this block never runs for
    // them and their outcomes stay bit-identical.
    std::stable_sort(outcome.records.begin(), outcome.records.end(),
                     [](const core::ProbeRecord& a, const core::ProbeRecord& b) {
                       return a.seq != b.seq ? a.seq < b.seq
                                             : a.received < b.received;
                     });
    outcome.records.erase(
        std::unique(outcome.records.begin(), outcome.records.end(),
                    [](const core::ProbeRecord& a, const core::ProbeRecord& b) {
                      return a.seq == b.seq;
                    }),
        outcome.records.end());
  }
  return outcome;
}

core::BulkTransferOutcome SimProbeChannel::run_bulk_transfer(
    const core::BulkTransferSpec& spec) {
  return tcp::run_bulk_transfer(sim_, path_, spec);
}

}  // namespace pathload::scenario
