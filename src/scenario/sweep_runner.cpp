#include "scenario/sweep_runner.hpp"

#include <cstdlib>
#include <exception>
#include <mutex>

namespace pathload::scenario {

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PATHLOAD_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

SweepRunner::SweepRunner(int threads) : threads_{resolve_threads(threads)} {}

void SweepRunner::run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const auto workers =
      static_cast<std::size_t>(threads_) < n ? static_cast<std::size_t>(threads_) : n;
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread exhaustion: abort the sweep (failed=true makes every worker,
    // including this thread, stop at its next index fetch), join whatever
    // spawned, and surface the spawn failure -- destroying a joinable
    // std::thread would terminate the process.
    failed.store(true, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock{error_mutex};
      if (!first_error) first_error = std::current_exception();
    }
  }
  worker();  // the calling thread pulls its weight too
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<core::PathloadResult> sweep_pathload(const std::vector<SweepPoint>& points,
                                                 SweepRunner& runner) {
  return runner.map(points.size(), [&](std::size_t i) {
    return run_pathload_once(points[i].path, points[i].tool, points[i].seed);
  });
}

RepeatedRuns sweep_pathload_repeated(const PaperPathConfig& path_cfg,
                                     const core::PathloadConfig& tool_cfg, int runs,
                                     std::uint64_t seed0, SweepRunner& runner) {
  RepeatedRuns out;
  out.results = runner.map(static_cast<std::size_t>(runs), [&](std::size_t i) {
    return run_pathload_once(path_cfg, tool_cfg, seed0 + i);
  });
  return out;
}

RepeatedRuns sweep_scenario_repeated(const ScenarioSpec& spec,
                                     const core::PathloadConfig& tool_cfg, int runs,
                                     std::uint64_t seed0, SweepRunner& runner) {
  RepeatedRuns out;
  out.results = runner.map(static_cast<std::size_t>(runs), [&](std::size_t i) {
    return run_scenario_once(spec, tool_cfg, seed0 + i);
  });
  return out;
}

}  // namespace pathload::scenario
