#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "scenario/experiment.hpp"
#include "scenario/paper_path.hpp"

namespace pathload::scenario {

/// Shards independent experiment points across a pool of threads.
///
/// Every figure in the paper is a sweep over (load, config) operating
/// points, and every point is a self-contained simulation (its Testbed owns
/// its Simulator and RNG), so points parallelize embarrassingly. The
/// runner guarantees *thread-count-independent results*:
///
///  - the caller enumerates points (and derives their seeds) sequentially
///    before anything runs, so no RNG is shared across workers;
///  - results land in their point's index slot, so output order never
///    depends on completion order.
///
/// A sweep over the same points with the same seeds therefore produces
/// byte-identical output whether it runs on 1 thread or 64.
class SweepRunner {
 public:
  /// `threads` <= 0 selects PATHLOAD_THREADS from the environment, or the
  /// hardware concurrency if unset.
  explicit SweepRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Run `fn(i)` for every i in [0, n) and return the results in index
  /// order. `fn` must not touch shared mutable state; exceptions escape on
  /// the calling thread after all workers join.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    static_assert(!std::is_same_v<R, bool>,
                  "map cannot return bool: vector<bool> packs bits, so "
                  "concurrent writes to distinct indices race; return int "
                  "or a struct instead");
    std::vector<R> results(n);
    run_indexed(n, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Untyped variant: run `fn(i)` for every i in [0, n), work-stealing over
  /// an atomic index counter.
  void run_indexed(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  int threads_;
};

/// One operating point of a sweep: a testbed configuration, the tool
/// configuration to run on it, and the seed that makes it reproducible.
struct SweepPoint {
  PaperPathConfig path;
  core::PathloadConfig tool;
  std::uint64_t seed{1};
};

/// Run one pathload measurement per point, in parallel, results in point
/// order. Each point gets a fresh warmed-up testbed seeded from its own
/// `seed` (see run_pathload_once), so the output is independent of the
/// thread count.
std::vector<core::PathloadResult> sweep_pathload(const std::vector<SweepPoint>& points,
                                                 SweepRunner& runner);

/// `runs` repetitions of a single operating point (seeds seed0, seed0+1,
/// ...), sharded across the runner's threads. Drop-in parallel equivalent
/// of run_pathload_repeated.
RepeatedRuns sweep_pathload_repeated(const PaperPathConfig& path_cfg,
                                     const core::PathloadConfig& tool_cfg, int runs,
                                     std::uint64_t seed0, SweepRunner& runner);

/// Registry-based analogue: `runs` repetitions of one scenario spec (seeds
/// seed0, seed0+1, ...), sharded across the runner's threads. Results are
/// identical to run_scenario_repeated regardless of thread count.
RepeatedRuns sweep_scenario_repeated(const ScenarioSpec& spec,
                                     const core::PathloadConfig& tool_cfg, int runs,
                                     std::uint64_t seed0, SweepRunner& runner);

}  // namespace pathload::scenario
