#include "scenario/fuzz.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <span>
#include <string>

#include "core/estimator.hpp"
#include "scenario/experiment.hpp"
#include "scenario/service_curve.hpp"
#include "scenario/sim_channel.hpp"
#include "sim/monitor.hpp"
#include "util/rng.hpp"

namespace pathload::scenario {
namespace {

// ---------------------------------------------------------------------------
// Generator menus. Every value is an exact short decimal, so a generated
// spec survives to_text's %.12g rendering bit-for-bit — the roundtrip
// invariant is then a real check of the parser, not of float formatting.

constexpr double kCapacitiesMbps[] = {5, 8, 10, 12, 16, 20, 30, 45};
constexpr double kDelaysMs[] = {1, 2, 5, 10, 20};
constexpr double kBuffersMs[] = {300, 500, 800};
constexpr double kUtils[] = {0.1, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8};
constexpr int kSources[] = {1, 2, 4, 10};
constexpr double kParetoAlphas[] = {1.5, 1.9, 2.5};
constexpr double kPeakBoosts[] = {0.1, 0.2, 0.3};
constexpr double kBurstKb[] = {10, 30, 60};
constexpr double kBurstAlphas[] = {1.5, 1.9};
constexpr double kWarmupS[] = {0.5, 1};
constexpr int kFixedMixBytes[] = {500, 1000, 1500};
constexpr double kLossRates[] = {0.005, 0.01, 0.02, 0.03};
constexpr double kFlowStarts[] = {0, 0.5, 1};
constexpr double kRwnds[] = {8, 16, 32};

template <typename T, std::size_t N>
T pick(Rng& rng, const T (&menu)[N]) {
  return menu[rng.uniform_index(N)];
}

bool chance(Rng& rng, double p) { return rng.uniform() < p; }

TrafficModel pick_model(Rng& rng) {
  // none/constant keep easy cases in the corpus; pareto gets the largest
  // share (the paper's own cross-traffic model, and the burstiest of the
  // renewal family).
  constexpr double w[] = {0.15, 0.20, 0.25, 0.15, 0.15, 0.10};
  static_assert(sizeof w / sizeof w[0] == 6);
  switch (rng.pick_weighted(std::span<const double>{w, 6})) {
    case 0: return TrafficModel::kNone;
    case 1: return TrafficModel::kPoisson;
    case 2: return TrafficModel::kPareto;
    case 3: return TrafficModel::kConstant;
    case 4: return TrafficModel::kOnOff;
    default: return TrafficModel::kRamp;
  }
}

Rate narrow_capacity(const ScenarioSpec& spec) {
  Rate narrow = spec.hops.front().capacity;
  for (const HopDecl& h : spec.hops) narrow = std::min(narrow, h.capacity);
  return narrow;
}

std::string fmt_mbps(Rate r) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", r.mbits_per_sec());
  return buf;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed, const FuzzOptions& opt) {
  Rng rng{seed};
  ScenarioSpec spec;
  spec.name = "fuzz-" + std::to_string(seed);
  spec.description = "seeded fuzz scenario (scenario_fuzz)";
  spec.seed = seed;
  spec.warmup = Duration::seconds(pick(rng, kWarmupS));

  const int hops = 1 + static_cast<int>(rng.uniform_index(
                           static_cast<std::uint64_t>(std::max(opt.max_hops, 1))));
  spec.hops.reserve(static_cast<std::size_t>(hops));
  for (int h = 0; h < hops; ++h) {
    HopDecl hop;
    hop.capacity = Rate::mbps(pick(rng, kCapacitiesMbps));
    hop.delay = Duration::milliseconds(pick(rng, kDelaysMs));
    hop.buffer_drain = Duration::milliseconds(pick(rng, kBuffersMs));

    TrafficSpec& t = hop.traffic;
    t.model = pick_model(rng);
    if (t.model != TrafficModel::kNone) {
      t.utilization = pick(rng, kUtils);
      t.sources = pick(rng, kSources);
      if (chance(rng, 0.3)) {
        t.mix = sim::PacketSizeMix::fixed(pick(rng, kFixedMixBytes));
      }
    }
    switch (t.model) {
      case TrafficModel::kPareto:
        t.pareto_alpha = pick(rng, kParetoAlphas);
        break;
      case TrafficModel::kOnOff:
        t.peak_utilization = std::min(0.95, t.utilization + pick(rng, kPeakBoosts));
        t.mean_burst_kb = pick(rng, kBurstKb);
        t.burst_alpha = pick(rng, kBurstAlphas);
        break;
      case TrafficModel::kRamp:
        t.end_utilization = pick(rng, kUtils);
        t.ramp_start_s = chance(rng, 0.5) ? 0.0 : 1.0;
        t.ramp_end_s = t.ramp_start_s + (chance(rng, 0.5) ? 0.0 : 2.0);
        if (chance(rng, 0.3)) {
          t.ramp_back_start_s = t.ramp_end_s + 1.0;
          t.ramp_back_end_s = t.ramp_back_start_s + 1.0;
        }
        break;
      default:
        break;
    }
    spec.hops.push_back(hop);
  }

  if (opt.allow_flows && chance(rng, 0.25)) {
    FlowSpec flow;
    flow.first_hop = rng.uniform_index(static_cast<std::uint64_t>(hops));
    flow.last_hop = flow.first_hop +
                    rng.uniform_index(static_cast<std::uint64_t>(hops) - flow.first_hop);
    if (chance(rng, 0.6)) flow.rwnd = pick(rng, kRwnds);
    flow.count = chance(rng, 0.3) ? 2 : 1;
    flow.start_s = pick(rng, kFlowStarts);
    if (chance(rng, 0.25)) {
      flow.on_s = 2.0;
      flow.off_s = 1.0;
    }
    spec.flows.push_back(flow);
  }

  if (opt.allow_impairments && chance(rng, 0.25)) {
    ImpairSpec imp;
    imp.hop = rng.uniform_index(static_cast<std::uint64_t>(hops));
    imp.loss = pick(rng, kLossRates);
    if (chance(rng, 0.3)) imp.dup = 0.01;
    if (chance(rng, 0.3)) imp.reorder_ms = 1.0;
    if (chance(rng, 0.5)) imp.seed = rng.uniform_index(100000);
    spec.impairments.push_back(imp);
  }

  // Drawn last so corpora generated with the flag off are byte-identical
  // to the pre-v2 generator (no draw is consumed).
  if (opt.allow_engine_v2 && chance(rng, 0.5)) {
    spec.engine = EngineVersion::kV2;

    // v2-only extension of the flow grammar, drawn strictly after every
    // pre-existing draw (and only once v2 itself is drawn) so flag-off
    // corpora — and the v1 half of flag-on corpora — consume the exact
    // historical draw sequence. Exercises the fluid TCP backend and its
    // `mode=packet` escape hatch against every invariant.
    if (opt.allow_flows && chance(rng, 0.35)) {
      FlowSpec flow;
      flow.first_hop = rng.uniform_index(static_cast<std::uint64_t>(hops));
      flow.last_hop =
          flow.first_hop +
          rng.uniform_index(static_cast<std::uint64_t>(hops) - flow.first_hop);
      if (chance(rng, 0.6)) flow.rwnd = pick(rng, kRwnds);
      flow.count = chance(rng, 0.3) ? 2 : 1;
      flow.start_s = pick(rng, kFlowStarts);
      if (chance(rng, 0.25)) {
        flow.on_s = 2.0;
        flow.off_s = 1.0;
      }
      // Occasionally pin the packet backend, so fuzz coverage keeps both
      // responsive-flow implementations honest under v2.
      if (chance(rng, 0.3)) flow.mode = FlowSpec::Mode::kPacket;
      spec.flows.push_back(flow);
    }

    // cc= draws, appended after the historical v2 flow draw (same
    // byte-identity discipline: corpora generated before the key existed
    // consumed exactly the sequence above). A third of flow-bearing specs
    // swap the last flow onto a non-default policy, covering every
    // CongestionOps implementation under both backends.
    if (opt.allow_flows && !spec.flows.empty() && chance(rng, 0.3)) {
      constexpr const char* kCcs[] = {"reno-rfc", "cubic", "bbr"};
      spec.flows.back().cc = kCcs[rng.uniform_index(3)];
    }
  }

  spec.validate();
  return spec;
}

bool spec_is_calm(const ScenarioSpec& spec) {
  if (spec.has_flows() || spec.impaired() || spec.nonstationary()) return false;
  for (const HopDecl& h : spec.hops) {
    // On/off bursts swing the short-window truth itself; CBR violates the
    // statistically-multiplexed cross-traffic assumption the trend and
    // gap models rest on (probe/CBR phase aliasing makes them
    // overestimate by design — the paper's simulations use Poisson and
    // Pareto, never CBR).
    if (h.traffic.model == TrafficModel::kOnOff) return false;
    if (h.traffic.model == TrafficModel::kConstant &&
        h.traffic.utilization > 0.0) {
      return false;
    }
  }
  const double tight_util = spec.hops[spec.tight_hop()].traffic.utilization;
  return tight_util <= 0.6;
}

std::vector<std::string> default_fuzz_estimators(const core::EstimatorRegistry& reg,
                                                 std::uint64_t seed) {
  std::vector<std::string> others;
  for (const auto& e : reg.entries()) {
    if (e.name != "pathload") others.push_back(e.name);
  }
  std::vector<std::string> out = {"pathload"};
  if (!others.empty()) {
    const std::size_t n = others.size();
    out.push_back(others[static_cast<std::size_t>(seed) % n]);
    out.push_back(others[static_cast<std::size_t>(seed / n) % n]);
    if (out[1] == out[2]) out.pop_back();
  }
  return out;
}

std::uint64_t fuzz_case_seed(std::uint64_t base, int index) {
  // splitmix64 over base + index: adjacent batch indices give decorrelated
  // generator draws while staying pure functions of (base, index).
  std::uint64_t z = base + static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

struct MonitorBracket {
  Rate low;
  Rate high;
};

/// Sample the tight link's utilization monitor over an unperturbed span —
/// before any probing, so the probes' own load does not pollute the truth
/// they are judged against (the pattern of
/// tests/scenario/new_estimator_matrix_test.cpp).
MonitorBracket measure_bracket(const ScenarioSpec& spec, const FuzzOptions& opt) {
  ScenarioInstance inst{spec};
  inst.start();
  sim::UtilizationMonitor monitor{inst.simulator(), inst.tight_link(),
                                  opt.monitor_window};
  monitor.start();
  inst.simulator().run_for(opt.monitor_span);
  monitor.stop();
  MonitorBracket b{Rate::zero(), Rate::zero()};
  if (monitor.readings().empty()) return b;
  b.low = b.high = monitor.readings().front().avail_bw;
  for (const auto& w : monitor.readings()) {
    b.low = std::min(b.low, w.avail_bw);
    b.high = std::max(b.high, w.avail_bw);
  }
  return b;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

FuzzResult fuzz_check(const core::EstimatorRegistry& reg, const ScenarioSpec& spec,
                      std::uint64_t seed, const FuzzOptions& opt,
                      const std::vector<std::string>& estimators) {
  FuzzResult out;
  out.seed = seed;
  out.spec = spec;
  out.spec_text = spec.to_text();
  out.calm = spec_is_calm(spec);

  auto violate = [&](std::string invariant, std::string estimator,
                     std::string detail) {
    out.violations.push_back(
        FuzzViolation{std::move(invariant), std::move(estimator), std::move(detail)});
  };

  const Rate narrow = narrow_capacity(spec);
  const ServiceCurveOracle oracle = service_curve_oracle(spec);

  // oracle-agreement: on calm specs the min-plus leftover rate must equal
  // the configured avail-bw (same min over hops of C*(1-u), reached from
  // the network-calculus side).
  if (out.calm) {
    const double a = oracle.avail_bw.bits_per_sec();
    const double b = spec.avail_bw().bits_per_sec();
    if (std::abs(a - b) > 1e-6 * std::max({std::abs(a), std::abs(b), 1.0})) {
      violate("oracle-agreement", "",
              "service-curve rate " + std::to_string(a * 1e-6) +
                  " Mb/s vs configured avail-bw " + std::to_string(b * 1e-6) +
                  " Mb/s");
    }
  }

  MonitorBracket bracket{Rate::zero(), Rate::zero()};
  if (out.calm) bracket = measure_bracket(spec, opt);

  // Bracket slack: the monitor's own resolution (the 1 Mb/s the golden
  // tests grant), the oracle's burst tolerance for one window, or 10% of
  // the narrow capacity — whichever is largest.
  const Rate slack = std::max({Rate::mbps(1.5), oracle.tolerance(opt.monitor_window),
                               narrow * 0.10});

  bool any_dup = false;
  double max_loss = 0.0;
  for (const ImpairSpec& imp : spec.impairments) {
    any_dup = any_dup || imp.dup > 0.0;
    max_loss = std::max(max_loss, imp.loss);
  }
  std::int64_t probe_packets = 0;
  std::int64_t probe_lost = 0;

  for (const std::string& name : estimators) {
    const core::EstimatorRegistry::Entry& entry = reg.at(name);
    std::string overrides;
    if (entry.needs_capacity_hint) {
      overrides += "capacity_mbps = " + fmt_mbps(narrow) + "\n";
    }
    if (opt.deadline_s > 0.0) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "deadline_s = %.12g\n", opt.deadline_s);
      overrides += buf;
    }

    core::EstimateReport r;
    try {
      const auto est = reg.make(name, overrides);
      ScenarioSpec run_spec = spec;
      ScenarioInstance inst{std::move(run_spec)};
      inst.start();
      SimProbeChannel channel{inst.simulator(), inst.path()};
      Rng rng{spec.seed};
      r = core::run_guarded(*est, channel, rng);
    } catch (const core::EstimatorError& e) {
      violate("no-crash", name, std::string{"EstimatorError: "} + e.what());
      continue;
    } catch (const SpecError& e) {
      violate("no-crash", name, std::string{"SpecError during run: "} + e.what());
      continue;
    }

    // no-crash: run_guarded converts stray exceptions and channel faults
    // into failed reports with these note prefixes; a valid spec must not
    // produce either.
    if (r.outcome == core::EstimateReport::Outcome::kFailed &&
        (starts_with(r.outcome_note, "error:") ||
         starts_with(r.outcome_note, "channel fault:"))) {
      violate("no-crash", name, "failed report: " + r.outcome_note);
      continue;
    }

    if (r.valid) {
      const double lo = r.low.bits_per_sec();
      const double hi = r.high.bits_per_sec();
      if (!std::isfinite(lo) || !std::isfinite(hi) || lo < 0.0 || lo > hi) {
        violate("finite-estimate", name,
                "low=" + std::to_string(lo * 1e-6) +
                    " Mb/s high=" + std::to_string(hi * 1e-6) + " Mb/s");
      } else if (Rate::bps(hi) > narrow * 1.5 + Rate::mbps(1.0)) {
        violate("physical-bound", name,
                "high=" + std::to_string(hi * 1e-6) + " Mb/s exceeds 1.5x narrow capacity " +
                    std::to_string(narrow.mbits_per_sec()) + " Mb/s");
      }
    }

    // Pathload's SLoPS is end-to-end; spruce/igi are single-bottleneck gap
    // models, so their bracket check additionally requires that only one
    // hop carries load (a second congested queue breaks their model, and
    // the resulting overestimate is the tool's documented limitation, not
    // an implementation bug).
    bool single_loaded_hop = true;
    {
      int loaded = 0;
      for (const HopDecl& h : spec.hops) {
        if (h.traffic.model != TrafficModel::kNone && h.traffic.utilization > 0.0) {
          ++loaded;
        }
      }
      single_loaded_hop = loaded <= 1;
    }
    const bool bracketing_tool =
        name == "pathload" ||
        ((name == "spruce" || name == "igi") && single_loaded_hop);
    if (out.calm && bracketing_tool && r.valid &&
        r.outcome == core::EstimateReport::Outcome::kOk &&
        r.quantity == core::EstimateReport::Quantity::kAvailBw) {
      // The truth band: the monitor bracket joined with the model oracle
      // (either may be slightly generous), widened by the slack.
      const Rate band_lo = std::min(bracket.low, oracle.avail_bw) - slack;
      const Rate band_hi = std::max(bracket.high, oracle.avail_bw) + slack;
      if (name == "pathload") {
        // Pathload reports a range, and the paper's claim is that the
        // *range* brackets the truth (the center may sit off-middle): the
        // [low, high] range must intersect the truth band.
        if (r.high < band_lo || r.low > band_hi) {
          violate("monitor-bracket", name,
                  "range [" + std::to_string(r.low.mbits_per_sec()) + ", " +
                      std::to_string(r.high.mbits_per_sec()) +
                      "] Mb/s misses the truth band [" +
                      std::to_string(band_lo.mbits_per_sec()) + ", " +
                      std::to_string(band_hi.mbits_per_sec()) +
                      "] Mb/s (monitor [" + std::to_string(bracket.low.mbits_per_sec()) +
                      ", " + std::to_string(bracket.high.mbits_per_sec()) +
                      "], oracle " + std::to_string(oracle.avail_bw.mbits_per_sec()) + ")");
        }
      } else {
        // Gap-model point tools carry a documented load-dependent bias
        // (their own papers quote errors of 20-40% in unfavorable
        // regimes), so the envelope the fuzzer can hold them to is
        // multiplicative: within [0.5x, 1.5x] of the truth band. A tool
        // reporting zero, or doubling the capacity, still fails.
        const Rate center = r.center();
        const Rate lo = std::min(bracket.low, oracle.avail_bw) * 0.5 - slack;
        const Rate hi = std::max(bracket.high, oracle.avail_bw) * 1.5 + slack;
        if (center < lo || center > hi) {
          violate("monitor-bracket", name,
                  "point " + std::to_string(center.mbits_per_sec()) +
                      " Mb/s outside 0.5-1.5x of the truth band [" +
                      std::to_string(band_lo.mbits_per_sec()) + ", " +
                      std::to_string(band_hi.mbits_per_sec()) +
                      "] Mb/s (monitor [" + std::to_string(bracket.low.mbits_per_sec()) +
                      ", " + std::to_string(bracket.high.mbits_per_sec()) +
                      "], oracle " + std::to_string(oracle.avail_bw.mbits_per_sec()) + ")");
        }
      }
    }

    if (!entry.needs_bulk_tcp) {
      probe_packets += r.packets_sent;
      probe_lost += r.packets_lost;
      // pristine-outcome: on a pristine calm path a probe tool may lose a
      // few probes to queues its own load fills (cprobe's flooding trains
      // do, by design), but losing over 20% signals phantom impairments
      // or broken loss accounting.
      if (out.calm && r.loss_fraction() > 0.20) {
        violate("pristine-outcome", name,
                "lost " + std::to_string(r.loss_fraction() * 100.0) +
                    "% of probes on a pristine calm path (" + r.outcome_note + ")");
      }
    }
  }

  // impair-consistency: a >=2% injected loss rate with a large probe count
  // must actually lose packets (P[no loss] < 1e-4 at 500 probes). Specs
  // with duplication are excluded — duplicate receiver records offset the
  // sent-minus-received accounting.
  if (max_loss >= 0.02 && !any_dup && probe_packets >= 500 && probe_lost <= 0) {
    violate("impair-consistency", "",
            "loss=" + std::to_string(max_loss) + " injected but " +
                std::to_string(probe_packets) + " probes all arrived");
  }

  return out;
}

FuzzResult fuzz_one(const core::EstimatorRegistry& reg, std::uint64_t seed,
                    const FuzzOptions& opt,
                    const std::vector<std::string>& estimators) {
  const ScenarioSpec spec = generate_scenario(seed, opt);
  const std::string text = spec.to_text();
  ScenarioSpec parsed;
  try {
    parsed = ScenarioSpec::parse(text);
  } catch (const SpecError& e) {
    FuzzResult out;
    out.seed = seed;
    out.spec = spec;
    out.spec_text = text;
    out.violations.push_back(
        FuzzViolation{"roundtrip", "", std::string{"generated spec does not re-parse: "} + e.what()});
    return out;
  }
  const std::string second = parsed.to_text();
  if (second != text) {
    FuzzResult out;
    out.seed = seed;
    out.spec = spec;
    out.spec_text = text;
    out.violations.push_back(FuzzViolation{
        "roundtrip", "", "to_text -> parse -> to_text is not byte-identical"});
    return out;
  }
  // Run the parsed-back spec: what runs is exactly what a --replay from
  // the emitted file would run.
  return fuzz_check(reg, parsed, seed, opt, estimators);
}

}  // namespace pathload::scenario
