#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/channel.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace pathload::scenario {

/// ProbeChannel backend that sends periodic streams through the simulator.
///
/// The sender and receiver are modelled as hosts with *independent clocks*
/// (configurable constant offsets): probe packets carry sender-clock
/// timestamps, the receiver stamps arrivals with its own clock, and the
/// SLoPS analysis must work on the resulting relative OWDs alone —
/// faithfully reproducing the real tool's "no clock synchronization
/// required" property (Section IV).
class SimProbeChannel final : public core::ProbeChannel, public core::BulkChannel {
 public:
  SimProbeChannel(sim::Simulator& sim, sim::Path& path);
  ~SimProbeChannel() override;

  core::StreamOutcome run_stream(const core::StreamSpec& spec) override;
  void idle(Duration d) override { sim_.run_for(d); }
  TimePoint now() override { return sim_.now(); }
  Duration rtt() const override;

  /// Bulk-TCP capability: a simulated path can always host a greedy Reno
  /// connection (tcp::run_bulk_transfer), so BTC runs over this channel.
  core::BulkChannel* bulk() override { return this; }
  core::BulkTransferOutcome run_bulk_transfer(
      const core::BulkTransferSpec& spec) override;

  /// Clock offsets of the two hosts relative to the simulation clock.
  void set_sender_clock_offset(Duration d) { sender_offset_ = d; }
  void set_receiver_clock_offset(Duration d) { receiver_offset_ = d; }

  /// Test hook: extra transmission delay injected before packet `seq` of
  /// every stream (models a sender-side context switch; the anomaly shifts
  /// both the actual send time and the sender timestamp).
  using SendGapInjector = std::function<Duration(std::uint32_t seq)>;
  void set_send_gap_injector(SendGapInjector f) { gap_injector_ = std::move(f); }

  std::uint32_t flow() const { return flow_; }

  /// Process-wide toggle for the batched probe-burst fast path (engine v2,
  /// docs/ENGINE.md). On a fully fluid, unimpaired path run_stream computes
  /// the whole burst's transit closed-form and bulk-inserts one delivery
  /// event per packet (Simulator::schedule_batch) instead of simulating
  /// 2K scheduled events. Default on; switching it off forces the
  /// event-driven per-packet path (A/B benches and the batched-vs-unbatched
  /// identity tests). Flip it only between streams.
  static void set_burst_batching(bool on);
  static bool burst_batching();

 private:
  class Receiver final : public sim::PacketHandler {
   public:
    void handle(const sim::Packet& p) override;
    SimProbeChannel* channel{nullptr};
  };

  std::uint64_t probe_drops() const;
  std::uint64_t probe_dups() const;
  bool path_impaired() const;
  bool path_all_fluid() const;
  void run_stream_batched(const core::StreamSpec& spec);
  void send_next();

  sim::Simulator& sim_;
  sim::Path& path_;
  std::uint32_t flow_;
  Receiver receiver_;

  Duration sender_offset_{Duration::zero()};
  Duration receiver_offset_{Duration::zero()};
  SendGapInjector gap_injector_;

  // State of the stream currently in flight. The K transmissions are one
  // reusable timer re-armed after each send; the departure times and FIFO
  // tickets are fixed upfront so equal-timestamp ordering is identical to
  // scheduling all K sends at stream start.
  std::uint32_t current_stream_{0};
  const core::StreamSpec* spec_{nullptr};
  std::vector<TimePoint> send_times_;
  std::uint32_t send_idx_{0};
  std::uint64_t ticket_base_{0};
  sim::Simulator::TimerHandle send_timer_;
  std::vector<core::ProbeRecord> records_;
  // Batched mode: deliveries (and drop accounting points) still pending in
  // the event queue for the stream in flight; the completion loop runs
  // until it hits zero, which lands the clock on the same instant as the
  // event-driven path.
  std::uint64_t batch_pending_{0};
};

}  // namespace pathload::scenario
