// Min-plus service-curve model of a scenario path.
//
// The system-theoretic view of bandwidth estimation (see PAPERS.md, "A
// System Theoretic Approach to Bandwidth Estimation") models each hop as a
// rate-latency service curve beta(t) = R * max(0, t - T): after a worst-case
// latency T, the hop guarantees service at rate R. For a FIFO hop of
// capacity C carrying open-loop cross traffic of long-run utilization u,
// the leftover (residual) curve available to probe traffic has
// R = C * (1 - u), with T collecting propagation delay plus the backlog a
// burst of cross traffic can park in front of a probe. A path is the
// min-plus convolution of its hops — for rate-latency curves simply
// (min of rates, sum of latencies) — so the end-to-end long-run rate is the
// min over hops of C * (1 - u): exactly ScenarioSpec::avail_bw(), but
// arrived at from the network-calculus side.
//
// The fuzzer (scenario/fuzz.hpp) uses this as its model-predicted oracle:
// the curve's rate scores every generated scenario's estimates, and the
// burst allowance bounds how far short-window readings may legitimately
// swing from the long-run value.

#pragma once

#include "scenario/spec.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::scenario {

/// A rate-latency service curve beta(t) = rate * max(0, t - latency) — the
/// min-plus building block. The zero-initialized curve (rate 0) is the
/// curve of a fully saturated hop.
struct ServiceCurve {
  Rate rate{};
  Duration latency{};

  /// Min-plus convolution. For rate-latency curves the closed form is
  /// (min of rates, sum of latencies): the path is as slow as its slowest
  /// hop and as laggy as all its hops together.
  ServiceCurve convolve(const ServiceCurve& other) const {
    return ServiceCurve{rate < other.rate ? rate : other.rate,
                        latency + other.latency};
  }

  /// Service guaranteed over a window: beta(window), as data.
  DataSize guaranteed(Duration window) const {
    if (window <= latency) return DataSize{};
    return rate.bytes_in(window - latency);
  }
};

/// Leftover rate-latency curve of one hop under its declared open-loop
/// cross traffic. Conservative for non-stationary (ramp) hops: uses the
/// worse of the pre- and post-ramp utilizations, so the curve is a valid
/// long-run floor across the whole run.
ServiceCurve hop_leftover_curve(const HopDecl& hop);

/// The model-predicted view of a whole scenario.
struct ServiceCurveOracle {
  /// End-to-end leftover curve (min-plus convolution over hops).
  ServiceCurve curve;
  /// Long-run model-predicted avail-bw == curve.rate. For stationary specs
  /// this equals ScenarioSpec::avail_bw(); for ramp specs it is
  /// min(avail_bw(), final_avail_bw()).
  Rate avail_bw;
  /// Total cross-traffic burst allowance along the path: how much data the
  /// declared sources can dump ahead of a probe beyond their long-run
  /// rates. Short-window readings may swing from avail_bw by roughly
  /// burst_allowance() spread over the window.
  DataSize burst;

  /// Rate slack a measurement window of `window` must be granted around
  /// avail_bw: the burst allowance spread over the window.
  Rate tolerance(Duration window) const {
    return Rate::bps(burst.bits() / window.secs());
  }
};

/// Reduce a validated spec to its oracle. Flows (responsive TCP) are not
/// part of the open-loop model; callers that need a hard truth should only
/// trust the oracle on flow-free specs (the fuzzer's calm predicate).
ServiceCurveOracle service_curve_oracle(const ScenarioSpec& spec);

}  // namespace pathload::scenario
