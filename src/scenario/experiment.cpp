#include "scenario/experiment.hpp"

#include "scenario/sim_channel.hpp"
#include "util/stats.hpp"

namespace pathload::scenario {

Rate RepeatedRuns::mean_low() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.low.bits_per_sec());
  return Rate::bps(s.mean());
}

Rate RepeatedRuns::mean_high() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.high.bits_per_sec());
  return Rate::bps(s.mean());
}

double RepeatedRuns::cv_low() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.low.bits_per_sec());
  return s.cv();
}

double RepeatedRuns::cv_high() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.high.bits_per_sec());
  return s.cv();
}

std::vector<double> RepeatedRuns::relative_variations() const {
  std::vector<double> rhos;
  rhos.reserve(results.size());
  for (const auto& r : results) rhos.push_back(r.range.relative_variation());
  return rhos;
}

double RepeatedRuns::coverage(Rate truth) const {
  if (results.empty()) return 0.0;
  int hits = 0;
  for (const auto& r : results) {
    if (r.range.contains(truth)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(results.size());
}

Duration RepeatedRuns::mean_elapsed() const {
  if (results.empty()) return Duration::zero();
  Duration total = Duration::zero();
  for (const auto& r : results) total += r.elapsed;
  return total / static_cast<double>(results.size());
}

double RepeatedRuns::mean_fleets() const {
  if (results.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : results) total += r.fleets;
  return total / static_cast<double>(results.size());
}

core::PathloadResult run_pathload_once(const PaperPathConfig& path_cfg,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed) {
  PaperPathConfig cfg = path_cfg;
  cfg.seed = seed;
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadSession session{channel, tool_cfg};
  return session.run();
}

RepeatedRuns run_pathload_repeated(const PaperPathConfig& path_cfg,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0) {
  RepeatedRuns out;
  out.results.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    out.results.push_back(run_pathload_once(path_cfg, tool_cfg, seed0 + i));
  }
  return out;
}

core::PathloadResult run_scenario_once(const ScenarioSpec& spec,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed) {
  ScenarioSpec seeded = spec;
  seeded.seed = seed;
  ScenarioInstance inst{std::move(seeded)};
  inst.start();
  SimProbeChannel channel{inst.simulator(), inst.path()};
  core::PathloadSession session{channel, tool_cfg};
  return session.run();
}

RepeatedRuns run_scenario_repeated(const ScenarioSpec& spec,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0) {
  RepeatedRuns out;
  out.results.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    out.results.push_back(run_scenario_once(spec, tool_cfg, seed0 + i));
  }
  return out;
}

}  // namespace pathload::scenario
