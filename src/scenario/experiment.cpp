#include "scenario/experiment.hpp"

#include <cmath>
#include <limits>

#include "scenario/sim_channel.hpp"
#include "scenario/sweep_runner.hpp"
#include "util/stats.hpp"

namespace pathload::scenario {

Rate RepeatedRuns::mean_low() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.low.bits_per_sec());
  return Rate::bps(s.mean());
}

Rate RepeatedRuns::mean_high() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.high.bits_per_sec());
  return Rate::bps(s.mean());
}

double RepeatedRuns::cv_low() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.low.bits_per_sec());
  return s.cv();
}

double RepeatedRuns::cv_high() const {
  OnlineStats s;
  for (const auto& r : results) s.add(r.range.high.bits_per_sec());
  return s.cv();
}

std::vector<double> RepeatedRuns::relative_variations() const {
  std::vector<double> rhos;
  rhos.reserve(results.size());
  for (const auto& r : results) rhos.push_back(r.range.relative_variation());
  return rhos;
}

double RepeatedRuns::coverage(Rate truth) const {
  if (results.empty()) return 0.0;
  int hits = 0;
  for (const auto& r : results) {
    if (r.range.contains(truth)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(results.size());
}

Duration RepeatedRuns::mean_elapsed() const {
  if (results.empty()) return Duration::zero();
  Duration total = Duration::zero();
  for (const auto& r : results) total += r.elapsed;
  return total / static_cast<double>(results.size());
}

double RepeatedRuns::mean_fleets() const {
  if (results.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : results) total += r.fleets;
  return total / static_cast<double>(results.size());
}

core::PathloadResult run_pathload_once(const PaperPathConfig& path_cfg,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed) {
  PaperPathConfig cfg = path_cfg;
  cfg.seed = seed;
  Testbed bed{cfg};
  bed.start();
  SimProbeChannel channel{bed.simulator(), bed.path()};
  core::PathloadSession session{tool_cfg};
  return session.run(channel);
}

RepeatedRuns run_pathload_repeated(const PaperPathConfig& path_cfg,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0) {
  RepeatedRuns out;
  out.results.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    out.results.push_back(run_pathload_once(path_cfg, tool_cfg, seed0 + i));
  }
  return out;
}

core::PathloadResult run_scenario_once(const ScenarioSpec& spec,
                                       const core::PathloadConfig& tool_cfg,
                                       std::uint64_t seed) {
  ScenarioSpec seeded = spec;
  seeded.seed = seed;
  ScenarioInstance inst{std::move(seeded)};
  inst.start();
  SimProbeChannel channel{inst.simulator(), inst.path()};
  core::PathloadSession session{tool_cfg};
  return session.run(channel);
}

RepeatedRuns run_scenario_repeated(const ScenarioSpec& spec,
                                   const core::PathloadConfig& tool_cfg, int runs,
                                   std::uint64_t seed0) {
  RepeatedRuns out;
  out.results.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    out.results.push_back(run_scenario_once(spec, tool_cfg, seed0 + i));
  }
  return out;
}

MatrixEstimator MatrixEstimator::from_registry(const core::EstimatorRegistry& reg,
                                               std::string_view name,
                                               std::string_view overrides) {
  const core::EstimatorRegistry::Entry& entry = reg.at(name);
  const std::string ov{overrides};
  // Surface override errors (unknown key, bad value) now, with their
  // line numbers, instead of from inside a worker thread mid-matrix.
  {
    const core::KvOverrides kv = core::KvOverrides::parse(ov);
    core::apply_common_overrides(*entry.make(kv), kv);
  }
  MatrixEstimator out;
  out.name = entry.name;
  // Copy the factory (not a reference to the entry): the column must
  // outlive registry mutation or destruction.
  out.make = [factory = entry.make, ov] {
    const core::KvOverrides kv = core::KvOverrides::parse(ov);
    std::unique_ptr<core::Estimator> est = factory(kv);
    core::apply_common_overrides(*est, kv);
    return est;
  };
  return out;
}

int MatrixCell::valid_runs() const {
  int n = 0;
  for (const auto& r : reports) n += r.valid ? 1 : 0;
  return n;
}

Rate MatrixCell::mean_low() const {
  OnlineStats s;
  for (const auto& r : reports) {
    if (r.valid) s.add(r.low.bits_per_sec());
  }
  return s.count() > 0 ? Rate::bps(s.mean()) : Rate::zero();
}

Rate MatrixCell::mean_high() const {
  OnlineStats s;
  for (const auto& r : reports) {
    if (r.valid) s.add(r.high.bits_per_sec());
  }
  return s.count() > 0 ? Rate::bps(s.mean()) : Rate::zero();
}

Rate MatrixCell::mean_center() const {
  OnlineStats s;
  for (const auto& r : reports) {
    if (r.valid) s.add(r.center().bits_per_sec());
  }
  return s.count() > 0 ? Rate::bps(s.mean()) : Rate::zero();
}

double MatrixCell::mean_rel_error() const {
  OnlineStats s;
  if (truth > Rate::zero()) {
    for (const auto& r : reports) {
      if (!r.valid) continue;
      s.add(std::abs(r.center().bits_per_sec() - truth.bits_per_sec()) /
            truth.bits_per_sec());
    }
  }
  return s.count() > 0 ? s.mean()
                       : std::numeric_limits<double>::quiet_NaN();
}

double MatrixCell::coverage(Rate point_slack) const {
  if (reports.empty()) return 0.0;
  int hits = 0;
  for (const auto& r : reports) {
    if (r.covers(truth, point_slack)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(reports.size());
}

double MatrixCell::cv_center() const {
  OnlineStats s;
  for (const auto& r : reports) {
    if (r.valid) s.add(r.center().bits_per_sec());
  }
  if (s.count() == 0) return std::numeric_limits<double>::quiet_NaN();
  return s.count() > 1 ? s.cv() : 0.0;
}

DataSize MatrixCell::mean_bytes() const {
  if (reports.empty()) return DataSize{};
  double total = 0.0;
  for (const auto& r : reports) total += static_cast<double>(r.bytes_sent.byte_count());
  return DataSize::bytes(
      static_cast<std::int64_t>(total / static_cast<double>(reports.size())));
}

double MatrixCell::mean_packets() const {
  if (reports.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : reports) total += static_cast<double>(r.packets_sent);
  return total / static_cast<double>(reports.size());
}

Duration MatrixCell::mean_elapsed() const {
  if (reports.empty()) return Duration::zero();
  Duration total = Duration::zero();
  for (const auto& r : reports) total += r.elapsed;
  return total / static_cast<double>(reports.size());
}

std::array<int, 4> MatrixCell::outcome_counts() const {
  std::array<int, 4> counts{};
  for (const auto& r : reports) {
    ++counts[static_cast<std::size_t>(r.outcome)];
  }
  return counts;
}

std::string MatrixCell::outcome_summary() const {
  if (reports.empty()) return "n/a";
  const std::array<int, 4> counts = outcome_counts();
  std::string out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto label = core::EstimateReport::outcome_label(
        static_cast<core::EstimateReport::Outcome>(i));
    if (counts[i] == static_cast<int>(reports.size())) return std::string{label};
    if (!out.empty()) out += ' ';
    out += std::string{label} + ":" + std::to_string(counts[i]);
  }
  return out;
}

double MatrixCell::mean_loss_fraction() const {
  if (reports.empty()) return 0.0;
  double total = 0.0;
  for (const auto& r : reports) total += r.loss_fraction();
  return total / static_cast<double>(reports.size());
}

core::EstimateReport run_estimator_once(const ScenarioSpec& spec,
                                        core::Estimator& est, std::uint64_t seed) {
  ScenarioSpec seeded = spec;
  seeded.seed = seed;
  ScenarioInstance inst{std::move(seeded)};
  inst.start();
  SimProbeChannel channel{inst.simulator(), inst.path()};
  Rng rng{seed};
  return core::run_guarded(est, channel, rng);
}

std::vector<MatrixCellPlan> plan_matrix(const std::vector<MatrixEstimator>& estimators,
                                        const std::vector<ScenarioSpec>& scenarios,
                                        const std::vector<double>& loads,
                                        std::uint64_t seed0) {
  // Enumerate every cell — and derive its seeds — before anything runs, so
  // the fan-out is deterministic and independent of the thread count (and,
  // via shard.hpp, of how the cells are partitioned across processes).
  std::vector<MatrixCellPlan> plans;
  plans.reserve(estimators.size() * scenarios.size() *
                std::max<std::size_t>(loads.size(), 1));
  for (const MatrixEstimator& est : estimators) {
    for (const ScenarioSpec& scenario : scenarios) {
      if (loads.empty()) {
        const double own =
            scenario.hops[scenario.tight_hop()].traffic.utilization;
        plans.push_back(MatrixCellPlan{&est, scenario, own, seed0});
      } else {
        for (const double u : loads) {
          // Same per-point seed derivation as bench/fig05 and --sweep.
          const auto cell_seed = static_cast<std::uint64_t>(
              static_cast<double>(seed0) + u * 1000);
          plans.push_back(MatrixCellPlan{&est, scenario.with_load(u), u, cell_seed});
        }
      }
    }
  }
  return plans;
}

std::vector<MatrixCell> run_planned_cells(const std::vector<MatrixCellPlan>& plans,
                                          int runs, SweepRunner& runner) {
  const auto n_runs = static_cast<std::size_t>(runs);
  std::vector<core::EstimateReport> reports =
      runner.map(plans.size() * n_runs, [&](std::size_t i) {
        const MatrixCellPlan& plan = plans[i / n_runs];
        const auto run = static_cast<std::uint64_t>(i % n_runs);
        const auto est = plan.est->make();
        return run_estimator_once(plan.spec, *est, plan.seed0 + run);
      });

  std::vector<MatrixCell> cells;
  cells.reserve(plans.size());
  for (std::size_t c = 0; c < plans.size(); ++c) {
    MatrixCell cell;
    cell.estimator = plans[c].est->name;
    cell.scenario = plans[c].spec.name;
    cell.load = plans[c].load;
    cell.truth = plans[c].spec.avail_bw();
    cell.seed0 = plans[c].seed0;
    cell.reports.assign(
        std::make_move_iterator(reports.begin() + static_cast<std::ptrdiff_t>(c * n_runs)),
        std::make_move_iterator(reports.begin() + static_cast<std::ptrdiff_t>((c + 1) * n_runs)));
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::vector<MatrixCell> run_matrix(const std::vector<MatrixEstimator>& estimators,
                                   const std::vector<ScenarioSpec>& scenarios,
                                   const std::vector<double>& loads, int runs,
                                   std::uint64_t seed0, SweepRunner& runner) {
  return run_planned_cells(plan_matrix(estimators, scenarios, loads, seed0),
                           runs, runner);
}

}  // namespace pathload::scenario
