#include "scenario/shard.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/spec.hpp"
#include "scenario/sweep_runner.hpp"

namespace pathload::scenario {
namespace {

// ---------------------------------------------------------------------------
// Rendering primitives. Doubles use %.17g: the shortest printf precision
// guaranteed to round-trip any IEEE double through strtod, which is what
// makes re-serializing a parsed stream byte-identical.

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_i64(std::int64_t v) { return std::to_string(v); }

/// Backslash-escape a free-text field so it fits on one `key = value`
/// line: \\ for backslash, \n and \r for line breaks. Everything else
/// (commas, quotes, equals signs) passes through — the parser takes the
/// whole rest of the line as the value.
std::string escape_note(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string unescape_note(std::string_view s, int line) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      throw SpecError{"cells line " + std::to_string(line) +
                      ": dangling backslash in escaped text"};
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default:
        throw SpecError{"cells line " + std::to_string(line) +
                        ": unknown escape '\\" + std::string(1, s[i]) + "'"};
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parsing: a strict line cursor. The format is rigid and sequential (every
// field always present, fixed order), so the parser is a sequence of
// expect() calls and every error carries the 1-based line number.

struct LineCursor {
  std::string_view text;
  std::size_t pos{0};
  int line{0};

  bool done() const { return pos >= text.size(); }

  /// Next line, stripped of a trailing '\r' (streams may cross platforms).
  std::string_view next() {
    if (done()) {
      throw SpecError{"cells line " + std::to_string(line + 1) +
                      ": unexpected end of cell stream"};
    }
    const std::size_t nl = text.find('\n', pos);
    std::string_view out = nl == std::string_view::npos
                               ? text.substr(pos)
                               : text.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? text.size() : nl + 1;
    ++line;
    if (!out.empty() && out.back() == '\r') out.remove_suffix(1);
    return out;
  }

  /// Expect `key = value`; returns the raw value (everything after the
  /// single space following '=', which may be empty).
  std::string_view expect(std::string_view key) {
    const std::string_view l = next();
    const std::string head = std::string{key} + " =";
    std::string_view rest;
    if (l.substr(0, head.size()) == head) rest = l.substr(head.size());
    if (l.substr(0, head.size()) != head || (!rest.empty() && rest[0] != ' ')) {
      throw SpecError{"cells line " + std::to_string(line) + ": expected '" +
                      std::string{key} + " = ...', found '" + std::string{l} + "'"};
    }
    return rest.empty() ? rest : rest.substr(1);
  }

  /// Expect an exact literal line.
  void expect_literal(std::string_view lit) {
    const std::string_view l = next();
    if (l != lit) {
      throw SpecError{"cells line " + std::to_string(line) + ": expected '" +
                      std::string{lit} + "', found '" + std::string{l} + "'"};
    }
  }

  double expect_double(std::string_view key) {
    const std::string v{expect(key)};
    errno = 0;
    char* end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
      throw SpecError{"cells line " + std::to_string(line) + ": " +
                      std::string{key} + ": expected a number, found '" + v + "'"};
    }
    return out;
  }

  std::int64_t expect_i64(std::string_view key) {
    const std::string v{expect(key)};
    errno = 0;
    char* end = nullptr;
    const long long out = std::strtoll(v.c_str(), &end, 10);
    if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
      throw SpecError{"cells line " + std::to_string(line) + ": " +
                      std::string{key} + ": expected an integer, found '" + v + "'"};
    }
    return static_cast<std::int64_t>(out);
  }

  std::uint64_t expect_u64(std::string_view key) {
    const std::string v{expect(key)};
    errno = 0;
    char* end = nullptr;
    const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || v[0] == '-' || end != v.c_str() + v.size() || errno == ERANGE) {
      throw SpecError{"cells line " + std::to_string(line) + ": " +
                      std::string{key} +
                      ": expected an unsigned integer, found '" + v + "'"};
    }
    return static_cast<std::uint64_t>(out);
  }

  bool expect_bool(std::string_view key) {
    const std::string_view v = expect(key);
    if (v == "1") return true;
    if (v == "0") return false;
    throw SpecError{"cells line " + std::to_string(line) + ": " +
                    std::string{key} + ": expected 0 or 1, found '" +
                    std::string{v} + "'"};
  }
};

core::EstimateReport::Quantity parse_quantity(std::string_view v, int line) {
  using Q = core::EstimateReport::Quantity;
  for (const Q q : {Q::kAvailBw, Q::kAdr, Q::kCapacity, Q::kTcpThroughput}) {
    if (v == core::EstimateReport::quantity_label(q)) return q;
  }
  throw SpecError{"cells line " + std::to_string(line) +
                  ": unknown quantity '" + std::string{v} + "'"};
}

core::EstimateReport::Outcome parse_outcome(std::string_view v, int line) {
  using O = core::EstimateReport::Outcome;
  for (const O o : {O::kOk, O::kDegraded, O::kTimeout, O::kFailed}) {
    if (v == core::EstimateReport::outcome_label(o)) return o;
  }
  throw SpecError{"cells line " + std::to_string(line) +
                  ": unknown outcome '" + std::string{v} + "'"};
}

void append_report(std::string& out, const core::EstimateReport& r,
                   std::size_t index) {
  out += "report " + std::to_string(index) + "\n";
  out += "tool = " + r.estimator + "\n";
  out += "quantity = " + std::string{core::EstimateReport::quantity_label(r.quantity)} + "\n";
  out += "outcome = " + std::string{core::EstimateReport::outcome_label(r.outcome)} + "\n";
  out += "note = " + escape_note(r.outcome_note) + "\n";
  out += "packets_lost = " + fmt_i64(r.packets_lost) + "\n";
  out += "valid = " + std::string{r.valid ? "1" : "0"} + "\n";
  out += "range = " + std::string{r.is_range ? "1" : "0"} + "\n";
  out += "low_bps = " + fmt_double(r.low.bits_per_sec()) + "\n";
  out += "high_bps = " + fmt_double(r.high.bits_per_sec()) + "\n";
  out += "capacity_bps = " +
         (r.capacity ? fmt_double(r.capacity->bits_per_sec()) : std::string{"none"}) + "\n";
  out += "streams = " + fmt_i64(r.streams_sent) + "\n";
  out += "packets = " + fmt_i64(r.packets_sent) + "\n";
  out += "bytes = " + fmt_i64(r.bytes_sent.byte_count()) + "\n";
  out += "elapsed_ns = " + fmt_i64(r.elapsed.nanos()) + "\n";
  out += "iterations = " + std::to_string(r.iterations.size()) + "\n";
  for (const auto& it : r.iterations) {
    // offered and measured first (they never contain spaces), then the
    // note as the rest of the line.
    out += "iteration = " + fmt_double(it.offered_mbps) + " " +
           fmt_double(it.measured_mbps) + " " + escape_note(it.note) + "\n";
  }
  out += "end report\n";
}

core::EstimateReport parse_report(LineCursor& in, std::size_t index) {
  in.expect_literal("report " + std::to_string(index));
  core::EstimateReport r;
  r.estimator = std::string{in.expect("tool")};
  r.quantity = parse_quantity(in.expect("quantity"), in.line);
  r.outcome = parse_outcome(in.expect("outcome"), in.line);
  r.outcome_note = unescape_note(in.expect("note"), in.line);
  r.packets_lost = in.expect_i64("packets_lost");
  r.valid = in.expect_bool("valid");
  r.is_range = in.expect_bool("range");
  r.low = Rate::bps(in.expect_double("low_bps"));
  r.high = Rate::bps(in.expect_double("high_bps"));
  if (const std::string_view cap = in.expect("capacity_bps"); cap != "none") {
    errno = 0;
    const std::string v{cap};
    char* end = nullptr;
    const double bps = std::strtod(v.c_str(), &end);
    if (v.empty() || end != v.c_str() + v.size() || errno == ERANGE) {
      throw SpecError{"cells line " + std::to_string(in.line) +
                      ": capacity_bps: expected a number or 'none', found '" + v + "'"};
    }
    r.capacity = Rate::bps(bps);
  }
  r.streams_sent = in.expect_i64("streams");
  r.packets_sent = in.expect_i64("packets");
  r.bytes_sent = DataSize::bytes(in.expect_i64("bytes"));
  r.elapsed = Duration::nanoseconds(in.expect_i64("elapsed_ns"));
  const std::int64_t n_iter = in.expect_i64("iterations");
  if (n_iter < 0) {
    throw SpecError{"cells line " + std::to_string(in.line) +
                    ": iterations: negative count"};
  }
  r.iterations.reserve(static_cast<std::size_t>(n_iter));
  for (std::int64_t i = 0; i < n_iter; ++i) {
    const std::string v{in.expect("iteration")};
    core::EstimateReport::Iteration it;
    char* end = nullptr;
    errno = 0;
    it.offered_mbps = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != ' ' || errno == ERANGE) {
      throw SpecError{"cells line " + std::to_string(in.line) +
                      ": iteration: expected '<offered> <measured> <note>'"};
    }
    char* end2 = nullptr;
    it.measured_mbps = std::strtod(end + 1, &end2);
    if (end2 == end + 1 || (*end2 != ' ' && *end2 != '\0') || errno == ERANGE) {
      throw SpecError{"cells line " + std::to_string(in.line) +
                      ": iteration: expected '<offered> <measured> <note>'"};
    }
    if (*end2 == ' ') {
      it.note = unescape_note(
          std::string_view{v}.substr(static_cast<std::size_t>(end2 + 1 - v.c_str())),
          in.line);
    }
    r.iterations.push_back(std::move(it));
  }
  in.expect_literal("end report");
  return r;
}

MatrixCell parse_cell_body(LineCursor& in, std::size_t* index_out) {
  const std::string_view head = in.next();
  constexpr std::string_view kPrefix = "cell ";
  if (head.substr(0, kPrefix.size()) != kPrefix) {
    throw SpecError{"cells line " + std::to_string(in.line) +
                    ": expected 'cell <index>', found '" + std::string{head} + "'"};
  }
  const std::string idx{head.substr(kPrefix.size())};
  errno = 0;
  char* end = nullptr;
  const unsigned long long index = std::strtoull(idx.c_str(), &end, 10);
  if (idx.empty() || end != idx.c_str() + idx.size() || errno == ERANGE) {
    throw SpecError{"cells line " + std::to_string(in.line) +
                    ": bad cell index '" + idx + "'"};
  }
  *index_out = static_cast<std::size_t>(index);

  MatrixCell cell;
  cell.estimator = std::string{in.expect("estimator")};
  cell.scenario = std::string{in.expect("scenario")};
  cell.load = in.expect_double("load");
  cell.truth = Rate::bps(in.expect_double("truth_bps"));
  cell.seed0 = in.expect_u64("seed0");
  const std::int64_t n_reports = in.expect_i64("reports");
  if (n_reports < 0) {
    throw SpecError{"cells line " + std::to_string(in.line) +
                    ": reports: negative count"};
  }
  cell.reports.reserve(static_cast<std::size_t>(n_reports));
  for (std::int64_t i = 0; i < n_reports; ++i) {
    cell.reports.push_back(parse_report(in, static_cast<std::size_t>(i)));
  }
  in.expect_literal("end cell");
  return cell;
}

}  // namespace

std::string cell_to_text(const MatrixCell& cell, std::size_t index) {
  std::string out;
  out += "cell " + std::to_string(index) + "\n";
  out += "estimator = " + cell.estimator + "\n";
  out += "scenario = " + cell.scenario + "\n";
  out += "load = " + fmt_double(cell.load) + "\n";
  out += "truth_bps = " + fmt_double(cell.truth.bits_per_sec()) + "\n";
  out += "seed0 = " + std::to_string(cell.seed0) + "\n";
  out += "reports = " + std::to_string(cell.reports.size()) + "\n";
  for (std::size_t i = 0; i < cell.reports.size(); ++i) {
    append_report(out, cell.reports[i], i);
  }
  out += "end cell\n";
  return out;
}

std::string cells_to_text(const std::vector<MatrixCell>& cells) {
  std::string out = "cells total=" + std::to_string(cells.size()) + " version=1\n";
  for (std::size_t i = 0; i < cells.size(); ++i) out += cell_to_text(cells[i], i);
  return out;
}

ParsedCells parse_cells(std::string_view text) {
  LineCursor in{text};
  const std::string_view head = in.next();
  constexpr std::string_view kPrefix = "cells total=";
  constexpr std::string_view kSuffix = " version=1";
  if (head.substr(0, kPrefix.size()) != kPrefix ||
      head.size() < kPrefix.size() + kSuffix.size() ||
      head.substr(head.size() - kSuffix.size()) != kSuffix) {
    throw SpecError{"cells line 1: expected 'cells total=<n> version=1', found '" +
                    std::string{head} + "'"};
  }
  const std::string total_s{head.substr(
      kPrefix.size(), head.size() - kPrefix.size() - kSuffix.size())};
  errno = 0;
  char* end = nullptr;
  const unsigned long long total = std::strtoull(total_s.c_str(), &end, 10);
  if (total_s.empty() || end != total_s.c_str() + total_s.size() || errno == ERANGE) {
    throw SpecError{"cells line 1: bad total '" + total_s + "'"};
  }

  ParsedCells out;
  out.total = static_cast<std::size_t>(total);
  while (!in.done()) {
    // Tolerate trailing blank lines (e.g. shell-appended newlines).
    if (in.text.substr(in.pos).find_first_not_of("\r\n") == std::string_view::npos) break;
    std::size_t index = 0;
    MatrixCell cell = parse_cell_body(in, &index);
    if (index >= out.total) {
      throw SpecError{"cells line " + std::to_string(in.line) + ": cell index " +
                      std::to_string(index) + " >= declared total " +
                      std::to_string(out.total)};
    }
    // Every emitter writes indices strictly increasing; enforcing it here
    // catches a concatenation of two streams (duplicates) at parse time.
    if (!out.cells.empty() && index <= out.cells.back().first) {
      throw SpecError{"cells line " + std::to_string(in.line) + ": cell index " +
                      std::to_string(index) + " out of order after " +
                      std::to_string(out.cells.back().first)};
    }
    out.cells.emplace_back(index, std::move(cell));
  }
  return out;
}

bool shard_owns_cell(std::size_t index, int shard_index, int shard_count) {
  return index % static_cast<std::size_t>(shard_count) ==
         static_cast<std::size_t>(shard_index);
}

void validate_shard(int shard_index, int shard_count) {
  if (shard_count < 1) {
    throw SpecError{"shard: count must be >= 1, got " + std::to_string(shard_count)};
  }
  if (shard_index < 0 || shard_index >= shard_count) {
    throw SpecError{"shard: index must be in [0, " + std::to_string(shard_count) +
                    "), got " + std::to_string(shard_index)};
  }
}

std::string run_matrix_shard(const std::vector<MatrixEstimator>& estimators,
                             const std::vector<ScenarioSpec>& scenarios,
                             const std::vector<double>& loads, int runs,
                             std::uint64_t seed0, int shard_index,
                             int shard_count, SweepRunner& runner) {
  validate_shard(shard_index, shard_count);
  const std::vector<MatrixCellPlan> all =
      plan_matrix(estimators, scenarios, loads, seed0);
  std::vector<MatrixCellPlan> owned;
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!shard_owns_cell(i, shard_index, shard_count)) continue;
    owned.push_back(all[i]);
    indices.push_back(i);
  }
  const std::vector<MatrixCell> cells = run_planned_cells(owned, runs, runner);
  std::string out = "cells total=" + std::to_string(all.size()) + " version=1\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out += cell_to_text(cells[i], indices[i]);
  }
  return out;
}

std::vector<MatrixCell> merge_cell_texts(const std::vector<std::string>& shard_texts) {
  if (shard_texts.empty()) throw SpecError{"merge: no cell streams given"};
  std::size_t total = 0;
  std::vector<std::pair<std::size_t, MatrixCell>> gathered;
  for (std::size_t s = 0; s < shard_texts.size(); ++s) {
    ParsedCells parsed = parse_cells(shard_texts[s]);
    if (s == 0) {
      total = parsed.total;
    } else if (parsed.total != total) {
      throw SpecError{"merge: stream " + std::to_string(s) + " declares total " +
                      std::to_string(parsed.total) + ", expected " +
                      std::to_string(total)};
    }
    for (auto& [index, cell] : parsed.cells) {
      gathered.emplace_back(index, std::move(cell));
    }
  }
  std::vector<MatrixCell> cells(total);
  std::vector<bool> seen(total, false);
  for (auto& [index, cell] : gathered) {
    if (seen[index]) {
      throw SpecError{"merge: cell index " + std::to_string(index) +
                      " appears in more than one stream"};
    }
    seen[index] = true;
    cells[index] = std::move(cell);
  }
  for (std::size_t i = 0; i < total; ++i) {
    if (!seen[i]) {
      throw SpecError{"merge: cell index " + std::to_string(i) +
                      " is missing from every stream"};
    }
  }
  return cells;
}

std::vector<MatrixCell> run_matrix_sharded(int shard_count, const ShardWorker& worker) {
  validate_shard(0, shard_count);
  std::vector<std::string> texts;
  texts.reserve(static_cast<std::size_t>(shard_count));
  for (int k = 0; k < shard_count; ++k) {
    texts.push_back(worker(k, shard_count));
  }
  return merge_cell_texts(texts);
}

}  // namespace pathload::scenario
