#include "scenario/spec.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "sim/fluid_traffic.hpp"
#include "tcp/workload.hpp"
#include "util/counter_rng.hpp"

namespace pathload::scenario {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string{s.substr(b, e - b)};
}

/// One `key = value` line of a spec, with its 1-based source line for
/// error messages.
struct KvLine {
  int no;
  std::string key;
  std::string value;
};

[[noreturn]] void fail(const KvLine& l, const std::string& what) {
  throw SpecError{"line " + std::to_string(l.no) + ": " + l.key + ": " + what};
}

double parse_num(const KvLine& l) {
  char* end = nullptr;
  const double v = std::strtod(l.value.c_str(), &end);
  if (end == l.value.c_str() || *end != '\0') {
    fail(l, "expected a number, got '" + l.value + "'");
  }
  return v;
}

int parse_int(const KvLine& l) {
  const double v = parse_num(l);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) {
    fail(l, "expected an integer, got '" + l.value + "'");
  }
  return i;
}

std::uint64_t parse_u64(const KvLine& l) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(l.value.c_str(), &end, 10);
  // strtoull silently wraps a leading '-'; reject it explicitly so the
  // error message tells the truth.
  if (l.value.empty() || l.value[0] == '-' || end == l.value.c_str() ||
      *end != '\0') {
    fail(l, "expected a non-negative integer, got '" + l.value + "'");
  }
  return v;
}

TrafficModel parse_model(const KvLine& l) {
  if (l.value == "none") return TrafficModel::kNone;
  if (l.value == "poisson") return TrafficModel::kPoisson;
  if (l.value == "pareto") return TrafficModel::kPareto;
  if (l.value == "constant") return TrafficModel::kConstant;
  if (l.value == "onoff") return TrafficModel::kOnOff;
  if (l.value == "ramp") return TrafficModel::kRamp;
  fail(l, "unknown traffic model '" + l.value +
              "' (expected none|poisson|pareto|constant|onoff|ramp)");
}

sim::Interarrival renewal_of(TrafficModel m) {
  switch (m) {
    case TrafficModel::kPoisson: return sim::Interarrival::kExponential;
    case TrafficModel::kPareto: return sim::Interarrival::kPareto;
    case TrafficModel::kConstant: return sim::Interarrival::kConstant;
    default: throw std::logic_error{"renewal_of: not a renewal model"};
  }
}

TrafficModel model_of(sim::Interarrival m) {
  switch (m) {
    case sim::Interarrival::kExponential: return TrafficModel::kPoisson;
    case sim::Interarrival::kPareto: return TrafficModel::kPareto;
    case sim::Interarrival::kConstant: return TrafficModel::kConstant;
  }
  return TrafficModel::kPoisson;
}

sim::PacketSizeMix parse_mix(const KvLine& l) {
  if (l.value == "paper") return sim::PacketSizeMix::paper_mix();
  if (l.value.rfind("fixed:", 0) == 0) {
    const KvLine sub{l.no, l.key, l.value.substr(6)};
    const int bytes = parse_int(sub);
    if (bytes <= 0) fail(l, "fixed mix size must be a positive byte count");
    return sim::PacketSizeMix::fixed(bytes);
  }
  fail(l, "unknown mix '" + l.value + "' (expected paper or fixed:<bytes>)");
}

std::string mix_to_text(const sim::PacketSizeMix& mix) {
  if (mix.bins().size() == 1) {
    return "fixed:" + std::to_string(mix.bins().front().size_bytes);
  }
  return "paper";
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// Field-level checks of a paper parameterization, shared by from_paper and
/// validate(). Must run before any derived quantity (nontight_capacity) is
/// touched, since ux >= 1 would divide by zero there.
void validate_paper(const PaperPathConfig& cfg) {
  if (cfg.hops < 1) throw SpecError{"paper.hops: need at least one hop"};
  if (cfg.tight_capacity <= Rate::zero()) {
    throw SpecError{"paper.tight_capacity_mbps: must be positive"};
  }
  if (cfg.tight_utilization < 0.0 || cfg.tight_utilization >= 1.0) {
    throw SpecError{"paper.tight_utilization: must be in [0, 1), got " +
                    fmt(cfg.tight_utilization)};
  }
  if (cfg.nontight_utilization < 0.0 || cfg.nontight_utilization >= 1.0) {
    throw SpecError{"paper.nontight_utilization: must be in [0, 1), got " +
                    fmt(cfg.nontight_utilization)};
  }
  if (cfg.beta <= 0.0) {
    throw SpecError{"paper.beta: must be positive, got " + fmt(cfg.beta)};
  }
  if (cfg.model == sim::Interarrival::kPareto && cfg.pareto_alpha <= 1.0) {
    throw SpecError{"paper.pareto_alpha: must be > 1 for a finite mean, got " +
                    fmt(cfg.pareto_alpha)};
  }
  if (cfg.sources_per_link < 1) {
    throw SpecError{"paper.sources_per_link: must be >= 1"};
  }
}

[[noreturn]] void fail_hop(std::size_t hop, const std::string& field,
                           const std::string& what) {
  throw SpecError{"hop " + std::to_string(hop) + ": " + field + ": " + what};
}

void validate_hop(std::size_t i, const HopDecl& h) {
  if (h.capacity <= Rate::zero()) {
    fail_hop(i, "capacity_mbps", "must be positive, got " + fmt(h.capacity.mbits_per_sec()));
  }
  if (h.delay < Duration::zero()) {
    fail_hop(i, "delay_ms", "must not be negative, got " + fmt(h.delay.millis()));
  }
  if (h.buffer_drain <= Duration::zero()) {
    fail_hop(i, "buffer_ms", "must be positive, got " + fmt(h.buffer_drain.millis()));
  }
  const TrafficSpec& t = h.traffic;
  if (t.model == TrafficModel::kNone) return;
  if (t.utilization < 0.0 || t.utilization >= 1.0) {
    fail_hop(i, "traffic.utilization", "must be in [0, 1), got " + fmt(t.utilization));
  }
  if (t.sources < 1) {
    fail_hop(i, "traffic.sources", "must be >= 1, got " + std::to_string(t.sources));
  }
  if (t.mix.mean_bytes() <= 0.0) {
    fail_hop(i, "traffic.mix", "mean packet size must be positive");
  }
  switch (t.model) {
    case TrafficModel::kPoisson:
    case TrafficModel::kConstant:
      break;
    case TrafficModel::kPareto:
      if (t.pareto_alpha <= 1.0) {
        fail_hop(i, "traffic.pareto_alpha",
                 "must be > 1 for a finite mean, got " + fmt(t.pareto_alpha));
      }
      break;
    case TrafficModel::kOnOff:
      if (t.utilization <= 0.0) {
        fail_hop(i, "traffic.utilization",
                 "onoff traffic needs a positive mean load (or set model = none)");
      }
      if (t.peak_utilization <= t.utilization || t.peak_utilization > 1.0) {
        fail_hop(i, "traffic.peak_utilization",
                 "must be in (utilization, 1]: bursts emit above the mean load "
                 "but not above the hop capacity; got " + fmt(t.peak_utilization) +
                 " with utilization " + fmt(t.utilization));
      }
      if (DataSize::kilobytes(t.mean_burst_kb).byte_count() <= 0) {
        fail_hop(i, "traffic.mean_burst_kb",
                 "must be at least one byte (0.001), got " + fmt(t.mean_burst_kb));
      }
      if (t.burst_alpha <= 1.0) {
        fail_hop(i, "traffic.burst_alpha",
                 "must be > 1 for a finite mean burst, got " + fmt(t.burst_alpha));
      }
      break;
    case TrafficModel::kRamp:
      if (t.utilization <= 0.0) {
        fail_hop(i, "traffic.utilization",
                 "ramp traffic needs a positive pre-ramp load (the arrival "
                 "process cannot restart from rate zero)");
      }
      if (t.end_utilization <= 0.0 || t.end_utilization >= 1.0) {
        fail_hop(i, "traffic.end_utilization",
                 "must be in (0, 1), got " + fmt(t.end_utilization));
      }
      if (t.ramp_start_s < 0.0) {
        fail_hop(i, "traffic.ramp_start_s", "must not be negative, got " + fmt(t.ramp_start_s));
      }
      if (t.ramp_end_s < t.ramp_start_s) {
        fail_hop(i, "traffic.ramp_end_s",
                 "must not precede ramp_start_s (" + fmt(t.ramp_start_s) +
                 "), got " + fmt(t.ramp_end_s));
      }
      if (t.has_ramp_back()) {
        if (t.ramp_back_start_s < t.ramp_end_s) {
          fail_hop(i, "traffic.ramp_back_start_s",
                   "the return segment must not precede ramp_end_s (" +
                   fmt(t.ramp_end_s) + "), got " + fmt(t.ramp_back_start_s));
        }
        if (t.ramp_back_end_s < t.ramp_back_start_s) {
          fail_hop(i, "traffic.ramp_back_end_s",
                   "must not precede ramp_back_start_s (" +
                   fmt(t.ramp_back_start_s) + "), got " + fmt(t.ramp_back_end_s));
        }
      }
      break;
    case TrafficModel::kNone:
      break;
  }
}

/// Long-run pre-ramp utilization of a hop (0 when traffic is disabled).
double initial_util(const HopDecl& h) {
  return h.traffic.model == TrafficModel::kNone ? 0.0 : h.traffic.utilization;
}

[[noreturn]] void fail_flow_line(int no, const std::string& what) {
  throw SpecError{"line " + std::to_string(no) + ": flow: " + what};
}

/// Parse the `i` or `i-j` value of a flow's hops= key.
void parse_flow_hops(int no, const std::string& value, FlowSpec& flow) {
  auto parse_index = [&](const std::string& s) -> std::size_t {
    char* end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(s.c_str(), &end, 10);
    // The overflow check matters: strtoul clamps to ULONG_MAX, which would
    // otherwise alias Segment::kPathEnd and validate as "whole path".
    if (s.empty() || s[0] == '-' || end == s.c_str() || *end != '\0' ||
        errno == ERANGE || v > 64) {
      fail_flow_line(no, "hops expects <hop> or <first>-<last> with "
                         "hop indices in [0, 64], got '" + value + "'");
    }
    return static_cast<std::size_t>(v);
  };
  const auto dash = value.find('-');
  if (dash == std::string::npos) {
    flow.first_hop = flow.last_hop = parse_index(value);
  } else {
    flow.first_hop = parse_index(value.substr(0, dash));
    flow.last_hop = parse_index(value.substr(dash + 1));
  }
}

/// Parse one `flow <kind> key=value ...` directive body (everything after
/// the `flow` token). Field-level range checks live in validate_flow so
/// C++-built specs get the same diagnostics.
FlowSpec parse_flow_line(int no, const std::string& body) {
  std::istringstream in{body};
  std::string tok;
  if (!(in >> tok)) {
    fail_flow_line(no, "expected 'flow <kind> key=value ...' (kinds: tcp)");
  }
  if (tok != "tcp") {
    fail_flow_line(no, "unknown flow kind '" + tok + "' (expected tcp)");
  }
  FlowSpec flow;
  std::set<std::string> seen;
  while (in >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail_flow_line(no, "expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (!seen.insert(key).second) {
      fail_flow_line(no, "duplicate key '" + key + "'");
    }
    const KvLine kv{no, "flow " + key, value};
    if (key == "hops") {
      parse_flow_hops(no, value, flow);
    } else if (key == "rwnd") {
      flow.rwnd = parse_num(kv);
    } else if (key == "count") {
      flow.count = parse_int(kv);
    } else if (key == "start_s") {
      flow.start_s = parse_num(kv);
    } else if (key == "stop_s") {
      flow.stop_s = parse_num(kv);
    } else if (key == "on_s") {
      flow.on_s = parse_num(kv);
    } else if (key == "off_s") {
      flow.off_s = parse_num(kv);
    } else if (key == "mss") {
      flow.mss_bytes = parse_int(kv);
    } else if (key == "reverse_ms") {
      flow.reverse_ms = parse_num(kv);
    } else if (key == "mode") {
      if (value == "auto") {
        flow.mode = FlowSpec::Mode::kAuto;
      } else if (value == "packet") {
        flow.mode = FlowSpec::Mode::kPacket;
      } else {
        fail_flow_line(no, "unknown mode '" + value +
                               "' (expected auto or packet; auto picks the "
                               "engine's native flow backend)");
      }
    } else if (key == "cc") {
      if (value == "reno" || value == "reno-rfc" || value == "cubic" ||
          value == "bbr") {
        flow.cc = value;
      } else {
        fail_flow_line(no, "unknown cc '" + value +
                               "' (expected reno, reno-rfc, cubic, or bbr)");
      }
    } else {
      fail_flow_line(no, "unknown key '" + key +
                             "' (expected hops, rwnd, count, start_s, stop_s, "
                             "on_s, off_s, mss, reverse_ms, mode, cc)");
    }
  }
  return flow;
}

[[noreturn]] void fail_flow(std::size_t flow, const std::string& field,
                            const std::string& what) {
  throw SpecError{"flow " + std::to_string(flow) + ": " + field + ": " + what};
}

void validate_flow(std::size_t i, const FlowSpec& f, std::size_t hop_count) {
  const std::size_t last =
      f.last_hop == sim::Segment::kPathEnd ? hop_count - 1 : f.last_hop;
  if (f.first_hop > last || last >= hop_count) {
    fail_flow(i, "hops",
              "segment " + std::to_string(f.first_hop) + "-" +
                  std::to_string(last) + " does not fit the path (hops 0-" +
                  std::to_string(hop_count - 1) +
                  ", first must not exceed last)");
  }
  if (f.rwnd.has_value() && *f.rwnd < 1.0) {
    fail_flow(i, "rwnd",
              "must be at least 1 segment (drop the key for a greedy flow), "
              "got " + fmt(*f.rwnd));
  }
  if (f.count < 1 || f.count > 64) {
    fail_flow(i, "count", "must be in [1, 64], got " + std::to_string(f.count));
  }
  if (f.start_s < 0.0) {
    fail_flow(i, "start_s", "must not be negative, got " + fmt(f.start_s));
  }
  if (f.stop_s.has_value() && *f.stop_s <= f.start_s) {
    fail_flow(i, "stop_s", "must come after start_s (" + fmt(f.start_s) +
                               "), got " + fmt(*f.stop_s));
  }
  if (f.on_s.has_value() != f.off_s.has_value()) {
    fail_flow(i, f.on_s.has_value() ? "off_s" : "on_s",
              "on_s and off_s must be set together (the on/off restart "
              "variant needs both; drop both for a long-lived flow)");
  }
  if (f.on_s.has_value() && *f.on_s <= 0.0) {
    fail_flow(i, "on_s", "must be positive, got " + fmt(*f.on_s));
  }
  if (f.off_s.has_value() && *f.off_s <= 0.0) {
    fail_flow(i, "off_s", "must be positive, got " + fmt(*f.off_s));
  }
  if (f.mss_bytes <= 0) {
    fail_flow(i, "mss",
              "must be a positive byte count, got " + std::to_string(f.mss_bytes));
  }
  if (f.reverse_ms < 0.0) {
    fail_flow(i, "reverse_ms", "must not be negative, got " + fmt(f.reverse_ms));
  }
  if (f.cc != "reno" && f.cc != "reno-rfc" && f.cc != "cubic" && f.cc != "bbr") {
    fail_flow(i, "cc", "unknown policy '" + f.cc +
                           "' (expected reno, reno-rfc, cubic, or bbr)");
  }
}

/// Render one flow entry as the directive line parse_flow_line accepts;
/// defaults are omitted so presets stay terse, and the hop range is printed
/// resolved so a rendered spec is self-describing.
std::string flow_to_text(const FlowSpec& f, std::size_t hop_count) {
  const std::size_t last =
      f.last_hop == sim::Segment::kPathEnd ? hop_count - 1 : f.last_hop;
  std::string out = "flow tcp hops=" + std::to_string(f.first_hop) + "-" +
                    std::to_string(last);
  if (f.rwnd.has_value()) out += " rwnd=" + fmt(*f.rwnd);
  if (f.count != 1) out += " count=" + std::to_string(f.count);
  if (f.start_s != 0.0) out += " start_s=" + fmt(f.start_s);
  if (f.stop_s.has_value()) out += " stop_s=" + fmt(*f.stop_s);
  if (f.on_s.has_value()) out += " on_s=" + fmt(*f.on_s);
  if (f.off_s.has_value()) out += " off_s=" + fmt(*f.off_s);
  if (f.mss_bytes != 1460) out += " mss=" + std::to_string(f.mss_bytes);
  if (f.reverse_ms != 50.0) out += " reverse_ms=" + fmt(f.reverse_ms);
  if (f.mode == FlowSpec::Mode::kPacket) out += " mode=packet";
  if (f.cc != "reno") out += " cc=" + f.cc;
  out += "\n";
  return out;
}

[[noreturn]] void fail_impair_line(int no, const std::string& what) {
  throw SpecError{"line " + std::to_string(no) + ": impair: " + what};
}

/// Parse one `impair key=value ...` directive body (everything after the
/// `impair` token). Range checks live in validate_impair so C++-built specs
/// get the same diagnostics.
ImpairSpec parse_impair_line(int no, const std::string& body) {
  std::istringstream in{body};
  std::string tok;
  ImpairSpec imp;
  bool hop_set = false;
  std::set<std::string> seen;
  while (in >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail_impair_line(no, "expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (!seen.insert(key).second) {
      fail_impair_line(no, "duplicate key '" + key + "'");
    }
    const KvLine kv{no, "impair " + key, value};
    if (key == "hop") {
      const int idx = parse_int(kv);
      if (idx < 0 || idx > 64) {
        fail_impair_line(no, "hop index must be in [0, 64], got '" + value + "'");
      }
      imp.hop = static_cast<std::size_t>(idx);
      hop_set = true;
    } else if (key == "loss") {
      imp.loss = parse_num(kv);
    } else if (key == "dup") {
      imp.dup = parse_num(kv);
    } else if (key == "reorder_ms") {
      imp.reorder_ms = parse_num(kv);
    } else if (key == "seed") {
      imp.seed = parse_u64(kv);
    } else {
      fail_impair_line(no, "unknown key '" + key +
                               "' (expected hop, loss, dup, reorder_ms, seed)");
    }
  }
  if (!hop_set) {
    fail_impair_line(no, "hop= is required (which hop's link to impair)");
  }
  return imp;
}

[[noreturn]] void fail_impair(std::size_t entry, const std::string& field,
                              const std::string& what) {
  throw SpecError{"impair " + std::to_string(entry) + ": " + field + ": " + what};
}

void validate_impair(std::size_t i, const ImpairSpec& imp, std::size_t hop_count) {
  if (imp.hop >= hop_count) {
    fail_impair(i, "hop",
                "hop index " + std::to_string(imp.hop) +
                    " does not fit the path (hops 0-" +
                    std::to_string(hop_count - 1) + ")");
  }
  if (imp.loss < 0.0 || imp.loss >= 1.0) {
    fail_impair(i, "loss", "must be in [0, 1), got " + fmt(imp.loss));
  }
  if (imp.dup < 0.0 || imp.dup >= 1.0) {
    fail_impair(i, "dup", "must be in [0, 1), got " + fmt(imp.dup));
  }
  if (imp.reorder_ms < 0.0) {
    fail_impair(i, "reorder_ms", "must not be negative, got " + fmt(imp.reorder_ms));
  }
  if (!imp.any()) {
    fail_impair(i, "loss",
                "impair line enables nothing; set at least one of loss, dup, "
                "reorder_ms (or drop the line)");
  }
}

/// Render one impairment as the directive line parse_impair_line accepts;
/// zero knobs are omitted so presets stay terse.
std::string impair_to_text(const ImpairSpec& imp) {
  std::string out = "impair hop=" + std::to_string(imp.hop);
  if (imp.loss != 0.0) out += " loss=" + fmt(imp.loss);
  if (imp.dup != 0.0) out += " dup=" + fmt(imp.dup);
  if (imp.reorder_ms != 0.0) out += " reorder_ms=" + fmt(imp.reorder_ms);
  if (imp.seed.has_value()) out += " seed=" + std::to_string(*imp.seed);
  out += "\n";
  return out;
}

}  // namespace

std::uint64_t derive_impair_seed(std::uint64_t scenario_seed, std::size_t hop) {
  // splitmix64 over (seed, hop): decorrelated from the scenario's traffic
  // forks (mt19937_64 draws), stable under changes to the rest of the spec.
  std::uint64_t z = scenario_seed + 0x9e3779b97f4a7c15ULL * (hop + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string_view to_string(EngineVersion v) {
  switch (v) {
    case EngineVersion::kV1: return "v1";
    case EngineVersion::kV2: return "v2";
  }
  return "?";
}

std::string_view to_string(TrafficModel m) {
  switch (m) {
    case TrafficModel::kNone: return "none";
    case TrafficModel::kPoisson: return "poisson";
    case TrafficModel::kPareto: return "pareto";
    case TrafficModel::kConstant: return "constant";
    case TrafficModel::kOnOff: return "onoff";
    case TrafficModel::kRamp: return "ramp";
  }
  return "?";
}

ScenarioSpec ScenarioSpec::from_paper(std::string name, std::string description,
                                      const PaperPathConfig& cfg) {
  validate_paper(cfg);
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.warmup = cfg.warmup;
  spec.seed = cfg.seed;
  spec.paper = cfg;

  // Mirror Testbed's hop derivation exactly (same expressions, same order)
  // so the hop list is a faithful description of what instantiation builds.
  const std::size_t tight = static_cast<std::size_t>(cfg.hops / 2);
  const Duration per_hop_delay = cfg.total_prop_delay / static_cast<double>(cfg.hops);
  spec.hops.reserve(static_cast<std::size_t>(cfg.hops));
  for (int i = 0; i < cfg.hops; ++i) {
    const bool is_tight = static_cast<std::size_t>(i) == tight;
    HopDecl hop;
    hop.capacity = is_tight ? cfg.tight_capacity : cfg.nontight_capacity();
    hop.delay = per_hop_delay;
    hop.buffer_drain = cfg.buffer_drain;
    hop.traffic.model = model_of(cfg.model);
    hop.traffic.utilization =
        is_tight ? cfg.tight_utilization : cfg.nontight_utilization;
    hop.traffic.sources = cfg.sources_per_link;
    hop.traffic.pareto_alpha = cfg.pareto_alpha;
    hop.traffic.mix = cfg.size_mix;
    spec.hops.push_back(std::move(hop));
  }
  return spec;
}

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  std::vector<KvLine> lines;
  // `flow` / `impair` directive lines (1-based line number + body after the
  // keyword); unlike keys they may repeat, one line per entry.
  std::vector<std::pair<int, std::string>> flow_lines;
  std::vector<std::pair<int, std::string>> impair_lines;
  std::set<std::string> seen;
  {
    std::istringstream in{std::string{text}};
    std::string raw;
    int no = 0;
    while (std::getline(in, raw)) {
      ++no;
      if (const auto hash = raw.find('#'); hash != std::string::npos) {
        raw.erase(hash);
      }
      const std::string stripped = trim(raw);
      if (stripped.empty()) continue;
      if (stripped.rfind("flow", 0) == 0 &&
          (stripped.size() == 4 ||
           std::isspace(static_cast<unsigned char>(stripped[4])))) {
        flow_lines.emplace_back(no, stripped.substr(4));
        continue;
      }
      if (stripped.rfind("impair", 0) == 0 &&
          (stripped.size() == 6 ||
           std::isspace(static_cast<unsigned char>(stripped[6])))) {
        impair_lines.emplace_back(no, stripped.substr(6));
        continue;
      }
      const auto eq = stripped.find('=');
      if (eq == std::string::npos) {
        throw SpecError{"line " + std::to_string(no) +
                        ": expected 'key = value', got '" + stripped + "'"};
      }
      KvLine l{no, trim(stripped.substr(0, eq)), trim(stripped.substr(eq + 1))};
      if (l.key.empty()) {
        throw SpecError{"line " + std::to_string(no) + ": empty key before '='"};
      }
      if (!seen.insert(l.key).second) {
        throw SpecError{"line " + std::to_string(no) + ": duplicate key '" +
                        l.key + "'"};
      }
      lines.push_back(std::move(l));
    }
  }

  const bool paper_mode = std::any_of(lines.begin(), lines.end(), [](const KvLine& l) {
    return l.key.rfind("paper.", 0) == 0;
  });
  const bool custom_mode = std::any_of(lines.begin(), lines.end(), [](const KvLine& l) {
    return l.key == "hops" || l.key.rfind("hop.", 0) == 0;
  });
  if (paper_mode && custom_mode) {
    throw SpecError{
        "spec mixes paper.* keys with hops/hop.* keys; use one form "
        "(paper.* for the Fig. 4 parameterization, hops/hop.* for a custom path)"};
  }
  if (!paper_mode && !custom_mode) {
    throw SpecError{
        "spec declares no path: set either 'hops = N' plus hop.<i>.* keys, "
        "or paper.* keys (see docs/SCENARIOS.md)"};
  }

  ScenarioSpec spec;
  PaperPathConfig pcfg;

  int hop_count = 0;
  if (custom_mode) {
    const auto hops_line = std::find_if(lines.begin(), lines.end(),
                                        [](const KvLine& l) { return l.key == "hops"; });
    if (hops_line == lines.end()) {
      throw SpecError{"hop.* keys present but 'hops = N' is missing"};
    }
    hop_count = parse_int(*hops_line);
    if (hop_count < 1 || hop_count > 64) {
      fail(*hops_line, "must be in [1, 64], got " + hops_line->value);
    }
    spec.hops.resize(static_cast<std::size_t>(hop_count));
  }
  std::vector<bool> sources_set(static_cast<std::size_t>(std::max(hop_count, 0)));

  for (const KvLine& l : lines) {
    if (l.key == "name") {
      if (l.value.empty()) fail(l, "must not be empty");
      if (l.value.find_first_not_of(
              "abcdefghijklmnopqrstuvwxyz0123456789-_") != std::string::npos) {
        fail(l, "preset names use lowercase letters, digits, '-' and '_'; got '" +
                    l.value + "'");
      }
      spec.name = l.value;
    } else if (l.key == "description") {
      spec.description = l.value;
    } else if (l.key == "engine") {
      if (l.value == "v1") {
        spec.engine = EngineVersion::kV1;
      } else if (l.value == "v2") {
        spec.engine = EngineVersion::kV2;
      } else {
        fail(l, "unknown engine '" + l.value + "' (expected v1 or v2; see "
                "docs/ENGINE.md)");
      }
    } else if (l.key == "seed") {
      spec.seed = parse_u64(l);
    } else if (l.key == "warmup_s") {
      const double s = parse_num(l);
      if (s < 0.0) fail(l, "must not be negative, got " + l.value);
      spec.warmup = Duration::seconds(s);
    } else if (l.key == "hops") {
      // consumed above
    } else if (l.key.rfind("paper.", 0) == 0) {
      const std::string field = l.key.substr(6);
      if (field == "hops") {
        pcfg.hops = parse_int(l);
      } else if (field == "tight_capacity_mbps") {
        pcfg.tight_capacity = Rate::mbps(parse_num(l));
      } else if (field == "tight_utilization") {
        pcfg.tight_utilization = parse_num(l);
      } else if (field == "beta") {
        pcfg.beta = parse_num(l);
      } else if (field == "nontight_utilization") {
        pcfg.nontight_utilization = parse_num(l);
      } else if (field == "traffic") {
        const TrafficModel m = parse_model(l);
        if (m == TrafficModel::kOnOff || m == TrafficModel::kRamp ||
            m == TrafficModel::kNone) {
          fail(l, "the paper parameterization supports poisson|pareto|constant; "
                  "use a custom hop list for onoff/ramp traffic");
        }
        pcfg.model = renewal_of(m);
      } else if (field == "pareto_alpha") {
        pcfg.pareto_alpha = parse_num(l);
      } else if (field == "sources_per_link") {
        pcfg.sources_per_link = parse_int(l);
      } else if (field == "total_prop_delay_ms") {
        pcfg.total_prop_delay = Duration::milliseconds(parse_num(l));
      } else if (field == "buffer_ms") {
        const double ms = parse_num(l);
        if (ms <= 0.0) fail(l, "must be positive, got " + l.value);
        pcfg.buffer_drain = Duration::milliseconds(ms);
      } else {
        fail(l, "unknown paper key (expected hops, tight_capacity_mbps, "
                "tight_utilization, beta, nontight_utilization, traffic, "
                "pareto_alpha, sources_per_link, total_prop_delay_ms, buffer_ms)");
      }
    } else if (l.key.rfind("hop.", 0) == 0) {
      const auto dot = l.key.find('.', 4);
      if (dot == std::string::npos) {
        fail(l, "expected hop.<index>.<field>");
      }
      const KvLine idx_line{l.no, l.key, l.key.substr(4, dot - 4)};
      char* end = nullptr;
      const long idx = std::strtol(idx_line.value.c_str(), &end, 10);
      if (end == idx_line.value.c_str() || *end != '\0' || idx < 0) {
        fail(l, "expected hop.<index>.<field> with a non-negative index");
      }
      if (idx >= hop_count) {
        fail(l, "hop index " + std::to_string(idx) + " out of range (hops = " +
                    std::to_string(hop_count) + ")");
      }
      HopDecl& hop = spec.hops[static_cast<std::size_t>(idx)];
      const std::string field = l.key.substr(dot + 1);
      if (field == "capacity_mbps") {
        hop.capacity = Rate::mbps(parse_num(l));
      } else if (field == "delay_ms") {
        hop.delay = Duration::milliseconds(parse_num(l));
      } else if (field == "buffer_ms") {
        hop.buffer_drain = Duration::milliseconds(parse_num(l));
      } else if (field == "traffic.model") {
        hop.traffic.model = parse_model(l);
        if ((hop.traffic.model == TrafficModel::kOnOff ||
             hop.traffic.model == TrafficModel::kRamp) &&
            !sources_set[static_cast<std::size_t>(idx)]) {
          hop.traffic.sources = 1;
        }
      } else if (field == "traffic.utilization") {
        hop.traffic.utilization = parse_num(l);
      } else if (field == "traffic.sources") {
        hop.traffic.sources = parse_int(l);
        sources_set[static_cast<std::size_t>(idx)] = true;
      } else if (field == "traffic.pareto_alpha") {
        hop.traffic.pareto_alpha = parse_num(l);
      } else if (field == "traffic.peak_utilization") {
        hop.traffic.peak_utilization = parse_num(l);
      } else if (field == "traffic.mean_burst_kb") {
        hop.traffic.mean_burst_kb = parse_num(l);
      } else if (field == "traffic.burst_alpha") {
        hop.traffic.burst_alpha = parse_num(l);
      } else if (field == "traffic.end_utilization") {
        hop.traffic.end_utilization = parse_num(l);
      } else if (field == "traffic.ramp_start_s") {
        hop.traffic.ramp_start_s = parse_num(l);
      } else if (field == "traffic.ramp_end_s") {
        hop.traffic.ramp_end_s = parse_num(l);
      } else if (field == "traffic.ramp_back_start_s") {
        hop.traffic.ramp_back_start_s = parse_num(l);
      } else if (field == "traffic.ramp_back_end_s") {
        hop.traffic.ramp_back_end_s = parse_num(l);
      } else if (field == "traffic.mix") {
        hop.traffic.mix = parse_mix(l);
      } else {
        fail(l, "unknown hop field '" + field +
                "' (expected capacity_mbps, delay_ms, buffer_ms, or traffic.{"
                "model, utilization, sources, pareto_alpha, peak_utilization, "
                "mean_burst_kb, burst_alpha, end_utilization, ramp_start_s, "
                "ramp_end_s, ramp_back_start_s, ramp_back_end_s, mix})");
      }
    } else {
      fail(l, "unknown key (expected name, description, engine, seed, "
              "warmup_s, hops, hop.<i>.*, or paper.*)");
    }
  }

  if (spec.name.empty()) {
    throw SpecError{"spec is missing 'name = <preset-name>'"};
  }

  for (const auto& [no, body] : flow_lines) {
    spec.flows.push_back(parse_flow_line(no, body));
  }
  for (const auto& [no, body] : impair_lines) {
    spec.impairments.push_back(parse_impair_line(no, body));
  }

  if (paper_mode) {
    pcfg.seed = spec.seed;
    pcfg.warmup = spec.warmup;
    ScenarioSpec out = from_paper(spec.name, spec.description, pcfg);
    out.engine = spec.engine;
    out.flows = std::move(spec.flows);
    out.impairments = std::move(spec.impairments);
    out.validate();
    return out;
  }

  // A model without a load is almost certainly a forgotten key; fail with
  // the fix rather than silently generating no traffic.
  for (std::size_t i = 0; i < spec.hops.size(); ++i) {
    const TrafficSpec& t = spec.hops[i].traffic;
    if (t.model != TrafficModel::kNone && t.model != TrafficModel::kOnOff &&
        t.model != TrafficModel::kRamp && t.utilization == 0.0) {
      fail_hop(i, "traffic.utilization",
               "traffic.model = " + std::string{to_string(t.model)} +
                   " but no load is set; set hop." + std::to_string(i) +
                   ".traffic.utilization, or model = none");
    }
  }

  spec.validate();
  return spec;
}

void ScenarioSpec::validate() const {
  if (name.empty()) throw SpecError{"spec is missing a name"};
  std::size_t hop_count = 0;
  if (paper) {
    validate_paper(*paper);
    hop_count = static_cast<std::size_t>(paper->hops);
  } else {
    if (hops.empty()) throw SpecError{"spec has no hops"};
    if (warmup < Duration::zero()) throw SpecError{"warmup_s must not be negative"};
    for (std::size_t i = 0; i < hops.size(); ++i) validate_hop(i, hops[i]);
    hop_count = hops.size();
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    validate_flow(i, flows[i], hop_count);
  }
  std::set<std::size_t> impaired_hops;
  for (std::size_t i = 0; i < impairments.size(); ++i) {
    validate_impair(i, impairments[i], hop_count);
    if (!impaired_hops.insert(impairments[i].hop).second) {
      fail_impair(i, "hop",
                  "hop " + std::to_string(impairments[i].hop) +
                      " already has an impair line; merge the knobs into one");
    }
  }
}

std::string ScenarioSpec::to_text() const {
  std::string out;
  out += "name = " + name + "\n";
  if (!description.empty()) out += "description = " + description + "\n";
  // v1 is implicit: emitting the line only for v2 keeps every pre-engine
  // preset text, golden spec file, and shard round-trip byte-identical.
  if (engine == EngineVersion::kV2) out += "engine = v2\n";
  out += "seed = " + std::to_string(seed) + "\n";
  out += "warmup_s = " + fmt(warmup.secs()) + "\n";
  if (paper) {
    const PaperPathConfig& p = *paper;
    out += "paper.hops = " + std::to_string(p.hops) + "\n";
    out += "paper.tight_capacity_mbps = " + fmt(p.tight_capacity.mbits_per_sec()) + "\n";
    out += "paper.tight_utilization = " + fmt(p.tight_utilization) + "\n";
    out += "paper.beta = " + fmt(p.beta) + "\n";
    out += "paper.nontight_utilization = " + fmt(p.nontight_utilization) + "\n";
    out += "paper.traffic = " + std::string{to_string(model_of(p.model))} + "\n";
    out += "paper.pareto_alpha = " + fmt(p.pareto_alpha) + "\n";
    out += "paper.sources_per_link = " + std::to_string(p.sources_per_link) + "\n";
    out += "paper.total_prop_delay_ms = " + fmt(p.total_prop_delay.millis()) + "\n";
    out += "paper.buffer_ms = " + fmt(p.buffer_drain.millis()) + "\n";
    for (const FlowSpec& f : flows) {
      out += flow_to_text(f, static_cast<std::size_t>(p.hops));
    }
    for (const ImpairSpec& imp : impairments) out += impair_to_text(imp);
    return out;
  }
  out += "hops = " + std::to_string(hops.size()) + "\n";
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const HopDecl& h = hops[i];
    const std::string pre = "hop." + std::to_string(i) + ".";
    out += pre + "capacity_mbps = " + fmt(h.capacity.mbits_per_sec()) + "\n";
    out += pre + "delay_ms = " + fmt(h.delay.millis()) + "\n";
    out += pre + "buffer_ms = " + fmt(h.buffer_drain.millis()) + "\n";
    const TrafficSpec& t = h.traffic;
    out += pre + "traffic.model = " + std::string{to_string(t.model)} + "\n";
    if (t.model == TrafficModel::kNone) continue;
    out += pre + "traffic.utilization = " + fmt(t.utilization) + "\n";
    out += pre + "traffic.sources = " + std::to_string(t.sources) + "\n";
    out += pre + "traffic.mix = " + mix_to_text(t.mix) + "\n";
    if (t.model == TrafficModel::kPareto) {
      out += pre + "traffic.pareto_alpha = " + fmt(t.pareto_alpha) + "\n";
    } else if (t.model == TrafficModel::kOnOff) {
      out += pre + "traffic.peak_utilization = " + fmt(t.peak_utilization) + "\n";
      out += pre + "traffic.mean_burst_kb = " + fmt(t.mean_burst_kb) + "\n";
      out += pre + "traffic.burst_alpha = " + fmt(t.burst_alpha) + "\n";
    } else if (t.model == TrafficModel::kRamp) {
      out += pre + "traffic.end_utilization = " + fmt(t.end_utilization) + "\n";
      out += pre + "traffic.ramp_start_s = " + fmt(t.ramp_start_s) + "\n";
      out += pre + "traffic.ramp_end_s = " + fmt(t.ramp_end_s) + "\n";
      if (t.has_ramp_back()) {
        out += pre + "traffic.ramp_back_start_s = " + fmt(t.ramp_back_start_s) + "\n";
        out += pre + "traffic.ramp_back_end_s = " + fmt(t.ramp_back_end_s) + "\n";
      }
    }
  }
  for (const FlowSpec& f : flows) out += flow_to_text(f, hops.size());
  for (const ImpairSpec& imp : impairments) out += impair_to_text(imp);
  return out;
}

ScenarioSpec ScenarioSpec::with_load(double util) const {
  if (util < 0.0 || util >= 1.0) {
    throw SpecError{"with_load: utilization must be in [0, 1), got " + fmt(util)};
  }
  if (paper) {
    PaperPathConfig p = *paper;
    p.tight_utilization = util;
    ScenarioSpec out = from_paper(name, description, p);
    out.engine = engine;
    out.flows = flows;
    out.impairments = impairments;
    out.warmup = warmup;
    out.seed = seed;
    return out;
  }
  ScenarioSpec out = *this;
  const std::size_t tight = tight_hop();
  if (out.hops[tight].traffic.model == TrafficModel::kNone) {
    throw SpecError{"with_load: tight hop " + std::to_string(tight) +
                    " has traffic.model = none; nothing to sweep"};
  }
  out.hops[tight].traffic.utilization = util;
  return out;
}

std::size_t ScenarioSpec::tight_hop() const {
  if (paper) {
    // Testbed's convention: the middle hop, regardless of beta ties.
    return static_cast<std::size_t>(paper->hops / 2);
  }
  std::size_t best = 0;
  double best_avail = hops[0].capacity.bits_per_sec() * (1.0 - initial_util(hops[0]));
  for (std::size_t i = 1; i < hops.size(); ++i) {
    const double avail = hops[i].capacity.bits_per_sec() * (1.0 - initial_util(hops[i]));
    if (avail < best_avail) {
      best = i;
      best_avail = avail;
    }
  }
  return best;
}

Rate ScenarioSpec::avail_bw() const {
  // For paper specs use the paper's own formula: bit-for-bit the truth
  // value the figure benches compare coverage against.
  if (paper) return paper->tight_avail_bw();
  const std::size_t tight = tight_hop();
  return hops[tight].capacity * (1.0 - initial_util(hops[tight]));
}

Rate ScenarioSpec::final_avail_bw() const {
  if (paper) return paper->tight_avail_bw();
  Rate best = Rate::mbps(1e12);
  for (const auto& h : hops) {
    // A wave returns to its pre-ramp load; a one-way ramp holds its end
    // load.
    const double u = h.traffic.model == TrafficModel::kRamp &&
                             !h.traffic.has_ramp_back()
                         ? h.traffic.end_utilization
                         : initial_util(h);
    best = std::min(best, h.capacity * (1.0 - u));
  }
  return best;
}

bool ScenarioSpec::nonstationary() const {
  return std::any_of(hops.begin(), hops.end(), [](const HopDecl& h) {
    return h.traffic.model == TrafficModel::kRamp;
  });
}

namespace {

/// Translate a validated FlowSpec into the workload layer's config.
tcp::SegmentFlowConfig flow_config(const FlowSpec& f) {
  tcp::SegmentFlowConfig cfg;
  cfg.segment = sim::Segment{f.first_hop, f.last_hop};
  cfg.tcp.mss_bytes = f.mss_bytes;
  cfg.tcp.cc = f.cc;
  if (f.rwnd.has_value()) cfg.tcp.advertised_window = *f.rwnd;
  cfg.reverse_delay = Duration::milliseconds(f.reverse_ms);
  cfg.start = Duration::seconds(f.start_s);
  if (f.stop_s.has_value()) cfg.stop = Duration::seconds(*f.stop_s);
  if (f.on_s.has_value()) cfg.on_period = Duration::seconds(*f.on_s);
  if (f.off_s.has_value()) cfg.off_period = Duration::seconds(*f.off_s);
  return cfg;
}

/// The same FlowSpec as the fluid backend's config (field-for-field twin
/// of flow_config, so either backend sees the identical shape).
sim::FluidTcpConfig fluid_flow_config(const FlowSpec& f) {
  sim::FluidTcpConfig cfg;
  cfg.segment = sim::Segment{f.first_hop, f.last_hop};
  cfg.mss_bytes = f.mss_bytes;
  cfg.cc = f.cc;
  if (f.rwnd.has_value()) cfg.advertised_window = *f.rwnd;
  cfg.reverse_delay = Duration::milliseconds(f.reverse_ms);
  cfg.start = Duration::seconds(f.start_s);
  if (f.stop_s.has_value()) cfg.stop = Duration::seconds(*f.stop_s);
  if (f.on_s.has_value()) cfg.on_period = Duration::seconds(*f.on_s);
  if (f.off_s.has_value()) cfg.off_period = Duration::seconds(*f.off_s);
  return cfg;
}

}  // namespace

ScenarioInstance::ScenarioInstance(ScenarioSpec spec) : spec_{std::move(spec)} {
  spec_.validate();
  // Expand `flow` entries (count=N becomes N flows) against whichever
  // backend carries the path. A spec without flows builds no flow state at
  // all, so pre-flow scenarios stay bit-identical.
  auto build_flows = [this] {
    const bool fluid_engine = spec_.engine == EngineVersion::kV2;
    for (const FlowSpec& f : spec_.flows) {
      for (int c = 0; c < f.count; ++c) {
        // Under v2 a `flow tcp` entry is natively a fluid rate source
        // (the links run in fluid mode, so a packet-mode flow there pays
        // per-segment events against fluid queues); `mode=packet` opts
        // back into the packet-accurate Reno connection.
        if (fluid_engine && f.mode != FlowSpec::Mode::kPacket) {
          flows_.push_back(std::make_unique<sim::FluidTcpSource>(
              simulator(), path(), fluid_flow_config(f)));
        } else {
          flows_.push_back(std::make_unique<tcp::SegmentTcpFlow>(
              simulator(), path(), flow_config(f)));
        }
      }
    }
  };
  // Impairments install after the path exists, identically for both
  // backends. Links without an impair entry never get an impairment RNG, so
  // unimpaired specs stay bit-identical to pre-impairment builds.
  auto apply_impairments = [this] {
    for (const ImpairSpec& imp : spec_.impairments) {
      sim::LinkImpairments li;
      li.loss = imp.loss;
      li.dup = imp.dup;
      li.reorder = Duration::milliseconds(imp.reorder_ms);
      li.seed = imp.seed.has_value() ? *imp.seed
                                     : derive_impair_seed(spec_.seed, imp.hop);
      path().link(imp.hop).set_impairments(li);
    }
  };
  const bool v2 = spec_.engine == EngineVersion::kV2;
  if (spec_.paper && !v2) {
    PaperPathConfig cfg = *spec_.paper;
    cfg.seed = spec_.seed;
    cfg.warmup = spec_.warmup;
    testbed_ = std::make_unique<Testbed>(std::move(cfg));
    tight_index_ = testbed_->tight_index();
    apply_impairments();
    build_flows();
    return;
  }

  sim_ = std::make_unique<sim::Simulator>();
  std::vector<sim::HopSpec> hop_specs;
  hop_specs.reserve(spec_.hops.size());
  for (const HopDecl& h : spec_.hops) {
    hop_specs.push_back(
        sim::HopSpec{h.capacity, h.delay, h.capacity.bytes_in(h.buffer_drain)});
  }
  path_ = std::make_unique<sim::Path>(*sim_, std::move(hop_specs));
  tight_index_ = spec_.tight_hop();

  if (v2) {
    build_v2_traffic();
    apply_impairments();
    build_flows();
    return;
  }

  // Seed derivation mirrors Testbed: one fork per traffic-carrying hop, in
  // hop order, then per-source forks inside the generator. Hops without
  // traffic consume no randomness, so adding an unloaded hop leaves the
  // other hops' streams untouched.
  Rng rng{spec_.seed};
  for (std::size_t i = 0; i < spec_.hops.size(); ++i) {
    const TrafficSpec& t = spec_.hops[i].traffic;
    sim::Link& link = path_->link(i);
    const Rate mean = link.capacity() * t.utilization;
    switch (t.model) {
      case TrafficModel::kNone:
        traffic_.push_back(nullptr);
        break;
      case TrafficModel::kPoisson:
      case TrafficModel::kPareto:
      case TrafficModel::kConstant: {
        if (mean <= Rate::zero()) {
          traffic_.push_back(nullptr);
          break;
        }
        traffic_.push_back(std::make_unique<sim::TrafficAggregate>(
            *sim_, link, mean, t.sources, renewal_of(t.model), t.mix, rng.fork(),
            t.pareto_alpha));
        break;
      }
      case TrafficModel::kOnOff: {
        Rng hop_rng = rng.fork();
        const double n = static_cast<double>(t.sources);
        sim::OnOffParams params;
        params.peak_rate = link.capacity() * t.peak_utilization / n;
        params.mean_burst = DataSize::kilobytes(t.mean_burst_kb);
        params.burst_alpha = t.burst_alpha;
        std::vector<std::unique_ptr<sim::TrafficGen>> members;
        members.reserve(static_cast<std::size_t>(t.sources));
        for (int s = 0; s < t.sources; ++s) {
          members.push_back(std::make_unique<sim::OnOffSource>(
              *sim_, link, mean / n, params, t.mix, hop_rng.fork()));
        }
        traffic_.push_back(std::make_unique<sim::GenGroup>(std::move(members)));
        break;
      }
      case TrafficModel::kRamp: {
        Rng hop_rng = rng.fork();
        const double n = static_cast<double>(t.sources);
        sim::RampParams params;
        params.start_rate = mean / n;
        params.end_rate = link.capacity() * t.end_utilization / n;
        params.ramp_start = Duration::seconds(t.ramp_start_s);
        params.ramp_end = Duration::seconds(t.ramp_end_s);
        if (t.has_ramp_back()) {
          // The wave returns to the pre-ramp load.
          params.back_rate = mean / n;
          params.back_start = Duration::seconds(t.ramp_back_start_s);
          params.back_end = Duration::seconds(t.ramp_back_end_s);
        }
        std::vector<std::unique_ptr<sim::TrafficGen>> members;
        members.reserve(static_cast<std::size_t>(t.sources));
        for (int s = 0; s < t.sources; ++s) {
          members.push_back(std::make_unique<sim::RampLoadSource>(
              *sim_, link, params, t.mix, hop_rng.fork()));
        }
        traffic_.push_back(std::make_unique<sim::GenGroup>(std::move(members)));
        break;
      }
    }
  }
  apply_impairments();
  build_flows();
}

void ScenarioInstance::build_v2_traffic() {
  // Every link runs in fluid mode under v2 — including unloaded ones, so a
  // probe or TCP packet costs one scheduled event per hop instead of two,
  // with packet-on-packet FIFO queueing still exact (Link::accept_fluid).
  for (std::size_t i = 0; i < path_->hop_count(); ++i) {
    path_->link(i).enable_fluid_mode();
  }
  // CounterRng streams are keyed (scenario seed, hop, source), so draws are
  // order-independent: unlike the v1 fork() chain, adding or removing a
  // hop's traffic never perturbs another hop's sequence.
  const auto stream_id = [](std::size_t hop, int source) {
    return (static_cast<std::uint64_t>(hop) << 20) |
           static_cast<std::uint64_t>(source);
  };
  for (std::size_t i = 0; i < spec_.hops.size(); ++i) {
    const TrafficSpec& t = spec_.hops[i].traffic;
    sim::Link& link = path_->link(i);
    const Rate mean = link.capacity() * t.utilization;
    switch (t.model) {
      case TrafficModel::kNone:
        traffic_.push_back(nullptr);
        break;
      case TrafficModel::kPoisson:
      case TrafficModel::kPareto:
      case TrafficModel::kConstant:
        // A renewal process offered at lambda is, in the fluid view,
        // exactly the constant rate lambda = u * C of the paper's Section
        // III-A model (fluid::FluidLink): zero events, zero draws. The
        // sources/pareto_alpha knobs only shape packet-scale burstiness,
        // which fluid service averages out by construction.
        if (mean <= Rate::zero()) {
          traffic_.push_back(nullptr);
        } else {
          traffic_.push_back(
              std::make_unique<sim::FluidConstantSource>(*sim_, link, mean));
        }
        break;
      case TrafficModel::kOnOff: {
        // Burst structure survives fluid service (it lives on timescales
        // the workload variable resolves), so each source keeps its own
        // ON/OFF process — as fluid rate segments.
        const double n = static_cast<double>(t.sources);
        sim::OnOffParams params;
        params.peak_rate = link.capacity() * t.peak_utilization / n;
        params.mean_burst = DataSize::kilobytes(t.mean_burst_kb);
        params.burst_alpha = t.burst_alpha;
        std::vector<std::unique_ptr<sim::TrafficGen>> members;
        members.reserve(static_cast<std::size_t>(t.sources));
        for (int s = 0; s < t.sources; ++s) {
          members.push_back(std::make_unique<sim::FluidOnOffSource>(
              *sim_, link, mean / n, params,
              CounterRng{spec_.seed, stream_id(i, s)}));
        }
        traffic_.push_back(std::make_unique<sim::GenGroup>(std::move(members)));
        break;
      }
      case TrafficModel::kRamp: {
        // The ramp profile is deterministic in fluid form (v1's randomness
        // only jitters arrivals around it), and rate contributions add, so
        // one source carries the hop's whole aggregate.
        sim::RampParams params;
        params.start_rate = mean;
        params.end_rate = link.capacity() * t.end_utilization;
        params.ramp_start = Duration::seconds(t.ramp_start_s);
        params.ramp_end = Duration::seconds(t.ramp_end_s);
        if (t.has_ramp_back()) {
          params.back_rate = mean;
          params.back_start = Duration::seconds(t.ramp_back_start_s);
          params.back_end = Duration::seconds(t.ramp_back_end_s);
        }
        traffic_.push_back(
            std::make_unique<sim::FluidRampSource>(*sim_, link, params));
        break;
      }
    }
  }
}

ScenarioInstance::~ScenarioInstance() = default;

sim::Simulator& ScenarioInstance::simulator() {
  return testbed_ ? testbed_->simulator() : *sim_;
}

sim::Path& ScenarioInstance::path() {
  return testbed_ ? testbed_->path() : *path_;
}

DataSize ScenarioInstance::flow_bytes_acked() const {
  DataSize total{};
  for (const auto& f : flows_) total += f->bytes_acked();
  return total;
}

void ScenarioInstance::start() {
  // Flows launch first so a start_s of zero begins exactly at traffic
  // start; their events interleave with cross traffic during the warmup.
  for (auto& f : flows_) f->launch();
  if (testbed_) {
    testbed_->start();
    return;
  }
  for (auto& t : traffic_) {
    if (t) t->start();
  }
  sim_->run_for(spec_.warmup);
}

}  // namespace pathload::scenario
