#include "scenario/service_curve.hpp"

#include <algorithm>

namespace pathload::scenario {
namespace {

/// Worst-case long-run utilization of a hop's declared traffic: for ramp
/// hops the worse of the two plateaus (the curve must floor the whole
/// run), for everything else the long-run utilization.
double worst_utilization(const TrafficSpec& t) {
  if (t.model == TrafficModel::kNone) return 0.0;
  if (t.model == TrafficModel::kRamp) {
    return std::max(t.utilization, t.end_utilization);
  }
  return t.utilization;
}

/// Burst allowance of one hop's cross traffic, in bytes: how much data the
/// declared sources can park ahead of a probe beyond their long-run rate.
/// Renewal sources contribute a packet in flight each, scaled by the
/// heavy-tail factor alpha/(alpha-1) for Pareto interarrivals; on/off
/// sources contribute their mean Pareto burst each (same tail scaling on
/// the burst-size shape).
DataSize hop_burst(const TrafficSpec& t) {
  const double sources = static_cast<double>(std::max(t.sources, 1));
  const double mean_packet = t.mix.mean_bytes();
  switch (t.model) {
    case TrafficModel::kNone:
      return DataSize{};
    case TrafficModel::kOnOff: {
      const double tail = t.burst_alpha / (t.burst_alpha - 1.0);
      return DataSize::kilobytes(t.mean_burst_kb * tail * sources);
    }
    case TrafficModel::kPareto: {
      const double tail = t.pareto_alpha / (t.pareto_alpha - 1.0);
      return DataSize::bytes(
          static_cast<std::int64_t>(mean_packet * tail * sources));
    }
    case TrafficModel::kPoisson:
    case TrafficModel::kConstant:
    case TrafficModel::kRamp:
      return DataSize::bytes(static_cast<std::int64_t>(mean_packet * sources));
  }
  return DataSize{};
}

}  // namespace

ServiceCurve hop_leftover_curve(const HopDecl& hop) {
  const double u = worst_utilization(hop.traffic);
  ServiceCurve curve;
  curve.rate = hop.capacity * (1.0 - u);
  // Latency: propagation delay, plus the time the leftover rate needs to
  // work off the cross-traffic burst allowance, plus one MTU of
  // store-and-forward serialization at line rate.
  Duration latency = hop.delay + hop.capacity.transmission_time(DataSize::bytes(1500));
  if (curve.rate > Rate::zero()) {
    latency += curve.rate.transmission_time(hop_burst(hop.traffic));
  }
  curve.latency = latency;
  return curve;
}

ServiceCurveOracle service_curve_oracle(const ScenarioSpec& spec) {
  spec.validate();
  ServiceCurveOracle out;
  bool first = true;
  DataSize burst{};
  for (const HopDecl& hop : spec.hops) {
    const ServiceCurve c = hop_leftover_curve(hop);
    out.curve = first ? c : out.curve.convolve(c);
    first = false;
    burst += hop_burst(hop.traffic);
  }
  out.avail_bw = out.curve.rate;
  out.burst = burst;
  return out;
}

}  // namespace pathload::scenario
