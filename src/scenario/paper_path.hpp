#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fluid/fluid_model.hpp"
#include "sim/monitor.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace pathload::scenario {

/// The simulation topology of the paper's Fig. 4: an H-hop path whose
/// middle hop is the tight link (capacity Ct, utilization ut) while all
/// other hops share capacity Cx and utilization ux. Each hop carries its
/// own one-hop cross traffic from `sources_per_link` independent sources.
///
/// The *path tightness factor* beta = Ax / At (Eq. 10) sets how close the
/// non-tight links' avail-bw is to the tight link's: the non-tight capacity
/// is derived as Cx = beta * At / (1 - ux). beta = 1 with ux = ut makes
/// every link a tight link (the Fig. 7 stress case).
struct PaperPathConfig {
  int hops{3};
  Rate tight_capacity{Rate::mbps(10)};
  double tight_utilization{0.6};
  double beta{2.0};
  double nontight_utilization{0.6};

  sim::Interarrival model{sim::Interarrival::kPareto};
  double pareto_alpha{1.9};
  int sources_per_link{10};
  sim::PacketSizeMix size_mix{sim::PacketSizeMix::paper_mix()};

  /// End-to-end propagation delay, split evenly across hops (paper: 50 ms).
  Duration total_prop_delay{Duration::milliseconds(50)};
  /// Reverse-path delay for ACK/echo traffic (uncongested).
  Duration reverse_delay{Duration::milliseconds(50)};
  /// Per-link buffer as a drain time at link capacity ("sufficiently
  /// buffered to avoid losses"): buffer_bytes = C * buffer_drain.
  Duration buffer_drain{Duration::milliseconds(500)};

  std::uint64_t seed{1};
  /// Virtual time to run cross traffic before measuring, so queues reach
  /// steady state.
  Duration warmup{Duration::seconds(2)};

  Rate tight_avail_bw() const { return tight_capacity * (1.0 - tight_utilization); }
  Rate nontight_capacity() const {
    return tight_avail_bw() * beta / (1.0 - nontight_utilization);
  }
};

/// A ready-to-measure simulated network: simulator + path + cross traffic
/// + a utilization monitor on the tight link. One Testbed per measurement
/// run keeps runs statistically independent and reproducible by seed.
class Testbed {
 public:
  explicit Testbed(PaperPathConfig cfg);

  sim::Simulator& simulator() { return sim_; }
  sim::Path& path() { return *path_; }
  const PaperPathConfig& config() const { return cfg_; }

  std::size_t tight_index() const { return tight_index_; }
  sim::Link& tight_link() { return path_->link(tight_index_); }

  /// Configured (long-term average) end-to-end avail-bw: Ct * (1 - ut).
  Rate configured_avail_bw() const { return cfg_.tight_avail_bw(); }

  /// The matching stationary fluid model (for analytic cross-checks).
  fluid::FluidPath fluid() const;

  /// Start cross traffic and run the warmup period.
  void start();

  /// Attach an MRTG-style monitor to the tight link (must be called before
  /// readings are needed; windows start at the current virtual time).
  sim::UtilizationMonitor& monitor_tight_link(Duration window);

 private:
  PaperPathConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Path> path_;
  std::size_t tight_index_;
  std::vector<std::unique_ptr<sim::TrafficAggregate>> traffic_;
  std::vector<std::unique_ptr<sim::UtilizationMonitor>> monitors_;
};

}  // namespace pathload::scenario
