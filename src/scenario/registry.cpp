#include "scenario/registry.hpp"

namespace pathload::scenario {

void Registry::add(ScenarioSpec spec) {
  spec.validate();
  if (find(spec.name) != nullptr) {
    throw SpecError{"registry already has a preset named '" + spec.name + "'"};
  }
  entries_.push_back(std::move(spec));
}

const ScenarioSpec* Registry::find(std::string_view name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const ScenarioSpec& Registry::at(std::string_view name) const {
  if (const ScenarioSpec* s = find(name)) return *s;
  std::string msg = "unknown preset '" + std::string{name} + "'; known presets:";
  for (const auto& e : entries_) msg += " " + e.name;
  throw SpecError{msg};
}

namespace {

Registry make_builtin() {
  Registry reg;

  // The paper's Fig. 4 simulation topology with its Section V-A defaults:
  // 3 hops, tight middle link Ct = 10 Mb/s at ut = 0.6 (A = 4 Mb/s),
  // beta = 2, Pareto(1.9) cross traffic from 10 sources per hop. The 1 s
  // warmup is the figure benches' setting; it is part of the preset so a
  // `scenario_runner` sweep reproduces the figures byte-for-byte.
  {
    PaperPathConfig cfg;
    cfg.warmup = Duration::seconds(1);
    reg.add(ScenarioSpec::from_paper(
        "paper-path",
        "Fig. 4 topology: 3 hops, tight 10 Mb/s middle link at 60% load, "
        "beta = 2, Pareto(1.9) cross traffic",
        cfg));
  }

  // Same path with smooth (Poisson) cross traffic — the other half of every
  // smooth-vs-bursty comparison in the paper (Figs. 5, 11).
  {
    PaperPathConfig cfg;
    cfg.model = sim::Interarrival::kExponential;
    cfg.warmup = Duration::seconds(1);
    reg.add(ScenarioSpec::from_paper(
        "paper-path-poisson",
        "Fig. 4 topology with Poisson (smooth) cross traffic",
        cfg));
  }

  // Fig. 11's access path: a single 12.4 Mb/s hop (the paper's
  // Univ-Crete-like link) with Pareto(1.9) cross traffic from 10 sources.
  // The bench sweeps tight_utilization and seed per point on top of this
  // shared shape; the preset's 60% load is the nominal mid-range point.
  {
    PaperPathConfig cfg;
    cfg.hops = 1;
    cfg.tight_capacity = Rate::mbps(12.4);
    cfg.warmup = Duration::seconds(1);
    reg.add(ScenarioSpec::from_paper(
        "fig11-access",
        "Fig. 11 path: single 12.4 Mb/s hop, Pareto(1.9) cross traffic "
        "from 10 sources",
        cfg));
  }

  // Fig. 12's three statistical-multiplexing paths: same ~65% utilization,
  // very different capacity / source-count products (the paper's Abilene,
  // Univ-Crete, and Univ-Pireaus tight links). The bench draws the exact
  // utilization in 60-70% per point.
  {
    PaperPathConfig cfg;
    cfg.hops = 1;
    cfg.tight_capacity = Rate::mbps(155);
    cfg.tight_utilization = 0.65;
    cfg.sources_per_link = 120;
    cfg.warmup = Duration::seconds(1);
    reg.add(ScenarioSpec::from_paper(
        "fig12-abilene",
        "Fig. 12 path A: 155 Mb/s hop, 120 sources (high multiplexing)",
        cfg));
  }
  {
    PaperPathConfig cfg;
    cfg.hops = 1;
    cfg.tight_capacity = Rate::mbps(12.4);
    cfg.tight_utilization = 0.65;
    cfg.sources_per_link = 24;
    cfg.warmup = Duration::seconds(1);
    reg.add(ScenarioSpec::from_paper(
        "fig12-crete",
        "Fig. 12 path B: 12.4 Mb/s hop, 24 sources (medium multiplexing)",
        cfg));
  }
  {
    PaperPathConfig cfg;
    cfg.hops = 1;
    cfg.tight_capacity = Rate::mbps(6.1);
    cfg.tight_utilization = 0.65;
    cfg.sources_per_link = 6;
    cfg.warmup = Duration::seconds(1);
    reg.add(ScenarioSpec::from_paper(
        "fig12-pireaus",
        "Fig. 12 path C: 6.1 Mb/s hop, 6 sources (low multiplexing)",
        cfg));
  }

  // Tight link != narrow link (Section II): the first hop has the smallest
  // capacity (8 Mb/s, narrow) but is nearly idle; the middle 20 Mb/s hop
  // carries 80% load and is the tight link (A = 4 Mb/s). Capacity-measuring
  // tools report 8; the avail-bw answer is 4.
  reg.add_text(R"(
    name = tight-not-narrow
    description = narrow 8 Mb/s first hop nearly idle; tight link is the loaded 20 Mb/s middle hop (A = 4 Mb/s)
    hops = 3
    hop.0.capacity_mbps = 8
    hop.0.delay_ms = 10
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.1
    hop.1.capacity_mbps = 20
    hop.1.delay_ms = 20
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.8
    hop.2.capacity_mbps = 40
    hop.2.delay_ms = 20
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.3
  )");

  // A 5-hop path with heterogeneous capacities, latencies, multiplexing
  // degrees, and traffic models per hop — the hop-heterogeneity axis the
  // comparative-evaluation literature shows estimators are sensitive to.
  reg.add_text(R"(
    name = hetero-5hop
    description = 5 heterogeneous hops (100/34/45/10/155 Mb/s, mixed models); tight 10 Mb/s hop at 60% (A = 4 Mb/s)
    hops = 5
    hop.0.capacity_mbps = 100
    hop.0.delay_ms = 2
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.3
    hop.0.traffic.sources = 30
    hop.1.capacity_mbps = 34
    hop.1.delay_ms = 8
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.5
    hop.2.capacity_mbps = 45
    hop.2.delay_ms = 25
    hop.2.traffic.model = constant
    hop.2.traffic.utilization = 0.4
    hop.2.traffic.sources = 4
    hop.3.capacity_mbps = 10
    hop.3.delay_ms = 5
    hop.3.traffic.model = pareto
    hop.3.traffic.utilization = 0.6
    hop.4.capacity_mbps = 155
    hop.4.delay_ms = 10
    hop.4.traffic.model = poisson
    hop.4.traffic.utilization = 0.2
    hop.4.traffic.sources = 50
  )");

  // The paper path's shape, but the tight link's load arrives as heavy
  // on/off bursts (Pareto burst sizes) instead of a renewal process: the
  // short-timescale variability stress case.
  reg.add_text(R"(
    name = bursty-tight
    description = paper-path shape but the tight link's 60% load arrives in Pareto-sized on/off bursts at 95% peak
    hops = 3
    hop.0.capacity_mbps = 20
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.6
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = onoff
    hop.1.traffic.utilization = 0.6
    hop.1.traffic.peak_utilization = 0.95
    hop.1.traffic.mean_burst_kb = 30
    hop.1.traffic.burst_alpha = 1.5
    hop.2.capacity_mbps = 20
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.6
  )");

  // Non-stationary load: the tight link steps from 30% to 75% utilization
  // 15 s into the run (A drops 7 -> 2.5 Mb/s), the Section VI dynamics
  // question — does the estimate track the change?
  reg.add_text(R"(
    name = load-step
    description = tight 10 Mb/s link steps from 30% to 75% load at t = 15 s (A: 7 -> 2.5 Mb/s)
    hops = 3
    hop.0.capacity_mbps = 30
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.2
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = ramp
    hop.1.traffic.utilization = 0.3
    hop.1.traffic.end_utilization = 0.75
    hop.1.traffic.ramp_start_s = 15
    hop.1.traffic.ramp_end_s = 15
    hop.2.capacity_mbps = 30
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.2
  )");

  // Heterogeneous per-hop queue depths: the tight middle link is deeply
  // buffered (it can absorb a long SLoPS stream without loss) while the
  // outer hops have shallow buffers that clip bursts — estimators that
  // equate queueing delay with congestion misread the shallow hops.
  reg.add_text(R"(
    name = asym-buffers
    description = paper-path shape with asymmetric buffers: 40 ms shallow edges around a deeply buffered (1 s) tight link
    hops = 3
    hop.0.capacity_mbps = 20
    hop.0.delay_ms = 17
    hop.0.buffer_ms = 40
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.6
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.buffer_ms = 1000
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.6
    hop.2.capacity_mbps = 20
    hop.2.delay_ms = 16
    hop.2.buffer_ms = 40
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.6
  )");

  // Many near-tight links: an 8-hop ladder whose every hop's avail-bw sits
  // within ~12% of the tight link's (the beta -> 1 stress of Fig. 7,
  // pushed to a long path). Multiple links imprint OWD trends, so SLoPS
  // underestimates — the scenario quantifies by how much.
  reg.add_text(R"(
    name = tight-ladder-8hop
    description = 8 hops all near-tight (avail-bw 4.0-4.5 Mb/s per hop, tight first hop A = 4 Mb/s)
    hops = 8
    hop.0.capacity_mbps = 10
    hop.0.delay_ms = 6
    hop.0.traffic.model = pareto
    hop.0.traffic.utilization = 0.6
    hop.1.capacity_mbps = 10.4
    hop.1.delay_ms = 6
    hop.1.traffic.model = poisson
    hop.1.traffic.utilization = 0.6
    hop.2.capacity_mbps = 10.8
    hop.2.delay_ms = 6
    hop.2.traffic.model = pareto
    hop.2.traffic.utilization = 0.6
    hop.3.capacity_mbps = 10.2
    hop.3.delay_ms = 6
    hop.3.traffic.model = poisson
    hop.3.traffic.utilization = 0.6
    hop.4.capacity_mbps = 11
    hop.4.delay_ms = 6
    hop.4.traffic.model = pareto
    hop.4.traffic.utilization = 0.6
    hop.5.capacity_mbps = 10.6
    hop.5.delay_ms = 6
    hop.5.traffic.model = poisson
    hop.5.traffic.utilization = 0.6
    hop.6.capacity_mbps = 11.2
    hop.6.delay_ms = 6
    hop.6.traffic.model = pareto
    hop.6.traffic.utilization = 0.6
    hop.7.capacity_mbps = 10.9
    hop.7.delay_ms = 6
    hop.7.traffic.model = poisson
    hop.7.traffic.utilization = 0.6
  )");

  // Ramp-up-then-down: the tight link's load climbs 30% -> 80% over
  // t = 10..15 s (A: 7 -> 2 Mb/s), holds, then returns to 30% over
  // t = 25..30 s — the paper's Section VI dynamics question in wave form:
  // does the estimate track down *and* back up?
  reg.add_text(R"(
    name = wave-load
    description = tight 10 Mb/s link load waves 30% -> 80% -> 30% (ramps at t = 10-15 s and 25-30 s)
    hops = 3
    hop.0.capacity_mbps = 30
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.2
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = ramp
    hop.1.traffic.utilization = 0.3
    hop.1.traffic.end_utilization = 0.8
    hop.1.traffic.ramp_start_s = 10
    hop.1.traffic.ramp_end_s = 15
    hop.1.traffic.ramp_back_start_s = 25
    hop.1.traffic.ramp_back_end_s = 30
    hop.2.capacity_mbps = 30
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.2
  )");

  // Responsive background load: the paper-path shape at a light open-loop
  // load plus one greedy end-to-end TCP flow. The flow expands into
  // whatever the open-loop traffic leaves free, so the probe is no longer
  // measuring a fixed A — it is competing with an elastic flow (the
  // comparative-evaluation literature's "responsive cross traffic" axis).
  reg.add_text(R"(
    name = tcp-bg-greedy
    description = paper-path shape at 30% open-loop load plus one greedy end-to-end TCP flow (elastic competitor)
    hops = 3
    hop.0.capacity_mbps = 20
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.3
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.3
    hop.2.capacity_mbps = 20
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.3
    flow tcp hops=0-2
  )");

  // Window-limited background TCP: three rwnd-capped flows whose throughput
  // is bounded by rwnd/RTT (~1 Mb/s each at the ~100 ms base RTT) but still
  // *responsive* — RTT inflation and losses push them back, the mechanism
  // behind BTC's bandwidth stealing in Section VII.
  reg.add_text(R"(
    name = tcp-bg-rwnd-capped
    description = paper-path shape at 30% open-loop load plus 3 rwnd-capped TCP flows (~1 Mb/s each at base RTT)
    hops = 3
    hop.0.capacity_mbps = 20
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.3
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.3
    hop.2.capacity_mbps = 20
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.3
    flow tcp hops=0-2 rwnd=8 count=3
  )");

  // A greedy TCP flow that only *partially* overlaps the measured path
  // (segment 1-2: it enters just before the tight link), cycling 5 s ON /
  // 5 s OFF with a fresh connection (slow start) each burst. The probe and
  // the flow duel for the tight link: avail-bw collapses while the flow is
  // ON and recovers while it is OFF.
  reg.add_text(R"(
    name = tcp-vs-probe-duel
    description = greedy TCP on segment 1-2 cycling 5 s on / 5 s off against the prober (fresh connection each burst)
    hops = 3
    hop.0.capacity_mbps = 30
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.2
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.3
    hop.2.capacity_mbps = 30
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.2
    flow tcp hops=1-2 on_s=5 off_s=5
  )");

  // The same duel with the competitor running the model-based policy: BBR
  // paces to its delivery-rate model instead of filling the drop-tail
  // buffer, so the probe sees less self-inflicted queueing from the flow —
  // the estimator-vs-BBR matchup the delivery-rate sampler opens up.
  reg.add_text(R"(
    name = bbr-vs-probe-duel
    description = the tcp-vs-probe-duel competitor switched to cc=bbr (model-based, delivery-rate driven)
    hops = 3
    hop.0.capacity_mbps = 30
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.2
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.3
    hop.2.capacity_mbps = 30
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.2
    flow tcp hops=1-2 on_s=5 off_s=5 cc=bbr
  )");

  // The Section VII/VIII experiment path (Figs. 15-18): a single 8.2 Mb/s
  // bottleneck with ~200 ms quiescent RTT and a 180 ms drop-tail buffer,
  // mirroring the paper's Univ-Ioannina -> Univ-Delaware path. Background
  // is 5 window-limited TCP flows (~0.7 Mb/s each at the base RTT — the
  // bandwidth a BTC connection steals via RTT inflation and losses) plus
  // ~0.7 Mb/s of open-loop Pareto traffic. bench/fig15_16_btc and
  // bench/fig17_18_intrusiveness instantiate this preset.
  reg.add_text(R"(
    name = btc-path
    description = Figs. 15-18 path: 8.2 Mb/s bottleneck, 180 ms buffer, 5 rwnd-capped TCP flows + light UDP
    warmup_s = 5
    hops = 1
    hop.0.capacity_mbps = 8.2
    hop.0.delay_ms = 100
    hop.0.buffer_ms = 180
    hop.0.traffic.model = pareto
    # ~0.7 Mb/s of 8.2; 12 significant digits so the value survives the
    # to_text (%.12g) round-trip bit-exactly.
    hop.0.traffic.utilization = 0.085365853659
    hop.0.traffic.sources = 5
    flow tcp hops=0-0 rwnd=12 count=5 reverse_ms=100
  )");

  // --- Impaired presets (fault-injection matrix) -------------------------
  // Random (non-congestive) loss at the tight link: the condition the
  // paper's Section VII argues SLoPS survives (it screens lossy streams and
  // re-probes) while gap-model tools silently lose their pair/train
  // structure. 3% loss ruins roughly 1 in 4 packet-pair samples.
  reg.add_text(R"(
    name = lossy-tight
    description = paper-path shape with 3% random loss at the tight link (non-congestive loss stress)
    hops = 3
    hop.0.capacity_mbps = 20
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.6
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.6
    hop.2.capacity_mbps = 20
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.6
    impair hop=1 loss=0.03
  )");

  // Reorder jitter after the tight link: up to 2 ms of per-packet delay
  // noise, enough to swap back-to-back probes. Dispersion tools read the
  // scrambled spacings as signal; SLoPS's per-stream OWD trend medians
  // through it.
  reg.add_text(R"(
    name = reorder-jitter
    description = paper-path shape with up to 2 ms reorder jitter after the tight link (swaps back-to-back probes)
    hops = 3
    hop.0.capacity_mbps = 20
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.6
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.6
    hop.2.capacity_mbps = 20
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.6
    impair hop=2 reorder_ms=2
  )");

  // Everything at once: a flaky first hop (loss + duplication + jitter) in
  // front of the loaded tight link — the adverse-path composite the
  // comparative-evaluation literature grades tools on.
  reg.add_text(R"(
    name = flaky-path
    description = flaky first hop (2% loss, 1% duplication, 1 ms jitter) in front of the loaded tight link
    hops = 3
    hop.0.capacity_mbps = 20
    hop.0.delay_ms = 17
    hop.0.traffic.model = poisson
    hop.0.traffic.utilization = 0.6
    hop.1.capacity_mbps = 10
    hop.1.delay_ms = 17
    hop.1.traffic.model = pareto
    hop.1.traffic.utilization = 0.6
    hop.2.capacity_mbps = 20
    hop.2.delay_ms = 16
    hop.2.traffic.model = poisson
    hop.2.traffic.utilization = 0.6
    impair hop=0 loss=0.02 dup=0.01 reorder_ms=1
  )");

  return reg;
}

}  // namespace

const Registry& Registry::builtin() {
  static const Registry reg = make_builtin();
  return reg;
}

}  // namespace pathload::scenario
