#include "core/stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pathload::core {

Duration StreamSpec::send_offset(int i) const {
  if (periodic()) return period * static_cast<double>(i);
  Duration off = Duration::zero();
  const int n = std::min<int>(i, static_cast<int>(gaps.size()));
  for (int k = 0; k < n; ++k) off += gaps[static_cast<std::size_t>(k)];
  return off;
}

Rate StreamSpec::rate() const {
  if (periodic()) return Rate::bps(packet_size * 8.0 / period.secs());
  const Duration window = duration();
  if (window <= Duration::zero()) return Rate::zero();
  return Rate::bps(static_cast<double>(packet_count) * packet_size * 8.0 /
                   window.secs());
}

Duration StreamSpec::duration() const {
  if (periodic()) return period * static_cast<double>(packet_count);
  Duration total = Duration::zero();
  for (const Duration& g : gaps) total += g;
  return total;
}

StreamSpec make_stream_spec(Rate desired, const PathloadConfig& cfg) {
  if (desired <= Rate::zero()) {
    throw std::invalid_argument{"stream rate must be positive"};
  }
  desired = std::clamp(desired, cfg.min_rate, cfg.max_rate());

  StreamSpec spec;
  spec.packet_count = cfg.packets_per_stream;

  Duration period = cfg.min_period;
  double size = desired.bits_per_sec() * period.secs() / 8.0;
  if (size < cfg.min_packet_size) {
    // Low rates: fix L = Lmin and stretch the period (Section IV).
    spec.packet_size = cfg.min_packet_size;
    period = Duration::seconds(cfg.min_packet_size * 8.0 / desired.bits_per_sec());
  } else if (size > cfg.max_packet_size) {
    // High rates: fix L = Lmax and shrink the period no further than Tmin,
    // which caps the measurable rate at Lmax/Tmin.
    spec.packet_size = cfg.max_packet_size;
    period = Duration::seconds(cfg.max_packet_size * 8.0 / desired.bits_per_sec());
    period = std::max(period, cfg.min_period);
  } else {
    spec.packet_size = static_cast<int>(std::lround(size));
    // Re-derive the period from the rounded byte count so the achieved
    // rate matches `desired` as closely as possible (never below Tmin).
    period = Duration::seconds(spec.packet_size * 8.0 / desired.bits_per_sec());
    period = std::max(period, cfg.min_period);
  }
  spec.period = period;
  return spec;
}

std::vector<double> relative_owds(const StreamOutcome& outcome) {
  std::vector<double> owds;
  owds.reserve(outcome.records.size());
  if (outcome.records.empty()) return owds;
  // Subtract in integer nanoseconds before converting to double: large
  // clock offsets between hosts must cancel exactly, not up to rounding.
  const Duration base = outcome.records.front().received - outcome.records.front().sent;
  for (const auto& r : outcome.records) {
    owds.push_back(((r.received - r.sent) - base).secs());
  }
  return owds;
}

double loss_rate(const StreamOutcome& outcome, const StreamSpec& spec) {
  if (spec.packet_count <= 0) return 0.0;
  const auto received = static_cast<double>(outcome.records.size());
  return std::max(0.0, 1.0 - received / spec.packet_count);
}

ScreenResult screen_send_gaps(const StreamOutcome& outcome, const StreamSpec& spec,
                              const PathloadConfig& cfg) {
  ScreenResult result;
  if (outcome.records.size() < 2) return result;
  // A send gap is anomalous when it exceeds the nominal period by more than
  // max(T, 500 us): long enough to be a scheduling artifact (context
  // switch), not timer jitter.
  const Duration tolerance =
      spec.period + std::max(spec.period, Duration::microseconds(500));
  for (std::size_t i = 1; i < outcome.records.size(); ++i) {
    const auto gap_packets =
        outcome.records[i].seq - outcome.records[i - 1].seq;  // >1 across losses
    const Duration gap = outcome.records[i].sent - outcome.records[i - 1].sent;
    const Duration expected = spec.period * static_cast<double>(gap_packets);
    if (gap > expected + (tolerance - spec.period)) {
      ++result.anomalies;
    }
  }
  const double fraction =
      static_cast<double>(result.anomalies) / static_cast<double>(spec.packet_count);
  result.valid = fraction <= cfg.max_send_anomaly_fraction;
  return result;
}

}  // namespace pathload::core
