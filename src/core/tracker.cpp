#include "core/tracker.hpp"

#include <algorithm>

namespace pathload::core {

AvailBwTracker::AvailBwTracker(ProbeChannel& channel, Config cfg)
    : channel_{channel}, cfg_{std::move(cfg)} {}

const AvailBwTracker::Sample& AvailBwTracker::measure_once() {
  PathloadSession session{cfg_.tool};
  const TimePoint started = channel_.now();
  const PathloadResult result = session.run(channel_);

  Sample sample;
  sample.started = started;
  sample.elapsed = result.elapsed;
  sample.range = result.range;
  sample.converged = result.converged;

  const double center = result.range.center().bits_per_sec();
  ewma_bps_ = ewma_bps_.has_value()
                  ? cfg_.ewma_alpha * center + (1.0 - cfg_.ewma_alpha) * *ewma_bps_
                  : center;

  history_.push_back(sample);
  if (cfg_.history_limit > 0 && history_.size() > cfg_.history_limit) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(history_.size() - cfg_.history_limit));
  }
  return history_.back();
}

int AvailBwTracker::run_for(Duration window) {
  const TimePoint end = channel_.now() + window;
  int runs = 0;
  while (channel_.now() < end) {
    measure_once();
    ++runs;
    if (channel_.now() < end && cfg_.pause_between_runs > Duration::zero()) {
      channel_.idle(cfg_.pause_between_runs);
    }
  }
  return runs;
}

std::optional<Rate> AvailBwTracker::smoothed_center() const {
  if (!ewma_bps_.has_value()) return std::nullopt;
  return Rate::bps(*ewma_bps_);
}

std::optional<Rate> AvailBwTracker::weighted_center(Duration window) const {
  if (history_.empty()) return std::nullopt;
  const TimePoint cutoff =
      window > Duration::zero()
          ? history_.back().started + history_.back().elapsed - window
          : TimePoint::from_nanos(INT64_MIN);
  std::vector<WeightedSample> samples;
  for (const auto& s : history_) {
    if (s.started + s.elapsed <= cutoff) continue;
    samples.push_back({s.range.center().bits_per_sec(), s.elapsed});
  }
  if (samples.empty()) return std::nullopt;
  return Rate::bps(duration_weighted_average(samples));
}

std::optional<AvailBwRange> AvailBwTracker::overall_band() const {
  if (history_.empty()) return std::nullopt;
  AvailBwRange band = history_.front().range;
  for (const auto& s : history_) {
    band.low = std::min(band.low, s.range.low);
    band.high = std::max(band.high, s.range.high);
  }
  return band;
}

void AvailBwTracker::reset() {
  history_.clear();
  ewma_bps_.reset();
}

}  // namespace pathload::core
