#include "core/session.hpp"

#include <algorithm>

#include "core/trend.hpp"

namespace pathload::core {

PathloadSession::PathloadSession(ProbeChannel& channel, PathloadConfig cfg)
    : channel_{channel}, cfg_{std::move(cfg)} {}

Rate PathloadSession::initial_estimate(PathloadResult& result) {
  // A short train at the tool's maximum rate. Its dispersion at the
  // receiver is (roughly) the asymptotic dispersion rate, which lies
  // between the avail-bw and the capacity — a sound upper-bound seed.
  StreamSpec spec;
  spec.stream_id = ++next_stream_id_;
  spec.packet_count = std::min(cfg_.packets_per_stream, 20);
  spec.packet_size = cfg_.max_packet_size;
  spec.period = cfg_.min_period;
  const StreamOutcome outcome = channel_.run_stream(spec);
  ++result.streams_sent;
  result.packets_sent += outcome.sent_count;
  result.bytes_sent +=
      DataSize::bytes(static_cast<std::int64_t>(outcome.sent_count) * spec.packet_size);
  channel_.idle(std::max(channel_.rtt(), spec.duration() * 9.0));
  if (outcome.records.size() < 2) return cfg_.max_rate();
  const Duration spread = outcome.records.back().received -
                          outcome.records.front().received;
  if (spread <= Duration::zero()) return cfg_.max_rate();
  const double bits =
      static_cast<double>(outcome.records.size() - 1) * spec.packet_size * 8.0;
  return Rate::bps(bits / spread.secs());
}

PathloadResult PathloadSession::run() {
  PathloadResult result;
  const TimePoint start = channel_.now();

  Rate initial_rmax = cfg_.max_rate();
  if (cfg_.initial_rmax.has_value()) {
    initial_rmax = *cfg_.initial_rmax;
  } else {
    const Rate dispersion = initial_estimate(result);
    // The dispersion rate estimates ADR >= A; leave headroom above it so
    // the true avail-bw is strictly inside the initial search interval.
    initial_rmax = std::min(cfg_.max_rate(), dispersion * 1.25);
  }

  RateAdjuster adjuster{cfg_, initial_rmax};
  while (!adjuster.converged() && result.fleets < cfg_.max_fleets) {
    const Rate requested = adjuster.next_rate();
    const StreamSpec probe = make_stream_spec(requested, cfg_);
    const Rate actual = probe.rate();

    FleetTrace trace;
    trace.rate = actual;
    const FleetVerdict verdict = run_fleet(actual, trace, result);
    trace.verdict = verdict;
    ++result.fleets;
    adjuster.record(actual, verdict);
    result.trace.push_back(std::move(trace));
  }

  result.range = adjuster.report();
  result.converged = adjuster.converged();
  result.elapsed = channel_.now() - start;
  return result;
}

FleetVerdict PathloadSession::run_fleet(Rate rate, FleetTrace& trace,
                                        PathloadResult& result) {
  const StreamSpec base = make_stream_spec(rate, cfg_);
  // Inter-stream idle keeps the *average* probing rate at a fraction of R
  // (Section IV: <= R/10 -> idle nine stream durations) and is never below
  // the RTT, so each stream is acknowledged before the next is sent.
  const Duration idle = std::max(
      channel_.rtt(),
      base.duration() * (1.0 / cfg_.average_rate_fraction - 1.0));

  int retries_left = cfg_.max_stream_retries_per_fleet;
  int accepted = 0;  // streams that count toward the fleet's N
  bool excessive_loss_abort = false;

  while (accepted < cfg_.streams_per_fleet) {
    StreamSpec spec = base;
    spec.stream_id = ++next_stream_id_;
    const StreamOutcome outcome = channel_.run_stream(spec);
    ++result.streams_sent;
    result.packets_sent += outcome.sent_count;
    result.bytes_sent +=
        DataSize::bytes(static_cast<std::int64_t>(outcome.sent_count) * spec.packet_size);

    StreamReport report;
    report.loss = loss_rate(outcome, spec);
    const ScreenResult screen = screen_send_gaps(outcome, spec, cfg_);
    report.valid = screen.valid;
    if (report.valid && !outcome.records.empty()) {
      const auto owds = relative_owds(outcome);
      report.stats = compute_trend(owds, cfg_.trend);
      report.cls = classify_stream(report.stats, cfg_.trend);
    }

    if (report.loss > cfg_.excessive_loss) {
      // One badly lossy stream aborts the whole fleet immediately
      // (Section IV): the path is overloaded at this rate.
      trace.streams.push_back(report);
      excessive_loss_abort = true;
      break;
    }

    if (!report.valid && retries_left > 0) {
      // Screened-out stream (sender pacing anomaly): record it for the
      // trace, then re-send rather than let it dilute the fleet. The
      // fleet's verdict only counts valid streams either way.
      trace.streams.push_back(report);
      --retries_left;
      channel_.idle(idle);
      continue;
    }

    trace.streams.push_back(report);
    ++accepted;
    channel_.idle(idle);
  }

  trace.counts = count_fleet(trace.streams, cfg_);
  if (excessive_loss_abort) return FleetVerdict::kAbortedLoss;
  return judge_fleet(trace.streams, cfg_);
}

}  // namespace pathload::core
