#include "core/session.hpp"

#include <algorithm>

#include "core/trend.hpp"

namespace pathload::core {

namespace {

std::string_view verdict_label(FleetVerdict v) {
  switch (v) {
    case FleetVerdict::kAbove: return "above";
    case FleetVerdict::kBelow: return "below";
    case FleetVerdict::kGrey: return "grey";
    case FleetVerdict::kAbortedLoss: return "aborted-loss";
  }
  return "?";
}

}  // namespace

PathloadSession::PathloadSession(PathloadConfig cfg) : cfg_{std::move(cfg)} {}

Rate PathloadSession::initial_estimate(ProbeChannel& channel,
                                       PathloadResult& result) {
  // A short train at the tool's maximum rate. Its dispersion at the
  // receiver is (roughly) the asymptotic dispersion rate, which lies
  // between the avail-bw and the capacity — a sound upper-bound seed.
  StreamSpec spec;
  spec.stream_id = ++next_stream_id_;
  spec.packet_count = std::min(cfg_.packets_per_stream, 20);
  spec.packet_size = cfg_.max_packet_size;
  spec.period = cfg_.min_period;
  const StreamOutcome outcome = channel.run_stream(spec);
  ++result.streams_sent;
  result.packets_sent += outcome.sent_count;
  result.packets_lost += static_cast<std::int64_t>(outcome.sent_count) -
                         static_cast<std::int64_t>(outcome.records.size());
  result.bytes_sent +=
      DataSize::bytes(static_cast<std::int64_t>(outcome.sent_count) * spec.packet_size);
  channel.idle(std::max(channel.rtt(), spec.duration() * 9.0));
  if (outcome.records.size() < 2) return cfg_.max_rate();
  const Duration spread = outcome.records.back().received -
                          outcome.records.front().received;
  if (spread <= Duration::zero()) return cfg_.max_rate();
  const double bits =
      static_cast<double>(outcome.records.size() - 1) * spec.packet_size * 8.0;
  return Rate::bps(bits / spread.secs());
}

PathloadResult PathloadSession::run(ProbeChannel& channel) {
  PathloadResult result;
  const TimePoint start = channel.now();

  Rate initial_rmax = cfg_.max_rate();
  if (cfg_.initial_rmax.has_value()) {
    initial_rmax = *cfg_.initial_rmax;
  } else {
    const Rate dispersion = initial_estimate(channel, result);
    // The dispersion rate estimates ADR >= A; leave headroom above it so
    // the true avail-bw is strictly inside the initial search interval.
    initial_rmax = std::min(cfg_.max_rate(), dispersion * 1.25);
  }

  RateAdjuster adjuster{cfg_, initial_rmax};
  while (!adjuster.converged() && result.fleets < cfg_.max_fleets) {
    if (deadline_exceeded(channel.now() - start)) {
      // Degrade instead of overrunning: report the range as narrowed so
      // far. The grey region already makes partial ranges meaningful.
      result.hit_deadline = true;
      break;
    }
    const Rate requested = adjuster.next_rate();
    const StreamSpec probe = make_stream_spec(requested, cfg_);
    const Rate actual = probe.rate();

    FleetTrace trace;
    trace.rate = actual;
    const FleetVerdict verdict = run_fleet(channel, actual, trace, result);
    trace.verdict = verdict;
    ++result.fleets;
    adjuster.record(actual, verdict);
    result.trace.push_back(std::move(trace));
  }

  result.range = adjuster.report();
  result.converged = adjuster.converged();
  result.elapsed = channel.now() - start;
  return result;
}

FleetVerdict PathloadSession::run_fleet(ProbeChannel& channel, Rate rate,
                                        FleetTrace& trace, PathloadResult& result) {
  const StreamSpec base = make_stream_spec(rate, cfg_);
  // Inter-stream idle keeps the *average* probing rate at a fraction of R
  // (Section IV: <= R/10 -> idle nine stream durations) and is never below
  // the RTT, so each stream is acknowledged before the next is sent.
  const Duration idle = std::max(
      channel.rtt(),
      base.duration() * (1.0 / cfg_.average_rate_fraction - 1.0));

  int retries_left = cfg_.max_stream_retries_per_fleet;
  int accepted = 0;  // streams that count toward the fleet's N
  bool excessive_loss_abort = false;

  while (accepted < cfg_.streams_per_fleet) {
    StreamSpec spec = base;
    spec.stream_id = ++next_stream_id_;
    const StreamOutcome outcome = channel.run_stream(spec);
    ++result.streams_sent;
    result.packets_sent += outcome.sent_count;
    result.packets_lost += static_cast<std::int64_t>(outcome.sent_count) -
                           static_cast<std::int64_t>(outcome.records.size());
    result.bytes_sent +=
        DataSize::bytes(static_cast<std::int64_t>(outcome.sent_count) * spec.packet_size);

    StreamReport report;
    report.loss = loss_rate(outcome, spec);
    const ScreenResult screen = screen_send_gaps(outcome, spec, cfg_);
    report.valid = screen.valid;
    if (report.valid && !outcome.records.empty()) {
      const auto owds = relative_owds(outcome);
      report.stats = compute_trend(owds, cfg_.trend);
      report.cls = classify_stream(report.stats, cfg_.trend);
    }

    if (report.loss > cfg_.excessive_loss) {
      // One badly lossy stream aborts the whole fleet immediately
      // (Section IV): the path is overloaded at this rate.
      trace.streams.push_back(report);
      excessive_loss_abort = true;
      break;
    }

    if (!report.valid && retries_left > 0) {
      // Screened-out stream (sender pacing anomaly): record it for the
      // trace, then re-send rather than let it dilute the fleet. The
      // fleet's verdict only counts valid streams either way.
      trace.streams.push_back(report);
      --retries_left;
      channel.idle(idle);
      continue;
    }

    trace.streams.push_back(report);
    ++accepted;
    channel.idle(idle);
  }

  trace.counts = count_fleet(trace.streams, cfg_);
  if (excessive_loss_abort) return FleetVerdict::kAbortedLoss;
  return judge_fleet(trace.streams, cfg_);
}

std::string PathloadSession::config_text() const {
  std::string out;
  out += kv_config_line("packets_per_stream", cfg_.packets_per_stream);
  out += kv_config_line("streams_per_fleet", cfg_.streams_per_fleet);
  out += kv_config_line("fleet_fraction", cfg_.fleet_fraction);
  out += kv_config_line("omega_mbps", cfg_.omega.mbits_per_sec());
  out += kv_config_line("chi_mbps", cfg_.chi.mbits_per_sec());
  out += kv_config_line("pct_threshold", cfg_.trend.pct_threshold);
  out += kv_config_line("pdt_threshold", cfg_.trend.pdt_threshold);
  out += kv_config_line("max_fleets", cfg_.max_fleets);
  if (cfg_.initial_rmax) {
    out += kv_config_line("initial_rmax_mbps", cfg_.initial_rmax->mbits_per_sec());
  }
  return out;
}

EstimateReport PathloadSession::run(ProbeChannel& channel, Rng& /*rng*/) {
  const PathloadResult result = run(channel);
  EstimateReport report;
  report.estimator = name();
  report.quantity = EstimateReport::Quantity::kAvailBw;
  report.valid = true;
  report.is_range = true;
  report.low = result.range.low;
  report.high = result.range.high;
  report.streams_sent = result.streams_sent;
  report.packets_sent = result.packets_sent;
  report.packets_lost = result.packets_lost;
  report.bytes_sent = result.bytes_sent;
  report.elapsed = result.elapsed;
  // Outcome policy: probe loss alone never degrades pathload — SLoPS treats
  // loss as a congestion signal (aborted-loss fleets), so a converged range
  // is `ok` even on a lossy path. Only a cut-short search degrades.
  if (result.converged) {
    report.outcome = EstimateReport::Outcome::kOk;
  } else if (result.hit_deadline) {
    report.outcome = EstimateReport::Outcome::kTimeout;
    report.outcome_note = "deadline before convergence; range narrowed over " +
                          std::to_string(result.fleets) + " fleets";
  } else {
    report.outcome = EstimateReport::Outcome::kDegraded;
    report.outcome_note = "fleet cap (" + std::to_string(result.fleets) +
                          ") reached without convergence";
  }
  report.iterations.reserve(result.trace.size());
  for (const FleetTrace& fleet : result.trace) {
    EstimateReport::Iteration it;
    it.offered_mbps = fleet.rate.mbits_per_sec();
    it.note = verdict_label(fleet.verdict);
    report.iterations.push_back(std::move(it));
  }
  return report;
}

}  // namespace pathload::core
