#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::core {

/// Transmission schedule of one periodic stream: K packets of L bytes every
/// T time units, i.e. rate R = L*8/T (Section III).
struct StreamSpec {
  std::uint32_t stream_id{0};
  int packet_count{100};     ///< K
  int packet_size{200};      ///< L, bytes
  Duration period{};         ///< T
  Rate rate() const { return Rate::bps(packet_size * 8.0 / period.secs()); }
  Duration duration() const { return period * static_cast<double>(packet_count); }
};

/// Sender/receiver timestamps of one probe packet that made it across.
/// Timestamps come from each host's own clock; only differences are used,
/// so unsynchronized clocks are fine (Section IV).
struct ProbeRecord {
  std::uint32_t seq{0};
  TimePoint sent{};      ///< sender clock
  TimePoint received{};  ///< receiver clock
};

/// Everything the receiver saw of one stream.
struct StreamOutcome {
  std::vector<ProbeRecord> records;  ///< received packets in seq order
  int sent_count{0};                 ///< packets actually transmitted
};

/// Compute the stream parameters for a desired rate R under the tool
/// constraints (Section IV, "Stream Parameters"):
///   T = Tmin and L = R*T/8, but L is clamped to [Lmin, Lmax] and T is
///   stretched whenever the clamp would change the rate.
/// The achievable rate (spec.rate()) may differ slightly from `desired`
/// because L is an integer byte count.
StreamSpec make_stream_spec(Rate desired, const PathloadConfig& cfg);

/// Relative one-way delays in seconds (first received packet = 0) of the
/// received packets, in sequence order. Per-host clock offsets cancel.
std::vector<double> relative_owds(const StreamOutcome& outcome);

/// Fraction of the K packets that never arrived.
double loss_rate(const StreamOutcome& outcome, const StreamSpec& spec);

/// Result of screening a stream for sender-side rate deviations (context
/// switches): the receiver inspects the spacing of *sender* timestamps and
/// discards streams where the sender demonstrably failed to pace at T.
struct ScreenResult {
  bool valid{true};
  int anomalies{0};  ///< send gaps deviating by more than the tolerance
};
ScreenResult screen_send_gaps(const StreamOutcome& outcome, const StreamSpec& spec,
                              const PathloadConfig& cfg);

}  // namespace pathload::core
