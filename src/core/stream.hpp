#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::core {

/// Transmission schedule of one probe stream.
///
/// The default form is periodic: K packets of L bytes every T time units,
/// i.e. rate R = L*8/T (Section III). A stream may instead carry an
/// explicit per-packet gap schedule (`gaps`, one entry per inter-packet
/// spacing) — the form pathChirp's exponentially shrinking spacings need.
/// Channels honor `gaps` when present and fall back to the periodic
/// schedule otherwise, so every pre-chirp code path is unchanged.
struct StreamSpec {
  std::uint32_t stream_id{0};
  int packet_count{100};     ///< K
  int packet_size{200};      ///< L, bytes
  Duration period{};         ///< T (periodic form)
  /// Non-periodic send schedule: packet k+1 departs gaps[k] after packet k
  /// (size packet_count - 1). Empty selects the periodic form.
  std::vector<Duration> gaps;

  bool periodic() const { return gaps.empty(); }
  /// Offset of packet `i`'s departure from the first packet's.
  Duration send_offset(int i) const;
  /// Periodic: L*8/T. Gapped: the average rate over the send window.
  Rate rate() const;
  /// Periodic: K*T (the receiver-side wait convention, one trailing
  /// period included). Gapped: the send window, sum of the gaps.
  Duration duration() const;
};

/// Sender/receiver timestamps of one probe packet that made it across.
/// Timestamps come from each host's own clock; only differences are used,
/// so unsynchronized clocks are fine (Section IV).
struct ProbeRecord {
  std::uint32_t seq{0};
  TimePoint sent{};      ///< sender clock
  TimePoint received{};  ///< receiver clock
};

/// Everything the receiver saw of one stream.
struct StreamOutcome {
  std::vector<ProbeRecord> records;  ///< received packets in seq order
  int sent_count{0};                 ///< packets actually transmitted
};

/// Compute the stream parameters for a desired rate R under the tool
/// constraints (Section IV, "Stream Parameters"):
///   T = Tmin and L = R*T/8, but L is clamped to [Lmin, Lmax] and T is
///   stretched whenever the clamp would change the rate.
/// The achievable rate (spec.rate()) may differ slightly from `desired`
/// because L is an integer byte count.
StreamSpec make_stream_spec(Rate desired, const PathloadConfig& cfg);

/// Relative one-way delays in seconds (first received packet = 0) of the
/// received packets, in sequence order. Per-host clock offsets cancel.
std::vector<double> relative_owds(const StreamOutcome& outcome);

/// Fraction of the K packets that never arrived.
double loss_rate(const StreamOutcome& outcome, const StreamSpec& spec);

/// Result of screening a stream for sender-side rate deviations (context
/// switches): the receiver inspects the spacing of *sender* timestamps and
/// discards streams where the sender demonstrably failed to pace at T.
struct ScreenResult {
  bool valid{true};
  int anomalies{0};  ///< send gaps deviating by more than the tolerance
};
ScreenResult screen_send_gaps(const StreamOutcome& outcome, const StreamSpec& spec,
                              const PathloadConfig& cfg);

}  // namespace pathload::core
