#include "core/rate_adjuster.hpp"

#include <algorithm>

namespace pathload::core {

RateAdjuster::RateAdjuster(const PathloadConfig& cfg, Rate initial_rmax)
    : omega_{cfg.omega},
      chi_{cfg.chi},
      min_rate_{cfg.min_rate},
      absolute_max_{cfg.max_rate()},
      rmin_{Rate::zero()},
      rmax_{std::clamp(initial_rmax, cfg.min_rate, cfg.max_rate())} {}

Rate RateAdjuster::next_rate() const {
  if (!grey()) {
    return std::max(min_rate_, (rmin_ + rmax_) / 2.0);
  }
  const Rate low_gap = *gmin_ - rmin_;
  const Rate high_gap = rmax_ - *gmax_;
  // Probe the wider unresolved side first; each probe either tightens an
  // avail-bw bound or widens the known grey region.
  if (high_gap >= low_gap && high_gap > chi_) {
    return (*gmax_ + rmax_) / 2.0;
  }
  if (low_gap > chi_) {
    return std::max(min_rate_, (rmin_ + *gmin_) / 2.0);
  }
  if (high_gap > chi_) {
    return (*gmax_ + rmax_) / 2.0;
  }
  // Both gaps resolved; converged() is true and this value is unused.
  return (rmin_ + rmax_) / 2.0;
}

void RateAdjuster::record(Rate rate, FleetVerdict verdict) {
  switch (verdict) {
    case FleetVerdict::kAbove:
    case FleetVerdict::kAbortedLoss:
      rmax_ = std::min(rmax_, rate);
      ceiling_confirmed_ = true;
      break;
    case FleetVerdict::kBelow:
      rmin_ = std::max(rmin_, rate);
      // The binary search can only converge onto the avail-bw if the true
      // value lies inside [Rmin, Rmax]. If fleets report "below" all the
      // way up to a ceiling that no fleet ever confirmed from above, the
      // initial upper bound was too low (e.g. a dispersion estimate taken
      // in a momentary load spike): push it up.
      if (!ceiling_confirmed_ && rmax_ - rmin_ <= omega_ && rmax_ < absolute_max_) {
        rmax_ = std::min(absolute_max_, rmax_ * 1.5);
      }
      break;
    case FleetVerdict::kGrey:
      if (!grey()) {
        gmin_ = gmax_ = rate;
      } else {
        gmin_ = std::min(*gmin_, rate);
        gmax_ = std::max(*gmax_, rate);
      }
      break;
  }
  clamp_grey();
}

void RateAdjuster::clamp_grey() {
  if (!grey()) return;
  // Keep the grey region consistent with the hard bounds; bursty traffic
  // can produce verdicts that contradict an earlier grey sample, in which
  // case the stale part of the grey region is dropped.
  gmin_ = std::max(*gmin_, rmin_);
  gmax_ = std::min(*gmax_, rmax_);
  if (*gmin_ > *gmax_) {
    gmin_.reset();
    gmax_.reset();
  }
}

bool RateAdjuster::converged() const {
  if (rmax_ - rmin_ <= omega_) return true;
  if (grey()) {
    const bool low_done = (*gmin_ - rmin_) <= chi_;
    const bool high_done = (rmax_ - *gmax_) <= chi_;
    return low_done && high_done;
  }
  return false;
}

}  // namespace pathload::core
