#include "core/fleet.hpp"

#include <cmath>

namespace pathload::core {

FleetCounts count_fleet(const std::vector<StreamReport>& streams,
                        const PathloadConfig& cfg) {
  FleetCounts counts;
  for (const auto& s : streams) {
    if (s.loss > cfg.moderate_loss) ++counts.lossy;
    if (!s.valid) continue;
    ++counts.valid;
    switch (s.cls) {
      case StreamClass::kIncreasing:
        ++counts.type_i;
        break;
      case StreamClass::kNonIncreasing:
        ++counts.type_n;
        break;
      case StreamClass::kDiscard:
        ++counts.discarded;
        break;
    }
  }
  return counts;
}

FleetVerdict judge_fleet(const std::vector<StreamReport>& streams,
                         const PathloadConfig& cfg) {
  const FleetCounts counts = count_fleet(streams, cfg);
  for (const auto& s : streams) {
    if (s.loss > cfg.excessive_loss) return FleetVerdict::kAbortedLoss;
  }
  if (counts.lossy > cfg.max_moderate_lossy_streams) {
    return FleetVerdict::kAbortedLoss;
  }
  // Streams must actually vote: with too few usable streams (screening or
  // metric discards), neither direction can be asserted.
  if (counts.votes() * 2 < cfg.streams_per_fleet) {
    return FleetVerdict::kGrey;
  }
  const double needed = cfg.fleet_fraction * counts.votes();
  if (static_cast<double>(counts.type_i) >= needed) return FleetVerdict::kAbove;
  if (static_cast<double>(counts.type_n) >= needed) return FleetVerdict::kBelow;
  return FleetVerdict::kGrey;
}

}  // namespace pathload::core
