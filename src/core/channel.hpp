#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/stream.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::core {

/// The channel itself became unusable mid-run: a control operation failed,
/// the peer aborted the session, or an injected fault fired
/// (core::FaultChannel). Estimators are not expected to recover from it —
/// the guarded-run wrapper (run_guarded) converts it into a `failed`
/// EstimateReport so a matrix sweep keeps going.
class ChannelFault : public std::runtime_error {
 public:
  explicit ChannelFault(const std::string& what) : std::runtime_error{what} {}
};

/// Parameters of one greedy-TCP bulk transfer (the BTC measurement of
/// Section VII). Deliberately transport-agnostic: the channel owns the TCP
/// implementation (simulated Reno today), the spec only shapes the run.
struct BulkTransferSpec {
  Duration duration{Duration::seconds(300)};
  /// Bucketing of the receiver-side throughput series (Fig. 15).
  Duration throughput_bucket{Duration::seconds(1)};
  /// Reverse-path (ACK) delay for channels that must model it.
  Duration reverse_delay{Duration::milliseconds(100)};
};

/// One per-ACK delivery-rate sample exported by the transport's rate
/// sampler (tcp::RateSampler), in plain units so core stays free of tcp
/// types. rate = delivered / max(send_interval, ack_interval) — the
/// min(send_rate, ack_rate) guard against ACK compression. App-limited
/// samples measure the application, not the path, and must never raise a
/// bandwidth estimate.
struct DeliveryRateSample {
  double rate_mbps{0.0};
  double interval_s{0.0};          ///< the (longer) interval the rate spans
  std::int64_t delivered_bytes{0};
  bool app_limited{false};
  double at_s{0.0};                ///< ACK time relative to transfer start
};

/// What one bulk transfer achieved, as seen by the transport.
struct BulkTransferOutcome {
  DataSize bytes_acked{};          ///< cumulative payload acknowledged
  Duration elapsed{};              ///< how long the transfer actually ran
  std::vector<Rate> per_bucket;    ///< receiver-side throughput per bucket
  std::uint64_t fast_retransmits{0};
  std::uint64_t timeouts{0};
  std::vector<double> rtt_samples_secs;  ///< the connection's own RTT samples
  /// Per-ACK delivery-rate series (the passive `delivery-rate` estimator's
  /// raw input). Empty when the transport has no sampler.
  std::vector<DeliveryRateSample> rate_samples;
};

/// Optional ProbeChannel capability: run one greedy TCP connection through
/// the measured path. Implemented by `scenario::SimProbeChannel` (simulated
/// Reno); absent from `net::LiveProbeChannel` (the live tool has no TCP
/// data mover), which is why BTC cannot run there — the estimator registry
/// surfaces that as a structured capability error, not a silent fallback.
class BulkChannel {
 public:
  virtual ~BulkChannel() = default;
  virtual BulkTransferOutcome run_bulk_transfer(const BulkTransferSpec& spec) = 0;
};

/// The backend a pathload session measures through.
///
/// Two implementations exist:
///  * `scenario::SimProbeChannel` — sends streams through the discrete-event
///    simulator (the NS-experiments substrate of Section V-A);
///  * `net::LiveProbeChannel` — sends real UDP streams paced with the
///    monotonic clock, coordinated over a TCP control connection
///    (the real tool of Sections V-B through VIII).
///
/// `run_stream` has blocking semantics: it returns once the stream's
/// packets have arrived at the receiver (or were given up on). The session
/// is deliberately synchronous — pathload itself never pipelines streams
/// ("each stream is sent only when the previous stream has been
/// acknowledged, to avoid a backlog of streams in the path").
class ProbeChannel {
 public:
  virtual ~ProbeChannel() = default;

  /// Transmit one periodic stream and collect what the receiver saw.
  virtual StreamOutcome run_stream(const StreamSpec& spec) = 0;

  /// Let the path drain for `d` (inter-stream / inter-fleet idle).
  virtual void idle(Duration d) = 0;

  /// Session clock (for latency accounting). Sim time or monotonic time.
  virtual TimePoint now() = 0;

  /// Round-trip time estimate of the path; lower-bounds the idle interval.
  virtual Duration rtt() const = 0;

  /// The channel's bulk-TCP capability, or nullptr when it has none.
  /// Estimators that need it (BTC) check this; everything else ignores it.
  virtual BulkChannel* bulk() { return nullptr; }
};

}  // namespace pathload::core
