#pragma once

#include "core/stream.hpp"
#include "util/time.hpp"

namespace pathload::core {

/// The backend a pathload session measures through.
///
/// Two implementations exist:
///  * `scenario::SimProbeChannel` — sends streams through the discrete-event
///    simulator (the NS-experiments substrate of Section V-A);
///  * `net::LiveProbeChannel` — sends real UDP streams paced with the
///    monotonic clock, coordinated over a TCP control connection
///    (the real tool of Sections V-B through VIII).
///
/// `run_stream` has blocking semantics: it returns once the stream's
/// packets have arrived at the receiver (or were given up on). The session
/// is deliberately synchronous — pathload itself never pipelines streams
/// ("each stream is sent only when the previous stream has been
/// acknowledged, to avoid a backlog of streams in the path").
class ProbeChannel {
 public:
  virtual ~ProbeChannel() = default;

  /// Transmit one periodic stream and collect what the receiver saw.
  virtual StreamOutcome run_stream(const StreamSpec& spec) = 0;

  /// Let the path drain for `d` (inter-stream / inter-fleet idle).
  virtual void idle(Duration d) = 0;

  /// Session clock (for latency accounting). Sim time or monotonic time.
  virtual TimePoint now() = 0;

  /// Round-trip time estimate of the path; lower-bounds the idle interval.
  virtual Duration rtt() const = 0;
};

}  // namespace pathload::core
