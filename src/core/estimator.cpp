#include "core/estimator.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pathload::core {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string{s.substr(b, e - b)};
}

[[noreturn]] void fail_value(int line, std::string_view key,
                             const std::string& what) {
  throw EstimatorError{"line " + std::to_string(line) + ": " +
                       std::string{key} + ": " + what};
}

/// Override keys every estimator understands; consumed by
/// apply_common_overrides rather than the factories, and therefore always
/// legal in require_known.
constexpr std::string_view kUniversalKeys[] = {"deadline_s"};

bool is_universal_key(std::string_view key) {
  for (std::string_view k : kUniversalKeys) {
    if (key == k) return true;
  }
  return false;
}

}  // namespace

bool EstimateReport::covers(Rate truth, Rate point_slack) const {
  if (!valid) return false;
  if (is_range) return low <= truth && truth <= high;
  const Rate c = center();
  const Rate lo = c - point_slack;
  const Rate hi = c + point_slack;
  return lo <= truth && truth <= hi;
}

std::string kv_config_line(const char* key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s = %.12g\n", key, value);
  return buf;
}

std::string_view EstimateReport::quantity_label(Quantity q) {
  switch (q) {
    case Quantity::kAvailBw: return "avail-bw";
    case Quantity::kAdr: return "ADR";
    case Quantity::kCapacity: return "capacity";
    case Quantity::kTcpThroughput: return "tcp-throughput";
  }
  return "?";
}

std::string_view EstimateReport::outcome_label(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

KvOverrides KvOverrides::parse(std::string_view text) {
  KvOverrides out;
  std::istringstream in{std::string{text}};
  std::string raw;
  int no = 0;
  while (std::getline(in, raw)) {
    ++no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    // The CLI single-line form separates overrides with commas; each chunk
    // keeps its source line so errors stay line-numbered either way.
    std::stringstream chunks{raw};
    std::string chunk;
    while (std::getline(chunks, chunk, ',')) {
      const std::string stripped = trim(chunk);
      if (stripped.empty()) continue;
      const auto eq = stripped.find('=');
      if (eq == std::string::npos) {
        throw EstimatorError{"line " + std::to_string(no) +
                             ": expected 'key = value', got '" + stripped + "'"};
      }
      Item item{no, trim(stripped.substr(0, eq)), trim(stripped.substr(eq + 1))};
      if (item.key.empty()) {
        throw EstimatorError{"line " + std::to_string(no) + ": empty key before '='"};
      }
      if (out.find(item.key) != nullptr) {
        throw EstimatorError{"line " + std::to_string(no) + ": duplicate key '" +
                             item.key + "'"};
      }
      out.items_.push_back(std::move(item));
    }
  }
  return out;
}

const KvOverrides::Item* KvOverrides::find(std::string_view key) const {
  for (const Item& i : items_) {
    if (i.key == key) return &i;
  }
  return nullptr;
}

double KvOverrides::num(std::string_view key, double def) const {
  const Item* item = find(key);
  if (item == nullptr) return def;
  char* end = nullptr;
  const double v = std::strtod(item->value.c_str(), &end);
  if (end == item->value.c_str() || *end != '\0') {
    fail_value(item->line, key, "expected a number, got '" + item->value + "'");
  }
  return v;
}

int KvOverrides::integer(std::string_view key, int def) const {
  const Item* item = find(key);
  if (item == nullptr) return def;
  const double v = num(key, 0.0);
  const int i = static_cast<int>(v);
  if (static_cast<double>(i) != v) {
    fail_value(item->line, key, "expected an integer, got '" + item->value + "'");
  }
  return i;
}

Rate KvOverrides::mbps(std::string_view key, Rate def) const {
  if (find(key) == nullptr) return def;
  return Rate::mbps(num(key, 0.0));
}

Duration KvOverrides::millis(std::string_view key, Duration def) const {
  if (find(key) == nullptr) return def;
  return Duration::milliseconds(num(key, 0.0));
}

Duration KvOverrides::seconds(std::string_view key, Duration def) const {
  if (find(key) == nullptr) return def;
  return Duration::seconds(num(key, 0.0));
}

void KvOverrides::require_known(
    std::string_view estimator,
    std::initializer_list<std::string_view> known) const {
  for (const Item& item : items_) {
    bool ok = is_universal_key(item.key);
    for (std::string_view k : known) {
      if (item.key == k) {
        ok = true;
        break;
      }
    }
    if (ok) continue;
    std::string msg = "line " + std::to_string(item.line) + ": unknown key '" +
                      item.key + "' for estimator '" + std::string{estimator} +
                      "' (known keys:";
    for (std::string_view k : known) msg += " " + std::string{k};
    msg += ")";
    throw EstimatorError{msg};
  }
}

void EstimatorRegistry::add(Entry entry) {
  if (find(entry.name) != nullptr) {
    throw EstimatorError{"registry already has an estimator named '" +
                         entry.name + "'"};
  }
  entries_.push_back(std::move(entry));
}

const EstimatorRegistry::Entry* EstimatorRegistry::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const EstimatorRegistry::Entry& EstimatorRegistry::at(std::string_view name) const {
  if (const Entry* e = find(name)) return *e;
  std::string msg =
      "unknown estimator '" + std::string{name} + "'; known estimators:";
  for (const Entry& e : entries_) msg += " " + e.name;
  throw EstimatorError{msg};
}

std::unique_ptr<Estimator> EstimatorRegistry::make(std::string_view name,
                                                   std::string_view overrides) const {
  const Entry& entry = at(name);
  const KvOverrides kv = KvOverrides::parse(overrides);
  std::unique_ptr<Estimator> est = entry.make(kv);
  apply_common_overrides(*est, kv);
  return est;
}

void apply_common_overrides(Estimator& est, const KvOverrides& kv) {
  if (kv.has("deadline_s")) {
    const Duration d = kv.seconds("deadline_s", Duration::zero());
    if (d <= Duration::zero()) {
      throw EstimatorError{"deadline_s: must be positive"};
    }
    est.set_run_deadline(d);
  }
}

EstimateReport run_guarded(Estimator& est, ProbeChannel& channel, Rng& rng) {
  auto failed_report = [&](const char* kind, const std::string& what) {
    EstimateReport report;
    report.estimator = est.name();
    report.valid = false;
    report.outcome = EstimateReport::Outcome::kFailed;
    report.outcome_note = std::string{kind} + ": " + what;
    return report;
  };
  try {
    return est.run(channel, rng);
  } catch (const EstimatorError&) {
    throw;  // configuration/capability bug: no other seed can fix it
  } catch (const ChannelFault& f) {
    return failed_report("channel fault", f.what());
  } catch (const std::exception& e) {
    return failed_report("error", e.what());
  }
}

void classify_outcome(EstimateReport& report, bool hit_deadline,
                      double degraded_loss) {
  using Outcome = EstimateReport::Outcome;
  auto pct = [](double f) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", f * 100.0);
    return std::string{buf};
  };
  if (!report.valid) {
    report.outcome = Outcome::kFailed;
    if (report.outcome_note.empty()) {
      report.outcome_note = hit_deadline
                                ? "deadline before any usable estimate"
                                : "no usable estimate from the probes sent";
    }
    return;
  }
  if (hit_deadline) {
    report.outcome = Outcome::kTimeout;
    if (report.outcome_note.empty()) {
      report.outcome_note = "deadline cut the run short; estimate from partial data";
    }
    return;
  }
  if (report.loss_fraction() > degraded_loss) {
    report.outcome = Outcome::kDegraded;
    if (report.outcome_note.empty()) {
      report.outcome_note = pct(report.loss_fraction()) + " probe loss";
    }
    return;
  }
  report.outcome = Outcome::kOk;
}

std::string channel_support_summary(const EstimatorRegistry& reg) {
  std::string sim_names;
  std::string live_names;
  std::string live_excluded;
  for (const auto& e : reg.entries()) {
    sim_names += " " + e.name;
    if (e.needs_bulk_tcp) {
      live_excluded += (live_excluded.empty() ? "" : ", ") + e.name;
    } else {
      live_names += " " + e.name;
    }
  }
  return "estimator support by channel:\n  sim: " + sim_names + "\n  live:" +
         live_names + "  (" + live_excluded +
         " needs a bulk-TCP-capable channel, which the live channel lacks)";
}

}  // namespace pathload::core
