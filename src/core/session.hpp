#pragma once

#include <cstdint>
#include <vector>

#include "core/channel.hpp"
#include "core/config.hpp"
#include "core/estimator.hpp"
#include "core/fleet.hpp"
#include "core/rate_adjuster.hpp"
#include "core/stream.hpp"

namespace pathload::core {

/// Record of one fleet, kept for traces, tests, and the bench harnesses.
struct FleetTrace {
  Rate rate;
  FleetVerdict verdict;
  FleetCounts counts;
  std::vector<StreamReport> streams;
};

/// Outcome of a full pathload measurement.
struct PathloadResult {
  AvailBwRange range{};        ///< the reported [low, high] avail-bw range
  bool converged{false};       ///< false if the fleet cap stopped the search
  int fleets{0};
  std::int64_t streams_sent{0};
  std::int64_t packets_sent{0};
  DataSize bytes_sent{};       ///< total probe bytes injected into the path
  Duration elapsed{};          ///< wall/virtual time of the whole run
  bool hit_deadline{false};    ///< a run deadline stopped the fleet loop early
  std::int64_t packets_lost{0};  ///< probe packets sent but never received
  std::vector<FleetTrace> trace;
};

/// One end-to-end avail-bw measurement: the pathload tool's main loop.
///
/// Runs fleets of periodic streams through the channel, classifies each
/// stream's OWD trend (PCT/PDT), aggregates per-fleet verdicts with the
/// grey region, and walks the rate-adjustment search until the termination
/// resolutions (omega, chi) are met.
///
/// The session is channel-free at construction: `run(channel)` measures
/// through whatever backend it is handed, and the `Estimator` face makes
/// it one tool among equals in the comparison harness.
class PathloadSession final : public Estimator {
 public:
  explicit PathloadSession(PathloadConfig cfg = PathloadConfig{});

  /// Run the measurement to completion, with the full pathload-specific
  /// result (fleet traces). Reentrant: each call is an independent
  /// measurement.
  PathloadResult run(ProbeChannel& channel);

  // Estimator interface: the same measurement, reported uniformly.
  std::string_view name() const override { return "pathload"; }
  std::string config_text() const override;
  EstimateReport run(ProbeChannel& channel, Rng& rng) override;

  const PathloadConfig& config() const { return cfg_; }

 private:
  /// Initial dispersion probe (Section IV footnote 3 / [12]): one short
  /// maximal-rate train whose receiving rate initializes the search bounds.
  /// Its traffic is charged to `result`'s footprint accounting.
  Rate initial_estimate(ProbeChannel& channel, PathloadResult& result);

  /// Run one fleet at `rate`; fills `trace` and returns the verdict.
  FleetVerdict run_fleet(ProbeChannel& channel, Rate rate, FleetTrace& trace,
                         PathloadResult& result);

  PathloadConfig cfg_;
  std::uint32_t next_stream_id_{0};
};

}  // namespace pathload::core
