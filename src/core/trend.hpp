#pragma once

#include <span>
#include <vector>

#include "core/config.hpp"

namespace pathload::core {

/// The two complementary trend statistics of Section IV computed over the
/// (median-filtered) OWD sequence of one stream.
struct TrendStats {
  double pct{0.0};  ///< pairwise comparison test, Eq. (8); in [0, 1]
  double pdt{0.0};  ///< pairwise difference test, Eq. (9); in [-1, 1]
  int groups{0};    ///< Gamma: number of median groups analyzed
};

/// Classification of one stream (Section IV): type I (increasing OWD trend),
/// type N (non-increasing), or discarded when the two metrics conflict /
/// both abstain (kCombined mode only).
enum class StreamClass {
  kIncreasing,     ///< type I: rate R exceeded the avail-bw during the stream
  kNonIncreasing,  ///< type N
  kDiscard,        ///< metrics conflicted or abstained; stream carries no vote
};

/// Partition `owds` into Gamma = K/ceil(sqrt(K)) groups of consecutive
/// values and return each group's median (the preprocessing step that makes
/// PCT/PDT robust to outliers). With fewer than 2 groups the input is
/// returned unfiltered.
std::vector<double> median_groups(std::span<const double> owds);

/// Compute PCT (Eq. 8) and PDT (Eq. 9) over the OWD sequence, after
/// median-of-groups preprocessing if `cfg.median_filter` is set.
TrendStats compute_trend(std::span<const double> owds, const TrendConfig& cfg);

/// Apply the PCT/PDT thresholds according to cfg.mode (see TrendConfig).
StreamClass classify_stream(const TrendStats& stats, const TrendConfig& cfg);

/// Convenience: trend + classification in one call.
StreamClass classify_owds(std::span<const double> owds, const TrendConfig& cfg);

}  // namespace pathload::core
