#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/trend.hpp"

namespace pathload::core {

/// What a whole fleet of N streams at rate R said about R vs the avail-bw
/// (Section IV, "Fleets of Streams" / "Grey Region").
enum class FleetVerdict {
  kAbove,        ///< R > A: at least f*N streams showed an increasing trend
  kBelow,        ///< R < A: at least f*N streams showed no increasing trend
  kGrey,         ///< R in the grey region: the avail-bw varied around R
  kAbortedLoss,  ///< fleet aborted due to losses; treated as R > A
};

/// Per-stream analysis summary retained for traces and tests.
struct StreamReport {
  StreamClass cls{StreamClass::kDiscard};
  TrendStats stats{};
  double loss{0.0};
  bool valid{true};  ///< false: discarded by send-gap screening
};

/// Aggregate a fleet's stream reports into a verdict.
///
/// Loss rules (Section IV): any stream with loss > `excessive_loss` aborts
/// the fleet; more than `max_moderate_lossy_streams` streams above
/// `moderate_loss` also abort it. Both cases mean the fleet rate overloads
/// the path, so the verdict is kAbortedLoss (rate must come down).
///
/// Otherwise the fleet is decided by the fraction f over the streams that
/// actually cast a vote (type I or type N): screened-out and discarded
/// streams abstain. If fewer than half the fleet voted, nothing reliable
/// can be said and the verdict is grey.
FleetVerdict judge_fleet(const std::vector<StreamReport>& streams,
                         const PathloadConfig& cfg);

/// Counts used by judge_fleet, exposed for traces.
struct FleetCounts {
  int type_i{0};
  int type_n{0};
  int discarded{0};  ///< valid streams whose metrics conflicted/abstained
  int valid{0};      ///< streams that passed send-gap screening
  int lossy{0};      ///< streams above the moderate-loss threshold
  int votes() const { return type_i + type_n; }
};
FleetCounts count_fleet(const std::vector<StreamReport>& streams,
                        const PathloadConfig& cfg);

}  // namespace pathload::core
