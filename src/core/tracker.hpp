#pragma once

#include <optional>
#include <vector>

#include "core/session.hpp"
#include "util/stats.hpp"

namespace pathload::core {

/// Continuous avail-bw monitoring: repeated pathload runs over one channel,
/// with history, smoothing, and window aggregation.
///
/// This is the usage pattern behind the paper's verification experiment
/// (Fig. 10 runs pathload back-to-back for 5 minutes and compares the
/// Eq. (11) duration-weighted average against MRTG) and behind the
/// applications listed in Section IX — SLA verification, server selection,
/// overlay routing — all of which want a *time series* of avail-bw rather
/// than one number.
class AvailBwTracker {
 public:
  struct Config {
    PathloadConfig tool{};
    /// Pause between consecutive runs (keeps long-term footprint low).
    Duration pause_between_runs{Duration::seconds(1)};
    /// EWMA smoothing factor for smoothed_center() (1 = latest only).
    double ewma_alpha{0.3};
    /// Oldest samples are dropped beyond this many (0 = unbounded).
    std::size_t history_limit{0};
  };

  struct Sample {
    TimePoint started;
    Duration elapsed;
    AvailBwRange range;
    bool converged{false};
  };

  AvailBwTracker(ProbeChannel& channel, Config cfg);

  /// Run one measurement and append it to the history.
  const Sample& measure_once();

  /// Measure back-to-back (with the configured pauses) until `window` of
  /// channel time has elapsed; returns the number of runs performed.
  int run_for(Duration window);

  const std::vector<Sample>& history() const { return history_; }

  /// EWMA of range centers; nullopt before the first measurement.
  std::optional<Rate> smoothed_center() const;

  /// Eq. (11): duration-weighted average of range centers over the last
  /// `window` of history (all history if zero).
  std::optional<Rate> weighted_center(Duration window = Duration::zero()) const;

  /// The widest band seen: [min low, max high] across the history.
  std::optional<AvailBwRange> overall_band() const;

  /// Drop all history (the EWMA restarts too).
  void reset();

 private:
  ProbeChannel& channel_;
  Config cfg_;
  std::vector<Sample> history_;
  std::optional<double> ewma_bps_;
};

}  // namespace pathload::core
