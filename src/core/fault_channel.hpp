#pragma once

#include <cstdint>
#include <string>

#include "core/channel.hpp"

namespace pathload::core {

/// Deterministic fault schedule for a FaultChannel. Faults are keyed on the
/// 1-based index of the run_stream call, so a given plan always hits the
/// same streams of a given estimator — no RNG, no flakiness; a degradation
/// unit test pins exact behavior.
struct FaultPlan {
  /// Every Nth stream is "blacked out": the stream is transmitted (and the
  /// path loaded) but none of its records come back. 0 disables.
  int drop_every{0};

  /// Every Nth stream is truncated: the trailing `truncate_fraction` of its
  /// records is discarded, as if the receiver lost the tail mid-collection.
  /// 0 disables. When a stream matches both drop_every and truncate_every,
  /// the blackout wins.
  int truncate_every{0};
  double truncate_fraction{0.5};

  /// After this many successful run_stream calls the channel breaks: every
  /// further stream (and rtt()) throws ChannelFault, like a control
  /// connection dying mid-session. Negative disables.
  int fail_after_streams{-1};

  /// Stall added before every control-plane operation (run_stream, rtt),
  /// consuming channel time via the inner channel's idle — a slow or
  /// congested control path. Zero disables.
  Duration stall{};
};

/// ProbeChannel decorator that injects the faults of a FaultPlan into an
/// inner channel. Sits anywhere a real channel does, so any estimator's
/// graceful-degradation contract (partial reports, no hangs, structured
/// failure) can be unit-tested without a network or an impaired simulation.
class FaultChannel final : public ProbeChannel {
 public:
  FaultChannel(ProbeChannel& inner, FaultPlan plan)
      : inner_{inner}, plan_{plan} {}

  StreamOutcome run_stream(const StreamSpec& spec) override;
  void idle(Duration d) override { inner_.idle(d); }
  TimePoint now() override { return inner_.now(); }
  Duration rtt() const override;

  /// Bulk capability is forwarded untouched; the plan's faults model the
  /// probe/control plane, not the TCP data mover.
  BulkChannel* bulk() override { return inner_.bulk(); }

  /// Streams that went through (faulted or not) before any hard failure.
  int streams_seen() const { return streams_seen_; }
  int streams_blacked_out() const { return blacked_out_; }
  int streams_truncated() const { return truncated_; }

 private:
  ProbeChannel& inner_;
  FaultPlan plan_;
  int streams_seen_{0};
  int blacked_out_{0};
  int truncated_{0};
};

}  // namespace pathload::core
