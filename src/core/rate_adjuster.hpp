#pragma once

#include <optional>

#include "core/config.hpp"
#include "core/fleet.hpp"
#include "util/units.hpp"

namespace pathload::core {

/// Final output of a pathload run: the range [low, high] in which the
/// avail-bw process varied during the measurement.
struct AvailBwRange {
  Rate low;
  Rate high;

  Rate center() const { return (low + high) / 2.0; }
  Rate width() const { return high - low; }
  /// Relative variation metric rho of Eq. (12): range width over center.
  double relative_variation() const {
    const double c = center().bits_per_sec();
    return c > 0.0 ? width().bits_per_sec() / c : 0.0;
  }
  bool contains(Rate r) const { return low <= r && r <= high; }
};

/// The iterative rate selection of Section IV ("Rate Adjustment
/// Algorithm"): a binary search over [Rmin, Rmax] extended with grey-region
/// bounds [Gmin, Gmax].
///
/// Fleet verdicts move the bounds:
///  * kAbove (or a loss abort)  -> Rmax = R
///  * kBelow                    -> Rmin = R
///  * kGrey                     -> grow [Gmin, Gmax] to include R
/// The next fleet rate is halfway across the widest unresolved band:
/// (Rmin, Gmin) or (Gmax, Rmax) when a grey region exists, (Rmin, Rmax)
/// otherwise. The search ends when Rmax - Rmin <= omega, or when both
/// grey gaps are within chi (the grey-region resolution).
class RateAdjuster {
 public:
  RateAdjuster(const PathloadConfig& cfg, Rate initial_rmax);

  /// Rate the next fleet should probe at.
  Rate next_rate() const;

  /// Fold in a fleet verdict for a fleet that ran at `rate`.
  void record(Rate rate, FleetVerdict verdict);

  /// True once the bounds satisfy a termination condition.
  bool converged() const;

  /// The reported avail-bw range [Rmin, Rmax]. When a grey region exists
  /// the report can exceed its width by at most 2*chi (Section VI).
  AvailBwRange report() const { return {rmin_, rmax_}; }

  Rate rmin() const { return rmin_; }
  Rate rmax() const { return rmax_; }
  std::optional<Rate> gmin() const { return gmin_; }
  std::optional<Rate> gmax() const { return gmax_; }

 private:
  bool grey() const { return gmin_.has_value(); }
  void clamp_grey();

  Rate omega_;
  Rate chi_;
  Rate min_rate_;
  Rate absolute_max_;

  Rate rmin_;
  Rate rmax_;
  std::optional<Rate> gmin_;
  std::optional<Rate> gmax_;
  /// True once any fleet observed R > A at or below the current ceiling,
  /// which rules out "the truth is above Rmax" and disables expansion.
  bool ceiling_confirmed_{false};
};

}  // namespace pathload::core
