#include "core/trend.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace pathload::core {

std::vector<double> median_groups(std::span<const double> owds) {
  const std::size_t k = owds.size();
  if (k < 4) return {owds.begin(), owds.end()};
  const auto group =
      static_cast<std::size_t>(std::max(1.0, std::round(std::sqrt(static_cast<double>(k)))));
  const std::size_t gamma = k / group;
  if (gamma < 2) return {owds.begin(), owds.end()};
  std::vector<double> medians;
  medians.reserve(gamma);
  for (std::size_t g = 0; g < gamma; ++g) {
    // The last group absorbs the leftover tail so every OWD contributes.
    const std::size_t begin = g * group;
    const std::size_t end = (g + 1 == gamma) ? k : begin + group;
    medians.push_back(median(owds.subspan(begin, end - begin)));
  }
  return medians;
}

TrendStats compute_trend(std::span<const double> owds, const TrendConfig& cfg) {
  std::vector<double> filtered;
  std::span<const double> series = owds;
  if (cfg.median_filter) {
    filtered = median_groups(owds);
    series = filtered;
  }
  TrendStats stats;
  stats.groups = static_cast<int>(series.size());
  if (series.size() < 2) {
    // Nothing to compare: report a neutral "no trend".
    stats.pct = 0.5;
    stats.pdt = 0.0;
    return stats;
  }
  int increasing_pairs = 0;
  double abs_variation = 0.0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i] > series[i - 1]) ++increasing_pairs;
    abs_variation += std::abs(series[i] - series[i - 1]);
  }
  stats.pct =
      static_cast<double>(increasing_pairs) / static_cast<double>(series.size() - 1);
  const double start_to_end = series.back() - series.front();
  stats.pdt = abs_variation > 0.0 ? start_to_end / abs_variation : 0.0;
  // |start-to-end| <= sum of |steps| mathematically; floating-point
  // summation can overshoot by an ulp or two.
  stats.pdt = std::clamp(stats.pdt, -1.0, 1.0);
  return stats;
}

namespace {

/// Three-way vote of a single metric: +1 increasing, -1 non-increasing,
/// 0 ambiguous (within the band below the threshold).
int metric_vote(double value, double inc_threshold, double band) {
  if (value > inc_threshold) return 1;
  if (value < inc_threshold - band) return -1;
  return 0;
}

}  // namespace

StreamClass classify_stream(const TrendStats& stats, const TrendConfig& cfg) {
  const bool pct_increasing = stats.pct > cfg.pct_threshold;
  const bool pdt_increasing = stats.pdt > cfg.pdt_threshold;
  switch (cfg.mode) {
    case TrendConfig::Mode::kCombined: {
      const int pct = metric_vote(stats.pct, cfg.pct_threshold, cfg.pct_ambiguity_band);
      const int pdt = metric_vote(stats.pdt, cfg.pdt_threshold, cfg.pdt_ambiguity_band);
      const int total = pct + pdt;
      if (total > 0) return StreamClass::kIncreasing;      // I+I or I+ambiguous
      if (total < 0) return StreamClass::kNonIncreasing;   // N+N or N+ambiguous
      // Conflict (I vs N) or double abstention: no usable vote.
      return StreamClass::kDiscard;
    }
    case TrendConfig::Mode::kEither:
      return (pct_increasing || pdt_increasing) ? StreamClass::kIncreasing
                                                : StreamClass::kNonIncreasing;
    case TrendConfig::Mode::kPctOnly:
      return pct_increasing ? StreamClass::kIncreasing : StreamClass::kNonIncreasing;
    case TrendConfig::Mode::kPdtOnly:
      return pdt_increasing ? StreamClass::kIncreasing : StreamClass::kNonIncreasing;
  }
  return StreamClass::kDiscard;
}

StreamClass classify_owds(std::span<const double> owds, const TrendConfig& cfg) {
  return classify_stream(compute_trend(owds, cfg), cfg);
}

}  // namespace pathload::core
