#include "core/fault_channel.hpp"

#include <cstddef>

namespace pathload::core {

StreamOutcome FaultChannel::run_stream(const StreamSpec& spec) {
  if (plan_.stall > Duration::zero()) inner_.idle(plan_.stall);
  if (plan_.fail_after_streams >= 0 &&
      streams_seen_ >= plan_.fail_after_streams) {
    throw ChannelFault{"injected fault: channel failed after " +
                       std::to_string(streams_seen_) + " streams"};
  }
  // The inner stream always runs — a faulted stream still loads the path
  // and still consumes channel time, exactly like a blackout between the
  // path and the receiver would.
  StreamOutcome outcome = inner_.run_stream(spec);
  ++streams_seen_;
  if (plan_.drop_every > 0 && streams_seen_ % plan_.drop_every == 0) {
    ++blacked_out_;
    outcome.records.clear();
    return outcome;
  }
  if (plan_.truncate_every > 0 && streams_seen_ % plan_.truncate_every == 0 &&
      !outcome.records.empty()) {
    ++truncated_;
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(outcome.records.size()) *
        (1.0 - plan_.truncate_fraction));
    outcome.records.resize(keep);
  }
  return outcome;
}

Duration FaultChannel::rtt() const {
  if (plan_.fail_after_streams >= 0 &&
      streams_seen_ >= plan_.fail_after_streams) {
    throw ChannelFault{"injected fault: control operation failed after " +
                       std::to_string(streams_seen_) + " streams"};
  }
  return inner_.rtt();
}

}  // namespace pathload::core
