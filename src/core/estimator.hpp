// The unified estimator abstraction.
//
// Every bandwidth-estimation tool in this repo — pathload's SLoPS search,
// the Section II baselines (cprobe train dispersion, packet-pair capacity
// probing, TOPP, Delphi, greedy-TCP BTC), and the comparative-evaluation
// trio (Spruce's gap-model pairs, IGI/PTR's increasing-gap trains,
// pathChirp's chirps) — implements one
// interface: `Estimator::run(ProbeChannel&, Rng&)` returning a uniform
// `EstimateReport`. The interface is what makes the "any estimator × any
// scenario" cross-product possible: an estimator never knows whether its
// channel is `scenario::SimProbeChannel` or `net::LiveProbeChannel`, and
// the comparison harness (`scenario::run_matrix`) never knows which tool
// it is fanning out.
//
// `EstimatorRegistry` mirrors `scenario::Registry`: named presets with
// key=value config overrides and line-numbered, actionable errors. The
// builtin catalogue lives one layer up, in
// `baselines::builtin_estimators()`, because core cannot depend on the
// baseline implementations.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/channel.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::core {

/// An estimator could not be configured or run: unknown name, bad config
/// override, or a channel missing a required capability. Messages name the
/// offending key/line (for overrides) or list what would work (for
/// capability and lookup failures).
class EstimatorError : public std::runtime_error {
 public:
  explicit EstimatorError(const std::string& what) : std::runtime_error{what} {}
};

/// Uniform outcome of one estimator run, whatever the tool measures.
struct EstimateReport {
  /// Which quantity `low`/`high` report. The paper's Section II point:
  /// the tool families do not even answer the same question.
  enum class Quantity {
    kAvailBw,        ///< end-to-end available bandwidth (SLoPS, TOPP, Delphi)
    kAdr,            ///< asymptotic dispersion rate (cprobe trains)
    kCapacity,       ///< narrow-link capacity (packet pairs)
    kTcpThroughput,  ///< greedy-TCP bulk transfer capacity (BTC)
  };

  /// Structured degradation verdict of a run. Every run ends in exactly one
  /// state; `outcome_note` carries the diagnostic ("deadline after 3
  /// fleets", "14% probe loss", ...). The ladder is ordered by severity so
  /// matrix reducers can take a worst-of.
  enum class Outcome {
    kOk,        ///< clean run, estimate trustworthy
    kDegraded,  ///< an estimate exists but stands on lossy/partial evidence
    kTimeout,   ///< the run deadline cut the measurement short
    kFailed,    ///< no usable estimate (valid is false)
  };

  std::string estimator;  ///< registry name of the tool that produced this
  Quantity quantity{Quantity::kAvailBw};

  /// Degradation verdict + diagnostic; kOk/empty for a clean run.
  Outcome outcome{Outcome::kOk};
  std::string outcome_note;
  /// Probe-loss accounting: probe packets sent that never produced a
  /// receiver record (lost, or still in flight when the tool gave up).
  std::int64_t packets_lost{0};

  /// The estimate. Pathload reports a genuine [low, high] range
  /// (`is_range` true); every other tool reports a point (low == high).
  /// `valid` is false when the tool could not produce an estimate at all
  /// (e.g. TOPP's sweep never exceeded the avail-bw).
  bool valid{false};
  bool is_range{false};
  Rate low{};
  Rate high{};
  /// Secondary estimate, when the tool yields one (TOPP's tight-link
  /// capacity from the regression slope).
  std::optional<Rate> capacity{};

  /// Intrusiveness: probe traffic injected into the path.
  std::int64_t streams_sent{0};
  std::int64_t packets_sent{0};
  DataSize bytes_sent{};
  /// Latency: virtual (sim) or wall (live) time the measurement took.
  Duration elapsed{};

  /// Per-iteration trace: one entry per fleet (pathload), train (cprobe),
  /// offered rate (TOPP), or throughput bucket (BTC).
  struct Iteration {
    double offered_mbps{0.0};   ///< probing rate of the iteration (0 if n/a)
    double measured_mbps{0.0};  ///< what the iteration measured
    std::string note;           ///< tool-specific label (verdict, bucket, ...)
  };
  std::vector<Iteration> iterations;

  Rate center() const { return (low + high) / 2.0; }
  /// Coverage predicate for accuracy accounting: a range covers `truth`
  /// by containment; a point covers it within `point_slack`.
  bool covers(Rate truth, Rate point_slack) const;

  /// Lost fraction of the probes sent (0 when nothing was sent).
  double loss_fraction() const {
    return packets_sent > 0
               ? static_cast<double>(packets_lost) / static_cast<double>(packets_sent)
               : 0.0;
  }

  static std::string_view quantity_label(Quantity q);
  static std::string_view outcome_label(Outcome o);
};

/// One bandwidth-estimation tool, ready to run over any ProbeChannel.
///
/// Contract:
///  * `run` is a complete measurement; implementations may be stateful
///    across calls (stream-id counters) but each call stands alone.
///  * `run` must drive all probing through the channel — no backdoor to a
///    simulator — so the same estimator runs over sim and live channels.
///  * An estimator that `needs_bulk_tcp` may only be run on channels whose
///    `bulk()` is non-null; `run` throws EstimatorError otherwise. Callers
///    that want a structured error up front (the CLI, the matrix harness)
///    check the flag before running.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Registry name ("pathload", "cprobe", ...).
  virtual std::string_view name() const = 0;

  /// Config introspection: the instance's effective configuration as
  /// `key = value` lines, using exactly the keys its registry factory
  /// accepts as overrides (round-trips through EstimatorRegistry::make).
  virtual std::string config_text() const = 0;

  /// True for tools that measure by running a greedy TCP connection (BTC)
  /// rather than by sending probe streams.
  virtual bool needs_bulk_tcp() const { return false; }

  /// True for gap-model tools (Spruce, IGI) whose formula needs the
  /// bottleneck capacity a priori. Such a tool throws EstimatorError from
  /// `run` until `capacity_mbps` is configured; callers that know the path
  /// (scenario_runner driving a preset) check the flag and supply the hint
  /// up front, the way they check needs_bulk_tcp before running.
  virtual bool needs_capacity_hint() const { return false; }

  /// Run one measurement. `rng` seeds any tool-internal randomness; the
  /// current tools are deterministic given the channel, but the parameter
  /// is part of the contract so stochastic probers fit without an
  /// interface change.
  virtual EstimateReport run(ProbeChannel& channel, Rng& rng) = 0;

  /// Degradation contract, part 1: an optional per-run deadline in channel
  /// time. A tool checks `deadline_exceeded` between its probing units
  /// (streams, trains, fleets) and, once past it, stops probing and returns
  /// whatever partial report it has with Outcome::kTimeout — it never hangs
  /// and never throws for running long. Configured uniformly via the
  /// `deadline_s` override key (accepted by every registry entry).
  void set_run_deadline(Duration d) { run_deadline_ = d; }
  std::optional<Duration> run_deadline() const { return run_deadline_; }

 protected:
  /// True once `elapsed` channel time has passed the configured deadline
  /// (never true when no deadline is set).
  bool deadline_exceeded(Duration elapsed) const {
    return run_deadline_.has_value() && elapsed > *run_deadline_;
  }

 private:
  std::optional<Duration> run_deadline_{};
};

/// Parsed `key = value` estimator-config overrides.
///
/// Accepts the same line-based format as scenario specs (`#` comments,
/// each key at most once) plus a comma-separated single-line form for CLI
/// flags (`--set pairs=40,packet_size=800`). Errors are EstimatorError
/// and name the 1-based line, the key, what was expected, and what was
/// found — mirroring scenario::SpecError.
class KvOverrides {
 public:
  KvOverrides() = default;
  static KvOverrides parse(std::string_view text);

  bool empty() const { return items_.empty(); }

  /// True when `key` was given (used by callers that auto-fill a default —
  /// the CLI's capacity-hint plumbing — without overriding the user).
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Typed getters: the default when the key is absent, EstimatorError
  /// (with the line number) when the value does not parse.
  double num(std::string_view key, double def) const;
  int integer(std::string_view key, int def) const;
  Rate mbps(std::string_view key, Rate def) const;
  Duration millis(std::string_view key, Duration def) const;
  Duration seconds(std::string_view key, Duration def) const;

  /// Reject unknown keys: every present key must appear in `known`. The
  /// error names the estimator, the line, the offending key, and the full
  /// legal key list. Factories call this after consuming their keys.
  /// Universal keys every estimator accepts (`deadline_s`; consumed by
  /// apply_common_overrides, not the factory) are always allowed.
  void require_known(std::string_view estimator,
                     std::initializer_list<std::string_view> known) const;

 private:
  struct Item {
    int line{0};
    std::string key;
    std::string value;
  };
  const Item* find(std::string_view key) const;

  std::vector<Item> items_;
};

/// Render one `key = value\n` config line (%.12g), the format KvOverrides
/// parses back — the shared building block of every config_text().
std::string kv_config_line(const char* key, double value);

/// Apply the universal override keys (`deadline_s`) to a constructed
/// estimator. Called by EstimatorRegistry::make and by any harness that
/// invokes an entry's factory directly (scenario::MatrixEstimator), so the
/// keys work identically everywhere an estimator is configured.
void apply_common_overrides(Estimator& est, const KvOverrides& kv);

/// Degradation contract, part 2: run an estimator and never let an
/// exception escape a matrix cell. ChannelFault (the channel died or an
/// injected fault fired) and unexpected runtime errors become a `failed`
/// report carrying the message; EstimatorError (a configuration or
/// capability bug) stays loud, since retrying other seeds cannot fix it.
EstimateReport run_guarded(Estimator& est, ProbeChannel& channel, Rng& rng);

/// Shared outcome policy for probe-based tools: fills report.outcome and
/// outcome_note from the uniform evidence. kFailed when no estimate came
/// out, kTimeout when the deadline cut the run short, kDegraded when more
/// than `degraded_loss` of the probes were lost, else kOk. Tools with a
/// richer notion of health (pathload's convergence) set outcome directly.
void classify_outcome(EstimateReport& report, bool hit_deadline,
                      double degraded_loss = 0.02);

/// Named estimator catalogue: the estimator-side mirror of
/// scenario::Registry. Each entry is a factory taking parsed config
/// overrides, so `make("topp", "max_rate_mbps = 16")` yields a configured
/// instance and a typo'd key fails with the line and the legal keys.
class EstimatorRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Estimator>(const KvOverrides&)>;

  struct Entry {
    std::string name;
    std::string summary;        ///< one line for `--list-estimators`
    std::string quantity;       ///< what it reports ("avail-bw range", ...)
    bool needs_bulk_tcp{false}; ///< mirrored from the estimator for
                                ///< capability checks before construction
    Factory make;
    /// Mirrored from Estimator::needs_capacity_hint, again so callers can
    /// plan (auto-fill `capacity_mbps`, or skip with a structured message
    /// on a live path of unknown capacity) before construction. Declared
    /// after `make` so pre-hint aggregate initializers stay valid.
    bool needs_capacity_hint{false};
  };

  EstimatorRegistry() = default;

  /// Append an entry; throws EstimatorError on a duplicate name.
  void add(Entry entry);

  /// Lookup by name; nullptr when absent.
  const Entry* find(std::string_view name) const;

  /// Lookup by name; throws EstimatorError listing the known estimators.
  const Entry& at(std::string_view name) const;

  /// Construct a configured instance: parse `overrides` and invoke the
  /// entry's factory. All EstimatorError paths (unknown name, bad value,
  /// unknown key) originate here or inside the factory.
  std::unique_ptr<Estimator> make(std::string_view name,
                                  std::string_view overrides = {}) const;

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
};

/// Render the per-channel support catalogue ("estimator support by
/// channel: ...") that capability-mismatch errors end with: which
/// estimators run over the simulated channel, which over the live one, and
/// which are excluded from live for needing bulk TCP. One formatter so the
/// CLIs' structured errors cannot drift apart.
std::string channel_support_summary(const EstimatorRegistry& reg);

/// ProbeChannel decorator that tallies probe traffic.
///
/// Estimator adapters wrap their channel in one of these so EstimateReport
/// footprints are exact without touching the probing loops: the forwarded
/// call sequence is bit-identical to running on the inner channel
/// directly (the golden anchors in tests/baselines rely on this).
class MeteredChannel final : public ProbeChannel {
 public:
  explicit MeteredChannel(ProbeChannel& inner) : inner_{inner} {}

  StreamOutcome run_stream(const StreamSpec& spec) override {
    StreamOutcome outcome = inner_.run_stream(spec);
    ++streams_;
    packets_ += outcome.sent_count;
    received_ += static_cast<std::int64_t>(outcome.records.size());
    bytes_ += DataSize::bytes(static_cast<std::int64_t>(outcome.sent_count) *
                              spec.packet_size);
    return outcome;
  }
  void idle(Duration d) override { inner_.idle(d); }
  TimePoint now() override { return inner_.now(); }
  Duration rtt() const override { return inner_.rtt(); }
  BulkChannel* bulk() override { return inner_.bulk(); }

  std::int64_t streams() const { return streams_; }
  std::int64_t packets() const { return packets_; }
  /// Receiver records that came back (for probe-loss accounting:
  /// packets() - received() is what the path ate).
  std::int64_t received() const { return received_; }
  DataSize bytes() const { return bytes_; }

 private:
  ProbeChannel& inner_;
  std::int64_t streams_{0};
  std::int64_t packets_{0};
  std::int64_t received_{0};
  DataSize bytes_{};
};

}  // namespace pathload::core
