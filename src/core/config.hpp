#pragma once

#include <optional>

#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::core {

/// How stream OWD trends are detected (Section IV, "Detecting an Increasing
/// OWD Trend").
struct TrendConfig {
  /// PCT declares an increasing trend when the metric exceeds this
  /// (paper default 0.55; independent OWDs give an expected PCT of 0.5).
  double pct_threshold{0.55};
  /// PDT declares an increasing trend when the metric exceeds this
  /// (paper default 0.40; independent OWDs give an expected PDT of 0).
  double pdt_threshold{0.40};

  /// In kCombined mode each metric votes three ways: increasing above its
  /// threshold, non-increasing below (threshold - band), ambiguous in
  /// between. The band reproduces the released pathload's behavior, where
  /// a metric sitting near its threshold abstains instead of voting.
  double pct_ambiguity_band{0.10};
  double pdt_ambiguity_band{0.10};

  /// Which metrics participate and how.
  ///  * kCombined (default, the released tool's rule): each metric votes
  ///    I/N/ambiguous; agreement or one-sided votes decide; a conflict or
  ///    double abstention discards the stream.
  ///  * kEither: binary per-metric thresholds, stream is type I if either
  ///    metric exceeds its threshold (the ToN text's simplified wording).
  ///  * kPctOnly / kPdtOnly: single-metric binary detection, used by the
  ///    Fig. 9 sensitivity study and the metric ablation.
  enum class Mode { kCombined, kEither, kPctOnly, kPdtOnly };
  Mode mode{Mode::kCombined};

  /// Median-of-groups preprocessing (partition K OWDs into sqrt(K)-sized
  /// groups, analyze group medians). Disabled only by the robustness
  /// ablation bench.
  bool median_filter{true};
};

/// All pathload tool parameters, with the defaults the paper states.
struct PathloadConfig {
  /// K: packets per stream (paper default 100).
  int packets_per_stream{100};
  /// N: streams per fleet (paper default 12).
  int streams_per_fleet{12};
  /// f: fraction of a fleet's streams that must agree before the fleet is
  /// declared increasing/non-increasing; in between is the grey region.
  double fleet_fraction{0.7};

  /// T >= Tmin: minimum packet interspacing the end hosts can sustain.
  Duration min_period{Duration::microseconds(100)};
  /// L constraints: L >= 200 B keeps layer-2 header effects negligible;
  /// L <= MTU avoids fragmentation.
  int min_packet_size{200};
  int max_packet_size{1500};

  /// omega: avail-bw estimation resolution.
  Rate omega{Rate::mbps(1.0)};
  /// chi: grey-region resolution.
  Rate chi{Rate::mbps(1.5)};

  TrendConfig trend{};

  /// A stream with more losses than this aborts the whole fleet.
  double excessive_loss{0.10};
  /// A stream over this is "moderately lossy"; too many abort the fleet.
  double moderate_loss{0.03};
  int max_moderate_lossy_streams{3};

  /// Re-send budget for streams invalidated by send-gap screening.
  int max_stream_retries_per_fleet{6};

  /// Hard cap on fleets per session (the iterative search normally needs
  /// ~log2(range/omega) fleets; the cap bounds pathological traffic).
  int max_fleets{60};

  /// Average probing rate is kept below this fraction of the stream rate R
  /// by idling between streams (paper: 10%, i.e. idle = 9 stream durations).
  double average_rate_fraction{0.10};

  /// Lowest rate the tool will probe at.
  Rate min_rate{Rate::kbps(100)};

  /// When set, skip the initial dispersion probe and start the search with
  /// this upper bound (used by tests and some benches for determinism).
  std::optional<Rate> initial_rmax{};

  /// Fraction of send-gap anomalies (context switches etc.) above which a
  /// stream is discarded rather than analyzed.
  double max_send_anomaly_fraction{0.05};

  /// Maximum rate the sender can generate: Lmax / Tmin (Section IV).
  Rate max_rate() const {
    return Rate::bps(max_packet_size * 8.0 / min_period.secs());
  }
};

}  // namespace pathload::core
