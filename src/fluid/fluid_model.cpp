#include "fluid/fluid_model.hpp"

#include <stdexcept>

namespace pathload::fluid {

FluidPath::FluidPath(std::vector<FluidLink> links) : links_{std::move(links)} {
  if (links_.empty()) {
    throw std::invalid_argument{"FluidPath needs at least one link"};
  }
  for (const auto& l : links_) {
    if (l.cross_rate > l.capacity) {
      throw std::invalid_argument{"fluid link overloaded: cross rate > capacity"};
    }
  }
}

Rate FluidPath::avail_bw() const {
  Rate a = links_.front().avail_bw();
  for (const auto& l : links_) a = std::min(a, l.avail_bw());
  return a;
}

std::size_t FluidPath::tight_link() const {
  std::size_t idx = 0;
  for (std::size_t i = 1; i < links_.size(); ++i) {
    if (links_[i].avail_bw() < links_[idx].avail_bw()) idx = i;
  }
  return idx;
}

Rate FluidPath::capacity() const {
  Rate c = links_.front().capacity;
  for (const auto& l : links_) c = std::min(c, l.capacity);
  return c;
}

std::size_t FluidPath::narrow_link() const {
  std::size_t idx = 0;
  for (std::size_t i = 1; i < links_.size(); ++i) {
    if (links_[i].capacity < links_[idx].capacity) idx = i;
  }
  return idx;
}

std::vector<Rate> FluidPath::entry_rates(Rate input) const {
  std::vector<Rate> rates;
  rates.reserve(links_.size() + 1);
  Rate r = input;
  rates.push_back(r);
  for (const auto& l : links_) {
    if (r > l.avail_bw()) {
      // Backlogged link: the stream gets the share of capacity proportional
      // to its arrival rate (Eq. 16): R_out = R_in * C / (R_in + lambda).
      r = Rate::bps(r.bits_per_sec() * l.capacity.bits_per_sec() /
                    (r.bits_per_sec() + l.cross_rate.bits_per_sec()));
    }
    rates.push_back(r);
  }
  return rates;
}

Rate FluidPath::exit_rate(Rate input) const { return entry_rates(input).back(); }

Duration FluidPath::owd_delta_per_packet(Rate input, DataSize packet) const {
  const auto rates = entry_rates(input);
  Duration delta = Duration::zero();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const Rate in = rates[i];
    const Rate out = rates[i + 1];
    if (out < in) {
      // Eq. 22: consecutive packets leave the backlogged link with spacing
      // L/R_out but arrived spaced L/R_in; the queueing delay difference is
      // the gap growth.
      delta += out.transmission_time(packet) - in.transmission_time(packet);
    }
  }
  return delta;
}

std::vector<double> FluidPath::owd_series(Rate input, DataSize packet,
                                          int packet_count) const {
  const double slope = owd_delta_per_packet(input, packet).secs();
  std::vector<double> owd(static_cast<std::size_t>(packet_count));
  for (int k = 0; k < packet_count; ++k) {
    owd[static_cast<std::size_t>(k)] = slope * k;
  }
  return owd;
}

}  // namespace pathload::fluid
