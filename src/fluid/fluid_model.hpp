#pragma once

#include <cstddef>
#include <vector>

#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::fluid {

/// One link of the stationary fluid model of Section III-A: constant-rate
/// cross traffic lambda_i = u_i * C_i, FCFS, infinite buffers.
struct FluidLink {
  Rate capacity;
  Rate cross_rate;

  Rate avail_bw() const { return capacity - cross_rate; }
  double utilization() const { return cross_rate / capacity; }
};

/// Closed-form model of a periodic stream crossing a fluid path.
///
/// Implements the Appendix of the paper:
///  * Proposition 1 — one-way delays strictly increase iff the stream rate
///    exceeds the path avail-bw;
///  * Proposition 2 — the per-link entry/exit rate recursion (Eqs. 16-21),
///    showing the received stream rate depends on every link's capacity and
///    cross traffic, which is why train-dispersion methods (cprobe) do not
///    measure avail-bw.
///
/// Used as ground truth in tests (the packet simulator must converge to the
/// fluid predictions as packet sizes shrink) and to generate idealized OWD
/// series for the trend-detector unit tests.
class FluidPath {
 public:
  explicit FluidPath(std::vector<FluidLink> links);

  const std::vector<FluidLink>& links() const { return links_; }
  std::size_t hop_count() const { return links_.size(); }

  /// End-to-end avail-bw: min over links (Eq. 4).
  Rate avail_bw() const;
  /// Index of the tight link (first link attaining the min, footnote 2).
  std::size_t tight_link() const;
  /// End-to-end capacity: min capacity (the narrow link).
  Rate capacity() const;
  std::size_t narrow_link() const;

  /// Entry rate into each link for a stream offered at `input`:
  /// element 0 is `input`, element i the exit rate of link i-1 (Eq. 19-20).
  std::vector<Rate> entry_rates(Rate input) const;

  /// Rate at which the stream arrives at the receiver (Eq. 21 / Prop. 2).
  Rate exit_rate(Rate input) const;

  /// OWD difference between consecutive packets of size `packet` offered at
  /// `input` (Eq. 22 summed over links). Positive iff input > avail_bw()
  /// (Proposition 1); zero otherwise.
  Duration owd_delta_per_packet(Rate input, DataSize packet) const;

  /// Relative OWD series (seconds, first packet = 0) for a K-packet stream:
  /// a perfect line with slope owd_delta_per_packet.
  std::vector<double> owd_series(Rate input, DataSize packet, int packet_count) const;

 private:
  std::vector<FluidLink> links_;
};

}  // namespace pathload::fluid
