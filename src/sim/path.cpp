#include "sim/path.hpp"

#include <stdexcept>
#include <string>

namespace pathload::sim {

void FlowDemux::register_flow(std::uint32_t flow, PacketHandler* handler) {
  handlers_[flow] = handler;
}

void FlowDemux::unregister_flow(std::uint32_t flow) { handlers_.erase(flow); }

void FlowDemux::handle(const Packet& p) {
  auto it = handlers_.find(p.flow);
  if (it != handlers_.end()) {
    it->second->handle(p);
  } else {
    ++unclaimed_;
  }
}

Path::Path(Simulator& sim, std::vector<HopSpec> hops) {
  if (hops.empty()) {
    throw std::invalid_argument{"Path needs at least one hop"};
  }
  links_.reserve(hops.size());
  for (std::size_t i = 0; i < hops.size(); ++i) {
    links_.push_back(std::make_unique<Link>(sim, "link" + std::to_string(i),
                                            hops[i].capacity, hops[i].prop_delay,
                                            hops[i].buffer_limit));
  }
  junctions_.reserve(hops.size());
  for (std::size_t i = 0; i < hops.size(); ++i) {
    PacketHandler* next =
        (i + 1 < hops.size()) ? static_cast<PacketHandler*>(links_[i + 1].get())
                              : static_cast<PacketHandler*>(&egress_);
    junctions_.push_back(
        std::make_unique<Junction>(static_cast<std::uint32_t>(i), next));
    links_[i]->set_downstream(junctions_[i].get());
  }
}

Segment Path::normalized(Segment s) const {
  if (s.last == Segment::kPathEnd) s.last = links_.size() - 1;
  if (s.first > s.last || s.last >= links_.size()) {
    throw std::out_of_range{"Path: segment [" + std::to_string(s.first) + ", " +
                            std::to_string(s.last) + "] does not fit a " +
                            std::to_string(links_.size()) + "-hop path"};
  }
  return s;
}

FlowDemux& Path::segment_exit(Segment s) {
  s = normalized(s);
  if (s.last + 1 == links_.size()) return egress_;
  return junctions_[s.last]->exits();
}

std::uint32_t Path::exit_hop_value(Segment s) const {
  s = normalized(s);
  if (s.last + 1 == links_.size()) return kExitAtEgress;
  return static_cast<std::uint32_t>(s.last);
}

Rate Path::capacity() const {
  Rate min_cap = links_.front()->capacity();
  for (const auto& l : links_) min_cap = std::min(min_cap, l->capacity());
  return min_cap;
}

std::size_t Path::narrow_index() const {
  std::size_t idx = 0;
  for (std::size_t i = 1; i < links_.size(); ++i) {
    if (links_[i]->capacity() < links_[idx]->capacity()) idx = i;
  }
  return idx;
}

Duration Path::base_delay() const {
  Duration d = Duration::zero();
  for (const auto& l : links_) d += l->prop_delay();
  return d;
}

Duration Path::unloaded_transit_time(DataSize size) const {
  Duration d = base_delay();
  for (const auto& l : links_) d += l->capacity().transmission_time(size);
  return d;
}

}  // namespace pathload::sim
