#include "sim/traffic.hpp"

#include <stdexcept>

namespace pathload::sim {

PacketSizeMix::PacketSizeMix(std::vector<Bin> bins) : bins_{std::move(bins)} {
  std::vector<double> weights;
  weights.reserve(bins_.size());
  for (const auto& b : bins_) weights.push_back(b.weight);
  sampler_ = AliasSampler{weights};
}

PacketSizeMix PacketSizeMix::paper_mix() {
  return PacketSizeMix{{{40, 0.4}, {550, 0.5}, {1500, 0.1}}};
}

PacketSizeMix PacketSizeMix::fixed(std::int32_t size_bytes) {
  return PacketSizeMix{{{size_bytes, 1.0}}};
}

double PacketSizeMix::mean_bytes() const {
  double total_w = 0.0;
  double sum = 0.0;
  for (const auto& b : bins_) {
    total_w += b.weight;
    sum += b.weight * b.size_bytes;
  }
  return total_w > 0.0 ? sum / total_w : 0.0;
}

CrossTrafficSource::CrossTrafficSource(Simulator& sim, PacketHandler& target,
                                       Rate mean_rate, Interarrival model,
                                       PacketSizeMix mix, Rng rng, double pareto_alpha)
    : sim_{sim},
      target_{target},
      mean_rate_{mean_rate},
      model_{model},
      mix_{std::move(mix)},
      rng_{rng},
      pareto_alpha_{pareto_alpha},
      timer_{sim.make_timer([this] { emit_and_reschedule(); })} {
  if (mean_rate <= Rate::zero()) {
    throw std::invalid_argument{"cross traffic rate must be positive"};
  }
  if (model_ == Interarrival::kPareto && pareto_alpha_ <= 1.0) {
    // Rng::pareto used to reject this on the first draw; with the constants
    // hoisted below, reject it up front instead of livelocking on a
    // zero-or-negative interarrival.
    throw std::invalid_argument{"Pareto mean is infinite for alpha <= 1"};
  }
  mean_gap_secs_ = mix_.mean_bytes() * 8.0 / mean_rate.bits_per_sec();
  // Constants of Rng::pareto hoisted out of the per-packet path. The
  // expressions match that function operation-for-operation, so the drawn
  // sequence is bit-identical to calling it.
  pareto_xm_secs_ = mean_gap_secs_ * (pareto_alpha_ - 1.0) / pareto_alpha_;
  pareto_inv_alpha_ = 1.0 / pareto_alpha_;
}

void CrossTrafficSource::start() {
  if (running_) return;
  running_ = true;
  timer_.schedule_in(next_interarrival());
}

Duration CrossTrafficSource::next_interarrival() {
  switch (model_) {
    case Interarrival::kExponential:
      return Duration::seconds(rng_.exponential(mean_gap_secs_));
    case Interarrival::kPareto:
      return Duration::seconds(
          Rng::pareto_from_uniform(rng_.uniform(), pareto_xm_secs_, pareto_inv_alpha_));
    case Interarrival::kConstant:
      return Duration::seconds(mean_gap_secs_);
  }
  return Duration::seconds(mean_gap_secs_);
}

void CrossTrafficSource::emit_and_reschedule() {
  if (!running_) return;
  Packet p;
  p.id = sim_.next_packet_id();
  p.flow = kCrossTrafficFlow;
  p.kind = PacketKind::kCrossTraffic;
  p.size_bytes = mix_.sample(rng_);
  p.transit = false;
  p.entered = sim_.now();
  target_.handle(p);
  ++packets_sent_;
  bytes_sent_ += p.size();
  timer_.schedule_in(next_interarrival());
}

TrafficAggregate::TrafficAggregate(Simulator& sim, PacketHandler& target,
                                   Rate aggregate_rate, int num_sources,
                                   Interarrival model, PacketSizeMix mix, Rng rng,
                                   double pareto_alpha) {
  if (num_sources <= 0) {
    throw std::invalid_argument{"TrafficAggregate needs at least one source"};
  }
  const Rate per_source = aggregate_rate / static_cast<double>(num_sources);
  sources_.reserve(static_cast<std::size_t>(num_sources));
  for (int i = 0; i < num_sources; ++i) {
    sources_.push_back(std::make_unique<CrossTrafficSource>(
        sim, target, per_source, model, mix, rng.fork(), pareto_alpha));
  }
}

void TrafficAggregate::start() {
  for (auto& s : sources_) s->start();
}

void TrafficAggregate::stop() {
  for (auto& s : sources_) s->stop();
}

DataSize TrafficAggregate::bytes_sent() const {
  DataSize total{};
  for (const auto& s : sources_) total += s->bytes_sent();
  return total;
}

OnOffSource::OnOffSource(Simulator& sim, PacketHandler& target, Rate mean_rate,
                         OnOffParams params, PacketSizeMix mix, Rng rng)
    : sim_{sim},
      target_{target},
      mean_rate_{mean_rate},
      params_{params},
      mix_{std::move(mix)},
      rng_{rng},
      timer_{sim.make_timer([this] { on_timer(); })} {
  if (mean_rate <= Rate::zero()) {
    throw std::invalid_argument{"on/off traffic mean rate must be positive"};
  }
  if (params_.peak_rate <= mean_rate) {
    throw std::invalid_argument{
        "on/off peak rate must exceed the mean rate (duty cycle < 1)"};
  }
  if (params_.burst_alpha <= 1.0) {
    throw std::invalid_argument{"on/off burst sizes need Pareto alpha > 1"};
  }
  if (params_.mean_burst.byte_count() <= 0) {
    throw std::invalid_argument{"on/off mean burst size must be positive"};
  }
  const double mean_burst_bits = params_.mean_burst.bits();
  mean_off_secs_ = mean_burst_bits * (1.0 / mean_rate_.bits_per_sec() -
                                      1.0 / params_.peak_rate.bits_per_sec());
  burst_xm_bytes_ = static_cast<double>(params_.mean_burst.byte_count()) *
                    (params_.burst_alpha - 1.0) / params_.burst_alpha;
  burst_inv_alpha_ = 1.0 / params_.burst_alpha;
}

void OnOffSource::start() {
  if (running_) return;
  running_ = true;
  in_burst_ = false;
  timer_.schedule_in(off_gap());
}

Duration OnOffSource::off_gap() {
  return Duration::seconds(rng_.exponential(mean_off_secs_));
}

void OnOffSource::on_timer() {
  if (!running_) return;
  if (!in_burst_) {
    // A new burst begins now: draw its size and fall through to emit the
    // first packet immediately.
    in_burst_ = true;
    burst_remaining_bytes_ =
        Rng::pareto_from_uniform(rng_.uniform(), burst_xm_bytes_, burst_inv_alpha_);
    ++bursts_started_;
  }
  Packet p;
  p.id = sim_.next_packet_id();
  p.flow = kCrossTrafficFlow;
  p.kind = PacketKind::kCrossTraffic;
  p.size_bytes = mix_.sample(rng_);
  p.transit = false;
  p.entered = sim_.now();
  target_.handle(p);
  ++packets_sent_;
  bytes_sent_ += p.size();
  burst_remaining_bytes_ -= static_cast<double>(p.size_bytes);
  // Pace the burst at the peak rate: the next event is one serialization
  // time away, either the burst's next packet or (burst exhausted) the end
  // of the ON period, from which the exponential OFF gap runs.
  const Duration tx = params_.peak_rate.transmission_time(p.size());
  if (burst_remaining_bytes_ > 0.0) {
    timer_.schedule_in(tx);
  } else {
    in_burst_ = false;
    timer_.schedule_in(tx + off_gap());
  }
}

RampLoadSource::RampLoadSource(Simulator& sim, PacketHandler& target,
                               RampParams params, PacketSizeMix mix, Rng rng)
    : sim_{sim},
      target_{target},
      params_{params},
      mix_{std::move(mix)},
      rng_{rng},
      timer_{sim.make_timer([this] { emit_and_reschedule(); })} {
  if (params_.start_rate <= Rate::zero() || params_.end_rate <= Rate::zero()) {
    throw std::invalid_argument{"ramp traffic rates must be positive"};
  }
  if (params_.ramp_end < params_.ramp_start) {
    throw std::invalid_argument{"ramp_end must not precede ramp_start"};
  }
  if (params_.ramp_start < Duration::zero()) {
    throw std::invalid_argument{"ramp_start must not be negative"};
  }
  if (params_.back_rate) {
    if (*params_.back_rate <= Rate::zero()) {
      throw std::invalid_argument{"ramp back_rate must be positive"};
    }
    if (params_.back_start < params_.ramp_end) {
      throw std::invalid_argument{"ramp back_start must not precede ramp_end"};
    }
    if (params_.back_end < params_.back_start) {
      throw std::invalid_argument{"ramp back_end must not precede back_start"};
    }
  }
  mean_bytes_ = mix_.mean_bytes();
}

Rate RampLoadSource::rate_at(Duration elapsed) const {
  if (elapsed <= params_.ramp_start) return params_.start_rate;
  if (elapsed < params_.ramp_end) {
    const double frac = (elapsed - params_.ramp_start) /
                        (params_.ramp_end - params_.ramp_start);
    return params_.start_rate + (params_.end_rate - params_.start_rate) * frac;
  }
  if (!params_.back_rate || elapsed <= params_.back_start) return params_.end_rate;
  if (elapsed >= params_.back_end) return *params_.back_rate;
  const double frac = (elapsed - params_.back_start) /
                      (params_.back_end - params_.back_start);
  return params_.end_rate + (*params_.back_rate - params_.end_rate) * frac;
}

void RampLoadSource::start() {
  if (running_) return;
  running_ = true;
  epoch_ = sim_.now();
  timer_.schedule_in(next_gap());
}

Duration RampLoadSource::next_gap() {
  const Rate now_rate = rate_at(sim_.now() - epoch_);
  const double mean_gap = mean_bytes_ * 8.0 / now_rate.bits_per_sec();
  return Duration::seconds(rng_.exponential(mean_gap));
}

void RampLoadSource::emit_and_reschedule() {
  if (!running_) return;
  Packet p;
  p.id = sim_.next_packet_id();
  p.flow = kCrossTrafficFlow;
  p.kind = PacketKind::kCrossTraffic;
  p.size_bytes = mix_.sample(rng_);
  p.transit = false;
  p.entered = sim_.now();
  target_.handle(p);
  ++packets_sent_;
  bytes_sent_ += p.size();
  timer_.schedule_in(next_gap());
}

}  // namespace pathload::sim
