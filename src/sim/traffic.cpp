#include "sim/traffic.hpp"

#include <stdexcept>

namespace pathload::sim {

PacketSizeMix::PacketSizeMix(std::vector<Bin> bins) : bins_{std::move(bins)} {
  std::vector<double> weights;
  weights.reserve(bins_.size());
  for (const auto& b : bins_) weights.push_back(b.weight);
  sampler_ = AliasSampler{weights};
}

PacketSizeMix PacketSizeMix::paper_mix() {
  return PacketSizeMix{{{40, 0.4}, {550, 0.5}, {1500, 0.1}}};
}

PacketSizeMix PacketSizeMix::fixed(std::int32_t size_bytes) {
  return PacketSizeMix{{{size_bytes, 1.0}}};
}

double PacketSizeMix::mean_bytes() const {
  double total_w = 0.0;
  double sum = 0.0;
  for (const auto& b : bins_) {
    total_w += b.weight;
    sum += b.weight * b.size_bytes;
  }
  return total_w > 0.0 ? sum / total_w : 0.0;
}

CrossTrafficSource::CrossTrafficSource(Simulator& sim, PacketHandler& target,
                                       Rate mean_rate, Interarrival model,
                                       PacketSizeMix mix, Rng rng, double pareto_alpha)
    : sim_{sim},
      target_{target},
      mean_rate_{mean_rate},
      model_{model},
      mix_{std::move(mix)},
      rng_{rng},
      pareto_alpha_{pareto_alpha},
      timer_{sim.make_timer([this] { emit_and_reschedule(); })} {
  if (mean_rate <= Rate::zero()) {
    throw std::invalid_argument{"cross traffic rate must be positive"};
  }
  if (model_ == Interarrival::kPareto && pareto_alpha_ <= 1.0) {
    // Rng::pareto used to reject this on the first draw; with the constants
    // hoisted below, reject it up front instead of livelocking on a
    // zero-or-negative interarrival.
    throw std::invalid_argument{"Pareto mean is infinite for alpha <= 1"};
  }
  mean_gap_secs_ = mix_.mean_bytes() * 8.0 / mean_rate.bits_per_sec();
  // Constants of Rng::pareto hoisted out of the per-packet path. The
  // expressions match that function operation-for-operation, so the drawn
  // sequence is bit-identical to calling it.
  pareto_xm_secs_ = mean_gap_secs_ * (pareto_alpha_ - 1.0) / pareto_alpha_;
  pareto_inv_alpha_ = 1.0 / pareto_alpha_;
}

void CrossTrafficSource::start() {
  if (running_) return;
  running_ = true;
  timer_.schedule_in(next_interarrival());
}

Duration CrossTrafficSource::next_interarrival() {
  switch (model_) {
    case Interarrival::kExponential:
      return Duration::seconds(rng_.exponential(mean_gap_secs_));
    case Interarrival::kPareto:
      return Duration::seconds(
          Rng::pareto_from_uniform(rng_.uniform(), pareto_xm_secs_, pareto_inv_alpha_));
    case Interarrival::kConstant:
      return Duration::seconds(mean_gap_secs_);
  }
  return Duration::seconds(mean_gap_secs_);
}

void CrossTrafficSource::emit_and_reschedule() {
  if (!running_) return;
  Packet p;
  p.id = sim_.next_packet_id();
  p.flow = kCrossTrafficFlow;
  p.kind = PacketKind::kCrossTraffic;
  p.size_bytes = mix_.sample(rng_);
  p.transit = false;
  p.entered = sim_.now();
  target_.handle(p);
  ++packets_sent_;
  bytes_sent_ += p.size();
  timer_.schedule_in(next_interarrival());
}

TrafficAggregate::TrafficAggregate(Simulator& sim, PacketHandler& target,
                                   Rate aggregate_rate, int num_sources,
                                   Interarrival model, PacketSizeMix mix, Rng rng,
                                   double pareto_alpha) {
  if (num_sources <= 0) {
    throw std::invalid_argument{"TrafficAggregate needs at least one source"};
  }
  const Rate per_source = aggregate_rate / static_cast<double>(num_sources);
  sources_.reserve(static_cast<std::size_t>(num_sources));
  for (int i = 0; i < num_sources; ++i) {
    sources_.push_back(std::make_unique<CrossTrafficSource>(
        sim, target, per_source, model, mix, rng.fork(), pareto_alpha));
  }
}

void TrafficAggregate::start() {
  for (auto& s : sources_) s->start();
}

void TrafficAggregate::stop() {
  for (auto& s : sources_) s->stop();
}

DataSize TrafficAggregate::bytes_sent() const {
  DataSize total{};
  for (const auto& s : sources_) total += s->bytes_sent();
  return total;
}

}  // namespace pathload::sim
