#include "sim/traffic.hpp"

#include <stdexcept>

namespace pathload::sim {

PacketSizeMix PacketSizeMix::paper_mix() {
  return PacketSizeMix{{{40, 0.4}, {550, 0.5}, {1500, 0.1}}};
}

PacketSizeMix PacketSizeMix::fixed(std::int32_t size_bytes) {
  return PacketSizeMix{{{size_bytes, 1.0}}};
}

std::int32_t PacketSizeMix::sample(Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(bins.size());
  for (const auto& b : bins) weights.push_back(b.weight);
  return bins[rng.pick_weighted(weights)].size_bytes;
}

double PacketSizeMix::mean_bytes() const {
  double total_w = 0.0;
  double sum = 0.0;
  for (const auto& b : bins) {
    total_w += b.weight;
    sum += b.weight * b.size_bytes;
  }
  return total_w > 0.0 ? sum / total_w : 0.0;
}

CrossTrafficSource::CrossTrafficSource(Simulator& sim, PacketHandler& target,
                                       Rate mean_rate, Interarrival model,
                                       PacketSizeMix mix, Rng rng, double pareto_alpha)
    : sim_{sim},
      target_{target},
      mean_rate_{mean_rate},
      model_{model},
      mix_{std::move(mix)},
      rng_{rng},
      pareto_alpha_{pareto_alpha} {
  if (mean_rate <= Rate::zero()) {
    throw std::invalid_argument{"cross traffic rate must be positive"};
  }
  mean_gap_secs_ = mix_.mean_bytes() * 8.0 / mean_rate.bits_per_sec();
}

void CrossTrafficSource::start() {
  if (running_) return;
  running_ = true;
  sim_.schedule_in(next_interarrival(), [this] { emit_and_reschedule(); });
}

Duration CrossTrafficSource::next_interarrival() {
  switch (model_) {
    case Interarrival::kExponential:
      return Duration::seconds(rng_.exponential(mean_gap_secs_));
    case Interarrival::kPareto:
      return Duration::seconds(rng_.pareto(pareto_alpha_, mean_gap_secs_));
    case Interarrival::kConstant:
      return Duration::seconds(mean_gap_secs_);
  }
  return Duration::seconds(mean_gap_secs_);
}

void CrossTrafficSource::emit_and_reschedule() {
  if (!running_) return;
  Packet p;
  p.id = sim_.next_packet_id();
  p.flow = kCrossTrafficFlow;
  p.kind = PacketKind::kCrossTraffic;
  p.size_bytes = mix_.sample(rng_);
  p.transit = false;
  p.entered = sim_.now();
  target_.handle(p);
  ++packets_sent_;
  bytes_sent_ += p.size();
  sim_.schedule_in(next_interarrival(), [this] { emit_and_reschedule(); });
}

TrafficAggregate::TrafficAggregate(Simulator& sim, PacketHandler& target,
                                   Rate aggregate_rate, int num_sources,
                                   Interarrival model, PacketSizeMix mix, Rng rng,
                                   double pareto_alpha) {
  if (num_sources <= 0) {
    throw std::invalid_argument{"TrafficAggregate needs at least one source"};
  }
  const Rate per_source = aggregate_rate / static_cast<double>(num_sources);
  sources_.reserve(static_cast<std::size_t>(num_sources));
  for (int i = 0; i < num_sources; ++i) {
    sources_.push_back(std::make_unique<CrossTrafficSource>(
        sim, target, per_source, model, mix, rng.fork(), pareto_alpha));
  }
}

void TrafficAggregate::start() {
  for (auto& s : sources_) s->start();
}

void TrafficAggregate::stop() {
  for (auto& s : sources_) s->stop();
}

DataSize TrafficAggregate::bytes_sent() const {
  DataSize total{};
  for (const auto& s : sources_) total += s->bytes_sent();
  return total;
}

}  // namespace pathload::sim
