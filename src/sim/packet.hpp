#pragma once

#include <cstdint>

#include "util/time.hpp"
#include "util/units.hpp"

namespace pathload::sim {

/// Traffic class of a simulated packet; used for egress demultiplexing and
/// per-class accounting.
enum class PacketKind : std::uint8_t {
  kCrossTraffic,  ///< hop-local background load (enters and leaves at one link)
  kProbe,         ///< pathload / baseline probe packet (UDP in the real tool)
  kTcpData,       ///< TCP segment travelling sender -> receiver
  kTcpAck,        ///< TCP acknowledgment (modelled on an uncongested reverse path)
  kPing,          ///< small RTT probe (stands in for the paper's ping)
};

/// Flow id 0 is reserved for anonymous cross traffic.
constexpr std::uint32_t kCrossTrafficFlow = 0;

/// Packet::exit_hop value of a flow that traverses the path end to end and
/// surfaces at the egress demux (the default; see Path for segment routing).
constexpr std::uint32_t kExitAtEgress = 0xFFFFFFFFu;

/// A simulated packet. Kept as a small value type: links move packets
/// through FIFO queues by value, so there is no per-packet allocation.
struct Packet {
  std::uint64_t id{0};          ///< unique per simulation
  std::uint32_t flow{kCrossTrafficFlow};
  PacketKind kind{PacketKind::kCrossTraffic};
  std::int32_t size_bytes{0};   ///< wire size used for serialization delay
  bool transit{false};          ///< true: traverses hops up to exit_hop; false: one hop
  /// Segment routing: index of the last hop a transit packet traverses
  /// before leaving at that hop's exit demux. kExitAtEgress (the default)
  /// means the packet runs the whole path and surfaces at Path::egress().
  /// Ignored while transit is false (hop-local cross traffic).
  std::uint32_t exit_hop{kExitAtEgress};

  std::uint32_t stream_id{0};   ///< probe: stream index within a session
  std::uint32_t seq{0};         ///< probe/ping sequence within the stream
  std::uint64_t tcp_seq{0};     ///< TCP: first byte (data) or cumulative ack (ack)

  /// Timestamp applied by the *sending host's clock* at transmission time.
  /// Host clocks may be offset from the simulation clock; SLoPS must cope.
  TimePoint sender_ts{};
  /// True simulation time the packet entered the path (diagnostics only;
  /// measurement code must not read this).
  TimePoint entered{};

  DataSize size() const { return DataSize::bytes(size_bytes); }
};

/// Anything that can accept a packet at the current simulation time.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(const Packet& p) = 0;
};

}  // namespace pathload::sim
