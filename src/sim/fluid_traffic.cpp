#include "sim/fluid_traffic.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace pathload::sim {

FluidOnOffSource::FluidOnOffSource(Simulator& sim, Link& link, Rate mean_rate,
                                   OnOffParams params, CounterRng rng)
    : sim_{sim},
      link_{link},
      mean_rate_{mean_rate},
      params_{params},
      rng_{rng},
      timer_{sim.make_timer([this] { on_timer(); })} {
  const double burst_bytes = static_cast<double>(params_.mean_burst.byte_count());
  mean_off_secs_ = burst_bytes * 8.0 * (1.0 / mean_rate_.bits_per_sec() -
                                        1.0 / params_.peak_rate.bits_per_sec());
  burst_xm_bytes_ = burst_bytes * (params_.burst_alpha - 1.0) / params_.burst_alpha;
  burst_inv_alpha_ = 1.0 / params_.burst_alpha;
}

void FluidOnOffSource::start() {
  if (running_) return;
  running_ = true;
  in_burst_ = false;
  timer_.schedule_in(Duration::seconds(rng_.exponential(mean_off_secs_)));
}

void FluidOnOffSource::stop() {
  if (!running_) return;
  running_ = false;
  if (in_burst_) {
    link_.add_fluid_rate(Rate::zero() - params_.peak_rate);
    in_burst_ = false;
  }
  timer_.cancel();
}

void FluidOnOffSource::on_timer() {
  if (!running_) return;
  if (in_burst_) {
    link_.add_fluid_rate(Rate::zero() - params_.peak_rate);
    in_burst_ = false;
    timer_.schedule_in(Duration::seconds(rng_.exponential(mean_off_secs_)));
    return;
  }
  // Begin a burst: the whole Pareto burst becomes one fluid segment at the
  // peak rate — two timer events instead of one event per packet.
  const double burst_bytes = CounterRng::pareto_from_uniform(
      rng_.uniform(), burst_xm_bytes_, burst_inv_alpha_);
  const double on_secs = burst_bytes * 8.0 / params_.peak_rate.bits_per_sec();
  offered_ += DataSize::bytes(static_cast<std::int64_t>(burst_bytes));
  link_.add_fluid_rate(params_.peak_rate);
  in_burst_ = true;
  ++bursts_started_;
  timer_.schedule_in(Duration::seconds(on_secs));
}

FluidRampSource::FluidRampSource(Simulator& sim, Link& link, RampParams params,
                                 Duration step)
    : sim_{sim},
      link_{link},
      params_{params},
      step_{step},
      timer_{sim.make_timer([this] { on_timer(); })} {}

void FluidRampSource::start() {
  if (running_) return;
  running_ = true;
  epoch_ = sim_.now();
  applied_ = Rate::zero();
  applied_since_ = epoch_;
  on_timer();
}

void FluidRampSource::stop() {
  if (!running_) return;
  apply(Rate::zero());
  running_ = false;
  timer_.cancel();
}

Rate FluidRampSource::rate_at(Duration elapsed) const {
  auto lerp = [](Rate a, Rate b, Duration t0, Duration t1, Duration t) {
    if (t >= t1) return b;
    if (t <= t0) return a;
    return a + (b - a) * ((t - t0) / (t1 - t0));
  };
  if (params_.back_rate.has_value() && elapsed >= params_.back_start) {
    return lerp(params_.end_rate, *params_.back_rate, params_.back_start,
                params_.back_end, elapsed);
  }
  return lerp(params_.start_rate, params_.end_rate, params_.ramp_start,
              params_.ramp_end, elapsed);
}

void FluidRampSource::apply(Rate target) {
  if (target == applied_) return;
  const TimePoint now = sim_.now();
  offered_ += applied_.bytes_in(now - applied_since_);
  applied_since_ = now;
  link_.add_fluid_rate(target - applied_);
  applied_ = target;
}

DataSize FluidRampSource::bytes_sent() const {
  if (!running_) return offered_;
  return offered_ + applied_.bytes_in(sim_.now() - applied_since_);
}

void FluidRampSource::on_timer() {
  if (!running_) return;
  const Duration elapsed = sim_.now() - epoch_;
  apply(rate_at(elapsed));
  // Next wake: the nearest profile breakpoint, or one `step` ahead while
  // inside a ramp window (the breakpoint candidates clamp the step at the
  // window edge). Past the last breakpoint the rate is flat forever and the
  // timer goes quiet.
  const std::int64_t e = elapsed.nanos();
  std::optional<std::int64_t> next;
  auto consider = [&](std::int64_t t) {
    if (t > e && (!next.has_value() || t < *next)) next = t;
  };
  auto inside = [e](Duration a, Duration b) {
    return e >= a.nanos() && e < b.nanos();
  };
  consider(params_.ramp_start.nanos());
  consider(params_.ramp_end.nanos());
  if (inside(params_.ramp_start, params_.ramp_end)) consider(e + step_.nanos());
  if (params_.back_rate.has_value()) {
    consider(params_.back_start.nanos());
    consider(params_.back_end.nanos());
    if (inside(params_.back_start, params_.back_end)) consider(e + step_.nanos());
  }
  if (next.has_value()) timer_.schedule_in(Duration::nanoseconds(*next - e));
}

FluidTcpSource::FluidTcpSource(Simulator& sim, Path& path, FluidTcpConfig cfg)
    : sim_{sim},
      path_{path},
      cfg_{cfg},
      cycle_timer_{sim.make_timer([this] { on_cycle_timer(); })},
      epoch_timer_{sim.make_timer([this] { on_epoch(); })} {
  // Fail on nonsense segments at construction, not at first epoch.
  cfg_.segment = path_.normalized(cfg_.segment);
}

FluidTcpSource::~FluidTcpSource() {
  // The flow dies before its Path and Simulator (ScenarioInstance member
  // order); withdraw whatever rate is still applied so the links' fluid
  // accounting stays balanced.
  apply(Rate::zero());
}

void FluidTcpSource::launch() {
  epoch_ = sim_.now();
  phase_ = Phase::kWaitingOn;
  cycle_timer_.schedule_at(epoch_ + cfg_.start);
}

std::optional<TimePoint> FluidTcpSource::stop_at() const {
  if (!cfg_.stop.has_value()) return std::nullopt;
  return epoch_ + *cfg_.stop;
}

// Same start/stop/cycle state machine as tcp::SegmentTcpFlow::on_timer, so
// a `flow` spec entry behaves identically under either backend.
void FluidTcpSource::on_cycle_timer() {
  const std::optional<TimePoint> stop = stop_at();
  if (phase_ == Phase::kWaitingOn) {
    begin_on_period();
    phase_ = Phase::kOn;
    std::optional<TimePoint> end;
    if (cfg_.cycles()) end = sim_.now() + *cfg_.on_period;
    if (stop.has_value() && (!end.has_value() || *stop < *end)) end = stop;
    if (end.has_value()) cycle_timer_.schedule_at(*end);
    return;
  }
  if (phase_ == Phase::kOn) {
    end_on_period();
    const TimePoint next_on =
        sim_.now() + (cfg_.cycles() ? *cfg_.off_period : Duration::zero());
    if (!cfg_.cycles() || (stop.has_value() && next_on >= *stop)) {
      phase_ = Phase::kIdle;  // done for good
      return;
    }
    phase_ = Phase::kWaitingOn;
    cycle_timer_.schedule_at(next_on);
  }
}

void FluidTcpSource::begin_on_period() {
  cwnd_ = cfg_.initial_cwnd;
  ssthresh_ = cfg_.initial_ssthresh;
  w_max_ = 0.0;
  cubic_epoch_.reset();
  bw_window_.clear();
  min_rtt_.reset();
  ++connections_;
  // First epoch applies the initial-cwnd rate without an AIMD update, the
  // fluid analogue of the first flight leaving before any ACK returns.
  if (cfg_.advertised_window.has_value()) {
    cwnd_ = std::min(cwnd_, *cfg_.advertised_window);
  }
  const Duration rtt = current_rtt();
  apply(Rate::bps(cwnd_ * static_cast<double>(cfg_.mss_bytes) * 8.0 / rtt.secs()));
  epoch_timer_.schedule_in(rtt);
}

void FluidTcpSource::end_on_period() {
  apply(Rate::zero());
  epoch_timer_.cancel();
}

void FluidTcpSource::on_epoch() {
  if (phase_ != Phase::kOn) return;  // defensive: cancelled at OFF
  if (cfg_.cc == "cubic") {
    epoch_cubic();
  } else if (cfg_.cc == "bbr") {
    epoch_bbr(current_rtt());
  } else {
    // "reno" and "reno-rfc": in the fluid model cwnd IS FlightSize (there
    // is no advertised-window gap or retransmission hole between them), so
    // the RFC 5681 FlightSize fix changes nothing and both names share the
    // historical epoch body — kept verbatim for the v2 golden anchors.
    epoch_reno();
  }
  if (cfg_.advertised_window.has_value()) {
    cwnd_ = std::min(cwnd_, *cfg_.advertised_window);
  }
  const Duration rtt = current_rtt();
  apply(Rate::bps(cwnd_ * static_cast<double>(cfg_.mss_bytes) * 8.0 / rtt.secs()));
  // The next update rides the ACK clock: one *new* RTT out, so a standing
  // queue slows adaptation exactly as it slows real ACKs.
  epoch_timer_.schedule_in(rtt);
}

void FluidTcpSource::epoch_reno() {
  if (congested()) {
    // The drop-tail ceiling is the loss signal: multiplicative decrease.
    // Level-triggered on purpose — while the standing queue stays pinned
    // the window keeps halving, like Reno taking consecutive loss events,
    // until the segment drains below the ceiling.
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = ssthresh_;
  } else if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ * 2.0, ssthresh_);  // slow start: double per RTT
  } else {
    cwnd_ += 1.0;  // congestion avoidance: one segment per RTT
  }
}

// Fluid CUBIC: beta = 0.7 decrease at the drop-tail ceiling, then the
// C*(t-K)^3 + W_max profile sampled once per epoch. One epoch is one RTT,
// so the per-ACK form (target - cwnd)/cwnd * acked collapses to chasing
// the profile directly; the small floor keeps the window from stalling on
// the plateau around W_max.
void FluidTcpSource::epoch_cubic() {
  constexpr double kC = 0.4;
  constexpr double kBeta = 0.7;
  if (congested()) {
    w_max_ = std::max(cwnd_, 2.0);
    ssthresh_ = std::max(cwnd_ * kBeta, 2.0);
    cwnd_ = ssthresh_;
    cubic_epoch_.reset();
    return;
  }
  if (cwnd_ < ssthresh_) {
    cwnd_ = std::min(cwnd_ * 2.0, ssthresh_);  // slow start, as in Reno
    return;
  }
  if (!cubic_epoch_.has_value()) {
    cubic_epoch_ = sim_.now();
    w_max_ = std::max(w_max_, cwnd_);
  }
  const double k = std::cbrt(w_max_ * (1.0 - kBeta) / kC);
  const double t = (sim_.now() - *cubic_epoch_).secs();
  const double d = t - k;
  cwnd_ = std::max(w_max_ + kC * d * d * d, cwnd_ + 0.01);
}

// Fluid BBR: per epoch the window sustains cwnd * mss * 8 / RTT, with the
// RTT inclusive of standing queue — exactly the delivery rate a RateSampler
// would measure once the pipe is full. The model is the windowed max of
// those samples (not taken while the drop-tail ceiling is discarding work)
// and the running minimum RTT; cwnd pins to 2x the modeled BDP. Until the
// model has a sample the window doubles per epoch (STARTUP).
void FluidTcpSource::epoch_bbr(Duration rtt) {
  constexpr double kGain = 2.0;
  constexpr double kMinCwnd = 4.0;
  const Duration window = Duration::seconds(10);
  const double mss_bits = static_cast<double>(cfg_.mss_bytes) * 8.0;
  if (!congested()) {
    bw_window_.emplace_back(sim_.now(), cwnd_ * mss_bits / rtt.secs());
  }
  while (!bw_window_.empty() && sim_.now() - bw_window_.front().first > window) {
    bw_window_.erase(bw_window_.begin());
  }
  if (!min_rtt_.has_value() || rtt < *min_rtt_) min_rtt_ = rtt;
  double bw = 0.0;
  for (const auto& s : bw_window_) bw = std::max(bw, s.second);
  if (bw > 0.0 && min_rtt_.has_value()) {
    cwnd_ = std::max(kGain * bw * min_rtt_->secs() / mss_bits, kMinCwnd);
  } else {
    cwnd_ *= 2.0;  // STARTUP: no model yet, fill the pipe fast
  }
}

Duration FluidTcpSource::current_rtt() const {
  Duration rtt = cfg_.reverse_delay;
  for (std::size_t h = cfg_.segment.first; h <= cfg_.segment.last; ++h) {
    rtt += path_.link(h).prop_delay() + path_.link(h).backlog_delay();
  }
  // Degenerate zero-delay paths would make the rate infinite and the epoch
  // timer spin; clamp to a scheduler-tick-ish floor.
  return std::max(rtt, Duration::milliseconds(1));
}

bool FluidTcpSource::congested() const {
  // Loss-driven, like Reno: the signal is the fluid queue *reaching* the
  // drop-tail clamp — the regime where the link is actually discarding
  // work (fluid overflow, probe drop-tails) — not an early-warning
  // threshold below it. Backing off any earlier would keep the buffer
  // from ever filling, and competing probe streams would never see the
  // losses the packet backend inflicts on them.
  for (std::size_t h = cfg_.segment.first; h <= cfg_.segment.last; ++h) {
    const Link& link = path_.link(h);
    const double ceiling =
        link.capacity().transmission_time(link.buffer_limit()).secs();
    // backlog_delay() projects unclamped, so >= detects a pinned queue.
    if (link.backlog_delay().secs() >= ceiling) return true;
  }
  return false;
}

void FluidTcpSource::apply(Rate target) {
  if (target == applied_) return;
  const TimePoint now = sim_.now();
  offered_ += applied_.bytes_in(now - applied_since_);
  applied_since_ = now;
  for (std::size_t h = cfg_.segment.first; h <= cfg_.segment.last; ++h) {
    path_.link(h).add_fluid_rate(target - applied_);
  }
  applied_ = target;
}

DataSize FluidTcpSource::bytes_acked() const {
  return offered_ + applied_.bytes_in(sim_.now() - applied_since_);
}

}  // namespace pathload::sim
