#include "sim/fluid_traffic.hpp"

#include <optional>

namespace pathload::sim {

FluidOnOffSource::FluidOnOffSource(Simulator& sim, Link& link, Rate mean_rate,
                                   OnOffParams params, CounterRng rng)
    : sim_{sim},
      link_{link},
      mean_rate_{mean_rate},
      params_{params},
      rng_{rng},
      timer_{sim.make_timer([this] { on_timer(); })} {
  const double burst_bytes = static_cast<double>(params_.mean_burst.byte_count());
  mean_off_secs_ = burst_bytes * 8.0 * (1.0 / mean_rate_.bits_per_sec() -
                                        1.0 / params_.peak_rate.bits_per_sec());
  burst_xm_bytes_ = burst_bytes * (params_.burst_alpha - 1.0) / params_.burst_alpha;
  burst_inv_alpha_ = 1.0 / params_.burst_alpha;
}

void FluidOnOffSource::start() {
  if (running_) return;
  running_ = true;
  in_burst_ = false;
  timer_.schedule_in(Duration::seconds(rng_.exponential(mean_off_secs_)));
}

void FluidOnOffSource::stop() {
  if (!running_) return;
  running_ = false;
  if (in_burst_) {
    link_.add_fluid_rate(Rate::zero() - params_.peak_rate);
    in_burst_ = false;
  }
  timer_.cancel();
}

void FluidOnOffSource::on_timer() {
  if (!running_) return;
  if (in_burst_) {
    link_.add_fluid_rate(Rate::zero() - params_.peak_rate);
    in_burst_ = false;
    timer_.schedule_in(Duration::seconds(rng_.exponential(mean_off_secs_)));
    return;
  }
  // Begin a burst: the whole Pareto burst becomes one fluid segment at the
  // peak rate — two timer events instead of one event per packet.
  const double burst_bytes = CounterRng::pareto_from_uniform(
      rng_.uniform(), burst_xm_bytes_, burst_inv_alpha_);
  const double on_secs = burst_bytes * 8.0 / params_.peak_rate.bits_per_sec();
  offered_ += DataSize::bytes(static_cast<std::int64_t>(burst_bytes));
  link_.add_fluid_rate(params_.peak_rate);
  in_burst_ = true;
  ++bursts_started_;
  timer_.schedule_in(Duration::seconds(on_secs));
}

FluidRampSource::FluidRampSource(Simulator& sim, Link& link, RampParams params,
                                 Duration step)
    : sim_{sim},
      link_{link},
      params_{params},
      step_{step},
      timer_{sim.make_timer([this] { on_timer(); })} {}

void FluidRampSource::start() {
  if (running_) return;
  running_ = true;
  epoch_ = sim_.now();
  applied_ = Rate::zero();
  applied_since_ = epoch_;
  on_timer();
}

void FluidRampSource::stop() {
  if (!running_) return;
  apply(Rate::zero());
  running_ = false;
  timer_.cancel();
}

Rate FluidRampSource::rate_at(Duration elapsed) const {
  auto lerp = [](Rate a, Rate b, Duration t0, Duration t1, Duration t) {
    if (t >= t1) return b;
    if (t <= t0) return a;
    return a + (b - a) * ((t - t0) / (t1 - t0));
  };
  if (params_.back_rate.has_value() && elapsed >= params_.back_start) {
    return lerp(params_.end_rate, *params_.back_rate, params_.back_start,
                params_.back_end, elapsed);
  }
  return lerp(params_.start_rate, params_.end_rate, params_.ramp_start,
              params_.ramp_end, elapsed);
}

void FluidRampSource::apply(Rate target) {
  if (target == applied_) return;
  const TimePoint now = sim_.now();
  offered_ += applied_.bytes_in(now - applied_since_);
  applied_since_ = now;
  link_.add_fluid_rate(target - applied_);
  applied_ = target;
}

DataSize FluidRampSource::bytes_sent() const {
  if (!running_) return offered_;
  return offered_ + applied_.bytes_in(sim_.now() - applied_since_);
}

void FluidRampSource::on_timer() {
  if (!running_) return;
  const Duration elapsed = sim_.now() - epoch_;
  apply(rate_at(elapsed));
  // Next wake: the nearest profile breakpoint, or one `step` ahead while
  // inside a ramp window (the breakpoint candidates clamp the step at the
  // window edge). Past the last breakpoint the rate is flat forever and the
  // timer goes quiet.
  const std::int64_t e = elapsed.nanos();
  std::optional<std::int64_t> next;
  auto consider = [&](std::int64_t t) {
    if (t > e && (!next.has_value() || t < *next)) next = t;
  };
  auto inside = [e](Duration a, Duration b) {
    return e >= a.nanos() && e < b.nanos();
  };
  consider(params_.ramp_start.nanos());
  consider(params_.ramp_end.nanos());
  if (inside(params_.ramp_start, params_.ramp_end)) consider(e + step_.nanos());
  if (params_.back_rate.has_value()) {
    consider(params_.back_start.nanos());
    consider(params_.back_end.nanos());
    if (inside(params_.back_start, params_.back_end)) consider(e + step_.nanos());
  }
  if (next.has_value()) timer_.schedule_in(Duration::nanoseconds(*next - e));
}

}  // namespace pathload::sim
