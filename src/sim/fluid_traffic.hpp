// Fluid cross-traffic sources for the engine-v2 hybrid mode.
//
// Each source drives a Link's fluid rate (Link::add_fluid_rate) instead of
// injecting packets, mirroring the packet models of traffic.hpp:
//
//  * FluidConstantSource — the renewal models (poisson/pareto/constant)
//    collapse to their long-run mean, lambda = u * C: exactly the paper's
//    Section III-A fluid model (fluid::FluidLink), so for stationary
//    scenarios the v2 cross traffic is the *ground truth* the v1 packet
//    models merely approximate. Zero events, zero draws.
//  * FluidOnOffSource — keeps the ON/OFF burst structure (exponential OFF
//    gaps, Pareto burst sizes) but emits each burst as a fluid rate
//    segment at the peak rate: two events per burst instead of one per
//    packet. Draws come from the seekable CounterRng, one stream per
//    source.
//  * FluidRampSource — the piecewise-linear load profile as piecewise-
//    constant fluid rate updates (a step per `step` interval during ramp
//    windows, single updates on flat segments). Fully deterministic: the
//    v1 model's randomness only jitters arrival instants around the same
//    profile.
//
// All three implement TrafficGen so ScenarioInstance can hold v1 and v2
// traffic behind the same pointers. bytes_sent() reports *offered* fluid
// bytes, the analogue of the packet sources' counter.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/flow.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/counter_rng.hpp"
#include "util/units.hpp"

namespace pathload::sim {

/// Constant fluid load lambda on one link (renewal models under v2).
class FluidConstantSource final : public TrafficGen {
 public:
  FluidConstantSource(Simulator& sim, Link& link, Rate rate)
      : sim_{sim}, link_{link}, rate_{rate} {}

  void start() override {
    if (running_) return;
    running_ = true;
    epoch_ = sim_.now();
    link_.add_fluid_rate(rate_);
  }
  void stop() override {
    if (!running_) return;
    running_ = false;
    offered_ += rate_.bytes_in(sim_.now() - epoch_);
    link_.add_fluid_rate(Rate::zero() - rate_);
  }
  DataSize bytes_sent() const override {
    if (!running_) return offered_;
    return offered_ + rate_.bytes_in(sim_.now() - epoch_);
  }

 private:
  Simulator& sim_;
  Link& link_;
  Rate rate_;
  TimePoint epoch_{};
  DataSize offered_{};
  bool running_{false};
};

/// One bursty ON/OFF source as fluid rate segments. Same shape parameters
/// and the same mean-load bookkeeping as sim::OnOffSource:
///
///   E[on]  = E[burst] * 8 / peak_rate
///   E[off] = E[burst] * 8 * (1/mean_rate - 1/peak_rate)
///
/// and the source starts in OFF, one exponential gap before its first burst.
class FluidOnOffSource final : public TrafficGen {
 public:
  FluidOnOffSource(Simulator& sim, Link& link, Rate mean_rate,
                   OnOffParams params, CounterRng rng);

  void start() override;
  void stop() override;

  DataSize bytes_sent() const override { return offered_; }
  std::uint64_t bursts_started() const { return bursts_started_; }

  FluidOnOffSource(const FluidOnOffSource&) = delete;
  FluidOnOffSource& operator=(const FluidOnOffSource&) = delete;

 private:
  void on_timer();

  Simulator& sim_;
  Link& link_;
  Rate mean_rate_;
  OnOffParams params_;
  CounterRng rng_;
  double mean_off_secs_{0.0};
  double burst_xm_bytes_{0.0};
  double burst_inv_alpha_{0.0};
  Simulator::TimerHandle timer_;

  bool running_{false};
  bool in_burst_{false};
  std::uint64_t bursts_started_{0};
  DataSize offered_{};
};

/// The ramp/step/wave load profile of sim::RampLoadSource as deterministic
/// piecewise-constant fluid updates. Within a ramp window the linear rate
/// is sampled every `step`; flat segments cost one update each.
class FluidRampSource final : public TrafficGen {
 public:
  FluidRampSource(Simulator& sim, Link& link, RampParams params,
                  Duration step = Duration::milliseconds(100));

  void start() override;
  void stop() override;

  /// The profile's offered rate at `elapsed` after start() (same profile
  /// as RampLoadSource::rate_at).
  Rate rate_at(Duration elapsed) const;

  DataSize bytes_sent() const override;

 private:
  void on_timer();
  void apply(Rate target);

  Simulator& sim_;
  Link& link_;
  RampParams params_;
  Duration step_;
  Simulator::TimerHandle timer_;

  bool running_{false};
  TimePoint epoch_{};
  Rate applied_{Rate::zero()};
  TimePoint applied_since_{};
  DataSize offered_{};
};

/// Shape of one fluid responsive flow, mirroring tcp::SegmentFlowConfig
/// field for field so ScenarioInstance can build either backend from the
/// same `flow` spec entry.
struct FluidTcpConfig {
  Segment segment{};               ///< hop range; the default is the whole path
  std::int32_t mss_bytes{1460};    ///< payload per cwnd segment
  double initial_cwnd{2.0};
  /// RFC 5681: the first slow start runs until the first loss, so the
  /// default is effectively unbounded — the flow *finds* the drop-tail
  /// ceiling instead of gliding below it. (The packet backend's frozen
  /// reno default of 64 segments cannot fill paper-scale 500 ms buffers;
  /// copying it here would make a greedy fluid flow invisible to
  /// competing probe streams.)
  double initial_ssthresh{1e9};
  /// Receiver advertised window in segments; unset = greedy.
  std::optional<double> advertised_window{};
  Duration reverse_delay{Duration::milliseconds(50)};  ///< uncongested ACK path
  Duration start{Duration::zero()};   ///< first rate segment begins here
  std::optional<Duration> stop{};     ///< flow ends here (unset: never)
  /// Restart variant: both set => cycle ON for `on_period` (cwnd reset to
  /// initial each time — slow start begins again), idle for `off_period`.
  std::optional<Duration> on_period{};
  std::optional<Duration> off_period{};
  /// Congestion-control policy, mirroring tcp::TcpConfig::cc. "reno" and
  /// "reno-rfc" share one epoch body (fluid cwnd *is* FlightSize, so the
  /// RFC 5681 FlightSize-vs-cwnd distinction vanishes); "cubic" and "bbr"
  /// get fluid analogues of their packet policies (see on_epoch).
  std::string cc{"reno"};

  bool cycles() const { return on_period.has_value() && off_period.has_value(); }
};

/// Rate-based responsive TCP for the fluid engine: the flow is a fluid
/// rate cwnd * mss * 8 / RTT applied to every link of its segment, with
/// AIMD cwnd updates once per RTT epoch instead of per-ACK (the classical
/// fluid approximation of Reno; docs/ENGINE.md spells out the model).
///
/// Per epoch: RTT = segment propagation + reverse delay + current segment
/// backlog (so a standing queue slows the ACK clock, as it does for real
/// TCP); congestion = any segment link's fluid queue pinned at its
/// drop-tail ceiling (the regime where the link is actually discarding
/// work — the fluid analogue of loss), answered by ssthresh =
/// max(cwnd/2, 2) and cwnd = ssthresh; otherwise cwnd doubles per epoch
/// below ssthresh (slow start, unbounded on the first pass per RFC 5681)
/// and grows by one segment above it (congestion avoidance). The next
/// epoch fires one *new* RTT later, so the update cadence tracks queueing
/// like an ACK clock. Fully deterministic — no RNG, no retransmission
/// machinery: flow-bearing v2 runs stay bit-reproducible, and timeouts()
/// is always zero.
class FluidTcpSource final : public ResponsiveFlow {
 public:
  FluidTcpSource(Simulator& sim, Path& path, FluidTcpConfig cfg);
  ~FluidTcpSource() override;

  void launch() override;
  bool active() const override { return phase_ == Phase::kOn; }
  DataSize bytes_acked() const override;
  std::uint64_t connections_started() const override { return connections_; }
  std::uint64_t timeouts() const override { return 0; }

  const FluidTcpConfig& config() const { return cfg_; }
  /// Current congestion window in segments (diagnostics / tests).
  double cwnd() const { return cwnd_; }
  Rate applied_rate() const { return applied_; }

  FluidTcpSource(const FluidTcpSource&) = delete;
  FluidTcpSource& operator=(const FluidTcpSource&) = delete;

 private:
  enum class Phase { kIdle, kWaitingOn, kOn };

  void on_cycle_timer();
  void on_epoch();
  void epoch_reno();
  void epoch_cubic();
  void epoch_bbr(Duration rtt);
  void begin_on_period();
  void end_on_period();
  void apply(Rate target);
  Duration current_rtt() const;
  bool congested() const;
  std::optional<TimePoint> stop_at() const;

  Simulator& sim_;
  Path& path_;
  FluidTcpConfig cfg_;
  TimePoint epoch_{};
  Phase phase_{Phase::kIdle};
  Simulator::TimerHandle cycle_timer_;
  Simulator::TimerHandle epoch_timer_;

  double cwnd_{2.0};
  double ssthresh_{64.0};
  // cubic state: last loss ceiling and the epoch the profile grows from.
  double w_max_{0.0};
  std::optional<TimePoint> cubic_epoch_{};
  // bbr state: windowed max of per-epoch delivery-rate samples (bps) and
  // the running minimum RTT the model pins cwnd to.
  std::vector<std::pair<TimePoint, double>> bw_window_;
  std::optional<Duration> min_rtt_{};
  Rate applied_{Rate::zero()};
  TimePoint applied_since_{};
  DataSize offered_{};
  std::uint64_t connections_{0};
};

}  // namespace pathload::sim
