// Fluid cross-traffic sources for the engine-v2 hybrid mode.
//
// Each source drives a Link's fluid rate (Link::add_fluid_rate) instead of
// injecting packets, mirroring the packet models of traffic.hpp:
//
//  * FluidConstantSource — the renewal models (poisson/pareto/constant)
//    collapse to their long-run mean, lambda = u * C: exactly the paper's
//    Section III-A fluid model (fluid::FluidLink), so for stationary
//    scenarios the v2 cross traffic is the *ground truth* the v1 packet
//    models merely approximate. Zero events, zero draws.
//  * FluidOnOffSource — keeps the ON/OFF burst structure (exponential OFF
//    gaps, Pareto burst sizes) but emits each burst as a fluid rate
//    segment at the peak rate: two events per burst instead of one per
//    packet. Draws come from the seekable CounterRng, one stream per
//    source.
//  * FluidRampSource — the piecewise-linear load profile as piecewise-
//    constant fluid rate updates (a step per `step` interval during ramp
//    windows, single updates on flat segments). Fully deterministic: the
//    v1 model's randomness only jitters arrival instants around the same
//    profile.
//
// All three implement TrafficGen so ScenarioInstance can hold v1 and v2
// traffic behind the same pointers. bytes_sent() reports *offered* fluid
// bytes, the analogue of the packet sources' counter.

#pragma once

#include <cstdint>

#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/traffic.hpp"
#include "util/counter_rng.hpp"
#include "util/units.hpp"

namespace pathload::sim {

/// Constant fluid load lambda on one link (renewal models under v2).
class FluidConstantSource final : public TrafficGen {
 public:
  FluidConstantSource(Simulator& sim, Link& link, Rate rate)
      : sim_{sim}, link_{link}, rate_{rate} {}

  void start() override {
    if (running_) return;
    running_ = true;
    epoch_ = sim_.now();
    link_.add_fluid_rate(rate_);
  }
  void stop() override {
    if (!running_) return;
    running_ = false;
    offered_ += rate_.bytes_in(sim_.now() - epoch_);
    link_.add_fluid_rate(Rate::zero() - rate_);
  }
  DataSize bytes_sent() const override {
    if (!running_) return offered_;
    return offered_ + rate_.bytes_in(sim_.now() - epoch_);
  }

 private:
  Simulator& sim_;
  Link& link_;
  Rate rate_;
  TimePoint epoch_{};
  DataSize offered_{};
  bool running_{false};
};

/// One bursty ON/OFF source as fluid rate segments. Same shape parameters
/// and the same mean-load bookkeeping as sim::OnOffSource:
///
///   E[on]  = E[burst] * 8 / peak_rate
///   E[off] = E[burst] * 8 * (1/mean_rate - 1/peak_rate)
///
/// and the source starts in OFF, one exponential gap before its first burst.
class FluidOnOffSource final : public TrafficGen {
 public:
  FluidOnOffSource(Simulator& sim, Link& link, Rate mean_rate,
                   OnOffParams params, CounterRng rng);

  void start() override;
  void stop() override;

  DataSize bytes_sent() const override { return offered_; }
  std::uint64_t bursts_started() const { return bursts_started_; }

  FluidOnOffSource(const FluidOnOffSource&) = delete;
  FluidOnOffSource& operator=(const FluidOnOffSource&) = delete;

 private:
  void on_timer();

  Simulator& sim_;
  Link& link_;
  Rate mean_rate_;
  OnOffParams params_;
  CounterRng rng_;
  double mean_off_secs_{0.0};
  double burst_xm_bytes_{0.0};
  double burst_inv_alpha_{0.0};
  Simulator::TimerHandle timer_;

  bool running_{false};
  bool in_burst_{false};
  std::uint64_t bursts_started_{0};
  DataSize offered_{};
};

/// The ramp/step/wave load profile of sim::RampLoadSource as deterministic
/// piecewise-constant fluid updates. Within a ramp window the linear rate
/// is sampled every `step`; flat segments cost one update each.
class FluidRampSource final : public TrafficGen {
 public:
  FluidRampSource(Simulator& sim, Link& link, RampParams params,
                  Duration step = Duration::milliseconds(100));

  void start() override;
  void stop() override;

  /// The profile's offered rate at `elapsed` after start() (same profile
  /// as RampLoadSource::rate_at).
  Rate rate_at(Duration elapsed) const;

  DataSize bytes_sent() const override;

 private:
  void on_timer();
  void apply(Rate target);

  Simulator& sim_;
  Link& link_;
  RampParams params_;
  Duration step_;
  Simulator::TimerHandle timer_;

  bool running_{false};
  TimePoint epoch_{};
  Rate applied_{Rate::zero()};
  TimePoint applied_since_{};
  DataSize offered_{};
};

}  // namespace pathload::sim
