#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace pathload::sim {

/// One RTT sample.
struct RttSample {
  TimePoint sent;
  Duration rtt;
};

/// Periodic small-packet RTT prober: the stand-in for the paper's `ping`
/// (1 s period in Fig. 16, 100 ms in Fig. 18).
///
/// Probes traverse the forward path (experiencing its queueing) and are
/// reflected back over an uncongested reverse path of fixed delay, matching
/// the experimental setup where congestion was on the forward direction.
class RttProber final : public PacketHandler {
 public:
  RttProber(Simulator& sim, Path& path, Duration period, Duration reverse_delay,
            std::int32_t probe_size_bytes = 64);
  ~RttProber();

  void start();
  void stop() {
    running_ = false;
    send_timer_.cancel();
  }

  const std::vector<RttSample>& samples() const { return samples_; }
  std::uint64_t sent() const { return next_seq_; }
  /// Probes sent but never answered (lost in a full queue).
  std::uint64_t lost() const;

  /// Handles the probe surfacing at the path egress.
  void handle(const Packet& p) override;

 private:
  void send_probe();

  Simulator& sim_;
  Path& path_;
  Duration period_;
  Duration reverse_delay_;
  std::int32_t probe_size_;
  std::uint32_t flow_;
  Simulator::TimerHandle send_timer_;

  bool running_{false};
  std::uint32_t next_seq_{0};
  std::unordered_map<std::uint32_t, TimePoint> outstanding_;
  std::vector<RttSample> samples_;
};

}  // namespace pathload::sim
