#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pathload::sim {

/// Optional stochastic impairments of a link, off by default.
///
/// Each enabled knob draws from the link's *own* seeded RNG stream (never
/// from the scenario's traffic RNG), and a knob left at zero consumes no
/// draws at all — so an unimpaired link is bit-identical to a link built
/// before impairments existed, and enabling one knob does not perturb the
/// draw sequence of another. Draw order per packet: loss, then duplication
/// (both at arrival), then reorder jitter (at delivery, per forwarded copy).
struct LinkImpairments {
  /// Probability in [0, 1) that an arriving packet is dropped outright
  /// (non-congestive random loss, e.g. a noisy wireless hop).
  double loss{0.0};
  /// Probability in [0, 1) that an arriving packet is accepted twice.
  double dup{0.0};
  /// Upper bound of a uniform [0, reorder) extra propagation delay applied
  /// per delivered packet; enough jitter reorders back-to-back packets.
  Duration reorder{};
  /// Seed of the link's private impairment RNG stream.
  std::uint64_t seed{1};

  bool any() const {
    return loss > 0.0 || dup > 0.0 || reorder > Duration::zero();
  }
};

/// A store-and-forward link with an FCFS drop-tail queue, matching the
/// queueing model of the paper (Section III-A assumes FCFS; Section VII
/// notes drop-tail is "the common practice today").
///
/// A packet arriving at a busy link waits in a byte-limited buffer; when it
/// reaches the head it is serialized for size/capacity and then experiences
/// the link's propagation delay before being delivered downstream.
class Link final : public PacketHandler {
 public:
  Link(Simulator& sim, std::string name, Rate capacity, Duration prop_delay,
       DataSize buffer_limit);

  /// Downstream receiver of everything this link forwards (not owned).
  void set_downstream(PacketHandler* downstream) { downstream_ = downstream; }

  /// Packet arrival at the tail of the queue (drop-tail if over buffer).
  void handle(const Packet& p) override;

  /// Install (or clear, with an all-zero struct) stochastic impairments.
  /// Safe to call between runs; resets the impairment RNG to `imp.seed`.
  void set_impairments(const LinkImpairments& imp);
  bool impaired() const { return impair_rng_ != nullptr; }
  const LinkImpairments& impairments() const { return impair_; }

  /// Switch the link to hybrid fluid/packet service (engine v2, see
  /// docs/ENGINE.md). Cross traffic becomes a fluid rate `add_fluid_rate`
  /// feeds in; packets stay individually visible but are served against a
  /// FIFO virtual-workload variable instead of a simulated queue: one
  /// scheduled event per packet (delivery) rather than two, and fluid
  /// cross traffic costs no packet events at all. Must be called before
  /// any packet arrives; there is no way back to packet service.
  void enable_fluid_mode();
  bool fluid_mode() const { return fluid_mode_; }

  /// Add (negative delta: remove) fluid cross-traffic rate. The workload
  /// and the fluid byte account are settled to now first, so piecewise-
  /// constant rate profiles integrate exactly.
  void add_fluid_rate(Rate delta);
  Rate fluid_rate() const { return Rate::bps(fluid_rate_bps_); }

  /// Closed-form fluid-mode transit (the batched probe-burst fast path,
  /// docs/ENGINE.md): settle the workload to `arrival`, account the packet
  /// exactly as accept_fluid would at that instant, and return its delivery
  /// time at the downstream node (arrival + wait + prop_delay), or nullopt
  /// if the packet is drop-tailed. Performs the same state updates in the
  /// same floating-point order as the event-driven path, so feeding a burst
  /// through in arrival order is byte-identical to simulating it — but
  /// schedules nothing. Callers own delivery: nothing is handed downstream.
  /// `arrival` may be in the future; later event-driven settles before that
  /// point then no-op (the workload is already integrated past them), which
  /// is the documented approximation when foreign rate changes land inside
  /// a processed burst. Requires fluid mode and an unimpaired link.
  std::optional<TimePoint> fluid_transit(const Packet& p, TimePoint arrival);

  const std::string& name() const { return name_; }
  Rate capacity() const { return capacity_; }
  Duration prop_delay() const { return prop_delay_; }
  DataSize buffer_limit() const { return buffer_limit_; }

  /// Bytes currently queued, excluding the packet being serialized.
  DataSize queued_bytes() const { return queued_bytes_; }
  std::size_t queue_length() const { return queue_.size(); }
  bool busy() const { return busy_; }

  /// Cumulative bytes fully serialized onto the wire (utilization counter —
  /// the quantity an MRTG-style monitor reads, Eq. (2)). In fluid mode this
  /// includes the fluid cross traffic, integrated up to the current virtual
  /// time, so UtilizationMonitor reads the same truth under both engines.
  DataSize bytes_forwarded() const;
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }
  std::uint64_t drops() const { return drops_; }

  /// Packets dropped by the random-loss impairment (subset of drops()).
  std::uint64_t impaired_drops() const { return impaired_drops_; }
  /// Extra copies created by the duplication impairment.
  std::uint64_t duplicates() const { return duplicates_; }

  /// Drops of a specific flow (probe-loss accounting; cheap because the
  /// per-flow map is only touched on the rare drop path).
  std::uint64_t drops_for_flow(std::uint32_t flow) const;

  /// Duplicate copies created for a specific flow. Probe accounting needs
  /// this: every copy a stream's sender is owed (original or duplicate)
  /// eventually shows up as either a record or a per-flow drop.
  std::uint64_t dups_for_flow(std::uint32_t flow) const;

  /// Queueing + serialization delay a hypothetical arrival right now would
  /// see before reaching the wire (diagnostics / tests).
  Duration backlog_delay() const;

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

 private:
  void accept(const Packet& p);
  void accept_fluid(const Packet& p);
  void settle_fluid();
  void settle_fluid_at(TimePoint now);
  void begin_service();
  void finish_service();

  Simulator& sim_;
  std::string name_;
  Rate capacity_;
  Duration prop_delay_;
  DataSize buffer_limit_;

  std::deque<Packet> queue_;
  Packet in_service_{};
  // End-of-serialization is one reusable timer re-armed per packet: the
  // per-packet drain event costs no closure construction and no allocation.
  Simulator::TimerHandle service_timer_;
  bool busy_{false};
  DataSize queued_bytes_{};

  // Fluid-mode state (engine v2). fluid_work_secs_ is the FIFO virtual
  // workload W: the time a packet arriving now waits before its own
  // serialization starts. Between settle points W drains at (1 - lambda/C)
  // while positive (lambda = fluid rate, C = capacity); a packet arrival
  // adds its own transmission time. This reproduces the fluid FIFO delay
  // recursion of the paper's Appendix (fluid::FluidPath::owd_delta_per_packet)
  // exactly for constant lambda. fluid_bytes_ integrates min(lambda, C)
  // up to fluid_last_ for the utilization counter.
  bool fluid_mode_{false};
  double fluid_rate_bps_{0.0};
  double fluid_work_secs_{0.0};
  double fluid_bytes_{0.0};
  TimePoint fluid_last_{};

  PacketHandler* downstream_{nullptr};
  DataSize bytes_forwarded_{};
  std::uint64_t packets_forwarded_{0};
  std::uint64_t drops_{0};
  std::unordered_map<std::uint32_t, std::uint64_t> flow_drops_;

  // Impairment state. The RNG exists only while impairments are enabled,
  // so unimpaired links never allocate it nor draw from it.
  LinkImpairments impair_{};
  std::unique_ptr<Rng> impair_rng_;
  std::uint64_t impaired_drops_{0};
  std::uint64_t duplicates_{0};
  std::unordered_map<std::uint32_t, std::uint64_t> flow_dups_;
};

}  // namespace pathload::sim
