#pragma once

#include <cstdint>
#include <vector>

#include "sim/link.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace pathload::sim {

/// One utilization reading over a window [start, start + window).
struct UtilizationReading {
  TimePoint start;
  double utilization;  ///< in [0, 1]
  Rate avail_bw;       ///< C * (1 - u), Eq. (2)
};

/// Periodic per-link byte-counter sampler: the stand-in for MRTG.
///
/// MRTG reads SNMP interface byte counters every 5 minutes; pathload's
/// experimental verification (Fig. 10) compares against those readings.
/// The monitor computes exactly that quantity from the simulated link, with
/// an optional quantization matching the paper's "6 Mb/s ranges, due to the
/// limited resolution of the graphs".
class UtilizationMonitor {
 public:
  UtilizationMonitor(Simulator& sim, const Link& link, Duration window);

  /// Begin sampling at the current simulation time.
  void start();
  /// Close the currently open window early and stop.
  void stop();

  const std::vector<UtilizationReading>& readings() const { return readings_; }

  /// Average utilization across all closed windows.
  double average_utilization() const;
  /// Average avail-bw across all closed windows.
  Rate average_avail_bw() const;

  /// Quantize an avail-bw reading to a +-half-step band around the value,
  /// like reading a low-resolution MRTG graph. Returns {low, high}.
  struct Band {
    Rate low;
    Rate high;
  };
  static Band quantize(Rate value, Rate step);

 private:
  void sample();

  Simulator& sim_;
  const Link& link_;
  Duration window_;
  Simulator::TimerHandle timer_;
  bool running_{false};
  TimePoint window_start_{};
  DataSize bytes_at_window_start_{};
  std::vector<UtilizationReading> readings_;
};

/// Per-flow goodput sampler with fixed-size buckets (used for the 1-second
/// and 5-minute BTC throughput series of Figs. 15-16).
class ThroughputMonitor final : public PacketHandler {
 public:
  ThroughputMonitor(Simulator& sim, Duration bucket);

  /// Chain to a downstream handler (monitor observes, then forwards).
  void set_downstream(PacketHandler* h) { downstream_ = h; }

  void handle(const Packet& p) override;

  struct Bucket {
    TimePoint start;
    DataSize bytes;
    Rate rate() const;
    Duration width{};
  };

  /// Close the bucket containing `sim.now()` and return all buckets so far.
  std::vector<Bucket> finish();

  DataSize total_bytes() const { return total_; }

 private:
  void roll_to(TimePoint t);

  Simulator& sim_;
  Duration bucket_width_;
  PacketHandler* downstream_{nullptr};
  std::vector<Bucket> buckets_;
  TimePoint current_start_{};
  DataSize current_bytes_{};
  bool started_{false};
  DataSize total_{};
};

}  // namespace pathload::sim
