// Cross-traffic models for the simulated paths.
//
// Four generator families live here, all hop-local (their packets contend
// for exactly one link and then leave the path, Fig. 4's topology) and all
// seeded, so a run is reproducible bit-for-bit:
//
//  * CrossTrafficSource / TrafficAggregate — renewal arrivals (Poisson,
//    Pareto alpha = 1.9, or CBR) with i.i.d. packet sizes. The paper's
//    Section V-A models.
//  * OnOffSource — exponential ON/OFF bursts with Pareto burst *sizes*:
//    heavier short-timescale burstiness than Pareto interarrivals alone.
//  * RampLoadSource — a non-stationary Poisson process whose offered rate
//    follows a piecewise-linear ramp (or instantaneous step), for load-change
//    and dynamics scenarios.
//
// Units convention: rates are link-layer payload `Rate`s (bits/second),
// sizes are `DataSize` bytes, times are `Duration`s. Dimensionless shape
// parameters (Pareto alpha) are plain doubles.

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/alias_sampler.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pathload::sim {

/// Interarrival process of a cross-traffic source.
enum class Interarrival {
  kExponential,  ///< Poisson arrivals (the paper's "smooth" traffic model)
  kPareto,       ///< Pareto interarrivals, infinite variance (alpha = 1.9)
  kConstant,     ///< CBR; useful for deterministic tests
};

/// Common control surface of every background-load generator, so scenario
/// code can hold heterogeneous per-hop traffic behind one pointer type.
class TrafficGen {
 public:
  virtual ~TrafficGen() = default;
  /// Begin emitting (first event is one gap from now; see each model).
  virtual void start() = 0;
  /// Stop emitting (in-flight packets are unaffected).
  virtual void stop() = 0;
  /// Cumulative bytes offered to the target link since start().
  virtual DataSize bytes_sent() const = 0;
};

/// Packet size distribution of cross traffic.
///
/// Sampling is O(1) and allocation-free: the weighted choice is an alias
/// table precomputed at construction (CDF-aligned, so it picks exactly the
/// sizes a linear scan of the weights would -- see AliasSampler). One
/// uniform variate is consumed per packet regardless of bin count, so the
/// RNG stream is identical for every mix shape.
class PacketSizeMix {
 public:
  struct Bin {
    std::int32_t size_bytes;
    double weight;
  };

  PacketSizeMix() = default;
  explicit PacketSizeMix(std::vector<Bin> bins);

  /// The paper's Section V-A mix: 40% 40 B, 50% 550 B, 10% 1500 B.
  static PacketSizeMix paper_mix();
  /// Degenerate single-size mix.
  static PacketSizeMix fixed(std::int32_t size_bytes);

  std::int32_t sample(Rng& rng) const {
    return bins_[sampler_.sample(rng)].size_bytes;
  }
  double mean_bytes() const;

  const std::vector<Bin>& bins() const { return bins_; }

 private:
  std::vector<Bin> bins_;
  AliasSampler sampler_;
};

/// One background traffic source feeding a specific link.
///
/// The source offers `mean_rate` on average: interarrival times are drawn
/// from the chosen process with mean E[size] / rate, and packet sizes are
/// drawn independently from the mix. Cross-traffic packets are hop-local
/// (transit = false): they contend for exactly one link and then leave the
/// path, matching the simulation topology of Fig. 4.
class CrossTrafficSource {
 public:
  CrossTrafficSource(Simulator& sim, PacketHandler& target, Rate mean_rate,
                     Interarrival model, PacketSizeMix mix, Rng rng,
                     double pareto_alpha = 1.9);

  /// Begin emitting packets (first arrival is one interarrival from now).
  void start();
  /// Stop emitting (in-flight packets are unaffected).
  void stop() {
    running_ = false;
    timer_.cancel();
  }

  Rate mean_rate() const { return mean_rate_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  DataSize bytes_sent() const { return bytes_sent_; }

  CrossTrafficSource(const CrossTrafficSource&) = delete;
  CrossTrafficSource& operator=(const CrossTrafficSource&) = delete;

 private:
  void emit_and_reschedule();
  Duration next_interarrival();

  Simulator& sim_;
  PacketHandler& target_;
  Rate mean_rate_;
  Interarrival model_;
  PacketSizeMix mix_;
  Rng rng_;
  double pareto_alpha_;
  double mean_gap_secs_;
  double pareto_xm_secs_{0.0};
  double pareto_inv_alpha_{0.0};
  // Emission is a single reusable timer re-armed from its own callback:
  // one packet costs no closure construction and no allocation.
  Simulator::TimerHandle timer_;

  bool running_{false};
  std::uint64_t packets_sent_{0};
  DataSize bytes_sent_{};
};

/// A fixed-size pool of independent sources sharing one aggregate rate.
///
/// The number of sources `n` models the *degree of statistical multiplexing*
/// (Section VI-B): more sources at the same aggregate utilization yield a
/// smoother arrival process, fewer sources a burstier one.
class TrafficAggregate final : public TrafficGen {
 public:
  TrafficAggregate(Simulator& sim, PacketHandler& target, Rate aggregate_rate,
                   int num_sources, Interarrival model, PacketSizeMix mix, Rng rng,
                   double pareto_alpha = 1.9);

  void start() override;
  void stop() override;

  DataSize bytes_sent() const override;
  int source_count() const { return static_cast<int>(sources_.size()); }

 private:
  std::vector<std::unique_ptr<CrossTrafficSource>> sources_;
};

/// Parameters of one on/off bursty source. All three shape knobs have
/// model-level meaning:
///
///  * `peak_rate` — emission rate *during* a burst (bits/s). Must exceed the
///    source's long-run mean rate; the ratio mean/peak is the duty cycle.
///  * `mean_burst` — mean burst size in bytes. Burst sizes are Pareto with
///    shape `burst_alpha`, so for 1 < alpha <= 2 burst sizes have infinite
///    variance: occasional very long bursts, the classic heavy-tailed
///    ON/OFF picture behind self-similar traffic.
///  * `burst_alpha` — Pareto shape of the burst-size distribution
///    (dimensionless, must be > 1 for the mean to exist).
struct OnOffParams {
  Rate peak_rate{Rate::mbps(10)};
  DataSize mean_burst{DataSize::bytes(30'000)};
  double burst_alpha{1.5};
};

/// Bursty on/off background load: exponential OFF periods alternating with
/// ON bursts of Pareto-distributed size emitted back-to-back at `peak_rate`.
///
/// During ON, packets (sizes drawn i.i.d. from the mix) are paced at the
/// burst peak rate until the drawn burst size is exhausted; the source then
/// sleeps for an exponential OFF gap whose mean is derived so the long-run
/// offered load equals `mean_rate`:
///
///   E[on]  = E[burst] * 8 / peak_rate
///   E[off] = E[burst] * 8 * (1/mean_rate - 1/peak_rate)
///
/// The source starts in OFF (first burst begins one OFF gap after start()),
/// mirroring CrossTrafficSource's "first arrival is one interarrival away".
class OnOffSource final : public TrafficGen {
 public:
  OnOffSource(Simulator& sim, PacketHandler& target, Rate mean_rate,
              OnOffParams params, PacketSizeMix mix, Rng rng);

  void start() override;
  void stop() override {
    running_ = false;
    timer_.cancel();
  }

  Rate mean_rate() const { return mean_rate_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bursts_started() const { return bursts_started_; }
  DataSize bytes_sent() const override { return bytes_sent_; }

  OnOffSource(const OnOffSource&) = delete;
  OnOffSource& operator=(const OnOffSource&) = delete;

 private:
  void on_timer();
  Duration off_gap();

  Simulator& sim_;
  PacketHandler& target_;
  Rate mean_rate_;
  OnOffParams params_;
  PacketSizeMix mix_;
  Rng rng_;
  double mean_off_secs_{0.0};
  double burst_xm_bytes_{0.0};   // Pareto scale of burst sizes
  double burst_inv_alpha_{0.0};
  Simulator::TimerHandle timer_;

  bool running_{false};
  bool in_burst_{false};
  double burst_remaining_bytes_{0.0};
  std::uint64_t packets_sent_{0};
  std::uint64_t bursts_started_{0};
  DataSize bytes_sent_{};
};

/// Offered-load profile of a RampLoadSource: the rate is `start_rate` until
/// `ramp_start` (measured from start()), then moves linearly to `end_rate`
/// by `ramp_end`, and holds `end_rate` afterwards. `ramp_start == ramp_end`
/// degenerates to an instantaneous load *step*. Both rates must be positive
/// (a source that should be silent is simply not constructed).
struct RampParams {
  Rate start_rate{Rate::mbps(1)};
  Rate end_rate{Rate::mbps(1)};
  Duration ramp_start{Duration::zero()};
  Duration ramp_end{Duration::zero()};

  /// Optional return segment (a load *wave*): after holding `end_rate`,
  /// the rate moves linearly to `back_rate` over [back_start, back_end]
  /// (both measured from start(), like ramp_start/ramp_end) and holds it
  /// afterwards. Disabled while `back_rate` is unset — the profile then
  /// matches the original single-segment ramp exactly.
  std::optional<Rate> back_rate{};
  Duration back_start{Duration::zero()};
  Duration back_end{Duration::zero()};
};

/// Non-stationary Poisson background load for load-change scenarios.
///
/// Arrivals are exponential with a mean gap of E[size] * 8 / rate_now,
/// where rate_now is the profile evaluated at the instant the gap is drawn;
/// a rate change therefore takes effect at the next arrival (gaps are not
/// re-drawn mid-flight, which keeps the process deterministic and cheap).
class RampLoadSource final : public TrafficGen {
 public:
  RampLoadSource(Simulator& sim, PacketHandler& target, RampParams params,
                 PacketSizeMix mix, Rng rng);

  void start() override;
  void stop() override {
    running_ = false;
    timer_.cancel();
  }

  /// The profile's offered rate at `elapsed` time after start().
  Rate rate_at(Duration elapsed) const;

  std::uint64_t packets_sent() const { return packets_sent_; }
  DataSize bytes_sent() const override { return bytes_sent_; }

  RampLoadSource(const RampLoadSource&) = delete;
  RampLoadSource& operator=(const RampLoadSource&) = delete;

 private:
  void emit_and_reschedule();
  Duration next_gap();

  Simulator& sim_;
  PacketHandler& target_;
  RampParams params_;
  PacketSizeMix mix_;
  Rng rng_;
  double mean_bytes_{0.0};
  TimePoint epoch_{};
  Simulator::TimerHandle timer_;

  bool running_{false};
  std::uint64_t packets_sent_{0};
  DataSize bytes_sent_{};
};

/// A pool of independent generators sharing one aggregate rate, the
/// TrafficGen-polymorphic analogue of TrafficAggregate (used by scenario
/// instantiation when a hop wants several on/off or ramp sources).
class GenGroup final : public TrafficGen {
 public:
  explicit GenGroup(std::vector<std::unique_ptr<TrafficGen>> members)
      : members_{std::move(members)} {}

  void start() override {
    for (auto& m : members_) m->start();
  }
  void stop() override {
    for (auto& m : members_) m->stop();
  }
  DataSize bytes_sent() const override {
    DataSize total{};
    for (const auto& m : members_) total += m->bytes_sent();
    return total;
  }

 private:
  std::vector<std::unique_ptr<TrafficGen>> members_;
};

}  // namespace pathload::sim
