#pragma once

#include <memory>
#include <vector>

#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "util/alias_sampler.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pathload::sim {

/// Interarrival process of a cross-traffic source.
enum class Interarrival {
  kExponential,  ///< Poisson arrivals (the paper's "smooth" traffic model)
  kPareto,       ///< Pareto interarrivals, infinite variance (alpha = 1.9)
  kConstant,     ///< CBR; useful for deterministic tests
};

/// Packet size distribution of cross traffic.
///
/// Sampling is O(1) and allocation-free: the weighted choice is an alias
/// table precomputed at construction (CDF-aligned, so it picks exactly the
/// sizes a linear scan of the weights would -- see AliasSampler). One
/// uniform variate is consumed per packet regardless of bin count, so the
/// RNG stream is identical for every mix shape.
class PacketSizeMix {
 public:
  struct Bin {
    std::int32_t size_bytes;
    double weight;
  };

  PacketSizeMix() = default;
  explicit PacketSizeMix(std::vector<Bin> bins);

  /// The paper's Section V-A mix: 40% 40 B, 50% 550 B, 10% 1500 B.
  static PacketSizeMix paper_mix();
  /// Degenerate single-size mix.
  static PacketSizeMix fixed(std::int32_t size_bytes);

  std::int32_t sample(Rng& rng) const {
    return bins_[sampler_.sample(rng)].size_bytes;
  }
  double mean_bytes() const;

  const std::vector<Bin>& bins() const { return bins_; }

 private:
  std::vector<Bin> bins_;
  AliasSampler sampler_;
};

/// One background traffic source feeding a specific link.
///
/// The source offers `mean_rate` on average: interarrival times are drawn
/// from the chosen process with mean E[size] / rate, and packet sizes are
/// drawn independently from the mix. Cross-traffic packets are hop-local
/// (transit = false): they contend for exactly one link and then leave the
/// path, matching the simulation topology of Fig. 4.
class CrossTrafficSource {
 public:
  CrossTrafficSource(Simulator& sim, PacketHandler& target, Rate mean_rate,
                     Interarrival model, PacketSizeMix mix, Rng rng,
                     double pareto_alpha = 1.9);

  /// Begin emitting packets (first arrival is one interarrival from now).
  void start();
  /// Stop emitting (in-flight packets are unaffected).
  void stop() {
    running_ = false;
    timer_.cancel();
  }

  Rate mean_rate() const { return mean_rate_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  DataSize bytes_sent() const { return bytes_sent_; }

  CrossTrafficSource(const CrossTrafficSource&) = delete;
  CrossTrafficSource& operator=(const CrossTrafficSource&) = delete;

 private:
  void emit_and_reschedule();
  Duration next_interarrival();

  Simulator& sim_;
  PacketHandler& target_;
  Rate mean_rate_;
  Interarrival model_;
  PacketSizeMix mix_;
  Rng rng_;
  double pareto_alpha_;
  double mean_gap_secs_;
  double pareto_xm_secs_{0.0};
  double pareto_inv_alpha_{0.0};
  // Emission is a single reusable timer re-armed from its own callback:
  // one packet costs no closure construction and no allocation.
  Simulator::TimerHandle timer_;

  bool running_{false};
  std::uint64_t packets_sent_{0};
  DataSize bytes_sent_{};
};

/// A fixed-size pool of independent sources sharing one aggregate rate.
///
/// The number of sources `n` models the *degree of statistical multiplexing*
/// (Section VI-B): more sources at the same aggregate utilization yield a
/// smoother arrival process, fewer sources a burstier one.
class TrafficAggregate {
 public:
  TrafficAggregate(Simulator& sim, PacketHandler& target, Rate aggregate_rate,
                   int num_sources, Interarrival model, PacketSizeMix mix, Rng rng,
                   double pareto_alpha = 1.9);

  void start();
  void stop();

  DataSize bytes_sent() const;
  int source_count() const { return static_cast<int>(sources_.size()); }

 private:
  std::vector<std::unique_ptr<CrossTrafficSource>> sources_;
};

}  // namespace pathload::sim
