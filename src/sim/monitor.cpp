#include "sim/monitor.hpp"

#include <cmath>

namespace pathload::sim {

UtilizationMonitor::UtilizationMonitor(Simulator& sim, const Link& link,
                                       Duration window)
    : sim_{sim},
      link_{link},
      window_{window},
      timer_{sim.make_timer([this] { sample(); })} {}

void UtilizationMonitor::start() {
  if (running_) return;
  running_ = true;
  window_start_ = sim_.now();
  bytes_at_window_start_ = link_.bytes_forwarded();
  timer_.schedule_in(window_);
}

void UtilizationMonitor::stop() {
  if (!running_) return;
  const Duration elapsed = sim_.now() - window_start_;
  if (elapsed > Duration::zero()) {
    const DataSize delta = link_.bytes_forwarded() - bytes_at_window_start_;
    const double u = delta.bits() / (link_.capacity().bits_per_sec() * elapsed.secs());
    readings_.push_back({window_start_, u, link_.capacity() * (1.0 - u)});
  }
  running_ = false;
  timer_.cancel();
}

void UtilizationMonitor::sample() {
  if (!running_) return;
  const DataSize delta = link_.bytes_forwarded() - bytes_at_window_start_;
  const double u = delta.bits() / (link_.capacity().bits_per_sec() * window_.secs());
  readings_.push_back({window_start_, u, link_.capacity() * (1.0 - u)});
  window_start_ = sim_.now();
  bytes_at_window_start_ = link_.bytes_forwarded();
  timer_.schedule_in(window_);
}

double UtilizationMonitor::average_utilization() const {
  if (readings_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : readings_) sum += r.utilization;
  return sum / static_cast<double>(readings_.size());
}

Rate UtilizationMonitor::average_avail_bw() const {
  return link_.capacity() * (1.0 - average_utilization());
}

UtilizationMonitor::Band UtilizationMonitor::quantize(Rate value, Rate step) {
  const double s = step.bits_per_sec();
  const double lo = std::floor(value.bits_per_sec() / s) * s;
  return {Rate::bps(lo), Rate::bps(lo + s)};
}

ThroughputMonitor::ThroughputMonitor(Simulator& sim, Duration bucket)
    : sim_{sim}, bucket_width_{bucket} {}

void ThroughputMonitor::handle(const Packet& p) {
  roll_to(sim_.now());
  current_bytes_ += p.size();
  total_ += p.size();
  if (downstream_ != nullptr) downstream_->handle(p);
}

void ThroughputMonitor::roll_to(TimePoint t) {
  if (!started_) {
    started_ = true;
    current_start_ = t;
    return;
  }
  while (t - current_start_ >= bucket_width_) {
    buckets_.push_back({current_start_, current_bytes_, bucket_width_});
    current_start_ += bucket_width_;
    current_bytes_ = DataSize{};
  }
}

std::vector<ThroughputMonitor::Bucket> ThroughputMonitor::finish() {
  roll_to(sim_.now());
  auto out = buckets_;
  const Duration tail = sim_.now() - current_start_;
  if (started_ && tail > Duration::zero()) {
    out.push_back({current_start_, current_bytes_, tail});
  }
  return out;
}

Rate ThroughputMonitor::Bucket::rate() const {
  return width > Duration::zero() ? rate_of(bytes, width) : Rate::zero();
}

}  // namespace pathload::sim
