#include "sim/rtt_probe.hpp"

namespace pathload::sim {

RttProber::RttProber(Simulator& sim, Path& path, Duration period,
                     Duration reverse_delay, std::int32_t probe_size_bytes)
    : sim_{sim},
      path_{path},
      period_{period},
      reverse_delay_{reverse_delay},
      probe_size_{probe_size_bytes},
      flow_{sim.next_flow_id()},
      send_timer_{sim.make_timer([this] { send_probe(); })} {
  path_.egress().register_flow(flow_, this);
}

RttProber::~RttProber() { path_.egress().unregister_flow(flow_); }

void RttProber::start() {
  if (running_) return;
  running_ = true;
  send_probe();
}

void RttProber::send_probe() {
  if (!running_) return;
  Packet p;
  p.id = sim_.next_packet_id();
  p.flow = flow_;
  p.kind = PacketKind::kPing;
  p.size_bytes = probe_size_;
  p.transit = true;
  p.seq = next_seq_++;
  p.entered = sim_.now();
  outstanding_.emplace(p.seq, sim_.now());
  path_.ingress().handle(p);
  send_timer_.schedule_in(period_);
}

void RttProber::handle(const Packet& p) {
  // The probe reached the far end; the "echo" comes back over a fixed-delay
  // reverse path.
  sim_.schedule_in(reverse_delay_, [this, seq = p.seq] {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    samples_.push_back({it->second, sim_.now() - it->second});
    outstanding_.erase(it);
  });
}

std::uint64_t RttProber::lost() const {
  // Anything still outstanding after the run is counted as lost by callers
  // that stop the prober and drain the simulator first.
  return outstanding_.size();
}

}  // namespace pathload::sim
