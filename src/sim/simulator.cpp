#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace pathload::sim {

Simulator::Simulator() { heap_.reserve(4096); }

void Simulator::schedule_at(TimePoint t, Callback cb) {
  if (t < now_) {
    throw std::logic_error{"Simulator::schedule_at: time is in the past"};
  }
  heap_.push_back(Event{t, ++seq_, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Simulator::Event Simulator::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

bool Simulator::run_next() {
  if (heap_.empty()) return false;
  Event ev = pop_next();
  now_ = ev.at;
  ++processed_;
  ev.cb();
  return true;
}

void Simulator::run_until(TimePoint t) {
  while (!heap_.empty() && heap_.front().at <= t) {
    Event ev = pop_next();
    now_ = ev.at;
    ++processed_;
    ev.cb();
  }
  now_ = std::max(now_, t);
}

void Simulator::run_all() {
  while (run_next()) {
  }
}

}  // namespace pathload::sim
