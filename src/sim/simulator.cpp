#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace pathload::sim {

Simulator::Simulator() : buckets_(kBucketCount) { cur_.reserve(64); }

Simulator::~Simulator() = default;

void Simulator::throw_past(TimePoint t, TimePoint now) {
  throw std::logic_error{"Simulator::schedule_at: t=" + std::to_string(t.nanos()) +
                         "ns is before now=" + std::to_string(now.nanos()) + "ns (" +
                         std::to_string((now - t).nanos()) + "ns in the past)"};
}

Simulator::Slot* Simulator::alloc_slot() {
  if (free_head_ != nullptr) {
    Slot* s = free_head_;
    free_head_ = s->next_free;
    return s;
  }
  // Blocks double up to kSlabChunk: a small simulation (a testbed holds a
  // couple dozen timers) should not pay for zero-initializing a full-size
  // block in its constructor-heavy benches and sweeps.
  if (slab_.empty() || slab_used_ == slab_cap_) {
    slab_cap_ = slab_.empty() ? 16 : std::min(slab_cap_ * 2, kSlabChunk);
    slab_.push_back(std::make_unique<Slot[]>(slab_cap_));
    slab_used_ = 0;
  }
  return &slab_.back()[slab_used_++];
}

void Simulator::free_slot(Slot* s) {
  s->cb = Callback{};
  ++s->gen;  // invalidates any key still referencing this slot
  s->persistent = false;
  s->armed = false;
  s->firing = false;
  s->zombie = false;
  s->next_free = free_head_;
  free_head_ = s;
}

void Simulator::insert(Key k) {
  if (k.at < cur_start_ + kBucketWidth) {
    // Near-future fast lane: sorted insert behind the consumption point.
    // Packet workloads schedule mostly in arrival order, so this is almost
    // always a plain append; the memmove otherwise shifts 32-byte keys only.
    if (cur_.empty() || !KeyBefore{}(k, cur_.back())) {
      cur_.push_back(k);
    } else {
      const auto pos = std::lower_bound(
          cur_.begin() + static_cast<std::ptrdiff_t>(cur_head_), cur_.end(), k,
          KeyBefore{});
      cur_.insert(pos, k);
    }
  } else if (k.at < window_end_) {
    admit_to_ring(k);
  } else if (cur_head_ == cur_.size() && ring_count_ == 0 && overflow_.empty()) {
    // Queue is empty and the clock has outrun the window (e.g. run_until on
    // an idle simulator): re-anchor the window at the new event instead of
    // sending it on a pointless trip through the overflow heap.
    cur_start_ = (k.at >> kBucketShift) << kBucketShift;
    window_end_ = cur_start_ + static_cast<std::int64_t>(kBucketCount) * kBucketWidth;
    cur_.clear();
    cur_head_ = 0;
    cur_.push_back(k);
  } else {
    overflow_.push_back(k);
    std::push_heap(overflow_.begin(), overflow_.end(), KeyLater{});
  }
  ++live_;
}

void Simulator::schedule_at(TimePoint t, Callback cb) {
  if (t < now_) throw_past(t, now_);
  Slot* s = alloc_slot();
  s->cb = std::move(cb);
  insert(Key{t.nanos(), ++seq_, s, s->gen});
}

void Simulator::schedule_now(Callback cb) {
  Slot* s = alloc_slot();
  s->cb = std::move(cb);
  insert(Key{now_.nanos(), ++seq_, s, s->gen});
}

std::uint64_t Simulator::reserve_fifo_tickets(std::uint32_t n) {
  seq_ += n;
  return seq_ - n + 1;
}

std::uint64_t Simulator::schedule_batch(std::vector<BatchEvent> entries) {
  // Validate the whole batch before touching any state: a throwing call
  // must leave the FIFO numbering and the queue exactly as it found them
  // (schedule_at makes the same guarantee).
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].at < now_) throw_past(entries[i].at, now_);
    if (i > 0 && entries[i].at < entries[i - 1].at) {
      throw std::logic_error{"Simulator::schedule_batch: entries not time-ascending"};
    }
  }
  const auto n = static_cast<std::uint32_t>(entries.size());
  const std::uint64_t base = reserve_fifo_tickets(n);
  bool deferred = false;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Slot* s = alloc_slot();
    s->cb = std::move(entries[i].cb);
    const Key k{entries[i].at.nanos(), base + i, s, s->gen};
    // Once one key lands beyond the window, every later one does too
    // (ascending times, and the re-anchor branch needs an empty overflow):
    // append those raw and restore the heap invariant once at the end.
    // Safe because KeyLater is a total order, so the pop sequence does not
    // depend on the heap's internal layout.
    if (deferred || (k.at >= window_end_ && !(cur_head_ == cur_.size() &&
                                             ring_count_ == 0 && overflow_.empty()))) {
      overflow_.push_back(k);
      ++live_;
      deferred = true;
    } else {
      insert(k);
    }
  }
  if (deferred) std::make_heap(overflow_.begin(), overflow_.end(), KeyLater{});
  return base;
}

void Simulator::arm_timer(Slot* slot, TimePoint t) {
  // Validate before consuming a ticket: a caller that catches the error and
  // continues must not find the FIFO numbering shifted (schedule_at makes
  // the same guarantee).
  if (t < now_) throw_past(t, now_);
  arm_validated(slot, t, ++seq_);
}

void Simulator::arm_timer(Slot* slot, TimePoint t, std::uint64_t ticket) {
  if (t < now_) throw_past(t, now_);
  arm_validated(slot, t, ticket);
}

void Simulator::arm_validated(Slot* slot, TimePoint t, std::uint64_t ticket) {
  if (slot->armed) {  // reschedule-in-place: drop the pending occurrence
    ++slot->gen;
    --live_;
  }
  slot->armed = true;
  insert(Key{t.nanos(), ticket, slot, slot->gen});
}

void Simulator::disarm_timer(Slot* slot) {
  if (slot->armed) {
    ++slot->gen;
    slot->armed = false;
    --live_;
  }
}

void Simulator::release_timer(Slot* slot) {
  disarm_timer(slot);
  if (slot->firing) {
    // The handle is being destroyed from inside its own callback, whose
    // closure lives in this slot and is still executing. Defer the recycle
    // to fire(), so neither the destruction nor a nested alloc_slot can
    // clobber the running lambda.
    slot->zombie = true;
    return;
  }
  free_slot(slot);
}

void Simulator::admit_to_ring(const Key& k) {
  const auto slot = static_cast<std::size_t>(k.at >> kBucketShift) & (kBucketCount - 1);
  buckets_[slot].push_back(k);
  occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  ++ring_count_;
}

void Simulator::drain_overflow_into_window() {
  while (!overflow_.empty() && overflow_.front().at < window_end_) {
    const Key k = overflow_.front();
    std::pop_heap(overflow_.begin(), overflow_.end(), KeyLater{});
    overflow_.pop_back();
    admit_to_ring(k);
  }
}

std::size_t Simulator::next_occupied_after(std::size_t slot) const {
  // Circular search for the first set bit at or after `slot + 1`; the
  // caller guarantees at least one bucket is occupied, and the current
  // slot's own bucket is always empty (its range belongs to the fast
  // lane), so the search terminates within one wrap.
  const std::size_t pos = (slot + 1) & (kBucketCount - 1);
  std::size_t w = pos >> 6;
  std::uint64_t masked = occupied_[w] & (~std::uint64_t{0} << (pos & 63));
  while (masked == 0) {
    w = (w + 1) & (kBucketCount / 64 - 1);
    masked = occupied_[w];
  }
  return (w << 6) + static_cast<std::size_t>(std::countr_zero(masked));
}

bool Simulator::advance_bucket() {
  // Precondition: the fast lane is fully consumed.
  cur_.clear();
  cur_head_ = 0;
  if (ring_count_ == 0) {
    if (overflow_.empty()) return false;
    // Nothing within the window: re-anchor it one bucket below the
    // earliest overflow key (so that key lands at ring distance 1) and let
    // the drain below admit everything that now fits.
    const std::int64_t top = overflow_.front().at;
    cur_start_ = ((top >> kBucketShift) << kBucketShift) - kBucketWidth;
    window_end_ = cur_start_ + static_cast<std::int64_t>(kBucketCount) * kBucketWidth;
    // Every drained key sits at ring distance in [1, kBucketCount), so the
    // normal jump below finds the earliest one.
    drain_overflow_into_window();
  }

  // Jump straight to the next occupied bucket. Ring keys always precede
  // every overflow key (they are within the window, overflow is beyond
  // it), so the bitmap alone decides where the next event lives.
  const auto slot = static_cast<std::size_t>(cur_start_ >> kBucketShift) & (kBucketCount - 1);
  const std::size_t next = next_occupied_after(slot);
  const auto dist =
      static_cast<std::int64_t>((next - slot - 1) & (kBucketCount - 1)) + 1;
  cur_start_ += dist * kBucketWidth;
  window_end_ += dist * kBucketWidth;

  auto& bucket = buckets_[next];
  occupied_[next >> 6] &= ~(std::uint64_t{1} << (next & 63));
  if (bucket.size() == 1) {
    // Dominant case for sparse workloads: skip the swap and sort checks.
    cur_.push_back(bucket.front());
    bucket.clear();
    ring_count_ -= 1;
  } else {
    cur_.swap(bucket);
    ring_count_ -= cur_.size();
    // Events are overwhelmingly scheduled in chronological order, so the
    // bucket usually arrives already sorted; checking first skips the sort
    // for the common case.
    if (!std::is_sorted(cur_.begin(), cur_.end(), KeyBefore{})) {
      std::sort(cur_.begin(), cur_.end(), KeyBefore{});
    }
  }

  // Admit overflow keys that entered the window as it advanced. They land
  // at ring distance >= 1 ahead of the bucket just taken (the window moved
  // by at most kBucketCount - 1 buckets), never inside it.
  drain_overflow_into_window();
  return true;
}

bool Simulator::pop_live(Key& out) {
  if (live_ == 0) return false;
  for (;;) {
    while (cur_head_ == cur_.size()) {
      if (!advance_bucket()) return false;  // unreachable while live_ > 0
    }
    const Key k = cur_[cur_head_++];
    if (k.slot->gen != k.gen) continue;  // cancelled, skip lazily
    --live_;
    out = k;
    return true;
  }
}

void Simulator::fire(const Key& k) {
  Slot* s = k.slot;
  if (s->persistent) {
    // Disarm before invoking so the callback can re-arm its own timer.
    s->armed = false;
    s->firing = true;
    s->cb();
    s->firing = false;
    if (s->zombie) {  // the callback destroyed its own handle
      s->zombie = false;
      free_slot(s);
    }
  } else {
    // Invoke in place -- slab blocks never move, and the slot is recycled
    // only after the call, so nested schedules cannot clobber it.
    s->cb();
    free_slot(s);
  }
}

bool Simulator::run_next() {
  Key k;  // NOLINT(cppcoreguidelines-pro-type-member-init): filled by pop_live
  if (!pop_live(k)) return false;
  now_ = TimePoint::from_nanos(k.at);
  ++processed_;
  fire(k);
  return true;
}

void Simulator::run_until(TimePoint t) {
  const std::int64_t tn = t.nanos();
  Key k;  // NOLINT(cppcoreguidelines-pro-type-member-init)
  while (pop_live(k)) {
    if (k.at > tn) {
      // Un-pop: the key came off the front of the sorted fast lane.
      --cur_head_;
      ++live_;
      break;
    }
    now_ = TimePoint::from_nanos(k.at);
    ++processed_;
    fire(k);
  }
  if (t > now_) now_ = t;
}

void Simulator::run_all() {
  while (run_next()) {
  }
}

}  // namespace pathload::sim
