#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/link.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace pathload::sim {

/// Per-flow dispatcher at the receiving end of a path.
///
/// Several agents (pathload receiver, TCP sink, ping reflector) coexist at
/// the egress host; packets are routed to them by flow id.
class FlowDemux final : public PacketHandler {
 public:
  void register_flow(std::uint32_t flow, PacketHandler* handler);
  void unregister_flow(std::uint32_t flow);
  void handle(const Packet& p) override;

  std::uint64_t unclaimed_packets() const { return unclaimed_; }

 private:
  std::unordered_map<std::uint32_t, PacketHandler*> handlers_;
  std::uint64_t unclaimed_{0};
};

/// Parameters of one hop of a path.
struct HopSpec {
  Rate capacity;
  Duration prop_delay{Duration::zero()};
  DataSize buffer_limit{DataSize::bytes(1'000'000)};
};

/// A contiguous range of hops [first, last] that a flow traverses: the flow
/// enters the path just before link `first` and leaves right after link
/// `last`. The defaults name the whole path; `last == kPathEnd` always
/// resolves to the final hop. A one-hop segment (first == last) is the
/// hop-local special case of Fig. 4's cross-traffic topology.
struct Segment {
  static constexpr std::size_t kPathEnd = static_cast<std::size_t>(-1);

  std::size_t first{0};
  std::size_t last{kPathEnd};
};

/// A fixed, unidirectional multi-hop path: a chain of store-and-forward
/// links (the paper's Section I model). Transit packets injected at the
/// ingress traverse every link and surface at the egress demux; hop-local
/// cross traffic injected directly into a link leaves the path right after
/// that link (Fig. 4's topology).
///
/// Flows may also attach to a *segment* [i, j] of the chain: their packets
/// enter at segment_entry, carry exit_hop_value(segment) in
/// Packet::exit_hop, and surface at segment_exit's demux right after hop j
/// — the partial-overlap topology responsive cross workloads need. The
/// default exit_hop (kExitAtEgress) reproduces end-to-end routing exactly,
/// so pre-segment code paths are bit-identical.
class Path {
 public:
  Path(Simulator& sim, std::vector<HopSpec> hops);

  /// Entry point of the first link; inject end-to-end packets here.
  PacketHandler& ingress() { return *links_.front(); }

  /// Dispatcher for packets that exit the last link.
  FlowDemux& egress() { return egress_; }

  /// Resolve kPathEnd and bounds-check; throws std::out_of_range naming the
  /// offending segment on first > last or last >= hop_count().
  Segment normalized(Segment s) const;

  /// Entry point of a flow attached to `s`: the head of link s.first.
  PacketHandler& segment_entry(Segment s) { return *links_.at(normalized(s).first); }

  /// Dispatcher where packets of a flow attached to `s` surface after hop
  /// s.last. For segments ending at the final hop this is egress() itself,
  /// so whole-path flows keep their one demux.
  FlowDemux& segment_exit(Segment s);

  /// The Packet::exit_hop value packets of a flow attached to `s` must
  /// carry (kExitAtEgress for segments ending at the final hop).
  std::uint32_t exit_hop_value(Segment s) const;

  Link& link(std::size_t i) { return *links_.at(i); }
  const Link& link(std::size_t i) const { return *links_.at(i); }
  std::size_t hop_count() const { return links_.size(); }

  /// End-to-end capacity: min link capacity (Eq. (1), the narrow link).
  Rate capacity() const;

  /// Index of the narrow link (first minimum-capacity hop). Distinct from
  /// the *tight* link (min avail-bw) on heterogeneous paths — the paper's
  /// Section II distinction that the tight≠narrow scenarios exercise.
  std::size_t narrow_index() const;

  /// Sum of propagation delays (no queueing).
  Duration base_delay() const;

  /// Minimum end-to-end latency of a packet of `size`: propagation plus
  /// serialization at every hop with empty queues.
  Duration unloaded_transit_time(DataSize size) const;

 private:
  /// Routes transit packets from link i to link i+1 (or egress), hands
  /// segment flows that end at hop i to the hop's exit demux, and absorbs
  /// exiting hop-local cross traffic.
  class Junction final : public PacketHandler {
   public:
    Junction(std::uint32_t hop, PacketHandler* next_for_transit)
        : hop_{hop}, next_{next_for_transit} {}
    void handle(const Packet& p) override {
      if (!p.transit) return;            // hop-local cross traffic leaves here
      if (p.exit_hop == hop_) {
        exits_.handle(p);                // segment flow ends after this hop
      } else {
        next_->handle(p);
      }
    }
    FlowDemux& exits() { return exits_; }

   private:
    std::uint32_t hop_;
    PacketHandler* next_;
    FlowDemux exits_;
  };

  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Junction>> junctions_;
  FlowDemux egress_;
};

}  // namespace pathload::sim
