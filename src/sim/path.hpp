#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/link.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace pathload::sim {

/// Per-flow dispatcher at the receiving end of a path.
///
/// Several agents (pathload receiver, TCP sink, ping reflector) coexist at
/// the egress host; packets are routed to them by flow id.
class FlowDemux final : public PacketHandler {
 public:
  void register_flow(std::uint32_t flow, PacketHandler* handler);
  void unregister_flow(std::uint32_t flow);
  void handle(const Packet& p) override;

  std::uint64_t unclaimed_packets() const { return unclaimed_; }

 private:
  std::unordered_map<std::uint32_t, PacketHandler*> handlers_;
  std::uint64_t unclaimed_{0};
};

/// Parameters of one hop of a path.
struct HopSpec {
  Rate capacity;
  Duration prop_delay{Duration::zero()};
  DataSize buffer_limit{DataSize::bytes(1'000'000)};
};

/// A fixed, unidirectional multi-hop path: a chain of store-and-forward
/// links (the paper's Section I model). Transit packets injected at the
/// ingress traverse every link and surface at the egress demux; hop-local
/// cross traffic injected directly into a link leaves the path right after
/// that link (Fig. 4's topology).
class Path {
 public:
  Path(Simulator& sim, std::vector<HopSpec> hops);

  /// Entry point of the first link; inject end-to-end packets here.
  PacketHandler& ingress() { return *links_.front(); }

  /// Dispatcher for packets that exit the last link.
  FlowDemux& egress() { return egress_; }

  Link& link(std::size_t i) { return *links_.at(i); }
  const Link& link(std::size_t i) const { return *links_.at(i); }
  std::size_t hop_count() const { return links_.size(); }

  /// End-to-end capacity: min link capacity (Eq. (1), the narrow link).
  Rate capacity() const;

  /// Index of the narrow link (first minimum-capacity hop). Distinct from
  /// the *tight* link (min avail-bw) on heterogeneous paths — the paper's
  /// Section II distinction that the tight≠narrow scenarios exercise.
  std::size_t narrow_index() const;

  /// Sum of propagation delays (no queueing).
  Duration base_delay() const;

  /// Minimum end-to-end latency of a packet of `size`: propagation plus
  /// serialization at every hop with empty queues.
  Duration unloaded_transit_time(DataSize size) const;

 private:
  /// Routes transit packets from link i to link i+1 (or egress) and absorbs
  /// exiting cross traffic.
  class Junction final : public PacketHandler {
   public:
    explicit Junction(PacketHandler* next_for_transit) : next_{next_for_transit} {}
    void handle(const Packet& p) override {
      if (p.transit) next_->handle(p);
    }

   private:
    PacketHandler* next_;
  };

  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Junction>> junctions_;
  FlowDemux egress_;
};

}  // namespace pathload::sim
