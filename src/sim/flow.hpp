// The responsive-flow seam between the sim layer and its workloads.
//
// A ResponsiveFlow is any elastic cross workload whose rate reacts to what
// the path does: the packet-accurate tcp::SegmentTcpFlow (a real Reno
// connection per ON period) and the engine-v2 fluid-rate FluidTcpSource
// (AIMD rate updates per RTT epoch, sim/fluid_traffic.hpp) both implement
// it. ScenarioInstance holds flows behind this interface so a `flow tcp`
// spec entry can select either backend without the scenario layer caring
// which — and without src/sim depending on src/tcp.

#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pathload::sim {

/// One responsive cross flow bound to a path segment, behind whichever
/// engine implements it. All implementations are deterministic (no RNG):
/// flow-bearing runs stay bit-reproducible.
class ResponsiveFlow {
 public:
  virtual ~ResponsiveFlow() = default;

  /// Schedule the flow's first connection `start` from now. Call once,
  /// before running the simulation past the start time.
  virtual void launch() = 0;

  /// True while a connection (or fluid rate segment) is up.
  virtual bool active() const = 0;

  /// Payload acknowledged across every connection so far, restarts
  /// included. For fluid flows this is the integrated applied rate — the
  /// fluid analogue of cumulative ACKed bytes.
  virtual DataSize bytes_acked() const = 0;

  /// Connections begun so far (1 for non-cycling flows that have started).
  virtual std::uint64_t connections_started() const = 0;

  /// Cumulative RTO timeouts across connections (0 for fluid flows, whose
  /// congestion response is rate halving, never a retransmission timer).
  virtual std::uint64_t timeouts() const = 0;
};

}  // namespace pathload::sim
