#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/small_function.hpp"
#include "util/time.hpp"

namespace pathload::sim {

/// Discrete-event simulation engine.
///
/// This is the substrate standing in for the paper's NS-2 simulations
/// (Section V-A): links, traffic sources, and protocol agents schedule
/// callbacks on a single virtual clock with nanosecond resolution.
///
/// Events with equal timestamps fire in scheduling order (FIFO tie-break),
/// which makes packet arrivals deterministic and runs reproducible for a
/// fixed RNG seed.
///
/// Internally the engine is a calendar queue rather than a binary heap:
///
///  - Callbacks live in a slab of reusable slots; the queue itself orders
///    only 32-byte keys (timestamp, FIFO ticket, slot pointer), so no
///    callable is ever moved by a heap sift or a bucket sort.
///  - A near-future fast lane holds the current 131 us bucket as a run
///    sorted by (timestamp, ticket) and consumed front-to-back; inserting
///    into it is a sorted insert, which for the packet workloads here is
///    almost always a plain append.
///  - Events up to ~33.6 ms out are appended unsorted to one of 256 ring
///    buckets and sorted only when their bucket becomes current; events
///    beyond the ring go to a min-heap of keys and are admitted into the
///    ring as the window rotates forward.
///
/// Every lane pops in the total order by (timestamp, ticket), so the event
/// sequence is bit-identical to the previous heap scheduler. Degenerate
/// workloads degrade gracefully: all-near events turn the fast lane into a
/// sorted vector, all-far events turn the overflow heap into the old binary
/// heap -- but of trivially movable keys instead of fat closures.
class Simulator {
 public:
  // Sized so that a lambda capturing a Packet (~56 B) plus a couple of
  // pointers stays inline; SmallFunction rejects larger captures at compile
  // time rather than silently allocating.
  using Callback = SmallFunction<120>;

  class TimerHandle;

  Simulator();
  ~Simulator();

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (must not be in the past).
  void schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` to run `d` from now.
  void schedule_in(Duration d, Callback cb) { schedule_at(now_ + d, std::move(cb)); }

  /// Schedule `cb` at the current virtual time, after everything already
  /// scheduled for this instant (normal FIFO tie-break). Fast path: "now"
  /// can never be in the past, so the validity check is skipped.
  void schedule_now(Callback cb);

  /// Create a reusable timer owning `cb`. Periodic sources keep one timer
  /// and re-arm it from inside its own callback, so rescheduling moves no
  /// callable and allocates nothing.
  ///
  /// Lifetime: the handle borrows this Simulator's slab, so every handle
  /// must be destroyed before the Simulator (declare the Simulator first,
  /// as Testbed does). A handle outliving its Simulator is use-after-free.
  TimerHandle make_timer(Callback cb);

  /// Reserve `n` consecutive FIFO tie-break tickets, returning the first.
  ///
  /// A sender that knows its whole transmission schedule upfront (e.g. the
  /// K packets of a SLoPS stream) reserves its tickets in one call and
  /// attaches them to later timer re-arms: equal-timestamp ordering against
  /// other events is then exactly as if all occurrences had been scheduled
  /// upfront, which keeps runs bit-identical to the pre-timer engine.
  std::uint64_t reserve_fifo_tickets(std::uint32_t n);

  /// One event of a schedule_batch call.
  struct BatchEvent {
    TimePoint at;
    Callback cb;
  };

  /// Bulk-insert `entries` (time-ascending, none in the past) under one
  /// internal reserve_fifo_tickets block, returning the first ticket.
  /// Equal-timestamp ordering within the batch follows entry order; against
  /// foreign events it is exactly as if every entry had been scheduled at
  /// the call instant. Because entries arrive presorted, near keys append
  /// to the fast lane without sorted-insert churn and beyond-window keys
  /// are heapified once at the end instead of sift-up per key — the
  /// fleet-start path of the batched probe bursts (docs/ENGINE.md).
  std::uint64_t schedule_batch(std::vector<BatchEvent> entries);

  /// Run a single event; returns false if the queue is empty.
  bool run_next();

  /// Process all events with timestamp <= t, then advance the clock to t.
  /// With an empty queue this still advances the clock.
  void run_until(TimePoint t);

  /// Process all events in the next `d` of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Run until the event queue is fully drained.
  void run_all();

  std::uint64_t events_processed() const { return processed_; }
  /// Live (not cancelled) scheduled occurrences.
  std::size_t pending_events() const { return live_; }

  /// Globally unique packet id generator for this simulation.
  std::uint64_t next_packet_id() { return ++packet_ids_; }

  /// Globally unique flow id generator (flow 0 is reserved for cross traffic).
  std::uint32_t next_flow_id() { return ++flow_ids_; }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

 private:
  static constexpr int kBucketShift = 17;  // 2^17 ns = 131.072 us per bucket
  static constexpr std::int64_t kBucketWidth = std::int64_t{1} << kBucketShift;
  static constexpr std::size_t kBucketCount = 256;  // ring window ~33.6 ms
  static constexpr std::size_t kSlabChunk = 256;    // slots per slab block

  struct Slot {
    Callback cb;
    Slot* next_free{nullptr};
    std::uint32_t gen{0};
    bool persistent{false};  // timer slot: survives firing
    bool armed{false};       // timer slot: has a live key in the queue
    bool firing{false};      // timer slot: its callback is on the stack
    bool zombie{false};      // released mid-fire: recycle after cb returns
  };

  /// What the queue actually orders: trivially copyable, 32 bytes. The
  /// slot pointer is stable for the life of the occurrence (slab blocks
  /// never move), so firing needs no index arithmetic.
  struct Key {
    std::int64_t at;    // absolute ns
    std::uint64_t seq;  // FIFO tie-break ticket
    Slot* slot;
    std::uint32_t gen;  // matches slot->gen, else the key is stale
  };
  struct KeyBefore {
    bool operator()(const Key& a, const Key& b) const {
      return a.at < b.at || (a.at == b.at && a.seq < b.seq);
    }
  };
  struct KeyLater {  // for the overflow min-heap
    bool operator()(const Key& a, const Key& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  Slot* alloc_slot();
  void free_slot(Slot* s);
  void insert(Key k);
  void admit_to_ring(const Key& k);
  void drain_overflow_into_window();
  bool pop_live(Key& out);
  bool advance_bucket();
  void fire(const Key& k);

  // TimerHandle backdoor.
  void arm_timer(Slot* slot, TimePoint t);
  void arm_timer(Slot* slot, TimePoint t, std::uint64_t ticket);
  void arm_validated(Slot* slot, TimePoint t, std::uint64_t ticket);
  void disarm_timer(Slot* slot);
  void release_timer(Slot* slot);
  friend class TimerHandle;

  [[noreturn]] static void throw_past(TimePoint t, TimePoint now);

  std::vector<std::unique_ptr<Slot[]>> slab_;
  std::size_t slab_used_{0};  // slots handed out from the newest block
  std::size_t slab_cap_{0};   // size of the newest block
  Slot* free_head_{nullptr};

  std::vector<Key> cur_;  // sorted near-future fast lane
  std::size_t cur_head_{0};
  std::int64_t cur_start_{0};  // bucket-aligned start of the fast lane
  std::int64_t window_end_{static_cast<std::int64_t>(kBucketCount) * kBucketWidth};
  std::vector<std::vector<Key>> buckets_;  // ring, unsorted
  std::size_t ring_count_{0};              // keys currently in ring buckets
  // Occupancy bitmap over the ring: advancing the window is a couple of
  // countr_zero jumps instead of a linear scan over empty buckets.
  std::uint64_t occupied_[kBucketCount / 64]{};
  std::vector<Key> overflow_;  // min-heap of beyond-window keys

  std::size_t next_occupied_after(std::size_t slot) const;

  TimePoint now_{TimePoint::origin()};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  std::size_t live_{0};
  std::uint64_t packet_ids_{0};
  std::uint32_t flow_ids_{0};
};

/// A re-armable handle to one scheduled occurrence of a persistent callback.
///
/// At most one occurrence is pending per timer: arming an armed timer
/// replaces the pending occurrence (reschedule-in-place); `cancel` drops it.
/// The callback stays in its slab slot for the life of the handle, so
/// periodic sources pay zero allocation and zero callable moves per period.
class Simulator::TimerHandle {
 public:
  TimerHandle() = default;
  ~TimerHandle() { release(); }

  TimerHandle(TimerHandle&& o) noexcept : sim_{o.sim_}, slot_{o.slot_} {
    o.sim_ = nullptr;
    o.slot_ = nullptr;
  }
  TimerHandle& operator=(TimerHandle&& o) noexcept {
    if (this != &o) {
      release();
      sim_ = o.sim_;
      slot_ = o.slot_;
      o.sim_ = nullptr;
      o.slot_ = nullptr;
    }
    return *this;
  }
  TimerHandle(const TimerHandle&) = delete;
  TimerHandle& operator=(const TimerHandle&) = delete;

  /// Arm (or re-arm) the timer for absolute time `t` (must not be in the past).
  void schedule_at(TimePoint t) {
    require_bound();
    sim_->arm_timer(slot_, t);
  }
  /// Arm (or re-arm) the timer `d` from now.
  void schedule_in(Duration d) {
    require_bound();
    sim_->arm_timer(slot_, sim_->now() + d);
  }
  /// Arm with a pre-reserved FIFO ticket (see Simulator::reserve_fifo_tickets).
  void schedule_at(TimePoint t, std::uint64_t ticket) {
    require_bound();
    sim_->arm_timer(slot_, t, ticket);
  }

  /// Drop the pending occurrence, if any. The callback is retained.
  void cancel() {
    if (sim_ != nullptr) sim_->disarm_timer(slot_);
  }

  /// True if an occurrence is scheduled and not yet fired.
  bool pending() const { return sim_ != nullptr && slot_->armed; }

  explicit operator bool() const { return sim_ != nullptr; }

 private:
  friend class Simulator;
  TimerHandle(Simulator* sim, Slot* slot) : sim_{sim}, slot_{slot} {}

  // Arming an empty (default-constructed or moved-from) handle is a
  // programming error; fail loudly instead of dereferencing null. cancel()
  // and pending() stay no-ops on empty handles, mirroring their semantics.
  void require_bound() const {
    if (sim_ == nullptr) {
      throw std::logic_error{"TimerHandle: scheduling on an empty handle"};
    }
  }

  void release() {
    if (sim_ != nullptr) {
      sim_->release_timer(slot_);
      sim_ = nullptr;
      slot_ = nullptr;
    }
  }

  Simulator* sim_{nullptr};
  Slot* slot_{nullptr};
};

inline Simulator::TimerHandle Simulator::make_timer(Callback cb) {
  Slot* s = alloc_slot();
  s->cb = std::move(cb);
  s->persistent = true;
  s->armed = false;
  return TimerHandle{this, s};
}

}  // namespace pathload::sim
