#pragma once

#include <cstdint>
#include <vector>

#include "util/small_function.hpp"
#include "util/time.hpp"

namespace pathload::sim {

/// Discrete-event simulation engine.
///
/// This is the substrate standing in for the paper's NS-2 simulations
/// (Section V-A): links, traffic sources, and protocol agents schedule
/// callbacks on a single virtual clock with nanosecond resolution.
///
/// Events with equal timestamps fire in scheduling order (FIFO tie-break),
/// which makes packet arrivals deterministic and runs reproducible for a
/// fixed RNG seed.
class Simulator {
 public:
  // Sized so that a lambda capturing a Packet (~56 B) plus a couple of
  // pointers stays inline; SmallFunction rejects larger captures at compile
  // time rather than silently allocating.
  using Callback = SmallFunction<120>;

  Simulator();

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (must not be in the past).
  void schedule_at(TimePoint t, Callback cb);

  /// Schedule `cb` to run `d` from now.
  void schedule_in(Duration d, Callback cb) { schedule_at(now_ + d, std::move(cb)); }

  /// Run a single event; returns false if the queue is empty.
  bool run_next();

  /// Process all events with timestamp <= t, then advance the clock to t.
  void run_until(TimePoint t);

  /// Process all events in the next `d` of virtual time.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Run until the event queue is fully drained.
  void run_all();

  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending_events() const { return heap_.size(); }

  /// Globally unique packet id generator for this simulation.
  std::uint64_t next_packet_id() { return ++packet_ids_; }

  /// Globally unique flow id generator (flow 0 is reserved for cross traffic).
  std::uint32_t next_flow_id() { return ++flow_ids_; }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  Event pop_next();

  std::vector<Event> heap_;
  TimePoint now_{TimePoint::origin()};
  std::uint64_t seq_{0};
  std::uint64_t processed_{0};
  std::uint64_t packet_ids_{0};
  std::uint32_t flow_ids_{0};
};

}  // namespace pathload::sim
