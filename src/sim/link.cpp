#include "sim/link.hpp"

#include <stdexcept>
#include <utility>

namespace pathload::sim {

Link::Link(Simulator& sim, std::string name, Rate capacity, Duration prop_delay,
           DataSize buffer_limit)
    : sim_{sim},
      name_{std::move(name)},
      capacity_{capacity},
      prop_delay_{prop_delay},
      buffer_limit_{buffer_limit},
      service_timer_{sim.make_timer([this] { finish_service(); })} {
  if (capacity <= Rate::zero()) {
    throw std::invalid_argument{"Link capacity must be positive"};
  }
}

void Link::handle(const Packet& p) {
  if (impair_rng_ != nullptr) {
    // Draw order is part of the determinism contract (see LinkImpairments):
    // loss first, then duplication; a disabled knob draws nothing.
    if (impair_.loss > 0.0 && impair_rng_->uniform() < impair_.loss) {
      ++drops_;
      ++impaired_drops_;
      if (p.flow != kCrossTrafficFlow) ++flow_drops_[p.flow];
      return;
    }
    if (impair_.dup > 0.0 && impair_rng_->uniform() < impair_.dup) {
      // The extra copy is counted *before* it is accepted so that per-flow
      // accounting (records + drops == sent + dups) balances even when the
      // copy is immediately drop-tailed.
      ++duplicates_;
      if (p.flow != kCrossTrafficFlow) ++flow_dups_[p.flow];
      accept(p);
    }
  }
  accept(p);
}

void Link::accept(const Packet& p) {
  if (busy_) {
    if (queued_bytes_ + p.size() > buffer_limit_) {
      ++drops_;
      if (p.flow != kCrossTrafficFlow) ++flow_drops_[p.flow];
      return;
    }
    queue_.push_back(p);
    queued_bytes_ += p.size();
    return;
  }
  in_service_ = p;
  begin_service();
}

void Link::set_impairments(const LinkImpairments& imp) {
  impair_ = imp;
  impair_rng_ = imp.any() ? std::make_unique<Rng>(imp.seed) : nullptr;
}

void Link::begin_service() {
  busy_ = true;
  const Duration tx = capacity_.transmission_time(in_service_.size());
  service_timer_.schedule_in(tx);
}

void Link::finish_service() {
  bytes_forwarded_ += in_service_.size();
  ++packets_forwarded_;
  if (downstream_ != nullptr) {
    // Propagation: the packet appears at the downstream node prop_delay
    // after its last bit leaves this link. Reorder jitter stretches the
    // propagation of individual packets, so a lucky later packet can
    // overtake an unlucky earlier one downstream.
    Duration delay = prop_delay_;
    if (impair_rng_ != nullptr && impair_.reorder > Duration::zero()) {
      delay += impair_.reorder * impair_rng_->uniform();
    }
    sim_.schedule_in(delay, [h = downstream_, pkt = in_service_] { h->handle(pkt); });
  }
  if (!queue_.empty()) {
    in_service_ = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= in_service_.size();
    begin_service();
  } else {
    busy_ = false;
  }
}

std::uint64_t Link::drops_for_flow(std::uint32_t flow) const {
  auto it = flow_drops_.find(flow);
  return it != flow_drops_.end() ? it->second : 0;
}

std::uint64_t Link::dups_for_flow(std::uint32_t flow) const {
  auto it = flow_dups_.find(flow);
  return it != flow_dups_.end() ? it->second : 0;
}

Duration Link::backlog_delay() const {
  // Residual service of the in-flight packet is not tracked exactly; the
  // upper bound (full serialization) is fine for tests and diagnostics.
  DataSize backlog = queued_bytes_;
  if (busy_) backlog += in_service_.size();
  return capacity_.transmission_time(backlog);
}

}  // namespace pathload::sim
