#include "sim/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pathload::sim {

Link::Link(Simulator& sim, std::string name, Rate capacity, Duration prop_delay,
           DataSize buffer_limit)
    : sim_{sim},
      name_{std::move(name)},
      capacity_{capacity},
      prop_delay_{prop_delay},
      buffer_limit_{buffer_limit},
      service_timer_{sim.make_timer([this] { finish_service(); })} {
  if (capacity <= Rate::zero()) {
    throw std::invalid_argument{"Link capacity must be positive"};
  }
}

void Link::handle(const Packet& p) {
  if (impair_rng_ != nullptr) {
    // Draw order is part of the determinism contract (see LinkImpairments):
    // loss first, then duplication; a disabled knob draws nothing.
    if (impair_.loss > 0.0 && impair_rng_->uniform() < impair_.loss) {
      ++drops_;
      ++impaired_drops_;
      if (p.flow != kCrossTrafficFlow) ++flow_drops_[p.flow];
      return;
    }
    if (impair_.dup > 0.0 && impair_rng_->uniform() < impair_.dup) {
      // The extra copy is counted *before* it is accepted so that per-flow
      // accounting (records + drops == sent + dups) balances even when the
      // copy is immediately drop-tailed.
      ++duplicates_;
      if (p.flow != kCrossTrafficFlow) ++flow_dups_[p.flow];
      accept(p);
    }
  }
  accept(p);
}

void Link::accept(const Packet& p) {
  if (fluid_mode_) {
    accept_fluid(p);
    return;
  }
  if (busy_) {
    if (queued_bytes_ + p.size() > buffer_limit_) {
      ++drops_;
      if (p.flow != kCrossTrafficFlow) ++flow_drops_[p.flow];
      return;
    }
    queue_.push_back(p);
    queued_bytes_ += p.size();
    return;
  }
  in_service_ = p;
  begin_service();
}

void Link::set_impairments(const LinkImpairments& imp) {
  impair_ = imp;
  impair_rng_ = imp.any() ? std::make_unique<Rng>(imp.seed) : nullptr;
}

void Link::enable_fluid_mode() {
  fluid_mode_ = true;
  fluid_last_ = sim_.now();
}

void Link::add_fluid_rate(Rate delta) {
  settle_fluid();
  // Cancel tiny negative residue when the last of several sources removes
  // its share (the adds and removes are floating-point sums).
  fluid_rate_bps_ = std::max(0.0, fluid_rate_bps_ + delta.bits_per_sec());
}

void Link::settle_fluid() { settle_fluid_at(sim_.now()); }

void Link::settle_fluid_at(TimePoint now) {
  const double dt = (now - fluid_last_).secs();
  if (dt <= 0.0) return;
  const double cap = capacity_.bits_per_sec();
  fluid_bytes_ += std::min(fluid_rate_bps_, cap) * dt / 8.0;
  // W drifts at lambda/C - 1: drains while under-loaded, grows while the
  // fluid alone oversubscribes the link (transient on/off peaks). The
  // max() clamps at the instant the queue empties; the min() is drop-tail
  // for the fluid itself (overflow fluid vanishes, as v1's drop-tail
  // discards the packets it stood for).
  fluid_work_secs_ += dt * (fluid_rate_bps_ / cap - 1.0);
  fluid_work_secs_ = std::max(0.0, fluid_work_secs_);
  fluid_work_secs_ =
      std::min(fluid_work_secs_, capacity_.transmission_time(buffer_limit_).secs());
  fluid_last_ = now;
}

std::optional<TimePoint> Link::fluid_transit(const Packet& p, TimePoint arrival) {
  settle_fluid_at(arrival);
  const Duration tx = capacity_.transmission_time(p.size());
  if (capacity_.bytes_in(Duration::seconds(fluid_work_secs_)) + p.size() >
      buffer_limit_) {
    ++drops_;
    if (p.flow != kCrossTrafficFlow) ++flow_drops_[p.flow];
    return std::nullopt;
  }
  // FIFO: the packet waits out the whole current workload, then serializes.
  // Its own transmission time joins the workload seen by later arrivals, so
  // packet-on-packet queueing (a SLoPS stream overrunning the link) stays
  // exact; only the cross traffic is fluid.
  const Duration wait = Duration::seconds(fluid_work_secs_) + tx;
  fluid_work_secs_ += tx.secs();
  bytes_forwarded_ += p.size();
  ++packets_forwarded_;
  return arrival + (wait + prop_delay_);
}

void Link::accept_fluid(const Packet& p) {
  const TimePoint now = sim_.now();
  const std::optional<TimePoint> delivery = fluid_transit(p, now);
  if (!delivery.has_value()) return;  // drop-tailed (already accounted)
  if (downstream_ != nullptr) {
    Duration delay = *delivery - now;
    if (impair_rng_ != nullptr && impair_.reorder > Duration::zero()) {
      delay += impair_.reorder * impair_rng_->uniform();
    }
    sim_.schedule_in(delay, [h = downstream_, pkt = p] { h->handle(pkt); });
  }
}

DataSize Link::bytes_forwarded() const {
  if (!fluid_mode_) return bytes_forwarded_;
  // Settle-free read: integrate the fluid since the last settle point
  // without mutating (the accessor is const and monitors poll it often).
  const double dt = std::max(0.0, (sim_.now() - fluid_last_).secs());
  const double fluid =
      fluid_bytes_ + std::min(fluid_rate_bps_, capacity_.bits_per_sec()) * dt / 8.0;
  return bytes_forwarded_ + DataSize::bytes(static_cast<std::int64_t>(fluid));
}

void Link::begin_service() {
  busy_ = true;
  const Duration tx = capacity_.transmission_time(in_service_.size());
  service_timer_.schedule_in(tx);
}

void Link::finish_service() {
  bytes_forwarded_ += in_service_.size();
  ++packets_forwarded_;
  if (downstream_ != nullptr) {
    // Propagation: the packet appears at the downstream node prop_delay
    // after its last bit leaves this link. Reorder jitter stretches the
    // propagation of individual packets, so a lucky later packet can
    // overtake an unlucky earlier one downstream.
    Duration delay = prop_delay_;
    if (impair_rng_ != nullptr && impair_.reorder > Duration::zero()) {
      delay += impair_.reorder * impair_rng_->uniform();
    }
    sim_.schedule_in(delay, [h = downstream_, pkt = in_service_] { h->handle(pkt); });
  }
  if (!queue_.empty()) {
    in_service_ = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= in_service_.size();
    begin_service();
  } else {
    busy_ = false;
  }
}

std::uint64_t Link::drops_for_flow(std::uint32_t flow) const {
  auto it = flow_drops_.find(flow);
  return it != flow_drops_.end() ? it->second : 0;
}

std::uint64_t Link::dups_for_flow(std::uint32_t flow) const {
  auto it = flow_dups_.find(flow);
  return it != flow_dups_.end() ? it->second : 0;
}

Duration Link::backlog_delay() const {
  if (fluid_mode_) {
    // The virtual workload *is* the backlog delay; project it to now
    // without mutating.
    const double dt = std::max(0.0, (sim_.now() - fluid_last_).secs());
    const double w = std::max(
        0.0,
        fluid_work_secs_ + dt * (fluid_rate_bps_ / capacity_.bits_per_sec() - 1.0));
    return Duration::seconds(w);
  }
  // Residual service of the in-flight packet is not tracked exactly; the
  // upper bound (full serialization) is fine for tests and diagnostics.
  DataSize backlog = queued_bytes_;
  if (busy_) backlog += in_service_.size();
  return capacity_.transmission_time(backlog);
}

}  // namespace pathload::sim
