#include "baselines/igi.hpp"

#include <algorithm>

namespace pathload::baselines {

Rate IgiEstimator::igi_cross_traffic(Rate capacity, Duration input_gap,
                                     const std::vector<double>& output_gaps_secs) {
  const double g_in = input_gap.secs();
  double sum_all = 0.0;
  double sum_increased = 0.0;
  for (double g_out : output_gaps_secs) {
    sum_all += g_out;
    if (g_out > g_in) sum_increased += g_out - g_in;
  }
  if (sum_all <= 0.0) return Rate::zero();
  return Rate::bps(capacity.bits_per_sec() * sum_increased / sum_all);
}

IgiEstimator::Estimate IgiEstimator::measure(core::ProbeChannel& channel) const {
  Estimate est;
  Duration gap = cfg_.init_gap;
  const TimePoint start = channel.now();
  for (int step = 0; step < cfg_.max_gap_steps; ++step, gap = gap * cfg_.gap_factor) {
    if (deadline_exceeded(channel.now() - start)) {
      est.hit_deadline = true;
      break;
    }
    core::StreamSpec spec;
    spec.stream_id = 0x16100000u + static_cast<std::uint32_t>(step);
    spec.packet_count = cfg_.train_length;
    spec.packet_size = cfg_.packet_size;
    spec.period = gap;
    const auto outcome = channel.run_stream(spec);
    channel.idle(cfg_.inter_train_gap);
    if (outcome.records.size() < 2) continue;

    // Output gaps between consecutively *received* packets; across a loss
    // the spacing is not one probe gap, so only seq-adjacent pairs count.
    std::vector<double> output_gaps;
    output_gaps.reserve(outcome.records.size());
    for (std::size_t i = 1; i < outcome.records.size(); ++i) {
      if (outcome.records[i].seq != outcome.records[i - 1].seq + 1) continue;
      const Duration d =
          outcome.records[i].received - outcome.records[i - 1].received;
      if (d > Duration::zero()) output_gaps.push_back(d.secs());
    }
    if (output_gaps.empty()) continue;

    double sum = 0.0;
    for (double g : output_gaps) sum += g;
    const double avg_out = sum / static_cast<double>(output_gaps.size());

    const Duration spread =
        outcome.records.back().received - outcome.records.front().received;
    const double bits = static_cast<double>(outcome.records.size() - 1) *
                        cfg_.packet_size * 8.0;
    GapStep row;
    row.input_gap = gap;
    row.avg_output_gap = Duration::seconds(avg_out);
    row.output_rate = Rate::bps(bits / spread.secs());
    row.turning = avg_out <= gap.secs() * (1.0 + cfg_.gap_tolerance);
    est.sweep.push_back(row);

    if (row.turning) {
      const Rate lambda = igi_cross_traffic(cfg_.capacity, gap, output_gaps);
      est.igi_avail_bw =
          std::clamp(cfg_.capacity - lambda, Rate::zero(), cfg_.capacity);
      est.ptr_rate = row.output_rate;
      est.valid = true;
      break;
    }
  }
  return est;
}

std::string IgiEstimator::config_text() const {
  std::string out;
  out += core::kv_config_line("capacity_mbps", cfg_.capacity.mbits_per_sec());
  out += core::kv_config_line("train_length", cfg_.train_length);
  out += core::kv_config_line("packet_size", cfg_.packet_size);
  out += core::kv_config_line("init_gap_us", cfg_.init_gap.micros());
  out += core::kv_config_line("gap_factor", cfg_.gap_factor);
  out += core::kv_config_line("max_gap_steps", cfg_.max_gap_steps);
  out += core::kv_config_line("gap_tolerance", cfg_.gap_tolerance);
  out += core::kv_config_line("inter_train_gap_ms", cfg_.inter_train_gap.millis());
  return out;
}

core::EstimateReport IgiEstimator::run(core::ProbeChannel& channel, Rng& /*rng*/) {
  if (cfg_.capacity <= Rate::zero()) {
    throw core::EstimatorError{
        "estimator 'igi' needs the bottleneck capacity a priori and no "
        "capacity_mbps hint was configured (the IGI formula turns increased "
        "gaps into cross-traffic bits via C): set capacity_mbps=<C>, e.g. "
        "from a pktpair run (scenario_runner fills the hint from the "
        "scenario's narrow link automatically)"};
  }
  core::MeteredChannel metered{channel};
  const TimePoint start = metered.now();
  const Estimate est = measure(metered);

  core::EstimateReport report;
  report.estimator = name();
  report.quantity = core::EstimateReport::Quantity::kAvailBw;
  report.valid = est.valid;
  report.is_range = est.valid;
  report.low = std::min(est.igi_avail_bw, est.ptr_rate);
  report.high = std::max(est.igi_avail_bw, est.ptr_rate);
  report.streams_sent = metered.streams();
  report.packets_sent = metered.packets();
  report.bytes_sent = metered.bytes();
  report.elapsed = metered.now() - start;
  report.packets_lost = metered.packets() - metered.received();
  report.iterations.reserve(est.sweep.size());
  for (const GapStep& row : est.sweep) {
    report.iterations.push_back(
        {Rate::bps(cfg_.packet_size * 8.0 / row.input_gap.secs()).mbits_per_sec(),
         row.output_rate.mbits_per_sec(),
         row.turning ? "turning-point" : "gap-step"});
  }
  core::classify_outcome(report, est.hit_deadline);
  return report;
}

}  // namespace pathload::baselines
